module tlbprefetch

go 1.24
