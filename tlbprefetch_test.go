package tlbprefetch_test

import (
	"bytes"
	"io"
	"testing"

	"tlbprefetch"
)

func TestQuickStartFlow(t *testing.T) {
	cfg := tlbprefetch.DefaultConfig()
	pf := tlbprefetch.NewDistance(256, 1, 2)
	w, ok := tlbprefetch.WorkloadByName("swim")
	if !ok {
		t.Fatal("swim workload missing")
	}
	st := tlbprefetch.RunWorkload(cfg, pf, w, 200_000)
	if st.Refs != 200_000 {
		t.Fatalf("refs = %d", st.Refs)
	}
	if st.Misses == 0 || st.BufferHits == 0 {
		t.Fatalf("no prefetching activity: %+v", st)
	}
	if a := st.Accuracy(); a <= 0 || a > 1 {
		t.Fatalf("accuracy out of range: %v", a)
	}
}

func TestAllMechanismConstructors(t *testing.T) {
	mechs := []tlbprefetch.Prefetcher{
		tlbprefetch.NewDistance(256, 1, 2),
		tlbprefetch.NewDistancePC(256, 1, 2),
		tlbprefetch.NewDistance2(256, 1, 2),
		tlbprefetch.NewRecency(),
		tlbprefetch.NewMarkov(256, 1, 2),
		tlbprefetch.NewASP(256, 1),
		tlbprefetch.NewSequential(true),
	}
	w, _ := tlbprefetch.WorkloadByName("gap")
	for _, pf := range mechs {
		st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), pf, w, 50_000)
		if st.Refs != 50_000 {
			t.Errorf("%s: refs = %d", pf.Name(), st.Refs)
		}
	}
}

func TestBaselineNilPrefetcher(t *testing.T) {
	w, _ := tlbprefetch.WorkloadByName("gzip")
	st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), nil, w, 50_000)
	if st.BufferHits != 0 || st.Accuracy() != 0 {
		t.Fatalf("baseline prefetched: %+v", st)
	}
}

func TestWorkloadRegistryFacade(t *testing.T) {
	if got := len(tlbprefetch.Workloads()); got != 56 {
		t.Fatalf("workloads = %d, want 56", got)
	}
	if got := len(tlbprefetch.WorkloadsBySuite("MediaBench")); got != 20 {
		t.Fatalf("mediabench = %d, want 20", got)
	}
	if _, ok := tlbprefetch.WorkloadByName("not-a-benchmark"); ok {
		t.Fatal("invented workload")
	}
}

func TestTimingFacade(t *testing.T) {
	w, _ := tlbprefetch.WorkloadByName("ammp")
	base := tlbprefetch.RunWorkloadTimed(tlbprefetch.DefaultTimingConfig(), nil, w, 200_000)
	dp := tlbprefetch.RunWorkloadTimed(tlbprefetch.DefaultTimingConfig(),
		tlbprefetch.NewDistance(256, 1, 2), w, 200_000)
	if dp.Cycles >= base.Cycles {
		t.Fatalf("DP (%d cycles) did not beat baseline (%d)", dp.Cycles, base.Cycles)
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	w, _ := tlbprefetch.WorkloadByName("bc")
	var buf bytes.Buffer
	bw, err := tlbprefetch.NewBinaryTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tlbprefetch.GenerateWorkload(w, 10_000, bw)
	if err != nil || n != 10_000 {
		t.Fatalf("generate = %d, %v", n, err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	br, err := tlbprefetch.NewBinaryTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), tlbprefetch.NewDistance(256, 1, 2))
	if err := s.Run(br); err != nil {
		t.Fatal(err)
	}
	fromTrace := s.Stats()

	// Driving the simulator from the trace must equal driving it directly.
	direct := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
		tlbprefetch.NewDistance(256, 1, 2), w, 10_000)
	if fromTrace != direct {
		t.Fatalf("trace-driven %+v != direct %+v", fromTrace, direct)
	}
}

func TestWorkloadReaderFacade(t *testing.T) {
	w, _ := tlbprefetch.WorkloadByName("eon")
	r := tlbprefetch.WorkloadReader(w, 1000)
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("reader yielded %d refs", n)
	}
}

// TestCustomPrefetcher demonstrates (and verifies) that users can plug in
// their own mechanism through the public interface.
type nextTwo struct{}

func (nextTwo) Name() string { return "next-two" }
func (nextTwo) OnMiss(ev tlbprefetch.Event, dst []uint64) tlbprefetch.Action {
	return tlbprefetch.Action{Prefetches: append(dst, ev.VPN+1, ev.VPN+2)}
}
func (nextTwo) Reset() {}

func TestCustomPrefetcher(t *testing.T) {
	w, _ := tlbprefetch.WorkloadByName("gzip")
	st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), nextTwo{}, w, 100_000)
	if st.Accuracy() <= 0.2 {
		t.Fatalf("next-two on a sequential-heavy workload: accuracy %.3f", st.Accuracy())
	}
}
