// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per artifact (DESIGN.md §5 maps each to its experiment). They run
// scaled-down experiment bodies and report the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` doubles as a quick reproduction
// pass; cmd/experiments produces the full-scale versions.
package tlbprefetch_test

import (
	"testing"

	"tlbprefetch"
	"tlbprefetch/internal/experiments"
)

// benchOpts scales an experiment to benchmark-friendly size.
func benchOpts(refs uint64) experiments.Options {
	o := experiments.DefaultOptions()
	o.Refs = refs
	return o
}

// BenchmarkFig7 regenerates Figure 7 (prediction accuracy, 26 SPEC CPU2000
// applications, 21 mechanism configurations each).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(benchOpts(100_000))
		if len(res) != 26 {
			b.Fatalf("fig7 rows = %d", len(res))
		}
		if i == b.N-1 {
			dp, _ := res[0].Get("DP,256,D")
			b.ReportMetric(dp, "gzip-DP256-acc")
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (MediaBench + Etch + Pointer-Intensive).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(benchOpts(100_000))
		if len(res) != 30 {
			b.Fatalf("fig8 rows = %d", len(res))
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (plain and miss-rate-weighted average
// accuracy over all 56 applications).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(benchOpts(100_000))
		if i == b.N-1 {
			for _, row := range res.Rows {
				if row.Mechanism == "DP" {
					b.ReportMetric(row.Average, "DP-avg")
					b.ReportMetric(row.WeightedAvg, "DP-wavg")
				}
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (normalized execution cycles, RP vs
// DP, under the paper's timing model).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchOpts(200_000))
		if i == b.N-1 {
			for _, r := range rows {
				if r.App == "ammp" {
					b.ReportMetric(r.DPNormalized, "ammp-DP-normcycles")
					b.ReportMetric(r.RPNormalized, "ammp-RP-normcycles")
				}
			}
		}
	}
}

// BenchmarkFig9 regenerates the DP sensitivity analysis (table geometry,
// slots, buffer size, TLB size over the eight high-miss applications).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(benchOpts(100_000))
		if len(res.TableGeometry) != 8 {
			b.Fatalf("fig9 apps = %d", len(res.TableGeometry))
		}
	}
}

// BenchmarkExtDPVariants runs the paper's future-work indexing variants
// (PC+distance, two-distance) against plain DP.
func BenchmarkExtDPVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtDPVariants(benchOpts(100_000))
	}
}

// BenchmarkExtCache runs the cache-level DP demonstration.
func BenchmarkExtCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtCache(benchOpts(200_000))
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "cache-motif" {
					b.ReportMetric(r.DP, "cache-motif-DP-acc")
				}
			}
		}
	}
}

// BenchmarkExtMultiprog runs the context-switch table-policy study.
func BenchmarkExtMultiprog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtMultiprog(benchOpts(150_000))
	}
}

// BenchmarkExtPageSize runs the page-size sensitivity sweep.
func BenchmarkExtPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtPageSize(benchOpts(100_000))
	}
}

// BenchmarkExtTLBAssoc runs the TLB-associativity sensitivity sweep.
func BenchmarkExtTLBAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtTLBAssoc(benchOpts(100_000))
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ----------

// BenchmarkAblationDPTableSize measures DP accuracy as the table shrinks
// (the paper's claim: 32 rows already work).
func BenchmarkAblationDPTableSize(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("galgel")
	for _, rows := range []int{1024, 256, 32} {
		b.Run(labelRows(rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
					tlbprefetch.NewDistance(rows, 1, 2), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
				}
			}
		})
	}
}

func labelRows(r int) string {
	switch r {
	case 1024:
		return "r1024"
	case 256:
		return "r256"
	default:
		return "r32"
	}
}

// BenchmarkAblationTaggedSP compares tagged vs plain sequential prefetching
// (the paper adopts the tagged variant following Vanderwiel & Lilja).
func BenchmarkAblationTaggedSP(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("gzip")
	for _, tagged := range []bool{true, false} {
		name := "plain"
		if tagged {
			name = "tagged"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
					tlbprefetch.NewSequential(tagged), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
				}
			}
		})
	}
}

// BenchmarkAblationAdaptiveSP compares tagged SP against the
// Dahlgren/Dubois/Stenström adaptive variant — the paper's observation that
// "simulations have shown only slight differences between these schemes".
func BenchmarkAblationAdaptiveSP(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("gzip")
	for _, adaptive := range []bool{false, true} {
		name := "tagged"
		mk := func() tlbprefetch.Prefetcher { return tlbprefetch.NewSequential(true) }
		if adaptive {
			name = "adaptive"
			mk = func() tlbprefetch.Prefetcher { return tlbprefetch.NewAdaptiveSequential() }
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), mk(), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
				}
			}
		})
	}
}

// BenchmarkAblationRPDegree compares the paper's 2-neighbour RP against
// Saulsbury et al.'s 3-entry variant: accuracy gain vs extra traffic.
func BenchmarkAblationRPDegree(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("ammp")
	for _, degree := range []int{2, 3} {
		name := "deg2"
		if degree == 3 {
			name = "deg3"
		}
		degree := degree
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
					tlbprefetch.NewRecencyDegree(degree), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
					b.ReportMetric(float64(st.MemOps()), "memops")
				}
			}
		})
	}
}

// BenchmarkAblationRPSkipRule measures the cycle effect of RP's
// skip-prefetch-when-busy rule (the paper's benefit-of-the-doubt model).
func BenchmarkAblationRPSkipRule(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("mcf")
	for _, skip := range []bool{true, false} {
		name := "noskip"
		if skip {
			name = "skip"
		}
		b.Run(name, func(b *testing.B) {
			tc := tlbprefetch.DefaultTimingConfig()
			tc.RPSkipWhenBusy = skip
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkloadTimed(tc, tlbprefetch.NewRecency(), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.CPI(), "CPI")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (references
// per second drive every experiment's wall-clock).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("swim")
	b.ReportAllocs()
	b.ResetTimer()
	refs := uint64(b.N)
	st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), tlbprefetch.NewDistance(256, 1, 2), w, refs)
	if st.Refs != refs {
		b.Fatalf("simulated %d refs, want %d", st.Refs, refs)
	}
}
