// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per artifact (internal/experiments maps each to its grid). They run
// scaled-down experiment bodies and report the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` doubles as a quick reproduction
// pass; cmd/experiments produces the full-scale versions.
package tlbprefetch_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tlbprefetch"
	"tlbprefetch/internal/experiments"
	"tlbprefetch/internal/multiprog"
	"tlbprefetch/internal/sweep"
)

// benchOpts scales an experiment to benchmark-friendly size.
func benchOpts(refs uint64) experiments.Options {
	o := experiments.DefaultOptions()
	o.Refs = refs
	return o
}

// BenchmarkFig7 regenerates Figure 7 (prediction accuracy, 26 SPEC CPU2000
// applications, 21 mechanism configurations each).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(benchOpts(100_000))
		if len(res) != 26 {
			b.Fatalf("fig7 rows = %d", len(res))
		}
		if i == b.N-1 {
			dp, _ := res[0].Get("DP,256,D")
			b.ReportMetric(dp, "gzip-DP256-acc")
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (MediaBench + Etch + Pointer-Intensive).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(benchOpts(100_000))
		if len(res) != 30 {
			b.Fatalf("fig8 rows = %d", len(res))
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (plain and miss-rate-weighted average
// accuracy over all 56 applications).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(benchOpts(100_000))
		if i == b.N-1 {
			for _, row := range res.Rows {
				if row.Mechanism == "DP" {
					b.ReportMetric(row.Average, "DP-avg")
					b.ReportMetric(row.WeightedAvg, "DP-wavg")
				}
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (normalized execution cycles, RP vs
// DP, under the paper's timing model).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchOpts(200_000))
		if i == b.N-1 {
			for _, r := range rows {
				if r.App == "ammp" {
					b.ReportMetric(r.DPNormalized, "ammp-DP-normcycles")
					b.ReportMetric(r.RPNormalized, "ammp-RP-normcycles")
				}
			}
		}
	}
}

// BenchmarkFig9 regenerates the DP sensitivity analysis (table geometry,
// slots, buffer size, TLB size over the eight high-miss applications).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(benchOpts(100_000))
		if len(res.TableGeometry) != 8 {
			b.Fatalf("fig9 apps = %d", len(res.TableGeometry))
		}
	}
}

// BenchmarkExtDPVariants runs the paper's future-work indexing variants
// (PC+distance, two-distance) against plain DP.
func BenchmarkExtDPVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtDPVariants(benchOpts(100_000))
	}
}

// BenchmarkExtCache runs the cache-level DP demonstration.
func BenchmarkExtCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtCache(benchOpts(200_000))
		if i == b.N-1 {
			for _, r := range rows {
				if r.Workload == "cache-motif" {
					b.ReportMetric(r.DP, "cache-motif-DP-acc")
				}
			}
		}
	}
}

// BenchmarkExtMultiprog runs the context-switch table-policy study.
func BenchmarkExtMultiprog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtMultiprog(benchOpts(150_000))
	}
}

// BenchmarkExtPageSize runs the page-size sensitivity sweep.
func BenchmarkExtPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtPageSize(benchOpts(100_000))
	}
}

// BenchmarkExtTLBAssoc runs the TLB-associativity sensitivity sweep.
func BenchmarkExtTLBAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtTLBAssoc(benchOpts(100_000))
	}
}

// --- Sweep-engine benches ---------------------------------------------------

// benchSweepJobs is a 2 workloads × 4 mechanisms × 2 TLB sizes × 2 buffer
// sizes grid (32 cells, 8 shards).
func benchSweepJobs(b *testing.B) []sweep.Job {
	jobs, err := sweep.Grid{
		Workloads: []string{"swim", "mcf"},
		Mechs: []sweep.Mech{
			{Kind: "DP", Rows: 256, Ways: 1, Slots: 2},
			{Kind: "RP"},
			{Kind: "ASP", Rows: 256, Ways: 1},
			{Kind: "MP", Rows: 256, Ways: 1, Slots: 2},
		},
		TLBEntries: []int{64, 128},
		Buffers:    []int{8, 16},
		Refs:       50_000,
	}.Jobs()
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

// BenchmarkSweepCold runs the grid with no result store: every cell
// simulates, geometry-identical cells coalescing onto shared frontends.
func BenchmarkSweepCold(b *testing.B) {
	jobs := benchSweepJobs(b)
	b.ReportMetric(float64(len(jobs)), "cells")
	for i := 0; i < b.N; i++ {
		r := sweep.Runner{}
		if _, sum, err := r.Run(jobs); err != nil || sum.Ran != len(jobs) {
			b.Fatalf("sum=%+v err=%v", sum, err)
		}
	}
}

// BenchmarkSweepCached re-runs the grid against a warm store: the
// incremental-sweep fast path (hash, look up, emit) with zero simulation.
func BenchmarkSweepCached(b *testing.B) {
	jobs := benchSweepJobs(b)
	st := sweep.NewStore()
	if _, _, err := (&sweep.Runner{Store: st}).Run(jobs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sweep.Runner{Store: st}
		if _, sum, err := r.Run(jobs); err != nil || sum.Ran != 0 {
			b.Fatalf("sum=%+v err=%v", sum, err)
		}
	}
}

// --- Ablation benches for the paper's headline design claims --------------

// BenchmarkAblationDPTableSize measures DP accuracy as the table shrinks
// (the paper's claim: 32 rows already work).
func BenchmarkAblationDPTableSize(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("galgel")
	for _, rows := range []int{1024, 256, 32} {
		b.Run(labelRows(rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
					tlbprefetch.NewDistance(rows, 1, 2), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
				}
			}
		})
	}
}

func labelRows(r int) string {
	switch r {
	case 1024:
		return "r1024"
	case 256:
		return "r256"
	default:
		return "r32"
	}
}

// BenchmarkAblationTaggedSP compares tagged vs plain sequential prefetching
// (the paper adopts the tagged variant following Vanderwiel & Lilja).
func BenchmarkAblationTaggedSP(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("gzip")
	for _, tagged := range []bool{true, false} {
		name := "plain"
		if tagged {
			name = "tagged"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
					tlbprefetch.NewSequential(tagged), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
				}
			}
		})
	}
}

// BenchmarkAblationAdaptiveSP compares tagged SP against the
// Dahlgren/Dubois/Stenström adaptive variant — the paper's observation that
// "simulations have shown only slight differences between these schemes".
func BenchmarkAblationAdaptiveSP(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("gzip")
	for _, adaptive := range []bool{false, true} {
		name := "tagged"
		mk := func() tlbprefetch.Prefetcher { return tlbprefetch.NewSequential(true) }
		if adaptive {
			name = "adaptive"
			mk = func() tlbprefetch.Prefetcher { return tlbprefetch.NewAdaptiveSequential() }
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), mk(), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
				}
			}
		})
	}
}

// BenchmarkAblationRPDegree compares the paper's 2-neighbour RP against
// Saulsbury et al.'s 3-entry variant: accuracy gain vs extra traffic.
func BenchmarkAblationRPDegree(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("ammp")
	for _, degree := range []int{2, 3} {
		name := "deg2"
		if degree == 3 {
			name = "deg3"
		}
		degree := degree
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(),
					tlbprefetch.NewRecencyDegree(degree), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.Accuracy(), "acc")
					b.ReportMetric(float64(st.MemOps()), "memops")
				}
			}
		})
	}
}

// BenchmarkAblationRPSkipRule measures the cycle effect of RP's
// skip-prefetch-when-busy rule (the paper's benefit-of-the-doubt model).
func BenchmarkAblationRPSkipRule(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("mcf")
	for _, skip := range []bool{true, false} {
		name := "noskip"
		if skip {
			name = "skip"
		}
		b.Run(name, func(b *testing.B) {
			tc := tlbprefetch.DefaultTimingConfig()
			tc.RPSkipWhenBusy = skip
			for i := 0; i < b.N; i++ {
				st := tlbprefetch.RunWorkloadTimed(tc, tlbprefetch.NewRecency(), w, 200_000)
				if i == b.N-1 {
					b.ReportMetric(st.CPI(), "CPI")
				}
			}
		})
	}
}

// --- Hot-path benches: raw references/second and allocations ---------------

// benchTrace materializes a workload's reference stream once per
// (workload, length) so the throughput benches time the simulator
// pipeline, not the generator.
var benchTraceCache = map[string][]tlbprefetch.Ref{}

func benchTrace(b *testing.B, name string, n uint64) []tlbprefetch.Ref {
	key := fmt.Sprintf("%s/%d", name, n)
	if refs, ok := benchTraceCache[key]; ok {
		return refs
	}
	w, ok := tlbprefetch.WorkloadByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	refs := make([]tlbprefetch.Ref, 0, n)
	r := tlbprefetch.WorkloadReader(w, n)
	for {
		ref, err := r.Read()
		if err != nil {
			break
		}
		refs = append(refs, ref)
	}
	benchTraceCache[key] = refs
	return refs
}

// throughputMechs are the per-mechanism sub-benchmark targets at their
// figure operating points: every kind in the sweep registry has a row here
// (the AST gate in internal/sweep/coverage_test.go enforces it).
func throughputMechs() map[string]func() tlbprefetch.Prefetcher {
	return map[string]func() tlbprefetch.Prefetcher{
		"none":  func() tlbprefetch.Prefetcher { return nil },
		"SP":    func() tlbprefetch.Prefetcher { return tlbprefetch.NewSequential(true) },
		"SP-A":  func() tlbprefetch.Prefetcher { return tlbprefetch.NewAdaptiveSequential() },
		"ASP":   func() tlbprefetch.Prefetcher { return tlbprefetch.NewASP(256, 1) },
		"MP":    func() tlbprefetch.Prefetcher { return tlbprefetch.NewMarkov(256, 1, 2) },
		"RP":    func() tlbprefetch.Prefetcher { return tlbprefetch.NewRecency() },
		"RP3":   func() tlbprefetch.Prefetcher { return tlbprefetch.NewRecencyDegree(3) },
		"DP":    func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistance(256, 1, 2) },
		"DP-PC": func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistancePC(256, 1, 2) },
		"DP2":   func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistance2(256, 1, 2) },
		"STMS":  func() tlbprefetch.Prefetcher { return tlbprefetch.NewSTMS(16384, 1, 2) },
		"MASP":  func() tlbprefetch.Prefetcher { return tlbprefetch.NewMASP(256, 1, 2) },
		"SBFP":  func() tlbprefetch.Prefetcher { return tlbprefetch.NewSBFP() },
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (references
// per second drive every experiment's wall-clock) by replaying a
// pre-materialized trace through each mechanism's pipeline. ns/op is
// ns/reference; allocs/op must be 0 in steady state for the on-chip
// mechanisms (RP allocates only while its page table is still growing).
// "swim" exercises the TLB-hit fast path (~1% miss rate); the /mcf
// sub-benchmarks exercise the miss pipeline (~9% miss rate), where the
// O(1) structures pay off most.
func BenchmarkSimulatorThroughput(b *testing.B) {
	refs := benchTrace(b, "swim", 4_000_000)
	for _, name := range []string{"none", "SP", "ASP", "MP", "RP", "DP", "STMS", "MASP", "SBFP"} {
		mk := throughputMechs()[name]
		b.Run(name, func(b *testing.B) {
			s := tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), mk())
			// Warm all structures to steady state before measuring.
			for _, r := range refs[:len(refs)/4] {
				s.Ref(r.PC, r.VAddr)
			}
			b.ReportAllocs()
			b.ResetTimer()
			idx := 0
			for i := 0; i < b.N; i++ {
				r := refs[idx]
				if idx++; idx == len(refs) {
					idx = 0
				}
				s.Ref(r.PC, r.VAddr)
			}
		})
	}
}

// BenchmarkSimulatorThroughputMcf replays the miss-heavy mcf stream (the
// paper's hardest SPEC application) through the baseline and DP pipelines.
func BenchmarkSimulatorThroughputMcf(b *testing.B) {
	refs := benchTrace(b, "mcf", 4_000_000)
	for _, name := range []string{"none", "DP"} {
		mk := throughputMechs()[name]
		b.Run(name, func(b *testing.B) {
			s := tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), mk())
			for _, r := range refs[:len(refs)/4] {
				s.Ref(r.PC, r.VAddr)
			}
			b.ReportAllocs()
			b.ResetTimer()
			idx := 0
			for i := 0; i < b.N; i++ {
				r := refs[idx]
				if idx++; idx == len(refs) {
					idx = 0
				}
				s.Ref(r.PC, r.VAddr)
			}
		})
	}
}

// BenchmarkSimulatorThroughputGenerated is the pre-refactor fused loop —
// workload generation feeding the DP,256 simulator — kept for continuity
// with older baselines (generation itself costs ~6 ns/ref of the total).
func BenchmarkSimulatorThroughputGenerated(b *testing.B) {
	w, _ := tlbprefetch.WorkloadByName("swim")
	b.ReportAllocs()
	b.ResetTimer()
	refs := uint64(b.N)
	st := tlbprefetch.RunWorkload(tlbprefetch.DefaultConfig(), tlbprefetch.NewDistance(256, 1, 2), w, refs)
	if st.Refs != refs {
		b.Fatalf("simulated %d refs, want %d", st.Refs, refs)
	}
}

// BenchmarkGroupFanout measures the shared-frontend win: the full 21-way
// mechanism fan-out of Figure 7 driven per reference, with the canonical
// shared TLB (the Group default for homogeneous members) against 21
// independent pipelines. ns/op is ns per reference delivered to the group.
func BenchmarkGroupFanout(b *testing.B) {
	refs := benchTrace(b, "swim", 4_000_000)
	build := func() []*tlbprefetch.Simulator {
		var ms []*tlbprefetch.Simulator
		for _, m := range experiments.Fig7Configs() {
			ms = append(ms, tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(),
				m.Build(experiments.DefaultOptions())))
		}
		return ms
	}
	b.Run("shared", func(b *testing.B) {
		g := tlbprefetch.NewGroup(build()...)
		if !g.SharedFrontend() {
			b.Fatal("homogeneous group did not share the frontend")
		}
		b.ReportAllocs()
		b.ResetTimer()
		idx := 0
		for i := 0; i < b.N; i++ {
			r := refs[idx]
			if idx++; idx == len(refs) {
				idx = 0
			}
			g.Ref(r.PC, r.VAddr)
		}
	})
	b.Run("independent", func(b *testing.B) {
		members := build()
		b.ReportAllocs()
		b.ResetTimer()
		idx := 0
		for i := 0; i < b.N; i++ {
			r := refs[idx]
			if idx++; idx == len(refs) {
				idx = 0
			}
			for _, m := range members {
				m.Ref(r.PC, r.VAddr)
			}
		}
	})
}

// BenchmarkMixInterleaver measures the multiprogramming interleaver's
// per-reference scheduling cost: two 2M-reference streams round-robined at
// a 20k quantum. One interleaving pass feeds every cell of a mix shard, so
// this sits on the sweep hot path — it must stay allocation-free per
// reference (allocs/op pins it).
func BenchmarkMixInterleaver(b *testing.B) {
	streams := [][]tlbprefetch.Ref{
		benchTrace(b, "galgel", 2_000_000),
		benchTrace(b, "gcc", 2_000_000),
	}
	b.ReportAllocs()
	b.ResetTimer()
	it := multiprog.NewInterleaver(streams, 20_000)
	var sink uint64
	for i := 0; i < b.N; i++ {
		_, _, vaddr, ok := it.Next()
		if !ok {
			it = multiprog.NewInterleaver(streams, 20_000)
			continue
		}
		sink ^= vaddr
	}
	benchSink = sink
}

// BenchmarkMixExec measures one mix cell end to end: the interleaver
// feeding a DP,256 Exec under the retain/flush-ASID point — the per-cell
// cost a mix shard pays on top of the shared interleaving pass.
func BenchmarkMixExec(b *testing.B) {
	streams := [][]tlbprefetch.Ref{
		benchTrace(b, "galgel", 2_000_000),
		benchTrace(b, "gcc", 2_000_000),
	}
	cfg := tlbprefetch.DefaultConfig()
	mk := func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistance(256, 1, 2) }
	b.ReportAllocs()
	b.ResetTimer()
	it := multiprog.NewInterleaver(streams, 20_000)
	e := multiprog.NewExec(cfg, multiprog.Retain, multiprog.ASIDFlush, len(streams), mk)
	for i := 0; i < b.N; i++ {
		proc, pc, vaddr, ok := it.Next()
		if !ok {
			b.StopTimer()
			it = multiprog.NewInterleaver(streams, 20_000)
			e = multiprog.NewExec(cfg, multiprog.Retain, multiprog.ASIDFlush, len(streams), mk)
			b.StartTimer()
			continue
		}
		e.Ref(proc, pc, vaddr)
	}
}

var benchSink uint64

// --- Trace decode + replay benches -----------------------------------------

// writeBenchTrace writes refs to a temp file in the given encoding and
// returns its path.
func writeBenchTrace(b *testing.B, refs []tlbprefetch.Ref, format string) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench-"+format+".trc")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	var (
		tw     tlbprefetch.TraceWriter
		finish func() error
	)
	switch format {
	case "v1":
		x, err := tlbprefetch.NewBinaryTraceWriter(f)
		if err != nil {
			b.Fatal(err)
		}
		tw, finish = x, func() error { return x.FinishCount(f) }
	case "v2":
		x, err := tlbprefetch.NewBlockTraceWriter(f)
		if err != nil {
			b.Fatal(err)
		}
		tw, finish = x, func() error { return x.FinishCount(f) }
	default:
		b.Fatalf("unknown format %s", format)
	}
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := finish(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchDecode drains one full batched decode pass of the file and returns
// the records seen (for the ns/ref metric).
func benchDecode(b *testing.B, path string) uint64 {
	r, closer, err := tlbprefetch.OpenTraceFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer closer.Close()
	src := tlbprefetch.AsBatchTraceReader(r)
	var (
		buf   [4096]tlbprefetch.Ref
		total uint64
		sink  uint64
	)
	for {
		n, err := src.ReadBatch(buf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			sink ^= buf[i].VAddr
		}
		total += uint64(n)
	}
	benchSink = sink
	return total
}

// BenchmarkTraceDecodeV1 measures batched decode of the fixed-width v1
// encoding: one full file pass per iteration, ns/ref reported.
func BenchmarkTraceDecodeV1(b *testing.B) {
	refs := benchTrace(b, "mcf", 2_000_000)
	path := writeBenchTrace(b, refs, "v1")
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		total += benchDecode(b, path)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/ref")
}

// BenchmarkTraceDecodeV1PerRef measures the pre-batching v1 read path —
// one Read interface call, one io.ReadFull and one 16-byte record
// allocation per reference. The ratio against the batched benchmarks is
// the PR's headline replay-throughput win: the per-ref drain is what
// every trace-backed consumer paid before batching.
func BenchmarkTraceDecodeV1PerRef(b *testing.B) {
	refs := benchTrace(b, "mcf", 2_000_000)
	path := writeBenchTrace(b, refs, "v1")
	b.ReportAllocs()
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		r, closer, err := tlbprefetch.OpenTraceFile(path)
		if err != nil {
			b.Fatal(err)
		}
		var sink uint64
		for {
			ref, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			sink ^= ref.VAddr
			total++
		}
		benchSink = sink
		closer.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/ref")
}

// BenchmarkTraceDecodeV2 measures batched decode of the block-structured
// delta-encoded v2 format over the identical record stream.
func BenchmarkTraceDecodeV2(b *testing.B) {
	refs := benchTrace(b, "mcf", 2_000_000)
	path := writeBenchTrace(b, refs, "v2")
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		total += benchDecode(b, path)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/ref")
}

// BenchmarkSimulatorTraceReplay measures the file-backed replay path a
// trace sweep cell pays — decode feeding the baseline (no-prefetcher)
// simulator, so the read path dominates and mechanism cost stays where
// BenchmarkSimulatorThroughput* measures it — in three configurations:
// the historical per-reference v1 loop (one Read interface call and one
// 16-byte allocation per record), v1 with batched decode, and v2 with
// batched decode. Batching moves replay from parse-bound to
// memory/simulation-bound: the TLB probe dominates the batched legs, while
// the per-ref leg spends most of its time (and two million allocations)
// just reading the file. The raw delivery-path speedup is pinned by
// BenchmarkTraceDecodeV1PerRef vs BenchmarkTraceDecodeV2 (≳5×); ns/ref
// here is the wall cost per reference replayed end to end.
func BenchmarkSimulatorTraceReplay(b *testing.B) {
	refs := benchTrace(b, "swim", 2_000_000)
	paths := map[string]string{
		"v1": writeBenchTrace(b, refs, "v1"),
		"v2": writeBenchTrace(b, refs, "v2"),
	}
	run := func(b *testing.B, path string, batched bool) {
		b.ReportAllocs()
		b.ResetTimer()
		var total uint64
		for i := 0; i < b.N; i++ {
			r, closer, err := tlbprefetch.OpenTraceFile(path)
			if err != nil {
				b.Fatal(err)
			}
			cfg := tlbprefetch.DefaultConfig()
			cfg.TLB.Ways = 4
			s := tlbprefetch.NewSimulator(cfg, nil)
			if batched {
				if err := s.RunBatch(tlbprefetch.AsBatchTraceReader(r)); err != nil {
					b.Fatal(err)
				}
			} else {
				// The pre-batching replay loop: one interface dispatch and
				// one 16-byte read per record.
				for {
					ref, err := r.Read()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					s.Ref(ref.PC, ref.VAddr)
				}
			}
			closer.Close()
			st := s.Stats()
			if st.Refs != uint64(len(refs)) {
				b.Fatalf("replayed %d refs, want %d", st.Refs, len(refs))
			}
			total += st.Refs
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/ref")
	}
	b.Run("v1-perref", func(b *testing.B) { run(b, paths["v1"], false) })
	b.Run("v1-batched", func(b *testing.B) { run(b, paths["v1"], true) })
	b.Run("v2-batched", func(b *testing.B) { run(b, paths["v2"], true) })
}
