// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload models.
//
// The simulator's results must be bit-for-bit reproducible across runs, Go
// releases and platforms: the sweep store content-addresses exact results,
// docs/EXPERIMENTS.md pins expected output snippets, and the test suite
// asserts qualitative shapes of those numbers. math/rand's stream is only
// guaranteed stable for a given Go release, so we pin our own generator:
// splitmix64 for seeding and xoshiro256** for the stream (public domain
// algorithms by Vigna et al.).
package xrand

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds still produce uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent theta in
// (0, 1]; small indices are hottest. It uses the classic inverse-CDF
// approximation from Knuth/Gray et al., adequate for workload skew modelling.
type Zipf struct {
	n     int
	alpha float64
	zetan float64
	eta   float64
	theta float64
}

// NewZipf builds a Zipf sampler over [0, n) with skew theta (0 < theta < 1
// for classic skew; larger theta = more skew toward index 0).
func NewZipf(n int, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Next draws the next Zipf-distributed index using r as the entropy source.
func (z *Zipf) Next(r *Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
}
