package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestPinnedStream(t *testing.T) {
	// The first outputs of seed 0 are pinned: stored sweep cells and the
	// output snippets in docs/EXPERIMENTS.md depend on this stream never
	// changing.
	r := New(0)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(0)
	for i, want := range got {
		if v := r2.Uint64(); v != want {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	if got[0] == 0 && got[1] == 0 {
		t.Fatal("degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) fired %.3f of the time", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestQuickPerm(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := New(13)
	z := NewZipf(100, 0.8)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[50]*3 {
		t.Fatalf("insufficient skew: head %d vs middle %d", counts[0], counts[50])
	}
}

func TestUniformityRough(t *testing.T) {
	// Chi-squared-ish sanity: 16 buckets over 160k draws should each hold
	// roughly 10k.
	r := New(99)
	var buckets [16]int
	for i := 0; i < 160000; i++ {
		buckets[r.Uint64()%16]++
	}
	for i, c := range buckets {
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d has %d draws", i, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
