package workload

// The 5 Etch trace models (paper Figure 8, bottom-left): Win32 desktop
// applications traced with Etch. The paper's narrative places mpegply,
// msvc and perl4 in the group where "DP does much better than the others"
// (msvc also in the DP-only, <=20% group), and shows generally lower, more
// diffuse accuracy for the interactive applications.

const pcEtch = 0x00600000

func init() {
	// bcc: a compiler — like gcc, stable irregular revisits of front-end
	// and back-end structures (history wins, DP close via block locality).
	register(Workload{
		Name:      "bcc",
		Suite:     "Etch",
		Seed:      0x7101,
		PaperNote: "compiler pass structure: RP/MP good, DP close",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcEtch + 0x000, Base: 1 << 20, Pages: 620, RefsPerHop: 95, LocalityPages: 14},
				&Seq{PC: pcEtch + 0x010, Base: 1<<20 + 8219, Pages: 90, RefsPerPage: 95},
			}
		},
	})

	// mpegply: video playback — macroblock motifs over fresh frames
	// ("DP does much better": same regime as mpeg-dec).
	register(Workload{
		Name:      "mpegply",
		Suite:     "Etch",
		Seed:      0x7102,
		PaperNote: "macroblock motif over fresh frames: DP well ahead",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcEtch + 0x100, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 2, 1, 4, 3, 6}, BlockPages: 8, Blocks: 12,
					RefsPerStop: 110, NoiseProb: 0.2, NoiseSpread: 14},
				&HotSet{PC: pcEtch + 0x110, Base: 1 << 20, Pages: 44, Refs: 2000, Theta: 0.5},
			}
		},
	})

	// msvc: the IDE/compiler — in the paper both "DP does much better" and
	// DP-only with modest absolute accuracy; heavy noise over a weak motif.
	register(Workload{
		Name:      "msvc",
		Suite:     "Etch",
		Seed:      0x7103,
		PaperNote: "noisy build-system walks with a weak repeating motif: DP-only, modest",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcEtch + 0x200, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 3, 1, 6, 2, 5, 4}, BlockPages: 9, Blocks: 10,
					RefsPerStop: 110, NoiseProb: 0.5, NoiseSpread: 20},
				&RandomWalk{PC: pcEtch + 0x210, Base: 1 << 20, Pages: 900, Hops: 25, RefsPerStop: 110},
				&HotSet{PC: pcEtch + 0x220, Base: 1<<20 + 131101, Pages: 48, Refs: 2500, Theta: 0.5},
			}
		},
	})

	// perl4: scripting interpreter — hash/AST walks with a repeating
	// allocation motif ("DP does much better").
	register(Workload{
		Name:      "perl4",
		Suite:     "Etch",
		Seed:      0x7104,
		PaperNote: "interpreter allocation motif over fresh arenas: DP well ahead",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcEtch + 0x300, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 1, 3, 2, 5, 4, 7}, BlockPages: 9, Blocks: 10,
					RefsPerStop: 120, NoiseProb: 0.18, NoiseSpread: 14},
				&HotSet{PC: pcEtch + 0x310, Base: 1 << 20, Pages: 56, Refs: 3500, Theta: 0.6},
			}
		},
	})

	// winword: interactive word processor — large hot document cache with
	// diffuse excursions; weak signals for everyone.
	register(Workload{
		Name:      "winword",
		Suite:     "Etch",
		Seed:      0x7105,
		PaperNote: "interactive hot set + diffuse excursions: weak accuracy all around",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcEtch + 0x400, Base: 1 << 20, Pages: 100, Refs: 20000, Theta: 0.5},
				&RandomWalk{PC: pcEtch + 0x410, Base: 1<<20 + 65551, Pages: 1200, Hops: 80, RefsPerStop: 45},
				&PointerChase{PC: pcEtch + 0x420, Base: 1<<20 + 131101, Pages: 70, RefsPerHop: 45, LocalityPages: 10},
			}
		},
	})
}
