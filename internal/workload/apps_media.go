package workload

// The 20 MediaBench models (paper Figure 8, top four rows). MediaBench
// applications are block-structured signal-processing kernels; the paper's
// key observations here are (i) adpcm and texgen behave like long repeated
// strided sweeps where RP and ASP both excel but MP "performs very poorly"
// for lack of rows, and (ii) for gsm and jpeg, "DP is the only mechanism
// which makes any noticeable predictions (even if the accuracy does not
// exceed 20%)".

const pcMedia = 0x00500000

func init() {
	// adpcm-enc: one of the eight highest-miss-rate applications (paper
	// rate 0.192): the codec streams repeatedly over a large sample
	// buffer. "In some applications, where past history is a good
	// indication of the future (i.e. RP does very well) such as in
	// adpcm-enc/dec, MP performs very poorly" (footprint >> MP rows);
	// ASP and DP ride the constant stride.
	register(Workload{
		Name:  "adpcm-enc",
		Suite: "MediaBench",
		Seed:  0x6101,
		PaperNote: "repeated unit-stride sweep over a large buffer: RP/ASP/DP high, " +
			"MP starved for rows; miss rate ~0.19",
		Build: func() []Phase {
			return []Phase{
				&Stride{PC: pcMedia + 0x000, Base: 1 << 20, StridePages: 1, Count: 2100, RefsPerStop: 5},
				&HotSet{PC: pcMedia + 0x010, Base: 1<<20 + 262165, Pages: 24, Refs: 700, Theta: 0.5},
			}
		},
	})

	register(Workload{
		Name:  "adpcm-dec",
		Suite: "MediaBench",
		Seed:  0x6102,
		PaperNote: "decoder twin of adpcm-enc: same repeated sweep shape, " +
			"slightly smaller buffer",
		Build: func() []Phase {
			return []Phase{
				&Stride{PC: pcMedia + 0x100, Base: 1 << 20, StridePages: 1, Count: 2060, RefsPerStop: 95},
				&HotSet{PC: pcMedia + 0x110, Base: 1<<20 + 262165, Pages: 24, Refs: 800, Theta: 0.5},
			}
		},
	})

	// epic/unepic: wavelet image (de)compression sweeping fresh image
	// planes — the paper's ASP first-touch group ("as in gzip, perlbmk,
	// equake, epic/unepic, ...").
	register(Workload{
		Name:      "epic",
		Suite:     "MediaBench",
		Seed:      0x6103,
		PaperNote: "first-touch strided image passes: ASP/DP predict cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcMedia + 0x200, StartPage: 1 << 21, PagesPerRun: 30, RefsPerPage: 105},
				&Seq{PC: pcMedia + 0x210, Base: 1 << 20, Pages: 80, RefsPerPage: 105},
				&RandomWalk{PC: pcMedia + 0x220, Base: 1<<20 + 2097169, Pages: 1000, Hops: 22, RefsPerStop: 105},
			}
		},
	})

	register(Workload{
		Name:      "unepic",
		Suite:     "MediaBench",
		Seed:      0x6104,
		PaperNote: "first-touch strided reconstruction: ASP/DP predict cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcMedia + 0x300, StartPage: 1 << 21, PagesPerRun: 24, RefsPerPage: 75},
				&Seq{PC: pcMedia + 0x310, Base: 1 << 20, Pages: 64, RefsPerPage: 75},
				&RandomWalk{PC: pcMedia + 0x320, Base: 1<<20 + 2097169, Pages: 1000, Hops: 18, RefsPerStop: 75},
			}
		},
	})

	// gsm-enc/dec: "for gsm-enc/dec, jpeg-enc/dec, ks, msvc and bc, DP is
	// the only mechanism which makes any noticeable predictions (even if
	// the accuracy does not exceed 20%)" — frame-structured processing:
	// a fixed intra-frame offset motif applied to fresh frames, heavily
	// diluted by data-dependent noise.
	register(Workload{
		Name:  "gsm-enc",
		Suite: "MediaBench",
		Seed:  0x6105,
		PaperNote: "fresh frames + noisy fixed motif: only DP predicts, " +
			"and only modestly (paper: <= ~20%)",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcMedia + 0x400, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 2, 5, 1, 4, 3, 6}, BlockPages: 8, Blocks: 10,
					RefsPerStop: 60, NoiseProb: 0.45, NoiseSpread: 150},
				&HotSet{PC: pcMedia + 0x410, Base: 1 << 20, Pages: 40, Refs: 2500, Theta: 0.5},
			}
		},
	})

	register(Workload{
		Name:      "gsm-dec",
		Suite:     "MediaBench",
		Seed:      0x6106,
		PaperNote: "decoder twin of gsm-enc: noisy motif over fresh frames, DP-only",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcMedia + 0x500, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 3, 1, 5, 2, 4}, BlockPages: 7, Blocks: 10,
					RefsPerStop: 60, NoiseProb: 0.45, NoiseSpread: 140},
				&HotSet{PC: pcMedia + 0x510, Base: 1 << 20, Pages: 40, Refs: 2200, Theta: 0.5},
			}
		},
	})

	// rasta: speech recognition front-end — mixed strided windows and
	// irregular filter-bank hops; middling accuracy everywhere.
	register(Workload{
		Name:      "rasta",
		Suite:     "MediaBench",
		Seed:      0x6107,
		PaperNote: "mixed windows + irregular hops: modest accuracy all around",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcMedia + 0x600, StartPage: 1 << 21, PagesPerRun: 12, RefsPerPage: 140},
				&RandomWalk{PC: pcMedia + 0x610, Base: 1 << 20, Pages: 600, Hops: 15, RefsPerStop: 140},
				&Seq{PC: pcMedia + 0x620, Base: 1<<20 + 4111, Pages: 40, RefsPerPage: 140},
			}
		},
	})

	// gs: ghostscript — the paper's RP group ("RP giving the best, or close
	// to the best performance for applications such as ... gs").
	register(Workload{
		Name:      "gs",
		Suite:     "MediaBench",
		Seed:      0x6108,
		PaperNote: "stable irregular page revisits (font/path caches): RP best",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcMedia + 0x700, Base: 1 << 20, Pages: 520, RefsPerHop: 95, LocalityPages: 24},
				&Seq{PC: pcMedia + 0x710, Base: 1<<20 + 262165, Pages: 80, RefsPerPage: 95},
			}
		},
	})

	// g721-enc/dec: "so few TLB misses that a significant history does not
	// build up nor does a strided pattern (and TLB prefetching is not as
	// important for them anyway)".
	register(Workload{
		Name:      "g721-enc",
		Suite:     "MediaBench",
		Seed:      0x6109,
		PaperNote: "tiny working set: almost no TLB misses",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcMedia + 0x800, Base: 1 << 20, Pages: 70, Refs: 26000, Theta: 0.4},
				&RandomWalk{PC: pcMedia + 0x810, Base: 1<<20 + 65551, Pages: 3000, Hops: 8, RefsPerStop: 2},
			}
		},
	})

	register(Workload{
		Name:      "g721-dec",
		Suite:     "MediaBench",
		Seed:      0x610a,
		PaperNote: "tiny working set: almost no TLB misses",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcMedia + 0x900, Base: 1 << 20, Pages: 64, Refs: 24000, Theta: 0.4},
				&RandomWalk{PC: pcMedia + 0x910, Base: 1<<20 + 65551, Pages: 3000, Hops: 8, RefsPerStop: 2},
			}
		},
	})

	// mipmap (mesa): texture mipmap generation — strided first-touch passes
	// over texture levels (paper's ASP group).
	register(Workload{
		Name:      "mipmap-mesa",
		Suite:     "MediaBench",
		Seed:      0x610b,
		PaperNote: "first-touch strided texture passes: ASP/DP predict cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcMedia + 0xa00, StartPage: 1 << 21, PagesPerRun: 16, RefsPerPage: 110},
				&FreshScan{PC: pcMedia + 0xa10, StartPage: 1 << 22, PagesPerRun: 8, RefsPerPage: 110, StridePages: 2},
				&RandomWalk{PC: pcMedia + 0xa20, Base: 1<<20 + 2097169, Pages: 1000, Hops: 18, RefsPerStop: 110},
			}
		},
	})

	// jpeg-enc/dec: 8x8-block zig-zag processing over fresh image rows —
	// the second member of the DP-only group.
	register(Workload{
		Name:      "jpeg-enc",
		Suite:     "MediaBench",
		Seed:      0x610c,
		PaperNote: "zig-zag block motif over fresh image data: DP-only, modest accuracy",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcMedia + 0xb00, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 1, 4, 8, 5, 2, 3, 6}, BlockPages: 10, Blocks: 8,
					RefsPerStop: 55, NoiseProb: 0.45, NoiseSpread: 150},
				&HotSet{PC: pcMedia + 0xb10, Base: 1 << 20, Pages: 36, Refs: 2000, Theta: 0.5},
			}
		},
	})

	register(Workload{
		Name:      "jpeg-dec",
		Suite:     "MediaBench",
		Seed:      0x610d,
		PaperNote: "inverse zig-zag block motif over fresh output: DP-only, modest",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcMedia + 0xc00, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 2, 1, 5, 3, 7, 4}, BlockPages: 9, Blocks: 8,
					RefsPerStop: 55, NoiseProb: 0.45, NoiseSpread: 140},
				&HotSet{PC: pcMedia + 0xc10, Base: 1 << 20, Pages: 36, Refs: 1800, Theta: 0.5},
			}
		},
	})

	// texgen (mesa): like adpcm, RP ahead of MP with ASP also strong —
	// repeated strided texture sweeps over a footprint beyond MP's tables.
	register(Workload{
		Name:      "texgen-mesa",
		Suite:     "MediaBench",
		Seed:      0x610e,
		PaperNote: "repeated strided texture sweeps: RP/ASP/DP high, MP starved",
		Build: func() []Phase {
			return []Phase{
				&Stride{PC: pcMedia + 0xd00, Base: 1 << 20, StridePages: 1, Count: 1600, RefsPerStop: 95},
				&Stride{PC: pcMedia + 0xd10, Base: 1 << 20, StridePages: 4, Count: 400, RefsPerStop: 95},
				&RandomWalk{PC: pcMedia + 0xd20, Base: 1<<20 + 2097169, Pages: 2000, Hops: 150, RefsPerStop: 95},
			}
		},
	})

	// mpeg-enc: motion estimation touches reference frames in a noisy
	// block pattern; some motif survives for DP, a little stride for ASP.
	register(Workload{
		Name:      "mpeg-enc",
		Suite:     "MediaBench",
		Seed:      0x610f,
		PaperNote: "noisy macroblock walks over fresh frames: DP ahead, modest overall",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcMedia + 0xe00, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 1, 3, 2, 6, 4}, BlockPages: 8, Blocks: 10,
					RefsPerStop: 190, NoiseProb: 0.35, NoiseSpread: 14},
				&FreshScan{PC: pcMedia + 0xe10, StartPage: 1 << 22, PagesPerRun: 20, RefsPerPage: 190},
			}
		},
	})

	// mpeg-dec: "there are several applications such as ... mpeg-dec ...
	// where DP does much better than the others" — cleaner motif than the
	// encoder (no motion search).
	register(Workload{
		Name:      "mpeg-dec",
		Suite:     "MediaBench",
		Seed:      0x6110,
		PaperNote: "clean macroblock motif over fresh frames: DP well ahead",
		Build: func() []Phase {
			return []Phase{
				&BlockMotif{PC: pcMedia + 0xf00, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 1, 4, 2, 5, 3}, BlockPages: 7, Blocks: 12,
					RefsPerStop: 160, NoiseProb: 0.12, NoiseSpread: 12},
				&HotSet{PC: pcMedia + 0xf10, Base: 1 << 20, Pages: 40, Refs: 1500, Theta: 0.5},
			}
		},
	})

	// pgp-enc: bulk cipher streaming fresh plaintext (ASP group).
	register(Workload{
		Name:      "pgp-enc",
		Suite:     "MediaBench",
		Seed:      0x6111,
		PaperNote: "first-touch sequential cipher stream: ASP/DP predict cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcMedia + 0x1000, StartPage: 1 << 21, PagesPerRun: 28, RefsPerPage: 65},
				&HotSet{PC: pcMedia + 0x1010, Base: 1 << 20, Pages: 48, Refs: 6000, Theta: 0.5},
				&RandomWalk{PC: pcMedia + 0x1020, Base: 1<<20 + 2097169, Pages: 1000, Hops: 12, RefsPerStop: 65},
			}
		},
	})

	// pgp-dec: listed by the paper among the applications where no
	// mechanism predicts — keys/tables fit the TLB, few misses.
	register(Workload{
		Name:      "pgp-dec",
		Suite:     "MediaBench",
		Seed:      0x6112,
		PaperNote: "tiny working set: almost no TLB misses, nothing to predict",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcMedia + 0x1100, Base: 1 << 20, Pages: 76, Refs: 28000, Theta: 0.4},
				&RandomWalk{PC: pcMedia + 0x1110, Base: 1<<20 + 65551, Pages: 4000, Hops: 9, RefsPerStop: 2},
			}
		},
	})

	// pegwit-enc/dec: elliptic-curve crypto — small hot state with short
	// fresh bursts; low miss counts, modest strided predictability.
	register(Workload{
		Name:      "pegwit-enc",
		Suite:     "MediaBench",
		Seed:      0x6113,
		PaperNote: "small hot state + short fresh bursts: low misses, modest ASP/DP",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcMedia + 0x1200, Base: 1 << 20, Pages: 84, Refs: 16000, Theta: 0.4},
				&FreshScan{PC: pcMedia + 0x1210, StartPage: 1 << 21, PagesPerRun: 20, RefsPerPage: 40},
				&RandomWalk{PC: pcMedia + 0x1220, Base: 1<<20 + 2097169, Pages: 800, Hops: 12, RefsPerStop: 40},
			}
		},
	})

	register(Workload{
		Name:      "pegwit-dec",
		Suite:     "MediaBench",
		Seed:      0x6114,
		PaperNote: "small hot state + short fresh bursts: low misses, modest ASP/DP",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcMedia + 0x1300, Base: 1 << 20, Pages: 80, Refs: 15000, Theta: 0.4},
				&FreshScan{PC: pcMedia + 0x1310, StartPage: 1 << 21, PagesPerRun: 16, RefsPerPage: 40},
				&RandomWalk{PC: pcMedia + 0x1320, Base: 1<<20 + 2097169, Pages: 800, Hops: 10, RefsPerStop: 40},
			}
		},
	})
}
