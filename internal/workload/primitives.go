package workload

import "tlbprefetch/internal/xrand"

// touch emits n references to page (n >= 1), spreading intra-page offsets so
// larger-page simulations still see realistic addresses. The first reference
// to a page is the one that can miss; the rest are TLB hits that dilute the
// miss rate, which is how the models are tuned to the paper's published
// per-application miss rates.
func touch(emit EmitFunc, pc, page uint64, n int) bool {
	if n < 1 {
		n = 1
	}
	for j := 0; j < n; j++ {
		off := uint64(j*136) % PageBytes
		if !emit(pc, page*PageBytes+off) {
			return false
		}
	}
	return true
}

// addPage offsets a page number by a signed distance.
func addPage(page uint64, d int64) uint64 {
	return uint64(int64(page) + d)
}

// Seq scans Pages pages from Base sequentially (class (b) behaviour when
// the phase list repeats it: regular strided access over data touched
// several times).
type Seq struct {
	PC          uint64
	Base        uint64 // first page
	Pages       int
	RefsPerPage int
	Backward    bool
}

// Run implements Phase.
func (s *Seq) Run(emit EmitFunc, _ *xrand.Rand) bool {
	for i := 0; i < s.Pages; i++ {
		page := s.Base + uint64(i)
		if s.Backward {
			page = s.Base + uint64(s.Pages-1-i)
		}
		if !touch(emit, s.PC, page, s.RefsPerPage) {
			return false
		}
	}
	return true
}

// Stride scans Count stops from Base, advancing StridePages each stop —
// the column-major sweeps of galgel-style codes when StridePages > 1.
type Stride struct {
	PC          uint64
	Base        uint64
	StridePages int64
	Count       int
	RefsPerStop int
}

// Run implements Phase.
func (s *Stride) Run(emit EmitFunc, _ *xrand.Rand) bool {
	page := s.Base
	for i := 0; i < s.Count; i++ {
		if !touch(emit, s.PC, page, s.RefsPerStop) {
			return false
		}
		page = addPage(page, s.StridePages)
	}
	return true
}

// FreshScan is class (a): strided access over data touched only once. Its
// base advances every iteration, so history-based mechanisms never see a
// page twice (gzip's input stream, epic's image pass, ...).
type FreshScan struct {
	PC          uint64
	StartPage   uint64
	PagesPerRun int
	RefsPerPage int
	StridePages int64 // 0 means 1

	next    uint64
	started bool
}

// Run implements Phase.
func (f *FreshScan) Run(emit EmitFunc, _ *xrand.Rand) bool {
	if !f.started {
		f.next = f.StartPage
		f.started = true
	}
	stride := f.StridePages
	if stride == 0 {
		stride = 1
	}
	page := f.next
	for i := 0; i < f.PagesPerRun; i++ {
		if !touch(emit, f.PC, page, f.RefsPerPage) {
			return false
		}
		page = addPage(page, stride)
	}
	f.next = page
	return true
}

// MultiArray models one loop nest of a scientific code:
//
//	for i := range n { a[i]; b[i]; c[i] }
//
// Each array is swept at one page per ElemsPerPage iterations; each array's
// load has its own PC (PCBase+k). Order selects the traversal (forward,
// backward), which is how stencil codes visit the same arrays differently
// from nest to nest — the property that separates DP (distance rows carry
// over) from page- and PC-indexed history.
type MultiArray struct {
	PCBase        uint64
	Bases         []uint64 // starting page of each array
	PagesPerArray int
	ElemsPerPage  int
	Backward      bool
}

// Run implements Phase.
func (m *MultiArray) Run(emit EmitFunc, _ *xrand.Rand) bool {
	epp := m.ElemsPerPage
	if epp < 1 {
		epp = 1
	}
	iters := m.PagesPerArray * epp
	for i := 0; i < iters; i++ {
		pi := i / epp
		if m.Backward {
			pi = m.PagesPerArray - 1 - pi
		}
		off := uint64((i % epp) * (PageBytes / epp))
		for k, b := range m.Bases {
			page := b + uint64(pi)
			if !emit(m.PCBase+uint64(k)*4, page*PageBytes+off) {
				return false
			}
		}
	}
	return true
}

// Tiles models blocked stencil codes (multigrid level walks, red/black
// Gauss-Seidel, blocked SSOR): several arrays are swept tile by tile, and
// the tile visit order cycles between passes (forward, backward, even-odd).
// Each tile visit gives any single PC only TilePages consecutive misses, so
// PC-indexed stride prediction pays its relock tax at every tile boundary,
// and the changing tile order scrambles page-adjacency history — while the
// distance motif (intra-tile interleave distances plus a small alphabet of
// tile-jump distances) repeats forever. This is the regime where the paper
// finds DP "does much better than the others" (wupwise, swim, mgrid, applu).
type Tiles struct {
	PCBase        uint64
	Bases         []uint64 // starting page of each array
	PagesPerArray int
	TilePages     int
	ElemsPerPage  int

	pass int
}

// Run implements Phase.
func (t *Tiles) Run(emit EmitFunc, _ *xrand.Rand) bool {
	defer func() { t.pass++ }()
	epp := t.ElemsPerPage
	if epp < 1 {
		epp = 1
	}
	tp := t.TilePages
	if tp < 1 {
		tp = 1
	}
	ntiles := (t.PagesPerArray + tp - 1) / tp
	// Backward passes descend within each tile too, as a backward stencil
	// sweep does — flipping the page adjacency that recency/markov history
	// keys on, while the distance alphabet stays the same (±1 and the
	// inter-array gaps).
	backward := t.pass%3 == 1
	for _, tile := range tileOrder(ntiles, t.pass) {
		lo := tile * tp
		hi := lo + tp
		if hi > t.PagesPerArray {
			hi = t.PagesPerArray
		}
		for i := lo; i < hi; i++ {
			pi := i
			if backward {
				pi = hi - 1 - (i - lo)
			}
			for e := 0; e < epp; e++ {
				off := uint64(e * (PageBytes / epp))
				for k, b := range t.Bases {
					page := b + uint64(pi)
					if !emit(t.PCBase+uint64(k)*4, page*PageBytes+off) {
						return false
					}
				}
			}
		}
	}
	return true
}

// tileOrder returns the tile visit order for a pass: forward, backward, or
// even-tiles-then-odd-tiles (red/black), cycling with period 3.
func tileOrder(n, pass int) []int {
	out := make([]int, 0, n)
	switch pass % 3 {
	case 0:
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
	case 1:
		for i := n - 1; i >= 0; i-- {
			out = append(out, i)
		}
	default:
		for i := 0; i < n; i += 2 {
			out = append(out, i)
		}
		for i := 1; i < n; i += 2 {
			out = append(out, i)
		}
	}
	return out
}

// BlockMotif is class (d) behaviour as it arises in block-structured codecs
// (gsm, jpeg, mpeg): each block applies a fixed intra-block page-offset
// motif to a fresh base. The pages are new every block (defeating page-
// indexed history) and a single PC walks the whole motif (defeating
// PC-indexed stride detection); only the distance *pattern* repeats.
type BlockMotif struct {
	PC          uint64
	Start       uint64
	Motif       []int64 // page offsets within a block, applied in order
	BlockPages  uint64  // base advance between blocks
	Blocks      int     // blocks per Run
	RefsPerStop int
	// NoiseProb replaces a motif step with a uniformly random page in
	// [base, base+NoiseSpread) with this probability — dilution used for
	// the applications where the paper reports DP as the only mechanism
	// with noticeable (but modest) accuracy.
	NoiseProb   float64
	NoiseSpread uint64
	// Fresh makes the base advance across Runs (first-touch blocks). When
	// false, every Run revisits the same blocks (history repeats).
	Fresh bool

	next    uint64
	started bool
}

// Run implements Phase.
func (b *BlockMotif) Run(emit EmitFunc, r *xrand.Rand) bool {
	if !b.started {
		b.next = b.Start
		b.started = true
	}
	base := b.next
	if !b.Fresh {
		base = b.Start
	}
	for blk := 0; blk < b.Blocks; blk++ {
		for _, d := range b.Motif {
			page := addPage(base, d)
			if b.NoiseProb > 0 && r.Bool(b.NoiseProb) {
				page = base + r.Uint64n(b.NoiseSpread+1)
			}
			if !touch(emit, b.PC, page, b.RefsPerStop) {
				return false
			}
		}
		base += b.BlockPages
	}
	if b.Fresh {
		b.next = base
	}
	return true
}

// PointerChase is class (d) behaviour as it arises in pointer-linked data
// structures: a fixed, irregular page visit order (created once, from the
// workload's seed) that repeats every Run. The successor of a page is
// stable, which is exactly what recency/markov history exploits; strides
// are irregular, which is what starves PC-indexed stride detection.
//
// LocalityPages > 0 makes the shuffle block-local: pages are permuted only
// within blocks of that many pages, bounding the distance alphabet —
// the regime where DP's distance table stays competitive with RP.
type PointerChase struct {
	PC            uint64
	Base          uint64
	Pages         int
	RefsPerHop    int
	LocalityPages int

	order []uint32
}

// Run implements Phase.
func (p *PointerChase) Run(emit EmitFunc, r *xrand.Rand) bool {
	if p.order == nil {
		p.order = buildChaseOrder(p.Pages, p.LocalityPages, r)
	}
	for _, idx := range p.order {
		if !touch(emit, p.PC, p.Base+uint64(idx), p.RefsPerHop) {
			return false
		}
	}
	return true
}

func buildChaseOrder(pages, locality int, r *xrand.Rand) []uint32 {
	order := make([]uint32, pages)
	if locality <= 0 || locality >= pages {
		for i, v := range r.Perm(pages) {
			order[i] = uint32(v)
		}
		return order
	}
	// Block-local shuffle: permute within consecutive blocks.
	pos := 0
	for start := 0; start < pages; start += locality {
		n := locality
		if start+n > pages {
			n = pages - start
		}
		for _, v := range r.Perm(n) {
			order[pos] = uint32(start + v)
			pos++
		}
	}
	return order
}

// Alternating reproduces the paper's example of history that alternates —
// "a sequence such as 1,2,3,4, 1,5,2,6, 3,7,4,8, 1,2,3,4, ... would do
// better with MP than RP for s=2" (§3.2, parser/vortex discussion). Each
// page's successor flips between two values from pass to pass, so MP's two
// slots cover both while RP's single most-recent adjacency does not.
type Alternating struct {
	PC          uint64
	Base        uint64
	N           int
	RefsPerStop int

	pass int
}

// Run implements Phase.
func (a *Alternating) Run(emit EmitFunc, _ *xrand.Rand) bool {
	defer func() { a.pass++ }()
	if a.pass%2 == 0 {
		// S1: base+0 .. base+N-1.
		for i := 0; i < a.N; i++ {
			if !touch(emit, a.PC, a.Base+uint64(i), a.RefsPerStop) {
				return false
			}
		}
		return true
	}
	// S2: base+0, base+N+0, base+1, base+N+1, ...
	for i := 0; i < a.N; i++ {
		if !touch(emit, a.PC, a.Base+uint64(i), a.RefsPerStop) {
			return false
		}
		if !touch(emit, a.PC, a.Base+uint64(a.N+i), a.RefsPerStop) {
			return false
		}
	}
	return true
}

// HotSet models a working set small enough to live in the TLB: Refs
// references spread over Pages pages (uniform, or Zipf-skewed when Theta >
// 0). With Pages below the TLB size this produces almost no misses — the
// eon/g721/pgp-dec regime where "TLB prefetching is not as important for
// them anyway".
type HotSet struct {
	PC    uint64
	Base  uint64
	Pages int
	Refs  int
	Theta float64

	zipf *xrand.Zipf
}

// Run implements Phase.
func (h *HotSet) Run(emit EmitFunc, r *xrand.Rand) bool {
	if h.Theta > 0 && h.zipf == nil {
		h.zipf = xrand.NewZipf(h.Pages, h.Theta)
	}
	for i := 0; i < h.Refs; i++ {
		var idx int
		if h.zipf != nil {
			idx = h.zipf.Next(r)
			if idx >= h.Pages {
				idx = h.Pages - 1
			}
		} else {
			idx = r.Intn(h.Pages)
		}
		off := uint64(i*136) % PageBytes
		if !emit(h.PC, (h.Base+uint64(idx))*PageBytes+off) {
			return false
		}
	}
	return true
}

// RandomWalk is class (e): uniformly random pages over a footprint far
// beyond TLB reach, a stream no mechanism predicts (fma3d's regime).
type RandomWalk struct {
	PC          uint64
	Base        uint64
	Pages       int
	Hops        int
	RefsPerStop int
}

// Run implements Phase.
func (w *RandomWalk) Run(emit EmitFunc, r *xrand.Rand) bool {
	for i := 0; i < w.Hops; i++ {
		page := w.Base + uint64(r.Intn(w.Pages))
		if !touch(emit, w.PC, page, w.RefsPerStop) {
			return false
		}
	}
	return true
}

// Loop repeats its body phases Times times per Run — for weighting one
// behaviour more heavily than its siblings in a phase list.
type Loop struct {
	Times int
	Body  []Phase
}

// Run implements Phase.
func (l *Loop) Run(emit EmitFunc, r *xrand.Rand) bool {
	for i := 0; i < l.Times; i++ {
		for _, p := range l.Body {
			if !p.Run(emit, r) {
				return false
			}
		}
	}
	return true
}
