package workload

import (
	"testing"

	"tlbprefetch/internal/xrand"
)

// collect runs a phase once and returns the page sequence and PC sequence.
func collect(p Phase, seed uint64) (pages []uint64, pcs []uint64) {
	r := xrand.New(seed)
	p.Run(func(pc, vaddr uint64) bool {
		pages = append(pages, vaddr/PageBytes)
		pcs = append(pcs, pc)
		return true
	}, r)
	return pages, pcs
}

// distinctRuns returns the distinct pages in order of first touch.
func distinct(pages []uint64) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, p := range pages {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func TestSeqForward(t *testing.T) {
	pages, pcs := collect(&Seq{PC: 7, Base: 100, Pages: 3, RefsPerPage: 2}, 1)
	want := []uint64{100, 100, 101, 101, 102, 102}
	if len(pages) != len(want) {
		t.Fatalf("pages = %v", pages)
	}
	for i := range want {
		if pages[i] != want[i] || pcs[i] != 7 {
			t.Fatalf("pages = %v pcs = %v", pages, pcs)
		}
	}
}

func TestSeqBackward(t *testing.T) {
	pages, _ := collect(&Seq{PC: 7, Base: 100, Pages: 3, RefsPerPage: 1, Backward: true}, 1)
	want := []uint64{102, 101, 100}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages = %v, want %v", pages, want)
		}
	}
}

func TestSeqZeroRefsPerPageDefaultsToOne(t *testing.T) {
	pages, _ := collect(&Seq{PC: 1, Base: 5, Pages: 2}, 1)
	if len(pages) != 2 {
		t.Fatalf("pages = %v", pages)
	}
}

func TestStrideNegative(t *testing.T) {
	pages, _ := collect(&Stride{PC: 1, Base: 100, StridePages: -3, Count: 3, RefsPerStop: 1}, 1)
	want := []uint64{100, 97, 94}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages = %v, want %v", pages, want)
		}
	}
}

func TestFreshScanNeverRepeats(t *testing.T) {
	f := &FreshScan{PC: 1, StartPage: 1000, PagesPerRun: 5, RefsPerPage: 1}
	var all []uint64
	r := xrand.New(1)
	for run := 0; run < 4; run++ {
		f.Run(func(pc, vaddr uint64) bool {
			all = append(all, vaddr/PageBytes)
			return true
		}, r)
	}
	if len(all) != 20 {
		t.Fatalf("refs = %d", len(all))
	}
	if len(distinct(all)) != 20 {
		t.Fatalf("fresh scan repeated a page: %v", all)
	}
	// Pages advance monotonically.
	for i := 1; i < len(all); i++ {
		if all[i] != all[i-1]+1 {
			t.Fatalf("not sequential at %d: %v", i, all)
		}
	}
}

func TestFreshScanStride(t *testing.T) {
	f := &FreshScan{PC: 1, StartPage: 1000, PagesPerRun: 3, RefsPerPage: 1, StridePages: 4}
	pages, _ := collect(f, 1)
	want := []uint64{1000, 1004, 1008}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages = %v, want %v", pages, want)
		}
	}
}

func TestMultiArrayInterleaves(t *testing.T) {
	m := &MultiArray{PCBase: 100, Bases: []uint64{1000, 2000}, PagesPerArray: 2, ElemsPerPage: 2}
	pages, pcs := collect(m, 1)
	wantPages := []uint64{1000, 2000, 1000, 2000, 1001, 2001, 1001, 2001}
	wantPCs := []uint64{100, 104, 100, 104, 100, 104, 100, 104}
	if len(pages) != len(wantPages) {
		t.Fatalf("pages = %v", pages)
	}
	for i := range wantPages {
		if pages[i] != wantPages[i] || pcs[i] != wantPCs[i] {
			t.Fatalf("pages = %v pcs = %v", pages, pcs)
		}
	}
}

func TestMultiArrayBackward(t *testing.T) {
	m := &MultiArray{PCBase: 100, Bases: []uint64{1000}, PagesPerArray: 3, ElemsPerPage: 1, Backward: true}
	pages, _ := collect(m, 1)
	want := []uint64{1002, 1001, 1000}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages = %v", pages)
		}
	}
}

func TestTileOrderPatterns(t *testing.T) {
	if got := tileOrder(4, 0); !equalInts(got, []int{0, 1, 2, 3}) {
		t.Fatalf("forward = %v", got)
	}
	if got := tileOrder(4, 1); !equalInts(got, []int{3, 2, 1, 0}) {
		t.Fatalf("backward = %v", got)
	}
	if got := tileOrder(5, 2); !equalInts(got, []int{0, 2, 4, 1, 3}) {
		t.Fatalf("red-black = %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTilesCoverAllPagesEveryPass(t *testing.T) {
	ti := &Tiles{PCBase: 100, Bases: []uint64{1000, 5000}, PagesPerArray: 10, TilePages: 4, ElemsPerPage: 1}
	r := xrand.New(1)
	for pass := 0; pass < 3; pass++ {
		var pages []uint64
		ti.Run(func(pc, vaddr uint64) bool {
			pages = append(pages, vaddr/PageBytes)
			return true
		}, r)
		if len(pages) != 20 {
			t.Fatalf("pass %d: %d refs, want 20", pass, len(pages))
		}
		if len(distinct(pages)) != 20 {
			t.Fatalf("pass %d: pages revisited within pass", pass)
		}
	}
}

func TestTilesOrderRotates(t *testing.T) {
	mk := func() *Tiles {
		return &Tiles{PCBase: 0, Bases: []uint64{1000}, PagesPerArray: 8, TilePages: 2, ElemsPerPage: 1}
	}
	ti := mk()
	r := xrand.New(1)
	first, _ := collect(ti, 1)
	var second []uint64
	ti.Run(func(pc, vaddr uint64) bool {
		second = append(second, vaddr/PageBytes)
		return true
	}, r)
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("tile order did not rotate between passes")
	}
}

func TestBlockMotifFreshAdvances(t *testing.T) {
	b := &BlockMotif{PC: 1, Start: 1000, Motif: []int64{0, 2, 1}, BlockPages: 4, Blocks: 2, RefsPerStop: 1, Fresh: true}
	r := xrand.New(1)
	var run1, run2 []uint64
	b.Run(func(pc, vaddr uint64) bool { run1 = append(run1, vaddr/PageBytes); return true }, r)
	b.Run(func(pc, vaddr uint64) bool { run2 = append(run2, vaddr/PageBytes); return true }, r)
	want1 := []uint64{1000, 1002, 1001, 1004, 1006, 1005}
	for i := range want1 {
		if run1[i] != want1[i] {
			t.Fatalf("run1 = %v, want %v", run1, want1)
		}
	}
	// Fresh: the second run starts where the first ended.
	if run2[0] != 1008 {
		t.Fatalf("run2 starts at %d, want 1008", run2[0])
	}
}

func TestBlockMotifNonFreshRepeats(t *testing.T) {
	b := &BlockMotif{PC: 1, Start: 1000, Motif: []int64{0, 1}, BlockPages: 2, Blocks: 2, RefsPerStop: 1}
	r := xrand.New(1)
	var run1, run2 []uint64
	b.Run(func(pc, vaddr uint64) bool { run1 = append(run1, vaddr/PageBytes); return true }, r)
	b.Run(func(pc, vaddr uint64) bool { run2 = append(run2, vaddr/PageBytes); return true }, r)
	for i := range run1 {
		if run1[i] != run2[i] {
			t.Fatalf("non-fresh motif did not repeat: %v vs %v", run1, run2)
		}
	}
}

func TestBlockMotifNoiseBounded(t *testing.T) {
	b := &BlockMotif{PC: 1, Start: 1000, Motif: []int64{0, 1}, BlockPages: 2, Blocks: 50,
		RefsPerStop: 1, NoiseProb: 1.0, NoiseSpread: 7, Fresh: true}
	pages, _ := collect(b, 42)
	base := uint64(1000)
	i := 0
	for blk := 0; blk < 50; blk++ {
		for range 2 {
			p := pages[i]
			if p < base || p > base+7 {
				t.Fatalf("noise page %d outside [%d, %d]", p, base, base+7)
			}
			i++
		}
		base += 2
	}
}

func TestPointerChaseStableAcrossRuns(t *testing.T) {
	pc := &PointerChase{PC: 1, Base: 100, Pages: 16, RefsPerHop: 1}
	r := xrand.New(7)
	var run1, run2 []uint64
	pc.Run(func(_, vaddr uint64) bool { run1 = append(run1, vaddr/PageBytes); return true }, r)
	pc.Run(func(_, vaddr uint64) bool { run2 = append(run2, vaddr/PageBytes); return true }, r)
	if len(run1) != 16 || len(distinct(run1)) != 16 {
		t.Fatalf("run1 = %v", run1)
	}
	for i := range run1 {
		if run1[i] != run2[i] {
			t.Fatal("chase order changed between runs — history mechanisms need it stable")
		}
	}
}

func TestPointerChaseBlockLocal(t *testing.T) {
	pc := &PointerChase{PC: 1, Base: 0, Pages: 32, RefsPerHop: 1, LocalityPages: 8}
	pages, _ := collect(pc, 9)
	// Each group of 8 hops stays within its 8-page block.
	for i, p := range pages {
		block := uint64(i / 8 * 8)
		if p < block || p >= block+8 {
			t.Fatalf("hop %d page %d escapes block [%d,%d)", i, p, block, block+8)
		}
	}
}

func TestAlternatingMatchesPaperExample(t *testing.T) {
	// N=4 reproduces the paper's example string: S1 = 1,2,3,4 and
	// S2 = 1,5,2,6,3,7,4,8 (base 1).
	a := &Alternating{PC: 1, Base: 1, N: 4, RefsPerStop: 1}
	r := xrand.New(1)
	var s1, s2 []uint64
	a.Run(func(_, vaddr uint64) bool { s1 = append(s1, vaddr/PageBytes); return true }, r)
	a.Run(func(_, vaddr uint64) bool { s2 = append(s2, vaddr/PageBytes); return true }, r)
	want1 := []uint64{1, 2, 3, 4}
	want2 := []uint64{1, 5, 2, 6, 3, 7, 4, 8}
	for i := range want1 {
		if s1[i] != want1[i] {
			t.Fatalf("S1 = %v, want %v", s1, want1)
		}
	}
	for i := range want2 {
		if s2[i] != want2[i] {
			t.Fatalf("S2 = %v, want %v", s2, want2)
		}
	}
}

func TestHotSetBoundsAndSkew(t *testing.T) {
	h := &HotSet{PC: 1, Base: 100, Pages: 16, Refs: 4000, Theta: 0.8}
	pages, _ := collect(h, 3)
	if len(pages) != 4000 {
		t.Fatalf("refs = %d", len(pages))
	}
	counts := map[uint64]int{}
	for _, p := range pages {
		if p < 100 || p >= 116 {
			t.Fatalf("page %d out of range", p)
		}
		counts[p]++
	}
	// Zipf: the hottest page must dominate the coldest noticeably.
	if counts[100] < counts[115]*2 {
		t.Fatalf("no skew: first=%d last=%d", counts[100], counts[115])
	}
}

func TestRandomWalkBounds(t *testing.T) {
	w := &RandomWalk{PC: 1, Base: 50, Pages: 10, Hops: 500, RefsPerStop: 2}
	pages, _ := collect(w, 11)
	if len(pages) != 1000 {
		t.Fatalf("refs = %d", len(pages))
	}
	for _, p := range pages {
		if p < 50 || p >= 60 {
			t.Fatalf("page %d out of range", p)
		}
	}
}

func TestLoopRepeats(t *testing.T) {
	l := &Loop{Times: 3, Body: []Phase{&Seq{PC: 1, Base: 0, Pages: 2, RefsPerPage: 1}}}
	pages, _ := collect(l, 1)
	if len(pages) != 6 {
		t.Fatalf("refs = %d, want 6", len(pages))
	}
}

func TestPhaseFunc(t *testing.T) {
	calls := 0
	p := PhaseFunc(func(emit EmitFunc, _ *xrand.Rand) bool {
		calls++
		return emit(1, 4096)
	})
	pages, _ := collect(p, 1)
	if calls != 1 || len(pages) != 1 || pages[0] != 1 {
		t.Fatalf("calls=%d pages=%v", calls, pages)
	}
}

func TestPhasesStopWhenEmitRefuses(t *testing.T) {
	phases := []Phase{
		&Seq{PC: 1, Base: 0, Pages: 100, RefsPerPage: 3},
		&Stride{PC: 1, Base: 0, StridePages: 1, Count: 100, RefsPerStop: 3},
		&FreshScan{PC: 1, StartPage: 0, PagesPerRun: 100, RefsPerPage: 3},
		&MultiArray{PCBase: 1, Bases: []uint64{0, 10}, PagesPerArray: 50, ElemsPerPage: 2},
		&Tiles{PCBase: 1, Bases: []uint64{0}, PagesPerArray: 100, TilePages: 5, ElemsPerPage: 2},
		&BlockMotif{PC: 1, Start: 0, Motif: []int64{0, 1}, BlockPages: 2, Blocks: 100, RefsPerStop: 3},
		&PointerChase{PC: 1, Base: 0, Pages: 100, RefsPerHop: 3},
		&Alternating{PC: 1, Base: 0, N: 100, RefsPerStop: 3},
		&HotSet{PC: 1, Base: 0, Pages: 10, Refs: 100},
		&RandomWalk{PC: 1, Base: 0, Pages: 10, Hops: 100, RefsPerStop: 3},
		&Loop{Times: 10, Body: []Phase{&Seq{PC: 1, Base: 0, Pages: 10, RefsPerPage: 1}}},
	}
	for _, p := range phases {
		n := 0
		r := xrand.New(1)
		ok := p.Run(func(pc, vaddr uint64) bool {
			n++
			return n < 5
		}, r)
		if ok {
			t.Errorf("%T: Run returned true after emit refused", p)
		}
		if n != 5 {
			t.Errorf("%T: emitted %d refs after refusal, want exactly 5", p, n)
		}
	}
}
