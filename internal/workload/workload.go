// Package workload synthesizes the memory reference streams of the 56
// applications the paper evaluates (26 SPEC CPU2000, 20 MediaBench, 5 Etch,
// 5 Pointer-Intensive).
//
// The paper ran real binaries under SimpleScalar and Shade. Those binaries,
// inputs and trace files are not available here, so each application is
// modelled as a deterministic composition of reference-behaviour primitives
// drawn from the taxonomy the paper itself lays out in §1:
//
//	(a) regular/strided accesses to data touched once         -> FreshScan
//	(b) regular/strided accesses to data touched repeatedly   -> Seq, Stride, MultiArray
//	(c) strided accesses whose stride changes over time        -> phase lists, MultiArray nests
//	(d) irregular but repeating reference patterns             -> PointerChase, BlockMotif, Alternating
//	(e) no regularity                                          -> RandomWalk
//
// Each named application model carries a PaperNote citing the sentence of
// the paper's §3.2 narrative it encodes (which mechanism wins and why).
// `experiments table2` and `experiments table3` print the resulting
// accuracies next to the published values, and docs/EXPERIMENTS.md walks
// the workflows that regenerate them.
package workload

import (
	"fmt"
	"sort"

	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/xrand"
)

// PageBytes is the page size the generators are calibrated in. Models think
// in 4 KB pages but emit full byte addresses with intra-page offsets, so
// simulations at other page sizes (the ext-pagesize experiment) remain
// meaningful.
const PageBytes = 4096

// EmitFunc consumes one generated reference; returning false stops
// generation.
type EmitFunc func(pc, vaddr uint64) bool

// Phase generates one iteration (one outer-loop pass) of a program's
// reference behaviour. Run must return false as soon as emit does.
// Phases may keep state across calls (e.g. FreshScan's advancing base);
// Workload.Build constructs fresh instances per generation run.
type Phase interface {
	Run(emit EmitFunc, r *xrand.Rand) bool
}

// PhaseFunc adapts a plain function to Phase, for one-off streams (the
// cache-level extension writes block-granular streams this way).
type PhaseFunc func(emit EmitFunc, r *xrand.Rand) bool

// Run implements Phase.
func (f PhaseFunc) Run(emit EmitFunc, r *xrand.Rand) bool { return f(emit, r) }

// Workload is a named application model.
type Workload struct {
	// Name matches the paper's benchmark name (e.g. "swim", "adpcm-enc").
	Name string
	// Suite is one of "SPEC", "MediaBench", "Etch", "PointerIntensive".
	Suite string
	// PaperNote cites the behaviour the model encodes.
	PaperNote string
	// Seed makes the model's stream deterministic.
	Seed uint64
	// Build returns fresh phase instances. Generate cycles through the
	// list until the reference budget is exhausted.
	Build func() []Phase
}

// Generate produces exactly refs references (or fewer if the sink stops
// early), cycling the workload's phase list. It returns the number emitted.
func Generate(w Workload, refs uint64, raw EmitFunc) uint64 {
	if w.Build == nil {
		return 0
	}
	r := xrand.New(w.Seed)
	phases := w.Build()
	if len(phases) == 0 {
		return 0
	}
	var emitted uint64
	stopped := false
	emit := func(pc, vaddr uint64) bool {
		if stopped || emitted >= refs {
			stopped = true
			return false
		}
		emitted++
		if !raw(pc, vaddr) || emitted >= refs {
			stopped = true
			return false
		}
		return true
	}
	for !stopped && emitted < refs {
		before := emitted
		for _, p := range phases {
			if !p.Run(emit, r) {
				stopped = true
				break
			}
		}
		if emitted == before {
			// A phase list that emits nothing would spin forever.
			break
		}
	}
	return emitted
}

// Reader adapts a workload to a trace.Reader producing refs references.
// The stream is materialized up front (16 bytes per reference), which is
// fine for the experiment-scale runs; for writing very large trace files
// use the push-based GenerateTo instead.
func Reader(w Workload, refs uint64) trace.Reader {
	buf := make([]trace.Ref, 0, refs)
	Generate(w, refs, func(pc, vaddr uint64) bool {
		buf = append(buf, trace.Ref{PC: pc, VAddr: vaddr})
		return true
	})
	return trace.NewSliceReader(buf)
}

// GenerateTo streams refs references into a trace writer without
// materializing them. It returns the count written and the first write
// error, if any.
func GenerateTo(w Workload, refs uint64, dst trace.Writer) (uint64, error) {
	var werr error
	n := Generate(w, refs, func(pc, vaddr uint64) bool {
		if err := dst.Write(trace.Ref{PC: pc, VAddr: vaddr}); err != nil {
			werr = err
			return false
		}
		return true
	})
	return n, werr
}

// registry of all 56 workloads, populated by the apps_*.go files' init
// functions.
var registry []Workload

func register(w Workload) {
	if w.Name == "" || w.Build == nil {
		panic("workload: register requires Name and Build")
	}
	for _, e := range registry {
		if e.Name == w.Name {
			panic(fmt.Sprintf("workload: duplicate registration of %q", w.Name))
		}
	}
	registry = append(registry, w)
}

// All returns every registered workload, sorted by suite then name.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the workloads of one suite in registration (paper figure)
// order.
func Suite(name string) []Workload {
	var out []Workload
	for _, w := range registry {
		if w.Suite == name {
			out = append(out, w)
		}
	}
	return out
}

// ByName looks a workload up by its benchmark name.
func ByName(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names returns all registered names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}
