package workload

// The 26 SPEC CPU2000 models (paper Figure 7). Each model's phase
// composition encodes the §3.2 narrative for that benchmark; the miss-rate
// dilution (RefsPerPage / RefsPerStop / HotSet refs) is tuned so that the
// eight applications the paper singles out as having the highest d-TLB miss
// rates (galgel .228, adpcm-enc .192, mcf .090, apsi .018, vpr .016, lucas
// .016, twolf .013, ammp .0113 for the 128-entry fully associative TLB)
// land near those rates and every other model stays below them.

const (
	pcSPEC = 0x00400000 // PC region for SPEC models
)

func init() {
	// gzip: "[ASP's] regularity also helps ASP capture many of the first
	// time reference predictions that history based mechanisms are not
	// very well suited to, as in gzip ..." — a compressor streams over
	// fresh input/output buffers (class (a)) with a hot dictionary.
	register(Workload{
		Name:  "gzip",
		Suite: "SPEC",
		Seed:  0x5101,
		PaperNote: "first-touch sequential streams: ASP/DP predict cold pages, " +
			"RP/MP have no history to replay",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcSPEC + 0x00, StartPage: 1 << 21, PagesPerRun: 30, RefsPerPage: 60},
				&HotSet{PC: pcSPEC + 0x10, Base: 1 << 20, Pages: 48, Refs: 9000, Theta: 0.6},
				&FreshScan{PC: pcSPEC + 0x20, StartPage: 1 << 22, PagesPerRun: 30, RefsPerPage: 60},
				&RandomWalk{PC: pcSPEC + 0x30, Base: 1<<20 + 2097169, Pages: 1500, Hops: 28, RefsPerStop: 60},
			}
		},
	})

	// vpr: placement/routing over a netlist — an irregular but stable
	// visit order. "Of these 8 chosen applications, RP provides better
	// accuracy than DP for 5 applications - vpr, mcf, twolf, ammp and
	// lucas." Paper miss rate 0.016.
	register(Workload{
		Name:  "vpr",
		Suite: "SPEC",
		Seed:  0x5102,
		PaperNote: "repeating irregular traversal: history (RP) best, DP close via " +
			"the bounded distance alphabet, ASP starved",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x100, Base: 1 << 20, Pages: 760, RefsPerHop: 56, LocalityPages: 20},
				&Stride{PC: pcSPEC + 0x120, Base: 1<<20 + 262165, StridePages: 1, Count: 260, RefsPerStop: 56},
				&HotSet{PC: pcSPEC + 0x110, Base: 1<<20 + 4111, Pages: 40, Refs: 5000, Theta: 0.5},
			}
		},
	})

	// gcc: "RP giving the best, or close to the best performance for
	// applications such as gcc ..." and "DP comes very close to RP or MP
	// in several applications where history-based predictions do the best
	// such as gcc ...".
	register(Workload{
		Name:  "gcc",
		Suite: "SPEC",
		Seed:  0x5103,
		PaperNote: "compiler IR walks: stable irregular revisits (RP best), " +
			"block-local pointers keep DP close",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x200, Base: 1 << 20, Pages: 900, RefsPerHop: 100, LocalityPages: 12},
				&Seq{PC: pcSPEC + 0x210, Base: 1<<20 + 8219, Pages: 120, RefsPerPage: 100},
			}
		},
	})

	// mcf: network-simplex pointer chasing over a large graph; the
	// highest-miss-rate integer code (paper rate 0.090). RP beats DP on
	// accuracy but loses on cycles (Table 3: RP 1.09 vs DP 0.95).
	register(Workload{
		Name:  "mcf",
		Suite: "SPEC",
		Seed:  0x5104,
		PaperNote: "large-footprint pointer chase: RP's in-memory history wins accuracy; " +
			"its 4 pointer ops per miss lose the cycle race",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x300, Base: 1 << 20, Pages: 3600, RefsPerHop: 10, LocalityPages: 36},
				&HotSet{PC: pcSPEC + 0x310, Base: 1<<20 + 16421, Pages: 48, Refs: 4000, Theta: 0.4},
			}
		},
	})

	// crafty: chess hash/board structures — history repeats, no strides.
	// "there are applications such as crafty and parser where the accesses
	// are not strided enough for ASP to perform well, but historical
	// indications can give a much better perspective ... for RP and MP."
	register(Workload{
		Name:  "crafty",
		Suite: "SPEC",
		Seed:  0x5105,
		PaperNote: "unstrided repeating traversal: RP/MP good, ASP near zero, " +
			"DP middling (wide distance alphabet)",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x400, Base: 1 << 20, Pages: 300, RefsPerHop: 110},
				&HotSet{PC: pcSPEC + 0x410, Base: 1<<20 + 2063, Pages: 64, Refs: 12000, Theta: 0.7},
			}
		},
	})

	// parser: "There are some applications such as parser and vortex where
	// MP does better than even RP ... it is possible that there is
	// alternation in history" — the paper's 1,2,3,4 / 1,5,2,6,3,7,4,8
	// example, which Alternating reproduces literally.
	register(Workload{
		Name:  "parser",
		Suite: "SPEC",
		Seed:  0x5106,
		PaperNote: "alternating successors: MP's two slots beat RP's single " +
			"adjacency; DP tracks the alternating distance pair",
		Build: func() []Phase {
			return []Phase{
				&Alternating{PC: pcSPEC + 0x500, Base: 1 << 20, N: 280, RefsPerStop: 100},
				&PointerChase{PC: pcSPEC + 0x510, Base: 1<<20 + 5681, Pages: 200, RefsPerHop: 100, LocalityPages: 16},
			}
		},
	})

	// perlbmk: interpreter sweeping fresh op/string buffers (ASP group in
	// the paper) over a hot interpreter core.
	register(Workload{
		Name:      "perlbmk",
		Suite:     "SPEC",
		Seed:      0x5107,
		PaperNote: "first-touch strided allocation sweeps: ASP/DP capture cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcSPEC + 0x600, StartPage: 1 << 21, PagesPerRun: 24, RefsPerPage: 70},
				&HotSet{PC: pcSPEC + 0x610, Base: 1 << 20, Pages: 72, Refs: 14000, Theta: 0.6},
				&RandomWalk{PC: pcSPEC + 0x620, Base: 1<<20 + 2097169, Pages: 1200, Hops: 14, RefsPerStop: 70},
			}
		},
	})

	// eon: "Many of these applications (eon, ...) have so few TLB misses
	// that a significant history does not build up" — a raytracer whose
	// scene fits the TLB.
	register(Workload{
		Name:      "eon",
		Suite:     "SPEC",
		Seed:      0x5108,
		PaperNote: "working set inside the TLB: almost no misses, nothing to predict",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcSPEC + 0x700, Base: 1 << 20, Pages: 90, Refs: 30000, Theta: 0.3},
				&RandomWalk{PC: pcSPEC + 0x710, Base: 1<<20 + 65551, Pages: 5000, Hops: 10, RefsPerStop: 2},
			}
		},
	})

	// wupwise/swim/mgrid/applu: "there are several applications such as
	// wupwise, swim, mgrid, applu ... where DP does much better than the
	// others." Modelled as blocked stencil sweeps (Tiles): short per-PC
	// miss runs at every tile boundary tax ASP's relock, changing tile
	// orders scramble RP/MP's page adjacency, and only the distance motif
	// persists.
	registerStencil("wupwise", 0x5109, pcSPEC+0x800, 4, 330, 4, 96)
	registerStencil("swim", 0x510a, pcSPEC+0xa00, 3, 450, 4, 96)
	registerStencil("mgrid", 0x510b, pcSPEC+0xc00, 4, 340, 4, 96)
	registerStencil("applu", 0x510c, pcSPEC+0xe00, 5, 270, 5, 96)

	// mesa: "applications such as facerec, galgel, art, gap, and mesa where
	// nearly all mechanisms give quite good prediction accuracies ... The
	// only exception is that in some cases (such as galgel, art, mesa) MP
	// performs poorly with small r" — repeated regular sweeps over a
	// footprint larger than MP's small tables.
	register(Workload{
		Name:  "mesa",
		Suite: "SPEC",
		Seed:  0x510d,
		PaperNote: "repeated regular sweeps, large footprint: all good except " +
			"MP at small r (needs a row per page)",
		Build: func() []Phase {
			return []Phase{
				&Seq{PC: pcSPEC + 0x1000, Base: 1 << 20, Pages: 700, RefsPerPage: 105},
				&Seq{PC: pcSPEC + 0x1010, Base: 1<<20 + 1048601, Pages: 700, RefsPerPage: 105, Backward: true},
				&RandomWalk{PC: pcSPEC + 0x1020, Base: 1<<20 + 2097169, Pages: 3000, Hops: 250, RefsPerStop: 105},
			}
		},
	})

	// galgel: the highest d-TLB miss rate in the study (0.228) — Fortran
	// column-order sweeps where nearly every access opens a new page.
	register(Workload{
		Name:  "galgel",
		Suite: "SPEC",
		Seed:  0x510e,
		PaperNote: "column-major strided sweeps, repeated: ASP/DP/RP all high; " +
			"MP needs more rows than its table has; miss rate ~0.23",
		Build: func() []Phase {
			return []Phase{
				&Stride{PC: pcSPEC + 0x1100, Base: 1 << 20, StridePages: 1, Count: 900, RefsPerStop: 4},
				&Stride{PC: pcSPEC + 0x1110, Base: 1 << 20, StridePages: 1, Count: 900, RefsPerStop: 4},
				&PointerChase{PC: pcSPEC + 0x1130, Base: 1<<20 + 131101, Pages: 130, RefsPerHop: 4},
				&HotSet{PC: pcSPEC + 0x1120, Base: 1<<20 + 1048601, Pages: 32, Refs: 600, Theta: 0.5},
			}
		},
	})

	// art: neural-net image scan — repeated sweeps over two big layers.
	register(Workload{
		Name:      "art",
		Suite:     "SPEC",
		Seed:      0x510f,
		PaperNote: "repeated sweeps over large layers: all good, MP small-r poor",
		Build: func() []Phase {
			return []Phase{
				&Seq{PC: pcSPEC + 0x1200, Base: 1 << 20, Pages: 600, RefsPerPage: 110},
				&Seq{PC: pcSPEC + 0x1210, Base: 1<<20 + 524309, Pages: 450, RefsPerPage: 110},
				&RandomWalk{PC: pcSPEC + 0x1220, Base: 1<<20 + 2097169, Pages: 2500, Hops: 180, RefsPerStop: 110},
			}
		},
	})

	// gap: group-theory workspace swept regularly and repeatedly.
	register(Workload{
		Name:      "gap",
		Suite:     "SPEC",
		Seed:      0x5110,
		PaperNote: "repeated regular sweeps: all mechanisms good",
		Build: func() []Phase {
			return []Phase{
				&Seq{PC: pcSPEC + 0x1300, Base: 1 << 20, Pages: 380, RefsPerPage: 110},
				&Stride{PC: pcSPEC + 0x1310, Base: 1<<20 + 262165, StridePages: 2, Count: 190, RefsPerStop: 110},
				&RandomWalk{PC: pcSPEC + 0x1320, Base: 1<<20 + 2097169, Pages: 2000, Hops: 100, RefsPerStop: 110},
			}
		},
	})

	// vortex: OO database — alternation plus stable history (MP > RP).
	register(Workload{
		Name:      "vortex",
		Suite:     "SPEC",
		Seed:      0x5111,
		PaperNote: "alternating successors in DB lookups: MP beats RP",
		Build: func() []Phase {
			return []Phase{
				&Alternating{PC: pcSPEC + 0x1400, Base: 1 << 20, N: 220, RefsPerStop: 100},
				&PointerChase{PC: pcSPEC + 0x1410, Base: 1<<20 + 4537, Pages: 260, RefsPerHop: 100, LocalityPages: 24},
			}
		},
	})

	// bzip2: block compressor — fresh block sweeps with a hot work area.
	register(Workload{
		Name:      "bzip",
		Suite:     "SPEC",
		Seed:      0x5112,
		PaperNote: "first-touch block sweeps: strided predictors ahead",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcSPEC + 0x1500, StartPage: 1 << 21, PagesPerRun: 26, RefsPerPage: 100},
				&Seq{PC: pcSPEC + 0x1510, Base: 1 << 20, Pages: 130, RefsPerPage: 100},
				&RandomWalk{PC: pcSPEC + 0x1520, Base: 1<<20 + 2097169, Pages: 1200, Hops: 36, RefsPerStop: 100},
			}
		},
	})

	// twolf: placement annealing — like vpr, stable irregular revisits
	// (paper miss rate 0.013, RP slightly ahead of DP).
	register(Workload{
		Name:      "twolf",
		Suite:     "SPEC",
		Seed:      0x5113,
		PaperNote: "repeating irregular traversal: RP best, DP close",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x1600, Base: 1 << 20, Pages: 640, RefsPerHop: 72, LocalityPages: 20},
				&Stride{PC: pcSPEC + 0x1620, Base: 1<<20 + 262165, StridePages: 1, Count: 200, RefsPerStop: 72},
				&HotSet{PC: pcSPEC + 0x1610, Base: 1<<20 + 4111, Pages: 48, Refs: 4200, Theta: 0.5},
			}
		},
	})

	// equake: sparse solver streaming fresh mesh data (ASP group).
	register(Workload{
		Name:      "equake",
		Suite:     "SPEC",
		Seed:      0x5114,
		PaperNote: "first-touch strided mesh sweeps: ASP/DP capture cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcSPEC + 0x1700, StartPage: 1 << 21, PagesPerRun: 30, RefsPerPage: 100, StridePages: 1},
				&Seq{PC: pcSPEC + 0x1710, Base: 1 << 20, Pages: 100, RefsPerPage: 100},
				&RandomWalk{PC: pcSPEC + 0x1720, Base: 1<<20 + 2097169, Pages: 1200, Hops: 32, RefsPerStop: 100},
			}
		},
	})

	// facerec: image matching — repeated regular sweeps, moderate footprint.
	register(Workload{
		Name:      "facerec",
		Suite:     "SPEC",
		Seed:      0x5115,
		PaperNote: "repeated regular sweeps: all mechanisms good",
		Build: func() []Phase {
			return []Phase{
				&Seq{PC: pcSPEC + 0x1800, Base: 1 << 20, Pages: 240, RefsPerPage: 110},
				&Stride{PC: pcSPEC + 0x1810, Base: 1<<20 + 131101, StridePages: 2, Count: 120, RefsPerStop: 110},
				&RandomWalk{PC: pcSPEC + 0x1820, Base: 1<<20 + 2097169, Pages: 1500, Hops: 60, RefsPerStop: 110},
			}
		},
	})

	// ammp: molecular dynamics neighbour lists — block-sorted irregular
	// walk; RP best (paper rate 0.0113), DP close behind, and the Table 3
	// cycle win for DP is largest here (RP 0.97 vs DP 0.86).
	register(Workload{
		Name:      "ammp",
		Suite:     "SPEC",
		Seed:      0x5116,
		PaperNote: "block-local irregular neighbour walk: RP best, DP close",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x1900, Base: 1 << 20, Pages: 560, RefsPerHop: 88, LocalityPages: 14},
				&Stride{PC: pcSPEC + 0x1910, Base: 1<<20 + 262165, StridePages: 1, Count: 150, RefsPerStop: 88},
			}
		},
	})

	// lucas: FFT-style bit-reversed passes — repeating irregularity with
	// block structure; RP best, paper rate 0.016.
	register(Workload{
		Name:      "lucas",
		Suite:     "SPEC",
		Seed:      0x5117,
		PaperNote: "bit-reversal-like repeating permutation: history wins, DP moderate",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x1a00, Base: 1 << 20, Pages: 720, RefsPerHop: 62, LocalityPages: 48},
				&Stride{PC: pcSPEC + 0x1a10, Base: 1<<20 + 262165, StridePages: 2, Count: 220, RefsPerStop: 62},
			}
		},
	})

	// fma3d: "the irregularity makes it very difficult for any mechanism to
	// do well."
	register(Workload{
		Name:      "fma3d",
		Suite:     "SPEC",
		Seed:      0x5118,
		PaperNote: "unstructured random walk: nothing predicts",
		Build: func() []Phase {
			return []Phase{
				&RandomWalk{PC: pcSPEC + 0x1b00, Base: 1 << 20, Pages: 4000, Hops: 600, RefsPerStop: 110},
			}
		},
	})

	// sixtrack: particle tracking — stable revisit order (RP group).
	register(Workload{
		Name:      "sixtrack",
		Suite:     "SPEC",
		Seed:      0x5119,
		PaperNote: "stable repeating traversal: RP best or close to it",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcSPEC + 0x1c00, Base: 1 << 20, Pages: 420, RefsPerHop: 110, LocalityPages: 32},
				&Seq{PC: pcSPEC + 0x1c10, Base: 1<<20 + 262165, Pages: 90, RefsPerPage: 110},
			}
		},
	})

	// apsi: weather code mixing strided field sweeps with a repeating
	// irregular component (RP group; paper rate 0.018). ASP's accuracy
	// notably drops at r=1024 here in the paper (buffer thrash from
	// aggressive prediction), an effect the small prefetch buffer
	// reproduces.
	register(Workload{
		Name:      "apsi",
		Suite:     "SPEC",
		Seed:      0x511a,
		PaperNote: "strided field sweeps + repeating irregular walk: RP best, DP close",
		Build: func() []Phase {
			return []Phase{
				&Stride{PC: pcSPEC + 0x1d00, Base: 1 << 20, StridePages: 1, Count: 250, RefsPerStop: 55},
				&PointerChase{PC: pcSPEC + 0x1d10, Base: 1<<20 + 524309, Pages: 340, RefsPerHop: 55, LocalityPages: 18},
				&Stride{PC: pcSPEC + 0x1d20, Base: 1<<20 + 1048601, StridePages: 5, Count: 180, RefsPerStop: 55},
			}
		},
	})
}

// registerStencil builds the wupwise/swim/mgrid/applu family: blocked
// sweeps (Tiles) over `arrays` shared arrays of `pages` pages each, with
// two distinct code regions (PC bases) for the alternating nests. Short
// per-PC miss runs (tilePages) plus rotating tile orders leave only the
// distance motif stable — the regime where the paper finds "DP does much
// better than the others".
func registerStencil(name string, seed, pcBase uint64, arrays, pages, tilePages, elemsPerPage int) {
	register(Workload{
		Name:  name,
		Suite: "SPEC",
		Seed:  seed,
		PaperNote: "blocked multi-array stencil sweeps with rotating tile order: " +
			"only the distance pattern persists -> DP well ahead",
		Build: func() []Phase {
			bases := make([]uint64, arrays)
			for k := range bases {
				bases[k] = 1<<20 + uint64(k)*uint64(pages+37)
			}
			return []Phase{
				&Tiles{PCBase: pcBase + 0x00, Bases: bases, PagesPerArray: pages,
					TilePages: tilePages, ElemsPerPage: elemsPerPage},
				&Tiles{PCBase: pcBase + 0x80, Bases: rotate(bases), PagesPerArray: pages,
					TilePages: tilePages, ElemsPerPage: elemsPerPage},
			}
		},
	})
}

func rotate(in []uint64) []uint64 {
	out := make([]uint64, len(in))
	copy(out, in[1:])
	out[len(in)-1] = in[0]
	return out
}
