package workload

import (
	"io"
	"sync"

	"tlbprefetch/internal/trace"
)

// chunkedBuf is the chunk size ChunkedReader hands between its generator
// goroutine and the consumer: big enough to amortize the channel handoff
// (one per 4096 references), small enough to stay cache-resident.
const chunkedBuf = 4096

// ChunkedReader lifts the push-based Generate to the pull-based
// trace.BatchReader contract, so a workload model can feed consumers that
// interleave multiple streams (the sweep runner's mix shards) without
// materializing the whole stream first. A generator goroutine fills chunks
// that the consumer drains; two buffers recycle between them, bounding the
// adapter to O(chunk) memory regardless of stream length. The reference
// stream is exactly Generate's, in order.
//
// Callers that stop reading before EOF must call Close to release the
// goroutine; Close is idempotent and safe after EOF too.
type ChunkedReader struct {
	ch        chan []trace.Ref // filled chunks, in stream order
	free      chan []trace.Ref // drained chunks recycling back to the generator
	stop      chan struct{}
	cur       []trace.Ref
	pos       int
	closeOnce sync.Once
}

// NewChunkedReader starts generating refs references of w in the
// background and returns the pull side.
func NewChunkedReader(w Workload, refs uint64) *ChunkedReader {
	c := &ChunkedReader{
		ch:   make(chan []trace.Ref, 1),
		free: make(chan []trace.Ref, 2),
		stop: make(chan struct{}),
	}
	c.free <- make([]trace.Ref, 0, chunkedBuf)
	c.free <- make([]trace.Ref, 0, chunkedBuf)
	go c.generate(w, refs)
	return c
}

// generate is the producer goroutine: it fills recycled buffers from
// Generate's callback and hands them off, bailing out whenever the
// consumer closes stop.
func (c *ChunkedReader) generate(w Workload, refs uint64) {
	defer close(c.ch)
	var buf []trace.Ref
	take := func() bool {
		select {
		case buf = <-c.free:
			buf = buf[:0]
			return true
		case <-c.stop:
			// Drop the reference: buf may be the chunk a send just
			// delivered, and the tail flush below must not send it twice
			// (a doubled buffer overfills free and wedges the consumer).
			buf = nil
			return false
		}
	}
	send := func() bool {
		select {
		case c.ch <- buf:
			return true
		case <-c.stop:
			return false
		}
	}
	if !take() {
		return
	}
	Generate(w, refs, func(pc, vaddr uint64) bool {
		buf = append(buf, trace.Ref{PC: pc, VAddr: vaddr})
		if len(buf) == chunkedBuf {
			if !send() || !take() {
				return false
			}
		}
		return true
	})
	if len(buf) > 0 {
		send()
	}
}

// ReadBatch implements trace.BatchReader.
func (c *ChunkedReader) ReadBatch(dst []trace.Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if c.pos >= len(c.cur) {
		if c.cur != nil {
			c.free <- c.cur // cap 2: never blocks
			c.cur = nil
		}
		chunk, ok := <-c.ch
		if !ok {
			return 0, io.EOF
		}
		c.cur, c.pos = chunk, 0
	}
	n := copy(dst, c.cur[c.pos:])
	c.pos += n
	return n, nil
}

// Close releases the generator goroutine. It must be called when the
// consumer abandons the stream early; after a clean EOF it is a no-op.
// Close is idempotent and safe to call from any goroutine, concurrently
// with ReadBatch and with other Close calls — the runner's error paths
// close abandoned mix members via defers that may race a consumer still
// draining.
func (c *ChunkedReader) Close() error {
	c.closeOnce.Do(func() {
		close(c.stop)
		for range c.ch {
			// Drain so a generator blocked on a full channel can exit.
		}
	})
	return nil
}
