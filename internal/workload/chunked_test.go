package workload

import (
	"io"
	"sync"
	"testing"

	"tlbprefetch/internal/trace"
)

// TestChunkedReaderMatchesGenerate pins the adapter contract: the pulled
// stream is exactly Generate's, for lengths around the chunk boundary.
func TestChunkedReaderMatchesGenerate(t *testing.T) {
	w, ok := ByName("mcf")
	if !ok {
		t.Fatal("workload mcf missing")
	}
	for _, n := range []uint64{0, 1, chunkedBuf - 1, chunkedBuf, chunkedBuf + 1, 3*chunkedBuf + 17} {
		want := make([]trace.Ref, 0, n)
		Generate(w, n, func(pc, vaddr uint64) bool {
			want = append(want, trace.Ref{PC: pc, VAddr: vaddr})
			return true
		})
		cr := NewChunkedReader(w, n)
		got := make([]trace.Ref, 0, n)
		buf := make([]trace.Ref, 700) // not aligned with the chunk size
		for {
			k, err := cr.ReadBatch(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, buf[:k]...)
		}
		cr.Close()
		if len(got) != len(want) {
			t.Fatalf("n=%d: pulled %d refs, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ref %d = %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

// TestChunkedReaderConcurrentClose races Close against an in-flight
// ReadBatch consumer and against a second Close — the shape the sweep
// runner's deferred member-stream cleanup produces when a shard errors
// while another goroutine is still draining. Under -race this pins the
// sync.Once fix: the old unsynchronized done flag was a data race here.
func TestChunkedReaderConcurrentClose(t *testing.T) {
	w, _ := ByName("swim")
	for i := 0; i < 20; i++ {
		cr := NewChunkedReader(w, 1<<18)
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			buf := make([]trace.Ref, 512)
			for {
				if _, err := cr.ReadBatch(buf); err == io.EOF {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			cr.Close()
		}()
		go func() {
			defer wg.Done()
			cr.Close()
		}()
		wg.Wait()
		// The reader is settled after Close: further calls see EOF.
		if _, err := cr.ReadBatch(make([]trace.Ref, 8)); err != io.EOF {
			t.Fatalf("read after close: err=%v, want EOF", err)
		}
	}
}

// TestChunkedReaderEarlyClose releases the generator goroutine mid-stream.
// Run with -race this also checks the handoff is properly synchronized.
func TestChunkedReaderEarlyClose(t *testing.T) {
	w, _ := ByName("swim")
	for _, readFirst := range []int{0, 1, chunkedBuf + 5} {
		cr := NewChunkedReader(w, 1<<20)
		buf := make([]trace.Ref, 512)
		for read := 0; read < readFirst; {
			k, err := cr.ReadBatch(buf)
			if err != nil {
				t.Fatal(err)
			}
			read += k
		}
		if err := cr.Close(); err != nil {
			t.Fatal(err)
		}
		// Idempotent.
		if err := cr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
