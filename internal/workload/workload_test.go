package workload

import (
	"testing"

	"tlbprefetch/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 56 {
		t.Fatalf("registered %d workloads, want 56 (the paper's application count)", len(all))
	}
	counts := map[string]int{}
	for _, w := range all {
		counts[w.Suite]++
	}
	want := map[string]int{"SPEC": 26, "MediaBench": 20, "Etch": 5, "PointerIntensive": 5}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d workloads, want %d", suite, counts[suite], n)
		}
	}
}

func TestRegistryFieldsAndUniqueness(t *testing.T) {
	names := map[string]bool{}
	seeds := map[uint64]string{}
	for _, w := range All() {
		if names[w.Name] {
			t.Errorf("duplicate name %q", w.Name)
		}
		names[w.Name] = true
		if prev, dup := seeds[w.Seed]; dup {
			t.Errorf("workloads %q and %q share seed %#x", prev, w.Name, w.Seed)
		}
		seeds[w.Seed] = w.Name
		if w.PaperNote == "" {
			t.Errorf("workload %q has no paper note", w.Name)
		}
		if w.Build == nil {
			t.Errorf("workload %q has no builder", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("swim")
	if !ok || w.Name != "swim" || w.Suite != "SPEC" {
		t.Fatalf("ByName(swim) = %+v, %v", w, ok)
	}
	if _, ok := ByName("no-such-app"); ok {
		t.Fatal("ByName invented a workload")
	}
}

func TestSuiteOrderStable(t *testing.T) {
	spec := Suite("SPEC")
	if len(spec) != 26 {
		t.Fatalf("SPEC suite has %d entries", len(spec))
	}
	// Paper figure order: gzip leads Figure 7.
	if spec[0].Name != "gzip" {
		t.Fatalf("first SPEC workload = %q, want gzip", spec[0].Name)
	}
	if len(Names()) != 56 {
		t.Fatalf("Names() returned %d", len(Names()))
	}
}

func TestGenerateExactBudget(t *testing.T) {
	w, _ := ByName("gzip")
	var n uint64
	got := Generate(w, 10000, func(pc, vaddr uint64) bool {
		n++
		return true
	})
	if got != 10000 || n != 10000 {
		t.Fatalf("generated %d (callback saw %d), want 10000", got, n)
	}
}

func TestGenerateSinkStops(t *testing.T) {
	w, _ := ByName("gzip")
	var n uint64
	got := Generate(w, 10000, func(pc, vaddr uint64) bool {
		n++
		return n < 100
	})
	if got != 100 || n != 100 {
		t.Fatalf("early stop: generated %d, callback saw %d, want 100", got, n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range []string{"gzip", "mcf", "swim", "gsm-enc", "fma3d", "winword"} {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		h1 := streamHash(w, 50000)
		h2 := streamHash(w, 50000)
		if h1 != h2 {
			t.Errorf("%s: stream not deterministic", name)
		}
	}
}

func streamHash(w Workload, n uint64) uint64 {
	var h uint64 = 14695981039346656037
	Generate(w, n, func(pc, vaddr uint64) bool {
		h = (h ^ pc) * 1099511628211
		h = (h ^ vaddr) * 1099511628211
		return true
	})
	return h
}

func TestDistinctWorkloadsDiffer(t *testing.T) {
	a, _ := ByName("gzip")
	b, _ := ByName("mcf")
	if streamHash(a, 20000) == streamHash(b, 20000) {
		t.Fatal("distinct workloads produced identical streams")
	}
}

func TestReaderMatchesGenerate(t *testing.T) {
	w, _ := ByName("parser")
	var direct []trace.Ref
	Generate(w, 5000, func(pc, vaddr uint64) bool {
		direct = append(direct, trace.Ref{PC: pc, VAddr: vaddr})
		return true
	})
	r := Reader(w, 5000)
	for i := range direct {
		ref, err := r.Read()
		if err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
		if ref != direct[i] {
			t.Fatalf("ref %d: reader %v != generate %v", i, ref, direct[i])
		}
	}
}

func TestGenerateTo(t *testing.T) {
	w, _ := ByName("bc")
	var sw trace.SliceWriter
	n, err := GenerateTo(w, 3000, &sw)
	if err != nil || n != 3000 || len(sw.Refs) != 3000 {
		t.Fatalf("GenerateTo = %d, %v (%d refs)", n, err, len(sw.Refs))
	}
}

func TestGenerateEmptyWorkload(t *testing.T) {
	if n := Generate(Workload{}, 100, func(pc, vaddr uint64) bool { return true }); n != 0 {
		t.Fatalf("empty workload generated %d refs", n)
	}
	w := Workload{Name: "x", Build: func() []Phase { return nil }}
	if n := Generate(w, 100, func(pc, vaddr uint64) bool { return true }); n != 0 {
		t.Fatalf("phase-less workload generated %d refs", n)
	}
}

func TestRegisterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("register accepted a nameless workload")
		}
	}()
	register(Workload{})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("register accepted a duplicate name")
		}
	}()
	register(Workload{Name: "gzip", Build: func() []Phase { return nil }})
}

func BenchmarkGenerate(b *testing.B) {
	w, _ := ByName("swim")
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		Generate(w, 100000, func(pc, vaddr uint64) bool {
			sink ^= vaddr
			return true
		})
	}
	_ = sink
}
