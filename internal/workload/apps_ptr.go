package workload

// The 5 Pointer-Intensive Benchmark models (paper Figure 8, bottom-right).
// "The Pointer Intensive suite helps us evaluate the mechanisms for
// non-array based reference behavior, which can be more irregular", and
// "The working sets are much smaller in some of the non-SPEC 2000
// applications, and cold misses do become prominent for these."

const pcPtr = 0x00700000

func init() {
	// anagram: dictionary permutation search — the paper lists it in the
	// ASP first-touch group; small working set, cold misses prominent.
	register(Workload{
		Name:      "anagram",
		Suite:     "PointerIntensive",
		Seed:      0x8101,
		PaperNote: "first-touch dictionary sweeps, small working set: ASP/DP on cold pages",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcPtr + 0x000, StartPage: 1 << 21, PagesPerRun: 14, RefsPerPage: 55},
				&HotSet{PC: pcPtr + 0x010, Base: 1 << 20, Pages: 56, Refs: 7000, Theta: 0.5},
				&RandomWalk{PC: pcPtr + 0x020, Base: 1<<20 + 2097169, Pages: 800, Hops: 10, RefsPerStop: 55},
			}
		},
	})

	// bc: calculator — listed both with "so few TLB misses" and in the
	// DP-only-noticeable group: a tiny hot state plus a weak arena motif.
	register(Workload{
		Name:      "bc",
		Suite:     "PointerIntensive",
		Seed:      0x8102,
		PaperNote: "few misses; weak arena motif leaves DP the only (modest) predictor",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcPtr + 0x100, Base: 1 << 20, Pages: 72, Refs: 18000, Theta: 0.4},
				&BlockMotif{PC: pcPtr + 0x110, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 2, 1, 4}, BlockPages: 5, Blocks: 6,
					RefsPerStop: 45, NoiseProb: 0.45, NoiseSpread: 120},
			}
		},
	})

	// ft: minimum spanning tree over an irregular graph — a stable
	// pointer-linked traversal: history (RP/MP) territory.
	register(Workload{
		Name:      "ft",
		Suite:     "PointerIntensive",
		Seed:      0x8103,
		PaperNote: "stable irregular graph traversal: RP/MP good, ASP near zero",
		Build: func() []Phase {
			return []Phase{
				&PointerChase{PC: pcPtr + 0x200, Base: 1 << 20, Pages: 340, RefsPerHop: 100},
				&HotSet{PC: pcPtr + 0x210, Base: 1<<20 + 4111, Pages: 40, Refs: 4000, Theta: 0.5},
			}
		},
	})

	// ks: Kernighan-Lin graph partitioning — few misses with a weak
	// repeating swap motif (DP-only-noticeable group).
	register(Workload{
		Name:      "ks",
		Suite:     "PointerIntensive",
		Seed:      0x8104,
		PaperNote: "few misses; weak swap motif leaves DP the only (modest) predictor",
		Build: func() []Phase {
			return []Phase{
				&HotSet{PC: pcPtr + 0x300, Base: 1 << 20, Pages: 68, Refs: 16000, Theta: 0.4},
				&BlockMotif{PC: pcPtr + 0x310, Start: 1 << 21, Fresh: true,
					Motif: []int64{0, 3, 1, 5, 2}, BlockPages: 6, Blocks: 6,
					RefsPerStop: 45, NoiseProb: 0.45, NoiseSpread: 120},
			}
		},
	})

	// yacr2: channel router — strided track sweeps (ASP first-touch group).
	register(Workload{
		Name:      "yacr2",
		Suite:     "PointerIntensive",
		Seed:      0x8105,
		PaperNote: "strided track sweeps: ASP/DP predict cold and repeated tracks",
		Build: func() []Phase {
			return []Phase{
				&FreshScan{PC: pcPtr + 0x400, StartPage: 1 << 21, PagesPerRun: 20, RefsPerPage: 110},
				&Seq{PC: pcPtr + 0x410, Base: 1 << 20, Pages: 90, RefsPerPage: 110},
				&RandomWalk{PC: pcPtr + 0x420, Base: 1<<20 + 2097169, Pages: 800, Hops: 22, RefsPerStop: 110},
			}
		},
	})
}
