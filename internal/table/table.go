// Package table implements the set-associative, LRU-replaced prediction
// table shared by the ASP, MP and DP prefetching mechanisms, plus the small
// fixed-capacity LRU slot list that MP and DP keep inside each row.
//
// The paper parameterizes every on-chip prediction table by a total entry
// count r (32..1024) and an organization: direct-mapped (D), 2-way, 4-way or
// fully associative (F). We model that faithfully: a Table with r entries and
// w ways has r/w sets; a key indexes its set by the key's low bits
// (hardware-style modulo indexing), and the full key is kept as the tag.
// Replacement within a set is true LRU.
package table

import "fmt"

// Table is a set-associative LRU prediction table mapping uint64 keys to
// values of type V. The zero value is not usable; construct with New.
//
// Keys are arbitrary uint64s: page numbers (MP), program counters (ASP) or
// two's-complement distances (DP). Set index = key mod nsets, which for
// negative distances reinterpreted as uint64 uses the low bits, exactly as a
// hardware indexing function would.
type Table[V any] struct {
	sets  [][]slot[V] // each set ordered MRU first
	ways  int
	nsets int

	lookups uint64
	hits    uint64
	evicts  uint64
}

type slot[V any] struct {
	key uint64
	val V
}

// New builds a table with the given total number of entries and ways.
// ways == 1 is direct-mapped; ways == entries is fully associative.
// entries must be a positive multiple of ways.
func New[V any](entries, ways int) *Table[V] {
	if entries <= 0 || ways <= 0 {
		panic(fmt.Sprintf("table: invalid geometry entries=%d ways=%d", entries, ways))
	}
	if entries%ways != 0 {
		panic(fmt.Sprintf("table: entries %d not a multiple of ways %d", entries, ways))
	}
	nsets := entries / ways
	t := &Table[V]{
		sets:  make([][]slot[V], nsets),
		ways:  ways,
		nsets: nsets,
	}
	for i := range t.sets {
		t.sets[i] = make([]slot[V], 0, ways)
	}
	return t
}

// Entries returns the total capacity r of the table.
func (t *Table[V]) Entries() int { return t.nsets * t.ways }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.nsets }

func (t *Table[V]) set(key uint64) int {
	return int(key % uint64(t.nsets))
}

// Lookup finds key and, if present, promotes it to MRU and returns a pointer
// to its value. The pointer stays valid until the next mutation of the table.
func (t *Table[V]) Lookup(key uint64) (*V, bool) {
	t.lookups++
	s := t.sets[t.set(key)]
	for i := range s {
		if s[i].key == key {
			t.hits++
			// Move to front (MRU) preserving order of the rest.
			e := s[i]
			copy(s[1:i+1], s[0:i])
			s[0] = e
			return &s[0].val, true
		}
	}
	return nil, false
}

// Peek finds key without updating recency.
func (t *Table[V]) Peek(key uint64) (*V, bool) {
	s := t.sets[t.set(key)]
	for i := range s {
		if s[i].key == key {
			return &s[i].val, true
		}
	}
	return nil, false
}

// Insert places (key, val) as the MRU entry of its set, evicting the LRU
// entry if the set is full. If the key is already present its value is
// replaced and it is promoted. It reports the evicted key, if any.
func (t *Table[V]) Insert(key uint64, val V) (evictedKey uint64, evicted bool) {
	si := t.set(key)
	s := t.sets[si]
	for i := range s {
		if s[i].key == key {
			copy(s[1:i+1], s[0:i])
			s[0] = slot[V]{key: key, val: val}
			return 0, false
		}
	}
	if len(s) < t.ways {
		s = append(s, slot[V]{})
	} else {
		evictedKey = s[len(s)-1].key
		evicted = true
		t.evicts++
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = slot[V]{key: key, val: val}
	t.sets[si] = s
	return evictedKey, evicted
}

// GetOrInsert returns a pointer to key's value, allocating an MRU entry with
// the zero value (evicting LRU if needed) when absent. The boolean reports
// whether the entry already existed.
func (t *Table[V]) GetOrInsert(key uint64) (*V, bool) {
	if v, ok := t.Lookup(key); ok {
		return v, true
	}
	var zero V
	t.Insert(key, zero)
	// After Insert the entry is at position 0 of its set.
	return &t.sets[t.set(key)][0].val, false
}

// Len returns the number of occupied entries.
func (t *Table[V]) Len() int {
	n := 0
	for _, s := range t.sets {
		n += len(s)
	}
	return n
}

// Reset empties the table and clears statistics.
func (t *Table[V]) Reset() {
	for i := range t.sets {
		t.sets[i] = t.sets[i][:0]
	}
	t.lookups, t.hits, t.evicts = 0, 0, 0
}

// Stats reports lookup/hit/eviction counters (for diagnostics and ablations).
func (t *Table[V]) Stats() (lookups, hits, evictions uint64) {
	return t.lookups, t.hits, t.evicts
}

// Keys returns the resident keys of every set in MRU-first order,
// concatenated set by set. Intended for tests and invariant checks.
func (t *Table[V]) Keys() []uint64 {
	var out []uint64
	for _, s := range t.sets {
		for _, e := range s {
			out = append(out, e.key)
		}
	}
	return out
}
