// Package table implements the set-associative, LRU-replaced prediction
// table shared by the ASP, MP and DP prefetching mechanisms, plus the small
// fixed-capacity LRU slot list that MP and DP keep inside each row.
//
// The paper parameterizes every on-chip prediction table by a total entry
// count r (32..1024) and an organization: direct-mapped (D), 2-way, 4-way or
// fully associative (F). We model that faithfully: a Table with r entries and
// w ways has r/w sets; a key indexes its set by the key's low bits
// (hardware-style modulo indexing), and the full key is kept as the tag.
// Replacement within a set is true LRU.
//
// The table is updated on every TLB miss, so it is backed by the O(1)
// engine in internal/assoc (intrusive per-set recency lists plus an
// open-addressing key index) instead of scanned slices; lookup, promotion
// and insert-with-eviction cost the same regardless of associativity.
package table

import "tlbprefetch/internal/assoc"

// Table is a set-associative LRU prediction table mapping uint64 keys to
// values of type V. The zero value is not usable; construct with New.
//
// Keys are arbitrary uint64s: page numbers (MP), program counters (ASP) or
// two's-complement distances (DP). Set index = key mod nsets, which for
// negative distances reinterpreted as uint64 uses the low bits, exactly as a
// hardware indexing function would.
type Table[V any] struct {
	s *assoc.Store[V]

	lookups uint64
	hits    uint64
	evicts  uint64
}

// New builds a table with the given total number of entries and ways.
// ways == 1 is direct-mapped; ways == entries is fully associative.
// entries must be a positive multiple of ways.
func New[V any](entries, ways int) *Table[V] {
	return &Table[V]{s: assoc.New[V](entries, ways)}
}

// Entries returns the total capacity r of the table.
func (t *Table[V]) Entries() int { return t.s.Entries() }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.s.Ways() }

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.s.Sets() }

// Lookup finds key and, if present, promotes it to MRU and returns a pointer
// to its value. The pointer stays valid until the next mutation of the table.
func (t *Table[V]) Lookup(key uint64) (*V, bool) {
	t.lookups++
	sl, ok := t.s.Find(key)
	if !ok {
		return nil, false
	}
	t.hits++
	t.s.Promote(sl)
	return t.s.Val(sl), true
}

// Peek finds key without updating recency.
func (t *Table[V]) Peek(key uint64) (*V, bool) {
	sl, ok := t.s.Find(key)
	if !ok {
		return nil, false
	}
	return t.s.Val(sl), true
}

// Insert places (key, val) as the MRU entry of its set, evicting the LRU
// entry if the set is full. If the key is already present its value is
// replaced and it is promoted. It reports the evicted key, if any.
func (t *Table[V]) Insert(key uint64, val V) (evictedKey uint64, evicted bool) {
	sl, ok := t.s.Find(key)
	if ok {
		t.s.Promote(sl)
		*t.s.Val(sl) = val
		return 0, false
	}
	sl, evictedKey, evicted = t.s.InsertMRU(key)
	if evicted {
		t.evicts++
	}
	*t.s.Val(sl) = val
	return evictedKey, evicted
}

// GetOrInsert returns a pointer to key's value, allocating an MRU entry with
// the zero value (evicting LRU if needed) when absent. The boolean reports
// whether the entry already existed.
func (t *Table[V]) GetOrInsert(key uint64) (*V, bool) {
	v, existed := t.GetOrInsertLazy(key)
	if !existed {
		var zero V
		*v = zero
	}
	return v, existed
}

// GetOrInsertLazy is GetOrInsert without the zeroing: when the key is
// absent it claims an MRU entry whose value is whatever the slot last held
// (a recycled row after an eviction, a zero V on first use) and leaves the
// caller to reinitialize it. This is the hot-path variant for rows that own
// storage — MP/DP slot lists reuse the evicted row's backing array instead
// of allocating a fresh one on every replacement.
func (t *Table[V]) GetOrInsertLazy(key uint64) (*V, bool) {
	if v, ok := t.Lookup(key); ok {
		return v, true
	}
	sl, _, evicted := t.s.InsertMRU(key)
	if evicted {
		t.evicts++
	}
	return t.s.Val(sl), false
}

// Len returns the number of occupied entries.
func (t *Table[V]) Len() int { return t.s.Len() }

// Reset empties the table and clears statistics.
func (t *Table[V]) Reset() {
	t.s.Reset()
	t.lookups, t.hits, t.evicts = 0, 0, 0
}

// Stats reports lookup/hit/eviction counters (for diagnostics and ablations).
func (t *Table[V]) Stats() (lookups, hits, evictions uint64) {
	return t.lookups, t.hits, t.evicts
}

// Keys returns the resident keys of every set in MRU-first order,
// concatenated set by set. Intended for tests and invariant checks.
func (t *Table[V]) Keys() []uint64 {
	return t.s.AppendKeys(nil)
}
