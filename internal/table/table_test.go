package table

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	cases := []struct {
		entries, ways, sets int
	}{
		{256, 1, 256}, // direct-mapped
		{256, 2, 128}, // 2-way
		{256, 4, 64},  // 4-way
		{256, 256, 1}, // fully associative
		{32, 1, 32},
		{1024, 4, 256},
	}
	for _, c := range cases {
		tb := New[int](c.entries, c.ways)
		if tb.Entries() != c.entries || tb.Ways() != c.ways || tb.Sets() != c.sets {
			t.Errorf("New(%d,%d): got entries=%d ways=%d sets=%d, want sets=%d",
				c.entries, c.ways, tb.Entries(), tb.Ways(), tb.Sets(), c.sets)
		}
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, c := range []struct{ entries, ways int }{{0, 1}, {-4, 2}, {8, 0}, {10, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.entries, c.ways)
				}
			}()
			New[int](c.entries, c.ways)
		}()
	}
}

func TestLookupInsert(t *testing.T) {
	tb := New[string](4, 4) // one fully associative set
	if _, ok := tb.Lookup(7); ok {
		t.Fatal("lookup in empty table succeeded")
	}
	tb.Insert(7, "seven")
	v, ok := tb.Lookup(7)
	if !ok || *v != "seven" {
		t.Fatalf("lookup(7) = %v,%v", v, ok)
	}
	// Overwrite.
	tb.Insert(7, "VII")
	if v, _ := tb.Lookup(7); *v != "VII" {
		t.Fatalf("overwrite failed, got %q", *v)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
}

func TestLRUEvictionFullyAssociative(t *testing.T) {
	tb := New[int](2, 2)
	tb.Insert(1, 10)
	tb.Insert(2, 20)
	// Touch 1 so 2 becomes LRU.
	if _, ok := tb.Lookup(1); !ok {
		t.Fatal("missing key 1")
	}
	ev, evicted := tb.Insert(3, 30)
	if !evicted || ev != 2 {
		t.Fatalf("evicted %v,%v; want 2,true", ev, evicted)
	}
	if _, ok := tb.Peek(2); ok {
		t.Fatal("key 2 should have been evicted")
	}
	for _, k := range []uint64{1, 3} {
		if _, ok := tb.Peek(k); !ok {
			t.Fatalf("key %d should be resident", k)
		}
	}
}

func TestDirectMappedConflict(t *testing.T) {
	tb := New[int](4, 1) // 4 sets, 1 way: keys 0 and 4 conflict
	tb.Insert(0, 1)
	ev, evicted := tb.Insert(4, 2)
	if !evicted || ev != 0 {
		t.Fatalf("conflict eviction: got %v,%v want 0,true", ev, evicted)
	}
	if _, ok := tb.Peek(0); ok {
		t.Fatal("key 0 survived a direct-mapped conflict")
	}
	// Non-conflicting keys coexist.
	tb.Insert(1, 3)
	tb.Insert(2, 4)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
}

func TestSetIsolation(t *testing.T) {
	// 2 sets x 2 ways. Even keys go to set 0, odd to set 1.
	tb := New[int](4, 2)
	tb.Insert(0, 0)
	tb.Insert(2, 0)
	tb.Insert(4, 0) // evicts 0 (LRU of set 0)
	tb.Insert(1, 0)
	if _, ok := tb.Peek(0); ok {
		t.Fatal("key 0 should have been evicted from set 0")
	}
	if _, ok := tb.Peek(1); !ok {
		t.Fatal("key 1 in set 1 must be unaffected by set 0 pressure")
	}
}

func TestGetOrInsert(t *testing.T) {
	tb := New[int](2, 2)
	v, existed := tb.GetOrInsert(9)
	if existed || *v != 0 {
		t.Fatalf("first GetOrInsert: existed=%v *v=%d", existed, *v)
	}
	*v = 42
	v2, existed := tb.GetOrInsert(9)
	if !existed || *v2 != 42 {
		t.Fatalf("second GetOrInsert: existed=%v *v=%d", existed, *v2)
	}
}

func TestNegativeDistanceKeys(t *testing.T) {
	// DP stores signed distances as uint64 keys; low-bit indexing must still
	// spread and retrieve them.
	tb := New[int](8, 2)
	keys := []int64{-1, -2, -3, 1, 2, 3}
	for i, d := range keys {
		tb.Insert(uint64(d), i)
	}
	for i, d := range keys {
		v, ok := tb.Peek(uint64(d))
		if !ok || *v != i {
			t.Fatalf("distance %d lost (ok=%v)", d, ok)
		}
	}
}

func TestReset(t *testing.T) {
	tb := New[int](4, 2)
	tb.Insert(1, 1)
	tb.Insert(2, 2)
	tb.Lookup(1)
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	l, h, e := tb.Stats()
	if l != 0 || h != 0 || e != 0 {
		t.Fatalf("stats after Reset = %d,%d,%d", l, h, e)
	}
}

func TestStatsCounting(t *testing.T) {
	tb := New[int](2, 2)
	tb.Insert(1, 1)
	tb.Lookup(1) // hit
	tb.Lookup(2) // miss
	tb.Insert(2, 2)
	tb.Insert(3, 3) // evicts 1 (LRU: 1 was looked up, then 2 and 3 inserted... order: after Lookup(1): [1]; Insert(2): [2,1]; Insert(3): evict 1)
	l, h, e := tb.Stats()
	if l != 2 || h != 1 || e != 1 {
		t.Fatalf("stats = lookups %d hits %d evicts %d; want 2,1,1", l, h, e)
	}
}

// Property: the table never exceeds its capacity, and within a set the
// resident keys are exactly the `ways` most recently used distinct keys that
// map to that set.
func TestQuickLRUSetContents(t *testing.T) {
	f := func(ops []uint16) bool {
		const entries, ways = 16, 4
		tb := New[int](entries, ways)
		nsets := entries / ways
		// Reference model: per set, MRU-first list of keys.
		model := make([][]uint64, nsets)
		for _, op := range ops {
			key := uint64(op % 64)
			si := int(key % uint64(nsets))
			// Mirror Insert semantics in the model.
			m := model[si]
			found := -1
			for i, k := range m {
				if k == key {
					found = i
					break
				}
			}
			if found >= 0 {
				m = append(m[:found], m[found+1:]...)
			} else if len(m) == ways {
				m = m[:ways-1]
			}
			model[si] = append([]uint64{key}, m...)
			tb.Insert(key, int(op))
		}
		if tb.Len() > entries {
			return false
		}
		for si := range model {
			for _, k := range model[si] {
				if _, ok := tb.Peek(k); !ok {
					return false
				}
			}
		}
		// And totals agree.
		total := 0
		for _, m := range model {
			total += len(m)
		}
		return tb.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotListTouchAndLRU(t *testing.T) {
	l := NewSlotList(2)
	l.Touch(5)
	l.Touch(7)
	if got := l.Values(); len(got) != 2 || got[0] != 7 || got[1] != 5 {
		t.Fatalf("values = %v, want [7 5]", got)
	}
	// Re-touch 5: moves to front, no eviction.
	l.Touch(5)
	if got := l.Values(); got[0] != 5 || got[1] != 7 {
		t.Fatalf("values = %v, want [5 7]", got)
	}
	// New value evicts LRU (7).
	l.Touch(9)
	if l.Contains(7) || !l.Contains(5) || !l.Contains(9) {
		t.Fatalf("after eviction: %v", l.Values())
	}
	if got := l.Values(); got[0] != 9 {
		t.Fatalf("MRU should be 9, got %v", got)
	}
}

func TestSlotListNegative(t *testing.T) {
	l := NewSlotList(3)
	l.Touch(-4)
	l.Touch(2)
	l.Touch(-4)
	if got := l.Values(); got[0] != -4 || got[1] != 2 || len(got) != 2 {
		t.Fatalf("values = %v", got)
	}
}

func TestSlotListPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSlotList(0) did not panic")
		}
	}()
	NewSlotList(0)
}

// Property: SlotList holds at most cap distinct values; the front is always
// the most recently touched; duplicates never appear.
func TestQuickSlotList(t *testing.T) {
	f := func(vals []int8, capHint uint8) bool {
		c := int(capHint%6) + 1
		l := NewSlotList(c)
		var last int64
		touched := false
		for _, v := range vals {
			l.Touch(int64(v))
			last = int64(v)
			touched = true
		}
		got := l.Values()
		if len(got) > c {
			return false
		}
		seen := map[int64]bool{}
		for _, v := range got {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		if touched && (len(got) == 0 || got[0] != last) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableLookupHit(b *testing.B) {
	tb := New[int](256, 4)
	for i := 0; i < 256; i++ {
		tb.Insert(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint64(i % 256))
	}
}

func BenchmarkTableInsertEvict(b *testing.B) {
	tb := New[int](256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Insert(uint64(i), i)
	}
}
