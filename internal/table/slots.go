package table

// SlotList is the fixed-capacity, LRU-ordered list of predictions that MP and
// DP keep inside each table row ("each row of the table can have s slots").
//
// Values are signed so the same type serves MP (page numbers, always >= 0)
// and DP (distances, which may be negative). The list is MRU-first: Values()
// returns the most recently confirmed prediction first, which is the order
// prefetches are issued in (so that when the prefetch buffer is small, the
// strongest predictions land first).
type SlotList struct {
	vals []int64
	cap  int
}

// NewSlotList returns an empty list with capacity s > 0.
func NewSlotList(s int) SlotList {
	if s <= 0 {
		panic("table: SlotList capacity must be positive")
	}
	return SlotList{vals: make([]int64, 0, s), cap: s}
}

// Cap returns the configured capacity s.
func (l *SlotList) Cap() int { return l.cap }

// Reset reinitializes the list to empty with capacity s, reusing the
// existing backing array when it is large enough. MP and DP call this when
// they recycle an evicted table row (via Table.GetOrInsertLazy), which is
// what keeps row turnover allocation-free in steady state.
func (l *SlotList) Reset(s int) {
	if s <= 0 {
		panic("table: SlotList capacity must be positive")
	}
	if cap(l.vals) < s {
		l.vals = make([]int64, 0, s)
	} else {
		l.vals = l.vals[:0]
	}
	l.cap = s
}

// Len returns the number of occupied slots.
func (l *SlotList) Len() int { return len(l.vals) }

// Touch records v as the most recent successor: if v is present it is moved
// to the front; otherwise it is inserted at the front, evicting the LRU slot
// when the list is full (the paper: "If all the slots are occupied, then we
// evict one based on LRU policy").
func (l *SlotList) Touch(v int64) {
	for i, x := range l.vals {
		if x == v {
			copy(l.vals[1:i+1], l.vals[0:i])
			l.vals[0] = v
			return
		}
	}
	if len(l.vals) < l.cap {
		l.vals = append(l.vals, 0)
	}
	copy(l.vals[1:], l.vals[:len(l.vals)-1])
	l.vals[0] = v
}

// Values returns the slots MRU-first. The returned slice aliases internal
// storage and must not be mutated or retained across Touch calls.
func (l *SlotList) Values() []int64 { return l.vals }

// Contains reports whether v occupies a slot.
func (l *SlotList) Contains(v int64) bool {
	for _, x := range l.vals {
		if x == v {
			return true
		}
	}
	return false
}
