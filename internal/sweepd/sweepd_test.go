package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

func testJobs(t *testing.T, refs uint64) []sweep.Job {
	t.Helper()
	g := sweep.Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []sweep.Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}, {Kind: "RP"}},
		TLBEntries: []int{64, 128},
		Refs:       refs,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// referenceStore runs the jobs single-process — the byte-identity baseline
// every distributed run must reproduce.
func referenceStore(t *testing.T, jobs []sweep.Job) *sweep.Store {
	t.Helper()
	st := sweep.NewStore()
	if _, _, err := (&sweep.Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	return st
}

func storesEqual(t *testing.T, want, got *sweep.Store) {
	t.Helper()
	wb, err := want.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		d, _ := sweep.DiffStores(want, got)
		t.Fatalf("stores differ:\n%s", d.Summary())
	}
}

func postJSON(t *testing.T, url string, body, reply any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && reply != nil {
		if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestCrossProcessDeterminism is the acceptance pin: the same grid swept
// (a) single-process and (b) through a coordinator with three concurrent
// workers stealing one-cell batches over loopback HTTP produces
// byte-identical stores.
func TestCrossProcessDeterminism(t *testing.T) {
	jobs := testJobs(t, 20_000)
	want := referenceStore(t, jobs)

	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var (
		wg   sync.WaitGroup
		errs = make([]error, 3)
		sums = make([]sweep.Summary, 3)
	)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{URL: srv.URL, ID: string(rune('A' + i)), Runner: &sweep.Runner{Workers: 2}}
			sums[i], errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, s := range sums {
		ran += s.Ran
	}
	if ran != len(jobs) {
		t.Fatalf("workers ran %d cells in total, want %d", ran, len(jobs))
	}
	status := coord.Status()
	if !status.Complete || status.Done != len(jobs) || status.Failed != 0 {
		t.Fatalf("final status %+v", status)
	}
	storesEqual(t, want, st)
}

// TestRunSourceMatchesRun pins the job-source seam: draining a SliceSource
// through RunSource is the same execution as Run on the slice.
func TestRunSourceMatchesRun(t *testing.T) {
	jobs := testJobs(t, 10_000)
	want := referenceStore(t, jobs)

	st := sweep.NewStore()
	sum, err := (&sweep.Runner{Store: st}).RunSource(&sweep.SliceSource{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != len(jobs) {
		t.Fatalf("summary %+v, want %d ran", sum, len(jobs))
	}
	storesEqual(t, want, st)
}

// TestWorkerDiesMidLease pins lease recovery: a worker leases cells and
// vanishes without completing; after the TTL its lease expires, the cells
// return to the feed, a live worker steals them, and the final store is
// identical to the single-process run.
func TestWorkerDiesMidLease(t *testing.T) {
	jobs := testJobs(t, 20_000)
	want := referenceStore(t, jobs)

	clk := newFakeClock()
	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, LeaseTTL: time.Minute, MaxBatch: 3, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The doomed worker takes three cells and dies (never completes,
	// never heartbeats).
	var doomed LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "doomed", Max: 3}, &doomed)
	if len(doomed.Jobs) != 3 {
		t.Fatalf("leased %d cells, want 3", len(doomed.Jobs))
	}
	if s := coord.Status(); s.Leased != 3 || s.Pending != len(jobs)-3 {
		t.Fatalf("status after lease: %+v", s)
	}

	// Before the TTL passes the cells stay owned (a live worker polling
	// now must not steal them)...
	clk.advance(30 * time.Second)
	if s := coord.Status(); s.Leased != 3 {
		t.Fatalf("cells stolen before expiry: %+v", s)
	}
	// ...after it, they return to the feed.
	clk.advance(31 * time.Second)
	if s := coord.Status(); s.Leased != 0 || s.Pending != len(jobs) {
		t.Fatalf("lease did not expire: %+v", s)
	}

	w := &Worker{URL: srv.URL, ID: "survivor", Runner: &sweep.Runner{Workers: 2}}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, st)
}

// TestHeartbeatKeepsLeaseAlive pins the other half of the lease contract:
// a heartbeating worker may hold cells past the nominal TTL, and a
// heartbeat for an expired lease reports Gone.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	jobs := testJobs(t, 10_000)
	clk := newFakeClock()
	coord, err := New(Config{Jobs: jobs, LeaseTTL: time.Minute, MaxBatch: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var lr LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "slow", Max: 2}, &lr)
	if len(lr.Jobs) != 2 {
		t.Fatalf("leased %d cells, want 2", len(lr.Jobs))
	}
	for i := 0; i < 4; i++ { // 4 × 45s = 3 min, far past the 1-min TTL
		clk.advance(45 * time.Second)
		if code := postJSON(t, srv.URL+PathHeartbeat, HeartbeatRequest{LeaseID: lr.LeaseID}, nil); code != http.StatusOK {
			t.Fatalf("heartbeat %d rejected with %d", i, code)
		}
	}
	if s := coord.Status(); s.Leased != 2 {
		t.Fatalf("heartbeated lease lost its cells: %+v", s)
	}
	clk.advance(2 * time.Minute) // no heartbeat now: the lease dies
	if code := postJSON(t, srv.URL+PathHeartbeat, HeartbeatRequest{LeaseID: lr.LeaseID}, nil); code != http.StatusGone {
		t.Fatalf("heartbeat for expired lease returned %d, want %d", code, http.StatusGone)
	}
	if s := coord.Status(); s.Leased != 0 || s.Pending != len(jobs) {
		t.Fatalf("expired lease not recovered: %+v", s)
	}
}

// TestCorruptedUploadRejected pins ingest verification: a result whose
// payload does not hash to its claimed fingerprint is rejected, the cell
// returns to the feed, and an honest worker then completes the grid to the
// byte-identical store. An upload for a cell outside the grid is rejected
// too.
func TestCorruptedUploadRejected(t *testing.T) {
	jobs := testJobs(t, 20_000)
	want := referenceStore(t, jobs)

	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var lr LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "liar", Max: 2}, &lr)
	if len(lr.Jobs) != 2 {
		t.Fatalf("leased %d cells, want 2", len(lr.Jobs))
	}
	// Run the leased cells honestly, then corrupt the first result after
	// sealing it, so its fingerprint no longer matches.
	results, _, err := (&sweep.Runner{}).Run(lr.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, err := sweep.SealResult(results[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupt.Result.Stats.BufferHits += 17
	good, err := sweep.SealResult(results[1])
	if err != nil {
		t.Fatal(err)
	}
	// And a result for a cell no grid asked for.
	alien := results[1]
	alien.Key.Refs = 999_999
	alienWire, err := sweep.SealResult(alien)
	if err != nil {
		t.Fatal(err)
	}

	var rep CompleteReply
	postJSON(t, srv.URL+PathComplete, CompleteRequest{
		LeaseID: lr.LeaseID, Worker: "liar",
		Cells: []sweep.WireResult{corrupt, good, alienWire},
	}, &rep)
	if rep.Accepted != 1 || len(rep.Rejected) != 2 {
		t.Fatalf("accepted %d rejected %d, want 1/2: %+v", rep.Accepted, len(rep.Rejected), rep.Rejected)
	}
	// The good cell settled; the corrupted one is back in the feed with
	// the 6 never-leased cells.
	if rep.Status.Done != 1 || rep.Status.Pending != len(jobs)-1 {
		t.Fatalf("status after corrupt upload: %+v", rep.Status)
	}
	if _, ok, _ := st.Get(results[0].Key.Hash()); ok {
		t.Fatal("corrupted cell reached the store")
	}
	if _, ok, _ := st.Get(alien.Key.Hash()); ok {
		t.Fatal("alien cell reached the store")
	}

	// The rejected cell is back in the feed; an honest worker finishes.
	w := &Worker{URL: srv.URL, ID: "honest", Runner: &sweep.Runner{Workers: 2}}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, st)
}

// TestCoordinatorRestartResumesFromStore pins crash recovery: a
// coordinator built over a persisted store re-feeds only the dirty cells,
// and the completed store matches the single-process run byte for byte.
func TestCoordinatorRestartResumesFromStore(t *testing.T) {
	jobs := testJobs(t, 20_000)
	want := referenceStore(t, jobs)

	// "First life": three cells complete before the crash; the store is
	// saved (as the coordinator's periodic persistence would).
	path := filepath.Join(t.TempDir(), "store.json")
	st, err := sweep.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (&sweep.Runner{Store: st}).Run(jobs[:3]); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}

	// "Second life": reopen the store; only the 5 dirty cells feed out.
	re, err := sweep.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{Jobs: jobs, Store: re})
	if err != nil {
		t.Fatal(err)
	}
	if s := coord.Status(); s.Cached != 3 || s.Pending != len(jobs)-3 {
		t.Fatalf("restart status %+v, want 3 cached / %d pending", s, len(jobs)-3)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	w := &Worker{URL: srv.URL, ID: "resumer", Runner: &sweep.Runner{Workers: 2}}
	sum, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != len(jobs)-3 {
		t.Fatalf("resumed worker ran %d cells, want %d", sum.Ran, len(jobs)-3)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, re)
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}
	onDisk, err := sweep.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, onDisk)
}

// TestFailedCellsExhaustAttempts pins the failure budget: a cell whose
// every attempt fails is eventually marked permanently failed, the feed
// reports completion, and Err names the cell deterministically.
func TestFailedCellsExhaustAttempts(t *testing.T) {
	jobs := testJobs(t, 10_000)[:2]
	coord, err := New(Config{Jobs: jobs, MaxAttempts: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	for attempt := 0; attempt < 2; attempt++ {
		var lr LeaseReply
		postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "broken", Max: 8}, &lr)
		if lr.Done || len(lr.Jobs) != 2 {
			t.Fatalf("attempt %d: lease %+v", attempt, lr)
		}
		req := CompleteRequest{LeaseID: lr.LeaseID, Worker: "broken"}
		for _, j := range lr.Jobs {
			req.Failed = append(req.Failed, CellFailure{Hash: j.Key().Hash(), Err: "simulated stream error"})
		}
		postJSON(t, srv.URL+PathComplete, req, &CompleteReply{})
	}
	var final LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "broken", Max: 8}, &final)
	if !final.Done || final.Status.Failed != 2 {
		t.Fatalf("feed not complete after attempt budget: %+v", final)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("completion channel not closed")
	}
	err = coord.Err()
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("failed permanently")) {
		t.Fatalf("Err() = %v", err)
	}
}

// TestWorkerResolvesTraceDigests pins the trace contract of the feed:
// cells travel as digests (no paths), a worker without the recording
// reports them unrunnable (and the feed re-queues them), and a worker
// holding the file resolves the digest, re-verifies it, and completes the
// grid to the byte-identical store.
func TestWorkerResolvesTraceDigests(t *testing.T) {
	const refs = 15_000
	dir := t.TempDir()
	path := filepath.Join(dir, "app.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := trace.NewBinaryWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workload.ByName("swim")
	workload.Generate(w, refs, func(pc, vaddr uint64) bool {
		if err := bw.Write(trace.Ref{PC: pc, VAddr: vaddr}); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := sweep.TraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	g := sweep.Grid{
		Traces: []sweep.Source{src},
		Mechs:  []sweep.Mech{{Kind: "RP"}, {Kind: "DP", Rows: 256, Ways: 1, Slots: 2}},
		Refs:   refs,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceStore(t, jobs)

	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// A worker without the recording leases the cells once and reports
	// them unrunnable; the wire never carried a usable path.
	var lr LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "bare", Max: 8}, &lr)
	if len(lr.Jobs) != 2 {
		t.Fatalf("leased %d cells, want 2", len(lr.Jobs))
	}
	for _, j := range lr.Jobs {
		if j.Source.TracePath != "" {
			t.Fatalf("wire job leaked a local trace path %q", j.Source.TracePath)
		}
	}
	req := CompleteRequest{LeaseID: lr.LeaseID, Worker: "bare"}
	for _, j := range lr.Jobs {
		req.Failed = append(req.Failed, CellFailure{Hash: j.Key().Hash(), Err: "no local file for trace"})
	}
	postJSON(t, srv.URL+PathComplete, req, &CompleteReply{})
	if s := coord.Status(); s.Pending != 2 {
		t.Fatalf("unrunnable cells not re-queued: %+v", s)
	}

	// A worker holding the file completes the grid.
	wk := &Worker{URL: srv.URL, ID: "archivist", Traces: map[string]string{src.TraceSHA256: path}}
	if _, err := wk.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, st)
}

// TestLateUploadRecoversFailedCell pins the counter discipline around a
// cell the attempt budget wrote off: when its slow worker's verified
// upload finally lands, the cell flips failed → done (failedN and doneN
// move together), the grid still reports complete, and Err clears — the
// completion condition must fire, not overshoot.
func TestLateUploadRecoversFailedCell(t *testing.T) {
	jobs := testJobs(t, 10_000)[:2]
	want := referenceStore(t, jobs)

	clk := newFakeClock()
	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, LeaseTTL: time.Minute, MaxAttempts: 1, MaxBatch: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The slow worker leases one cell and goes silent; with MaxAttempts 1
	// the expiry fails it permanently.
	var slow LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "slow", Max: 1}, &slow)
	if len(slow.Jobs) != 1 {
		t.Fatalf("leased %d cells, want 1", len(slow.Jobs))
	}
	clk.advance(2 * time.Minute)
	if s := coord.Status(); s.Failed != 1 {
		t.Fatalf("cell not failed after expiry: %+v", s)
	}

	// A healthy worker settles the other cell.
	w := &Worker{URL: srv.URL, ID: "healthy"}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := coord.Status(); !s.Complete || s.Done != 1 || s.Failed != 1 {
		t.Fatalf("status before late upload: %+v", s)
	}
	if coord.Err() == nil {
		t.Fatal("failed cell not reported")
	}

	// The slow worker's verified result finally arrives.
	results, _, err := (&sweep.Runner{}).Run(slow.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	late, err := sweep.SealResult(results[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep CompleteReply
	postJSON(t, srv.URL+PathComplete, CompleteRequest{
		LeaseID: slow.LeaseID, Worker: "slow", Cells: []sweep.WireResult{late},
	}, &rep)
	if rep.Accepted != 1 {
		t.Fatalf("late upload not accepted: %+v", rep)
	}
	if s := rep.Status; !s.Complete || s.Done != 2 || s.Failed != 0 {
		t.Fatalf("status after recovery: %+v", s)
	}
	if err := coord.Err(); err != nil {
		t.Fatalf("recovered grid still reports failure: %v", err)
	}
	storesEqual(t, want, st)
}

// TestMergeConflictFailsTheRun pins divergence detection: two
// fingerprint-valid uploads that disagree on one content-addressed cell
// (a worker running drifted simulator code without a schema bump) must
// surface through Err — byte-identity is the backend's contract, so a
// silent first-write-wins store would be worse than a failed run.
func TestMergeConflictFailsTheRun(t *testing.T) {
	jobs := testJobs(t, 10_000)[:1]
	coord, err := New(Config{Jobs: jobs, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var lr LeaseReply
	postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "honest", Max: 1}, &lr)
	results, _, err := (&sweep.Runner{}).Run(lr.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := sweep.SealResult(results[0])
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+PathComplete, CompleteRequest{
		LeaseID: lr.LeaseID, Worker: "honest", Cells: []sweep.WireResult{honest},
	}, &CompleteReply{})
	if err := coord.Err(); err != nil {
		t.Fatalf("clean run reports %v", err)
	}

	// A drifted worker's late upload: different payload, valid seal.
	drifted := results[0]
	drifted.Stats.BufferHits += 5
	sealed, err := sweep.SealResult(drifted)
	if err != nil {
		t.Fatal(err)
	}
	var rep CompleteReply
	postJSON(t, srv.URL+PathComplete, CompleteRequest{
		LeaseID: "L999", Worker: "drifted", Cells: []sweep.WireResult{sealed},
	}, &rep)
	err = coord.Err()
	if err == nil || !strings.Contains(err.Error(), "merge conflict") {
		t.Fatalf("divergent upload not surfaced: %v", err)
	}
	// The first-accepted value stays in the store.
	got, ok, _ := coord.Store().Get(results[0].Key.Hash())
	if !ok || got.Stats != results[0].Stats {
		t.Fatal("conflict replaced the first-accepted value")
	}
}

// TestSliceSourceReportsBatchError pins the local adapter's error path: a
// batch that cannot execute must fail RunSource, not count as ran.
func TestSliceSourceReportsBatchError(t *testing.T) {
	job := sweep.Job{Source: sweep.WorkloadSource("no-such-app"),
		Mech: sweep.Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}
	_, err := (&sweep.Runner{}).RunSource(&sweep.SliceSource{Jobs: []sweep.Job{job}})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("batch error swallowed: %v", err)
	}
}
