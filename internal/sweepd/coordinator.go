package sweepd

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"tlbprefetch/internal/sweep"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Jobs are the grid's cells (typically Grid.Jobs output). Cells whose
	// key hash is already in Store are settled immediately; the rest form
	// the job feed.
	Jobs []sweep.Job
	// Store is the authoritative result store the feed drains into. Nil
	// uses a fresh in-memory store.
	Store *sweep.Store
	// LeaseTTL is how long a worker may hold cells without heartbeating
	// before they return to the feed (default 30s).
	LeaseTTL time.Duration
	// MaxBatch caps cells per lease (default 8).
	MaxBatch int
	// MaxAttempts is the per-cell budget of lease expiries, rejections and
	// reported failures before the cell is marked permanently failed
	// (default 5).
	MaxAttempts int
	// Now is the clock (default time.Now); tests inject a fake one to
	// drive lease expiry deterministically.
	Now func() time.Time
	// Logf, when non-nil, receives progress lines as cells settle.
	Logf func(format string, args ...any)
	// Token, when non-empty, gates every endpoint behind bearer-token
	// auth: requests must carry `Authorization: Bearer <token>` or they
	// are answered 401 before touching any coordinator state. The compare
	// is constant-time.
	Token string
	// Blobs maps trace digests (hex SHA-256) to local file paths served at
	// PathBlob, so workers can fetch recordings from the coordinator
	// instead of carrying their own -trace files.
	Blobs map[string]string
	// Checkpoint, when positive and Store is file-bound, makes Wait save
	// the store at roughly this interval while the grid is in flight, so a
	// coordinator crash loses at most one interval of settled cells — a
	// restart re-feeds only the still-dirty remainder.
	Checkpoint time.Duration
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellFailed
)

type cell struct {
	job      sweep.Job
	hash     string
	state    cellState
	attempts int
	lastErr  string
}

type lease struct {
	id      string
	worker  string
	expires time.Time
	// outstanding lists the lease's not-yet-settled cell hashes in issue
	// order, so expiry re-queues deterministically.
	outstanding []string
}

// Coordinator owns a grid's dirty cells and feeds them to workers over the
// lease protocol, merging verified results into the store.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	cells    map[string]*cell
	order    []string // dirty-cell hashes in grid enumeration order
	queue    []string // pending feed, FIFO
	leases   map[string]*lease
	leaseSeq int
	cached   int
	doneN    int
	failedN  int
	pendingN int
	leasedN  int
	// conflicts records store-merge divergences: two fingerprint-valid
	// uploads disagreeing on one content-addressed cell, possible only
	// when a worker runs simulator code that changed without a schema
	// bump. It must fail the run — byte-identity with the single-process
	// sweep is the backend's whole contract.
	conflicts []string
	complete  chan struct{}
	closed    bool
}

// New validates the grid's cells, settles the ones the store already
// holds, and queues the rest as the job feed.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		cfg.Store = sweep.NewStore()
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Coordinator{
		cfg:      cfg,
		cells:    make(map[string]*cell),
		leases:   make(map[string]*lease),
		complete: make(chan struct{}),
	}
	for i, j := range cfg.Jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("sweepd: job %d (%s/%s): %w", i, j.Source.Label(), j.Mech.Label(), err)
		}
		h := j.Key().Hash()
		if _, dup := c.cells[h]; dup {
			continue // grids dedupe already; tolerate hand-built slices
		}
		// Membership alone settles a cached cell — the index answers it
		// without reading any segment, so resuming a huge sharded store
		// costs O(index), not O(store).
		if cfg.Store.Has(h) {
			c.cached++
			continue
		}
		c.cells[h] = &cell{job: j, hash: h}
		c.order = append(c.order, h)
		c.queue = append(c.queue, h)
		c.pendingN++
	}
	if len(c.cells) == 0 {
		c.closeCompleteLocked()
	}
	return c, nil
}

// Store returns the authoritative store the feed merges into.
func (c *Coordinator) Store() *sweep.Store { return c.cfg.Store }

// Status returns the current progress snapshot.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	return c.statusLocked()
}

// statusLocked snapshots progress from counters maintained on every state
// transition (not from the queue, which may hold stale entries for cells a
// late upload settled while they waited) — O(1), since it runs under the
// lock on every protocol request.
func (c *Coordinator) statusLocked() Status {
	return Status{
		Total:    c.cached + len(c.cells),
		Cached:   c.cached,
		Done:     c.doneN,
		Pending:  c.pendingN,
		Leased:   c.leasedN,
		Failed:   c.failedN,
		Complete: c.doneN+c.failedN == len(c.cells),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// closeCompleteLocked marks the grid settled exactly once.
func (c *Coordinator) closeCompleteLocked() {
	if !c.closed {
		c.closed = true
		close(c.complete)
	}
}

// checkCompleteLocked closes the completion channel once every dirty cell
// is done or permanently failed.
func (c *Coordinator) checkCompleteLocked() {
	if c.doneN+c.failedN == len(c.cells) {
		c.closeCompleteLocked()
	}
}

// expireLocked returns expired leases' outstanding cells to the feed,
// spending one attempt each (a worker that keeps dying on a cell must not
// recycle it forever).
func (c *Coordinator) expireLocked(now time.Time) {
	for id, le := range c.leases {
		if now.Before(le.expires) {
			continue
		}
		delete(c.leases, id)
		for _, h := range le.outstanding {
			c.requeueLocked(h, fmt.Sprintf("lease %s (worker %s) expired", id, le.worker))
		}
		c.logf("sweepd: lease %s (worker %s) expired, %d cells re-queued", id, le.worker, len(le.outstanding))
	}
	c.checkCompleteLocked()
}

// requeueLocked returns a leased cell to the feed, failing it permanently
// once its attempt budget is spent. Cells in any other state are left
// alone: settled ones stay settled, and a pending cell is already queued.
func (c *Coordinator) requeueLocked(h, why string) {
	cl, ok := c.cells[h]
	if !ok || cl.state != cellLeased {
		return
	}
	cl.attempts++
	cl.lastErr = why
	c.leasedN--
	if cl.attempts >= c.cfg.MaxAttempts {
		cl.state = cellFailed
		c.failedN++
		c.logf("sweepd: cell %.12s… (%s %s) failed permanently after %d attempts: %s",
			h, cl.job.Source.Label(), cl.job.Mech.Label(), cl.attempts, why)
		return
	}
	cl.state = cellPending
	c.pendingN++
	c.queue = append(c.queue, h)
}

// Done returns a channel closed once every dirty cell has settled.
func (c *Coordinator) Done() <-chan struct{} { return c.complete }

// Wait blocks until the grid settles or the context ends, then reports
// permanently failed cells (if any) as an error. It also ticks lease
// expiry, so a feed whose workers all vanished still fails cells instead
// of hanging on their leases. When Config.Checkpoint is set, each tick
// also checkpoints the store once the interval has elapsed; a checkpoint
// that fails is logged and retried next interval rather than killing a
// run whose workers are still making progress.
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := c.cfg.LeaseTTL / 2
	if tick > time.Second {
		tick = time.Second
	}
	if c.cfg.Checkpoint > 0 && c.cfg.Checkpoint < tick {
		tick = c.cfg.Checkpoint
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	lastCkpt := time.Now()
	for {
		select {
		case <-c.complete:
			// One final checkpoint, so a checkpointing coordinator always
			// leaves the completed store on disk even if the caller's own
			// save never runs.
			if c.cfg.Checkpoint > 0 {
				if err := c.Checkpoint(); err != nil {
					c.logf("sweepd: final checkpoint failed: %v", err)
				}
			}
			return c.Err()
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(c.cfg.Now())
			c.mu.Unlock()
			if c.cfg.Checkpoint > 0 && time.Since(lastCkpt) >= c.cfg.Checkpoint {
				lastCkpt = time.Now()
				if err := c.Checkpoint(); err != nil {
					c.logf("sweepd: checkpoint failed (retrying next interval): %v", err)
				}
			}
		}
	}
}

// Checkpoint saves the store now (atomic temp+rename+fsync via
// sweep.Store.Save, serialized against Merge and other Saves). It is safe
// to call while workers are uploading; an in-memory store is a no-op.
func (c *Coordinator) Checkpoint() error { return c.cfg.Store.Save() }

// Err summarizes permanently failed cells and store-merge conflicts (nil
// when every cell is done and every upload agreed). The report is
// deterministic: failed cells are named in grid enumeration order.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conflicts) > 0 {
		return fmt.Errorf("sweepd: %d merge conflicts — workers disagreed on a content-addressed cell (simulator behaviour changed without a schema bump?); first: %s",
			len(c.conflicts), c.conflicts[0])
	}
	if c.failedN == 0 {
		return nil
	}
	for _, h := range c.order {
		if cl := c.cells[h]; cl.state == cellFailed {
			return fmt.Errorf("sweepd: %d of %d cells failed permanently; first: %s %s (%s)",
				c.failedN, len(c.cells), cl.job.Source.Label(), cl.job.Mech.Label(), cl.lastErr)
		}
	}
	return fmt.Errorf("sweepd: %d cells failed permanently", c.failedN)
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodePost(w, r, &req) {
			return
		}
		reply(w, c.lease(req))
	})
	mux.HandleFunc(PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodePost(w, r, &req) {
			return
		}
		reply(w, c.completeLease(req))
	})
	mux.HandleFunc(PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodePost(w, r, &req) {
			return
		}
		if !c.heartbeat(req.LeaseID) {
			http.Error(w, "lease unknown or expired", http.StatusGone)
			return
		}
		reply(w, struct{}{})
	})
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		reply(w, c.Status())
	})
	mux.HandleFunc(PathBlob, c.serveBlob)
	if c.cfg.Token != "" {
		return requireBearer(c.cfg.Token, mux)
	}
	return mux
}

// requireBearer wraps a handler behind bearer-token auth. Both sides of the
// comparison are hashed first, so the compare is constant-time regardless
// of credential length and leaks nothing about the configured token.
func requireBearer(token string, next http.Handler) http.Handler {
	want := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var supplied string
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			supplied = strings.TrimPrefix(auth, "Bearer ")
		}
		got := sha256.Sum256([]byte(supplied))
		if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="sweepd"`)
			http.Error(w, "unauthorized: missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// serveBlob streams a content-addressed trace blob: GET /v1/blob/<sha256>.
// The digest names the bytes, so the reply is immutable and the worker can
// (and does) verify it end-to-end; the coordinator only guarantees it
// streams the file its configuration maps the digest to.
func (c *Coordinator) serveBlob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	digest := strings.TrimPrefix(r.URL.Path, PathBlob)
	if !ValidDigest(digest) {
		http.Error(w, "blob names are 64 hex characters (a SHA-256 digest)", http.StatusBadRequest)
		return
	}
	path, ok := c.cfg.Blobs[digest]
	if !ok {
		http.Error(w, "no such blob: the coordinator was not given a file with this digest", http.StatusNotFound)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		c.logf("sweepd: blob %.12s…: %v", digest, err)
		http.Error(w, "blob file unreadable on the coordinator", http.StatusInternalServerError)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		http.Error(w, "blob file unreadable on the coordinator", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	io.Copy(w, f)
}

// ValidDigest reports whether s is a plausible blob name: exactly 64
// lowercase hex characters. Gating on it keeps attacker-shaped digests
// ("../../etc/passwd") out of both the blob endpoint and the on-disk cache.
func ValidDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// maxBodyBytes bounds request bodies: far above any honest lease's upload,
// far below what could stall the coordinator.
const maxBodyBytes = 64 << 20

func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// lease pops up to Max pending cells into a fresh lease.
func (c *Coordinator) lease(req LeaseRequest) LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)

	if c.doneN+c.failedN == len(c.cells) {
		return LeaseReply{Done: true, Status: c.statusLocked()}
	}
	max := req.Max
	if max <= 0 || max > c.cfg.MaxBatch {
		max = c.cfg.MaxBatch
	}
	// Pop up to max pending cells, dropping stale queue entries for cells
	// that settled while they waited (late uploads from expired leases).
	var (
		jobs   []sweep.Job
		hashes []string
	)
	for len(c.queue) > 0 && len(jobs) < max {
		h := c.queue[0]
		c.queue = c.queue[1:]
		cl := c.cells[h]
		if cl.state != cellPending {
			continue
		}
		cl.state = cellLeased
		c.pendingN--
		c.leasedN++
		hashes = append(hashes, h)
		jobs = append(jobs, cl.job)
	}
	if len(jobs) == 0 {
		retry := c.cfg.LeaseTTL / 4
		if retry < 50*time.Millisecond {
			retry = 50 * time.Millisecond
		}
		if retry > 2*time.Second {
			retry = 2 * time.Second
		}
		return LeaseReply{RetryMs: retry.Milliseconds(), Status: c.statusLocked()}
	}
	c.leaseSeq++
	le := &lease{
		id:          fmt.Sprintf("L%d", c.leaseSeq),
		worker:      req.Worker,
		expires:     now.Add(c.cfg.LeaseTTL),
		outstanding: hashes,
	}
	c.leases[le.id] = le
	return LeaseReply{
		LeaseID: le.id,
		TTLMs:   c.cfg.LeaseTTL.Milliseconds(),
		Jobs:    jobs,
		Status:  c.statusLocked(),
	}
}

// heartbeat extends a live lease.
func (c *Coordinator) heartbeat(leaseID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.expireLocked(now)
	le, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	le.expires = now.Add(c.cfg.LeaseTTL)
	return true
}

// completeLease ingests a lease's outcome: every uploaded cell is
// re-fingerprinted from the decoded payload and checked against the feed's
// wanted set before it may touch the store; rejected and reported-failed
// cells re-queue (within the attempt budget), and any leased cell the
// upload did not account for re-queues as well. Results are accepted even
// when the lease already expired — the cells are content-addressed, so a
// late upload that verifies is identical to the re-issued computation it
// raced.
func (c *Coordinator) completeLease(req CompleteRequest) CompleteReply {
	// Fingerprint verification is pure (canonical JSON + SHA-256 per
	// cell) and the upload size is client-controlled, so it happens
	// before the lock: a fat or hostile upload must not stall the mutex
	// every lease and heartbeat handler needs.
	type verified struct {
		claimed string
		res     sweep.Result
		err     error
	}
	opened := make([]verified, len(req.Cells))
	for i, wc := range req.Cells {
		opened[i].claimed = wc.Result.Key.Hash()
		opened[i].res, opened[i].err = wc.Open()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.cfg.Now())
	le := c.leases[req.LeaseID] // nil when the lease already expired
	owned := make(map[string]bool)
	if le != nil {
		for _, h := range le.outstanding {
			owned[h] = true
		}
	}

	var rep CompleteReply
	accepted := make([]sweep.Result, 0, len(req.Cells))
	settled := make(map[string]bool)
	for _, v := range opened {
		claimed, res := v.claimed, v.res
		if v.err != nil {
			// The corrupt cell stays unsettled; the lease cleanup below
			// re-queues it for another worker.
			rep.Rejected = append(rep.Rejected, CellFailure{Hash: claimed, Err: v.err.Error()})
			continue
		}
		cl, ok := c.cells[claimed]
		if !ok {
			rep.Rejected = append(rep.Rejected, CellFailure{Hash: claimed, Err: "cell is not part of this grid's feed"})
			continue
		}
		settled[claimed] = true
		accepted = append(accepted, res)
		rep.Accepted++
		if cl.state == cellDone {
			// Idempotent re-delivery (lease expired, cell re-issued and
			// completed twice): identical payloads merge as a no-op; a
			// divergent one is a conflict surfaced by Merge below.
			continue
		}
		switch cl.state {
		case cellLeased:
			c.leasedN--
		case cellPending:
			// Late upload for a cell already re-queued: its stale queue
			// entry is skipped when it reaches the front.
			c.pendingN--
		case cellFailed:
			// A verified late upload recovers a cell the attempt budget
			// had written off (its slow worker finished after all). The
			// counters must move together or done+failed overshoots the
			// cell count and the completion condition never fires.
			c.failedN--
		}
		cl.state = cellDone
		c.doneN++
		c.logf("[%d/%d] %s %s tlb=%d buf=%d  from %s",
			c.cached+c.doneN+c.failedN, c.cached+len(c.cells),
			cl.job.Source.Label(), cl.job.Mech.Label(),
			cl.job.Config.TLB.Entries, cl.job.Config.BufferEntries, req.Worker)
	}
	if len(accepted) > 0 {
		if _, err := c.cfg.Store.Merge(accepted); err != nil {
			c.conflicts = append(c.conflicts, fmt.Sprintf("worker %s: %v", req.Worker, err))
			c.logf("sweepd: %v", err)
		}
	}
	// Failure reports only count against cells this lease still owns — a
	// late report for a cell that already expired back to the feed (or
	// settled through another worker) must not double-queue or re-penalize
	// it.
	for _, f := range req.Failed {
		if owned[f.Hash] && !settled[f.Hash] {
			settled[f.Hash] = true
			c.requeueLocked(f.Hash, fmt.Sprintf("worker %s: %s", req.Worker, f.Err))
		}
	}
	if le != nil {
		delete(c.leases, req.LeaseID)
		// Cells the upload did not account for — rejected corrupt ones
		// included — go back to the feed.
		for _, h := range le.outstanding {
			if !settled[h] {
				c.requeueLocked(h, fmt.Sprintf("worker %s returned the lease without settling the cell", req.Worker))
			}
		}
	}
	c.checkCompleteLocked()
	rep.Status = c.statusLocked()
	return rep
}
