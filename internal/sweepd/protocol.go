// Package sweepd spans a sweep grid across processes and hosts. A
// Coordinator loads a grid's cells, consults the authoritative Store for
// ones already settled, and exposes the dirty remainder as an HTTP/JSON
// job feed with lease-based work stealing: workers pull batches of cells,
// heartbeat their leases while simulating, and upload fingerprinted
// results that the coordinator re-verifies before merging into the store.
// A lease that expires (worker died, network partitioned) returns its
// cells to the feed for the next worker to steal.
//
// Every cell is content-addressed and every simulation deterministic, so
// the distributed path inherits the local engine's guarantee: the merged
// store is byte-identical to a single-process sweep.Runner run of the same
// grid, no matter how many workers joined, how batches were stolen, or how
// many leases expired along the way.
package sweepd

import (
	"tlbprefetch/internal/sweep"
)

// Protocol endpoints. Lease, Complete and Heartbeat are POST with JSON
// bodies; Status is GET; Blob is GET returning raw bytes — PathBlob is a
// prefix, the trailing path element is the hex SHA-256 of the wanted blob
// (e.g. GET /v1/blob/3f5a…). When the coordinator is configured with a
// bearer token, every endpoint requires `Authorization: Bearer <token>`
// (compared in constant time) and answers 401 otherwise.
const (
	PathLease     = "/v1/lease"
	PathComplete  = "/v1/complete"
	PathHeartbeat = "/v1/heartbeat"
	PathStatus    = "/v1/status"
	PathBlob      = "/v1/blob/"
)

// LeaseRequest asks the coordinator for a batch of cells.
type LeaseRequest struct {
	// Worker identifies the requester in logs and lease bookkeeping.
	Worker string `json:"worker"`
	// Max caps the batch size; the coordinator may hand out fewer (and
	// clamps to its own configured maximum).
	Max int `json:"max,omitempty"`
}

// LeaseReply carries a leased batch, a poll-again hint, or the completion
// signal.
type LeaseReply struct {
	// Done reports that every cell has settled: the worker may exit.
	Done bool `json:"done,omitempty"`
	// RetryMs, when nonzero, means no cells are available right now
	// (others hold them under lease) — poll again after this delay.
	RetryMs int64 `json:"retry_ms,omitempty"`
	// LeaseID names the lease; Complete and Heartbeat quote it. TTLMs is
	// the lease's lifetime — heartbeat well inside it or the cells return
	// to the feed.
	LeaseID string `json:"lease_id,omitempty"`
	TTLMs   int64  `json:"ttl_ms,omitempty"`
	// Jobs are the leased cells. Trace sources travel as digests only
	// (paths are machine-local); the worker resolves digests against its
	// own trace files and verifies them before simulating.
	Jobs   []sweep.Job `json:"jobs,omitempty"`
	Status Status      `json:"status"`
}

// CompleteRequest uploads a lease's outcome: fingerprinted results for the
// cells that ran, failure reports for the ones that could not.
type CompleteRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	// Cells are sealed results; the coordinator re-derives each
	// fingerprint from the payload it decoded and rejects mismatches.
	Cells []sweep.WireResult `json:"cells,omitempty"`
	// Failed reports cells the worker could not run (missing trace file,
	// stream error); the coordinator re-queues them up to its attempt
	// budget.
	Failed []CellFailure `json:"failed,omitempty"`
}

// CellFailure names one cell (by key hash) and why it failed or was
// rejected.
type CellFailure struct {
	Hash string `json:"hash"`
	Err  string `json:"err"`
}

// CompleteReply acknowledges an upload.
type CompleteReply struct {
	// Accepted counts cells merged into the store (idempotent
	// re-deliveries of already-settled cells included).
	Accepted int `json:"accepted"`
	// Rejected lists cells refused — fingerprint mismatch, unknown key —
	// each re-queued for another worker when still wanted.
	Rejected []CellFailure `json:"rejected,omitempty"`
	Status   Status        `json:"status"`
}

// HeartbeatRequest extends a lease's lifetime.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// Status is the coordinator's progress snapshot, aggregated across every
// worker.
type Status struct {
	Total    int  `json:"total"`   // grid cells
	Cached   int  `json:"cached"`  // settled from the store before serving
	Done     int  `json:"done"`    // completed by workers this run
	Pending  int  `json:"pending"` // queued, waiting for a lease
	Leased   int  `json:"leased"`  // out under lease right now
	Failed   int  `json:"failed"`  // permanently failed (attempt budget spent)
	Complete bool `json:"complete"`
}
