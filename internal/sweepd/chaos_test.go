package sweepd

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tlbprefetch/internal/sweep"
)

// TestChaosGridBitIdentity is the hardening acceptance pin: a full grid —
// synthetic cells plus a coordinator-served trace blob — is driven to
// completion by three workers whose every request passes through a seeded
// fault-injecting transport (connection resets before and after delivery,
// synthetic timeouts, truncated bodies, duplicated deliveries, injected
// 5xx, reordering delays), while the coordinator checkpoints the store
// mid-grid. The store that survives must be byte-identical to a fault-free
// single-process sweep, on disk as well as in memory.
func TestChaosGridBitIdentity(t *testing.T) {
	const refs = 15_000
	tracePath, src := makeTraceFile(t, refs)
	jobs := append(testJobs(t, refs), traceJobs(t, src, refs)...)
	want := referenceStore(t, jobs)

	storePath := filepath.Join(t.TempDir(), "store.json")
	st, err := sweep.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Jobs:     jobs,
		Store:    st,
		Token:    "chaos-token",
		Blobs:    map[string]string{src.TraceSHA256: tracePath},
		LeaseTTL: 2 * time.Second, // duplicated leases strand quickly, not for 30s
		MaxBatch: 1,               // one cell per lease: more protocol traffic to fault
		// Sustained faults burn attempts (every expiry and failure report
		// spends one); the budget must absorb the storm, not the workers'
		// honesty.
		MaxAttempts: 1000,
		Checkpoint:  50 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	chaos := &ChaosTransport{
		Seed:       42,
		PReset:     0.10,
		PTimeout:   0.04,
		PTruncate:  0.12,
		PDuplicate: 0.10,
		P5xx:       0.05,
		PDelay:     0.15,
		MaxDelay:   10 * time.Millisecond,
	}
	client := &http.Client{Transport: chaos, Timeout: 10 * time.Second}

	var (
		wg   sync.WaitGroup
		errs = make([]error, 3)
	)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				URL:     srv.URL,
				ID:      fmt.Sprintf("chaos-%d", i),
				Token:   "chaos-token",
				Client:  client,
				Retries: 10_000, // only grid completion may end the feed
				Rand:    rand.New(rand.NewSource(int64(i + 1))),
				Runner:  &sweep.Runner{Workers: 2},
				Blobs:   &BlobCache{Dir: filepath.Join(t.TempDir(), fmt.Sprintf("blobs-%d", i)), Attempts: 100},
			}
			_, errs[i] = w.Run(context.Background())
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("grid did not survive the chaos: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	stats := chaos.Stats()
	t.Logf("chaos: %s", stats)
	if stats.Injected() == 0 {
		t.Fatal("the chaos transport injected no faults — the test proved nothing")
	}
	if stats.Truncated == 0 || stats.Resets+stats.LostReply == 0 || stats.Duplicated == 0 {
		t.Fatalf("fault mix too thin to trust: %s", stats)
	}

	// The one property that matters: bit-identity with the fault-free run.
	storesEqual(t, want, st)

	// And the checkpointed file is the complete store (Wait checkpoints on
	// completion), byte-identical to what a fresh save produces.
	onDisk, err := sweep.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, onDisk)
	ckpt, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != string(fresh) {
		t.Fatal("checkpointed file differs from a fresh save of the same store")
	}
}
