package sweepd

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// makeTraceFile records a synthetic workload into a binary trace file and
// returns its path and digest-pinned source.
func makeTraceFile(t *testing.T, refs uint64) (string, sweep.Source) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "app.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := trace.NewBinaryWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workload.ByName("swim")
	workload.Generate(w, refs, func(pc, vaddr uint64) bool {
		if err := bw.Write(trace.Ref{PC: pc, VAddr: vaddr}); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := sweep.TraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, src
}

func traceJobs(t *testing.T, src sweep.Source, refs uint64) []sweep.Job {
	t.Helper()
	g := sweep.Grid{
		Traces: []sweep.Source{src},
		Mechs:  []sweep.Mech{{Kind: "RP"}, {Kind: "DP", Rows: 256, Ways: 1, Slots: 2}},
		Refs:   refs,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestAuthRequired pins the bearer-token gate: every endpoint answers 401
// to missing or wrong credentials (before touching coordinator state), a
// worker with the wrong token fails fast instead of spinning, and a worker
// with the right token completes the grid to the byte-identical store.
func TestAuthRequired(t *testing.T) {
	jobs := testJobs(t, 10_000)
	want := referenceStore(t, jobs)

	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	get := func(token string) int {
		req, err := http.NewRequest(http.MethodGet, srv.URL+PathStatus, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusUnauthorized {
		t.Fatalf("missing token: status %d, want 401", code)
	}
	if code := get("wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", code)
	}
	if code := get("s3cret"); code != http.StatusOK {
		t.Fatalf("right token: status %d, want 200", code)
	}
	// POST endpoints are gated too.
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "anon"}, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated lease: status %d, want 401", code)
	}
	if s := coord.Status(); s.Leased != 0 {
		t.Fatalf("unauthenticated lease touched state: %+v", s)
	}

	// A worker with the wrong token must surface a fatal error quickly —
	// 401 is a deliberate answer, not a transient fault to retry through.
	bad := &Worker{URL: srv.URL, ID: "intruder", Token: "wrong"}
	start := time.Now()
	if _, err := bad.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong-token worker: err = %v, want a 401", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("wrong-token worker spun for %v before failing", d)
	}

	good := &Worker{URL: srv.URL, ID: "trusted", Token: "s3cret", Runner: &sweep.Runner{Workers: 2}}
	if _, err := good.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, st)
}

// TestAuthOverTLS runs the full feed over TLS with bearer auth: the
// transport the ROADMAP calls hostile-LAN-ready, end to end in-process.
func TestAuthOverTLS(t *testing.T) {
	jobs := testJobs(t, 10_000)
	want := referenceStore(t, jobs)

	st := sweep.NewStore()
	coord, err := New(Config{Jobs: jobs, Store: st, Token: "tls-token"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewTLSServer(coord.Handler())
	defer srv.Close()

	w := &Worker{URL: srv.URL, ID: "tls-worker", Token: "tls-token",
		Client: srv.Client(), Runner: &sweep.Runner{Workers: 2}}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, st)
}

// TestBlobServedGrid pins the coordinator-served trace contract: a worker
// with no local trace files fetches the recording from the coordinator's
// content-addressed endpoint, verifies it, caches it, and completes the
// grid to the byte-identical store; a second grid over the same recording
// is served from the cache without another fetch.
func TestBlobServedGrid(t *testing.T) {
	const refs = 15_000
	path, src := makeTraceFile(t, refs)
	jobs := traceJobs(t, src, refs)
	want := referenceStore(t, jobs)

	cache := &BlobCache{Dir: filepath.Join(t.TempDir(), "blobs")}
	for round := 0; round < 2; round++ {
		st := sweep.NewStore()
		coord, err := New(Config{Jobs: jobs, Store: st,
			Blobs: map[string]string{src.TraceSHA256: path}})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(coord.Handler())
		w := &Worker{URL: srv.URL, ID: fmt.Sprintf("fetcher-%d", round), Blobs: cache}
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := coord.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		storesEqual(t, want, st)
		srv.Close()
	}
	if n := cache.Fetches(); n != 1 {
		t.Fatalf("cache made %d fetches across two grids, want 1 (second grid must hit the cache)", n)
	}
}

// TestBlobEndpoint pins the raw endpoint: traversal-shaped names are 400,
// unknown digests 404, and a valid digest streams the exact file bytes.
func TestBlobEndpoint(t *testing.T) {
	const refs = 5_000
	path, src := makeTraceFile(t, refs)
	coord, err := New(Config{Jobs: testJobs(t, refs),
		Blobs: map[string]string{src.TraceSHA256: path}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// (Traversal-shaped names never reach the handler: the HTTP layer
	// path-cleans them away, and ValidDigest — pinned separately — rejects
	// anything that is not 64 lowercase hex characters.)
	for name, wantCode := range map[string]int{
		"deadbeef":                     http.StatusBadRequest,
		"zz" + strings.Repeat("0", 62): http.StatusBadRequest,
		strings.Repeat("0", 64):        http.StatusNotFound,
		src.TraceSHA256:                http.StatusOK,
	} {
		resp, err := http.Get(srv.URL + PathBlob + name)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET blob %q: status %d, want %d", name, resp.StatusCode, wantCode)
		}
		if wantCode == http.StatusOK {
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(body) != string(disk) {
				t.Fatalf("blob body differs from the file (%d vs %d bytes)", len(body), len(disk))
			}
		}
	}
}

// TestBlobDigestMismatchFailsDeterministically pins the corruption path: a
// coordinator serving the wrong bytes for a digest makes the worker
// re-fetch up to its attempt budget and then report a deterministic
// failure; the coordinator's own attempt budget then fails the cells
// permanently with that reason on record.
func TestBlobDigestMismatchFailsDeterministically(t *testing.T) {
	const refs = 5_000
	_, src := makeTraceFile(t, refs)
	wrong := filepath.Join(t.TempDir(), "wrong.trc")
	if err := os.WriteFile(wrong, []byte("not the recording the digest names"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs := traceJobs(t, src, refs)
	coord, err := New(Config{Jobs: jobs, MaxAttempts: 2,
		Blobs: map[string]string{src.TraceSHA256: wrong}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	cache := &BlobCache{Dir: filepath.Join(t.TempDir(), "blobs"), Attempts: 2}
	w := &Worker{URL: srv.URL, ID: "unlucky", Blobs: cache}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err) // the worker survives; the cells fail, not the process
	}
	if err := coord.Wait(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "2 fetch attempts failed") {
		t.Fatalf("Err() = %v, want the deterministic blob-failure report", err)
	}
	if n := cache.Fetches(); n < 2 {
		t.Fatalf("cache fetched %d times, want at least the per-resolution budget of 2 (re-fetch before giving up)", n)
	}
	if s := coord.Status(); !s.Complete || s.Failed != len(jobs) {
		t.Fatalf("final status %+v, want all %d cells failed", s, len(jobs))
	}
}

// TestBlobCacheEviction pins the bound: the cache evicts oldest-first once
// MaxBytes is exceeded, never evicting the entry just fetched.
func TestBlobCacheEviction(t *testing.T) {
	blobs := map[string][]byte{}
	var digests []string
	for i := 0; i < 3; i++ {
		body := []byte(strings.Repeat(fmt.Sprintf("blob-%d ", i), 100)) // ~700 bytes
		digest := fmt.Sprintf("%x", sha256.Sum256(body))
		blobs[digest] = body
		digests = append(digests, digest)
	}
	cache := &BlobCache{
		Dir:      filepath.Join(t.TempDir(), "blobs"),
		MaxBytes: 1500, // fits two entries, not three
		Fetch: func(_ context.Context, digest string) (io.ReadCloser, error) {
			b, ok := blobs[digest]
			if !ok {
				return nil, ErrBlobUnavailable
			}
			return io.NopCloser(strings.NewReader(string(b))), nil
		},
	}
	ctx := context.Background()
	for i, d := range digests {
		if _, err := cache.Path(ctx, d); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes out so eviction age ordering is unambiguous.
		old := time.Now().Add(time.Duration(i-len(digests)) * time.Hour)
		os.Chtimes(cache.entryName(d), old, old)
	}
	if _, err := os.Stat(cache.entryName(digests[0])); !os.IsNotExist(err) {
		t.Fatalf("oldest blob survived eviction (err=%v)", err)
	}
	if _, err := os.Stat(cache.entryName(digests[2])); err != nil {
		t.Fatalf("just-fetched blob evicted: %v", err)
	}
}

// TestCheckpointKillRestart is the crash-tolerance pin: a coordinator
// checkpoints mid-grid, "crashes" (its server closes with leases still
// unsettled), and a restarted coordinator over the checkpointed file
// re-feeds only the still-dirty cells; the resumed run's saved store is
// byte-identical to an uninterrupted single-process sweep's save.
func TestCheckpointKillRestart(t *testing.T) {
	jobs := testJobs(t, 20_000)
	dir := t.TempDir()

	// The uninterrupted baseline, saved through the same file path.
	refPath := filepath.Join(dir, "reference.json")
	ref, err := sweep.OpenStore(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (&sweep.Runner{Store: ref}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := ref.Save(); err != nil {
		t.Fatal(err)
	}

	// First life: a worker settles 3 cells through the real upload path,
	// a 4th is leased but never completed, then the coordinator
	// checkpoints and crashes.
	livePath := filepath.Join(dir, "store.json")
	st, err := sweep.OpenStore(livePath)
	if err != nil {
		t.Fatal(err)
	}
	coordA, err := New(Config{Jobs: jobs, Store: st, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(coordA.Handler())
	var lr LeaseReply
	postJSON(t, srvA.URL+PathLease, LeaseRequest{Worker: "doomed", Max: 3}, &lr)
	if len(lr.Jobs) != 3 {
		t.Fatalf("leased %d cells, want 3", len(lr.Jobs))
	}
	results, _, err := (&sweep.Runner{}).Run(lr.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	req := CompleteRequest{LeaseID: lr.LeaseID, Worker: "doomed"}
	for _, r := range results {
		wc, err := sweep.SealResult(r)
		if err != nil {
			t.Fatal(err)
		}
		req.Cells = append(req.Cells, wc)
	}
	postJSON(t, srvA.URL+PathComplete, req, &CompleteReply{})
	var stranded LeaseReply // a lease the crash strands mid-flight
	postJSON(t, srvA.URL+PathLease, LeaseRequest{Worker: "doomed", Max: 1}, &stranded)
	if err := coordA.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srvA.Close() // crash

	// Second life: reopen the checkpoint. Only the 5 unsettled cells —
	// the stranded lease's included — feed out again.
	re, err := sweep.OpenStore(livePath)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 {
		t.Fatalf("checkpoint holds %d cells, want 3", re.Len())
	}
	coordB, err := New(Config{Jobs: jobs, Store: re})
	if err != nil {
		t.Fatal(err)
	}
	if s := coordB.Status(); s.Cached != 3 || s.Pending != len(jobs)-3 {
		t.Fatalf("restart status %+v, want 3 cached / %d pending", s, len(jobs)-3)
	}
	srvB := httptest.NewServer(coordB.Handler())
	defer srvB.Close()
	w := &Worker{URL: srvB.URL, ID: "resumer", Runner: &sweep.Runner{Workers: 2},
		Rand: rand.New(rand.NewSource(7))}
	sum, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != len(jobs)-3 {
		t.Fatalf("resumed worker ran %d cells, want %d (re-feed only the dirty ones)", sum.Ran, len(jobs)-3)
	}
	if err := coordB.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(livePath)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantBytes) {
		t.Fatal("resumed store file differs from the uninterrupted run's save")
	}
}

// TestJitterBounds pins the backoff jitter contract: delays spread over
// [d/2, d], never zero, never past the nominal delay.
func TestJitterBounds(t *testing.T) {
	f := &feed{rng: rand.New(rand.NewSource(1))}
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := f.jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v, want within [%v, %v]", d, j, d/2, d)
		}
	}
}

// TestValidDigest pins the digest gate both endpoints and the cache rely on.
func TestValidDigest(t *testing.T) {
	ok := strings.Repeat("0123456789abcdef", 4)
	for s, want := range map[string]bool{
		ok:                      true,
		strings.ToUpper(ok):     false,
		ok[:63]:                 false,
		ok + "0":                false,
		"../" + ok[3:]:          false,
		strings.Repeat("g", 64): false,
		"":                      false,
	} {
		if got := ValidDigest(s); got != want {
			t.Errorf("ValidDigest(%q) = %v, want %v", s, got, want)
		}
	}
}
