package sweepd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrBlobUnavailable marks a fetch the origin answered definitively — the
// coordinator has no file for the digest. Retrying cannot help, so the
// cache fails the cell immediately instead of spending its attempt budget.
var ErrBlobUnavailable = errors.New("blob unavailable at the coordinator")

// BlobCache is a bounded, content-addressed on-disk cache of trace blobs.
// Path resolves a digest to a local file, fetching it through Fetch on
// first use: the body is streamed to a temp file while being hashed, the
// digest is verified before the file becomes visible, and truncated or
// corrupted bodies are retried up to Attempts times before a deterministic
// failure report. Because every entry's name is its digest and the runner
// re-verifies the file before simulating, a cache hit can never smuggle
// stale bytes under a fresh recording's key.
//
// Path is safe for concurrent use; two goroutines racing one digest fetch
// twice and atomically rename to the same name, which is wasteful but
// correct.
type BlobCache struct {
	// Dir is the cache directory, created on demand.
	Dir string
	// MaxBytes bounds the cache size (default 4 GiB). After each fetch the
	// oldest entries (by mtime — hits re-touch) are evicted until the
	// total fits; the just-fetched blob itself is never evicted, so one
	// oversized blob still resolves.
	MaxBytes int64
	// Attempts is the per-resolution fetch budget (default 3): transport
	// failures, truncations and digest mismatches all spend one.
	Attempts int
	// Fetch streams a blob's bytes. Worker.Run wires it to the
	// coordinator's PathBlob endpoint when nil. A fetch that cannot ever
	// succeed (no such blob) must return ErrBlobUnavailable.
	Fetch func(ctx context.Context, digest string) (io.ReadCloser, error)
	// Logf, when non-nil, receives fetch/retry/evict lines.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	fetches int
}

func (b *BlobCache) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
	}
}

// Fetches returns how many Fetch calls the cache has made — cache hits make
// none, which is what tests assert.
func (b *BlobCache) Fetches() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fetches
}

func (b *BlobCache) attempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 3
}

func (b *BlobCache) maxBytes() int64 {
	if b.MaxBytes > 0 {
		return b.MaxBytes
	}
	return 4 << 30
}

// entryName is the on-disk name of a cached blob.
func (b *BlobCache) entryName(digest string) string {
	return filepath.Join(b.Dir, digest+".blob")
}

// Path resolves a digest to a local file, fetching and verifying it when
// the cache misses. The error after the attempt budget is deterministic:
// it names the digest, the budget, and the last failure.
func (b *BlobCache) Path(ctx context.Context, digest string) (string, error) {
	if !ValidDigest(digest) {
		return "", fmt.Errorf("sweepd: %q is not a blob digest (64 hex chars)", digest)
	}
	if b.Fetch == nil {
		return "", errors.New("sweepd: BlobCache has no Fetch wired")
	}
	final := b.entryName(digest)
	if _, err := os.Stat(final); err == nil {
		// A hit re-touches the entry so eviction age tracks use, not
		// arrival.
		now := time.Now()
		os.Chtimes(final, now, now)
		return final, nil
	}
	if err := os.MkdirAll(b.Dir, 0o755); err != nil {
		return "", fmt.Errorf("sweepd: blob cache: %w", err)
	}
	var lastErr error
	for attempt := 1; attempt <= b.attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		b.mu.Lock()
		b.fetches++
		b.mu.Unlock()
		rc, err := b.Fetch(ctx, digest)
		if err != nil {
			if errors.Is(err, ErrBlobUnavailable) {
				return "", fmt.Errorf("sweepd: blob %.12s…: %w", digest, err)
			}
			lastErr = err
			b.logf("sweepd: blob %.12s… fetch attempt %d/%d: %v", digest, attempt, b.attempts(), err)
			continue
		}
		err = b.download(rc, digest, final)
		if err == nil {
			b.evict(final)
			return final, nil
		}
		lastErr = err
		b.logf("sweepd: blob %.12s… fetch attempt %d/%d: %v", digest, attempt, b.attempts(), err)
	}
	return "", fmt.Errorf("sweepd: blob %.12s…: %d fetch attempts failed, last: %w", digest, b.attempts(), lastErr)
}

// download streams one fetched body to a temp file while hashing it, then
// atomically publishes it under its digest. Any mismatch — truncation,
// corruption, the coordinator serving the wrong file — discards the temp
// file and reports the digest it actually saw.
func (b *BlobCache) download(rc io.ReadCloser, digest, final string) error {
	defer rc.Close()
	tmp, err := os.CreateTemp(b.Dir, ".blob-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	h := sha256.New()
	_, copyErr := io.Copy(io.MultiWriter(tmp, h), rc)
	closeErr := tmp.Close()
	if copyErr != nil || closeErr != nil {
		os.Remove(tmpName)
		if copyErr != nil {
			return fmt.Errorf("reading blob body: %w", copyErr)
		}
		return closeErr
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != digest {
		os.Remove(tmpName)
		return fmt.Errorf("body hashes to %.12s…, want %.12s… (truncated or corrupted)", got, digest)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// evict drops the oldest cache entries until the total size fits MaxBytes,
// never touching the entry just fetched.
func (b *BlobCache) evict(keep string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	entries, err := filepath.Glob(filepath.Join(b.Dir, "*.blob"))
	if err != nil {
		return
	}
	type ent struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		total int64
		es    []ent
	)
	for _, p := range entries {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		total += fi.Size()
		es = append(es, ent{p, fi.Size(), fi.ModTime()})
	}
	if total <= b.maxBytes() {
		return
	}
	sort.Slice(es, func(i, j int) bool { return es[i].mtime.Before(es[j].mtime) })
	for _, e := range es {
		if total <= b.maxBytes() {
			return
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			b.logf("sweepd: blob cache evicted %s (%d bytes)", filepath.Base(e.path), e.size)
		}
	}
}
