package sweepd

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosStats counts the faults a ChaosTransport injected, so a chaos run
// can prove it actually exercised the failure paths it claims to.
type ChaosStats struct {
	Requests   int // round trips attempted through the transport
	Resets     int // connection reset before the request was sent
	LostReply  int // request delivered, response thrown away (reset after send)
	Timeouts   int // synthetic timeout errors
	Truncated  int // response bodies cut short
	Duplicated int // requests delivered twice
	Errors5xx  int // synthetic 503 replies
	Delayed    int // requests delayed (reordering pressure)
}

// Injected sums every fault.
func (s ChaosStats) Injected() int {
	return s.Resets + s.LostReply + s.Timeouts + s.Truncated + s.Duplicated + s.Errors5xx + s.Delayed
}

func (s ChaosStats) String() string {
	return fmt.Sprintf("%d requests: %d resets, %d lost replies, %d timeouts, %d truncations, %d duplicates, %d 5xx, %d delays",
		s.Requests, s.Resets, s.LostReply, s.Timeouts, s.Truncated, s.Duplicated, s.Errors5xx, s.Delayed)
}

// ChaosTransport is a fault-injecting http.RoundTripper: it wraps a real
// transport and, with the configured probabilities, resets connections
// before or after the request is delivered, times requests out, truncates
// response bodies, duplicates requests (delivering them twice — the
// idempotency trial for uploads), answers with a synthetic 503, or delays
// requests to create reordering pressure between concurrent workers.
//
// The fault stream is drawn from a seeded PRNG, so a chaos run is
// reproducible for a given seed and request order. Faults compose with the
// protocol's own defences — content-addressed cells, fingerprint
// verification, lease expiry, idempotent merges — and the test harness
// asserts the one property that matters: the store that survives the
// chaos is byte-identical to a fault-free single-process sweep.
//
// It is safe for concurrent use.
type ChaosTransport struct {
	// Base performs the real round trips (nil: http.DefaultTransport).
	Base http.RoundTripper
	// Seed seeds the fault stream.
	Seed int64
	// Fault probabilities, each in [0, 1], checked in this order; at most
	// one fault fires per request.
	PReset     float64 // reset: half before delivery, half after (reply lost)
	PTimeout   float64 // synthetic timeout error, request not delivered
	PTruncate  float64 // deliver, then cut the response body in half
	PDuplicate float64 // deliver the request twice
	P5xx       float64 // synthetic 503 without delivering
	PDelay     float64 // sleep up to MaxDelay before delivering
	// MaxDelay bounds PDelay sleeps (default 20ms).
	MaxDelay time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	stats ChaosStats
}

// Stats snapshots the fault counters.
func (t *ChaosTransport) Stats() ChaosStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *ChaosTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// fault draws this request's fate from the seeded stream.
type faultKind int

const (
	faultNone faultKind = iota
	faultResetBefore
	faultResetAfter
	faultTimeout
	faultTruncate
	faultDuplicate
	fault5xx
	faultDelay
)

func (t *ChaosTransport) draw() (faultKind, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(t.Seed))
	}
	t.stats.Requests++
	roll := t.rng.Float64()
	var delay time.Duration
	switch {
	case roll < t.PReset:
		if t.rng.Intn(2) == 0 {
			t.stats.Resets++
			return faultResetBefore, 0
		}
		t.stats.LostReply++
		return faultResetAfter, 0
	case roll < t.PReset+t.PTimeout:
		t.stats.Timeouts++
		return faultTimeout, 0
	case roll < t.PReset+t.PTimeout+t.PTruncate:
		t.stats.Truncated++
		return faultTruncate, 0
	case roll < t.PReset+t.PTimeout+t.PTruncate+t.PDuplicate:
		t.stats.Duplicated++
		return faultDuplicate, 0
	case roll < t.PReset+t.PTimeout+t.PTruncate+t.PDuplicate+t.P5xx:
		t.stats.Errors5xx++
		return fault5xx, 0
	case roll < t.PReset+t.PTimeout+t.PTruncate+t.PDuplicate+t.P5xx+t.PDelay:
		t.stats.Delayed++
		max := t.MaxDelay
		if max <= 0 {
			max = 20 * time.Millisecond
		}
		delay = time.Duration(t.rng.Int63n(int64(max)))
		return faultDelay, delay
	}
	return faultNone, 0
}

// chaosTimeoutError satisfies net.Error, so it looks exactly like a client
// timeout to the worker's error classification.
type chaosTimeoutError struct{}

func (chaosTimeoutError) Error() string   { return "chaos: injected request timeout" }
func (chaosTimeoutError) Timeout() bool   { return true }
func (chaosTimeoutError) Temporary() bool { return true }

// RoundTrip applies this request's drawn fault. The request body is
// buffered first so faults that deliver the request more than once (or
// deliver it and then discard the reply, forcing the client to resend) can
// replay it byte-for-byte.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return t.base().RoundTrip(r)
	}

	kind, delay := t.draw()
	switch kind {
	case faultResetBefore:
		return nil, fmt.Errorf("chaos: connection reset before request")
	case faultResetAfter:
		// The server processes the request; the client never learns.
		if resp, err := send(); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("chaos: connection reset awaiting response")
	case faultTimeout:
		return nil, chaosTimeoutError{}
	case faultTruncate:
		resp, err := send()
		if err != nil {
			return nil, err
		}
		full, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		resp.Body = io.NopCloser(bytes.NewReader(full[:len(full)/2]))
		return resp, nil
	case faultDuplicate:
		// Deliver twice: the first reply is discarded, the second is what
		// the client sees. For uploads this is exactly the duplicated-
		// delivery case the coordinator's idempotent merge must absorb;
		// for leases it strands a lease that must die by TTL.
		if resp, err := send(); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return send()
	case fault5xx:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     make(http.Header),
			Body:       io.NopCloser(bytes.NewReader([]byte("chaos: injected server error"))),
			Request:    req,
		}, nil
	case faultDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	return send()
}
