package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"time"

	"tlbprefetch/internal/sweep"
)

// Worker joins a coordinator's job feed: it leases batches of cells, runs
// them through the local sweep.Runner execution path (the same sharding
// and sim.Group coalescing a single-process sweep uses), and uploads
// fingerprinted results. Trace cells arrive as digests; the worker
// resolves them against its Traces map — or fetches the bytes from the
// coordinator's blob endpoint through Blobs — and the runner re-verifies
// each file's digest before simulating, so a stale local recording can
// never be uploaded under a fresh recording's key.
type Worker struct {
	// URL is the coordinator's base address, e.g. "http://host:9177" or
	// "https://host:9177" for a TLS coordinator.
	URL string
	// ID names the worker in coordinator logs (default "worker-<pid>").
	ID string
	// Token, when non-empty, is sent as a Bearer credential on every
	// request (including blob fetches). A coordinator that rejects it
	// answers 401, which the worker surfaces as a fatal error — wrong
	// credentials must fail loudly, not spin.
	Token string
	// Runner executes leased cells (nil: a zero Runner — GOMAXPROCS
	// shards, no local store).
	Runner *sweep.Runner
	// Traces maps trace digests to local file paths, from the worker's
	// own -trace flags. It is consulted before Blobs, so a locally held
	// recording is never re-downloaded.
	Traces map[string]string
	// Blobs, when non-nil, resolves trace digests the worker does not hold
	// locally by fetching them from the coordinator's blob endpoint into a
	// bounded on-disk cache. Run wires Blobs.Fetch to this coordinator
	// when it is nil.
	Blobs *BlobCache
	// MaxBatch caps cells requested per lease (0: the coordinator's
	// default).
	MaxBatch int
	// Retries bounds consecutive retryable request failures — transport
	// errors, 5xx replies, truncated bodies — before the worker concludes
	// the coordinator is gone (default 3). Each retry backs off
	// exponentially with jitter. Chaos tests raise it so sustained fault
	// injection cannot end the feed early.
	Retries int
	// Client is the HTTP client (nil: a default with a 30s timeout — the
	// protocol's requests all answer immediately, so a silently
	// partitioned coordinator must surface as a transport error, not
	// block the worker forever). Supply one with a TLS config to trust a
	// self-signed coordinator, or with a fault-injecting transport for
	// chaos testing.
	Client *http.Client
	// Rand drives backoff jitter (nil: time-seeded). Tests inject a
	// seeded source. It is only touched from the feed goroutine.
	Rand *rand.Rand
	// Logf, when non-nil, receives per-lease progress lines.
	Logf func(format string, args ...any)
}

// Run drains the coordinator's feed until the grid completes, returning
// the summary of cells this worker executed.
func (w *Worker) Run(ctx context.Context) (sweep.Summary, error) {
	runner := w.Runner
	if runner == nil {
		runner = &sweep.Runner{}
	}
	if w.Blobs != nil && w.Blobs.Fetch == nil {
		w.Blobs.Fetch = w.fetchBlob
	}
	rng := w.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<32))
	}
	f := &feed{w: w, ctx: ctx, rng: rng}
	defer f.stopHeartbeat()
	return runner.RunSource(f)
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	return fmt.Sprintf("worker-%d", os.Getpid())
}

func (w *Worker) maxRetries() int {
	if w.Retries > 0 {
		return w.Retries
	}
	return 3
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// defaultClient bounds every protocol request: none of them long-poll, so
// anything slower than this is a dead or partitioned coordinator.
var defaultClient = &http.Client{Timeout: 30 * time.Second}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultClient
}

// transportError marks a failure to reach the coordinator at all (dial
// refused, connection reset, request timeout) or to read a complete reply
// from it (truncated body), as opposed to an answer it chose to send.
type transportError struct{ err error }

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

func isTransport(err error) bool {
	var te transportError
	return errors.As(err, &te)
}

// statusError is a non-200 reply the coordinator chose to send.
type statusError struct {
	path, status, msg string
	code              int
}

func (e *statusError) Error() string {
	return fmt.Sprintf("sweepd: %s: coordinator replied %s: %s", e.path, e.status, e.msg)
}

// isRetryable reports whether a request is worth repeating: transport
// failures and truncated replies might heal, and a 5xx is the coordinator
// hiccuping, not rejecting. 4xx replies — auth failures above all — are
// deliberate answers; retrying them is spinning.
func isRetryable(err error) bool {
	if isTransport(err) {
		return true
	}
	var se *statusError
	return errors.As(err, &se) && se.code >= 500
}

// post sends a JSON request body and decodes a JSON reply. Non-200
// responses become statusErrors carrying the coordinator's message;
// failures to reach it at all — and replies that arrive truncated — are
// tagged as transport errors so the feed can tell a flaky path from a
// rejecting coordinator.
func (w *Worker) post(ctx context.Context, path string, body, reply any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	w.authorize(req)
	resp, err := w.client().Do(req)
	if err != nil {
		return transportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{path: path, status: resp.Status, msg: string(bytes.TrimSpace(msg)), code: resp.StatusCode}
	}
	if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
		return transportError{fmt.Errorf("sweepd: %s: decoding coordinator reply: %w", path, err)}
	}
	return nil
}

func (w *Worker) authorize(req *http.Request) {
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
}

// fetchBlob streams one trace blob from the coordinator's content-addressed
// endpoint. A 404 is definitive (the coordinator holds no such file) and
// maps to ErrBlobUnavailable; other failures are retryable and the
// BlobCache spends its attempt budget on them.
func (w *Worker) fetchBlob(ctx context.Context, digest string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+PathBlob+digest, nil)
	if err != nil {
		return nil, err
	}
	w.authorize(req)
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return nil, fmt.Errorf("%w: %s", ErrBlobUnavailable, bytes.TrimSpace(msg))
		}
		return nil, fmt.Errorf("sweepd: blob fetch: coordinator replied %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return resp.Body, nil
}

// feed adapts the coordinator's lease protocol to sweep.JobSource, so the
// worker drains it through the exact Runner loop the local path uses.
type feed struct {
	w   *Worker
	ctx context.Context
	rng *rand.Rand

	connected bool // at least one exchange with the coordinator succeeded
	dialTries int  // consecutive startup dial failures
	retries   int  // consecutive retryable failures after connecting

	leaseID     string
	ttl         time.Duration
	outstanding []string      // leased cell hashes, issue order
	prefailed   []CellFailure // cells unrunnable before simulation (missing trace)

	stopHB chan struct{}
	hbDone chan struct{}
}

// startupDialTries bounds how long a worker waits for a coordinator that
// is not listening yet (tries × ~200ms ≈ 10s).
const startupDialTries = 50

// jitter spreads a delay uniformly over [d/2, d]: when a restarted
// coordinator comes back, its workers must not stampede it in lockstep.
func (f *feed) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(f.rng.Int63n(int64(half)+1))
}

// sleep pauses for the jittered delay or until the context ends.
func (f *feed) sleep(d time.Duration) error {
	select {
	case <-f.ctx.Done():
		return f.ctx.Err()
	case <-time.After(f.jitter(d)):
		return nil
	}
}

// backoff is the delay before retry number n (1-based): exponential from
// 100ms, clamped to 2s, jittered by sleep.
func retryBackoff(n int) time.Duration {
	d := 100 * time.Millisecond << uint(n-1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// retry accounts one retryable failure: it reports whether the budget
// still allows another attempt, sleeping the backoff when it does.
func (f *feed) retry(err error) (again bool, sleepErr error) {
	f.retries++
	if f.retries > f.w.maxRetries() {
		return false, nil
	}
	f.w.logf("sweepd: %s: retrying after %v (%d/%d)", f.w.id(), err, f.retries, f.w.maxRetries())
	return true, f.sleep(retryBackoff(f.retries))
}

// NextBatch leases the next batch: it polls while the feed is empty,
// returns a drained signal when the coordinator reports completion, and
// otherwise resolves trace paths and starts the lease heartbeat. Dial
// failures before the first successful exchange retry briefly (the
// coordinator may still be binding its socket); after one, retryable
// failures back off with jitter up to the Retries budget — only a
// coordinator that stays unreachable through the whole budget means the
// feed is over. Deliberate rejections (401 above all) are fatal
// immediately.
func (f *feed) NextBatch() ([]sweep.Job, error) {
	for {
		if err := f.ctx.Err(); err != nil {
			return nil, err
		}
		var rep LeaseReply
		err := f.w.post(f.ctx, PathLease, LeaseRequest{Worker: f.w.id(), Max: f.w.MaxBatch}, &rep)
		if err != nil {
			if !isRetryable(err) {
				return nil, err
			}
			if f.connected {
				again, sleepErr := f.retry(err)
				if sleepErr != nil {
					return nil, sleepErr
				}
				if !again {
					f.w.logf("sweepd: %s: coordinator gone (%v) — treating the feed as complete", f.w.id(), err)
					return nil, nil
				}
				continue
			}
			f.dialTries++
			if f.dialTries >= startupDialTries {
				return nil, err
			}
			if err := f.sleep(200 * time.Millisecond); err != nil {
				return nil, err
			}
			continue
		}
		f.connected = true
		f.retries = 0
		if rep.Done {
			f.w.logf("sweepd: %s: feed complete (%d/%d cells done, %d failed)",
				f.w.id(), rep.Status.Cached+rep.Status.Done, rep.Status.Total, rep.Status.Failed)
			return nil, nil
		}
		if len(rep.Jobs) == 0 {
			retry := time.Duration(rep.RetryMs) * time.Millisecond
			if retry <= 0 {
				retry = 100 * time.Millisecond
			}
			if err := f.sleep(retry); err != nil {
				return nil, err
			}
			continue
		}

		f.leaseID = rep.LeaseID
		f.ttl = time.Duration(rep.TTLMs) * time.Millisecond
		f.outstanding = f.outstanding[:0]
		f.prefailed = nil
		// Heartbeat from the moment the lease exists: blob fetches below
		// may outlast the TTL on a slow link, and losing the lease to a
		// download would waste the coordinator's attempt budget.
		f.startHeartbeat()
		var runnable []sweep.Job
		for _, j := range rep.Jobs {
			h := j.Key().Hash()
			f.outstanding = append(f.outstanding, h)
			if j.Source.IsTrace() {
				path, err := f.resolveTrace(j.Source.TraceSHA256)
				if err != nil {
					f.prefailed = append(f.prefailed, CellFailure{Hash: h, Err: err.Error()})
					continue
				}
				j.Source.TracePath = path
			}
			if j.Mix != nil {
				// j is a copy, but its Mix is a shared pointer — deep-copy
				// before filling in local trace paths, or every lease of
				// the same mix would alias one mutated Sources slice.
				m := *j.Mix
				m.Sources = append([]sweep.Source(nil), j.Mix.Sources...)
				var failed error
				for i := range m.Sources {
					if !m.Sources[i].IsTrace() {
						continue
					}
					path, err := f.resolveTrace(m.Sources[i].TraceSHA256)
					if err != nil {
						failed = err
						break
					}
					m.Sources[i].TracePath = path
				}
				if failed != nil {
					f.prefailed = append(f.prefailed, CellFailure{Hash: h, Err: failed.Error()})
					continue
				}
				j.Mix = &m
			}
			runnable = append(runnable, j)
		}
		f.w.logf("sweepd: %s: leased %d cells (%s)", f.w.id(), len(rep.Jobs), rep.LeaseID)
		if len(runnable) == 0 {
			// Nothing in the batch can run here; return the lease with
			// the failures, then back off before asking again. Without
			// the pause this worker would re-lease the same cells in a
			// tight loop, spending their whole attempt budget in
			// milliseconds before a worker that *does* hold the trace
			// files gets a chance to steal them. The server-sent RetryMs
			// hint, when present, takes precedence over the local clamp.
			ttl := f.ttl
			if err := f.Report(nil, nil); err != nil {
				return nil, err
			}
			backoff := time.Duration(rep.RetryMs) * time.Millisecond
			if backoff <= 0 {
				backoff = ttl / 4
				if backoff < 200*time.Millisecond {
					backoff = 200 * time.Millisecond
				}
				if backoff > 2*time.Second {
					backoff = 2 * time.Second
				}
			}
			if err := f.sleep(backoff); err != nil {
				return nil, err
			}
			continue
		}
		return runnable, nil
	}
}

// resolveTrace maps a leased cell's trace digest to a local path: the
// worker's own -trace files first, then the coordinator's blob endpoint
// through the bounded cache.
func (f *feed) resolveTrace(digest string) (string, error) {
	if path, ok := f.w.Traces[digest]; ok {
		return path, nil
	}
	if f.w.Blobs == nil {
		return "", fmt.Errorf("no local file for trace %.12s… (give the worker its -trace, or serve blobs from the coordinator)", digest)
	}
	return f.w.Blobs.Path(f.ctx, digest)
}

// Report uploads the lease's outcome. Cells absent from results — a batch
// execution error fails the whole batch — are reported failed so the
// coordinator can re-queue them within its attempt budget. The upload is
// idempotent (cells are content-addressed and the coordinator de-dupes),
// so retryable failures re-send it up to the Retries budget.
func (f *feed) Report(results []sweep.Result, runErr error) error {
	f.stopHeartbeat()
	req := CompleteRequest{LeaseID: f.leaseID, Worker: f.w.id(), Failed: f.prefailed}
	done := make(map[string]bool, len(results))
	for _, r := range results {
		wc, err := sweep.SealResult(r)
		if err != nil {
			return err
		}
		done[r.Key.Hash()] = true
		req.Cells = append(req.Cells, wc)
	}
	if runErr != nil {
		failed := make(map[string]bool, len(f.prefailed))
		for _, pf := range f.prefailed {
			failed[pf.Hash] = true
		}
		for _, h := range f.outstanding {
			if !done[h] && !failed[h] {
				req.Failed = append(req.Failed, CellFailure{Hash: h, Err: runErr.Error()})
			}
		}
		f.w.logf("sweepd: %s: lease %s failed: %v", f.w.id(), f.leaseID, runErr)
	}
	var rep CompleteReply
	for {
		err := f.w.post(f.ctx, PathComplete, req, &rep)
		if err == nil {
			f.retries = 0
			break
		}
		if !isRetryable(err) {
			return err
		}
		again, sleepErr := f.retry(err)
		if sleepErr != nil {
			return sleepErr
		}
		if again {
			continue
		}
		if f.connected {
			// The coordinator vanished mid-upload. Its lease will expire
			// and the cells re-issue if it comes back; nothing useful is
			// left for this worker to do with them.
			f.w.logf("sweepd: %s: completion upload for %s lost (%v)", f.w.id(), f.leaseID, err)
			f.leaseID, f.outstanding, f.prefailed = "", f.outstanding[:0], nil
			return nil
		}
		return err
	}
	for _, rj := range rep.Rejected {
		f.w.logf("sweepd: %s: coordinator rejected cell %.12s…: %s", f.w.id(), rj.Hash, rj.Err)
	}
	f.leaseID, f.outstanding, f.prefailed = "", f.outstanding[:0], nil
	return nil
}

// startHeartbeat keeps the current lease alive while the batch simulates.
func (f *feed) startHeartbeat() {
	interval := f.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	f.stopHB = make(chan struct{})
	f.hbDone = make(chan struct{})
	leaseID := f.leaseID
	go func() {
		defer close(f.hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stopHB:
				return
			case <-f.ctx.Done():
				return
			case <-t.C:
				// A failed heartbeat (coordinator restarted, lease
				// expired) is not fatal: the run finishes and the
				// completion upload is idempotent.
				var rep struct{}
				if err := f.w.post(f.ctx, PathHeartbeat, HeartbeatRequest{LeaseID: leaseID}, &rep); err != nil {
					f.w.logf("sweepd: %s: heartbeat for %s: %v", f.w.id(), leaseID, err)
				}
			}
		}
	}()
}

func (f *feed) stopHeartbeat() {
	if f.stopHB != nil {
		close(f.stopHB)
		<-f.hbDone
		f.stopHB, f.hbDone = nil, nil
	}
}
