package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"tlbprefetch/internal/sweep"
)

// Worker joins a coordinator's job feed: it leases batches of cells, runs
// them through the local sweep.Runner execution path (the same sharding
// and sim.Group coalescing a single-process sweep uses), and uploads
// fingerprinted results. Trace cells arrive as digests; the worker
// resolves them against its Traces map and the runner re-verifies each
// file's digest before simulating, so a stale local recording can never be
// uploaded under a fresh recording's key.
type Worker struct {
	// URL is the coordinator's base address, e.g. "http://host:9177".
	URL string
	// ID names the worker in coordinator logs (default "worker-<pid>").
	ID string
	// Runner executes leased cells (nil: a zero Runner — GOMAXPROCS
	// shards, no local store).
	Runner *sweep.Runner
	// Traces maps trace digests to local file paths, from the worker's
	// own -trace flags.
	Traces map[string]string
	// MaxBatch caps cells requested per lease (0: the coordinator's
	// default).
	MaxBatch int
	// Client is the HTTP client (nil: a default with a 30s timeout — the
	// protocol's requests all answer immediately, so a silently
	// partitioned coordinator must surface as a transport error, not
	// block the worker forever).
	Client *http.Client
	// Logf, when non-nil, receives per-lease progress lines.
	Logf func(format string, args ...any)
}

// Run drains the coordinator's feed until the grid completes, returning
// the summary of cells this worker executed.
func (w *Worker) Run(ctx context.Context) (sweep.Summary, error) {
	runner := w.Runner
	if runner == nil {
		runner = &sweep.Runner{}
	}
	f := &feed{w: w, ctx: ctx}
	defer f.stopHeartbeat()
	return runner.RunSource(f)
}

func (w *Worker) id() string {
	if w.ID != "" {
		return w.ID
	}
	return fmt.Sprintf("worker-%d", os.Getpid())
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// defaultClient bounds every protocol request: none of them long-poll, so
// anything slower than this is a dead or partitioned coordinator.
var defaultClient = &http.Client{Timeout: 30 * time.Second}

// transportError marks a failure to reach the coordinator at all (dial
// refused, connection reset, request timeout), as opposed to a reply it
// chose to send.
type transportError struct{ err error }

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

func isTransport(err error) bool {
	var te transportError
	return errors.As(err, &te)
}

// post sends a JSON request body and decodes a JSON reply. Non-200
// responses become errors carrying the coordinator's message; failures to
// reach it at all are tagged as transport errors so the feed can tell a
// vanished coordinator from a rejecting one.
func (w *Worker) post(ctx context.Context, path string, body, reply any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = defaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return transportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("sweepd: %s: coordinator replied %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// feed adapts the coordinator's lease protocol to sweep.JobSource, so the
// worker drains it through the exact Runner loop the local path uses.
type feed struct {
	w   *Worker
	ctx context.Context

	connected bool // at least one exchange with the coordinator succeeded
	dialTries int  // consecutive startup dial failures

	leaseID     string
	ttl         time.Duration
	outstanding []string      // leased cell hashes, issue order
	prefailed   []CellFailure // cells unrunnable before simulation (missing trace)

	stopHB chan struct{}
	hbDone chan struct{}
}

// startupDialTries bounds how long a worker waits for a coordinator that
// is not listening yet (tries × 200ms ≈ 10s).
const startupDialTries = 50

// NextBatch leases the next batch: it polls while the feed is empty,
// returns a drained signal when the coordinator reports completion, and
// otherwise resolves trace paths and starts the lease heartbeat. Dial
// failures before the first successful exchange retry briefly (the
// coordinator may still be binding its socket); after one, they mean the
// coordinator finished and left — the feed is over.
func (f *feed) NextBatch() ([]sweep.Job, error) {
	for {
		if err := f.ctx.Err(); err != nil {
			return nil, err
		}
		var rep LeaseReply
		err := f.w.post(f.ctx, PathLease, LeaseRequest{Worker: f.w.id(), Max: f.w.MaxBatch}, &rep)
		if err != nil {
			if !isTransport(err) {
				return nil, err
			}
			if f.connected {
				f.w.logf("sweepd: %s: coordinator gone (%v) — treating the feed as complete", f.w.id(), err)
				return nil, nil
			}
			f.dialTries++
			if f.dialTries >= startupDialTries {
				return nil, err
			}
			select {
			case <-f.ctx.Done():
				return nil, f.ctx.Err()
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		f.connected = true
		if rep.Done {
			f.w.logf("sweepd: %s: feed complete (%d/%d cells done, %d failed)",
				f.w.id(), rep.Status.Cached+rep.Status.Done, rep.Status.Total, rep.Status.Failed)
			return nil, nil
		}
		if len(rep.Jobs) == 0 {
			retry := time.Duration(rep.RetryMs) * time.Millisecond
			if retry <= 0 {
				retry = 100 * time.Millisecond
			}
			select {
			case <-f.ctx.Done():
				return nil, f.ctx.Err()
			case <-time.After(retry):
			}
			continue
		}

		f.leaseID = rep.LeaseID
		f.ttl = time.Duration(rep.TTLMs) * time.Millisecond
		f.outstanding = f.outstanding[:0]
		f.prefailed = nil
		var runnable []sweep.Job
		for _, j := range rep.Jobs {
			h := j.Key().Hash()
			f.outstanding = append(f.outstanding, h)
			if j.Source.IsTrace() {
				path, ok := f.w.Traces[j.Source.TraceSHA256]
				if !ok {
					f.prefailed = append(f.prefailed, CellFailure{
						Hash: h,
						Err:  fmt.Sprintf("no local file for trace %s (give the worker its -trace)", j.Source.Label()),
					})
					continue
				}
				j.Source.TracePath = path
			}
			runnable = append(runnable, j)
		}
		f.w.logf("sweepd: %s: leased %d cells (%s)", f.w.id(), len(rep.Jobs), rep.LeaseID)
		if len(runnable) == 0 {
			// Nothing in the batch can run here; return the lease with
			// the failures, then back off before asking again. Without
			// the pause this worker would re-lease the same cells in a
			// tight loop, spending their whole attempt budget in
			// milliseconds before a worker that *does* hold the trace
			// files gets a chance to steal them.
			if err := f.Report(nil, nil); err != nil {
				return nil, err
			}
			backoff := f.ttl / 4
			if backoff < 200*time.Millisecond {
				backoff = 200 * time.Millisecond
			}
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			select {
			case <-f.ctx.Done():
				return nil, f.ctx.Err()
			case <-time.After(backoff):
			}
			continue
		}
		f.startHeartbeat()
		return runnable, nil
	}
}

// Report uploads the lease's outcome. Cells absent from results — a batch
// execution error fails the whole batch — are reported failed so the
// coordinator can re-queue them within its attempt budget.
func (f *feed) Report(results []sweep.Result, runErr error) error {
	f.stopHeartbeat()
	req := CompleteRequest{LeaseID: f.leaseID, Worker: f.w.id(), Failed: f.prefailed}
	done := make(map[string]bool, len(results))
	for _, r := range results {
		wc, err := sweep.SealResult(r)
		if err != nil {
			return err
		}
		done[r.Key.Hash()] = true
		req.Cells = append(req.Cells, wc)
	}
	if runErr != nil {
		failed := make(map[string]bool, len(f.prefailed))
		for _, pf := range f.prefailed {
			failed[pf.Hash] = true
		}
		for _, h := range f.outstanding {
			if !done[h] && !failed[h] {
				req.Failed = append(req.Failed, CellFailure{Hash: h, Err: runErr.Error()})
			}
		}
		f.w.logf("sweepd: %s: lease %s failed: %v", f.w.id(), f.leaseID, runErr)
	}
	var rep CompleteReply
	if err := f.w.post(f.ctx, PathComplete, req, &rep); err != nil {
		if isTransport(err) && f.connected {
			// The coordinator vanished mid-upload. Its lease will expire
			// and the cells re-issue if it comes back; nothing useful is
			// left for this worker to do with them.
			f.w.logf("sweepd: %s: completion upload for %s lost (%v)", f.w.id(), f.leaseID, err)
			f.leaseID, f.outstanding, f.prefailed = "", f.outstanding[:0], nil
			return nil
		}
		return err
	}
	for _, rj := range rep.Rejected {
		f.w.logf("sweepd: %s: coordinator rejected cell %.12s…: %s", f.w.id(), rj.Hash, rj.Err)
	}
	f.leaseID, f.outstanding, f.prefailed = "", f.outstanding[:0], nil
	return nil
}

// startHeartbeat keeps the current lease alive while the batch simulates.
func (f *feed) startHeartbeat() {
	interval := f.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	f.stopHB = make(chan struct{})
	f.hbDone = make(chan struct{})
	leaseID := f.leaseID
	go func() {
		defer close(f.hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-f.stopHB:
				return
			case <-f.ctx.Done():
				return
			case <-t.C:
				// A failed heartbeat (coordinator restarted, lease
				// expired) is not fatal: the run finishes and the
				// completion upload is idempotent.
				var rep struct{}
				if err := f.w.post(f.ctx, PathHeartbeat, HeartbeatRequest{LeaseID: leaseID}, &rep); err != nil {
					f.w.logf("sweepd: %s: heartbeat for %s: %v", f.w.id(), leaseID, err)
				}
			}
		}
	}()
}

func (f *feed) stopHeartbeat() {
	if f.stopHB != nil {
		close(f.stopHB)
		<-f.hbDone
		f.stopHB, f.hbDone = nil, nil
	}
}
