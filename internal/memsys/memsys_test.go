package memsys

import "testing"

func TestIssueSerializes(t *testing.T) {
	c := NewChannel(50)
	if got := c.Issue(0, 1); got != 50 {
		t.Fatalf("first op completes at %d, want 50", got)
	}
	// Issued while busy: queues behind.
	if got := c.Issue(10, 1); got != 100 {
		t.Fatalf("queued op completes at %d, want 100", got)
	}
	// Issued after idle: starts immediately.
	if got := c.Issue(500, 2); got != 600 {
		t.Fatalf("batch completes at %d, want 600", got)
	}
}

func TestIssueZero(t *testing.T) {
	c := NewChannel(50)
	if got := c.Issue(42, 0); got != 42 {
		t.Fatalf("zero ops returned %d, want 42", got)
	}
	if c.Busy(42) {
		t.Fatal("channel busy after zero ops")
	}
}

func TestBusy(t *testing.T) {
	c := NewChannel(50)
	c.Issue(0, 1)
	if !c.Busy(0) || !c.Busy(49) {
		t.Fatal("channel should be busy during service")
	}
	if c.Busy(50) {
		t.Fatal("channel should be free at completion cycle")
	}
}

func TestIssueEach(t *testing.T) {
	c := NewChannel(10)
	got := c.IssueEach(0, 3)
	want := []uint64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IssueEach = %v, want %v", got, want)
		}
	}
	// Second batch queues behind the first.
	got = c.IssueEach(5, 2)
	if got[0] != 40 || got[1] != 50 {
		t.Fatalf("queued IssueEach = %v, want [40 50]", got)
	}
	if c.IssueEach(0, 0) != nil {
		t.Fatal("IssueEach(0) should be nil")
	}
}

func TestStatsAndReset(t *testing.T) {
	c := NewChannel(50)
	c.Issue(0, 2)
	c.IssueEach(0, 3)
	ops, busy := c.Stats()
	if ops != 5 || busy != 250 {
		t.Fatalf("stats = %d,%d; want 5,250", ops, busy)
	}
	c.Reset()
	ops, busy = c.Stats()
	if ops != 0 || busy != 0 || c.FreeAt() != 0 {
		t.Fatal("Reset left state")
	}
}

func TestZeroLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChannel(0) did not panic")
		}
	}()
	NewChannel(0)
}
