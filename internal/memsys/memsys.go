// Package memsys models the memory-system cost of prefetching for the
// paper's Table 3 experiment.
//
// The paper's model (§3.2, "Comparing DP with RP in greater detail"): the
// prefetch-related memory operations — RP's LRU-stack pointer manipulations
// and every prefetch fetch of a page table entry — are "treated as cache
// misses and need to be serviced from main memory with a cost of 50 cycles",
// and "the prefetch memory traffic does not contend with the normal data
// trafficc, but only with other prefetch traffic". We therefore model a
// single prefetch channel that serializes these operations: an operation
// issued at time t starts at max(t, channel-free time) and completes
// opLatency cycles later.
package memsys

// Channel serializes prefetch-related memory operations.
//
// Each operation has a latency (cycles from start to data arrival — the
// paper's 50-cycle main-memory cost) and an occupancy (cycles the channel
// is blocked before the next operation may start). A fully serialized
// memory (occupancy == latency) models one outstanding request; a smaller
// occupancy models a pipelined memory system with multiple requests in
// flight, which is what a 2002-era out-of-order core's memory interface
// provides. NewChannel uses full serialization; NewPipelinedChannel
// separates the two.
type Channel struct {
	opLatency   uint64
	opOccupancy uint64
	freeAt      uint64 // cycle at which the channel can start the next op

	ops       uint64 // total operations issued
	busyCycle uint64 // total cycles the channel was occupied
}

// NewChannel builds a fully serialized channel (occupancy = latency; the
// paper's 50-cycle cost).
func NewChannel(opLatency uint64) *Channel {
	return NewPipelinedChannel(opLatency, opLatency)
}

// NewPipelinedChannel builds a channel whose operations complete latency
// cycles after they start but block the channel only occupancy cycles.
func NewPipelinedChannel(opLatency, opOccupancy uint64) *Channel {
	if opLatency == 0 || opOccupancy == 0 {
		panic("memsys: operation latency/occupancy must be positive")
	}
	if opOccupancy > opLatency {
		panic("memsys: occupancy cannot exceed latency")
	}
	return &Channel{opLatency: opLatency, opOccupancy: opOccupancy}
}

// OpLatency returns the per-operation completion cost in cycles.
func (c *Channel) OpLatency() uint64 { return c.opLatency }

// OpOccupancy returns the per-operation channel-blocking time in cycles.
func (c *Channel) OpOccupancy() uint64 { return c.opOccupancy }

// Busy reports whether the channel is still servicing earlier operations at
// cycle now. RP's implementation uses this for its skip rule: "if there is a
// TLB miss soon after the previous one ... and the prefetching initiated
// earlier is not complete, we only wait for the LRU stack to get updated and
// do not prefetch those items at that time."
func (c *Channel) Busy(now uint64) bool { return c.freeAt > now }

// Issue enqueues n sequential operations at cycle now and returns the cycle
// at which the last one completes. n == 0 returns now unchanged.
func (c *Channel) Issue(now uint64, n int) (completeAt uint64) {
	if n <= 0 {
		return now
	}
	start := now
	if c.freeAt > start {
		start = c.freeAt
	}
	c.freeAt = start + uint64(n)*c.opOccupancy
	c.ops += uint64(n)
	c.busyCycle += uint64(n) * c.opOccupancy
	return start + uint64(n-1)*c.opOccupancy + c.opLatency
}

// IssueEach enqueues n sequential operations and returns the completion
// cycle of each, in order. Used when each operation delivers a separately
// usable result (prefetch fetches landing in the buffer one by one).
func (c *Channel) IssueEach(now uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, n)
	start := now
	if c.freeAt > start {
		start = c.freeAt
	}
	for i := 0; i < n; i++ {
		out[i] = start + c.opLatency
		start += c.opOccupancy
	}
	c.freeAt = start
	c.ops += uint64(n)
	c.busyCycle += uint64(n) * c.opOccupancy
	return out
}

// Stats returns the operation count and total occupied cycles.
func (c *Channel) Stats() (ops, busyCycles uint64) { return c.ops, c.busyCycle }

// FreeAt returns the cycle the channel next becomes idle.
func (c *Channel) FreeAt() uint64 { return c.freeAt }

// Reset clears the channel.
func (c *Channel) Reset() {
	c.freeAt = 0
	c.ops = 0
	c.busyCycle = 0
}
