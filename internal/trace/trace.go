// Package trace defines the memory-reference record that drives the
// simulator, plus readers and writers for binary and text trace files.
//
// The paper drove its simulations from SimpleScalar (sim-cache) and Shade;
// both deliver a stream of (instruction address, data address) pairs to the
// memory hierarchy. Our record carries exactly the fields the prefetching
// mechanisms can legally observe: the program counter (ASP indexes its table
// by PC) and the data virtual address (everything else). Synthetic workloads
// and recorded trace files are interchangeable behind the Reader interface.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Ref is a single data memory reference.
type Ref struct {
	PC    uint64 // address of the referencing instruction
	VAddr uint64 // virtual data address referenced
}

// Reader yields a stream of references. Read returns io.EOF at the end of
// the stream.
type Reader interface {
	Read() (Ref, error)
}

// Writer consumes a stream of references.
type Writer interface {
	Write(Ref) error
}

// SliceReader adapts an in-memory slice to Reader.
type SliceReader struct {
	refs []Ref
	pos  int
}

// NewSliceReader wraps refs (not copied).
func NewSliceReader(refs []Ref) *SliceReader { return &SliceReader{refs: refs} }

// Read implements Reader.
func (r *SliceReader) Read() (Ref, error) {
	if r.pos >= len(r.refs) {
		return Ref{}, io.EOF
	}
	ref := r.refs[r.pos]
	r.pos++
	return ref, nil
}

// Reset rewinds to the start of the slice.
func (r *SliceReader) Reset() { r.pos = 0 }

// SliceWriter accumulates references in memory.
type SliceWriter struct {
	Refs []Ref
}

// Write implements Writer.
func (w *SliceWriter) Write(ref Ref) error {
	w.Refs = append(w.Refs, ref)
	return nil
}

// FuncReader adapts a pull function to Reader.
type FuncReader func() (Ref, error)

// Read implements Reader.
func (f FuncReader) Read() (Ref, error) { return f() }

// --- Binary format v1 -----------------------------------------------------
//
// Header: magic "TLBT" (4 bytes), version byte (1), 3 reserved zero bytes,
// then little-endian uint64 record count. Records: PC and VAddr as
// little-endian uint64 (16 bytes each record). Version 2 of the format
// (block-structured, delta-encoded) lives in block.go.

const (
	binMagic   = "TLBT"
	binVersion = 1
)

// ErrBadFormat reports a malformed binary trace.
var ErrBadFormat = errors.New("trace: malformed binary trace")

// BinaryWriter writes the v1 binary trace format.
//
// The header's record count is written as 0 up front, which by contract
// means "read until EOF". That is the pipe mode: a BinaryWriter draining
// into a non-seekable sink (a pipe, a socket, a compressor) simply ends the
// stream at EOF, and BinaryReader accepts that as a clean end as long as
// the final record is complete. When the destination is seekable — a plain
// file — call FinishCount after the last record instead of Flush: it
// patches the true count into the header, so readers detect truncated
// files instead of silently accepting them.
type BinaryWriter struct {
	w     *bufio.Writer
	count uint64
}

// NewBinaryWriter emits a header with record count 0 (meaning "read until
// EOF" — the pipe mode described on BinaryWriter) and returns a streaming
// writer.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.w.WriteString(binMagic); err != nil {
		return nil, err
	}
	header := [12]byte{binVersion}
	if _, err := bw.w.Write(header[:]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Write implements Writer.
func (b *BinaryWriter) Write(ref Ref) error {
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[0:8], ref.PC)
	binary.LittleEndian.PutUint64(rec[8:16], ref.VAddr)
	if _, err := b.w.Write(rec[:]); err != nil {
		return err
	}
	b.count++
	return nil
}

// Count returns the number of records written so far.
func (b *BinaryWriter) Count() uint64 { return b.count }

// Flush flushes buffered records to the underlying writer.
func (b *BinaryWriter) Flush() error { return b.w.Flush() }

// FinishCount flushes buffered records and then patches the header's
// record count in place through at, which must address the start of the
// trace (the header at offset 0) — an *os.File opened for writing
// qualifies. Use it when the output is seekable; for pipes, stick with
// Flush and the EOF-terminated contract documented on BinaryWriter.
func (b *BinaryWriter) FinishCount(at io.WriterAt) error {
	if err := b.Flush(); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], b.count)
	_, err := at.WriteAt(cnt[:], countOffset)
	return err
}

// BinaryReader reads the binary trace format.
type BinaryReader struct {
	r         *bufio.Reader
	remaining uint64
	counted   bool   // header carried a nonzero count
	scratch   []byte // bulk-read buffer for ReadBatch
	pending   error  // error held back until buffered records drain
}

// NewBinaryReader validates the header and returns a streaming reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
	var header [16]byte
	if _, err := io.ReadFull(br.r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(header[0:4]) != binMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, header[0:4])
	}
	if header[4] != binVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[4])
	}
	count := binary.LittleEndian.Uint64(header[8:16])
	br.remaining = count
	br.counted = count != 0
	return br, nil
}

// Read implements Reader.
func (b *BinaryReader) Read() (Ref, error) {
	if b.counted {
		if b.remaining == 0 {
			return Ref{}, io.EOF
		}
		b.remaining--
	}
	var rec [16]byte
	if _, err := io.ReadFull(b.r, rec[:]); err != nil {
		if err == io.EOF && !b.counted {
			return Ref{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF || (err == io.EOF && b.counted) {
			return Ref{}, fmt.Errorf("%w: truncated record", ErrBadFormat)
		}
		return Ref{}, err
	}
	return Ref{
		PC:    binary.LittleEndian.Uint64(rec[0:8]),
		VAddr: binary.LittleEndian.Uint64(rec[8:16]),
	}, nil
}

// ReadBatch implements BatchReader natively: one bulk read decodes up to
// len(dst) records without a per-record interface call. The record stream
// and the error semantics are identical to repeated Reads.
func (b *BinaryReader) ReadBatch(dst []Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if b.pending != nil {
		err := b.pending
		if err == io.EOF {
			b.pending = nil
		}
		return 0, err
	}
	want := len(dst)
	if b.counted {
		if b.remaining == 0 {
			return 0, io.EOF
		}
		if uint64(want) > b.remaining {
			want = int(b.remaining)
		}
	}
	if cap(b.scratch) < want*16 {
		b.scratch = make([]byte, want*16)
	}
	nb, err := io.ReadFull(b.r, b.scratch[:want*16])
	full := nb / 16
	for i := 0; i < full; i++ {
		rec := b.scratch[i*16 : i*16+16]
		dst[i] = Ref{
			PC:    binary.LittleEndian.Uint64(rec[0:8]),
			VAddr: binary.LittleEndian.Uint64(rec[8:16]),
		}
	}
	if b.counted {
		b.remaining -= uint64(full)
	}
	switch err {
	case nil:
		return full, nil
	case io.EOF, io.ErrUnexpectedEOF:
		trunc := fmt.Errorf("%w: truncated record", ErrBadFormat)
		if nb%16 != 0 || b.counted {
			// A partial record, or fewer records than the counted header
			// promised.
			if full > 0 {
				b.pending = trunc
				return full, nil
			}
			return 0, trunc
		}
		// Uncounted stream ending at a record boundary: clean EOF.
		if full > 0 {
			b.pending = io.EOF
			return full, nil
		}
		return 0, io.EOF
	default:
		if full > 0 {
			b.pending = err
			return full, nil
		}
		return 0, err
	}
}

// --- Text format ----------------------------------------------------------
//
// One reference per line: "<pc-hex> <vaddr-hex>", e.g. "0x401000 0x7f001234".
// Lines starting with '#' and blank lines are ignored. Addresses may omit
// the 0x prefix.

// TextWriter writes the human-readable trace format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter returns a streaming text writer.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write implements Writer.
func (t *TextWriter) Write(ref Ref) error {
	_, err := fmt.Fprintf(t.w, "0x%x 0x%x\n", ref.PC, ref.VAddr)
	return err
}

// Flush flushes buffered output.
func (t *TextWriter) Flush() error { return t.w.Flush() }

// TextReader reads the text trace format.
type TextReader struct {
	sc   *bufio.Scanner
	line int
}

// NewTextReader returns a streaming text reader.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &TextReader{sc: sc}
}

// Read implements Reader.
func (t *TextReader) Read() (Ref, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return Ref{}, fmt.Errorf("trace: line %d: want 2 fields, got %d", t.line, len(fields))
		}
		pc, err := parseHex(fields[0])
		if err != nil {
			return Ref{}, fmt.Errorf("trace: line %d: pc: %v", t.line, err)
		}
		va, err := parseHex(fields[1])
		if err != nil {
			return Ref{}, fmt.Errorf("trace: line %d: vaddr: %v", t.line, err)
		}
		return Ref{PC: pc, VAddr: va}, nil
	}
	if err := t.sc.Err(); err != nil {
		return Ref{}, err
	}
	return Ref{}, io.EOF
}

func parseHex(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if s == "" {
		return 0, errors.New("empty number")
	}
	var v uint64
	for _, c := range s {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad hex digit %q", c)
		}
		if v > (^uint64(0))>>4 {
			return 0, errors.New("overflow")
		}
		v = v<<4 | d
	}
	return v, nil
}

// Copy pumps src into dst until EOF, returning the number of records copied.
func Copy(dst Writer, src Reader) (uint64, error) {
	var n uint64
	for {
		ref, err := src.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Write(ref); err != nil {
			return n, err
		}
		n++
	}
}
