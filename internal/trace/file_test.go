package trace

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeBinaryTrace(t *testing.T, path string, refs []Ref) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewBinaryWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDigestFileStableAndContentSensitive(t *testing.T) {
	dir := t.TempDir()
	refs := []Ref{{PC: 0x400000, VAddr: 0x1000}, {PC: 0x400004, VAddr: 0x2000}}
	a := filepath.Join(dir, "a.trc")
	b := filepath.Join(dir, "b.trc")
	writeBinaryTrace(t, a, refs)
	writeBinaryTrace(t, b, refs)

	da, err := DigestFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := DigestFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("same content at different paths digested differently: %s vs %s", da, db)
	}
	if da2, _ := DigestFile(a); da2 != da {
		t.Error("re-digesting the same file changed the digest")
	}

	writeBinaryTrace(t, b, []Ref{{PC: 0x400000, VAddr: 0x9000}})
	if db2, _ := DigestFile(b); db2 == da {
		t.Error("different content digested identically")
	}

	if _, err := DigestFile(filepath.Join(dir, "missing.trc")); err == nil {
		t.Error("digesting a missing file did not error")
	}
}

func TestOpenFileAutoDetectsFormat(t *testing.T) {
	dir := t.TempDir()
	refs := []Ref{{PC: 0x400000, VAddr: 0x1000}, {PC: 0x400004, VAddr: 0x2abc}}

	binPath := filepath.Join(dir, "bin.trc")
	writeBinaryTrace(t, binPath, refs)

	textPath := filepath.Join(dir, "text.txt")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewTextWriter(tf)
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	for _, path := range []string{binPath, textPath} {
		r, closer, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var got []Ref
		for {
			ref, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			got = append(got, ref)
		}
		closer.Close()
		if len(got) != len(refs) {
			t.Fatalf("%s: read %d refs, want %d", path, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Errorf("%s: ref %d = %+v, want %+v", path, i, got[i], refs[i])
			}
		}
	}
}
