package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzBinaryReader feeds arbitrary bytes to the binary trace reader: it
// must either reject the input or terminate cleanly, never panic or loop.
func FuzzBinaryReader(f *testing.F) {
	// Seed: a valid 2-record trace, a truncated one, garbage.
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.Write(Ref{PC: 1, VAddr: 4096})
	bw.Write(Ref{PC: 2, VAddr: 8192})
	bw.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-3])
	f.Add([]byte("TLBT garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			if _, err := br.Read(); err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("nil error without record")
				}
				return
			}
		}
	})
}

// FuzzTextReader feeds arbitrary text to the text trace reader.
func FuzzTextReader(f *testing.F) {
	f.Add("0x10 0x20\n")
	f.Add("# comment\n\nff 1000\n")
	f.Add("not hex at all\n")
	f.Add("0x10")
	f.Add("ffffffffffffffffffff 0\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr := NewTextReader(bytes.NewReader([]byte(data)))
		for i := 0; i < 1<<16; i++ {
			if _, err := tr.Read(); err != nil {
				return
			}
		}
	})
}

// FuzzRoundTrip: any (pc, vaddr) pairs survive a binary write/read cycle.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(1))

	f.Fuzz(func(t *testing.T, pc, va uint64) {
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(Ref{PC: pc, VAddr: va}); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br, err := NewBinaryReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := br.Read()
		if err != nil || got.PC != pc || got.VAddr != va {
			t.Fatalf("round trip: %+v, %v", got, err)
		}
	})
}
