package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzBinaryReader feeds arbitrary bytes to the binary trace reader: it
// must either reject the input or terminate cleanly, never panic or loop.
func FuzzBinaryReader(f *testing.F) {
	// Seed: a valid 2-record trace, a truncated one, garbage.
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.Write(Ref{PC: 1, VAddr: 4096})
	bw.Write(Ref{PC: 2, VAddr: 8192})
	bw.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-3])
	f.Add([]byte("TLBT garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			if _, err := br.Read(); err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("nil error without record")
				}
				return
			}
		}
	})
}

// FuzzTextReader feeds arbitrary text to the text trace reader.
func FuzzTextReader(f *testing.F) {
	f.Add("0x10 0x20\n")
	f.Add("# comment\n\nff 1000\n")
	f.Add("not hex at all\n")
	f.Add("0x10")
	f.Add("ffffffffffffffffffff 0\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr := NewTextReader(bytes.NewReader([]byte(data)))
		for i := 0; i < 1<<16; i++ {
			if _, err := tr.Read(); err != nil {
				return
			}
		}
	})
}

// FuzzBlockReader feeds arbitrary bytes to the v2 block decoder: it must
// either reject the input with ErrBadFormat (truncated blocks, corrupt
// varints, bad block headers) or terminate cleanly — never panic, loop, or
// read past the payload a block header declared.
func FuzzBlockReader(f *testing.F) {
	// Seeds: a valid 3-record trace, a truncated payload, a corrupt block
	// header, an overlong varint, garbage, the bare header.
	var buf bytes.Buffer
	bw, _ := NewBlockWriter(&buf)
	bw.Write(Ref{PC: 1, VAddr: 4096})
	bw.Write(Ref{PC: ^uint64(0), VAddr: 1 << 44})
	bw.Write(Ref{PC: 2, VAddr: 8192})
	bw.Flush()
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-2]...))
	hdr := append([]byte(nil), valid[:16]...)
	f.Add(hdr)
	f.Add(append(append([]byte(nil), valid[:16]...), 0xff, 0xff, 0xff, 0xff, 4, 0, 0, 0, 1, 2, 3, 4))
	f.Add(append(append([]byte(nil), valid[:16]...),
		1, 0, 0, 0, 12, 0, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0))
	f.Add([]byte("TLBT\x02 garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("open error not ErrBadFormat: %v", err)
			}
			return
		}
		var total int
		dst := make([]Ref, 300)
		for i := 0; i < 1<<16; i++ {
			n, err := br.ReadBatch(dst)
			if err != nil {
				if n != 0 {
					t.Fatalf("records returned alongside error %v", err)
				}
				if err != io.EOF && !errors.Is(err, ErrBadFormat) {
					t.Fatalf("decode error not ErrBadFormat: %v", err)
				}
				return
			}
			if n == 0 {
				t.Fatal("nil error without records")
			}
			total += n
			// The decoder must never yield more records than fit in the
			// input at ~1 byte per varint pair minimum.
			if total > len(data) {
				t.Fatalf("decoded %d records from %d input bytes", total, len(data))
			}
		}
	})
}

// FuzzBlockRoundTrip: any reference stream survives a v2 write/read cycle,
// and re-encoding the decoded stream reproduces the bytes.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(1))
	f.Add(^uint64(0), uint64(1), uint64(0), ^uint64(0))
	f.Add(uint64(1)<<63, uint64(1)<<44, uint64(3), uint64(1)<<63)

	f.Fuzz(func(t *testing.T, pc1, va1, pc2, va2 uint64) {
		refs := []Ref{{PC: pc1, VAddr: va1}, {PC: pc2, VAddr: va2}}
		var buf bytes.Buffer
		bw, err := NewBlockWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range refs {
			if err := bw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		bw.Flush()
		first := append([]byte(nil), buf.Bytes()...)
		br, err := NewBlockReader(bytes.NewReader(first))
		if err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		bw2, _ := NewBlockWriter(&buf2)
		n, err := CopyBatch(bw2, br)
		if err != nil || n != 2 {
			t.Fatalf("decode: n=%d, %v", n, err)
		}
		bw2.Flush()
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatal("re-encoding the decoded stream changed the bytes")
		}
	})
}

// FuzzRoundTrip: any (pc, vaddr) pairs survive a binary write/read cycle.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(1))

	f.Fuzz(func(t *testing.T, pc, va uint64) {
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(Ref{PC: pc, VAddr: va}); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br, err := NewBinaryReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := br.Read()
		if err != nil || got.PC != pc || got.VAddr != va {
			t.Fatalf("round trip: %+v, %v", got, err)
		}
	})
}
