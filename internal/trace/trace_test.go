package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestSliceReaderWriter(t *testing.T) {
	refs := []Ref{{1, 2}, {3, 4}, {5, 6}}
	r := NewSliceReader(refs)
	var w SliceWriter
	n, err := Copy(&w, r)
	if err != nil || n != 3 {
		t.Fatalf("Copy = %d,%v", n, err)
	}
	if len(w.Refs) != 3 || w.Refs[1] != (Ref{3, 4}) {
		t.Fatalf("copied %v", w.Refs)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatal("expected EOF")
	}
	r.Reset()
	if ref, err := r.Read(); err != nil || ref != (Ref{1, 2}) {
		t.Fatalf("after Reset: %v,%v", ref, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	refs := []Ref{{0x401000, 0x7fff0000}, {0, 0}, {^uint64(0), 1}}
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != 3 {
		t.Fatalf("Count = %d", bw.Count())
	}

	br, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		got, err := br.Read()
		if err != nil || got != want {
			t.Fatalf("record %d: %v, %v", i, got, err)
		}
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("NOPE00000000000000")); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestBinaryShortHeader(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("TL")); err == nil {
		t.Fatal("accepted short header")
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.Write(Ref{1, 2})
	bw.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop the last record
	br, err := NewBinaryReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Read(); err == nil {
		t.Fatal("accepted truncated record")
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := []Ref{{0x401000, 0x7fff0000}, {0xdead, 0xbeef}}
	var buf bytes.Buffer
	tw := NewTextWriter(&buf)
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	tw.Flush()

	tr := NewTextReader(&buf)
	for i, want := range refs {
		got, err := tr.Read()
		if err != nil || got != want {
			t.Fatalf("record %d: %v, %v", i, got, err)
		}
	}
	if _, err := tr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0x10 0x20\n   \n# another\nff 1000\n"
	tr := NewTextReader(strings.NewReader(in))
	got1, err := tr.Read()
	if err != nil || got1 != (Ref{0x10, 0x20}) {
		t.Fatalf("first = %v,%v", got1, err)
	}
	got2, err := tr.Read()
	if err != nil || got2 != (Ref{0xff, 0x1000}) {
		t.Fatalf("second = %v,%v (no-0x prefix form)", got2, err)
	}
	if _, err := tr.Read(); err != io.EOF {
		t.Fatal("expected EOF")
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"justone\n",
		"0x10 0x20 0x30\n",
		"zz 0x10\n",
		"0x10 0xzz\n",
	}
	for _, in := range cases {
		tr := NewTextReader(strings.NewReader(in))
		if _, err := tr.Read(); err == nil || err == io.EOF {
			t.Errorf("input %q: expected parse error, got %v", in, err)
		}
	}
}

func TestParseHexOverflow(t *testing.T) {
	if _, err := parseHex("1ffffffffffffffff"); err == nil {
		t.Fatal("accepted 17-hex-digit overflow")
	}
	v, err := parseHex("ffffffffffffffff")
	if err != nil || v != ^uint64(0) {
		t.Fatalf("max value: %x, %v", v, err)
	}
}

func TestFuncReader(t *testing.T) {
	n := 0
	fr := FuncReader(func() (Ref, error) {
		if n == 2 {
			return Ref{}, io.EOF
		}
		n++
		return Ref{PC: uint64(n)}, nil
	})
	var w SliceWriter
	count, err := Copy(&w, fr)
	if err != nil || count != 2 {
		t.Fatalf("Copy = %d,%v", count, err)
	}
}

// Property: binary round trip preserves arbitrary records.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(pcs, vas []uint64) bool {
		n := len(pcs)
		if len(vas) < n {
			n = len(vas)
		}
		refs := make([]Ref, n)
		for i := 0; i < n; i++ {
			refs[i] = Ref{PC: pcs[i], VAddr: vas[i]}
		}
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range refs {
			if bw.Write(r) != nil {
				return false
			}
		}
		bw.Flush()
		br, err := NewBinaryReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range refs {
			got, err := br.Read()
			if err != nil || got != want {
				return false
			}
		}
		_, err = br.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	bw, _ := NewBinaryWriter(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.Write(Ref{PC: uint64(i), VAddr: uint64(i) << 12})
	}
	bw.Flush()
}
