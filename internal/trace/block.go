package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// --- Binary format v2: block-structured delta encoding ---------------------
//
// The fixed-width v1 format spends 16 bytes per record; real reference
// streams are overwhelmingly local (small PC advances, small or repeating
// address strides), so v2 delta-encodes both fields and typically lands at
// 2–6 bytes per record. The file is a sequence of self-contained blocks so
// a reader can stream (or a tool can skip) without decoding everything:
//
//	header (16 bytes): magic "TLBT", version 2, 3 reserved zero bytes,
//	                   little-endian uint64 record count (0 = until EOF)
//	block:             uint32 LE record count (1..65536)
//	                   uint32 LE payload length in bytes
//	                   payload
//	payload:           per record, two unsigned LEB128 varints:
//	                   zigzag(PC - prevPC), zigzag(VAddr - prevVAddr),
//	                   with prevPC = prevVAddr = 0 at the block start
//
// Deltas wrap modulo 2^64, so every (PC, VAddr) stream round-trips exactly.
// Because the first record of each block is encoded against zero, blocks
// decode independently: corruption is contained, and a counted file can be
// cut at any block boundary. The encoder is a pure function of the record
// stream and the (fixed) block size, so converting the same trace twice
// yields byte-identical files and a stable digest.

const (
	blockVersion = 2
	// blockRefs is the encoder's block capacity. 64K records keep block
	// headers negligible (<0.01% of the payload) while bounding decoder
	// state to one block.
	blockRefs = 1 << 16
	// maxVarint64 is the worst-case encoded size of one varint.
	maxVarint64 = 10
	// maxBlockPayload bounds a block's payload: two worst-case varints per
	// record. The reader rejects anything larger before allocating.
	maxBlockPayload = blockRefs * 2 * maxVarint64
	// countOffset is the byte offset of the header's record count, shared
	// by v1 and v2 (the headers are laid out identically).
	countOffset = 8
)

// zigzag folds a signed delta (carried in a wrapped uint64) into an
// unsigned value with small magnitudes near zero.
func zigzag(d uint64) uint64 { return (d << 1) ^ uint64(int64(d)>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) uint64 { return (u >> 1) ^ uint64(-int64(u&1)) }

// uvarintTail finishes decoding a varint whose first two bytes (shifts 0
// and 7) are already folded into v and whose second byte had the
// continuation bit set. It returns the value and the offset past the
// varint, or a negative offset on truncation or a varint longer than 64
// bits. Split out of the decode loop so the common one/two-byte cases
// stay call-free.
func uvarintTail(p []byte, off int, v uint64) (uint64, int) {
	for shift := uint(14); shift < 64; shift += 7 {
		if off >= len(p) {
			return 0, -1
		}
		c := p[off]
		off++
		if c < 0x80 {
			if shift == 63 && c > 1 {
				return 0, -1 // overflows 64 bits
			}
			return v | uint64(c)<<shift, off
		}
		v |= uint64(c&0x7f) << shift
	}
	return 0, -1 // 10 bytes consumed, still continuing
}

// BlockWriter writes the v2 block format. Like BinaryWriter it emits a
// record count of 0 ("read until EOF") up front, which is the contract for
// pipes; writers backed by a seekable file should call FinishCount after
// the last record to patch the true count into the header. Flush (or
// FinishCount) must be called to emit the final partial block.
type BlockWriter struct {
	w       *bufio.Writer
	payload []byte
	nrefs   int
	prevPC  uint64
	prevVA  uint64
	count   uint64
}

// NewBlockWriter emits a v2 header with record count 0 and returns a
// streaming writer.
func NewBlockWriter(w io.Writer) (*BlockWriter, error) {
	bw := &BlockWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		payload: make([]byte, 0, 1<<16),
	}
	if _, err := bw.w.WriteString(binMagic); err != nil {
		return nil, err
	}
	header := [12]byte{blockVersion}
	if _, err := bw.w.Write(header[:]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Write implements Writer.
func (b *BlockWriter) Write(ref Ref) error {
	var tmp [2 * maxVarint64]byte
	n := binary.PutUvarint(tmp[:], zigzag(ref.PC-b.prevPC))
	n += binary.PutUvarint(tmp[n:], zigzag(ref.VAddr-b.prevVA))
	b.payload = append(b.payload, tmp[:n]...)
	b.prevPC, b.prevVA = ref.PC, ref.VAddr
	b.nrefs++
	b.count++
	if b.nrefs == blockRefs {
		return b.emitBlock()
	}
	return nil
}

// emitBlock writes the pending block and resets the encoder for the next
// one.
func (b *BlockWriter) emitBlock() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.nrefs))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(b.payload)))
	if _, err := b.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := b.w.Write(b.payload); err != nil {
		return err
	}
	b.payload = b.payload[:0]
	b.nrefs = 0
	b.prevPC, b.prevVA = 0, 0
	return nil
}

// Count returns the number of records written so far.
func (b *BlockWriter) Count() uint64 { return b.count }

// Flush emits the pending partial block (if any) and flushes buffered
// bytes to the underlying writer. A record written after a Flush starts a
// new block, so the byte output depends on where Flush lands in the
// stream; writers that need the canonical one-flush-at-the-end encoding
// (byte-identical conversion, stable digests) must call Flush or
// FinishCount exactly once, after the last record.
func (b *BlockWriter) Flush() error {
	if b.nrefs > 0 {
		if err := b.emitBlock(); err != nil {
			return err
		}
	}
	return b.w.Flush()
}

// FinishCount flushes like Flush and then patches the header's record
// count in place through at, which must address the start of the trace
// (the header at offset 0) — an *os.File opened for writing qualifies.
// Use it when the output is seekable; for pipes, stick with Flush and the
// EOF-terminated contract.
func (b *BlockWriter) FinishCount(at io.WriterAt) error {
	if err := b.Flush(); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], b.count)
	_, err := at.WriteAt(cnt[:], countOffset)
	return err
}

// BlockReader reads the v2 block format. It implements both Reader and
// BatchReader; ReadBatch is the fast path (no per-record interface call,
// varints decoded straight into the caller's slice).
type BlockReader struct {
	r         *bufio.Reader
	remaining uint64 // records left per the header count
	counted   bool

	payload   []byte // current block's payload (reused across blocks)
	off       int    // decode position in payload
	blockLeft int    // records left in the current block
	prevPC    uint64
	prevVA    uint64

	pending error // decode error held back until buffered records drain
	one     [1]Ref
}

// NewBlockReader validates the v2 header and returns a streaming reader.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	br := &BlockReader{r: bufio.NewReaderSize(r, 1<<16)}
	var header [16]byte
	if _, err := io.ReadFull(br.r, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(header[0:4]) != binMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, header[0:4])
	}
	if header[4] != blockVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, header[4])
	}
	count := binary.LittleEndian.Uint64(header[countOffset:])
	br.remaining = count
	br.counted = count != 0
	return br, nil
}

// loadBlock reads and validates the next block header and payload. It
// returns io.EOF at a clean end of the stream.
func (b *BlockReader) loadBlock() error {
	if b.counted && b.remaining == 0 {
		return io.EOF
	}
	var hdr [8]byte
	if _, err := io.ReadFull(b.r, hdr[:]); err != nil {
		if err == io.EOF {
			if b.counted {
				return fmt.Errorf("%w: %d records missing at EOF", ErrBadFormat, b.remaining)
			}
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: truncated block header", ErrBadFormat)
		}
		return err
	}
	nrefs := binary.LittleEndian.Uint32(hdr[0:4])
	plen := binary.LittleEndian.Uint32(hdr[4:8])
	if nrefs == 0 || nrefs > blockRefs {
		return fmt.Errorf("%w: block claims %d records (1..%d)", ErrBadFormat, nrefs, blockRefs)
	}
	if plen == 0 || plen > maxBlockPayload {
		return fmt.Errorf("%w: block claims a %d-byte payload (1..%d)", ErrBadFormat, plen, maxBlockPayload)
	}
	if b.counted {
		if uint64(nrefs) > b.remaining {
			return fmt.Errorf("%w: block of %d records exceeds the header count (%d left)", ErrBadFormat, nrefs, b.remaining)
		}
		b.remaining -= uint64(nrefs)
	}
	if cap(b.payload) < int(plen) {
		b.payload = make([]byte, plen)
	}
	b.payload = b.payload[:plen]
	if _, err := io.ReadFull(b.r, b.payload); err != nil {
		return fmt.Errorf("%w: truncated block payload", ErrBadFormat)
	}
	b.off = 0
	b.blockLeft = int(nrefs)
	b.prevPC, b.prevVA = 0, 0
	return nil
}

// ReadBatch implements BatchReader: it fills dst from as many blocks as
// needed, returning records before any error they precede (see the
// BatchReader contract).
func (b *BlockReader) ReadBatch(dst []Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if b.pending != nil {
		err := b.pending
		if err != io.EOF {
			// Decode errors are sticky: the stream is unusable past them.
			return 0, err
		}
		b.pending = nil
		return 0, err
	}
	n := 0
	for n < len(dst) {
		if b.blockLeft == 0 {
			err := b.loadBlock()
			if err == io.EOF {
				if n > 0 {
					b.pending = io.EOF
					return n, nil
				}
				return 0, io.EOF
			}
			if err != nil {
				if n > 0 {
					b.pending = err
					return n, nil
				}
				return 0, err
			}
		}
		// Hot inner loop: varints decoded inline against local copies of
		// the decode state, written back once per block chunk. One- and
		// two-byte varints (small PC advances and strides, the
		// overwhelming majority) stay branch-local; longer ones fall to
		// uvarintTail.
		p := b.payload
		off := b.off
		pc, va := b.prevPC, b.prevVA
		left := b.blockLeft
		for n < len(dst) && left > 0 {
			if off >= len(p) {
				b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
				return b.fail(n, "corrupt PC varint")
			}
			dpc := uint64(p[off])
			off++
			if dpc >= 0x80 {
				if off >= len(p) {
					b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
					return b.fail(n, "corrupt PC varint")
				}
				c := p[off]
				off++
				dpc = dpc&0x7f | uint64(c&0x7f)<<7
				if c >= 0x80 {
					v, k := uvarintTail(p, off, dpc)
					if k < 0 {
						b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
						return b.fail(n, "corrupt PC varint")
					}
					dpc, off = v, k
				}
			}
			if off >= len(p) {
				b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
				return b.fail(n, "corrupt VAddr varint")
			}
			dva := uint64(p[off])
			off++
			if dva >= 0x80 {
				if off >= len(p) {
					b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
					return b.fail(n, "corrupt VAddr varint")
				}
				c := p[off]
				off++
				dva = dva&0x7f | uint64(c&0x7f)<<7
				if c >= 0x80 {
					v, k := uvarintTail(p, off, dva)
					if k < 0 {
						b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
						return b.fail(n, "corrupt VAddr varint")
					}
					dva, off = v, k
				}
			}
			pc += unzigzag(dpc)
			va += unzigzag(dva)
			dst[n] = Ref{PC: pc, VAddr: va}
			n++
			left--
		}
		b.off, b.prevPC, b.prevVA, b.blockLeft = off, pc, va, left
		if left == 0 && off != len(p) {
			return b.fail(n, "payload longer than its records")
		}
	}
	return n, nil
}

// fail reports a decode error, delivering the records decoded before it
// first when there are any.
func (b *BlockReader) fail(n int, msg string) (int, error) {
	err := fmt.Errorf("%w: %s", ErrBadFormat, msg)
	b.blockLeft = 0
	b.off = len(b.payload)
	if n > 0 {
		b.pending = err
		return n, nil
	}
	b.pending = err // sticky for subsequent calls too
	return 0, err
}

// Read implements Reader (the compatibility path; ReadBatch is faster).
func (b *BlockReader) Read() (Ref, error) {
	n, err := b.ReadBatch(b.one[:])
	if err != nil {
		return Ref{}, err
	}
	if n != 1 {
		return Ref{}, fmt.Errorf("%w: empty batch", ErrBadFormat)
	}
	return b.one[0], nil
}
