package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// DigestFile returns the hex SHA-256 of the file's raw bytes. The digest is
// the machine-independent identity of a recorded trace: the sweep engine
// embeds it in content-addressed keys so the same trace produces the same
// cell no matter where the file lives.
func DigestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<16)); err != nil {
		return "", fmt.Errorf("trace: digesting %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// OpenFile opens a trace file, auto-detecting the format from its leading
// bytes: the binary magic "TLBT" followed by the version byte selects the
// v1 fixed-width or v2 block reader, anything else is the text format. The
// caller must Close the returned closer when done reading. The returned
// Reader always supports batched decode too (wrap with AsBatch, which is a
// no-op for the binary readers).
func OpenFile(path string) (Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(len(binMagic) + 1)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, nil, fmt.Errorf("trace: reading %s: %w", path, err)
	}
	if len(head) >= len(binMagic) && string(head[:len(binMagic)]) == binMagic {
		var (
			r    Reader
			rerr error
		)
		if len(head) > len(binMagic) && head[len(binMagic)] == blockVersion {
			r, rerr = NewBlockReader(br)
		} else {
			r, rerr = NewBinaryReader(br)
		}
		if rerr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("trace: %s: %w", path, rerr)
		}
		return r, f, nil
	}
	return NewTextReader(br), f, nil
}
