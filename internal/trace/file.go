package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// DigestFile returns the hex SHA-256 of the file's raw bytes. The digest is
// the machine-independent identity of a recorded trace: the sweep engine
// embeds it in content-addressed keys so the same trace produces the same
// cell no matter where the file lives.
func DigestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<16)); err != nil {
		return "", fmt.Errorf("trace: digesting %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// OpenFile opens a trace file, auto-detecting the format from its leading
// bytes (the binary magic "TLBT", otherwise the text format). The caller
// must Close the returned closer when done reading.
func OpenFile(path string) (Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(len(binMagic))
	if err != nil && err != io.EOF {
		f.Close()
		return nil, nil, fmt.Errorf("trace: reading %s: %w", path, err)
	}
	if string(head) == binMagic {
		r, err := NewBinaryReader(br)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		return r, f, nil
	}
	return NewTextReader(br), f, nil
}
