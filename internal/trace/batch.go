package trace

import "io"

// BatchReader yields references in caller-owned chunks, amortizing the
// per-reference interface dispatch the Reader contract pays. The contract
// is deliberately simpler than io.Reader's:
//
//   - ReadBatch fills dst with up to len(dst) references and returns how
//     many it wrote. A successful call returns n > 0 with a nil error.
//   - The end of the stream is reported as (0, io.EOF) on its own call —
//     never alongside data. Likewise a decode error surfaces on the call
//     after the last good references were delivered, so dst[:n] is always
//     fully valid when n > 0.
//   - ReadBatch with an empty dst returns (0, nil).
//
// Callers therefore loop:
//
//	for {
//		n, err := src.ReadBatch(buf)
//		if err == io.EOF {
//			break
//		}
//		if err != nil {
//			return err
//		}
//		process(buf[:n])
//	}
type BatchReader interface {
	ReadBatch(dst []Ref) (int, error)
}

// AsBatch returns r itself when it implements BatchReader natively, and
// otherwise wraps it in an adapter that batches per-reference Reads. Either
// way the resulting stream is bit-identical to draining r one Read at a
// time.
func AsBatch(r Reader) BatchReader {
	if br, ok := r.(BatchReader); ok {
		return br
	}
	return &batchAdapter{r: r}
}

// batchAdapter lifts a per-reference Reader to the BatchReader contract,
// holding back a mid-batch error until the references before it have been
// delivered.
type batchAdapter struct {
	r       Reader
	pending error
}

// ReadBatch implements BatchReader.
func (a *batchAdapter) ReadBatch(dst []Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if a.pending != nil {
		err := a.pending
		a.pending = nil
		return 0, err
	}
	n := 0
	for n < len(dst) {
		ref, err := a.r.Read()
		if err != nil {
			if n > 0 {
				a.pending = err
				return n, nil
			}
			return 0, err
		}
		dst[n] = ref
		n++
	}
	return n, nil
}

// ReadBatch implements BatchReader natively for in-memory slices.
func (r *SliceReader) ReadBatch(dst []Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if r.pos >= len(r.refs) {
		return 0, io.EOF
	}
	n := copy(dst, r.refs[r.pos:])
	r.pos += n
	return n, nil
}

// CopyBatch pumps src into dst in chunks until EOF, returning the number
// of records copied. It is the bulk counterpart of Copy for writers that
// are cheap per call; the record stream is identical.
func CopyBatch(dst Writer, src BatchReader) (uint64, error) {
	var (
		n   uint64
		buf [4096]Ref
	)
	for {
		k, err := src.ReadBatch(buf[:])
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		for i := 0; i < k; i++ {
			if err := dst.Write(buf[i]); err != nil {
				return n, err
			}
			n++
		}
	}
}
