package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// blockTestRefs builds a stream with the shapes real traces mix: strided
// PCs, small and large address deltas, backwards jumps, and full-range
// extremes that exercise the wrapping delta arithmetic.
func blockTestRefs(n int) []Ref {
	r := rand.New(rand.NewSource(42))
	refs := make([]Ref, n)
	pc, va := uint64(0x400000), uint64(0x7f0000000000)
	for i := range refs {
		switch r.Intn(10) {
		case 0:
			pc = r.Uint64()
			va = r.Uint64()
		case 1:
			va -= uint64(r.Intn(1 << 20))
		default:
			pc += uint64(4 * (1 + r.Intn(4)))
			va += uint64(r.Intn(4096))
		}
		refs[i] = Ref{PC: pc, VAddr: va}
	}
	return refs
}

func encodeBlock(t *testing.T, refs []Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBlockRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, blockRefs - 1, blockRefs, blockRefs + 1, 3 * blockRefs} {
		refs := blockTestRefs(n)
		data := encodeBlock(t, refs)
		br, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := make([]Ref, 0, n)
		buf := make([]Ref, 777) // deliberately not a divisor of the block size
		for {
			k, err := br.ReadBatch(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			got = append(got, buf[:k]...)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d refs", n, len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("n=%d: ref %d = %+v, want %+v", n, i, got[i], refs[i])
			}
		}
	}
}

func TestBlockPerRefReadMatchesBatch(t *testing.T) {
	refs := blockTestRefs(70_000) // crosses a block boundary
	data := encodeBlock(t, refs)
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		got, err := br.Read()
		if err != nil || got != want {
			t.Fatalf("ref %d: %+v, %v (want %+v)", i, got, err, want)
		}
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBlockExtremeValuesRoundTrip(t *testing.T) {
	refs := []Ref{
		{PC: 0, VAddr: 0},
		{PC: ^uint64(0), VAddr: ^uint64(0)},
		{PC: 0, VAddr: 1},
		{PC: 1 << 63, VAddr: ^uint64(0) - 1},
		{PC: ^uint64(0), VAddr: 0},
	}
	data := encodeBlock(t, refs)
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		got, err := br.Read()
		if err != nil || got != want {
			t.Fatalf("ref %d: %+v, %v", i, got, err)
		}
	}
}

// TestBlockDeterministicEncoding pins the conversion contract: encoding
// the same stream twice yields byte-identical files.
func TestBlockDeterministicEncoding(t *testing.T) {
	refs := blockTestRefs(80_000)
	a := encodeBlock(t, refs)
	b := encodeBlock(t, refs)
	if !bytes.Equal(a, b) {
		t.Fatal("same stream encoded to different bytes")
	}
	// And it compresses: the whole point of the format.
	if len(a) >= len(refs)*16 {
		t.Fatalf("v2 encoding (%d bytes) not smaller than v1 (%d bytes)", len(a), len(refs)*16)
	}
}

func TestBlockFinishCountPatchesHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v2.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewBlockWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	refs := blockTestRefs(1000)
	for _, r := range refs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.FinishCount(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(data[countOffset:]); got != 1000 {
		t.Fatalf("header count = %d, want 1000", got)
	}
	// A counted file reads back exactly, and truncating it is detected.
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	buf := make([]Ref, 256)
	for {
		k, err := br.ReadBatch(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += k
	}
	if n != 1000 {
		t.Fatalf("decoded %d refs, want 1000", n)
	}
	br2, err := NewBlockReader(bytes.NewReader(data[:len(data)-4]))
	if err != nil {
		t.Fatal(err)
	}
	var derr error
	for {
		_, derr = br2.ReadBatch(buf)
		if derr != nil {
			break
		}
	}
	if !errors.Is(derr, ErrBadFormat) {
		t.Fatalf("truncated counted file: got %v, want ErrBadFormat", derr)
	}
}

func TestBinaryFinishCountPatchesHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewBinaryWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range blockTestRefs(7) {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.FinishCount(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(data[countOffset:]); got != 7 {
		t.Fatalf("header count = %d, want 7", got)
	}
	// Counted: a chopped final record is ErrBadFormat, not silent EOF.
	br, err := NewBinaryReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var derr error
	for {
		if _, derr = br.Read(); derr != nil {
			break
		}
	}
	if !errors.Is(derr, ErrBadFormat) {
		t.Fatalf("truncated counted v1 file: got %v, want ErrBadFormat", derr)
	}
}

func TestBlockBadInputs(t *testing.T) {
	valid := encodeBlock(t, blockTestRefs(100))
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"truncated header": valid[:10],
		"truncated block header": corrupt(func(b []byte) []byte {
			return b[:20]
		}),
		"truncated payload": corrupt(func(b []byte) []byte {
			return b[:len(b)-5]
		}),
		"zero-record block": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 0)
			return b
		}),
		"oversized record count": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], blockRefs+1)
			return b
		}),
		"oversized payload length": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:24], maxBlockPayload+1)
			return b
		}),
		"payload shorter than records": corrupt(func(b []byte) []byte {
			// Claim one more record than the payload encodes.
			n := binary.LittleEndian.Uint32(b[16:20])
			binary.LittleEndian.PutUint32(b[16:20], n+1)
			return b
		}),
		"payload longer than records": corrupt(func(b []byte) []byte {
			n := binary.LittleEndian.Uint32(b[16:20])
			binary.LittleEndian.PutUint32(b[16:20], n-1)
			return b
		}),
		"overlong varint": func() []byte {
			var buf bytes.Buffer
			buf.WriteString(binMagic)
			buf.Write([]byte{blockVersion, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 1)
			binary.LittleEndian.PutUint32(hdr[4:8], 12)
			buf.Write(hdr[:])
			buf.Write(bytes.Repeat([]byte{0x80}, 11)) // never terminates
			buf.WriteByte(0)
			return buf.Bytes()
		}(),
	}
	for name, data := range cases {
		br, err := NewBlockReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Errorf("%s: open error %v, want ErrBadFormat", name, err)
			}
			continue
		}
		buf := make([]Ref, 64)
		var derr error
		for i := 0; i < 1<<16; i++ {
			if _, derr = br.ReadBatch(buf); derr != nil {
				break
			}
		}
		if !errors.Is(derr, ErrBadFormat) {
			t.Errorf("%s: got %v, want ErrBadFormat", name, derr)
		}
	}
}

func TestBlockUncountedStreamEOF(t *testing.T) {
	// Pipe mode: strip the count by re-encoding with no FinishCount (the
	// default) — a clean EOF at a block boundary ends the stream.
	refs := blockTestRefs(500)
	data := encodeBlock(t, refs)
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got int
	buf := make([]Ref, 123)
	for {
		k, err := br.ReadBatch(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got += k
	}
	if got != 500 {
		t.Fatalf("decoded %d refs, want 500", got)
	}
}

func TestAsBatchAdapterMatchesReads(t *testing.T) {
	refs := blockTestRefs(1000)
	// TextReader has no native ReadBatch: the adapter must produce the
	// identical stream.
	var buf bytes.Buffer
	tw := NewTextWriter(&buf)
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	tw.Flush()
	b := AsBatch(NewTextReader(&buf))
	if _, native := interface{}(NewTextReader(&bytes.Buffer{})).(BatchReader); native {
		t.Fatal("test premise broken: TextReader implements BatchReader natively")
	}
	got := make([]Ref, 0, 1000)
	chunk := make([]Ref, 97)
	for {
		k, err := b.ReadBatch(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk[:k]...)
	}
	if len(got) != len(refs) {
		t.Fatalf("adapter read %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestAsBatchReturnsNativeImplementations(t *testing.T) {
	sr := NewSliceReader([]Ref{{1, 2}})
	if AsBatch(sr) != BatchReader(sr) {
		t.Error("AsBatch wrapped SliceReader instead of returning it")
	}
	data := encodeBlock(t, blockTestRefs(3))
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if AsBatch(br) != BatchReader(br) {
		t.Error("AsBatch wrapped BlockReader instead of returning it")
	}
}

func TestBinaryReadBatchMatchesRead(t *testing.T) {
	refs := blockTestRefs(10_000)
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	for _, r := range refs {
		bw.Write(r)
	}
	bw.Flush()
	data := buf.Bytes()

	for _, counted := range []bool{false, true} {
		d := append([]byte(nil), data...)
		if counted {
			binary.LittleEndian.PutUint64(d[countOffset:], uint64(len(refs)))
		}
		br, err := NewBinaryReader(bytes.NewReader(d))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]Ref, 0, len(refs))
		chunk := make([]Ref, 513)
		for {
			k, err := br.ReadBatch(chunk)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("counted=%v: %v", counted, err)
			}
			got = append(got, chunk[:k]...)
		}
		if len(got) != len(refs) {
			t.Fatalf("counted=%v: read %d refs, want %d", counted, len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("counted=%v: ref %d mismatch", counted, i)
			}
		}
	}

	// A truncated tail: batch must deliver the whole records then error.
	d := data[:len(data)-7]
	br, err := NewBinaryReader(bytes.NewReader(d))
	if err != nil {
		t.Fatal(err)
	}
	var derr error
	total := 0
	chunk := make([]Ref, 4096)
	for {
		k, err := br.ReadBatch(chunk)
		total += k
		if err != nil {
			derr = err
			break
		}
	}
	if !errors.Is(derr, ErrBadFormat) {
		t.Fatalf("truncated stream: got %v, want ErrBadFormat", derr)
	}
	if want := (len(data) - 7 - 16) / 16; total != want {
		t.Fatalf("delivered %d whole records before the error, want %d", total, want)
	}
}

func TestOpenFileAutoDetectsV2(t *testing.T) {
	dir := t.TempDir()
	refs := blockTestRefs(300)
	path := filepath.Join(dir, "v2.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewBlockWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		bw.Write(r)
	}
	if err := bw.FinishCount(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, closer, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, ok := r.(*BlockReader); !ok {
		t.Fatalf("OpenFile returned %T, want *BlockReader", r)
	}
	for i, want := range refs {
		got, err := r.Read()
		if err != nil || got != want {
			t.Fatalf("ref %d: %+v, %v", i, got, err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
