// Package stats aggregates and formats experiment results: the plain and
// miss-rate-weighted averages of the paper's Table 2, the ASCII / CSV
// table rendering used by cmd/experiments and shown throughout
// docs/EXPERIMENTS.md, and the canonical serialization that
// internal/sweep's content-addressed result store is built on.
package stats

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Canonical returns the canonical byte encoding of v used for content
// addressing and for the sweep store's on-disk format: compact JSON with
// struct fields in declaration order and map keys sorted (both guaranteed
// by encoding/json). Two equal values always canonicalize to identical
// bytes, so hashes and stored files are stable across runs, worker counts
// and platforms.
func Canonical(v any) ([]byte, error) {
	return json.Marshal(v)
}

// Fingerprint returns the hex SHA-256 of Canonical(v) — the stable content
// address of a configuration or result.
func Fingerprint(v any) (string, error) {
	b, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// VerifyFingerprint recomputes Fingerprint(v) and checks it against want.
// It is the ingest-side half of the content-addressing contract: a receiver
// (the sweep store, the distributed coordinator) re-derives the fingerprint
// from the payload it actually decoded, so a value corrupted or tampered
// with in transit can never be accepted under its claimed address.
func VerifyFingerprint(v any, want string) error {
	got, err := Fingerprint(v)
	if err != nil {
		return err
	}
	if !strings.EqualFold(got, want) {
		return fmt.Errorf("stats: fingerprint mismatch: payload hashes to %.12s…, claimed %.12s…", got, want)
	}
	return nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice) — the
// paper's (Σ p_i)/n.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns Σ(w_i·x_i)/Σ(w_i) (0 when the weights sum to 0) —
// the paper's miss-rate weighting Σ(m_i·p_i)/Σ(m_i).
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: mismatched value/weight lengths")
	}
	var num, den float64
	for i := range xs {
		num += ws[i] * xs[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Table is a simple column-aligned text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 3 decimals (the paper's accuracy precision).
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// F2 formats a float with 2 decimals (the paper's Table 2/3 precision).
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Ranked returns the indices of xs sorted descending by value — used for
// "best or within 10% of the best" style summaries.
func Ranked(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}
