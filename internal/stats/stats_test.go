package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestWeightedMean(t *testing.T) {
	// The paper's formula: Σ(m_i·p_i)/Σ(m_i).
	xs := []float64{1.0, 0.0}
	ws := []float64{3.0, 1.0}
	if got := WeightedMean(xs, ws); got != 0.75 {
		t.Fatalf("WeightedMean = %v", got)
	}
	if got := WeightedMean([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("zero-weight mean = %v", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

// Property: a weighted mean lies between min and max of its inputs.
func TestQuickWeightedMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		xs := make([]float64, n)
		ws := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(raw[i]) / 65535
			ws[i] = float64(raw[n+i])/65535 + 0.001
		}
		m := WeightedMean(xs, ws)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo-1e-12 && m <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("app", "accuracy")
	tb.AddRow("gzip", "0.535")
	tb.AddRow("x", "1.0")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app ") || !strings.Contains(lines[0], "accuracy") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator: %q", lines[1])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatal("row lost")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("name", "note")
	tb.AddRow("plain", "hello")
	tb.AddRow("comma", "a,b")
	tb.AddRow("quote", `say "hi"`)
	got := tb.CSV()
	want := "name,note\nplain,hello\ncomma,\"a,b\"\nquote,\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.123456) != "0.123" {
		t.Fatalf("F = %q", F(0.123456))
	}
	if F2(0.987) != "0.99" {
		t.Fatalf("F2 = %q", F2(0.987))
	}
}

func TestRanked(t *testing.T) {
	idx := Ranked([]float64{0.1, 0.9, 0.5})
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Fatalf("Ranked = %v", idx)
	}
	// Stable for ties.
	idx = Ranked([]float64{0.5, 0.5})
	if idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("tie order = %v", idx)
	}
}

func TestCanonicalAndFingerprint(t *testing.T) {
	type key struct {
		B map[string]int
		A string
	}
	v := key{A: "x", B: map[string]int{"z": 1, "a": 2}}
	c1, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := Canonical(key{A: "x", B: map[string]int{"a": 2, "z": 1}})
	if string(c1) != string(c2) {
		t.Fatalf("canonical form depends on map insertion order: %s vs %s", c1, c2)
	}
	f1, err := Fingerprint(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(f1))
	}
	f2, _ := Fingerprint(key{A: "y", B: v.B})
	if f1 == f2 {
		t.Fatal("distinct values share a fingerprint")
	}
	if _, err := Fingerprint(func() {}); err == nil {
		t.Fatal("unmarshalable value fingerprinted without error")
	}
}

func TestVerifyFingerprint(t *testing.T) {
	type payload struct {
		A int
		B string
	}
	v := payload{A: 7, B: "cell"}
	fp, err := Fingerprint(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFingerprint(v, fp); err != nil {
		t.Fatalf("honest payload rejected: %v", err)
	}
	if err := VerifyFingerprint(v, strings.ToUpper(fp)); err != nil {
		t.Fatalf("hex case must not matter: %v", err)
	}
	tampered := v
	tampered.A++
	if err := VerifyFingerprint(tampered, fp); err == nil {
		t.Fatal("tampered payload verified")
	}
	if err := VerifyFingerprint(func() {}, fp); err == nil {
		t.Fatal("unmarshalable payload verified")
	}
}
