package tlb

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{Entries: 128},            // fully associative default
		{Entries: 128, Ways: 128}, // explicit FA
		{Entries: 64, Ways: 2},
		{Entries: 256, Ways: 4},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{Entries: 0},
		{Entries: -8, Ways: 2},
		{Entries: 100, Ways: 3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestAccessMissThenInsert(t *testing.T) {
	tl := New(Config{Entries: 4, Ways: 4})
	if tl.Access(10) {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(10)
	if !tl.Access(10) {
		t.Fatal("miss after insert")
	}
	acc, miss := tl.Stats()
	if acc != 2 || miss != 1 {
		t.Fatalf("stats = %d,%d; want 2,1", acc, miss)
	}
	if got := tl.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestLRUEvictionFullyAssociative(t *testing.T) {
	tl := New(Config{Entries: 2})
	tl.Insert(1)
	tl.Insert(2)
	tl.Access(1) // 2 becomes LRU
	ev, was := tl.Insert(3)
	if !was || ev != 2 {
		t.Fatalf("evicted %d,%v; want 2,true", ev, was)
	}
	if tl.Contains(2) {
		t.Fatal("2 still resident after eviction")
	}
	if !tl.Contains(1) || !tl.Contains(3) {
		t.Fatal("wrong residents")
	}
}

func TestSetAssocIndexing(t *testing.T) {
	// 4 entries, 2 ways -> 2 sets. Even VPNs to set 0, odd to set 1.
	tl := New(Config{Entries: 4, Ways: 2})
	tl.Insert(0)
	tl.Insert(2)
	tl.Insert(4) // evicts 0
	if tl.Contains(0) {
		t.Fatal("0 should have been evicted by set-0 pressure")
	}
	tl.Insert(1)
	tl.Insert(3)
	if !tl.Contains(1) || !tl.Contains(3) {
		t.Fatal("set 1 disturbed by set 0")
	}
	if tl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tl.Len())
	}
}

func TestInsertExistingPromotes(t *testing.T) {
	tl := New(Config{Entries: 2})
	tl.Insert(1)
	tl.Insert(2)
	if ev, was := tl.Insert(1); was || ev != 0 {
		t.Fatalf("re-insert evicted %d,%v", ev, was)
	}
	// Now 2 is LRU.
	if ev, was := tl.Insert(3); !was || ev != 2 {
		t.Fatalf("expected eviction of 2, got %d,%v", ev, was)
	}
}

func TestReset(t *testing.T) {
	tl := New(Config{Entries: 4})
	tl.Access(1)
	tl.Insert(1)
	tl.Reset()
	if tl.Len() != 0 {
		t.Fatal("nonzero Len after Reset")
	}
	if a, m := tl.Stats(); a != 0 || m != 0 {
		t.Fatal("nonzero stats after Reset")
	}
	if tl.MissRate() != 0 {
		t.Fatal("MissRate should be 0 with no accesses")
	}
}

// Property: a fully associative TLB of size n holds exactly the n most
// recently touched distinct pages (touch = hit or fill).
func TestQuickFullyAssociativeLRU(t *testing.T) {
	f := func(refs []uint8) bool {
		const n = 8
		tl := New(Config{Entries: n})
		var recency []uint64 // MRU first, distinct
		for _, r := range refs {
			vpn := uint64(r % 32)
			if !tl.Access(vpn) {
				tl.Insert(vpn)
			}
			// model update
			for i, v := range recency {
				if v == vpn {
					recency = append(recency[:i], recency[i+1:]...)
					break
				}
			}
			recency = append([]uint64{vpn}, recency...)
			if len(recency) > n {
				recency = recency[:n]
			}
		}
		if tl.Len() != len(recency) {
			return false
		}
		for _, v := range recency {
			if !tl.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: set-associative TLB — each set holds the `ways` most recently
// touched distinct pages mapping to it.
func TestQuickSetAssociativeLRU(t *testing.T) {
	f := func(refs []uint8) bool {
		const entries, ways = 8, 2
		nsets := entries / ways
		tl := New(Config{Entries: entries, Ways: ways})
		model := make([][]uint64, nsets)
		for _, r := range refs {
			vpn := uint64(r % 64)
			if !tl.Access(vpn) {
				tl.Insert(vpn)
			}
			si := int(vpn % uint64(nsets))
			m := model[si]
			for i, v := range m {
				if v == vpn {
					m = append(m[:i], m[i+1:]...)
					break
				}
			}
			m = append([]uint64{vpn}, m...)
			if len(m) > ways {
				m = m[:ways]
			}
			model[si] = m
		}
		for si := range model {
			for _, v := range model[si] {
				if !tl.Contains(v) {
					return false
				}
			}
		}
		total := 0
		for _, m := range model {
			total += len(m)
		}
		return tl.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchBufferFIFO(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(1, 0)
	b.Insert(2, 0)
	ev, was := b.Insert(3, 0)
	if !was || ev != 1 {
		t.Fatalf("FIFO eviction: got %d,%v want 1,true", ev, was)
	}
	if b.Contains(1) || !b.Contains(2) || !b.Contains(3) {
		t.Fatal("wrong contents after FIFO eviction")
	}
}

func TestPrefetchBufferTakeOut(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(7, 123)
	ready, ok := b.TakeOut(7)
	if !ok || ready != 123 {
		t.Fatalf("TakeOut = %d,%v", ready, ok)
	}
	if _, ok := b.TakeOut(7); ok {
		t.Fatal("double TakeOut succeeded")
	}
	if b.Len() != 0 {
		t.Fatal("buffer not empty after TakeOut")
	}
	ins, hits, evd := b.Stats()
	if ins != 1 || hits != 1 || evd != 0 {
		t.Fatalf("stats = %d,%d,%d", ins, hits, evd)
	}
}

func TestPrefetchBufferDuplicateInsertKeepsEarlierReady(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(5, 100)
	b.Insert(5, 50) // earlier completion wins
	ready, _ := b.TakeOut(5)
	if ready != 50 {
		t.Fatalf("ready = %d, want 50", ready)
	}
	b.Insert(6, 50)
	b.Insert(6, 200) // later completion ignored
	ready, _ = b.TakeOut(6)
	if ready != 50 {
		t.Fatalf("ready = %d, want 50", ready)
	}
}

func TestPrefetchBufferDuplicateDoesNotChangeOrder(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(1, 0)
	b.Insert(2, 0)
	b.Insert(1, 0) // duplicate; 1 stays oldest
	ev, was := b.Insert(3, 0)
	if !was || ev != 1 {
		t.Fatalf("expected 1 evicted as oldest, got %d,%v", ev, was)
	}
}

func TestPrefetchBufferEvictedUnusedCounter(t *testing.T) {
	b := NewPrefetchBuffer(1)
	b.Insert(1, 0)
	b.Insert(2, 0) // evicts 1 unused
	b.TakeOut(2)
	_, hits, evd := b.Stats()
	if hits != 1 || evd != 1 {
		t.Fatalf("hits=%d evicted=%d; want 1,1", hits, evd)
	}
}

// Property: buffer never exceeds capacity; TakeOut returns exactly what was
// inserted and not yet removed/evicted.
func TestQuickPrefetchBuffer(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewPrefetchBuffer(4)
		model := []uint64{} // FIFO of resident vpns
		contains := func(v uint64) bool {
			for _, x := range model {
				if x == v {
					return true
				}
			}
			return false
		}
		for _, op := range ops {
			vpn := uint64(op % 16)
			if op&0x80 == 0 { // insert
				if !contains(vpn) {
					if len(model) == 4 {
						model = model[1:]
					}
					model = append(model, vpn)
				}
				b.Insert(vpn, 0)
			} else { // take out
				_, ok := b.TakeOut(vpn)
				want := contains(vpn)
				if ok != want {
					return false
				}
				if want {
					for i, x := range model {
						if x == vpn {
							model = append(model[:i], model[i+1:]...)
							break
						}
					}
				}
			}
			if b.Len() != len(model) || b.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTLBAccessHit(b *testing.B) {
	tl := New(Config{Entries: 128})
	for i := 0; i < 128; i++ {
		tl.Insert(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Access(uint64(i % 128))
	}
}

func BenchmarkTLBMissInsert(b *testing.B) {
	tl := New(Config{Entries: 128})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tl.Access(uint64(i)) {
			tl.Insert(uint64(i))
		}
	}
}
