// Package tlb models the Translation Lookaside Buffer and the prefetch
// buffer from the paper's Figure 1.
//
// The TLB is a set-associative (or fully associative) cache of virtual page
// numbers with true LRU replacement per set, matching the configurations the
// paper sweeps (64/128/256 entries; 2-way, 4-way, fully associative). Only
// the tags matter for the study — the translation payload (physical frame)
// has no effect on hit/miss behaviour — so entries are just VPNs.
//
// Both structures sit on the simulator's innermost loop, so they are backed
// by the O(1) engine in internal/assoc (intrusive recency lists plus an
// open-addressing index) rather than scanned slices; behaviour is
// bit-identical to the slice layout, which the randomized model tests in
// internal/assoc pin down.
//
// The prefetch buffer is a small fully associative structure probed in
// parallel with the TLB on a miss; prefetched translations wait there and
// move into the TLB only when the program references the page, so
// prefetching can never displace useful TLB entries (paper §2: "Prefetching
// can thus not increase the miss rates of the original TLB").
package tlb

import (
	"fmt"

	"tlbprefetch/internal/assoc"
)

// Config describes a TLB geometry.
type Config struct {
	// Entries is the total number of translations the TLB holds.
	Entries int
	// Ways is the associativity; Ways == Entries (or Ways == 0, a
	// convenience default) means fully associative.
	Ways int
}

func (c Config) normalize() Config {
	if c.Ways == 0 {
		c.Ways = c.Entries
	}
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	c = c.normalize()
	if c.Entries <= 0 {
		return fmt.Errorf("tlb: Entries must be positive, got %d", c.Entries)
	}
	if c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: Entries %d not divisible by Ways %d", c.Entries, c.Ways)
	}
	return nil
}

// TLB is a set-associative translation lookaside buffer with per-set LRU.
// Construct with New.
type TLB struct {
	cfg Config
	s   *assoc.Store[struct{}]

	accesses uint64
	misses   uint64
}

// New builds a TLB. It panics on an invalid configuration (geometry is a
// programming error, not an input error, at this layer).
func New(cfg Config) *TLB {
	cfg = cfg.normalize()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{cfg: cfg, s: assoc.New[struct{}](cfg.Entries, cfg.Ways)}
}

// Config returns the (normalized) geometry.
func (t *TLB) Config() Config { return t.cfg }

// Access probes the TLB for vpn. On a hit the entry is promoted to MRU and
// Access returns true. On a miss it returns false WITHOUT inserting — the
// fill happens later via Insert, after the miss has been serviced (from the
// prefetch buffer or the page table).
func (t *TLB) Access(vpn uint64) bool {
	t.accesses++
	if t.s.Touch(vpn) {
		return true
	}
	t.misses++
	return false
}

// Contains probes without touching recency or statistics.
func (t *TLB) Contains(vpn uint64) bool {
	return t.s.Has(vpn)
}

// Insert fills vpn as the MRU entry of its set, evicting the LRU entry if
// the set is full. It reports the evicted VPN, if any. Inserting a VPN that
// is already resident only promotes it (no eviction); that situation does
// not arise in the simulator (fills follow misses) but is handled for
// robustness.
func (t *TLB) Insert(vpn uint64) (evicted uint64, wasEvicted bool) {
	if t.s.Touch(vpn) {
		return 0, false
	}
	_, evicted, wasEvicted = t.s.InsertMRU(vpn)
	return evicted, wasEvicted
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return t.s.Len() }

// Stats returns access and miss counters.
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }

// MissRate returns misses/accesses (0 when no accesses), the m_i used in the
// paper's Table 2 weighting.
func (t *TLB) MissRate() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}

// Reset empties the TLB and clears statistics.
func (t *TLB) Reset() {
	t.s.Reset()
	t.accesses, t.misses = 0, 0
}

// Resident returns all resident VPNs (set by set, MRU first within a set);
// for tests and invariant checks.
func (t *TLB) Resident() []uint64 {
	return t.s.AppendKeys(nil)
}
