package tlb

import "tlbprefetch/internal/assoc"

// PrefetchBuffer is the small fully associative buffer that receives
// prefetched translations (paper Figure 1). It is probed on every TLB miss;
// a hit removes the entry (it migrates into the TLB) and counts toward the
// mechanism's prediction accuracy.
//
// Replacement is FIFO over prefetch insertions: a newly prefetched entry
// evicts the oldest still-unused prefetch. This is the behaviour behind the
// paper's observation that "a more aggressive scheme can end up evicting
// entries before they are used".
//
// Each entry carries a ReadyAt cycle for the timing model (the cycle the
// prefetch completes and the translation is actually usable). The
// functional simulator passes 0.
//
// The buffer runs the internal/assoc engine as a single fully associative
// set in FIFO discipline — insert at the recency head, never promote, evict
// from the tail — so insert, probe and take-out are O(1) with no map and no
// per-operation allocation.
//
// Entries are stamped with a statistics epoch so the simulator's
// ResetStats (the warmup fast-forward) can count unused prefetches over
// the measurement window only: BeginEpoch starts a new window, and
// UnusedInEpoch reports prefetches inserted in the current window that
// were evicted unused or are still sitting unused.
type PrefetchBuffer struct {
	s     *assoc.Store[bufEntry]
	epoch uint32

	inserted     uint64
	hits         uint64
	evicted      uint64 // evicted before ever being used (lifetime)
	evictedEpoch uint64 // as evicted, but current-epoch insertions only
}

type bufEntry struct {
	readyAt uint64
	epoch   uint32
}

// NewPrefetchBuffer builds a buffer with capacity b > 0.
func NewPrefetchBuffer(b int) *PrefetchBuffer {
	if b <= 0 {
		panic("tlb: prefetch buffer capacity must be positive")
	}
	return &PrefetchBuffer{s: assoc.New[bufEntry](b, b)}
}

// Cap returns the configured capacity b.
func (p *PrefetchBuffer) Cap() int { return p.s.Entries() }

// Len returns the number of buffered prefetches.
func (p *PrefetchBuffer) Len() int { return p.s.Len() }

// Contains probes for vpn without removing it.
func (p *PrefetchBuffer) Contains(vpn uint64) bool {
	return p.s.Has(vpn)
}

// Insert adds a prefetched translation with the given completion cycle,
// evicting the oldest entry if full. Inserting a VPN already present only
// refreshes its ReadyAt to the earlier of the two times (the translation is
// available as soon as the first prefetch lands); it does not change FIFO
// order. It reports the evicted VPN, if any.
func (p *PrefetchBuffer) Insert(vpn uint64, readyAt uint64) (evictedVPN uint64, wasEvicted bool) {
	if sl, ok := p.s.Find(vpn); ok {
		if old := p.s.Val(sl); readyAt < old.readyAt {
			old.readyAt = readyAt
		}
		return 0, false
	}
	sl, evictedVPN, wasEvicted := p.s.InsertMRU(vpn)
	if wasEvicted {
		p.evicted++
		// The recycled slot still holds the evicted entry's value here
		// (InsertMRU leaves values in place), so this reads the epoch the
		// evicted prefetch was inserted in.
		if p.s.Val(sl).epoch == p.epoch {
			p.evictedEpoch++
		}
	}
	*p.s.Val(sl) = bufEntry{readyAt: readyAt, epoch: p.epoch}
	p.inserted++
	return evictedVPN, wasEvicted
}

// TakeOut removes vpn if present and returns its ReadyAt cycle. This is the
// buffer-hit path: the entry migrates to the TLB.
func (p *PrefetchBuffer) TakeOut(vpn uint64) (readyAt uint64, ok bool) {
	sl, ok := p.s.Find(vpn)
	if !ok {
		return 0, false
	}
	readyAt = p.s.Val(sl).readyAt
	p.s.Remove(sl)
	p.hits++
	return readyAt, true
}

// Stats returns insertion, hit and unused-eviction counters (lifetime).
func (p *PrefetchBuffer) Stats() (inserted, hits, evictedUnused uint64) {
	return p.inserted, p.hits, p.evicted
}

// BeginEpoch starts a new statistics window: prefetches inserted before
// this call no longer count toward UnusedInEpoch.
func (p *PrefetchBuffer) BeginEpoch() {
	p.epoch++
	p.evictedEpoch = 0
}

// UnusedInEpoch counts the current window's never-used prefetches: those
// evicted unused plus those still resident (every resident entry is unused
// by definition — a use removes it). The resident scan is O(capacity) and
// meant for statistics snapshots, not the per-reference path.
func (p *PrefetchBuffer) UnusedInEpoch() uint64 {
	n := p.evictedEpoch
	for sl := p.s.Head(0); sl >= 0; sl = p.s.Next(sl) {
		if p.s.Val(sl).epoch == p.epoch {
			n++
		}
	}
	return n
}

// Flush empties the buffer the way a context switch does: every resident
// entry is a prefetch that never served a miss, so each counts as evicted
// unused (lifetime and current-epoch) before the storage clears. Counters
// and the statistics epoch survive — use Reset to also forget statistics.
func (p *PrefetchBuffer) Flush() {
	for sl := p.s.Head(0); sl >= 0; sl = p.s.Next(sl) {
		p.evicted++
		if p.s.Val(sl).epoch == p.epoch {
			p.evictedEpoch++
		}
	}
	p.s.Reset()
}

// Reset empties the buffer and clears statistics.
func (p *PrefetchBuffer) Reset() {
	p.s.Reset()
	p.epoch = 0
	p.inserted, p.hits, p.evicted, p.evictedEpoch = 0, 0, 0, 0
}
