package tlb

// PrefetchBuffer is the small fully associative buffer that receives
// prefetched translations (paper Figure 1). It is probed on every TLB miss;
// a hit removes the entry (it migrates into the TLB) and counts toward the
// mechanism's prediction accuracy.
//
// Replacement is FIFO over prefetch insertions: a newly prefetched entry
// evicts the oldest still-unused prefetch. This is the behaviour behind the
// paper's observation that "a more aggressive scheme can end up evicting
// entries before they are used".
//
// Each entry carries a ReadyAt cycle for the timing model (the cycle the
// prefetch completes and the translation is actually usable). The
// functional simulator passes 0.
type PrefetchBuffer struct {
	cap   int
	order []uint64          // FIFO order, oldest first
	ready map[uint64]uint64 // vpn -> ReadyAt cycle

	inserted uint64
	hits     uint64
	evicted  uint64 // evicted before ever being used
}

// NewPrefetchBuffer builds a buffer with capacity b > 0.
func NewPrefetchBuffer(b int) *PrefetchBuffer {
	if b <= 0 {
		panic("tlb: prefetch buffer capacity must be positive")
	}
	return &PrefetchBuffer{
		cap:   b,
		order: make([]uint64, 0, b),
		ready: make(map[uint64]uint64, b),
	}
}

// Cap returns the configured capacity b.
func (p *PrefetchBuffer) Cap() int { return p.cap }

// Len returns the number of buffered prefetches.
func (p *PrefetchBuffer) Len() int { return len(p.order) }

// Contains probes for vpn without removing it.
func (p *PrefetchBuffer) Contains(vpn uint64) bool {
	_, ok := p.ready[vpn]
	return ok
}

// Insert adds a prefetched translation with the given completion cycle,
// evicting the oldest entry if full. Inserting a VPN already present only
// refreshes its ReadyAt to the earlier of the two times (the translation is
// available as soon as the first prefetch lands); it does not change FIFO
// order. It reports the evicted VPN, if any.
func (p *PrefetchBuffer) Insert(vpn uint64, readyAt uint64) (evictedVPN uint64, wasEvicted bool) {
	if old, ok := p.ready[vpn]; ok {
		if readyAt < old {
			p.ready[vpn] = readyAt
		}
		return 0, false
	}
	if len(p.order) == p.cap {
		evictedVPN = p.order[0]
		copy(p.order, p.order[1:])
		p.order = p.order[:len(p.order)-1]
		delete(p.ready, evictedVPN)
		wasEvicted = true
		p.evicted++
	}
	p.order = append(p.order, vpn)
	p.ready[vpn] = readyAt
	p.inserted++
	return evictedVPN, wasEvicted
}

// TakeOut removes vpn if present and returns its ReadyAt cycle. This is the
// buffer-hit path: the entry migrates to the TLB.
func (p *PrefetchBuffer) TakeOut(vpn uint64) (readyAt uint64, ok bool) {
	readyAt, ok = p.ready[vpn]
	if !ok {
		return 0, false
	}
	delete(p.ready, vpn)
	for i, v := range p.order {
		if v == vpn {
			copy(p.order[i:], p.order[i+1:])
			p.order = p.order[:len(p.order)-1]
			break
		}
	}
	p.hits++
	return readyAt, true
}

// Stats returns insertion, hit and unused-eviction counters.
func (p *PrefetchBuffer) Stats() (inserted, hits, evictedUnused uint64) {
	return p.inserted, p.hits, p.evicted
}

// Reset empties the buffer and clears statistics.
func (p *PrefetchBuffer) Reset() {
	p.order = p.order[:0]
	clear(p.ready)
	p.inserted, p.hits, p.evicted = 0, 0, 0
}
