// Package assoc is the shared storage engine behind the simulator's
// metadata structures: the TLB, the prefetch buffer and the prediction
// tables. It provides a fixed-capacity, set-associative key/value store
// whose per-set recency order is kept in array-backed intrusive
// doubly-linked lists and whose key lookup goes through a compact
// open-addressing index, so the per-reference operations — probe, promote,
// insert, evict, delete — are all O(1) instead of the O(ways)
// scan-and-memmove of a slice-per-set layout.
//
// The engine is policy-free: callers decide when to promote, which makes
// the same structure serve true-LRU (TLB, prediction tables: promote on
// every touch) and FIFO (prefetch buffer: never promote) disciplines.
//
// Layout. Slots live in one flat arena of `entries` elements; slot i
// carries keys[i], vals[i] and its list linkage in links[i] (next/prev
// slot indices, -1 terminated, plus the slot's set so promotion never
// divides — one cache line holds a slot's entire linkage). Each set owns a
// head/tail pair (MRU/LRU ends) and a freelist of unused slots threaded
// through the next links. The set of a key is key mod nsets —
// hardware-style low-bit indexing, a mask when nsets is a power of two.
//
// Index. A linear-probing hash table of power-of-two capacity at most 50%
// load, mapping key -> slot via Fibonacci hashing; key and slot sit in one
// 16-byte entry so a probe costs one cache line. Deletion uses
// backward-shift compaction, so there are no tombstones and probe chains
// stay short no matter how many evict/insert cycles the simulation runs.
package assoc

import (
	"fmt"
	"math/bits"
)

const fibMul = 0x9E3779B97F4A7C15 // 2^64 / golden ratio

// link is a slot's intrusive list state: neighbours in its set's recency
// list and the set it belongs to.
type link struct {
	next, prev int32
	set        int32
}

// idxEnt is one open-addressing index cell. slot < 0 means empty.
type idxEnt struct {
	key  uint64
	slot int32
	_    int32
}

// Store is the set-associative arena. The zero value is not usable;
// construct with New.
type Store[V any] struct {
	ways  int
	nsets uint64
	mask  uint64 // nsets-1 when nsets is a power of two
	pow2  bool

	keys  []uint64
	vals  []V
	links []link

	head []int32 // per-set MRU slot, -1 when empty
	tail []int32 // per-set LRU slot, -1 when empty
	free []int32 // per-set freelist head (linked via next), -1 when full
	size int

	idx      []idxEnt
	idxMask  uint64
	idxShift uint
}

// New builds a store with `entries` total slots and `ways` slots per set.
// entries must be a positive multiple of ways.
func New[V any](entries, ways int) *Store[V] {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("assoc: invalid geometry entries=%d ways=%d", entries, ways))
	}
	nsets := entries / ways
	idxCap := 8
	for idxCap < 2*entries {
		idxCap <<= 1
	}
	s := &Store[V]{
		ways:     ways,
		nsets:    uint64(nsets),
		mask:     uint64(nsets - 1),
		pow2:     nsets&(nsets-1) == 0,
		keys:     make([]uint64, entries),
		vals:     make([]V, entries),
		links:    make([]link, entries),
		head:     make([]int32, nsets),
		tail:     make([]int32, nsets),
		free:     make([]int32, nsets),
		idx:      make([]idxEnt, idxCap),
		idxMask:  uint64(idxCap - 1),
		idxShift: uint(64 - bits.Len(uint(idxCap-1))),
	}
	s.Reset()
	return s
}

// Entries returns the total slot capacity.
func (s *Store[V]) Entries() int { return len(s.keys) }

// Ways returns the associativity.
func (s *Store[V]) Ways() int { return s.ways }

// Sets returns the number of sets.
func (s *Store[V]) Sets() int { return int(s.nsets) }

// Len returns the number of occupied slots.
func (s *Store[V]) Len() int { return s.size }

// SetOf returns the set a key maps to: key mod nsets.
func (s *Store[V]) SetOf(key uint64) int32 {
	if s.pow2 {
		return int32(key & s.mask)
	}
	return int32(key % s.nsets)
}

// Key returns the key stored in an occupied slot.
func (s *Store[V]) Key(slot int32) uint64 { return s.keys[slot] }

// Val returns a pointer to a slot's value. The pointer stays valid until
// the slot is recycled by an eviction or removal.
func (s *Store[V]) Val(slot int32) *V { return &s.vals[slot] }

// Head returns the MRU slot of a set (-1 when the set is empty).
func (s *Store[V]) Head(set int32) int32 { return s.head[set] }

// Next returns the next-older slot in a set's recency list (-1 at LRU end).
func (s *Store[V]) Next(slot int32) int32 { return s.links[slot].next }

// Find returns the slot holding key, or -1, false.
func (s *Store[V]) Find(key uint64) (int32, bool) {
	idx := s.idx
	mask := uint64(len(idx) - 1)
	for i := (key * fibMul) >> s.idxShift; ; i = (i + 1) & mask {
		e := &idx[i&mask]
		if e.slot < 0 {
			return -1, false
		}
		if e.key == key {
			return e.slot, true
		}
	}
}

// Has reports whether key is resident, without touching recency.
func (s *Store[V]) Has(key uint64) bool {
	_, ok := s.Find(key)
	return ok
}

// Promote moves an occupied slot to the MRU position of its set.
func (s *Store[V]) Promote(slot int32) {
	set := s.links[slot].set
	if s.head[set] == slot {
		return
	}
	s.unlink(set, slot)
	s.pushFront(set, slot)
}

// Touch finds key and, when present, promotes it to MRU; it reports
// whether the key was found. This is the one-call probe of an LRU cache —
// the single hottest operation of the simulator — so the promote is a
// fused move-to-front: a non-head resident slot always has a predecessor,
// and its set's head always exists, which removes the emptiness branches
// unlink/pushFront carry. The set comes from the key (a mask in the
// power-of-two case), not the slot's link record, keeping the head load
// off the index probe's dependency chain.
func (s *Store[V]) Touch(key uint64) bool {
	idx := s.idx
	mask := uint64(len(idx) - 1)
	var slot int32
	for i := (key * fibMul) >> s.idxShift; ; i = (i + 1) & mask {
		e := &idx[i&mask]
		if e.slot < 0 {
			return false
		}
		if e.key == key {
			slot = e.slot
			break
		}
	}
	set := s.SetOf(key)
	h := s.head[set]
	if h == slot {
		return true
	}
	// Resident and not the head, so h >= 0 and the slot has a
	// predecessor: fused move-to-front.
	l := s.links[slot]
	s.links[l.prev].next = l.next
	if l.next >= 0 {
		s.links[l.next].prev = l.prev
	} else {
		s.tail[set] = l.prev
	}
	s.links[slot].prev = -1
	s.links[slot].next = h
	s.links[h].prev = slot
	s.head[set] = slot
	return true
}

// InsertMRU places key (which must not be resident — callers Find first)
// into the MRU slot of its set, evicting the set's LRU slot when full. The
// returned slot's value is whatever the slot last held: a zero V on first
// use, or the evicted slot's old value afterwards — callers that need a
// clean value reset it, and callers that recycle per-slot storage (the
// prediction tables' slot lists) reuse it, which is what keeps the steady
// state allocation-free.
func (s *Store[V]) InsertMRU(key uint64) (slot int32, evictedKey uint64, evicted bool) {
	set := s.SetOf(key)
	if f := s.free[set]; f >= 0 {
		s.free[set] = s.links[f].next
		slot = f
		s.size++
	} else {
		slot = s.tail[set]
		evictedKey = s.keys[slot]
		evicted = true
		s.idxDelete(evictedKey)
		s.unlink(set, slot)
	}
	s.keys[slot] = key
	s.pushFront(set, slot)
	s.idxInsert(key, slot)
	return slot, evictedKey, evicted
}

// Remove deletes an occupied slot, returning it to its set's freelist. The
// slot's value is left in place for recycling.
func (s *Store[V]) Remove(slot int32) {
	set := s.links[slot].set
	s.idxDelete(s.keys[slot])
	s.unlink(set, slot)
	s.links[slot].next = s.free[set]
	s.free[set] = slot
	s.size--
}

// AppendSetKeys appends one set's resident keys, MRU first, to dst.
func (s *Store[V]) AppendSetKeys(dst []uint64, set int32) []uint64 {
	for sl := s.head[set]; sl >= 0; sl = s.links[sl].next {
		dst = append(dst, s.keys[sl])
	}
	return dst
}

// AppendKeys appends every resident key, set by set (MRU first within a
// set), to dst — the iteration order tests and invariant checks rely on.
func (s *Store[V]) AppendKeys(dst []uint64) []uint64 {
	for set := int32(0); set < int32(s.nsets); set++ {
		dst = s.AppendSetKeys(dst, set)
	}
	return dst
}

// Reset empties the store. Slot values are kept in the arena for
// recycling; callers that hand out recycled values reset them on reuse.
func (s *Store[V]) Reset() {
	for i := range s.head {
		s.head[i] = -1
		s.tail[i] = -1
	}
	// Rebuild per-set freelists over the arena: set i owns slots
	// [i*ways, (i+1)*ways).
	for set := 0; set < int(s.nsets); set++ {
		first := set * s.ways
		s.free[set] = int32(first)
		for w := 0; w < s.ways; w++ {
			sl := first + w
			s.links[sl].set = int32(set)
			if w+1 < s.ways {
				s.links[sl].next = int32(sl + 1)
			} else {
				s.links[sl].next = -1
			}
		}
	}
	for i := range s.idx {
		s.idx[i].slot = -1
	}
	s.size = 0
}

func (s *Store[V]) unlink(set, slot int32) {
	l := s.links[slot]
	if l.prev >= 0 {
		s.links[l.prev].next = l.next
	} else {
		s.head[set] = l.next
	}
	if l.next >= 0 {
		s.links[l.next].prev = l.prev
	} else {
		s.tail[set] = l.prev
	}
}

func (s *Store[V]) pushFront(set, slot int32) {
	h := s.head[set]
	s.links[slot].prev = -1
	s.links[slot].next = h
	if h >= 0 {
		s.links[h].prev = slot
	} else {
		s.tail[set] = slot
	}
	s.head[set] = slot
}

func (s *Store[V]) idxInsert(key uint64, slot int32) {
	i := (key * fibMul) >> s.idxShift
	for s.idx[i].slot >= 0 {
		i = (i + 1) & s.idxMask
	}
	s.idx[i] = idxEnt{key: key, slot: slot}
}

// idxDelete removes key from the index using backward-shift compaction:
// entries displaced past the hole are slid back so no tombstone is needed.
func (s *Store[V]) idxDelete(key uint64) {
	i := (key * fibMul) >> s.idxShift
	for {
		if s.idx[i].slot < 0 {
			return // not present (never happens for resident keys)
		}
		if s.idx[i].key == key {
			break
		}
		i = (i + 1) & s.idxMask
	}
	mask := s.idxMask
	j := i
	for {
		s.idx[i].slot = -1
		for {
			j = (j + 1) & mask
			if s.idx[j].slot < 0 {
				return
			}
			home := (s.idx[j].key * fibMul) >> s.idxShift
			// The entry at j may fill the hole at i only if its home
			// position lies cyclically at or before i.
			if (j-home)&mask >= (j-i)&mask {
				break
			}
		}
		s.idx[i] = s.idx[j]
		i = j
	}
}
