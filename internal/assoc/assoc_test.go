package assoc

import (
	"testing"

	"tlbprefetch/internal/xrand"
)

// sliceModel is the pre-refactor structure the Store replaced: one
// MRU-first slice per set, scan to find, memmove to promote. It is the
// behavioural reference the O(1) engine must match operation for
// operation.
type sliceModel struct {
	sets  [][]uint64
	ways  int
	nsets uint64
}

func newSliceModel(entries, ways int) *sliceModel {
	return &sliceModel{
		sets:  make([][]uint64, entries/ways),
		ways:  ways,
		nsets: uint64(entries / ways),
	}
}

func (m *sliceModel) set(key uint64) int { return int(key % m.nsets) }

func (m *sliceModel) touch(key uint64) bool {
	s := m.sets[m.set(key)]
	for i, v := range s {
		if v == key {
			copy(s[1:i+1], s[0:i])
			s[0] = key
			return true
		}
	}
	return false
}

func (m *sliceModel) has(key uint64) bool {
	for _, v := range m.sets[m.set(key)] {
		if v == key {
			return true
		}
	}
	return false
}

func (m *sliceModel) insertMRU(key uint64) (evictedKey uint64, evicted bool) {
	si := m.set(key)
	s := m.sets[si]
	if len(s) < m.ways {
		s = append(s, 0)
	} else {
		evictedKey = s[len(s)-1]
		evicted = true
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = key
	m.sets[si] = s
	return evictedKey, evicted
}

func (m *sliceModel) remove(key uint64) bool {
	si := m.set(key)
	s := m.sets[si]
	for i, v := range s {
		if v == key {
			copy(s[i:], s[i+1:])
			m.sets[si] = s[:len(s)-1]
			return true
		}
	}
	return false
}

func (m *sliceModel) keys() []uint64 {
	var out []uint64
	for _, s := range m.sets {
		out = append(out, s...)
	}
	return out
}

func (m *sliceModel) len() int {
	n := 0
	for _, s := range m.sets {
		n += len(s)
	}
	return n
}

// checkAgainstModel verifies full structural agreement: occupancy and the
// exact per-set recency order.
func checkAgainstModel[V any](t *testing.T, s *Store[V], m *sliceModel) {
	t.Helper()
	if s.Len() != m.len() {
		t.Fatalf("Len = %d, model %d", s.Len(), m.len())
	}
	got := s.AppendKeys(nil)
	want := m.keys()
	if len(got) != len(want) {
		t.Fatalf("keys %v, model %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recency order diverged at %d: %v vs model %v", i, got, want)
		}
	}
}

// TestStoreMatchesSliceLRUModel drives the Store and the reference
// slice-LRU through long randomized operation sequences (touch, insert,
// remove, has, reset) across a spread of geometries — including non-power-
// of-two set counts, which exercise the modulo path — and demands the two
// agree on every return value and on the full recency order throughout.
func TestStoreMatchesSliceLRUModel(t *testing.T) {
	geoms := []struct{ entries, ways int }{
		{1, 1}, {8, 8}, {8, 2}, {16, 1}, {128, 128}, {256, 4}, {24, 3}, {12, 12},
	}
	for _, g := range geoms {
		s := New[int](g.entries, g.ways)
		m := newSliceModel(g.entries, g.ways)
		r := xrand.New(uint64(g.entries)*31 + uint64(g.ways))
		keyspace := uint64(4 * g.entries)
		for op := 0; op < 20000; op++ {
			key := r.Uint64n(keyspace)
			switch r.Uint64n(8) {
			case 0: // remove if present
				if sl, ok := s.Find(key); ok {
					s.Remove(sl)
					if !m.remove(key) {
						t.Fatalf("%+v: Store had %d, model did not", g, key)
					}
				} else if m.remove(key) {
					t.Fatalf("%+v: model had %d, Store did not", g, key)
				}
			case 1: // membership probe
				if s.Has(key) != m.has(key) {
					t.Fatalf("%+v: Has(%d) diverged", g, key)
				}
			case 2: // occasional reset
				if r.Uint64n(500) == 0 {
					s.Reset()
					m = newSliceModel(g.entries, g.ways)
				}
			default: // cache access: touch or insert (the TLB/table pattern)
				if s.Touch(key) {
					if !m.touch(key) {
						t.Fatalf("%+v: Touch(%d) hit, model missed", g, key)
					}
				} else {
					if m.touch(key) {
						t.Fatalf("%+v: Touch(%d) missed, model hit", g, key)
					}
					_, ek, ev := s.InsertMRU(key)
					mek, mev := m.insertMRU(key)
					if ev != mev || ek != mek {
						t.Fatalf("%+v: eviction diverged: %d,%v vs model %d,%v", g, ek, ev, mek, mev)
					}
				}
			}
			if op%1000 == 999 {
				checkAgainstModel(t, s, m)
			}
		}
		checkAgainstModel(t, s, m)
	}
}

// TestStoreFIFODiscipline runs the Store as the prefetch buffer does —
// insert at MRU, never promote, remove on use — against a plain FIFO
// slice model.
func TestStoreFIFODiscipline(t *testing.T) {
	const cap = 16
	s := New[uint64](cap, cap)
	var fifo []uint64 // oldest last (MRU-first like the store's list)
	r := xrand.New(99)
	contains := func(k uint64) bool {
		for _, v := range fifo {
			if v == k {
				return true
			}
		}
		return false
	}
	for op := 0; op < 20000; op++ {
		key := r.Uint64n(64)
		if r.Uint64n(3) == 0 { // take out
			sl, ok := s.Find(key)
			if ok != contains(key) {
				t.Fatalf("Find(%d) = %v, model %v", key, ok, contains(key))
			}
			if ok {
				s.Remove(sl)
				for i, v := range fifo {
					if v == key {
						fifo = append(fifo[:i], fifo[i+1:]...)
						break
					}
				}
			}
		} else if !s.Has(key) { // insert if absent (duplicates keep order)
			_, ek, ev := s.InsertMRU(key)
			if len(fifo) == cap {
				want := fifo[len(fifo)-1]
				if !ev || ek != want {
					t.Fatalf("evicted %d,%v; model wants %d", ek, ev, want)
				}
				fifo = fifo[:len(fifo)-1]
			} else if ev {
				t.Fatalf("eviction from non-full buffer")
			}
			fifo = append([]uint64{key}, fifo...)
		}
		if s.Len() != len(fifo) {
			t.Fatalf("Len = %d, model %d", s.Len(), len(fifo))
		}
	}
	got := s.AppendKeys(nil)
	for i := range got {
		if got[i] != fifo[i] {
			t.Fatalf("FIFO order diverged: %v vs %v", got, fifo)
		}
	}
}

// TestIndexDeleteCompaction hammers one small index with colliding
// insert/delete cycles to exercise backward-shift deletion; a stale or
// lost index entry would surface as a Find failure.
func TestIndexDeleteCompaction(t *testing.T) {
	s := New[int](4, 4)
	r := xrand.New(7)
	resident := map[uint64]bool{}
	for op := 0; op < 50000; op++ {
		key := r.Uint64n(12)
		if sl, ok := s.Find(key); ok {
			if !resident[key] {
				t.Fatalf("Find(%d) hit, model says absent", key)
			}
			if s.Key(sl) != key {
				t.Fatalf("index maps %d to slot holding %d", key, s.Key(sl))
			}
			if r.Uint64n(2) == 0 {
				s.Remove(sl)
				delete(resident, key)
			}
		} else {
			if resident[key] {
				t.Fatalf("Find(%d) missed, model says present", key)
			}
			_, ek, ev := s.InsertMRU(key)
			if ev {
				delete(resident, ek)
			}
			resident[key] = true
		}
	}
}

func BenchmarkStoreTouchHit(b *testing.B) {
	s := New[struct{}](128, 128)
	for i := 0; i < 128; i++ {
		s.InsertMRU(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(uint64(i % 128))
	}
}

func BenchmarkStoreInsertEvict(b *testing.B) {
	s := New[struct{}](128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Touch(uint64(i)) {
			s.InsertMRU(uint64(i))
		}
	}
}
