// Package pagetable models the in-memory page table that Recency-based
// Prefetching (RP, Saulsbury et al., as adapted by the paper) augments with
// an LRU stack threaded through the page table entries.
//
// Each PTE carries `next` and `prev` pointers ("Extra fields that are
// required in the PTE", paper Figure 5) linking pages into a doubly-linked
// stack ordered by TLB-eviction recency: when the TLB evicts a translation,
// that page is pushed on top of the stack. When a page misses in the TLB, it
// is unlinked from wherever it sits in the stack, and its former stack
// neighbours are the prefetch candidates — pages referenced at around the
// same time in the past.
//
// Because the pointers live in memory, every manipulation costs a memory
// system operation; the package counts pointer reads/writes so the timing
// model can charge them (the paper charges 4 pointer manipulations per miss
// plus 2 prefetch fetches).
package pagetable

// PTE is a page table entry. Only the stack linkage matters to the study;
// the translation payload is implicit (identity mapping).
type PTE struct {
	vpn     uint64
	next    uint64 // toward the bottom of the stack (older eviction)
	prev    uint64 // toward the top of the stack (newer eviction)
	hasNext bool
	hasPrev bool
	inStack bool
}

// VPN returns the entry's virtual page number.
func (p *PTE) VPN() uint64 { return p.vpn }

// InStack reports whether the page is currently linked into the LRU stack.
func (p *PTE) InStack() bool { return p.inStack }

// PageTable is the RP substrate: a map of PTEs plus the stack top pointer.
type PageTable struct {
	entries map[uint64]*PTE
	top     uint64
	hasTop  bool
	size    int // number of pages currently linked in the stack

	pointerOps uint64 // memory writes to PTE pointer fields
}

// New returns an empty page table.
func New() *PageTable {
	return &PageTable{entries: make(map[uint64]*PTE)}
}

// Entry returns the PTE for vpn, allocating it on first touch (a real page
// table conceptually has an entry for every mapped page).
func (pt *PageTable) Entry(vpn uint64) *PTE {
	e, ok := pt.entries[vpn]
	if !ok {
		e = &PTE{vpn: vpn}
		pt.entries[vpn] = e
	}
	return e
}

// Peek returns the PTE for vpn if it exists, without allocating.
func (pt *PageTable) Peek(vpn uint64) (*PTE, bool) {
	e, ok := pt.entries[vpn]
	return e, ok
}

// Neighbors returns the stack neighbours of vpn — the prefetch candidates on
// a miss of vpn ("prefetch the next and prev entries from the page-table
// into the prefetch buffer"). It returns 0, 1 or 2 pages. A page that is not
// in the stack has no neighbours.
func (pt *PageTable) Neighbors(vpn uint64) []uint64 {
	e, ok := pt.entries[vpn]
	if !ok || !e.inStack {
		return nil
	}
	out := make([]uint64, 0, 2)
	if e.hasPrev {
		out = append(out, e.prev)
	}
	if e.hasNext {
		out = append(out, e.next)
	}
	return out
}

// NeighborsN returns up to n stack entries around vpn, walking outward
// alternately (prev, next, prev's prev, next's next, ...) — the wider
// prefetch window of Saulsbury et al.'s multi-entry variant. Each direction
// contributes at most ceil(n/2) entries, so n == 2 is exactly Neighbors:
// one prev and one next pointer read from the missed PTE, never a deeper
// walk down a single side (the paper's RP reads only the two pointers).
func (pt *PageTable) NeighborsN(vpn uint64, n int) []uint64 {
	return pt.AppendNeighborsN(nil, vpn, n)
}

// AppendNeighborsN is NeighborsN appending into dst — the allocation-free
// form the simulator's hot path uses (RP issues its candidates straight
// into the caller's scratch buffer).
func (pt *PageTable) AppendNeighborsN(dst []uint64, vpn uint64, n int) []uint64 {
	e, ok := pt.entries[vpn]
	if !ok || !e.inStack || n <= 0 {
		return dst
	}
	perSide := (n + 1) / 2
	out := dst
	base := len(dst)
	up, hasUp := e.prev, e.hasPrev
	down, hasDown := e.next, e.hasNext
	ups, downs := 0, 0
	for len(out)-base < n && ((hasUp && ups < perSide) || (hasDown && downs < perSide)) {
		if hasUp && ups < perSide {
			out = append(out, up)
			ups++
			u := pt.entries[up]
			up, hasUp = u.prev, u.hasPrev
		}
		if len(out)-base < n && hasDown && downs < perSide {
			out = append(out, down)
			downs++
			d := pt.entries[down]
			down, hasDown = d.next, d.hasNext
		}
	}
	return out
}

// Unlink removes vpn from the stack, splicing its neighbours together, and
// returns the number of pointer-field memory writes performed (0 if the page
// was not in the stack; up to 2 otherwise — the paper: "If the item was in
// the middle of the stack, then it needs to be removed (taking 2
// references)").
func (pt *PageTable) Unlink(vpn uint64) int {
	e, ok := pt.entries[vpn]
	if !ok || !e.inStack {
		return 0
	}
	ops := 0
	if e.hasPrev {
		p := pt.entries[e.prev]
		p.next, p.hasNext = e.next, e.hasNext
		ops++
	} else {
		// e was the top of the stack.
		pt.top, pt.hasTop = e.next, e.hasNext
		ops++
	}
	if e.hasNext {
		n := pt.entries[e.next]
		n.prev, n.hasPrev = e.prev, e.hasPrev
		ops++
	}
	e.inStack = false
	e.hasNext, e.hasPrev = false, false
	pt.size--
	pt.pointerOps += uint64(ops)
	return ops
}

// Push places vpn on top of the stack ("when an entry is evicted from the
// TLB it is put on top of the stack, its next pointer is set to the previous
// entry that was evicted") and returns the number of pointer-field memory
// writes (2 in steady state: the new top's next, and the old top's prev; 1
// for the very first push). If the page is somehow already linked it is
// unlinked first (defensive; the simulator's invariants prevent this).
func (pt *PageTable) Push(vpn uint64) int {
	e := pt.Entry(vpn)
	ops := 0
	if e.inStack {
		ops += pt.Unlink(vpn)
	}
	if pt.hasTop {
		old := pt.entries[pt.top]
		old.prev, old.hasPrev = vpn, true
		ops++ // write old top's prev
		e.next, e.hasNext = pt.top, true
	} else {
		e.hasNext = false
	}
	e.hasPrev = false
	e.inStack = true
	pt.top, pt.hasTop = vpn, true
	ops++ // write new entry's pointers / the top pointer
	pt.size++
	pt.pointerOps += uint64(ops)
	return ops
}

// StackSize returns the number of pages currently linked in the stack.
func (pt *PageTable) StackSize() int { return pt.size }

// Pages returns the number of PTEs allocated (distinct pages touched).
func (pt *PageTable) Pages() int { return len(pt.entries) }

// PointerOps returns the cumulative count of pointer-field memory writes —
// the extra memory traffic RP induces beyond the prefetch fetches.
func (pt *PageTable) PointerOps() uint64 { return pt.pointerOps }

// Top returns the top-of-stack page, if any.
func (pt *PageTable) Top() (uint64, bool) { return pt.top, pt.hasTop }

// StackWalk returns the stack contents from top to bottom. It is O(stack)
// and intended for tests and invariant checks; it panics if the list is
// inconsistent (a cycle or a dangling pointer), making corruption loud.
func (pt *PageTable) StackWalk() []uint64 {
	var out []uint64
	seen := make(map[uint64]bool)
	cur, ok := pt.top, pt.hasTop
	for ok {
		if seen[cur] {
			panic("pagetable: cycle in LRU stack")
		}
		seen[cur] = true
		e, present := pt.entries[cur]
		if !present || !e.inStack {
			panic("pagetable: dangling stack pointer")
		}
		out = append(out, cur)
		cur, ok = e.next, e.hasNext
	}
	if len(out) != pt.size {
		panic("pagetable: stack size mismatch")
	}
	return out
}

// CheckInvariants verifies the doubly-linked structure (forward and backward
// consistency). It returns false with a description on violation; tests use
// it after random operation sequences.
func (pt *PageTable) CheckInvariants() (bool, string) {
	walk := func() (ok bool, desc string, pages []uint64) {
		defer func() {
			if r := recover(); r != nil {
				ok, desc = false, "walk panicked"
			}
		}()
		return true, "", pt.StackWalk()
	}
	ok, desc, pages := walk()
	if !ok {
		return false, desc
	}
	// Backward consistency: each page's prev must point at its predecessor.
	for i, vpn := range pages {
		e := pt.entries[vpn]
		if i == 0 {
			if e.hasPrev {
				return false, "top of stack has a prev pointer"
			}
		} else {
			if !e.hasPrev || e.prev != pages[i-1] {
				return false, "prev pointer does not match predecessor"
			}
		}
	}
	// No page outside the walk may claim stack membership.
	linked := 0
	for _, e := range pt.entries {
		if e.inStack {
			linked++
		}
	}
	if linked != len(pages) {
		return false, "inStack flags inconsistent with walk"
	}
	return true, ""
}

// Reset drops all entries and counters.
func (pt *PageTable) Reset() {
	clear(pt.entries)
	pt.hasTop = false
	pt.size = 0
	pt.pointerOps = 0
}
