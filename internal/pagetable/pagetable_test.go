package pagetable

import (
	"testing"
	"testing/quick"
)

func TestPushUnlinkBasics(t *testing.T) {
	pt := New()
	if pt.StackSize() != 0 {
		t.Fatal("new table has nonzero stack")
	}
	// First push: only the top pointer / own fields are written.
	if ops := pt.Push(1); ops != 1 {
		t.Fatalf("first push ops = %d, want 1", ops)
	}
	// Second push: also writes old top's prev.
	if ops := pt.Push(2); ops != 2 {
		t.Fatalf("second push ops = %d, want 2", ops)
	}
	if got := pt.StackWalk(); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("stack = %v, want [2 1]", got)
	}
	top, ok := pt.Top()
	if !ok || top != 2 {
		t.Fatalf("top = %d,%v", top, ok)
	}
}

func TestUnlinkMiddle(t *testing.T) {
	pt := New()
	pt.Push(1)
	pt.Push(2)
	pt.Push(3) // stack: 3 2 1
	if ops := pt.Unlink(2); ops != 2 {
		t.Fatalf("middle unlink ops = %d, want 2", ops)
	}
	if got := pt.StackWalk(); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("stack = %v, want [3 1]", got)
	}
	if ok, desc := pt.CheckInvariants(); !ok {
		t.Fatal(desc)
	}
}

func TestUnlinkTopAndBottom(t *testing.T) {
	pt := New()
	pt.Push(1)
	pt.Push(2)
	pt.Push(3) // 3 2 1
	if ops := pt.Unlink(3); ops != 2 {
		// top: write top pointer + successor's prev
		t.Fatalf("top unlink ops = %d, want 2", ops)
	}
	if got := pt.StackWalk(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("stack = %v", got)
	}
	if ops := pt.Unlink(1); ops != 1 {
		// bottom: only predecessor's next
		t.Fatalf("bottom unlink ops = %d, want 1", ops)
	}
	if got := pt.StackWalk(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("stack = %v, want [2]", got)
	}
	// Unlink the only element.
	pt.Unlink(2)
	if pt.StackSize() != 0 {
		t.Fatal("stack not empty")
	}
	if _, ok := pt.Top(); ok {
		t.Fatal("top pointer survives empty stack")
	}
}

func TestUnlinkAbsentIsFree(t *testing.T) {
	pt := New()
	pt.Push(1)
	if ops := pt.Unlink(99); ops != 0 {
		t.Fatalf("unlink of absent page cost %d ops", ops)
	}
	e := pt.Entry(50) // allocated but never pushed
	if e.InStack() {
		t.Fatal("fresh PTE claims stack membership")
	}
	if ops := pt.Unlink(50); ops != 0 {
		t.Fatalf("unlink of unlinked page cost %d ops", ops)
	}
}

func TestNeighbors(t *testing.T) {
	pt := New()
	pt.Push(1)
	pt.Push(2)
	pt.Push(3) // 3 2 1
	got := pt.Neighbors(2)
	if len(got) != 2 {
		t.Fatalf("neighbors of middle = %v", got)
	}
	// prev (toward top) first, then next.
	if got[0] != 3 || got[1] != 1 {
		t.Fatalf("neighbors = %v, want [3 1]", got)
	}
	if got := pt.Neighbors(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("neighbors of top = %v, want [2]", got)
	}
	if got := pt.Neighbors(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("neighbors of bottom = %v, want [2]", got)
	}
	if got := pt.Neighbors(42); got != nil {
		t.Fatalf("neighbors of absent page = %v, want nil", got)
	}
}

func TestNeighborsN(t *testing.T) {
	pt := New()
	for _, v := range []uint64{1, 2, 3, 4, 5} {
		pt.Push(v)
	}
	// Stack top-to-bottom: 5 4 3 2 1. Around 3, walking outward:
	// prev(4), next(2), prev2(5), next2(1).
	got := pt.NeighborsN(3, 4)
	want := []uint64{4, 2, 5, 1}
	if len(got) != len(want) {
		t.Fatalf("NeighborsN = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NeighborsN = %v, want %v", got, want)
		}
	}
	// Requesting more than available truncates gracefully.
	if got := pt.NeighborsN(5, 10); len(got) != 4 {
		t.Fatalf("from top: %v", got)
	}
	// Degenerate cases.
	if pt.NeighborsN(99, 2) != nil {
		t.Fatal("absent page has neighbours")
	}
	if pt.NeighborsN(3, 0) != nil {
		t.Fatal("n=0 returned entries")
	}
	// NeighborsN(_, 2) must agree with Neighbors.
	a, b := pt.NeighborsN(3, 2), pt.Neighbors(3)
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("NeighborsN(2) %v != Neighbors %v", a, b)
	}
}

func TestRepushMovesToTop(t *testing.T) {
	pt := New()
	pt.Push(1)
	pt.Push(2)
	pt.Push(3) // 3 2 1
	pt.Push(1) // defensive path: unlink then push
	if got := pt.StackWalk(); got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("stack = %v, want [1 3 2]", got)
	}
	if ok, desc := pt.CheckInvariants(); !ok {
		t.Fatal(desc)
	}
}

func TestPointerOpsAccumulate(t *testing.T) {
	pt := New()
	pt.Push(1) // 1
	pt.Push(2) // 2
	pt.Push(3) // 2  => 5 so far
	pt.Unlink(2)
	// middle unlink = 2 => 7
	if got := pt.PointerOps(); got != 7 {
		t.Fatalf("pointer ops = %d, want 7", got)
	}
}

func TestPagesCount(t *testing.T) {
	pt := New()
	pt.Entry(1)
	pt.Entry(2)
	pt.Entry(1)
	if pt.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", pt.Pages())
	}
	if _, ok := pt.Peek(3); ok {
		t.Fatal("Peek allocated an entry")
	}
	if pt.Pages() != 2 {
		t.Fatal("Peek changed page count")
	}
}

func TestReset(t *testing.T) {
	pt := New()
	pt.Push(1)
	pt.Push(2)
	pt.Reset()
	if pt.Pages() != 0 || pt.StackSize() != 0 || pt.PointerOps() != 0 {
		t.Fatal("Reset left state behind")
	}
	if _, ok := pt.Top(); ok {
		t.Fatal("Reset left top pointer")
	}
}

// Property: after an arbitrary sequence of pushes and unlinks the stack is a
// consistent doubly-linked list whose contents match a slice model.
func TestQuickStackConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		pt := New()
		var model []uint64 // top first
		remove := func(v uint64) {
			for i, x := range model {
				if x == v {
					model = append(model[:i], model[i+1:]...)
					return
				}
			}
		}
		contains := func(v uint64) bool {
			for _, x := range model {
				if x == v {
					return true
				}
			}
			return false
		}
		for _, op := range ops {
			vpn := uint64(op % 16)
			if op&0x80 == 0 {
				if contains(vpn) {
					remove(vpn)
				}
				model = append([]uint64{vpn}, model...)
				pt.Push(vpn)
			} else {
				remove(vpn)
				pt.Unlink(vpn)
			}
			if ok, _ := pt.CheckInvariants(); !ok {
				return false
			}
		}
		got := pt.StackWalk()
		if len(got) != len(model) {
			return false
		}
		for i := range got {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushUnlink(b *testing.B) {
	pt := New()
	for i := 0; i < 1024; i++ {
		pt.Push(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i % 1024)
		pt.Unlink(v)
		pt.Push(v)
	}
}
