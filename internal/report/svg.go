package report

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette colors series bars; series beyond its length cycle. The hues
// are spaced for adjacent-bar contrast and hold up in grayscale print.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
	"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#2f4b7c", "#a05195",
}

// Fixed SVG layout constants (pixels).
const (
	svgMarginL   = 64  // y-axis labels
	svgMarginR   = 16  //
	svgMarginT   = 40  // title
	svgPlotH     = 220 // bar area height
	svgGroupGap  = 18  // gap between bar groups
	svgXLabelH   = 24  // group-label strip under the bars
	svgLegendRow = 18  // legend line height
	svgMinWidth  = 420 // room for title + legend on tiny figures
)

// svgLayout is the measured geometry of one figure's SVG rendering.
type svgLayout struct {
	f          *Figure
	barW       int
	plotW      int
	width      int
	height     int
	yMax       float64
	legendRows [][]int // series indices per legend line
}

// layoutSVG measures a figure: bar width shrinks as the bar count grows,
// the y-axis ceiling is rounded up to a "nice" number, and the legend wraps
// to the figure width.
func layoutSVG(f *Figure) svgLayout {
	l := svgLayout{f: f}
	totalBars := len(f.Groups) * len(f.Series)
	l.barW = 16
	if totalBars > 0 && 900/totalBars < l.barW {
		l.barW = 900 / totalBars
	}
	if l.barW < 4 {
		l.barW = 4
	}
	l.plotW = len(f.Groups)*len(f.Series)*l.barW + (len(f.Groups)+1)*svgGroupGap
	l.width = svgMarginL + l.plotW + svgMarginR
	if l.width < svgMinWidth {
		l.width = svgMinWidth
	}
	l.yMax = niceCeil(f.maxValue())

	// Wrap legend items at the figure width (7px per character of the
	// monospace label plus swatch and padding).
	x := svgMarginL
	var row []int
	for si, s := range f.Series {
		itemW := 16 + 7*len(s) + 14
		if len(row) > 0 && x+itemW > l.width-svgMarginR {
			l.legendRows = append(l.legendRows, row)
			row = nil
			x = svgMarginL
		}
		row = append(row, si)
		x += itemW
	}
	if len(row) > 0 {
		l.legendRows = append(l.legendRows, row)
	}
	l.height = svgMarginT + svgPlotH + svgXLabelH + len(l.legendRows)*svgLegendRow + 8
	return l
}

// niceCeil rounds a positive value up to the next 1/1.25/1.5/2/2.5/3/4/5/6/8
// × power of ten, the conventional chart-axis ceilings. Non-positive values
// get a unit axis.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	pow := math.Pow(10, exp)
	base := v / pow
	for _, c := range []float64{1, 1.25, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if base <= c {
			return c * pow
		}
	}
	return 10 * pow
}

// SVG renders the figure as one self-contained SVG document (XML header
// included), byte-identical for equal figure values.
func (f *Figure) SVG() string { return SVGDocument(f) }

// SVGDocument renders one or more figures stacked vertically into a single
// self-contained SVG document — the multi-panel form of Figure 9. The
// output is a pure function of the figure values.
func SVGDocument(figs ...*Figure) string {
	var b strings.Builder
	layouts := make([]svgLayout, len(figs))
	width, height := svgMinWidth, 0
	for i, f := range figs {
		layouts[i] = layoutSVG(f)
		if layouts[i].width > width {
			width = layouts[i].width
		}
		height += layouts[i].height
	}
	if height == 0 {
		height = svgLegendRow
	}
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="monospace">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	y := 0
	for i := range layouts {
		fmt.Fprintf(&b, `<g transform="translate(0,%d)">`+"\n", y)
		renderSVGFigure(&b, layouts[i])
		b.WriteString("</g>\n")
		y += layouts[i].height
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// renderSVGFigure writes one measured figure into the document builder.
func renderSVGFigure(b *strings.Builder, l svgLayout) {
	f := l.f
	if err := f.Validate(); err != nil {
		fmt.Fprintf(b, `<text x="8" y="16" font-size="12" fill="#b00">%s</text>`+"\n", xmlEscape(err.Error()))
		return
	}
	plotTop, plotBot := svgMarginT, svgMarginT+svgPlotH

	fmt.Fprintf(b, `<text x="%d" y="20" font-size="13" font-weight="bold">%s</text>`+"\n",
		svgMarginL, xmlEscape(f.Title))

	// y axis: gridline + label at each quarter of the nice ceiling.
	for tick := 0; tick <= 4; tick++ {
		val := l.yMax * float64(tick) / 4
		ty := float64(plotBot) - float64(svgPlotH)*float64(tick)/4
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd" stroke-width="1"/>`+"\n",
			svgMarginL, ty, svgMarginL+l.plotW, ty)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end" fill="#444">%s</text>`+"\n",
			svgMarginL-6, ty+3.5, fmt.Sprintf("%.4g", val))
	}
	fmt.Fprintf(b, `<text x="12" y="%d" font-size="10" fill="#444" transform="rotate(-90 12 %d)" text-anchor="middle">%s</text>`+"\n",
		plotTop+svgPlotH/2, plotTop+svgPlotH/2, xmlEscape(f.Axis))

	// Bars, one group at a time.
	x := svgMarginL + svgGroupGap
	for _, g := range f.Groups {
		for si := range f.Series {
			v, ok := g.value(si)
			if ok {
				h := 0.0
				if l.yMax > 0 {
					h = v / l.yMax * svgPlotH
				}
				fmt.Fprintf(b, `<rect x="%d" y="%.2f" width="%d" height="%.2f" fill="%s"><title>%s %s: %s</title></rect>`+"\n",
					x, float64(plotBot)-h, l.barW, h, svgPalette[si%len(svgPalette)],
					xmlEscape(g.Label), xmlEscape(f.Series[si]), formatValue(v))
			}
			x += l.barW
		}
		groupW := len(f.Series) * l.barW
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="middle" fill="#222">%s</text>`+"\n",
			x-groupW/2, plotBot+14, xmlEscape(g.Label))
		x += svgGroupGap
	}
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222" stroke-width="1"/>`+"\n",
		svgMarginL, plotBot, svgMarginL+l.plotW, plotBot)

	// Legend: one swatch + label per series, wrapped as measured.
	ly := plotBot + svgXLabelH + 4
	for _, row := range l.legendRows {
		lx := svgMarginL
		for _, si := range row {
			fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
				lx, ly, svgPalette[si%len(svgPalette)])
			fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" fill="#222">%s</text>`+"\n",
				lx+14, ly+9, xmlEscape(f.Series[si]))
			lx += 16 + 7*len(f.Series[si]) + 14
		}
		ly += svgLegendRow
	}
}

// xmlEscape escapes the XML-special characters of labels and titles.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
