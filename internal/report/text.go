package report

import (
	"fmt"
	"strings"
)

// textBarWidth is the widest text bar, in '#' characters.
const textBarWidth = 44

// Text renders the figure as an aligned grouped-bar chart for terminals:
// one row per (group, series) bar, the group label printed once per group,
// bars scaled so the figure's largest value spans textBarWidth characters.
// The output is a pure function of the figure value.
func (f *Figure) Text() string {
	if err := f.Validate(); err != nil {
		return err.Error() + "\n"
	}
	groupW := len("app")
	seriesW := len("series")
	valueW := len("value")
	for _, g := range f.Groups {
		if len(g.Label) > groupW {
			groupW = len(g.Label)
		}
		for i, s := range f.Series {
			v, ok := g.value(i)
			if !ok {
				continue
			}
			if len(s) > seriesW {
				seriesW = len(s)
			}
			if w := len(formatValue(v)); w > valueW {
				valueW = w
			}
		}
	}
	max := f.maxValue()

	var b strings.Builder
	b.WriteString(f.Title)
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-*s  %-*s  %*s\n", groupW, "app", seriesW, "series", valueW, "value")
	fmt.Fprintf(&b, "%s  %s  %s\n",
		strings.Repeat("-", groupW), strings.Repeat("-", seriesW), strings.Repeat("-", valueW))
	for _, g := range f.Groups {
		label := g.Label
		for i, s := range f.Series {
			v, ok := g.value(i)
			if !ok {
				continue
			}
			bar := ""
			if max > 0 {
				bar = strings.Repeat("#", int(v/max*textBarWidth+0.5))
			}
			fmt.Fprintf(&b, "%-*s  %-*s  %*s  %s\n", groupW, label, seriesW, s, valueW, formatValue(v), bar)
			label = "" // group label once per group
		}
	}
	if max > 0 {
		fmt.Fprintf(&b, "scale: # = %s %s\n", fmt.Sprintf("%.4g", max/textBarWidth), f.Axis)
	}
	return b.String()
}

// formatValue renders a bar value for the text view: fixed three decimals,
// matching the precision the paper's figures are read at.
func formatValue(v float64) string { return fmt.Sprintf("%.3f", v) }
