// Package report renders paper-style figures from sweep results: grouped
// bars per application, mechanisms (or whatever else varies across the
// selected cells) as series. It is the figure-level half of the store's
// emitter story — where sweep.Table renders a flat row per cell, report
// arranges a store subset the way the paper's Figures 7-9 arrange theirs,
// and emits it as aligned text, CSV shaped for plotting tools, or a
// self-contained SVG.
//
// The package is deliberately two-layered:
//
//   - Build consumes a store subset (typically sweep.Filter.Select output)
//     and derives the figure automatically: groups are the sources
//     (applications), series are labeled from exactly the Key fields that
//     vary across the subset, and the plotted quantity is one of the
//     registered Metrics.
//   - Figure itself is a plain value, so harnesses that already hold
//     derived numbers (normalized cycles, panel labels in paper order) can
//     construct one directly and reuse the renderers.
//
// Every renderer is a pure function of the Figure value: the same subset
// always produces byte-identical text, CSV and SVG, regardless of worker
// count, map order or platform.
package report

import (
	"fmt"
	"strings"

	"tlbprefetch/internal/sweep"
)

// Figure is one grouped-bar figure: for every group (application), one bar
// per series (mechanism/configuration), all plotting the same metric.
type Figure struct {
	// Title is the caption printed above the chart.
	Title string
	// Axis labels the plotted quantity, e.g. "prediction accuracy".
	Axis string
	// Series are the bar labels within each group, in plot order.
	Series []string
	// Groups are the bar groups, in plot order.
	Groups []Group
}

// Group is one bar group: a label (application name) plus one value per
// figure series.
type Group struct {
	// Label names the group, e.g. the application.
	Label string
	// Values holds one bar height per figure series, indexed like
	// Figure.Series.
	Values []float64
	// Present marks which series have a value in this group; a nil Present
	// means all of them. Absent bars render as gaps ("-" in text, empty CSV
	// cells, no rect in SVG).
	Present []bool
}

// value returns the group's bar for series i and whether it exists, treating
// out-of-range and not-Present entries uniformly as absent.
func (g Group) value(i int) (float64, bool) {
	if i >= len(g.Values) {
		return 0, false
	}
	if g.Present != nil && (i >= len(g.Present) || !g.Present[i]) {
		return 0, false
	}
	return g.Values[i], true
}

// Validate reports whether the figure is renderable: at least one series and
// one group, and no group wider than the series list.
func (f *Figure) Validate() error {
	if len(f.Series) == 0 {
		return fmt.Errorf("report: figure %q has no series", f.Title)
	}
	if len(f.Groups) == 0 {
		return fmt.Errorf("report: figure %q has no groups", f.Title)
	}
	for _, g := range f.Groups {
		if len(g.Values) > len(f.Series) {
			return fmt.Errorf("report: figure %q group %q has %d values for %d series",
				f.Title, g.Label, len(g.Values), len(f.Series))
		}
		if g.Present != nil && len(g.Present) != len(g.Values) {
			return fmt.Errorf("report: figure %q group %q has %d present flags for %d values",
				f.Title, g.Label, len(g.Present), len(g.Values))
		}
	}
	return nil
}

// maxValue returns the largest present value (0 when none are).
func (f *Figure) maxValue() float64 {
	max := 0.0
	for _, g := range f.Groups {
		for i := range f.Series {
			if v, ok := g.value(i); ok && v > max {
				max = v
			}
		}
	}
	return max
}

// Options parameterizes Build.
type Options struct {
	// Metric names the plotted quantity (see Metrics). Empty means
	// "accuracy".
	Metric string
	// Title overrides the derived "<axis> by application" caption.
	Title string
}

// Build derives a figure from a store subset. Groups are the distinct
// sources in first-appearance order (pass sweep.Filter.Select output for
// the stable source-sorted order); series are labeled from exactly the Key
// fields that vary across the subset, so a mechanism comparison labels
// bars "DP,256,D" / "RP" while a buffer sweep labels them "b=16" / "b=32"
// without the caller naming either axis. Cells the metric cannot be read
// from (a cycle-model metric on functional cells) render as gaps; Build
// fails only when the metric is readable from no cell at all.
func Build(results []sweep.Result, opts Options) (*Figure, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("report: no cells to render")
	}
	name := opts.Metric
	if name == "" {
		name = "accuracy"
	}
	m, ok := MetricByName(name)
	if !ok {
		return nil, fmt.Errorf("report: unknown metric %q (known: %s)", name, MetricNames())
	}

	labels := seriesLabels(results)
	f := &Figure{Title: opts.Title, Axis: m.Axis}
	if f.Title == "" {
		f.Title = m.Axis + " by application"
	}
	seriesIdx := make(map[string]int)
	groupIdx := make(map[string]int)
	readable := false
	for i, r := range results {
		si, ok := seriesIdx[labels[i]]
		if !ok {
			si = len(f.Series)
			seriesIdx[labels[i]] = si
			f.Series = append(f.Series, labels[i])
		}
		gl := r.Key.SourceLabel()
		gi, ok := groupIdx[gl]
		if !ok {
			gi = len(f.Groups)
			groupIdx[gl] = gi
			f.Groups = append(f.Groups, Group{Label: gl})
		}
		g := &f.Groups[gi]
		for len(g.Values) <= si {
			g.Values = append(g.Values, 0)
			g.Present = append(g.Present, false)
		}
		if g.Present[si] {
			return nil, fmt.Errorf("report: cells %q/%q collide — the varying key fields do not distinguish them", gl, labels[i])
		}
		v, ok := m.Value(r)
		g.Values[si], g.Present[si] = v, ok
		readable = readable || ok
	}
	if !readable {
		return nil, fmt.Errorf("report: metric %q is not derivable from any selected cell (it needs cycle-model cells — sweep with -timing or a -miss-penalty axis)", m.Name)
	}
	// Groups discovered late may be narrower than the series list; pad so
	// every group indexes uniformly.
	for gi := range f.Groups {
		g := &f.Groups[gi]
		for len(g.Values) < len(f.Series) {
			g.Values = append(g.Values, 0)
			g.Present = append(g.Present, false)
		}
	}
	return f, nil
}

// facet is one Key field that can contribute to a series label: render
// produces the label fragment (empty when the field does not apply to the
// cell, e.g. a timing constant on a functional cell).
type facet struct {
	name   string
	render func(k sweep.Key) string
}

// seriesFacets lists the label-contributing Key fields in label order. The
// mechanism renders as its bare paper legend ("DP,256,D"); every other
// field carries a short name= prefix so mixed labels stay readable.
var seriesFacets = []facet{
	{"mech", func(k sweep.Key) string { return k.Mech.Label() }},
	{"policy", mixFacet(func(m sweep.Mix) string { return m.Policy })},
	{"quantum", mixFacet(func(m sweep.Mix) string { return fmt.Sprintf("q=%d", m.Quantum) })},
	{"asid", mixFacet(func(m sweep.Mix) string { return "asid=" + m.ASID })},
	{"tlb", func(k sweep.Key) string { return fmt.Sprintf("tlb=%d", k.TLBEntries) }},
	{"tlbways", func(k sweep.Key) string {
		if k.TLBWays == 0 {
			return "tlbways=FA"
		}
		return fmt.Sprintf("tlbways=%d", k.TLBWays)
	}},
	{"buffer", func(k sweep.Key) string { return fmt.Sprintf("b=%d", k.Buffer) }},
	{"pageshift", func(k sweep.Key) string { return fmt.Sprintf("ps=%d", k.PageShift) }},
	{"refs", func(k sweep.Key) string { return fmt.Sprintf("refs=%d", k.Refs) }},
	{"warmup", func(k sweep.Key) string { return fmt.Sprintf("warmup=%d", k.Warmup) }},
	{"seed", func(k sweep.Key) string { return fmt.Sprintf("seed=%d", k.Seed) }},
	{"model", func(k sweep.Key) string {
		if k.Timing == nil {
			return "functional"
		}
		return "cycle"
	}},
	{"penalty", timingFacet(func(t sweep.Timing) string { return fmt.Sprintf("p=%d", t.MissPenalty) })},
	{"memop", timingFacet(func(t sweep.Timing) string { return fmt.Sprintf("m=%d", t.MemOpLatency) })},
	{"occ", timingFacet(func(t sweep.Timing) string { return fmt.Sprintf("occ=%d", t.MemOpOccupancy) })},
	{"bufferhit", timingFacet(func(t sweep.Timing) string { return fmt.Sprintf("bhp=%d", t.BufferHitPenalty) })},
	{"cyclesperref", timingFacet(func(t sweep.Timing) string { return fmt.Sprintf("cpr=%d", t.CyclesPerRef) })},
	{"refspercycle", timingFacet(func(t sweep.Timing) string { return fmt.Sprintf("ipc=%d", t.RefsPerCycle) })},
	{"rpskip", timingFacet(func(t sweep.Timing) string {
		if t.RPSkipWhenBusy {
			return "rpskip=on"
		}
		return "rpskip=off"
	})},
}

// mixFacet lifts a Mix renderer into a Key facet that is empty for
// single-source cells, so the scheduler axes (policy as the paper would
// legend it, quantum, ASID mode) only label mix figures.
func mixFacet(render func(sweep.Mix) string) func(sweep.Key) string {
	return func(k sweep.Key) string {
		if k.Mix == nil {
			return ""
		}
		return render(*k.Mix)
	}
}

// timingFacet lifts a Timing renderer into a Key facet that is empty for
// functional cells (a nil/non-nil mix is already distinguished by the
// "model" facet).
func timingFacet(render func(sweep.Timing) string) func(sweep.Key) string {
	return func(k sweep.Key) string {
		if k.Timing == nil {
			return ""
		}
		return render(*k.Timing)
	}
}

// seriesLabels derives one label per result from exactly the facets whose
// rendered value varies across the subset — minus facets another kept facet
// already determines (the buffer-hit penalty scales with the miss penalty
// and the channel occupancy with the memory-op cost, so printing them would
// only bloat every label without distinguishing anything). When nothing
// varies (one configuration per application), every cell falls back to the
// mechanism label.
func seriesLabels(results []sweep.Result) []string {
	rendered := make([][]string, len(seriesFacets))
	varying := make([]bool, len(seriesFacets))
	for fi, fc := range seriesFacets {
		vals := make([]string, len(results))
		for ri, r := range results {
			vals[ri] = fc.render(r.Key)
		}
		rendered[fi] = vals
		for _, v := range vals[1:] {
			if v != vals[0] {
				varying[fi] = true
				break
			}
		}
	}
	// Greedily keep varying facets that split cells the kept ones do not:
	// classes holds each cell's kept-facet tuple, and a facet constant
	// within every class is determined by them. Dropping it cannot merge
	// labels, since equal kept tuples imply an equal dropped value.
	var kept []int
	classes := make([]string, len(results))
	for fi := range seriesFacets {
		if !varying[fi] {
			continue
		}
		determined := true
		seen := make(map[string]string)
		for ri := range results {
			v, ok := seen[classes[ri]]
			if !ok {
				seen[classes[ri]] = rendered[fi][ri]
			} else if v != rendered[fi][ri] {
				determined = false
				break
			}
		}
		if determined {
			continue
		}
		kept = append(kept, fi)
		for ri := range results {
			classes[ri] += "\x00" + rendered[fi][ri]
		}
	}
	labels := make([]string, len(results))
	for ri := range results {
		var parts []string
		for _, fi := range kept {
			if rendered[fi][ri] != "" {
				parts = append(parts, rendered[fi][ri])
			}
		}
		if len(parts) == 0 {
			labels[ri] = results[ri].Key.Mech.Label()
		} else {
			labels[ri] = strings.Join(parts, " ")
		}
	}
	return labels
}
