package report

import (
	"strconv"

	"tlbprefetch/internal/stats"
)

// CSV renders the figure in the wide layout plotting tools group bars from:
// one row per group, one column per series, the first column naming the
// group. Values carry full float precision (strconv 'g', shortest exact
// form); absent bars are empty cells. Series labels containing commas (the
// paper's "DP,256,D" legends) are quoted by the CSV writer.
func (f *Figure) CSV() string {
	header := append([]string{"app"}, f.Series...)
	t := stats.NewTable(header...)
	for _, g := range f.Groups {
		row := make([]string, 0, len(header))
		row = append(row, g.Label)
		for i := range f.Series {
			if v, ok := g.value(i); ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.CSV()
}
