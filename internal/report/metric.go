package report

import (
	"strings"

	"tlbprefetch/internal/sweep"
)

// Metric is one plottable quantity of a sweep cell. Value extracts it and
// reports whether the cell carries it at all — cycle-model metrics are not
// derivable from functional cells, and those bars render as gaps rather
// than zeros.
type Metric struct {
	// Name is the selector used by Build and the CLIs, e.g. "missrate".
	Name string
	// Axis is the human axis label, e.g. "TLB miss rate".
	Axis string
	// NeedsTiming marks metrics derivable only from cycle-model cells.
	NeedsTiming bool
	// Value extracts the metric (false when this cell does not carry it).
	Value func(r sweep.Result) (float64, bool)
}

// Metrics lists every registered metric in presentation order: the paper's
// headline prediction accuracy first, then the functional rates, then the
// cycle-model quantities of the Table 3 studies.
var Metrics = []Metric{
	{
		Name: "accuracy",
		Axis: "prediction accuracy",
		Value: func(r sweep.Result) (float64, bool) {
			return r.Stats.Accuracy(), true
		},
	},
	{
		Name: "missrate",
		Axis: "TLB miss rate",
		Value: func(r sweep.Result) (float64, bool) {
			return r.Stats.MissRate(), true
		},
	},
	{
		Name: "coverage",
		Axis: "useful fraction of issued prefetches",
		Value: func(r sweep.Result) (float64, bool) {
			if r.Stats.PrefetchesIssued == 0 {
				return 0, true
			}
			used := r.Stats.PrefetchesIssued - r.Stats.PrefetchesUnused
			return float64(used) / float64(r.Stats.PrefetchesIssued), true
		},
	},
	{
		Name:        "stallcycles",
		Axis:        "TLB stall cycles per reference",
		NeedsTiming: true,
		Value: func(r sweep.Result) (float64, bool) {
			if r.Timing == nil || r.Timing.Refs == 0 {
				return 0, r.Timing != nil
			}
			return float64(r.Timing.StallCycles) / float64(r.Timing.Refs), true
		},
	},
	{
		Name:        "cpi",
		Axis:        "cycles per reference",
		NeedsTiming: true,
		Value: func(r sweep.Result) (float64, bool) {
			if r.Timing == nil {
				return 0, false
			}
			return r.Timing.CPI(), true
		},
	},
}

// MetricByName resolves a metric selector (case-insensitive).
func MetricByName(name string) (Metric, bool) {
	for _, m := range Metrics {
		if strings.EqualFold(m.Name, name) {
			return m, true
		}
	}
	return Metric{}, false
}

// MetricNames renders the registered selectors for CLI help and error text.
func MetricNames() string {
	names := make([]string, len(Metrics))
	for i, m := range Metrics {
		names[i] = m.Name
	}
	return strings.Join(names, ", ")
}
