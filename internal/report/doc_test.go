package report

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented enforces the package's documentation
// contract (and backs the CI docs job): every exported type, function,
// method, variable and constant in internal/report carries a doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	undocumented := func(name string, doc *ast.CommentGroup, pos token.Pos) {
		if doc == nil || strings.TrimSpace(doc.Text()) == "" {
			t.Errorf("%s: exported identifier %s has no doc comment", fset.Position(pos), name)
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					name := d.Name.Name
					if d.Recv != nil && len(d.Recv.List) == 1 {
						recv := d.Recv.List[0].Type
						if star, ok := recv.(*ast.StarExpr); ok {
							recv = star.X
						}
						if id, ok := recv.(*ast.Ident); ok {
							if !id.IsExported() {
								continue // method on an unexported type
							}
							name = id.Name + "." + name
						}
					}
					undocumented(name, d.Doc, d.Pos())
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								doc := s.Doc
								if doc == nil {
									doc = d.Doc
								}
								undocumented(s.Name.Name, doc, s.Pos())
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() {
									doc := s.Doc
									if doc == nil {
										doc = d.Doc
									}
									undocumented(n.Name, doc, n.Pos())
								}
							}
						}
					}
				}
			}
		}
	}
}
