package report_test

import (
	"fmt"

	"tlbprefetch/internal/report"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/tlb"
)

// ExampleBuild renders a two-mechanism store subset: series labels are
// derived automatically from the one Key field that varies (the mechanism).
func ExampleBuild() {
	cfg := sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}
	mk := func(app string, mech sweep.Mech, hits uint64) sweep.Result {
		j := sweep.Job{Source: sweep.WorkloadSource(app), Mech: mech, Config: cfg, Refs: 1000}
		return sweep.Result{Key: j.Key(), Stats: sim.Stats{Refs: 1000, Misses: 100, BufferHits: hits}}
	}
	dp := sweep.Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}
	rp := sweep.Mech{Kind: "RP"}
	results := []sweep.Result{
		mk("mcf", dp, 81), mk("mcf", rp, 58),
		mk("swim", dp, 97), mk("swim", rp, 60),
	}

	fig, err := report.Build(results, report.Options{Metric: "accuracy"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("series: %v\n", fig.Series)
	fmt.Print(fig.CSV())
	// Output:
	// series: [DP,256,D RP]
	// app,"DP,256,D",RP
	// mcf,0.81,0.58
	// swim,0.97,0.6
}

// ExampleFigure_Text shows the terminal rendering of a hand-built figure —
// the route harnesses with already-derived numbers take.
func ExampleFigure_Text() {
	fig := &report.Figure{
		Title:  "prediction accuracy by application",
		Axis:   "prediction accuracy",
		Series: []string{"DP,256,D", "RP"},
		Groups: []report.Group{
			{Label: "mcf", Values: []float64{0.80, 0.60}},
			{Label: "swim", Values: []float64{1.00, 0.50}},
		},
	}
	fmt.Print(fig.Text())
	// Output:
	// prediction accuracy by application
	// app   series    value
	// ----  --------  -----
	// mcf   DP,256,D  0.800  ###################################
	//       RP        0.600  ##########################
	// swim  DP,256,D  1.000  ############################################
	//       RP        0.500  ######################
	// scale: # = 0.02273 prediction accuracy
}
