package report

import (
	"strings"
	"testing"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/tlb"
)

// cell builds a functional result for (workload, mech) with the given
// accuracy shape, applying mutations to the job before keying.
func cell(workload string, mech sweep.Mech, hits, misses uint64, mut ...func(*sweep.Job)) sweep.Result {
	j := sweep.Job{
		Source: sweep.WorkloadSource(workload),
		Mech:   mech,
		Config: sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12},
		Refs:   1000,
	}
	for _, m := range mut {
		m(&j)
	}
	return sweep.Result{
		Key:   j.Key(),
		Stats: sim.Stats{Refs: j.Refs, Misses: misses, BufferHits: hits},
	}
}

// timingCell builds a cycle-model result at the given timing point.
func timingCell(workload string, mech sweep.Mech, tm sweep.Timing, cycles, stall uint64) sweep.Result {
	j := sweep.Job{
		Source: sweep.WorkloadSource(workload),
		Mech:   mech,
		Config: sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12},
		Refs:   1000,
		Timing: &tm,
	}
	st := sim.TimingStats{Stats: sim.Stats{Refs: j.Refs, Misses: 100, BufferHits: 50}, Cycles: cycles, StallCycles: stall}
	return sweep.Result{Key: j.Key(), Stats: st.Stats, Timing: &st}
}

var (
	dp = sweep.Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}
	rp = sweep.Mech{Kind: "RP"}
)

func TestBuildMechSeries(t *testing.T) {
	results := []sweep.Result{
		cell("mcf", dp, 81, 100),
		cell("mcf", rp, 58, 100),
		cell("swim", dp, 97, 100),
		cell("swim", rp, 60, 100),
	}
	f, err := Build(results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"DP,256,D", "RP"}; strings.Join(f.Series, "|") != strings.Join(want, "|") {
		t.Errorf("series = %v, want %v", f.Series, want)
	}
	if len(f.Groups) != 2 || f.Groups[0].Label != "mcf" || f.Groups[1].Label != "swim" {
		t.Errorf("groups = %+v", f.Groups)
	}
	if got := f.Groups[0].Values[0]; got != 0.81 {
		t.Errorf("mcf DP accuracy = %v, want 0.81", got)
	}
	if f.Title != "prediction accuracy by application" {
		t.Errorf("title = %q", f.Title)
	}
}

func TestBuildNonMechSeriesLabels(t *testing.T) {
	// Only the buffer size varies: labels must be b=16/b=32, not the
	// constant mechanism label.
	results := []sweep.Result{
		cell("mcf", dp, 70, 100),
		cell("mcf", dp, 75, 100, func(j *sweep.Job) { j.Config.BufferEntries = 32 }),
	}
	f, err := Build(results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "b=16|b=32"; strings.Join(f.Series, "|") != want {
		t.Errorf("series = %v, want %s", f.Series, want)
	}
}

func TestBuildPrunesCoVaryingFacets(t *testing.T) {
	// BufferHitPenalty and MemOpOccupancy are functions of the penalty in
	// ScaledTiming points, so the labels must carry only p=.
	results := []sweep.Result{
		timingCell("mcf", dp, sweep.ScaledTiming(100), 5000, 800),
		timingCell("mcf", dp, sweep.ScaledTiming(200), 9000, 1600),
	}
	f, err := Build(results, Options{Metric: "cpi"})
	if err != nil {
		t.Fatal(err)
	}
	if want := "p=100|p=200"; strings.Join(f.Series, "|") != want {
		t.Errorf("series = %v, want %s", f.Series, want)
	}
}

func TestBuildMixedModelLabels(t *testing.T) {
	// A functional/cycle mix is distinguished by the model facet; the
	// timing constants it implies must not leak into the labels.
	results := []sweep.Result{
		cell("mcf", dp, 70, 100),
		timingCell("mcf", dp, sweep.ScaledTiming(100), 5000, 800),
	}
	f, err := Build(results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "functional|cycle"; strings.Join(f.Series, "|") != want {
		t.Errorf("series = %v, want %s", f.Series, want)
	}
}

func TestBuildTimingMetricGaps(t *testing.T) {
	// cpi over a functional/cycle mix: the functional cell renders as a
	// gap, not an error and not a zero bar.
	results := []sweep.Result{
		cell("mcf", dp, 70, 100),
		timingCell("mcf", dp, sweep.ScaledTiming(100), 5000, 800),
	}
	f, err := Build(results, Options{Metric: "cpi"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := f.Groups[0].value(0); ok {
		t.Errorf("functional cell should be absent under cpi, got %v", v)
	}
	if v, ok := f.Groups[0].value(1); !ok || v != 5.0 {
		t.Errorf("cycle cell cpi = %v/%v, want 5.0", v, ok)
	}
}

func TestBuildTimingMetricAllFunctionalFails(t *testing.T) {
	results := []sweep.Result{cell("mcf", dp, 70, 100)}
	if _, err := Build(results, Options{Metric: "stallcycles"}); err == nil {
		t.Fatal("stallcycles over functional cells should fail")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty subset should fail")
	}
	if _, err := Build([]sweep.Result{cell("mcf", dp, 1, 2)}, Options{Metric: "nope"}); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestMetricByName(t *testing.T) {
	if m, ok := MetricByName("ACCURACY"); !ok || m.Name != "accuracy" {
		t.Errorf("case-insensitive lookup failed: %v %v", m, ok)
	}
	if _, ok := MetricByName("bogus"); ok {
		t.Error("bogus metric resolved")
	}
	for _, m := range Metrics {
		if !strings.Contains(MetricNames(), m.Name) {
			t.Errorf("MetricNames misses %s", m.Name)
		}
	}
}

func TestCoverageMetric(t *testing.T) {
	m, _ := MetricByName("coverage")
	r := cell("mcf", dp, 50, 100)
	r.Stats.PrefetchesIssued = 200
	r.Stats.PrefetchesUnused = 150
	if v, ok := m.Value(r); !ok || v != 0.25 {
		t.Errorf("coverage = %v/%v, want 0.25", v, ok)
	}
	r.Stats.PrefetchesIssued = 0
	if v, ok := m.Value(r); !ok || v != 0 {
		t.Errorf("coverage with nothing issued = %v/%v, want 0", v, ok)
	}
}

func TestCSVQuotesCommaSeries(t *testing.T) {
	f := &Figure{
		Axis:   "prediction accuracy",
		Series: []string{"DP,256,D"},
		Groups: []Group{{Label: "mcf", Values: []float64{0.5}}},
	}
	out := f.CSV()
	if !strings.Contains(out, `"DP,256,D"`) {
		t.Errorf("comma series not quoted:\n%s", out)
	}
	if !strings.Contains(out, "mcf,0.5") {
		t.Errorf("value row missing:\n%s", out)
	}
}

func TestTextRendersGapsAndScale(t *testing.T) {
	f := &Figure{
		Title:  "t",
		Axis:   "a",
		Series: []string{"x", "y"},
		Groups: []Group{{Label: "mcf", Values: []float64{0.5, 0}, Present: []bool{true, false}}},
	}
	out := f.Text()
	if strings.Contains(out, "mcf  y") {
		t.Errorf("absent bar rendered:\n%s", out)
	}
	if !strings.Contains(out, "scale: #") {
		t.Errorf("scale footer missing:\n%s", out)
	}
}

func TestFigureValidate(t *testing.T) {
	bad := []*Figure{
		{Groups: []Group{{Label: "g"}}},
		{Series: []string{"s"}},
		{Series: []string{"s"}, Groups: []Group{{Label: "g", Values: []float64{1, 2}}}},
		{Series: []string{"s"}, Groups: []Group{{Label: "g", Values: []float64{1}, Present: []bool{true, false}}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("figure %d should fail validation", i)
		}
	}
	ok := &Figure{Series: []string{"s"}, Groups: []Group{{Label: "g", Values: []float64{1}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid figure rejected: %v", err)
	}
}

func TestNiceCeil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1}, {-3, 1}, {0.8, 0.8}, {1, 1}, {1.1, 1.25}, {0.93, 1},
		{0.021, 0.025}, {3.2, 4}, {7, 8}, {9.5, 10}, {120, 125},
	}
	for _, c := range cases {
		if got := niceCeil(c.in); got != c.want {
			t.Errorf("niceCeil(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	f := &Figure{
		Title:  `a<b>&"c"`,
		Axis:   "a",
		Series: []string{"s<1>"},
		Groups: []Group{{Label: "g&h", Values: []float64{1}}},
	}
	out := f.SVG()
	for _, bad := range []string{"a<b>", `&"c"`, "s<1>", "g&h:"} {
		if strings.Contains(out, bad) {
			t.Errorf("unescaped %q in SVG", bad)
		}
	}
	if !strings.Contains(out, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

// mixCell builds a functional mix result under the given scheduler point.
func mixCell(quantum uint64, policy, asid string, hits, misses uint64) sweep.Result {
	j := sweep.Job{
		Mix: &sweep.Mix{
			Sources: []sweep.Source{sweep.WorkloadSource("galgel"), sweep.WorkloadSource("gcc")},
			Quantum: quantum,
			Policy:  policy,
			ASID:    asid,
		},
		Mech:   dp,
		Config: sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12},
		Refs:   1000,
	}
	return sweep.Result{
		Key:   j.Key(),
		Stats: sim.Stats{Refs: j.Refs, Misses: misses, BufferHits: hits},
	}
}

func TestBuildMixPolicySeries(t *testing.T) {
	// One mix, one quantum, three policies: policy is the only varying
	// facet, so it alone labels the series — bare, like a paper legend.
	results := []sweep.Result{
		mixCell(20_000, "retain", "flush", 70, 100),
		mixCell(20_000, "flush", "flush", 55, 100),
		mixCell(20_000, "per-process", "flush", 80, 100),
	}
	f, err := Build(results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "retain|flush|per-process"; strings.Join(f.Series, "|") != want {
		t.Errorf("series = %v, want %s", f.Series, want)
	}
	if len(f.Groups) != 1 || f.Groups[0].Label != "galgel+gcc" {
		t.Errorf("groups = %+v, want one galgel+gcc group", f.Groups)
	}
}

func TestBuildMixQuantumAndPolicySeries(t *testing.T) {
	results := []sweep.Result{
		mixCell(5_000, "retain", "flush", 60, 100),
		mixCell(5_000, "flush", "flush", 40, 100),
		mixCell(20_000, "retain", "flush", 70, 100),
		mixCell(20_000, "flush", "flush", 55, 100),
	}
	f, err := Build(results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "retain q=5000|flush q=5000|retain q=20000|flush q=20000"; strings.Join(f.Series, "|") != want {
		t.Errorf("series = %v, want %s", f.Series, want)
	}
}
