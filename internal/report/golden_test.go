package report_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tlbprefetch/internal/report"
	"tlbprefetch/internal/sweep"
)

// -update rewrites the golden files from the current output.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenStore sweeps the test grids — a functional mechanism × geometry
// grid plus a decoupled timing grid — with the given worker count. The
// rendered figures must not depend on that count.
func goldenStore(t *testing.T, workers int) *sweep.Store {
	t.Helper()
	store := sweep.NewStore()
	run := func(g sweep.Grid) {
		jobs, err := g.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		r := sweep.Runner{Store: store, Workers: workers}
		if _, _, err := r.Run(jobs); err != nil {
			t.Fatal(err)
		}
	}
	run(sweep.Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []sweep.Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}, {Kind: "RP"}},
		TLBEntries: []int{64, 128},
		Refs:       20000,
	})
	run(sweep.Grid{
		Workloads: []string{"mcf"},
		Mechs:     []sweep.Mech{{Kind: "none"}, {Kind: "RP"}, {Kind: "DP", Rows: 256, Ways: 1, Slots: 2}},
		Refs:      20000,
		TimingAxes: sweep.TimingAxes{
			MissPenalties: []uint64{100, 200},
			MemOpRatios:   []float64{0.5},
			RefsPerCycle:  []uint64{1, 2},
		},
	})
	return store
}

// goldenRender produces every (filter, metric, format) rendering the test
// pins, as name → bytes.
func goldenRender(t *testing.T, store *sweep.Store) map[string]string {
	t.Helper()
	render := func(spec, metric string) *report.Figure {
		f, err := sweep.ParseFilter(spec)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := f.Select(store)
		if err != nil {
			t.Fatal(err)
		}
		fig, err := report.Build(rs, report.Options{Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	accuracy := render("timing=false", "accuracy")
	cpi := render("timing=true", "cpi")
	stalls := render("timing=true,refspercycle=2", "stallcycles")
	return map[string]string{
		"accuracy.txt":   accuracy.Text(),
		"accuracy.csv":   accuracy.CSV(),
		"accuracy.svg":   accuracy.SVG(),
		"cpi.txt":        cpi.Text(),
		"stallcpr.txt":   stalls.Text(),
		"stallcpr.csv":   stalls.CSV(),
		"multipanel.svg": report.SVGDocument(accuracy, cpi),
	}
}

// TestGoldenFigures pins the acceptance contract of the figure engine: the
// rendering of an identical store subset is byte-identical across runs and
// across runner worker counts, and matches the committed golden files.
func TestGoldenFigures(t *testing.T) {
	one := goldenRender(t, goldenStore(t, 1))
	eight := goldenRender(t, goldenStore(t, 8))
	for name, got := range one {
		if eight[name] != got {
			t.Errorf("%s differs between 1 and 8 workers", name)
		}
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run 'go test ./internal/report -run TestGoldenFigures -update' to create)", err)
		}
		if string(want) != got {
			t.Errorf("%s drifted from its golden file (re-run with -update if intended);\ngot:\n%s", name, got)
		}
	}
}

// TestGoldenRenderIsPure re-renders the same store twice and demands
// byte-identical output — the determinism half of the contract without
// touching disk.
func TestGoldenRenderIsPure(t *testing.T) {
	store := goldenStore(t, 4)
	a := goldenRender(t, store)
	b := goldenRender(t, store)
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("%s differs between two renders of one store", name)
		}
	}
}
