// Package prof wires the standard runtime/pprof file profiles into a CLI:
// one call to start, one deferred call to stop, shared by cmd/tlbsim and
// cmd/tlbsweep so the two cannot drift.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles ("" disables either). It returns a
// stop function that finishes the CPU profile and writes the heap profile;
// defer it immediately so the profiles are written even when the command
// later fails. Problems inside stop are reported to stderr rather than
// returned — by then the command's real exit status is already decided.
func Start(tool, cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: closing CPU profile: %v\n", tool, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing heap profile: %v\n", tool, err)
			}
		}
	}, nil
}
