// Package sim wires the pieces of the paper's Figure 1 together: the CPU's
// reference stream feeds a TLB probed in parallel with a prefetch buffer;
// every TLB miss is reported to the attached prefetching mechanism, whose
// predictions are fetched into the buffer.
//
// Two simulators are provided. Simulator is the functional one behind the
// prediction-accuracy results (Figures 7-9, Table 2): it counts events but
// not cycles, like the paper's sim-cache runs. TimingSimulator adds the
// cycle accounting of the paper's Table 3 experiment (sim-outorder runs):
// TLB miss penalty, prefetch-channel contention and in-flight prefetch
// stalls.
package sim

import (
	"fmt"
	"io"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
)

// Config parameterizes a simulation.
type Config struct {
	// TLB geometry. The paper's default: 128 entries, fully associative.
	TLB tlb.Config
	// BufferEntries is the prefetch buffer size b (paper default 16).
	BufferEntries int
	// PageShift is log2 of the page size (paper default 12, 4 KB pages).
	PageShift uint
}

// Default returns the paper's baseline configuration: 128-entry fully
// associative TLB, 16-entry prefetch buffer, 4 KB pages.
func Default() Config {
	return Config{
		TLB:           tlb.Config{Entries: 128},
		BufferEntries: 16,
		PageShift:     12,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.TLB.Validate(); err != nil {
		return err
	}
	if c.BufferEntries <= 0 {
		return fmt.Errorf("sim: BufferEntries must be positive, got %d", c.BufferEntries)
	}
	if c.PageShift == 0 || c.PageShift > 30 {
		return fmt.Errorf("sim: PageShift %d out of range (1..30)", c.PageShift)
	}
	return nil
}

// Stats aggregates the functional counters of one run.
type Stats struct {
	Refs   uint64 // references simulated
	Misses uint64 // TLB misses (the denominator of prediction accuracy)

	BufferHits    uint64 // misses satisfied by the prefetch buffer (numerator)
	DemandFetches uint64 // misses that went to the page table

	PrefetchesRequested uint64 // pages the mechanism asked to prefetch
	PrefetchesIssued    uint64 // actually fetched (not already in TLB/buffer)
	PrefetchDuplicates  uint64 // dropped: already resident in TLB or buffer
	// PrefetchesUnused counts prefetches that never served a miss: those
	// evicted from the buffer before any use, plus those still sitting
	// unused in the buffer at snapshot time (every resident entry is
	// unused by definition — a use removes it).
	PrefetchesUnused uint64

	StateMemOps uint64 // mechanism metadata memory ops (RP pointers)
}

// Accuracy returns the paper's metric: the fraction of TLB misses that hit
// in the prefetch buffer.
func (s Stats) Accuracy() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(s.Misses)
}

// MissRate returns misses per reference (the paper's m_i weights).
func (s Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}

// MemOps returns the total extra memory traffic induced by prefetching:
// metadata maintenance plus prefetch fetches.
func (s Stats) MemOps() uint64 { return s.StateMemOps + s.PrefetchesIssued }

// Simulator is the functional TLB + prefetch-buffer + mechanism pipeline.
type Simulator struct {
	cfg  Config
	tlb  *tlb.TLB
	buf  *tlb.PrefetchBuffer
	pf   prefetch.Prefetcher
	stat Stats

	// scratch is the reusable prediction buffer handed to the mechanism on
	// every miss (see prefetch.Prefetcher.OnMiss); it grows to the largest
	// prediction batch once and is never reallocated afterwards, keeping
	// the per-reference path allocation-free.
	scratch []uint64
}

// New builds a simulator around the given mechanism. A nil mechanism means
// no prefetching (the baseline). It panics on invalid configuration.
func New(cfg Config, pf prefetch.Prefetcher) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if pf == nil {
		pf = prefetch.Nop{}
	}
	return &Simulator{
		cfg: cfg,
		tlb: tlb.New(cfg.TLB),
		buf: tlb.NewPrefetchBuffer(cfg.BufferEntries),
		pf:  pf,
	}
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Prefetcher returns the attached mechanism.
func (s *Simulator) Prefetcher() prefetch.Prefetcher { return s.pf }

// Ref simulates one memory reference.
func (s *Simulator) Ref(pc, vaddr uint64) {
	s.stat.Refs++
	vpn := vaddr >> s.cfg.PageShift
	if s.tlb.Access(vpn) {
		return
	}
	evicted, hasEvicted := s.tlb.Insert(vpn)
	s.miss(pc, vpn, evicted, hasEvicted, s.tlb)
}

// miss runs the back half of the pipeline for one TLB miss: the buffer
// probe, the mechanism callback and the prefetch issue, checking duplicate
// residency against t (the simulator's own TLB, or the canonical TLB when
// driven by a shared-frontend Group).
func (s *Simulator) miss(pc, vpn uint64, evicted uint64, hasEvicted bool, t *tlb.TLB) {
	s.stat.Misses++

	// Probe the prefetch buffer; a hit migrates the entry into the TLB.
	_, bufferHit := s.buf.TakeOut(vpn)
	if bufferHit {
		s.stat.BufferHits++
	} else {
		s.stat.DemandFetches++
	}

	act := s.pf.OnMiss(prefetch.Event{
		VPN:        vpn,
		PC:         pc,
		BufferHit:  bufferHit,
		EvictedVPN: evicted,
		HasEvicted: hasEvicted,
	}, s.scratch[:0])
	s.stat.StateMemOps += uint64(act.StateMemOps)
	for _, p := range act.Prefetches {
		s.stat.PrefetchesRequested++
		if t.Contains(p) || s.buf.Contains(p) {
			s.stat.PrefetchDuplicates++
			continue
		}
		s.buf.Insert(p, 0)
		s.stat.PrefetchesIssued++
	}
	if cap(act.Prefetches) > cap(s.scratch) {
		s.scratch = act.Prefetches
	}
}

// SwapPrefetcher replaces the attached mechanism without touching TLB,
// buffer or counters — the multiprogramming per-process policy's context
// switch, where each process's prediction tables are saved and restored
// around one shared pipeline. A nil mechanism installs the no-prefetching
// baseline.
func (s *Simulator) SwapPrefetcher(pf prefetch.Prefetcher) {
	if pf == nil {
		pf = prefetch.Nop{}
	}
	s.pf = pf
}

// RefBatch simulates a chunk of references. It is exactly len(refs) calls
// to Ref without the per-reference call overhead: the hot TLB-hit path
// runs inline over the slice.
func (s *Simulator) RefBatch(refs []trace.Ref) {
	shift := s.cfg.PageShift
	t := s.tlb
	for i := range refs {
		s.stat.Refs++
		vpn := refs[i].VAddr >> shift
		if t.Access(vpn) {
			continue
		}
		evicted, hasEvicted := t.Insert(vpn)
		s.miss(refs[i].PC, vpn, evicted, hasEvicted, t)
	}
}

// runBatchChunk is the chunk size Run and RunBatch stream through: large
// enough to amortize the batch call, small enough that the chunk stays in
// cache while the simulator walks it.
const runBatchChunk = 4096

// Run drains a trace reader through the simulator. Readers with a native
// batch decode path (binary trace files, in-memory slices) are consumed in
// chunks automatically.
func (s *Simulator) Run(src trace.Reader) error {
	return s.RunBatch(trace.AsBatch(src))
}

// RunBatch drains a batch reader through the simulator in cache-sized
// chunks. The simulated stream is identical to Run over the same records.
func (s *Simulator) RunBatch(src trace.BatchReader) error {
	var buf [runBatchChunk]trace.Ref
	for {
		n, err := src.ReadBatch(buf[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.RefBatch(buf[:n])
	}
}

// Stats returns a snapshot of the counters, with the unused-prefetch count
// finalized from the buffer: evicted-unused plus the entries still
// resident (and therefore never used) at snapshot time. The count covers
// the current statistics window — prefetches issued before a ResetStats
// are excluded, matching the other counters.
func (s *Simulator) Stats() Stats {
	st := s.stat
	st.PrefetchesUnused = s.buf.UnusedInEpoch()
	return st
}

// TLB exposes the TLB (tests, invariant checks).
func (s *Simulator) TLB() *tlb.TLB { return s.tlb }

// Buffer exposes the prefetch buffer (tests).
func (s *Simulator) Buffer() *tlb.PrefetchBuffer { return s.buf }

// Reset returns the simulator to its initial state, including the attached
// mechanism.
func (s *Simulator) Reset() {
	s.tlb.Reset()
	s.buf.Reset()
	s.pf.Reset()
	s.stat = Stats{}
}

// ResetStats clears the counters while keeping all simulation state (TLB,
// buffer, mechanism tables) warm — used to measure steady-state behaviour
// after a warmup period, the counterpart of the paper's 2B-instruction
// fast-forward. The buffer starts a new statistics epoch so warmup-era
// prefetches do not leak into the measurement window's unused count.
func (s *Simulator) ResetStats() {
	s.stat = Stats{}
	s.buf.BeginEpoch()
}
