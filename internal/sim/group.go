package sim

import (
	"io"

	"tlbprefetch/internal/trace"
)

// Group fans one reference stream out to many simulators, so that the
// experiment harness can evaluate every mechanism configuration of a figure
// in a single pass over the (regenerated) workload. Each member keeps its
// own TLB and buffer; because fills always happen at miss time, members with
// identical TLB geometry see identical miss streams, exactly as if run
// separately.
type Group struct {
	members []*Simulator
}

// NewGroup builds a fan-out over the given simulators.
func NewGroup(members ...*Simulator) *Group {
	return &Group{members: members}
}

// Add appends a member.
func (g *Group) Add(s *Simulator) { g.members = append(g.members, s) }

// Members returns the member simulators in insertion order.
func (g *Group) Members() []*Simulator { return g.members }

// Ref delivers one reference to every member.
func (g *Group) Ref(pc, vaddr uint64) {
	for _, m := range g.members {
		m.Ref(pc, vaddr)
	}
}

// Run drains a trace reader through the group.
func (g *Group) Run(src trace.Reader) error {
	for {
		ref, err := src.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		g.Ref(ref.PC, ref.VAddr)
	}
}
