package sim

import (
	"io"

	"tlbprefetch/internal/trace"
)

// Group fans one reference stream out to many simulators, so that the
// experiment harness can evaluate every mechanism configuration of a figure
// in a single pass over the (regenerated) workload.
//
// Because fills always happen at miss time, members with identical TLB
// geometry see identical TLB contents and identical miss streams, exactly
// as if run separately. Group exploits that: when every member shares the
// same TLB geometry and page size (the common case — experiments.RunApp
// runs 21 mechanism configurations against one TLB configuration), it runs
// a single canonical TLB as a shared frontend. Each reference probes that
// one TLB once, and only misses fan out to the members' private
// buffer+mechanism back halves — collapsing N-way redundant probe work
// into one probe while producing bit-identical per-member statistics
// (pinned by TestGroupSharedFrontendEquivalence).
//
// Members with heterogeneous geometry fall back to full independent
// fan-out transparently.
type Group struct {
	members []*Simulator

	prepared bool
	shared   bool
	started  bool // references have been delivered
}

// NewGroup builds a fan-out over the given simulators.
func NewGroup(members ...*Simulator) *Group {
	return &Group{members: members}
}

// Add appends a member. Adding to a group that has already delivered
// references in shared-frontend mode is a programming error: the existing
// members' TLB state lives only in the canonical frontend, so the
// independent fan-out the new member would force cannot reproduce it.
// (Adding to a started independent group is fine — the newcomer simply
// starts cold, as it always did.)
func (g *Group) Add(s *Simulator) {
	if g.started && g.shared {
		panic("sim: cannot Add to a Group that already ran with a shared frontend")
	}
	g.members = append(g.members, s)
	g.prepared = false
}

// Members returns the member simulators in insertion order.
func (g *Group) Members() []*Simulator { return g.members }

// SharedFrontend reports whether the group is (or would be, before the
// first reference) running one canonical TLB for all members.
func (g *Group) SharedFrontend() bool {
	if !g.prepared {
		g.prepare()
	}
	return g.shared
}

// prepare decides the fan-out strategy. The shared frontend is only safe
// when all members have the same TLB geometry and page size AND are still
// pristine — a member that already simulated references on its own has TLB
// state the canonical TLB would not reproduce.
func (g *Group) prepare() {
	g.prepared = true
	g.shared = false
	if len(g.members) < 2 {
		return
	}
	first := g.members[0]
	for _, m := range g.members {
		if m.cfg.TLB != first.cfg.TLB || m.cfg.PageShift != first.cfg.PageShift {
			return
		}
		if m.stat.Refs != 0 || m.tlb.Len() != 0 {
			return
		}
	}
	g.shared = true
}

// Ref delivers one reference to every member.
func (g *Group) Ref(pc, vaddr uint64) {
	if !g.prepared {
		g.prepare()
	}
	g.started = true
	if !g.shared {
		for _, m := range g.members {
			m.Ref(pc, vaddr)
		}
		return
	}
	// Shared frontend: one canonical probe, misses fan out.
	front := g.members[0]
	vpn := vaddr >> front.cfg.PageShift
	if front.tlb.Access(vpn) {
		for _, m := range g.members {
			m.stat.Refs++
		}
		return
	}
	evicted, hasEvicted := front.tlb.Insert(vpn)
	for _, m := range g.members {
		m.stat.Refs++
		m.miss(pc, vpn, evicted, hasEvicted, front.tlb)
	}
}

// RefBatch delivers a chunk of references to every member — exactly
// len(refs) calls to Ref with the strategy decision and canonical-TLB
// loads hoisted out of the loop.
func (g *Group) RefBatch(refs []trace.Ref) {
	if len(refs) == 0 {
		return
	}
	if !g.prepared {
		g.prepare()
	}
	g.started = true
	if !g.shared {
		for _, m := range g.members {
			m.RefBatch(refs)
		}
		return
	}
	front := g.members[0]
	shift := front.cfg.PageShift
	t := front.tlb
	for i := range refs {
		vpn := refs[i].VAddr >> shift
		if t.Access(vpn) {
			for _, m := range g.members {
				m.stat.Refs++
			}
			continue
		}
		evicted, hasEvicted := t.Insert(vpn)
		for _, m := range g.members {
			m.stat.Refs++
			m.miss(refs[i].PC, vpn, evicted, hasEvicted, t)
		}
	}
}

// Run drains a trace reader through the group. Readers with a native batch
// decode path are consumed in chunks automatically.
func (g *Group) Run(src trace.Reader) error {
	return g.RunBatch(trace.AsBatch(src))
}

// RunBatch drains a batch reader through the group in cache-sized chunks.
// The simulated stream is identical to Run over the same records.
func (g *Group) RunBatch(src trace.BatchReader) error {
	var buf [runBatchChunk]trace.Ref
	for {
		n, err := src.ReadBatch(buf[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		g.RefBatch(buf[:n])
	}
}
