package sim

import (
	"testing"
	"testing/quick"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
)

func cfgSmall() Config {
	return Config{TLB: tlb.Config{Entries: 4}, BufferEntries: 2, PageShift: 12}
}

// pageRefs converts page numbers to references (pc=0, addresses at page
// granularity for PageShift 12).
func pageRefs(pages ...uint64) []trace.Ref {
	refs := make([]trace.Ref, len(pages))
	for i, p := range pages {
		refs[i] = trace.Ref{VAddr: p << 12}
	}
	return refs
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{TLB: tlb.Config{Entries: 0}, BufferEntries: 16, PageShift: 12},
		{TLB: tlb.Config{Entries: 128}, BufferEntries: 0, PageShift: 12},
		{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 0},
		{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 31},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted invalid %+v", c)
		}
	}
}

func TestBaselineCounting(t *testing.T) {
	s := New(cfgSmall(), nil)
	// 4 distinct pages, then re-touch them (all hits), then a 5th page.
	if err := s.Run(trace.NewSliceReader(pageRefs(1, 2, 3, 4, 1, 2, 3, 4, 5))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Refs != 9 || st.Misses != 5 || st.BufferHits != 0 || st.DemandFetches != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Accuracy() != 0 {
		t.Fatal("baseline accuracy must be 0")
	}
	if got := st.MissRate(); got != 5.0/9.0 {
		t.Fatalf("miss rate = %v", got)
	}
}

func TestSequentialPrefetchPipeline(t *testing.T) {
	// SP on a pure sequential scan: every miss after the first hits the
	// prefetch buffer.
	s := New(cfgSmall(), prefetch.NewSequential(true))
	var pages []uint64
	for p := uint64(100); p < 120; p++ {
		pages = append(pages, p)
	}
	if err := s.Run(trace.NewSliceReader(pageRefs(pages...))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 20 {
		t.Fatalf("misses = %d, want 20 (cold scan)", st.Misses)
	}
	if st.BufferHits != 19 {
		t.Fatalf("buffer hits = %d, want 19", st.BufferHits)
	}
	if got := st.Accuracy(); got != 19.0/20.0 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestDistancePipelinePaperExample(t *testing.T) {
	// Pages 1,2,4,5,7,8 with a TLB big enough that every reference misses:
	// DP prefetches pages 7 and 8 ahead of use -> accuracy 2/6.
	s := New(Config{TLB: tlb.Config{Entries: 64}, BufferEntries: 16, PageShift: 12},
		core.NewDistance(256, 1, 2))
	if err := s.Run(trace.NewSliceReader(pageRefs(1, 2, 4, 5, 7, 8))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 6 {
		t.Fatalf("misses = %d, want 6", st.Misses)
	}
	if st.BufferHits != 2 {
		t.Fatalf("buffer hits = %d, want 2 (pages 7 and 8)", st.BufferHits)
	}
}

func TestPrefetchDuplicatesDropped(t *testing.T) {
	// SP prefetches vpn+1; if that page is already TLB-resident the request
	// must be dropped and counted.
	s := New(cfgSmall(), prefetch.NewSequential(true))
	// Page 6 enters the TLB first; then a miss on 5 requests 6 (duplicate).
	if err := s.Run(trace.NewSliceReader(pageRefs(6, 5))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PrefetchDuplicates == 0 {
		t.Fatalf("duplicate prefetch not counted: %+v", st)
	}
	// 6 must not be in the buffer.
	if s.Buffer().Contains(6) {
		t.Fatal("TLB-resident page was prefetched into the buffer")
	}
}

func TestBufferHitMigratesToTLB(t *testing.T) {
	s := New(cfgSmall(), prefetch.NewSequential(true))
	s.Ref(0, 10<<12) // miss, prefetches 11
	if !s.Buffer().Contains(11) {
		t.Fatal("prefetch missing from buffer")
	}
	s.Ref(0, 11<<12) // miss, buffer hit, migrate
	if s.Buffer().Contains(11) {
		t.Fatal("entry not removed from buffer on hit")
	}
	if !s.TLB().Contains(11) {
		t.Fatal("entry not migrated into TLB")
	}
	st := s.Stats()
	if st.BufferHits != 1 {
		t.Fatalf("buffer hits = %d", st.BufferHits)
	}
}

func TestStateMemOpsSurface(t *testing.T) {
	// RP's pointer manipulations must be visible in the stats.
	s := New(Config{TLB: tlb.Config{Entries: 2}, BufferEntries: 4, PageShift: 12},
		prefetch.NewRecency())
	if err := s.Run(trace.NewSliceReader(pageRefs(1, 2, 3, 4, 1, 2, 3, 4))); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.StateMemOps == 0 {
		t.Fatalf("RP reported no pointer traffic: %+v", st)
	}
}

// recorder wraps a mechanism and records the miss stream it observes.
type recorder struct {
	inner  prefetch.Prefetcher
	misses []uint64
}

func (r *recorder) Name() string { return r.inner.Name() }
func (r *recorder) OnMiss(ev prefetch.Event, dst []uint64) prefetch.Action {
	r.misses = append(r.misses, ev.VPN)
	return r.inner.OnMiss(ev, dst)
}
func (r *recorder) Reset() { r.inner.Reset() }

// Property (paper §2): "Prefetching can thus not increase the miss rates of
// the original TLB" — in fact the miss *stream* is identical with and
// without prefetching, because fills enter the TLB at the same points either
// way. Verified for every mechanism against the no-prefetch baseline.
func TestQuickMissStreamInvariance(t *testing.T) {
	mechanisms := map[string]func() prefetch.Prefetcher{
		"SP":  func() prefetch.Prefetcher { return prefetch.NewSequential(true) },
		"ASP": func() prefetch.Prefetcher { return prefetch.NewASP(64, 1) },
		"MP":  func() prefetch.Prefetcher { return prefetch.NewMarkov(64, 1, 2) },
		"RP":  func() prefetch.Prefetcher { return prefetch.NewRecency() },
		"DP":  func() prefetch.Prefetcher { return core.NewDistance(64, 1, 2) },
	}
	for name, mk := range mechanisms {
		mk := mk
		f := func(raw []uint16, pcsRaw []uint8) bool {
			base := &recorder{inner: prefetch.Nop{}}
			mech := &recorder{inner: mk()}
			s1 := New(cfgSmall(), base)
			s2 := New(cfgSmall(), mech)
			for i, r := range raw {
				pc := uint64(0)
				if len(pcsRaw) > 0 {
					pc = uint64(pcsRaw[i%len(pcsRaw)])
				}
				va := uint64(r%256) << 12
				s1.Ref(pc, va)
				s2.Ref(pc, va)
			}
			if len(base.misses) != len(mech.misses) {
				return false
			}
			for i := range base.misses {
				if base.misses[i] != mech.misses[i] {
					return false
				}
			}
			return s1.Stats().Misses == s2.Stats().Misses
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: accuracy is always in [0,1] and BufferHits+DemandFetches==Misses.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(cfgSmall(), core.NewDistance(64, 1, 2))
		for _, r := range raw {
			s.Ref(0, uint64(r%512)<<12)
		}
		st := s.Stats()
		if st.BufferHits+st.DemandFetches != st.Misses {
			return false
		}
		a := st.Accuracy()
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorReset(t *testing.T) {
	s := New(cfgSmall(), core.NewDistance(64, 1, 2))
	s.Run(trace.NewSliceReader(pageRefs(1, 2, 3, 4, 5, 6)))
	s.Reset()
	st := s.Stats()
	if st.Refs != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
	if s.TLB().Len() != 0 || s.Buffer().Len() != 0 {
		t.Fatal("structures not cleared")
	}
}

func TestGroupFanout(t *testing.T) {
	s1 := New(cfgSmall(), prefetch.NewSequential(true))
	s2 := New(cfgSmall(), core.NewDistance(64, 1, 2))
	g := NewGroup(s1)
	g.Add(s2)
	if err := g.Run(trace.NewSliceReader(pageRefs(1, 2, 3, 4, 5))); err != nil {
		t.Fatal(err)
	}
	if len(g.Members()) != 2 {
		t.Fatal("member count")
	}
	// Both saw all references and the identical miss stream.
	st1, st2 := s1.Stats(), s2.Stats()
	if st1.Refs != 5 || st2.Refs != 5 {
		t.Fatalf("refs = %d, %d", st1.Refs, st2.Refs)
	}
	if st1.Misses != st2.Misses {
		t.Fatalf("miss streams diverged: %d vs %d", st1.Misses, st2.Misses)
	}
}

func TestPageShiftGranularity(t *testing.T) {
	// Two addresses within one 4K page are one page; with 8K pages, two
	// neighbouring 4K pages fold into one.
	s4k := New(Config{TLB: tlb.Config{Entries: 4}, BufferEntries: 2, PageShift: 12}, nil)
	s4k.Ref(0, 0x1000)
	s4k.Ref(0, 0x1fff) // same page -> hit
	s4k.Ref(0, 0x2000) // next page -> miss
	if st := s4k.Stats(); st.Misses != 2 {
		t.Fatalf("4K misses = %d, want 2", st.Misses)
	}
	s8k := New(Config{TLB: tlb.Config{Entries: 4}, BufferEntries: 2, PageShift: 13}, nil)
	s8k.Ref(0, 0x2000)
	s8k.Ref(0, 0x3fff) // same 8K page (0x2000..0x3fff) -> hit
	if st := s8k.Stats(); st.Misses != 1 {
		t.Fatalf("8K misses = %d, want 1", st.Misses)
	}
}
