package sim

import (
	"fmt"
	"io"

	"tlbprefetch/internal/memsys"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
)

// TimingConfig extends Config with the cycle model of the paper's Table 3
// experiment.
type TimingConfig struct {
	Config
	// MissPenalty is the constant TLB miss cost for a demand fetch
	// (paper: 100 cycles).
	MissPenalty uint64
	// BufferHitPenalty is the portion of the miss cost a prefetch-buffer
	// hit still pays — the pipeline restart and TLB fill, everything but
	// the page table walk. The paper's Table 3 deltas (DP saves 1-14%
	// despite 0.5-0.9 accuracy) imply a substantial residual cost per
	// satisfied miss; 65 cycles lands the no-prefetch -> DP deltas in the
	// published band.
	BufferHitPenalty uint64
	// MemOpLatency is the cost of each prefetch-related memory operation —
	// pointer manipulation or prefetch fetch (paper: 50 cycles).
	MemOpLatency uint64
	// MemOpOccupancy is how long each operation blocks the prefetch
	// channel before the next may start. 0 means fully serialized
	// (= MemOpLatency, one outstanding request); smaller values model the
	// pipelined memory interface of an out-of-order core.
	MemOpOccupancy uint64
	// CyclesPerRef is the base cost of a reference with a TLB hit, and
	// RefsPerCycle lets several references retire per cycle (0 means 1).
	// The paper runs a 4-issue out-of-order core, which both overlaps
	// instruction work (RefsPerCycle > 1) and pipelines its memory
	// interface (MemOpOccupancy < MemOpLatency); the Table 3 calibration
	// in experiments.Table3 picks the values that land the no-prefetch
	// baseline and the RP/DP deltas in the published band.
	CyclesPerRef uint64
	RefsPerCycle uint64
	// RPSkipWhenBusy enables the paper's benefit-of-the-doubt rule for RP:
	// when the prefetch channel is still busy at miss time, RP performs
	// only its stack update (4 pointer ops) and skips the two neighbour
	// fetches. Mechanisms other than RP are unaffected.
	RPSkipWhenBusy bool
}

// DefaultTiming returns the paper's Table 3 constants on top of the default
// functional configuration.
func DefaultTiming() TimingConfig {
	return TimingConfig{
		Config:           Default(),
		MissPenalty:      100,
		BufferHitPenalty: 65,
		MemOpLatency:     50,
		MemOpOccupancy:   12,
		CyclesPerRef:     1,
		RefsPerCycle:     2,
		RPSkipWhenBusy:   true,
	}
}

// ScaledTiming returns the default cycle model re-calibrated to a
// different TLB miss penalty, scaling the costs defined as fractions of a
// page-table walk: the prefetch memory-op latency keeps the paper's 1:2
// ratio, the buffer-hit residual its 65%, and the channel occupancy its
// pipelining ratio — so a satisfied miss stays cheaper than an
// unmitigated one at every point of a latency-sensitivity axis.
func ScaledTiming(missPenalty uint64) TimingConfig {
	c := DefaultTiming()
	ref := c.MissPenalty
	c.MissPenalty = missPenalty
	c.MemOpLatency = missPenalty * c.MemOpLatency / ref
	c.BufferHitPenalty = missPenalty * c.BufferHitPenalty / ref
	c.MemOpOccupancy = missPenalty * c.MemOpOccupancy / ref
	if c.MemOpLatency == 0 {
		c.MemOpLatency = 1
	}
	if c.MemOpOccupancy == 0 {
		c.MemOpOccupancy = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c TimingConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.MissPenalty == 0 || c.MemOpLatency == 0 || c.CyclesPerRef == 0 {
		return fmt.Errorf("sim: timing constants must be positive (penalty=%d, memop=%d, perRef=%d)",
			c.MissPenalty, c.MemOpLatency, c.CyclesPerRef)
	}
	if c.MemOpOccupancy > c.MemOpLatency {
		return fmt.Errorf("sim: MemOpOccupancy %d exceeds MemOpLatency %d (an operation cannot block the channel longer than it takes)",
			c.MemOpOccupancy, c.MemOpLatency)
	}
	return nil
}

// TimingStats extends Stats with cycle accounting.
type TimingStats struct {
	Stats
	Cycles       uint64 // total execution cycles
	StallCycles  uint64 // cycles stalled on TLB misses (demand + in-flight waits)
	InFlightHits uint64 // buffer hits that had to wait for the prefetch to land
	SkippedPref  uint64 // prefetch batches skipped by the RP busy rule
}

// CPI returns cycles per reference.
func (s TimingStats) CPI() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Refs)
}

// TimingSimulator adds the cycle model to the functional pipeline. The
// prefetch channel serializes metadata and prefetch operations; demand
// fetches cost the fixed miss penalty and do not contend with prefetch
// traffic (the paper's RP-favouring assumption).
type TimingSimulator struct {
	cfg  TimingConfig
	tlb  *tlb.TLB
	buf  *tlb.PrefetchBuffer
	pf   prefetch.Prefetcher
	ch   *memsys.Channel
	now  uint64
	stat TimingStats

	refAccum uint64 // references since the last base-cycle charge
	isRP     bool
	issuable []bool   // per-miss scratch, sized to the prefetch batch
	scratch  []uint64 // reusable prediction buffer handed to the mechanism
}

// NewTiming builds a timing simulator. A nil mechanism is the
// no-prefetching baseline.
func NewTiming(cfg TimingConfig, pf prefetch.Prefetcher) *TimingSimulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if pf == nil {
		pf = prefetch.Nop{}
	}
	occ := cfg.MemOpOccupancy
	if occ == 0 {
		occ = cfg.MemOpLatency
	}
	return &TimingSimulator{
		cfg:  cfg,
		tlb:  tlb.New(cfg.TLB),
		buf:  tlb.NewPrefetchBuffer(cfg.BufferEntries),
		pf:   pf,
		ch:   memsys.NewPipelinedChannel(cfg.MemOpLatency, occ),
		isRP: pf.Name() == "RP",
	}
}

// Ref simulates one memory reference and advances the clock.
func (s *TimingSimulator) Ref(pc, vaddr uint64) {
	rpc := s.cfg.RefsPerCycle
	if rpc == 0 {
		rpc = 1
	}
	s.refAccum++
	if s.refAccum >= rpc {
		s.now += s.cfg.CyclesPerRef
		s.refAccum = 0
	}
	s.stat.Refs++
	vpn := vaddr >> s.cfg.PageShift
	if s.tlb.Access(vpn) {
		return
	}
	s.stat.Misses++

	readyAt, bufferHit := s.buf.TakeOut(vpn)
	if bufferHit {
		s.stat.BufferHits++
		// A hit stalls for whichever is longer: the in-flight wait until
		// the prefetch actually arrives ("it is made to stall until the
		// entry arrives"), or the residual fill/restart cost — the two
		// overlap in the pipeline, so the hit pays their maximum.
		stall := s.cfg.BufferHitPenalty
		if readyAt > s.now && readyAt-s.now > stall {
			stall = readyAt - s.now
			s.stat.InFlightHits++
		}
		s.stat.StallCycles += stall
		s.now += stall
	} else {
		s.stat.DemandFetches++
		s.stat.StallCycles += s.cfg.MissPenalty
		s.now += s.cfg.MissPenalty
	}

	evicted, hasEvicted := s.tlb.Insert(vpn)
	act := s.pf.OnMiss(prefetch.Event{
		VPN:        vpn,
		PC:         pc,
		BufferHit:  bufferHit,
		EvictedVPN: evicted,
		HasEvicted: hasEvicted,
	}, s.scratch[:0])
	if cap(act.Prefetches) > cap(s.scratch) {
		s.scratch = act.Prefetches
	}

	// RP's skip rule: when earlier prefetch traffic is still in flight,
	// update the stack but do not fetch the neighbours ("there would be
	// only 4 memory transactions instead of 6").
	prefetches := act.Prefetches
	if s.isRP && s.cfg.RPSkipWhenBusy && len(prefetches) > 0 && s.ch.Busy(s.now) {
		prefetches = nil
		s.stat.SkippedPref++
	}

	// Metadata operations occupy the channel first (RP updates the stack
	// before prefetching), then the prefetch fetches complete one by one.
	// Issuability is decided once, up front: an insertion below may evict
	// a buffer entry that a later prefetch in this batch duplicates, and
	// that later prefetch must still be treated as the duplicate it was at
	// issue time.
	s.stat.StateMemOps += uint64(act.StateMemOps)
	if cap(s.issuable) < len(prefetches) {
		s.issuable = make([]bool, len(prefetches))
	}
	issuable := s.issuable[:len(prefetches)]
	for i := range issuable {
		issuable[i] = false
	}
	n := 0
	for i, p := range prefetches {
		if !s.tlb.Contains(p) && !s.buf.Contains(p) {
			issuable[i] = true
			n++
		}
	}
	after := s.ch.Issue(s.now, act.StateMemOps)
	completions := s.ch.IssueEach(after, n)

	ci := 0
	for i, p := range prefetches {
		s.stat.PrefetchesRequested++
		if !issuable[i] {
			s.stat.PrefetchDuplicates++
			continue
		}
		s.buf.Insert(p, completions[ci])
		ci++
		s.stat.PrefetchesIssued++
	}
}

// Run drains a trace reader.
func (s *TimingSimulator) Run(src trace.Reader) error {
	for {
		ref, err := src.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.Ref(ref.PC, ref.VAddr)
	}
}

// Stats returns a snapshot including the cycle counters. As in the
// functional simulator, PrefetchesUnused includes the entries still
// resident (never used) in the buffer at snapshot time.
func (s *TimingSimulator) Stats() TimingStats {
	st := s.stat
	st.Cycles = s.now
	st.PrefetchesUnused = s.buf.UnusedInEpoch()
	return st
}

// Now returns the current cycle.
func (s *TimingSimulator) Now() uint64 { return s.now }

// Reset returns the simulator (and mechanism) to the initial state.
func (s *TimingSimulator) Reset() {
	s.tlb.Reset()
	s.buf.Reset()
	s.pf.Reset()
	s.ch.Reset()
	s.now = 0
	s.refAccum = 0
	s.stat = TimingStats{}
}
