package sim

import (
	"testing"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
)

func timingCfg() TimingConfig {
	return TimingConfig{
		Config:         Config{TLB: tlb.Config{Entries: 4}, BufferEntries: 4, PageShift: 12},
		MissPenalty:    100,
		MemOpLatency:   50,
		CyclesPerRef:   1,
		RPSkipWhenBusy: true,
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DefaultTiming().Validate(); err != nil {
		t.Fatal(err)
	}
	c := timingCfg()
	c.MissPenalty = 0
	if err := c.Validate(); err == nil {
		t.Fatal("accepted zero miss penalty")
	}
}

func TestTimingBaselineCycles(t *testing.T) {
	// No prefetching: every distinct page costs 1 (ref) + 100 (penalty);
	// hits cost 1.
	s := NewTiming(timingCfg(), nil)
	s.Run(trace.NewSliceReader(pageRefs(1, 2, 3, 1, 2, 3)))
	st := s.Stats()
	// 6 refs, 3 misses: 6*1 + 3*100.
	if st.Cycles != 306 {
		t.Fatalf("cycles = %d, want 306", st.Cycles)
	}
	if st.StallCycles != 300 {
		t.Fatalf("stalls = %d, want 300", st.StallCycles)
	}
}

func TestTimingArrivedPrefetchIsFree(t *testing.T) {
	// SP prefetches page+1 (completes 50 cycles later). If the next page is
	// referenced after the prefetch lands, the miss costs no stall.
	s := NewTiming(timingCfg(), prefetch.NewSequential(true))
	s.Ref(0, 10<<12) // t=1; demand miss -> t=101; prefetch 11 completes at 151
	// Burn 60 cycles of hits on page 10.
	for i := 0; i < 60; i++ {
		s.Ref(0, 10<<12)
	}
	// t=161 now; the prefetch (ready at 151) has landed.
	before := s.Stats().StallCycles
	s.Ref(0, 11<<12)
	after := s.Stats()
	if after.StallCycles != before {
		t.Fatalf("arrived prefetch still stalled: %d -> %d", before, after.StallCycles)
	}
	if after.BufferHits != 1 || after.InFlightHits != 0 {
		t.Fatalf("stats = %+v", after)
	}
}

func TestTimingInFlightPrefetchStalls(t *testing.T) {
	// Reference the prefetched page immediately: the prefetch is still in
	// flight, so the CPU stalls until it arrives (less than a full demand
	// penalty would cost in this configuration if the wait is shorter).
	s := NewTiming(timingCfg(), prefetch.NewSequential(true))
	s.Ref(0, 10<<12) // t=1 ref; demand: t=101; prefetch 11 ready at 151
	s.Ref(0, 11<<12) // t=102; in-flight: stall to 151
	st := s.Stats()
	if st.InFlightHits != 1 {
		t.Fatalf("in-flight hits = %d, want 1", st.InFlightHits)
	}
	// Stalls: 100 (demand) + 49 (wait from 102 to 151).
	if st.StallCycles != 149 {
		t.Fatalf("stalls = %d, want 149", st.StallCycles)
	}
}

func TestTimingRPChargesPointerOps(t *testing.T) {
	s := NewTiming(timingCfg(), prefetch.NewRecency())
	// Cycle 5 pages through a 4-entry TLB to force evictions and stack
	// maintenance.
	var refs []trace.Ref
	for round := 0; round < 3; round++ {
		for p := uint64(1); p <= 5; p++ {
			refs = append(refs, trace.Ref{VAddr: p << 12})
		}
	}
	s.Run(trace.NewSliceReader(refs))
	st := s.Stats()
	if st.StateMemOps == 0 {
		t.Fatal("RP pointer traffic not charged")
	}
	baseline := NewTiming(timingCfg(), nil)
	baseline.Run(trace.NewSliceReader(refs))
	// RP must not be cheaper than baseline here: its prefetches all go to
	// pages about to be referenced anyway, but pointer ops occupy the
	// channel; with this adversarial cyclic pattern accuracy is low.
	if st.Misses != baseline.Stats().Misses {
		t.Fatalf("miss invariance broken: %d vs %d", st.Misses, baseline.Stats().Misses)
	}
}

func TestTimingRPSkipRule(t *testing.T) {
	// Two misses in quick succession: the second finds the channel busy
	// with the first's traffic, so RP skips its neighbour fetches.
	cfg := timingCfg()
	s := NewTiming(cfg, prefetch.NewRecency())
	// Alternate two different visit orders over 8 pages (TLB holds 4), so
	// RP's neighbour predictions are mostly wrong: demand misses (100
	// cycles apart) then arrive while the channel still holds the previous
	// miss's 4 pointer ops + fetches (200+ cycles).
	orders := [2][]uint64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{8, 3, 6, 1, 4, 7, 2, 5},
	}
	var refs []trace.Ref
	for round := 0; round < 6; round++ {
		for _, p := range orders[round%2] {
			refs = append(refs, trace.Ref{VAddr: p << 12})
		}
	}
	s.Run(trace.NewSliceReader(refs))
	if st := s.Stats(); st.SkippedPref == 0 {
		t.Fatalf("back-to-back misses never tripped the skip rule: %+v", st)
	}

	// With the rule disabled the skips disappear.
	cfg.RPSkipWhenBusy = false
	s2 := NewTiming(cfg, prefetch.NewRecency())
	s2.Run(trace.NewSliceReader(refs))
	if st := s2.Stats(); st.SkippedPref != 0 {
		t.Fatalf("skip rule fired while disabled: %+v", st)
	}
}

func TestTimingDPNoStateTraffic(t *testing.T) {
	s := NewTiming(timingCfg(), core.NewDistance(256, 1, 2))
	var refs []trace.Ref
	for p := uint64(0); p < 100; p++ {
		refs = append(refs, trace.Ref{VAddr: p << 12})
	}
	s.Run(trace.NewSliceReader(refs))
	st := s.Stats()
	if st.StateMemOps != 0 {
		t.Fatalf("DP incurred state traffic: %d", st.StateMemOps)
	}
	if st.PrefetchesIssued == 0 {
		t.Fatal("DP never prefetched on a sequential scan")
	}
}

func TestTimingCPI(t *testing.T) {
	s := NewTiming(timingCfg(), nil)
	s.Run(trace.NewSliceReader(pageRefs(1, 1, 1, 1)))
	st := s.Stats()
	// 4 refs, 1 miss: cycles = 4 + 100 = 104; CPI = 26.
	if got := st.CPI(); got != 26 {
		t.Fatalf("CPI = %v, want 26", got)
	}
	var empty TimingStats
	if empty.CPI() != 0 {
		t.Fatal("CPI of empty stats must be 0")
	}
}

func TestTimingFunctionalAgreement(t *testing.T) {
	// The timing simulator must produce the same functional counts (refs,
	// misses) as the functional simulator; accuracy may differ only through
	// the RP skip rule, so compare with a mechanism that has no state ops.
	var refs []trace.Ref
	for i := 0; i < 500; i++ {
		p := uint64(i*7%97) + uint64(i%3)
		refs = append(refs, trace.Ref{VAddr: p << 12})
	}
	f := New(cfgSmall(), core.NewDistance(64, 1, 2))
	f.Run(trace.NewSliceReader(refs))
	tm := NewTiming(TimingConfig{
		Config:       cfgSmall(),
		MissPenalty:  100,
		MemOpLatency: 50,
		CyclesPerRef: 1,
	}, core.NewDistance(64, 1, 2))
	tm.Run(trace.NewSliceReader(refs))
	fs, ts := f.Stats(), tm.Stats()
	if fs.Refs != ts.Refs || fs.Misses != ts.Misses || fs.BufferHits != ts.BufferHits {
		t.Fatalf("functional %+v vs timing %+v", fs, ts.Stats)
	}
}

func TestTimingReset(t *testing.T) {
	s := NewTiming(timingCfg(), core.NewDistance(64, 1, 2))
	s.Run(trace.NewSliceReader(pageRefs(1, 2, 3, 4, 5)))
	s.Reset()
	st := s.Stats()
	if st.Cycles != 0 || st.Refs != 0 || s.Now() != 0 {
		t.Fatalf("reset left state: %+v", st)
	}
}
