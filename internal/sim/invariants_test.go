package sim

import (
	"testing"
	"testing/quick"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
)

// Property: throughout a simulation with RP, the page-table LRU stack stays
// a consistent doubly-linked list and never contains a TLB-resident page —
// the structural contract between the TLB and RP's eviction-driven pushes.
func TestQuickRPStackTLBDisjoint(t *testing.T) {
	f := func(raw []uint16) bool {
		rp := prefetch.NewRecency()
		s := New(Config{TLB: tlb.Config{Entries: 8, Ways: 2}, BufferEntries: 4, PageShift: 12}, rp)
		for i, r := range raw {
			s.Ref(uint64(i%7), uint64(r%128)<<12)
			if i%16 == 0 {
				if ok, _ := rp.PageTable().CheckInvariants(); !ok {
					return false
				}
				for _, vpn := range rp.PageTable().StackWalk() {
					if s.TLB().Contains(vpn) {
						return false
					}
				}
			}
		}
		ok, _ := rp.PageTable().CheckInvariants()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// DP distances can be negative from tiny page numbers; the computed
// prefetch target wraps around uint64. The pipeline must treat such targets
// as ordinary (never-hit) buffer entries without misbehaving.
func TestDPNegativeWraparoundHarmless(t *testing.T) {
	s := New(Config{TLB: tlb.Config{Entries: 4}, BufferEntries: 4, PageShift: 12},
		core.NewDistance(32, 1, 2))
	// Teach distance -5 -> -5, then miss page 3: predicted target is
	// 3 - 5 = huge wrapped VPN.
	for _, p := range []uint64{100, 95, 90, 85, 8, 3} {
		s.Ref(0, p<<12)
	}
	st := s.Stats()
	if st.Refs != 6 || st.Misses != 6 {
		t.Fatalf("stats = %+v", st)
	}
	// Nothing to assert beyond "no panic and counters consistent".
	if st.BufferHits+st.DemandFetches != st.Misses {
		t.Fatalf("counter mismatch: %+v", st)
	}
}

// Property: for every mechanism, PrefetchesRequested equals
// PrefetchesIssued + PrefetchDuplicates, and buffer occupancy never exceeds
// its capacity.
func TestQuickPrefetchAccounting(t *testing.T) {
	mechs := map[string]func() prefetch.Prefetcher{
		"SP":   func() prefetch.Prefetcher { return prefetch.NewSequential(true) },
		"SP-A": func() prefetch.Prefetcher { return prefetch.NewAdaptiveSequential() },
		"ASP":  func() prefetch.Prefetcher { return prefetch.NewASP(32, 1) },
		"MP":   func() prefetch.Prefetcher { return prefetch.NewMarkov(32, 1, 2) },
		"RP3":  func() prefetch.Prefetcher { return prefetch.NewRecencyDegree(3) },
		"DP":   func() prefetch.Prefetcher { return core.NewDistance(32, 1, 2) },
	}
	for name, mk := range mechs {
		mk := mk
		f := func(raw []uint16) bool {
			s := New(Config{TLB: tlb.Config{Entries: 8}, BufferEntries: 4, PageShift: 12}, mk())
			for i, r := range raw {
				s.Ref(uint64(i%5), uint64(r%256)<<12)
				if s.Buffer().Len() > 4 {
					return false
				}
			}
			st := s.Stats()
			return st.PrefetchesRequested == st.PrefetchesIssued+st.PrefetchDuplicates
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: the timing simulator's clock is monotone and total cycles are
// at least the stall cycles.
func TestQuickTimingMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewTiming(DefaultTiming(), core.NewDistance(32, 1, 2))
		var last uint64
		for i, r := range raw {
			s.Ref(uint64(i%5), uint64(r%512)<<12)
			if s.Now() < last {
				return false
			}
			last = s.Now()
		}
		st := s.Stats()
		return st.Cycles >= st.StallCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
