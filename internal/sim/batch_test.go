package sim

import (
	"testing"

	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

func batchTestStream(t *testing.T, wname string, n int) []trace.Ref {
	t.Helper()
	w, ok := workload.ByName(wname)
	if !ok {
		t.Fatalf("workload %s missing", wname)
	}
	refs := make([]trace.Ref, 0, n)
	workload.Generate(w, uint64(n), func(pc, vaddr uint64) bool {
		refs = append(refs, trace.Ref{PC: pc, VAddr: vaddr})
		return true
	})
	return refs
}

// TestSimulatorBatchEquivalence is the differential contract of the batched
// entry points: RefBatch over any chunking of a stream must produce Stats
// byte-identical to per-reference Ref calls, for every mechanism family.
func TestSimulatorBatchEquivalence(t *testing.T) {
	cfg := Config{TLB: tlb.Config{Entries: 32}, BufferEntries: 8, PageShift: 12}
	refs := batchTestStream(t, "mcf", 60_000)
	for i, pf := range equivMechs() {
		perRef := New(cfg, pf)
		for _, r := range refs {
			perRef.Ref(r.PC, r.VAddr)
		}
		batched := New(cfg, equivMechs()[i])
		// Deliberately ragged chunk sizes, including empty chunks.
		for pos, k := 0, 0; pos < len(refs); k++ {
			sz := []int{1, 0, 7, 4096, 333, 65_536}[k%6]
			if sz > len(refs)-pos {
				sz = len(refs) - pos
			}
			batched.RefBatch(refs[pos : pos+sz])
			pos += sz
		}
		got, want := batched.Stats(), perRef.Stats()
		if got != want {
			t.Errorf("mechanism %d (%s): batched %+v != per-ref %+v",
				i, perRef.Prefetcher().Name(), got, want)
		}
	}
}

// TestSimulatorRunUsesBatchPath pins that Run over a batch-capable reader
// equals the historical per-Read loop.
func TestSimulatorRunUsesBatchPath(t *testing.T) {
	cfg := Config{TLB: tlb.Config{Entries: 32}, BufferEntries: 8, PageShift: 12}
	refs := batchTestStream(t, "gzip", 50_000)
	for i, pf := range equivMechs() {
		viaRun := New(cfg, pf)
		if err := viaRun.Run(trace.NewSliceReader(refs)); err != nil {
			t.Fatal(err)
		}
		perRef := New(cfg, equivMechs()[i])
		for _, r := range refs {
			perRef.Ref(r.PC, r.VAddr)
		}
		if got, want := viaRun.Stats(), perRef.Stats(); got != want {
			t.Errorf("mechanism %d: Run %+v != per-ref %+v", i, got, want)
		}
	}
}

// TestGroupBatchEquivalence extends the shared-frontend differential
// contract to RunBatch: a chunk-fed group (both shared and heterogeneous
// fan-out) must match the per-Ref group exactly.
func TestGroupBatchEquivalence(t *testing.T) {
	refs := batchTestStream(t, "swim", 60_000)
	homo := Config{TLB: tlb.Config{Entries: 32}, BufferEntries: 8, PageShift: 12}
	hetero := Config{TLB: tlb.Config{Entries: 64, Ways: 4}, BufferEntries: 8, PageShift: 12}

	for _, shared := range []bool{true, false} {
		mkGroup := func() *Group {
			g := NewGroup()
			for i, pf := range equivMechs() {
				cfg := homo
				if !shared && i == 0 {
					cfg = hetero
				}
				g.Add(New(cfg, pf))
			}
			return g
		}
		perRef := mkGroup()
		if perRef.SharedFrontend() != shared {
			t.Fatalf("shared=%v: unexpected frontend strategy", shared)
		}
		for _, r := range refs {
			perRef.Ref(r.PC, r.VAddr)
		}
		batched := mkGroup()
		if err := batched.RunBatch(trace.NewSliceReader(refs)); err != nil {
			t.Fatal(err)
		}
		for i := range perRef.Members() {
			got := batched.Members()[i].Stats()
			want := perRef.Members()[i].Stats()
			if got != want {
				t.Errorf("shared=%v member %d: batched %+v != per-ref %+v", shared, i, got, want)
			}
		}
	}
}
