package sim

import (
	"testing"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

// equivMechs is the mechanism mix the experiment harness fans out: every
// family, with differing buffer-facing behaviour (multi-prefetch batches,
// PC indexing, in-memory metadata, no-op baseline).
func equivMechs() []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		nil, // no-prefetch baseline
		prefetch.NewSequential(true),
		prefetch.NewAdaptiveSequential(),
		prefetch.NewASP(64, 1),
		prefetch.NewMarkov(64, 1, 2),
		prefetch.NewRecency(),
		core.NewDistance(64, 1, 2),
		core.NewDistance2(64, 1, 2),
	}
}

// TestGroupSharedFrontendEquivalence is the differential contract of the
// shared frontend: for each workload, a Group whose members share TLB
// geometry (and therefore runs one canonical TLB) must produce member
// Stats byte-identical to running each member as an independent Simulator
// over the same stream.
func TestGroupSharedFrontendEquivalence(t *testing.T) {
	cfg := Config{TLB: tlb.Config{Entries: 32}, BufferEntries: 8, PageShift: 12}
	for _, wname := range []string{"swim", "gzip", "mcf", "gap", "gsm-enc", "ks"} {
		w, ok := workload.ByName(wname)
		if !ok {
			t.Fatalf("workload %s missing", wname)
		}
		// Shared-frontend group run.
		g := NewGroup()
		for _, pf := range equivMechs() {
			g.Add(New(cfg, pf))
		}
		if !g.SharedFrontend() {
			t.Fatalf("%s: homogeneous group did not enable the shared frontend", wname)
		}
		workload.Generate(w, 60_000, func(pc, vaddr uint64) bool {
			g.Ref(pc, vaddr)
			return true
		})

		// Independent runs over the identical regenerated stream.
		for i, pf := range equivMechs() {
			ind := New(cfg, pf)
			workload.Generate(w, 60_000, func(pc, vaddr uint64) bool {
				ind.Ref(pc, vaddr)
				return true
			})
			got := g.Members()[i].Stats()
			want := ind.Stats()
			if got != want {
				t.Errorf("%s member %d (%s): shared %+v != independent %+v",
					wname, i, g.Members()[i].Prefetcher().Name(), got, want)
			}
		}
	}
}

// TestGroupSharedFrontendMidRunStatsReset mirrors experiments.RunApp's
// warmup protocol: counters reset mid-run (structures stay warm) must
// leave shared and independent pipelines in agreement.
func TestGroupSharedFrontendMidRunStatsReset(t *testing.T) {
	cfg := Config{TLB: tlb.Config{Entries: 32}, BufferEntries: 8, PageShift: 12}
	w, _ := workload.ByName("swim")
	const warmup, run = 20_000, 40_000

	g := NewGroup()
	for _, pf := range equivMechs() {
		g.Add(New(cfg, pf))
	}
	var seen uint64
	workload.Generate(w, warmup+run, func(pc, vaddr uint64) bool {
		g.Ref(pc, vaddr)
		seen++
		if seen == warmup {
			for _, m := range g.Members() {
				m.ResetStats()
			}
		}
		return true
	})

	for i, pf := range equivMechs() {
		ind := New(cfg, pf)
		var n uint64
		workload.Generate(w, warmup+run, func(pc, vaddr uint64) bool {
			ind.Ref(pc, vaddr)
			n++
			if n == warmup {
				ind.ResetStats()
			}
			return true
		})
		if got, want := g.Members()[i].Stats(), ind.Stats(); got != want {
			t.Errorf("member %d: shared %+v != independent %+v", i, got, want)
		}
	}
}

// TestGroupHeterogeneousFallsBack checks that geometry-diverse members
// disable the shared frontend and still match independent runs (the
// pre-existing fan-out semantics).
func TestGroupHeterogeneousFallsBack(t *testing.T) {
	cfgA := Config{TLB: tlb.Config{Entries: 32}, BufferEntries: 8, PageShift: 12}
	cfgB := Config{TLB: tlb.Config{Entries: 16, Ways: 2}, BufferEntries: 8, PageShift: 12}
	g := NewGroup(New(cfgA, prefetch.NewSequential(true)), New(cfgB, core.NewDistance(64, 1, 2)))
	if g.SharedFrontend() {
		t.Fatal("heterogeneous group claimed a shared frontend")
	}
	w, _ := workload.ByName("gzip")
	workload.Generate(w, 30_000, func(pc, vaddr uint64) bool {
		g.Ref(pc, vaddr)
		return true
	})
	for i, cfg := range []Config{cfgA, cfgB} {
		var pf prefetch.Prefetcher
		if i == 0 {
			pf = prefetch.NewSequential(true)
		} else {
			pf = core.NewDistance(64, 1, 2)
		}
		ind := New(cfg, pf)
		workload.Generate(w, 30_000, func(pc, vaddr uint64) bool {
			ind.Ref(pc, vaddr)
			return true
		})
		if got, want := g.Members()[i].Stats(), ind.Stats(); got != want {
			t.Errorf("member %d: group %+v != independent %+v", i, got, want)
		}
	}
}

// TestGroupUsedMembersFallBack checks the pristine-state guard: a member
// that already simulated references on its own must force independent
// fan-out, not a shared frontend seeded from an empty canonical TLB.
func TestGroupUsedMembersFallBack(t *testing.T) {
	cfg := Config{TLB: tlb.Config{Entries: 8}, BufferEntries: 4, PageShift: 12}
	a, b := New(cfg, nil), New(cfg, nil)
	a.Ref(0, 42<<12) // a now has TLB state the canonical TLB wouldn't share
	g := NewGroup(a, b)
	if g.SharedFrontend() {
		t.Fatal("group with a used member claimed a shared frontend")
	}
	g.Ref(0, 42<<12)
	if st := a.Stats(); st.Misses != 1 {
		t.Fatalf("member a: %+v (the second touch of page 42 must hit)", st)
	}
	if st := b.Stats(); st.Misses != 1 {
		t.Fatalf("member b: %+v (first touch of page 42 must miss)", st)
	}
}

// TestGroupAddAfterSharedStartPanics: once the shared frontend has
// delivered references, the members' TLB state exists only in the
// canonical TLB, so growing the group (which would force independent
// fan-out) must fail loudly instead of silently corrupting members.
func TestGroupAddAfterSharedStartPanics(t *testing.T) {
	cfg := Config{TLB: tlb.Config{Entries: 8}, BufferEntries: 4, PageShift: 12}
	g := NewGroup(New(cfg, nil), New(cfg, nil))
	g.Ref(0, 42<<12)
	if !g.SharedFrontend() {
		t.Fatal("expected shared frontend")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add after shared-frontend start did not panic")
		}
	}()
	g.Add(New(cfg, nil))
}

// TestGroupAddAfterIndependentStartStaysCorrect: growing a started
// independent group keeps the old semantics — the newcomer simply starts
// cold.
func TestGroupAddAfterIndependentStartStaysCorrect(t *testing.T) {
	cfgA := Config{TLB: tlb.Config{Entries: 8}, BufferEntries: 4, PageShift: 12}
	cfgB := Config{TLB: tlb.Config{Entries: 4, Ways: 2}, BufferEntries: 4, PageShift: 12}
	g := NewGroup(New(cfgA, nil), New(cfgB, nil))
	g.Ref(0, 42<<12)
	late := New(cfgA, nil)
	g.Add(late)
	g.Ref(0, 42<<12) // hit for the old members, cold miss for the newcomer
	if st := g.Members()[0].Stats(); st.Refs != 2 || st.Misses != 1 {
		t.Fatalf("old member: %+v", st)
	}
	if st := late.Stats(); st.Refs != 1 || st.Misses != 1 {
		t.Fatalf("late member: %+v", st)
	}
}

// TestStatsWindowedUnusedAfterReset: ResetStats opens a new statistics
// window; warmup-era prefetches must not appear in the window's unused
// count (previously the buffer's lifetime counters leaked through, so
// PrefetchesUnused could exceed PrefetchesIssued).
func TestStatsWindowedUnusedAfterReset(t *testing.T) {
	s := New(Config{TLB: tlb.Config{Entries: 8}, BufferEntries: 4, PageShift: 12},
		prefetch.NewSequential(true))
	s.Ref(0, 10<<12) // warmup: prefetches page 11, never used
	s.ResetStats()
	st := s.Stats()
	if st.PrefetchesIssued != 0 || st.PrefetchesUnused != 0 {
		t.Fatalf("fresh window: issued=%d unused=%d, want 0,0",
			st.PrefetchesIssued, st.PrefetchesUnused)
	}
	// A warmup-era prefetch used inside the window counts as a buffer hit
	// but never as window-unused, and must not underflow anything.
	s.Ref(0, 11<<12) // uses the warmup prefetch of 11; prefetches 12
	st = s.Stats()
	if st.BufferHits != 1 {
		t.Fatalf("buffer hits = %d, want 1", st.BufferHits)
	}
	if st.PrefetchesUnused != 1 { // page 12, issued in-window, unused
		t.Fatalf("unused = %d, want 1", st.PrefetchesUnused)
	}
	if st.PrefetchesUnused > st.PrefetchesIssued {
		t.Fatalf("unused %d exceeds issued %d", st.PrefetchesUnused, st.PrefetchesIssued)
	}
}

// TestStatsCountResidentUnusedPrefetches is the regression test for the
// unused-prefetch accounting: prefetches still sitting in the buffer at
// snapshot time were never used and must count, not only the ones the
// buffer evicted.
func TestStatsCountResidentUnusedPrefetches(t *testing.T) {
	s := New(Config{TLB: tlb.Config{Entries: 8}, BufferEntries: 4, PageShift: 12},
		prefetch.NewSequential(true))
	// Page 10 misses; SP prefetches page 11, which is never referenced.
	s.Ref(0, 10<<12)
	st := s.Stats()
	if st.PrefetchesIssued != 1 {
		t.Fatalf("issued = %d, want 1", st.PrefetchesIssued)
	}
	if st.PrefetchesUnused != 1 {
		t.Fatalf("PrefetchesUnused = %d, want 1 (page 11 resident and unused)", st.PrefetchesUnused)
	}
	// Using the prefetch removes it from the unused count.
	s.Ref(0, 11<<12) // buffer hit on 11; SP prefetches 12 (again unused)
	st = s.Stats()
	if st.BufferHits != 1 {
		t.Fatalf("buffer hits = %d, want 1", st.BufferHits)
	}
	if st.PrefetchesUnused != 1 {
		t.Fatalf("PrefetchesUnused = %d, want 1 (only page 12 outstanding)", st.PrefetchesUnused)
	}
	// An eviction moves an entry from resident-unused to evicted-unused
	// without double counting: fill the 4-entry buffer past capacity.
	for p := uint64(100); p < 108; p += 2 {
		s.Ref(0, p<<12) // each miss prefetches p+1; none ever used
	}
	st = s.Stats()
	wantUnused := st.PrefetchesIssued - st.BufferHits // nothing else consumed them
	if st.PrefetchesUnused != wantUnused {
		t.Fatalf("PrefetchesUnused = %d, want %d (= issued %d - used %d)",
			st.PrefetchesUnused, wantUnused, st.PrefetchesIssued, st.BufferHits)
	}
}
