package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// recordTrace writes a workload's first refs references to a binary trace
// file and returns its source.
func recordTrace(t *testing.T, path, workloadName string, refs uint64) Source {
	t.Helper()
	w, ok := workload.ByName(workloadName)
	if !ok {
		t.Fatalf("unknown workload %q", workloadName)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := trace.NewBinaryWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.GenerateTo(w, refs, bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := TraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestTraceDigestStability pins the key-stability contract: the same trace
// content produces the same content address no matter where the file lives
// or how often it is re-read.
func TestTraceDigestStability(t *testing.T) {
	dir := t.TempDir()
	a := recordTrace(t, filepath.Join(dir, "a.trc"), "swim", 5_000)
	b := recordTrace(t, filepath.Join(dir, "elsewhere.trc"), "swim", 5_000)
	reread, err := TraceSource(a.TracePath)
	if err != nil {
		t.Fatal(err)
	}

	job := func(src Source) Job {
		return Job{Source: src, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 5_000}
	}
	ha := job(a).Key().Hash()
	if hb := job(b).Key().Hash(); hb != ha {
		t.Error("same trace content at different paths keyed differently")
	}
	if hr := job(reread).Key().Hash(); hr != ha {
		t.Error("re-reading the trace changed its key")
	}

	other := recordTrace(t, filepath.Join(dir, "other.trc"), "mcf", 5_000)
	if job(other).Key().Hash() == ha {
		t.Error("different trace content keyed identically")
	}

	// The canonical key carries the digest, never the local path.
	if k := job(a).Key(); k.Source.TracePath != "" || k.Source.TraceSHA256 == "" {
		t.Errorf("canonical key source = %+v, want digest only", k.Source)
	}
}

// TestTraceJobMatchesWorkloadJob pins trace replay against synthetic
// generation: a cell driven by a recording of a workload is bit-identical
// to the cell driven by the workload itself, warmup included.
func TestTraceJobMatchesWorkloadJob(t *testing.T) {
	dir := t.TempDir()
	src := recordTrace(t, filepath.Join(dir, "gap.trc"), "gap", 30_000)

	mech := Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}
	traceJob := Job{Source: src, Mech: mech, Config: sim.Default(), Refs: 20_000, Warmup: 10_000}
	workJob := Job{Source: WorkloadSource("gap"), Mech: mech, Config: sim.Default(), Refs: 20_000, Warmup: 10_000}

	res, _, err := (&Runner{}).Run([]Job{traceJob, workJob})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats != res[1].Stats {
		t.Fatalf("trace replay %+v != synthetic run %+v", res[0].Stats, res[1].Stats)
	}
	if res[0].Key.Hash() == res[1].Key.Hash() {
		t.Error("trace and synthetic cells content-addressed identically")
	}
}

// TestTraceJobTimingShardsSharePass runs a trace cell under two timing
// points and checks both against direct simulators fed the same recording.
func TestTraceJobTimingMatchesDirect(t *testing.T) {
	dir := t.TempDir()
	src := recordTrace(t, filepath.Join(dir, "mcf.trc"), "mcf", 20_000)

	fast := DefaultTiming()
	slow := DefaultTiming()
	slow.MissPenalty = 400
	jobs := []Job{
		{Source: src, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 20_000, Timing: &fast},
		{Source: src, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 20_000, Timing: &slow},
	}
	res, sum, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shards != 1 {
		t.Errorf("timing points over one trace used %d shards, want 1 shared pass", sum.Shards)
	}
	for i, tm := range []Timing{fast, slow} {
		s := sim.NewTiming(tm.Config(sim.Default()), jobs[i].Mech.Build())
		r, closer, err := trace.OpenFile(src.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(r); err != nil {
			t.Fatal(err)
		}
		closer.Close()
		if *res[i].Timing != s.Stats() {
			t.Fatalf("timing point %d: runner %+v != direct %+v", i, *res[i].Timing, s.Stats())
		}
	}
	if res[0].Timing.Cycles >= res[1].Timing.Cycles {
		t.Error("400-cycle penalty did not cost more cycles than 100")
	}
}

// TestTraceDigestMismatchRefusesToRun pins the provenance check: editing
// the trace file after the grid was declared fails the run instead of
// silently simulating different bytes under the old key.
func TestTraceDigestMismatchRefusesToRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.trc")
	src := recordTrace(t, path, "swim", 5_000)
	recordTrace(t, path, "mcf", 5_000) // overwrite with different content
	_, _, err := (&Runner{}).Run([]Job{{Source: src, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 5_000}})
	if err == nil || !strings.Contains(err.Error(), "changed since") {
		t.Fatalf("stale digest ran anyway (err=%v)", err)
	}
}

// TestStaleDigestNotMaskedBySharedPath pins the per-source digest check:
// when two sources name the same path but different digests (a stale key
// next to a fresh one), the stale one must fail even though the path
// itself was already verified for the fresh source.
func TestStaleDigestNotMaskedBySharedPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.trc")
	stale := recordTrace(t, path, "swim", 5_000)
	fresh := recordTrace(t, path, "mcf", 5_000) // overwrites the file
	job := func(src Source) Job {
		return Job{Source: src, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 5_000}
	}
	// Fresh source alone runs fine.
	if _, _, err := (&Runner{}).Run([]Job{job(fresh)}); err != nil {
		t.Fatal(err)
	}
	// Fresh first, stale second: the cached path digest must still fail
	// the stale source.
	_, _, err := (&Runner{}).Run([]Job{job(fresh), job(stale)})
	if err == nil || !strings.Contains(err.Error(), "changed since") {
		t.Fatalf("stale digest hid behind the verified path (err=%v)", err)
	}
}

// TestTraceTooShortFails pins the reference-budget check.
func TestTraceTooShortFails(t *testing.T) {
	dir := t.TempDir()
	src := recordTrace(t, filepath.Join(dir, "short.trc"), "swim", 1_000)
	_, _, err := (&Runner{}).Run([]Job{{Source: src, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 5_000}})
	if err == nil || !strings.Contains(err.Error(), "ends after") {
		t.Fatalf("short trace did not fail the cell (err=%v)", err)
	}
}

func TestSourceValidate(t *testing.T) {
	if err := (Source{}).Validate(); err == nil {
		t.Error("empty source validated")
	}
	if err := (Source{Workload: "swim", TraceSHA256: "ab"}).Validate(); err == nil {
		t.Error("ambiguous source validated")
	}
	if err := (Job{Source: Source{TraceSHA256: "ab"}, Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 100, Seed: 7}).Validate(); err == nil {
		t.Error("seeded trace job validated")
	}
	if got := (Source{TraceSHA256: "0123456789abcdef00"}).Label(); got != "trace:0123456789ab" {
		t.Errorf("trace label = %q", got)
	}
}

// TestGridCrossesTracesAndTimings checks the two new grid axes enumerate
// and dedupe like the original ones.
func TestGridCrossesTracesAndTimings(t *testing.T) {
	dir := t.TempDir()
	src := recordTrace(t, filepath.Join(dir, "swim.trc"), "swim", 2_000)
	fast := DefaultTiming()
	slow := DefaultTiming()
	slow.MissPenalty = 200
	g := Grid{
		Workloads: []string{"mcf"},
		Traces:    []Source{src},
		Mechs:     []Mech{{Kind: "RP"}, {Kind: "none"}},
		Refs:      2_000,
		Timings:   []Timing{fast, slow},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// 2 sources × 2 mechs × 2 timing points.
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d, want 8", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Timing == nil {
			t.Fatal("Timings axis produced a functional cell")
		}
		h := j.Key().Hash()
		if seen[h] {
			t.Fatalf("duplicate cell %+v", j.Key())
		}
		seen[h] = true
	}

	// A seeded grid must not try to reseed the recorded trace.
	g.Seed = 7
	jobs, err = g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Source.IsTrace() && j.Seed != 0 {
			t.Fatal("trace cell picked up a derived seed")
		}
		if !j.Source.IsTrace() && j.Seed == 0 {
			t.Fatal("synthetic cell missed its derived seed")
		}
	}
}
