package sweep

import (
	"fmt"
	"strings"

	"tlbprefetch/internal/multiprog"
	"tlbprefetch/internal/stats"
)

// Mix is a multiprogrammed workload: an ordered list of sources sharing one
// simulated pipeline round-robin, plus the scheduler parameters that shape
// the interleaving and the context-switch behaviour. A mix is a first-class
// source: a Job carries either a Source or a Mix, and a mix cell's key
// content-addresses the member sources (trace members by digest), the
// quantum, the table policy and the ASID mode.
type Mix struct {
	// Sources are the member reference streams, in scheduling order
	// (process 0 first). At least two; the cell's reference budget is
	// split across them (multiprog.Split).
	Sources []Source `json:"sources"`
	// Quantum is the context-switch quantum in references. 0 defaults to
	// DefaultQuantum at canonicalization time.
	Quantum uint64 `json:"quantum"`
	// Policy is the prediction-table treatment at a switch: "retain",
	// "flush" or "per-process" (multiprog.ParsePolicy). Empty defaults to
	// "retain".
	Policy string `json:"policy"`
	// ASID is the translation treatment at a switch: "flush" (no ASIDs,
	// TLB and buffer empty at every switch) or "tagged" (entries survive
	// under address-space tags). Empty defaults to "flush".
	ASID string `json:"asid"`
}

// DefaultQuantum is the context-switch quantum a mix gets when none is
// declared: 20k references, a middle-of-the-road OS time slice at the
// simulator's reference granularity.
const DefaultQuantum uint64 = 20_000

// Canonical returns the content-addressed form: member sources
// canonicalized (digests only, no paths) and the scheduler defaults
// resolved, so equivalent spellings hash identically.
func (m Mix) Canonical() Mix {
	out := Mix{
		Sources: make([]Source, len(m.Sources)),
		Quantum: m.Quantum,
		Policy:  m.Policy,
		ASID:    m.ASID,
	}
	for i, s := range m.Sources {
		out.Sources[i] = s.Canonical()
	}
	if out.Quantum == 0 {
		out.Quantum = DefaultQuantum
	}
	if out.Policy == "" {
		out.Policy = multiprog.Retain.String()
	}
	if out.ASID == "" {
		out.ASID = multiprog.ASIDFlush.String()
	}
	return out
}

// Label renders the mix for tables and progress lines: the member labels
// joined with "+", e.g. "galgel+gcc".
func (m Mix) Label() string {
	parts := make([]string, len(m.Sources))
	for i, s := range m.Sources {
		parts[i] = s.Label()
	}
	return strings.Join(parts, "+")
}

// Validate reports whether the mix can run.
func (m Mix) Validate() error {
	if len(m.Sources) < 2 {
		return fmt.Errorf("sweep: a mix interleaves at least two sources, got %d", len(m.Sources))
	}
	for i, s := range m.Sources {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("sweep: mix member %d: %w", i, err)
		}
	}
	c := m.Canonical()
	if _, err := multiprog.ParsePolicy(c.Policy); err != nil {
		return err
	}
	if _, err := multiprog.ParseASID(c.ASID); err != nil {
		return err
	}
	return nil
}

// streamFingerprint identifies the interleaved reference stream a mix
// produces: member sources and quantum only. Cells that differ solely in
// policy, ASID mode, mechanism or buffer size consume the identical stream
// and can share one interleaving pass (the runner's mix shards).
func (m Mix) streamFingerprint() string {
	c := m.Canonical()
	h, err := stats.Fingerprint(struct {
		Sources []Source `json:"sources"`
		Quantum uint64   `json:"quantum"`
	}{c.Sources, c.Quantum})
	if err != nil {
		panic(err) // Mix contains only marshalable fields
	}
	return h
}
