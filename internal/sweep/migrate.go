package sweep

import (
	"encoding/json"
	"fmt"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/stats"
)

// keyV1 is the schema-1 key layout, kept verbatim (field order and JSON
// tags included) so v1 entry hashes can be re-verified before migration.
// v1 addressed workloads by bare registry name and spelled the cycle model
// as a bool that pinned sim.DefaultTiming's constants.
type keyV1 struct {
	Schema     int    `json:"schema"`
	Workload   string `json:"workload"`
	Mech       Mech   `json:"mech"`
	TLBEntries int    `json:"tlb_entries"`
	TLBWays    int    `json:"tlb_ways"`
	Buffer     int    `json:"buffer"`
	PageShift  uint   `json:"page_shift"`
	Refs       uint64 `json:"refs"`
	Warmup     uint64 `json:"warmup,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Timing     bool   `json:"timing,omitempty"`
}

// resultV1 is the schema-1 result layout.
type resultV1 struct {
	Key    keyV1            `json:"key"`
	Stats  sim.Stats        `json:"stats"`
	Timing *sim.TimingStats `json:"timing,omitempty"`
}

// toCurrent re-keys a v1 key under the current schema: the workload name
// becomes a Source, and a timing cell gains the DefaultTiming axis it
// implicitly carried (v1 had no other cycle model, so the re-keyed cell
// names the identical simulation and its stored numbers remain valid).
// The later schema changes are purely additive (v3's mix field is absent
// from every single-source key), so v1 cells jump straight to current.
func (k keyV1) toCurrent() Key {
	v2 := Key{
		Schema:     KeySchema,
		Source:     WorkloadSource(k.Workload),
		Mech:       k.Mech,
		TLBEntries: k.TLBEntries,
		TLBWays:    k.TLBWays,
		Buffer:     k.Buffer,
		PageShift:  k.PageShift,
		Refs:       k.Refs,
		Warmup:     k.Warmup,
		Seed:       k.Seed,
	}
	if k.Timing {
		dt := DefaultTiming()
		v2.Timing = &dt
	}
	return v2
}

// migrateV1 converts a parsed v1 results map into the current in-memory
// form, verifying each entry still hashes to its v1 key first (the same
// tamper check OpenStore applies to current-schema stores).
func migrateV1(path string, raw map[string]json.RawMessage) (map[string]Result, error) {
	out := make(map[string]Result, len(raw))
	for h, rawRes := range raw {
		var r1 resultV1
		if err := json.Unmarshal(rawRes, &r1); err != nil {
			return nil, fmt.Errorf("sweep: store %s entry %s: %w", path, h, err)
		}
		got, err := stats.Fingerprint(r1.Key)
		if err != nil {
			return nil, err
		}
		if got != h {
			return nil, fmt.Errorf("sweep: store %s v1 entry %s does not hash to its key (%s) — corrupt or hand-edited",
				path, h, got)
		}
		r2 := Result{Key: r1.Key.toCurrent(), Stats: r1.Stats, Timing: r1.Timing}
		out[r2.Key.Hash()] = r2
	}
	return out, nil
}

// migrateV2 converts a parsed v2 results map into the current in-memory
// form. A v2 key parses directly into the current Key struct (the mix
// field, v3's only addition, is absent) and — because Schema is hashed as
// a plain field — still hashes to its stored v2 address, so every entry is
// verified against its old hash and then re-keyed by renumbering alone.
// The stored numbers name the identical simulation and remain valid.
func migrateV2(path string, raw map[string]json.RawMessage) (map[string]Result, error) {
	out := make(map[string]Result, len(raw))
	for h, rawRes := range raw {
		var r Result
		if err := json.Unmarshal(rawRes, &r); err != nil {
			return nil, fmt.Errorf("sweep: store %s entry %s: %w", path, h, err)
		}
		if r.Key.Schema != 2 {
			return nil, fmt.Errorf("sweep: store %s v2 entry %s declares key schema %d — corrupt or hand-edited",
				path, h, r.Key.Schema)
		}
		if r.Key.Mix != nil {
			return nil, fmt.Errorf("sweep: store %s v2 entry %s carries a mix, which schema 2 cannot express — corrupt or hand-edited",
				path, h)
		}
		if got := r.Key.Hash(); got != h {
			return nil, fmt.Errorf("sweep: store %s v2 entry %s does not hash to its key (%s) — corrupt or hand-edited",
				path, h, got)
		}
		r.Key.Schema = KeySchema
		out[r.Key.Hash()] = r
	}
	return out, nil
}
