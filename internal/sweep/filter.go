package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Filter selects store cells by key fields, so a table, CSV or JSON view
// can be rendered from a store subset without re-declaring the grid that
// produced it. A filter is a conjunction of field=value constraints, e.g.
// "workload=mcf,mech=DP,misspenalty=200".
type Filter struct {
	clauses []filterClause
}

type filterClause struct {
	field, value string
}

// filterField is one recognized key field: check validates the value at
// parse time (so a typo like entries=12x errors instead of silently
// matching nothing), match applies it to a key.
type filterField struct {
	check func(v string) error
	match func(k Key, v string) bool
}

func anyString(string) error { return nil }

func checkInt(v string) error {
	_, err := strconv.Atoi(v)
	return err
}

func checkUint(v string) error {
	_, err := strconv.ParseUint(v, 10, 64)
	return err
}

func checkBool(v string) error {
	_, err := strconv.ParseBool(v)
	return err
}

// filterFields maps each recognized field name to its validator + matcher.
var filterFields = map[string]filterField{
	"workload": {anyString, func(k Key, v string) bool {
		if k.Mix != nil {
			for _, s := range k.Mix.Sources {
				if s.Workload == v {
					return true
				}
			}
			return false
		}
		return k.Source.Workload == v
	}},
	"trace": {anyString, func(k Key, v string) bool {
		want := strings.ToLower(v)
		if k.Mix != nil {
			for _, s := range k.Mix.Sources {
				if s.TraceSHA256 != "" && strings.HasPrefix(s.TraceSHA256, want) {
					return true
				}
			}
			return false
		}
		return k.Source.TraceSHA256 != "" && strings.HasPrefix(k.Source.TraceSHA256, want)
	}},
	"source": {anyString, func(k Key, v string) bool { return k.SourceLabel() == v }},
	"mix": {checkBool, func(k Key, v string) bool {
		want, _ := strconv.ParseBool(v)
		return (k.Mix != nil) == want
	}},
	"quantum": {checkUint, func(k Key, v string) bool { return k.Mix != nil && matchUint(k.Mix.Quantum, v) }},
	"policy":  {anyString, func(k Key, v string) bool { return k.Mix != nil && k.Mix.Policy == v }},
	"asid":    {anyString, func(k Key, v string) bool { return k.Mix != nil && k.Mix.ASID == v }},
	"mech": {anyString, func(k Key, v string) bool {
		return strings.EqualFold(k.Mech.Kind, v) || strings.EqualFold(k.Mech.Label(), v)
	}},
	"rows":      {checkInt, func(k Key, v string) bool { return matchInt(k.Mech.Rows, v) }},
	"ways":      {checkInt, func(k Key, v string) bool { return matchInt(k.Mech.Ways, v) }},
	"slots":     {checkInt, func(k Key, v string) bool { return matchInt(k.Mech.Slots, v) }},
	"entries":   {checkInt, func(k Key, v string) bool { return matchInt(k.TLBEntries, v) }},
	"tlbways":   {checkInt, func(k Key, v string) bool { return matchInt(k.TLBWays, v) }},
	"buffer":    {checkInt, func(k Key, v string) bool { return matchInt(k.Buffer, v) }},
	"pageshift": {checkInt, func(k Key, v string) bool { return matchInt(int(k.PageShift), v) }},
	"refs":      {checkUint, func(k Key, v string) bool { return matchUint(k.Refs, v) }},
	"warmup":    {checkUint, func(k Key, v string) bool { return matchUint(k.Warmup, v) }},
	"seed":      {checkUint, func(k Key, v string) bool { return matchUint(k.Seed, v) }},
	"timing": {checkBool, func(k Key, v string) bool {
		want, _ := strconv.ParseBool(v)
		return (k.Timing != nil) == want
	}},
	"misspenalty":  {checkUint, func(k Key, v string) bool { return k.Timing != nil && matchUint(k.Timing.MissPenalty, v) }},
	"memoplatency": {checkUint, func(k Key, v string) bool { return k.Timing != nil && matchUint(k.Timing.MemOpLatency, v) }},
	"memopocc":     {checkUint, func(k Key, v string) bool { return k.Timing != nil && matchUint(k.Timing.MemOpOccupancy, v) }},
	"refspercycle": {checkUint, func(k Key, v string) bool { return k.Timing != nil && matchUint(k.Timing.RefsPerCycle, v) }},
}

func matchInt(have int, v string) bool {
	want, err := strconv.Atoi(v)
	return err == nil && have == want
}

func matchUint(have uint64, v string) bool {
	want, err := strconv.ParseUint(v, 10, 64)
	return err == nil && have == want
}

// filterFieldNames lists the recognized fields, sorted, for error text.
func filterFieldNames() string {
	names := make([]string, 0, len(filterFields))
	for n := range filterFields {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ParseFilter parses a comma-separated list of field=value constraints.
// An empty spec is a filter that matches everything.
func ParseFilter(spec string) (Filter, error) {
	var f Filter
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		field, value, ok := strings.Cut(tok, "=")
		if !ok {
			return f, fmt.Errorf("sweep: filter clause %q is not field=value", tok)
		}
		field = strings.ToLower(strings.TrimSpace(field))
		value = strings.TrimSpace(value)
		ff, known := filterFields[field]
		if !known {
			return f, fmt.Errorf("sweep: unknown filter field %q (known: %s)", field, filterFieldNames())
		}
		if err := ff.check(value); err != nil {
			return f, fmt.Errorf("sweep: filter %s=%s: bad value: %v", field, value, err)
		}
		f.clauses = append(f.clauses, filterClause{field: field, value: value})
	}
	return f, nil
}

// Match reports whether every clause accepts the key.
func (f Filter) Match(k Key) bool {
	for _, c := range f.clauses {
		if !filterFields[c.field].match(k, c.value) {
			return false
		}
	}
	return true
}

// Empty reports whether the filter has no clauses (and so matches every
// key).
func (f Filter) Empty() bool { return len(f.clauses) == 0 }

// ClauseMatch pairs one parsed clause, rendered back as "field=value", with
// how many of the examined keys that clause alone accepts.
type ClauseMatch struct {
	Clause  string
	Matches int
}

// ClauseMatches evaluates every clause independently against the keys — the
// diagnostic behind "0 cells match": a clause with zero solo matches names
// the constraint that cannot be satisfied at all, while all-positive solo
// counts mean only the conjunction is empty.
func (f Filter) ClauseMatches(keys []Key) []ClauseMatch {
	out := make([]ClauseMatch, len(f.clauses))
	for i, c := range f.clauses {
		out[i] = ClauseMatch{Clause: c.field + "=" + c.value}
		for _, k := range keys {
			if filterFields[c.field].match(k, c.value) {
				out[i].Matches++
			}
		}
	}
	return out
}

// Select returns the store cells matching the filter, sorted by key fields
// (source, mechanism, geometry, timing) — a stable, human-oriented order
// that does not depend on hash values. Matching runs against the store's
// index; only the segments holding matched cells are read, so a narrow
// filter over a large sharded store costs O(matched segments), not
// O(store).
func (f Filter) Select(s *Store) ([]Result, error) {
	s.mu.Lock()
	var hashes []string
	for h, k := range s.keys {
		if f.Match(k) {
			hashes = append(hashes, h)
		}
	}
	sort.Strings(hashes)
	out := make([]Result, 0, len(hashes))
	for _, h := range hashes {
		r, ok, err := s.getLocked(h)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		return keyLess(out[i].Key, out[j].Key)
	})
	return out, nil
}

// keyLess orders keys by (source label, mech label, TLB entries, TLB ways,
// buffer, page shift, refs, warmup, seed), then by the scheduler axis
// (quantum, policy, asid — mix cells only) and the timing axis (miss
// penalty, memop latency, issue width) — a stable, human-oriented order
// that never consults hash values.
func keyLess(a, b Key) bool {
	if x, y := a.SourceLabel(), b.SourceLabel(); x != y {
		return x < y
	}
	if x, y := a.Mech.Label(), b.Mech.Label(); x != y {
		return x < y
	}
	if a.TLBEntries != b.TLBEntries {
		return a.TLBEntries < b.TLBEntries
	}
	if a.TLBWays != b.TLBWays {
		return a.TLBWays < b.TLBWays
	}
	if a.Buffer != b.Buffer {
		return a.Buffer < b.Buffer
	}
	if a.PageShift != b.PageShift {
		return a.PageShift < b.PageShift
	}
	if a.Refs != b.Refs {
		return a.Refs < b.Refs
	}
	if a.Warmup != b.Warmup {
		return a.Warmup < b.Warmup
	}
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	var qa, qb uint64
	var pa, pb, aa, ab string
	if a.Mix != nil {
		qa, pa, aa = a.Mix.Quantum, a.Mix.Policy, a.Mix.ASID
	}
	if b.Mix != nil {
		qb, pb, ab = b.Mix.Quantum, b.Mix.Policy, b.Mix.ASID
	}
	if qa != qb {
		return qa < qb
	}
	if pa != pb {
		return pa < pb
	}
	if aa != ab {
		return aa < ab
	}
	var ta, tb, la, lb, wa, wb uint64
	if a.Timing != nil {
		ta, la, wa = a.Timing.MissPenalty, a.Timing.MemOpLatency, a.Timing.RefsPerCycle
	}
	if b.Timing != nil {
		tb, lb, wb = b.Timing.MissPenalty, b.Timing.MemOpLatency, b.Timing.RefsPerCycle
	}
	if ta != tb {
		return ta < tb
	}
	if la != lb {
		return la < lb
	}
	return wa < wb
}
