package sweep

import (
	"fmt"
	"sort"
	"strings"

	"tlbprefetch/internal/stats"
)

// StoreDiff is a cell-by-cell comparison of two stores.
type StoreDiff struct {
	// OnlyA and OnlyB hold cells present in exactly one store, in the
	// stores' deterministic (hash-sorted) order.
	OnlyA, OnlyB []Result
	// Changed holds cells present in both under the same key hash but
	// with different payloads — possible only when one store was produced
	// by a simulator whose behaviour changed without a schema bump.
	Changed [][2]Result
}

// Empty reports whether the stores agree on every cell.
func (d StoreDiff) Empty() bool {
	return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 && len(d.Changed) == 0
}

// Summary renders a human-readable account of the differences.
func (d StoreDiff) Summary() string {
	if d.Empty() {
		return "stores are identical\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d cells only in A, %d only in B, %d changed\n",
		len(d.OnlyA), len(d.OnlyB), len(d.Changed))
	cell := func(k Key) string {
		s := fmt.Sprintf("%s %s tlb=%d buf=%d refs=%d", k.Source.Label(), k.Mech.Label(),
			k.TLBEntries, k.Buffer, k.Refs)
		if k.Timing != nil {
			s += fmt.Sprintf(" penalty=%d memop=%d", k.Timing.MissPenalty, k.Timing.MemOpLatency)
		}
		return s
	}
	describe := func(prefix string, rs []Result) {
		for _, r := range rs {
			fmt.Fprintf(&b, "  %s %s\n", prefix, cell(r.Key))
		}
	}
	describe("A", d.OnlyA)
	describe("B", d.OnlyB)
	for _, pair := range d.Changed {
		delta := fmt.Sprintf("accuracy %s vs %s",
			stats.F(pair[0].Stats.Accuracy()), stats.F(pair[1].Stats.Accuracy()))
		if pair[0].Timing != nil && pair[1].Timing != nil && pair[0].Timing.Cycles != pair[1].Timing.Cycles {
			delta = fmt.Sprintf("cycles %d vs %d", pair[0].Timing.Cycles, pair[1].Timing.Cycles)
		}
		fmt.Fprintf(&b, "  ≠ %s: %s\n", cell(pair[0].Key), delta)
	}
	return b.String()
}

// DiffStores compares two stores cell-by-cell by key hash. Payloads are
// compared on their canonical encoding, so any divergence — functional
// counters or timing counters — registers as changed. Whole segments the
// two stores' indexes address by the same content digest are skipped
// without reading either side (identical digest, identical cells), so
// diffing two mostly-equal sharded stores reads only the segments that
// actually differ.
func DiffStores(a, b *Store) (StoreDiff, error) {
	skip := sharedCleanSegments(a, b)
	var d StoreDiff
	for _, h := range a.indexHashes() {
		if skip[segPrefix(h)] {
			continue
		}
		ra, ok, err := a.Get(h)
		if err != nil {
			return d, err
		}
		if !ok {
			continue
		}
		rb, ok, err := b.Get(h)
		if err != nil {
			return d, err
		}
		if !ok {
			d.OnlyA = append(d.OnlyA, ra)
			continue
		}
		ca, err := stats.Canonical(ra)
		if err != nil {
			return d, err
		}
		cb, err := stats.Canonical(rb)
		if err != nil {
			return d, err
		}
		if string(ca) != string(cb) {
			d.Changed = append(d.Changed, [2]Result{ra, rb})
		}
	}
	for _, h := range b.indexHashes() {
		if skip[segPrefix(h)] || a.Has(h) {
			continue
		}
		rb, ok, err := b.Get(h)
		if err != nil {
			return d, err
		}
		if ok {
			d.OnlyB = append(d.OnlyB, rb)
		}
	}
	return d, nil
}

// sharedCleanSegments returns the prefixes whose on-disk segments carry
// the same content digest in both stores with no unsaved changes on either
// side — cell-for-cell identical by construction, safe to skip wholesale.
func sharedCleanSegments(a, b *Store) map[string]bool {
	da, oka := a.cleanSegmentDigests()
	db, okb := b.cleanSegmentDigests()
	if !oka || !okb {
		return nil
	}
	skip := make(map[string]bool)
	for p, dig := range da {
		if db[p] == dig {
			skip[p] = true
		}
	}
	return skip
}

// cleanSegmentDigests returns the store's per-prefix segment digests when
// they are authoritative: file-bound, nothing dirty. A store with unsaved
// changes (or no file at all) reports ok=false and diffs cell-by-cell.
func (s *Store) cleanSegmentDigests() (map[string]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" || len(s.dirty) > 0 {
		return nil, false
	}
	out := make(map[string]string, len(s.segs))
	for p, dig := range s.segs {
		out[p] = dig
	}
	return out, true
}

// indexHashes returns every cell hash in sorted order, from the index
// alone.
func (s *Store) indexHashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.keys))
	for h := range s.keys {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
