package sweep_test

import (
	"fmt"

	"tlbprefetch/internal/sweep"
)

// ExampleGrid declares a small workload × mechanism × geometry grid and
// enumerates its cells. Cells that canonicalize identically (RP ignores the
// table axes) enumerate once, so the grid is 2 workloads × 2 mechanisms ×
// 2 TLB sizes.
func ExampleGrid() {
	g := sweep.Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []sweep.Mech{{Kind: "DP", Rows: 256, Slots: 2}, {Kind: "RP"}},
		TLBEntries: []int{64, 128},
		Refs:       100_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(jobs), "cells")
	first := jobs[0]
	fmt.Println(first.Source.Label(), first.Mech.Label(), first.Config.TLB.Entries)
	// Every cell is content-addressed: equal configurations always hash
	// identically, which is what lets a Store cache across sweeps.
	fmt.Println(first.Key().Hash() == jobs[0].Key().Hash())
	// Output:
	// 8 cells
	// swim DP,256,D 64
	// true
}

// ExampleParseFilter selects store cells by key fields — the -where and
// -figure surface of cmd/tlbsweep. Values are validated at parse time, so
// a typo fails loudly instead of matching nothing.
func ExampleParseFilter() {
	f, err := sweep.ParseFilter("mech=DP,entries=128")
	if err != nil {
		panic(err)
	}
	g := sweep.Grid{
		Workloads:  []string{"swim"},
		Mechs:      []sweep.Mech{{Kind: "DP", Rows: 256, Slots: 2}, {Kind: "RP"}},
		TLBEntries: []int{64, 128},
		Refs:       100_000,
	}
	jobs, _ := g.Jobs()
	for _, j := range jobs {
		if k := j.Key(); f.Match(k) {
			fmt.Println(k.Mech.Label(), k.TLBEntries)
		}
	}
	_, err = sweep.ParseFilter("entries=12x")
	fmt.Println("typo rejected:", err != nil)
	// Output:
	// DP,256,D 128
	// typo rejected: true
}

// ExampleTimingAxes_Points expands the decoupled cycle-model design space:
// miss penalties crossed with memory-op costs (here as a ratio of the
// penalty, the paper's point being 0.5) and issue widths.
func ExampleTimingAxes_Points() {
	axes := sweep.TimingAxes{
		MissPenalties: []uint64{100, 200},
		MemOpRatios:   []float64{0.5},
		RefsPerCycle:  []uint64{1, 2},
	}
	pts, err := axes.Points()
	if err != nil {
		panic(err)
	}
	for _, p := range pts {
		fmt.Printf("penalty=%d memop=%d ipc=%d\n", p.MissPenalty, p.MemOpLatency, p.RefsPerCycle)
	}
	// Output:
	// penalty=100 memop=50 ipc=1
	// penalty=100 memop=50 ipc=2
	// penalty=200 memop=100 ipc=1
	// penalty=200 memop=100 ipc=2
}
