package sweep

import (
	"strings"
	"testing"
)

func TestTimingAxesDefaults(t *testing.T) {
	// The zero value is empty; a single default-penalty axis reproduces
	// the paper's point exactly.
	if !(TimingAxes{}).Empty() {
		t.Error("zero TimingAxes should be empty")
	}
	pts, err := TimingAxes{MissPenalties: []uint64{DefaultTiming().MissPenalty}}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0] != DefaultTiming() {
		t.Errorf("default-penalty axis = %+v, want the default timing point", pts)
	}
}

func TestTimingAxesRatioDerivation(t *testing.T) {
	pts, err := TimingAxes{
		MissPenalties: []uint64{200},
		MemOpRatios:   []float64{0.25, 0.5, 1},
	}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	def := DefaultTiming()
	for i, wantMemop := range []uint64{50, 100, 200} {
		if pts[i].MemOpLatency != wantMemop {
			t.Errorf("ratio point %d memop = %d, want %d", i, pts[i].MemOpLatency, wantMemop)
		}
		// Occupancy keeps the default pipelining ratio to the memop cost.
		wantOcc := wantMemop * def.MemOpOccupancy / def.MemOpLatency
		if pts[i].MemOpOccupancy != wantOcc {
			t.Errorf("ratio point %d occupancy = %d, want %d", i, pts[i].MemOpOccupancy, wantOcc)
		}
		// The walk-fraction costs still scale with the penalty.
		if pts[i].BufferHitPenalty != 130 {
			t.Errorf("ratio point %d buffer-hit penalty = %d, want 130", i, pts[i].BufferHitPenalty)
		}
	}
}

func TestTimingAxesAbsoluteLatencyClampsOccupancy(t *testing.T) {
	pts, err := TimingAxes{
		MissPenalties:  []uint64{100},
		MemOpLatencies: []uint64{5},
	}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MemOpLatency != 5 || pts[0].MemOpOccupancy != 5 {
		t.Errorf("tiny latency point = %+v, want fully serialized at 5", pts[0])
	}
}

func TestTimingAxesConflict(t *testing.T) {
	_, err := TimingAxes{
		MemOpLatencies: []uint64{50},
		MemOpRatios:    []float64{0.5},
	}.Points()
	if err == nil || !strings.Contains(err.Error(), "pick one axis") {
		t.Fatalf("latency+ratio conflict not reported: %v", err)
	}
}

func TestGridTimingAxesExpansion(t *testing.T) {
	base := Grid{
		Workloads: []string{"swim"},
		Mechs:     []Mech{{Kind: "RP"}},
		Refs:      1000,
	}

	// TimingAxes expands into the timing axis exactly like the equivalent
	// explicit Timings declaration.
	axes := TimingAxes{MissPenalties: []uint64{100, 200}, RefsPerCycle: []uint64{1, 2}}
	viaAxes := base
	viaAxes.TimingAxes = axes
	pts, err := axes.Points()
	if err != nil {
		t.Fatal(err)
	}
	viaTimings := base
	viaTimings.Timings = pts

	ja, err := viaAxes.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	jt, err := viaTimings.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ja) != 4 || len(ja) != len(jt) {
		t.Fatalf("axes grid has %d cells, explicit grid %d, want 4", len(ja), len(jt))
	}
	for i := range ja {
		if ja[i].Key().Hash() != jt[i].Key().Hash() {
			t.Errorf("cell %d: axes and explicit timing keys differ", i)
		}
	}

	// Declaring both axes is rejected.
	both := viaAxes
	both.Timings = pts
	if _, err := both.Jobs(); err == nil {
		t.Error("grid with Timings and TimingAxes should fail")
	}
}
