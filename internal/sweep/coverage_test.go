package sweep

// AST-driven registry-coverage gate, mirroring internal/report's
// doc-comment gate: every mechanism kind in the sweep registry must carry
// (a) a differential test pinning it to its naive reference model in
// internal/prefetch, and (b) a per-mechanism benchmark row in the
// repository-root bench_test.go. A new kind added to Kinds() fails this
// test until both exist — new mechanisms can't land untested.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strconv"
	"strings"
	"testing"
)

// TestKindsRegistryConsistent pins Kinds() to the Validate/Build switches:
// every listed kind validates and builds at a generic table geometry, and
// an unlisted kind is rejected.
func TestKindsRegistryConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, kind := range Kinds() {
		if seen[kind] {
			t.Errorf("Kinds() lists %q twice", kind)
		}
		seen[kind] = true
		m := Mech{Kind: kind, Rows: 64, Ways: 2, Slots: 2}.Normalize()
		if err := m.Validate(); err != nil {
			t.Errorf("kind %q does not validate: %v", kind, err)
			continue
		}
		p := m.Build()
		if kind == "none" {
			if p != nil {
				t.Errorf(`kind "none" built a non-nil mechanism`)
			}
			continue
		}
		if p == nil {
			t.Errorf("kind %q built nil", kind)
			continue
		}
		if m.Label() == "" {
			t.Errorf("kind %q has an empty label", kind)
		}
	}
	if err := (Mech{Kind: "XXX"}).Validate(); err == nil {
		t.Error("Validate accepted an unknown kind")
	}
}

// differentialTestName maps a registry kind to its required differential
// test function: "DP-PC" -> TestDifferentialDPPC, "none" -> TestDifferentialNone.
func differentialTestName(kind string) string {
	s := strings.ReplaceAll(kind, "-", "")
	if s == "none" {
		s = "None"
	}
	return "TestDifferential" + s
}

// prefetchTestFuncs parses every _test.go file in internal/prefetch (both
// its in-package and external test packages) and returns the declared
// top-level function names.
func prefetchTestFuncs(t *testing.T) map[string]bool {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../prefetch", func(fi fs.FileInfo) bool {
		return strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing internal/prefetch test files: %v", err)
	}
	names := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
					names[fd.Name.Name] = true
				}
			}
		}
	}
	return names
}

// benchMechRows parses the repository-root bench_test.go and returns the
// string literals inside the throughputMechs declaration — the benchmark's
// per-mechanism rows.
func benchMechRows(t *testing.T) map[string]bool {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../../bench_test.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing bench_test.go: %v", err)
	}
	rows := map[string]bool{}
	found := false
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "throughputMechs" {
			continue
		}
		found = true
		ast.Inspect(fd, func(n ast.Node) bool {
			if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.STRING {
				if s, err := strconv.Unquote(bl.Value); err == nil {
					rows[s] = true
				}
			}
			return true
		})
	}
	if !found {
		t.Fatal("bench_test.go no longer declares throughputMechs — update this gate alongside it")
	}
	return rows
}

// TestRegistryCoverage is the gate.
func TestRegistryCoverage(t *testing.T) {
	tests := prefetchTestFuncs(t)
	rows := benchMechRows(t)
	for _, kind := range Kinds() {
		if want := differentialTestName(kind); !tests[want] {
			t.Errorf("registry kind %q has no differential test: add %s to internal/prefetch (see differential_test.go)", kind, want)
		}
		if !rows[kind] {
			t.Errorf("registry kind %q has no benchmark row: add it to throughputMechs in bench_test.go", kind)
		}
	}
}
