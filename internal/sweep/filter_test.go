package sweep

import (
	"strings"
	"testing"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/workload"
)

func filterTestStore(t *testing.T) *Store {
	t.Helper()
	fast := DefaultTiming()
	slow := DefaultTiming()
	slow.MissPenalty = 200
	g := Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}, {Kind: "RP"}},
		TLBEntries: []int{64, 128},
		Refs:       5_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	tg := Grid{
		Workloads: []string{"swim"},
		Mechs:     []Mech{{Kind: "none"}, {Kind: "RP"}},
		Refs:      5_000,
		Timings:   []Timing{fast, slow},
	}
	tjobs, err := tg.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if _, _, err := (&Runner{Store: st}).Run(append(jobs, tjobs...)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFilterParseErrors(t *testing.T) {
	if _, err := ParseFilter("nonsense"); err == nil || !strings.Contains(err.Error(), "field=value") {
		t.Errorf("malformed clause accepted (err=%v)", err)
	}
	if _, err := ParseFilter("bogusfield=3"); err == nil || !strings.Contains(err.Error(), "unknown filter field") {
		t.Errorf("unknown field accepted (err=%v)", err)
	}
	if f, err := ParseFilter(""); err != nil || !f.Match(Key{}) {
		t.Errorf("empty filter should match everything (err=%v)", err)
	}
	// Value typos must error at parse time, not silently match nothing.
	for _, spec := range []string{"entries=12x", "timing=yes", "misspenalty=2OO"} {
		if _, err := ParseFilter(spec); err == nil || !strings.Contains(err.Error(), "bad value") {
			t.Errorf("%s: bad value accepted (err=%v)", spec, err)
		}
	}
}

func TestFilterSelect(t *testing.T) {
	st := filterTestStore(t)

	cases := []struct {
		spec string
		want int
	}{
		{"workload=swim", 4 + 4},          // 4 functional + 4 timing cells
		{"workload=swim,timing=false", 4}, //
		{"mech=DP", 4},                    // DP is functional-only here: 2 workloads × 2 entries
		{"mech=DP,entries=64", 2},
		{"mech=DP,entries=64,workload=mcf", 1},
		{"misspenalty=200", 2},         // the slow timing point
		{"mech=rp,misspenalty=200", 1}, // kind matches case-insensitively
		{"workload=nobody", 0},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		got, err := f.Select(st)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if len(got) != c.want {
			t.Errorf("%s: selected %d cells, want %d", c.spec, len(got), c.want)
		}
		for _, r := range got {
			if !f.Match(r.Key) {
				t.Errorf("%s: selected non-matching key %+v", c.spec, r.Key)
			}
		}
	}

	// Selection order is deterministic and hash-free: sorted by key fields.
	f, _ := ParseFilter("workload=swim,timing=false")
	got, err := f.Select(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if keyLess(got[i].Key, got[i-1].Key) {
			t.Fatal("selection not sorted by key fields")
		}
	}
}

func TestDiffStores(t *testing.T) {
	a := filterTestStore(t)
	b := filterTestStore(t)
	d, err := DiffStores(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical stores diffed: %s", d.Summary())
	}

	// Remove one cell from b, corrupt another.
	rs, err := b.Results()
	if err != nil {
		t.Fatal(err)
	}
	victim := rs[0].Key.Hash()
	b.mu.Lock()
	delete(b.results, victim)
	delete(b.keys, victim)
	mutated := rs[1]
	mutated.Stats.Misses++
	b.results[rs[1].Key.Hash()] = mutated
	b.mu.Unlock()

	d, err = DiffStores(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyA) != 1 || len(d.OnlyB) != 0 || len(d.Changed) != 1 {
		t.Fatalf("diff = %d/%d/%d cells, want 1 only-A and 1 changed", len(d.OnlyA), len(d.OnlyB), len(d.Changed))
	}
	if d.Empty() {
		t.Fatal("non-empty diff reported Empty")
	}
	if s := d.Summary(); !strings.Contains(s, "1 changed") {
		t.Errorf("summary missing changed count: %s", s)
	}
}

func TestStoreGC(t *testing.T) {
	st := filterTestStore(t)
	total := st.Len()

	g := Grid{
		Workloads:  []string{"swim"},
		Mechs:      []Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}},
		TLBEntries: []int{64, 128},
		Refs:       5_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	keep := make(map[string]bool)
	for _, j := range jobs {
		keep[j.Key().Hash()] = true
	}
	dropped, err := st.GC(keep)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != total-len(jobs) || st.Len() != len(jobs) {
		t.Fatalf("gc dropped %d of %d, kept %d; want to keep exactly %d", dropped, total, st.Len(), len(jobs))
	}
	// The kept cells still satisfy the grid from cache.
	_, sum, err := (&Runner{Store: st}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cached != len(jobs) {
		t.Fatalf("gc evicted referenced cells: %+v", sum)
	}
}

// TestTimingNormalizeCanonicalizesSpellings pins the Key contract for the
// timing axis: the zero spellings sim.TimingConfig treats as defaults
// (RefsPerCycle 0 == 1, MemOpOccupancy 0 == MemOpLatency) must
// content-address to the same cell as their explicit forms.
func TestTimingNormalizeCanonicalizesSpellings(t *testing.T) {
	implicit := Timing{MissPenalty: 100, BufferHitPenalty: 65, MemOpLatency: 50,
		MemOpOccupancy: 0, CyclesPerRef: 1, RefsPerCycle: 0, RPSkipWhenBusy: true}
	explicit := implicit
	explicit.MemOpOccupancy = 50
	explicit.RefsPerCycle = 1

	job := func(tm Timing) Job {
		return Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"},
			Config: sim.Default(), Refs: 10_000, Timing: &tm}
	}
	if job(implicit).Key().Hash() != job(explicit).Key().Hash() {
		t.Fatal("equivalent timing spellings content-address to different cells")
	}
	distinct := explicit
	distinct.MemOpOccupancy = 12
	if job(explicit).Key().Hash() == job(distinct).Key().Hash() {
		t.Fatal("distinct occupancy hashed identically")
	}
	// And the two spellings really do simulate identically.
	res, _, err := (&Runner{}).Run([]Job{job(implicit), job(explicit)})
	if err != nil {
		t.Fatal(err)
	}
	if *res[0].Timing != *res[1].Timing {
		t.Fatal("equivalent timing spellings produced different cycle counts")
	}
}

// TestScaledTimingKeepsCostRatios pins the latency-axis calibration: the
// walk-fraction costs scale with the penalty, the default point is exactly
// DefaultTiming (so table3-lat shares table3's cells), and a buffer hit is
// never costlier than the demand fetch it replaces.
func TestScaledTimingKeepsCostRatios(t *testing.T) {
	if got := ScaledTiming(100); got != DefaultTiming() {
		t.Fatalf("ScaledTiming(100) = %+v, want the default point %+v", got, DefaultTiming())
	}
	for _, p := range []uint64{10, 50, 200, 400} {
		s := ScaledTiming(p)
		if s.MissPenalty != p {
			t.Fatalf("penalty %d: MissPenalty = %d", p, s.MissPenalty)
		}
		if s.BufferHitPenalty >= s.MissPenalty {
			t.Errorf("penalty %d: buffer hit (%d cycles) costs at least a demand fetch", p, s.BufferHitPenalty)
		}
		if s.MemOpLatency == 0 || s.MemOpOccupancy == 0 {
			t.Errorf("penalty %d: zeroed memop constants %+v", p, s)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("penalty %d: scaled point invalid: %v", p, err)
		}
	}
}

// TestTimingValidateRejectsOversizedOccupancy pins the panic guard: an
// occupancy longer than the operation latency must fail validation (at
// both the sweep and sim layers) instead of panicking inside the memory
// channel in a worker goroutine.
func TestTimingValidateRejectsOversizedOccupancy(t *testing.T) {
	bad := DefaultTiming()
	bad.MemOpLatency = 5 // occupancy stays 12
	if err := bad.Validate(); err == nil {
		t.Error("sweep.Timing with occupancy > latency validated")
	}
	if err := bad.Config(sim.Default()).Validate(); err == nil {
		t.Error("sim.TimingConfig with occupancy > latency validated")
	}
	job := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 1_000, Timing: &bad}
	if _, _, err := (&Runner{}).Run([]Job{job}); err == nil {
		t.Error("runner accepted the invalid timing job")
	}
}

// TestRunnerNonDefaultTimingMatchesDirect is the satellite bit-equality
// check: a cell with a fully custom TimingConfig must match a hand-built
// sim.TimingSimulator exactly, and must content-address away from the
// default timing point.
func TestRunnerNonDefaultTimingMatchesDirect(t *testing.T) {
	custom := Timing{
		MissPenalty:      250,
		BufferHitPenalty: 20,
		MemOpLatency:     35,
		MemOpOccupancy:   7,
		CyclesPerRef:     2,
		RefsPerCycle:     1,
		RPSkipWhenBusy:   false,
	}
	cfg := sim.Default()
	job := Job{Source: WorkloadSource("mcf"), Mech: Mech{Kind: "RP"}, Config: cfg, Refs: 40_000, Timing: &custom}

	dt := DefaultTiming()
	defJob := job
	defJob.Timing = &dt
	if job.Key().Hash() == defJob.Key().Hash() {
		t.Fatal("custom timing point content-addressed to the default cell")
	}

	res, _, err := (&Runner{}).Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Timing == nil {
		t.Fatal("timing job returned no timing stats")
	}

	s := sim.NewTiming(custom.Config(cfg), job.Mech.Build())
	w, _ := workload.ByName("mcf")
	workload.Generate(w, job.Refs, func(pc, vaddr uint64) bool {
		s.Ref(pc, vaddr)
		return true
	})
	if *res[0].Timing != s.Stats() {
		t.Fatalf("runner %+v != direct %+v", *res[0].Timing, s.Stats())
	}
	if res[0].Timing.Cycles == 0 {
		t.Fatal("no cycles accounted")
	}
}

// TestParseFilterTable drives the parser through its edge cases: empty
// and whitespace-only specs, repeated fields, field-name normalization,
// and malformed clauses.
func TestParseFilterTable(t *testing.T) {
	cases := []struct {
		name, spec string
		wantErr    string // substring; "" means the spec must parse
	}{
		{"empty", "", ""},
		{"whitespace and stray commas", " ,  , ", ""},
		{"single clause", "workload=swim", ""},
		{"repeated field", "entries=64,entries=128", ""},
		{"field case and padding", " WORKLOAD = swim ", ""},
		{"trace digest value", "trace=ABC123", ""},
		{"full digest value", "trace=" + strings.Repeat("ab", 32), ""},
		{"bare word", "nonsense", "field=value"},
		{"empty field name", "=5", "unknown filter field"},
		{"unknown field", "bogus=3", "unknown filter field"},
		{"empty int value", "entries=", "bad value"},
		{"typo int value", "entries=12x", "bad value"},
		{"typo bool value", "timing=yes", "bad value"},
		{"letter in uint", "misspenalty=2OO", "bad value"},
		{"negative refs", "refs=-1", "bad value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseFilter(c.spec)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("ParseFilter(%q): %v", c.spec, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ParseFilter(%q) err = %v, want substring %q", c.spec, err, c.wantErr)
			}
		})
	}
}

// TestFilterMatchTable pins Match semantics directly on hand-built keys —
// conjunction of repeated fields, trace-digest prefix matching (case
// folded), and the workload/trace field split.
func TestFilterMatchTable(t *testing.T) {
	digest := strings.Repeat("ab", 16) + strings.Repeat("cd", 16)
	synth := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 1000}.Key()
	traced := Job{Source: Source{TraceSHA256: digest}, Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 1000}.Key()

	cases := []struct {
		name, spec string
		key        Key
		want       bool
	}{
		{"empty matches synth", "", synth, true},
		{"empty matches trace", "", traced, true},
		{"repeated field is a conjunction", "entries=64,entries=128", synth, false},
		{"repeated identical clauses", "workload=swim,workload=swim", synth, true},
		{"workload never matches a trace cell", "workload=swim", traced, false},
		{"trace never matches a synth cell", "trace=" + digest[:8], synth, false},
		{"trace digest prefix", "trace=" + digest[:12], traced, true},
		{"trace digest prefix case-folded", "trace=" + strings.ToUpper(digest[:12]), traced, true},
		{"trace full digest", "trace=" + digest, traced, true},
		{"trace wrong prefix", "trace=ffff", traced, false},
		{"source label of a trace", "source=trace:" + digest[:12], traced, true},
		{"source label of a workload", "source=swim", synth, true},
		{"conjunction across fields", "workload=swim,entries=128,timing=false", synth, true},
		{"conjunction with one miss", "workload=swim,entries=64", synth, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := ParseFilter(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Match(c.key); got != c.want {
				t.Fatalf("Match(%q) = %v, want %v", c.spec, got, c.want)
			}
		})
	}
}

// TestTimingNormalizeTable pins every canonical-spelling pair the timing
// axis accepts: RefsPerCycle 0 means 1, MemOpOccupancy 0 means fully
// serialized (= MemOpLatency), explicit values survive, and Normalize is
// idempotent.
func TestTimingNormalizeTable(t *testing.T) {
	base := Timing{MissPenalty: 100, BufferHitPenalty: 65, MemOpLatency: 50,
		MemOpOccupancy: 12, CyclesPerRef: 1, RefsPerCycle: 2, RPSkipWhenBusy: true}
	with := func(mut func(*Timing)) Timing { t := base; mut(&t); return t }

	cases := []struct {
		name     string
		in, want Timing
	}{
		{"already canonical", base, base},
		{"zero refs-per-cycle means one",
			with(func(t *Timing) { t.RefsPerCycle = 0 }),
			with(func(t *Timing) { t.RefsPerCycle = 1 })},
		{"zero occupancy means serialized",
			with(func(t *Timing) { t.MemOpOccupancy = 0 }),
			with(func(t *Timing) { t.MemOpOccupancy = 50 })},
		{"both zero spellings at once",
			with(func(t *Timing) { t.RefsPerCycle = 0; t.MemOpOccupancy = 0 }),
			with(func(t *Timing) { t.RefsPerCycle = 1; t.MemOpOccupancy = 50 })},
		{"explicit occupancy survives",
			with(func(t *Timing) { t.MemOpOccupancy = 7 }),
			with(func(t *Timing) { t.MemOpOccupancy = 7 })},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.in.Normalize()
			if got != c.want {
				t.Fatalf("Normalize(%+v) = %+v, want %+v", c.in, got, c.want)
			}
			if again := got.Normalize(); again != got {
				t.Fatalf("Normalize not idempotent: %+v -> %+v", got, again)
			}
		})
	}
}

// TestFilterClauseMatches pins the zero-match diagnostic machinery: per-
// clause solo counts over a key set, and Empty for the no-clause filter.
func TestFilterClauseMatches(t *testing.T) {
	keys := []Key{
		Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}.Key(),
		Job{Source: WorkloadSource("mcf"), Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}.Key(),
		Job{Source: WorkloadSource("mcf"), Mech: Mech{Kind: "DP", Rows: 256, Slots: 2}, Config: sim.Default(), Refs: 1000}.Key(),
	}
	f, err := ParseFilter("mech=RP,workload=mcf,entries=64")
	if err != nil {
		t.Fatal(err)
	}
	if f.Empty() {
		t.Error("three-clause filter reports Empty")
	}
	empty, _ := ParseFilter("")
	if !empty.Empty() {
		t.Error("no-clause filter should be Empty")
	}
	got := f.ClauseMatches(keys)
	want := []ClauseMatch{
		{Clause: "mech=RP", Matches: 2},
		{Clause: "workload=mcf", Matches: 2},
		{Clause: "entries=64", Matches: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("ClauseMatches = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("clause %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestFilterNewTimingFields pins the refspercycle and memopocc fields the
// design-space studies filter on.
func TestFilterNewTimingFields(t *testing.T) {
	tm := Timing{MissPenalty: 100, BufferHitPenalty: 65, MemOpLatency: 50,
		MemOpOccupancy: 12, CyclesPerRef: 1, RefsPerCycle: 2, RPSkipWhenBusy: true}
	timed := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 1000, Timing: &tm}.Key()
	functional := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 1000}.Key()

	cases := []struct {
		spec string
		key  Key
		want bool
	}{
		{"refspercycle=2", timed, true},
		{"refspercycle=1", timed, false},
		{"refspercycle=2", functional, false},
		{"memopocc=12", timed, true},
		{"memopocc=50", timed, false},
		{"memopocc=12", functional, false},
	}
	for _, c := range cases {
		f, err := ParseFilter(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Match(c.key); got != c.want {
			t.Errorf("Match(%q, timing=%v) = %v, want %v", c.spec, c.key.Timing != nil, got, c.want)
		}
	}
}
