package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fixtureGrids reproduces the grids that generated testdata/store_v1.json
// (written by the schema-1 binary): the functional 16-cell smoke grid plus
// a 2-cell default-timing grid.
func fixtureGrids() []Grid {
	return []Grid{
		{
			Workloads:  []string{"swim", "mcf"},
			Mechs:      []Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}, {Kind: "RP"}},
			TLBEntries: []int{64, 128},
			Buffers:    []int{8, 16},
			Refs:       20_000,
		},
		{
			Workloads: []string{"swim"},
			Mechs:     []Mech{{Kind: "none"}, {Kind: "RP"}},
			Refs:      20_000,
			Timing:    true,
		},
	}
}

func copyFixtureFile(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func copyFixture(t *testing.T) string {
	t.Helper()
	return copyFixtureFile(t, "store_v1.json")
}

// migrationRoundTrip pins the migration contract for one fixture store: it
// opens with every cell re-keyed (Migrated/MigratedFrom report the count
// and old schema), those cells satisfy the same grids from cache (no
// recompute), the cached values equal a fresh simulation, and the saved
// file is a stable current-schema store.
func migrationRoundTrip(t *testing.T, fixture string, fromSchema int) {
	t.Helper()
	path := copyFixtureFile(t, fixture)
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrated() != 18 {
		t.Fatalf("migrated %d cells, want 18", st.Migrated())
	}
	if st.MigratedFrom() != fromSchema {
		t.Fatalf("migrated from schema %d, want %d", st.MigratedFrom(), fromSchema)
	}
	if st.Len() != 18 {
		t.Fatalf("store has %d cells, want 18", st.Len())
	}

	for _, g := range fixtureGrids() {
		jobs, err := g.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		cached, sum, err := (&Runner{Store: st}).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Ran != 0 || sum.Cached != len(jobs) {
			t.Fatalf("migrated store did not satisfy the grid from cache: %+v", sum)
		}
		// The old numbers must be exactly what the current simulator
		// computes.
		fresh, _, err := (&Runner{}).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			if cached[i].Stats != fresh[i].Stats {
				t.Fatalf("cell %d: migrated value %+v != fresh simulation %+v",
					i, cached[i].Stats, fresh[i].Stats)
			}
			if (cached[i].Timing == nil) != (fresh[i].Timing == nil) {
				t.Fatalf("cell %d: timing payload mismatch across migration", i)
			}
			if cached[i].Timing != nil && *cached[i].Timing != *fresh[i].Timing {
				t.Fatalf("cell %d: migrated timing %+v != fresh %+v",
					i, *cached[i].Timing, *fresh[i].Timing)
			}
		}
	}

	// Save rewrites the file under the current schema; reopening is a clean
	// (migration-free) load with identical contents.
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Migrated() != 0 {
		t.Errorf("saved store still migrated %d cells on reopen", re.Migrated())
	}
	b1, _ := st.Bytes()
	b2, _ := re.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatal("migrated store changed across save/load")
	}
}

// TestV1MigrationRoundTrip pins the v1 → current contract against the
// fixture the schema-1 binary wrote.
func TestV1MigrationRoundTrip(t *testing.T) {
	migrationRoundTrip(t, "store_v1.json", 1)
}

// TestV2MigrationRoundTrip pins the v2 → current contract against the
// fixture the schema-2 binary wrote: the same 18 cells, reopened with zero
// recomputes under schema 3 (a v2 key parses straight into the v3 layout —
// the mix field is absent — so migration is verification + renumbering).
func TestV2MigrationRoundTrip(t *testing.T) {
	migrationRoundTrip(t, "store_v2.json", 2)
}

// TestV2MigrationRejectsTampering keeps the hash check alive through the
// v2 migration path.
func TestV2MigrationRejectsTampering(t *testing.T) {
	path := copyFixtureFile(t, "store_v2.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"refs": 20000`), []byte(`"refs": 99999`), 1)
	if bytes.Equal(data, tampered) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("tampered v2 store migrated without error")
	}
}

// TestV1MigrationRejectsTampering keeps the hash check alive through the
// migration path.
func TestV1MigrationRejectsTampering(t *testing.T) {
	path := copyFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"refs": 20000`), []byte(`"refs": 99999`), 1)
	if bytes.Equal(data, tampered) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("tampered v1 store migrated without error")
	}
}

// TestFutureSchemaRejected pins the forward-compatibility error.
func TestFutureSchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "results": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("future-schema store loaded without error")
	}
}
