package sweep

// JobSource feeds batches of cells to a Runner. It is the seam between the
// execution engine and where work comes from: the local path wraps a fixed
// job slice (SliceSource), the distributed path (internal/sweepd) leases
// batches from a coordinator's work-stealing feed over HTTP. Both drain
// through the same Runner.Run shard path, so a cell computes identically no
// matter which feed delivered it.
type JobSource interface {
	// NextBatch returns the next batch of jobs to execute. An empty batch
	// means the feed is drained and the run is over. Implementations may
	// block (a remote feed polls until cells free up or the grid
	// completes).
	NextBatch() ([]Job, error)
	// Report delivers the batch's outcome back to the source: the results
	// on success, or the execution error when the whole batch failed
	// (e.g. a trace shorter than the cells' budget). A remote source
	// uploads results — or releases the lease as failed — here.
	Report(results []Result, runErr error) error
}

// SliceSource adapts a fixed job slice to the JobSource interface: one
// batch containing everything, results discarded (the Runner's Store and
// Progress hooks observe them). It exists so the local path exercises the
// same RunSource loop the distributed workers run.
type SliceSource struct {
	Jobs    []Job
	drained bool
}

// NextBatch hands out the whole slice once.
func (s *SliceSource) NextBatch() ([]Job, error) {
	if s.drained {
		return nil, nil
	}
	s.drained = true
	return s.Jobs, nil
}

// Report has nowhere to route results, but a batch execution error is the
// run's error — swallowing it would make RunSource report success for a
// slice that never simulated.
func (s *SliceSource) Report(_ []Result, runErr error) error { return runErr }

// RunSource drains a job source through the runner: pull a batch, execute
// it on the sharded path Run uses, report the outcome, repeat until the
// source is empty. Batch-level execution errors are routed to the source's
// Report (which decides whether they are fatal) rather than aborting the
// loop, so a remote feed can re-queue a failed lease while other batches
// keep flowing. The summary aggregates across batches.
func (r *Runner) RunSource(src JobSource) (Summary, error) {
	var total Summary
	for {
		jobs, err := src.NextBatch()
		if err != nil {
			return total, err
		}
		if len(jobs) == 0 {
			return total, nil
		}
		results, sum, runErr := r.Run(jobs)
		total.Total += sum.Total
		total.Cached += sum.Cached
		total.Ran += sum.Ran
		total.Shards += sum.Shards
		if err := src.Report(results, runErr); err != nil {
			return total, err
		}
	}
}
