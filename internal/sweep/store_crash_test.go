package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// resetSaveSeams restores the durability seams after an injection test.
func resetSaveSeams() {
	saveWrite = func(f *os.File, data []byte) (int, error) { return f.Write(data) }
	saveSync = func(f *os.File) error { return f.Sync() }
	saveRename = os.Rename
	dirSync = func(d *os.File) error { return d.Sync() }
}

// failNth arms one durability seam to fail on its nth call (1-based) and
// returns a pointer reporting whether the injection fired. Covering every
// step means sweeping n upward until a save runs clean — the caller loops
// until the injection stops firing.
func failNth(t *testing.T, seam string, n int) *bool {
	t.Helper()
	fired := new(bool)
	calls := 0
	hit := func() error {
		calls++
		if calls == n {
			*fired = true
			return errors.New("injected I/O failure")
		}
		return nil
	}
	switch seam {
	case "write":
		saveWrite = func(f *os.File, data []byte) (int, error) {
			if err := hit(); err != nil {
				return 0, err
			}
			return f.Write(data)
		}
	case "sync":
		saveSync = func(f *os.File) error {
			if err := hit(); err != nil {
				return err
			}
			return f.Sync()
		}
	case "rename":
		saveRename = func(old, new string) error {
			if err := hit(); err != nil {
				return err
			}
			return os.Rename(old, new)
		}
	case "dirsync":
		dirSync = func(d *os.File) error {
			if err := hit(); err != nil {
				return err
			}
			return d.Sync()
		}
	default:
		t.Fatalf("unknown seam %q", seam)
	}
	return fired
}

// checkStoreComplete reopens a path and asserts it is a complete store: it
// opens, every indexed cell's payload loads, and the cell count is one of
// the allowed sizes (the old store before the commit point, the new one
// after — never anything in between, never a torn file).
func checkStoreComplete(t *testing.T, path string, wantLens ...int) {
	t.Helper()
	st, err := OpenStore(path)
	if err != nil {
		t.Fatalf("store unopenable after failed save: %v", err)
	}
	rs, err := st.Results()
	if err != nil {
		t.Fatalf("store incomplete after failed save: %v", err)
	}
	ok := false
	for _, w := range wantLens {
		ok = ok || len(rs) == w
	}
	if !ok {
		t.Fatalf("store has %d cells after failed save, want one of %v", len(rs), wantLens)
	}
}

// TestSaveCrashLeavesStoreComplete injects a failure into every durability
// step of Save — each temp-file write, fsync, rename and directory fsync in
// turn — for both save shapes (the monolithic → sharded conversion save and
// an incremental one-cell checkpoint), and asserts the invariant the
// layout's atomicity argument rests on: after any failed save the on-disk
// store is the old complete store or the new complete store, and a clean
// retry lands the new one.
func TestSaveCrashLeavesStoreComplete(t *testing.T) {
	defer resetSaveSeams()
	jobs, err := shardGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := (&Runner{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	shapes := []struct {
		name  string
		setup func(t *testing.T) (*Store, string, []int) // store ready to Save; path; allowed cell counts
	}{
		{"conversion", func(t *testing.T) (*Store, string, []int) {
			path := copyFixtureFile(t, "store_v3.json")
			st, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			return st, path, []int{18, 18}
		}},
		{"incremental", func(t *testing.T) (*Store, string, []int) {
			path := savedShardStore(t)
			st, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			extra := results[0]
			extra.Key.Seed = 424242
			st.Put(extra)
			return st, path, []int{16, 17}
		}},
	}

	for _, shape := range shapes {
		for _, seam := range []string{"write", "sync", "rename", "dirsync"} {
			for n := 1; ; n++ {
				st, path, lens := shape.setup(t)
				fired := failNth(t, seam, n)
				err := st.Save()
				resetSaveSeams()
				if !*fired {
					// Past the last call of this seam: the save ran clean.
					if err != nil {
						t.Fatalf("%s/%s: uninjected save failed: %v", shape.name, seam, err)
					}
					break
				}
				if err == nil {
					t.Fatalf("%s/%s call %d: injected failure did not surface", shape.name, seam, n)
				}
				checkStoreComplete(t, path, lens...)
				// The failed save restored its dirty marks: a clean retry on
				// the same store lands the new state in full.
				if err := st.Save(); err != nil {
					t.Fatalf("%s/%s call %d: retry after failure: %v", shape.name, seam, n, err)
				}
				checkStoreComplete(t, path, lens[len(lens)-1])
			}
		}
	}
}

// TestSyncDirPropagatesRealErrors is the durability bugfix pin: syncDir
// must tolerate only the "directory fsync unsupported" errnos (EINVAL,
// ENOTSUP) and propagate everything else — a checkpoint that swallows a
// real I/O failure is claiming durability it does not have.
func TestSyncDirPropagatesRealErrors(t *testing.T) {
	defer resetSaveSeams()
	dir := t.TempDir()

	dirSync = func(d *os.File) error { return syscall.EIO }
	if err := syncDir(dir); err == nil {
		t.Fatal("syncDir swallowed EIO")
	}
	dirSync = func(d *os.File) error { return errors.New("device vanished") }
	if err := syncDir(dir); err == nil {
		t.Fatal("syncDir swallowed a generic I/O error")
	}
	for _, tolerated := range []error{syscall.EINVAL, syscall.ENOTSUP} {
		dirSync = func(d *os.File) error { return tolerated }
		if err := syncDir(dir); err != nil {
			t.Fatalf("syncDir rejected %v (fsync-unsupported must be tolerated): %v", tolerated, err)
		}
	}
	resetSaveSeams()
	if err := syncDir(filepath.Join(dir, "no-such-dir")); err == nil {
		t.Fatal("syncDir swallowed the open error")
	}

	// End to end: a store whose directory cannot fsync for a real reason
	// must fail its Save; one refusing with EINVAL must still save.
	path := filepath.Join(dir, "store.json")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := shardGrid().Jobs()
	rs, _, err := (&Runner{}).Run(jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	st.Put(rs[0])
	dirSync = func(d *os.File) error { return syscall.EIO }
	if err := st.Save(); err == nil {
		t.Fatal("Save swallowed a directory-fsync failure")
	}
	dirSync = func(d *os.File) error { return syscall.EINVAL }
	if err := st.Save(); err != nil {
		t.Fatalf("Save failed on an fsync-unsupported filesystem: %v", err)
	}
	resetSaveSeams()
	checkStoreComplete(t, path, 1)
}
