package sweep

import (
	"fmt"

	"tlbprefetch/internal/sim"
)

// Timing is the cycle-model axis of a cell: sim.TimingConfig's constants
// lifted into the content-addressed Key, so latency-sensitivity sweeps
// (different miss penalties, memory-op costs, issue widths) address
// distinct cells instead of all pinning the package default. A nil *Timing
// on a Job means the functional simulator; a non-nil one selects the cycle
// model with exactly these constants.
type Timing struct {
	MissPenalty      uint64 `json:"miss_penalty"`
	BufferHitPenalty uint64 `json:"buffer_hit_penalty"`
	MemOpLatency     uint64 `json:"memop_latency"`
	MemOpOccupancy   uint64 `json:"memop_occupancy"`
	CyclesPerRef     uint64 `json:"cycles_per_ref"`
	RefsPerCycle     uint64 `json:"refs_per_cycle"`
	RPSkipWhenBusy   bool   `json:"rp_skip_when_busy"`
}

// DefaultTiming returns the paper's Table 3 constants — the axes of
// sim.DefaultTiming, which v1 stores implicitly pinned on every timing
// cell.
func DefaultTiming() Timing { return TimingOf(sim.DefaultTiming()) }

// TimingOf lifts a sim.TimingConfig's constants into the key axis
// (dropping the embedded functional Config, which the Key carries in its
// own fields).
func TimingOf(tc sim.TimingConfig) Timing {
	return Timing{
		MissPenalty:      tc.MissPenalty,
		BufferHitPenalty: tc.BufferHitPenalty,
		MemOpLatency:     tc.MemOpLatency,
		MemOpOccupancy:   tc.MemOpOccupancy,
		CyclesPerRef:     tc.CyclesPerRef,
		RefsPerCycle:     tc.RefsPerCycle,
		RPSkipWhenBusy:   tc.RPSkipWhenBusy,
	}
}

// ScaledTiming lifts sim.ScaledTiming's recalibrated cycle model — the
// default constants scaled to a different miss penalty, walk-fraction
// costs keeping their ratios — into a key axis, so tlbsweep, tlbsim and
// the table3-lat experiment all mean the same cell by the same nominal
// penalty.
func ScaledTiming(missPenalty uint64) Timing {
	return TimingOf(sim.ScaledTiming(missPenalty))
}

// TimingAxes declares a cycle-model design space as independent axes and
// expands it into Timing points. Where ScaledTiming pins the paper's cost
// structure (memory ops at half the walk, two references per cycle) and
// only moves the penalty, TimingAxes decouples the ratios themselves — the
// full Table 3 design space:
//
//   - MissPenalties is the TLB miss cost axis (empty: the paper's default
//     penalty only).
//   - MemOpLatencies (absolute cycles) or MemOpRatios (fractions of the
//     miss penalty; the paper's point is 0.5) set the prefetch memory-op
//     cost. Setting both is an error; setting neither keeps the scaled
//     default at every penalty.
//   - RefsPerCycle is the issue-width axis (empty: the scaled default's
//     width).
//
// Points enumerates the cross product penalty-outermost, then memory-op
// cost, then issue width — the deterministic order Grid.Jobs and the
// table3-space experiment rely on.
type TimingAxes struct {
	MissPenalties  []uint64
	MemOpLatencies []uint64
	MemOpRatios    []float64
	RefsPerCycle   []uint64
}

// Empty reports whether no axis is declared (the zero value).
func (a TimingAxes) Empty() bool {
	return len(a.MissPenalties) == 0 && len(a.MemOpLatencies) == 0 &&
		len(a.MemOpRatios) == 0 && len(a.RefsPerCycle) == 0
}

// Points expands the axes into validated Timing points. Every point starts
// from ScaledTiming at its penalty (buffer-hit and occupancy costs keep
// their walk fractions); an absolute memory-op latency then overrides the
// cost directly (clamping occupancy so the channel is never blocked longer
// than an operation takes), while a ratio derives it from the penalty and
// re-derives the occupancy at the default pipelining ratio.
func (a TimingAxes) Points() ([]Timing, error) {
	if len(a.MemOpLatencies) > 0 && len(a.MemOpRatios) > 0 {
		return nil, fmt.Errorf("sweep: memory-op cost declared both as absolute latencies and as penalty ratios — pick one axis")
	}
	def := DefaultTiming()
	penalties := a.MissPenalties
	if len(penalties) == 0 {
		penalties = []uint64{def.MissPenalty}
	}
	var out []Timing
	for _, p := range penalties {
		base := ScaledTiming(p)
		memops := []Timing{base}
		switch {
		case len(a.MemOpLatencies) > 0:
			memops = memops[:0]
			for _, l := range a.MemOpLatencies {
				t := base
				t.MemOpLatency = l
				// An explicit latency below the scaled occupancy means the
				// channel is fully serialized at that latency.
				if t.MemOpOccupancy > t.MemOpLatency {
					t.MemOpOccupancy = t.MemOpLatency
				}
				memops = append(memops, t)
			}
		case len(a.MemOpRatios) > 0:
			memops = memops[:0]
			for _, r := range a.MemOpRatios {
				t := base
				t.MemOpLatency = uint64(float64(p)*r + 0.5)
				if t.MemOpLatency == 0 {
					t.MemOpLatency = 1
				}
				t.MemOpOccupancy = t.MemOpLatency * def.MemOpOccupancy / def.MemOpLatency
				if t.MemOpOccupancy == 0 {
					t.MemOpOccupancy = 1
				}
				memops = append(memops, t)
			}
		}
		rpcs := a.RefsPerCycle
		if len(rpcs) == 0 {
			rpcs = []uint64{base.RefsPerCycle}
		}
		for _, m := range memops {
			for _, rpc := range rpcs {
				t := m
				t.RefsPerCycle = rpc
				if err := t.Validate(); err != nil {
					return nil, err
				}
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// Config lowers the axis back onto a functional configuration, producing
// the sim.TimingConfig the cell's simulator is built from.
func (t Timing) Config(c sim.Config) sim.TimingConfig {
	return sim.TimingConfig{
		Config:           c,
		MissPenalty:      t.MissPenalty,
		BufferHitPenalty: t.BufferHitPenalty,
		MemOpLatency:     t.MemOpLatency,
		MemOpOccupancy:   t.MemOpOccupancy,
		CyclesPerRef:     t.CyclesPerRef,
		RefsPerCycle:     t.RefsPerCycle,
		RPSkipWhenBusy:   t.RPSkipWhenBusy,
	}
}

// Normalize canonicalizes the equivalent spellings sim.TimingConfig
// accepts — RefsPerCycle 0 means 1, MemOpOccupancy 0 means fully
// serialized (= MemOpLatency) — so identical cycle models always
// content-address to the same cell, mirroring canonicalTLBWays for the
// TLB geometry.
func (t Timing) Normalize() Timing {
	if t.RefsPerCycle == 0 {
		t.RefsPerCycle = 1
	}
	if t.MemOpOccupancy == 0 {
		t.MemOpOccupancy = t.MemOpLatency
	}
	return t
}

// Validate reports whether the constants form a usable cycle model.
func (t Timing) Validate() error {
	if t.MissPenalty == 0 || t.MemOpLatency == 0 || t.CyclesPerRef == 0 {
		return fmt.Errorf("sweep: timing constants must be positive (penalty=%d, memop=%d, perRef=%d)",
			t.MissPenalty, t.MemOpLatency, t.CyclesPerRef)
	}
	if n := t.Normalize(); n.MemOpOccupancy > n.MemOpLatency {
		return fmt.Errorf("sweep: MemOpOccupancy %d exceeds MemOpLatency %d (an operation cannot block the channel longer than it takes)",
			n.MemOpOccupancy, n.MemOpLatency)
	}
	return nil
}
