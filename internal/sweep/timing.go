package sweep

import (
	"fmt"

	"tlbprefetch/internal/sim"
)

// Timing is the cycle-model axis of a cell: sim.TimingConfig's constants
// lifted into the content-addressed Key, so latency-sensitivity sweeps
// (different miss penalties, memory-op costs, issue widths) address
// distinct cells instead of all pinning the package default. A nil *Timing
// on a Job means the functional simulator; a non-nil one selects the cycle
// model with exactly these constants.
type Timing struct {
	MissPenalty      uint64 `json:"miss_penalty"`
	BufferHitPenalty uint64 `json:"buffer_hit_penalty"`
	MemOpLatency     uint64 `json:"memop_latency"`
	MemOpOccupancy   uint64 `json:"memop_occupancy"`
	CyclesPerRef     uint64 `json:"cycles_per_ref"`
	RefsPerCycle     uint64 `json:"refs_per_cycle"`
	RPSkipWhenBusy   bool   `json:"rp_skip_when_busy"`
}

// DefaultTiming returns the paper's Table 3 constants — the axes of
// sim.DefaultTiming, which v1 stores implicitly pinned on every timing
// cell.
func DefaultTiming() Timing { return TimingOf(sim.DefaultTiming()) }

// TimingOf lifts a sim.TimingConfig's constants into the key axis
// (dropping the embedded functional Config, which the Key carries in its
// own fields).
func TimingOf(tc sim.TimingConfig) Timing {
	return Timing{
		MissPenalty:      tc.MissPenalty,
		BufferHitPenalty: tc.BufferHitPenalty,
		MemOpLatency:     tc.MemOpLatency,
		MemOpOccupancy:   tc.MemOpOccupancy,
		CyclesPerRef:     tc.CyclesPerRef,
		RefsPerCycle:     tc.RefsPerCycle,
		RPSkipWhenBusy:   tc.RPSkipWhenBusy,
	}
}

// ScaledTiming lifts sim.ScaledTiming's recalibrated cycle model — the
// default constants scaled to a different miss penalty, walk-fraction
// costs keeping their ratios — into a key axis, so tlbsweep, tlbsim and
// the table3-lat experiment all mean the same cell by the same nominal
// penalty.
func ScaledTiming(missPenalty uint64) Timing {
	return TimingOf(sim.ScaledTiming(missPenalty))
}

// Config lowers the axis back onto a functional configuration, producing
// the sim.TimingConfig the cell's simulator is built from.
func (t Timing) Config(c sim.Config) sim.TimingConfig {
	return sim.TimingConfig{
		Config:           c,
		MissPenalty:      t.MissPenalty,
		BufferHitPenalty: t.BufferHitPenalty,
		MemOpLatency:     t.MemOpLatency,
		MemOpOccupancy:   t.MemOpOccupancy,
		CyclesPerRef:     t.CyclesPerRef,
		RefsPerCycle:     t.RefsPerCycle,
		RPSkipWhenBusy:   t.RPSkipWhenBusy,
	}
}

// Normalize canonicalizes the equivalent spellings sim.TimingConfig
// accepts — RefsPerCycle 0 means 1, MemOpOccupancy 0 means fully
// serialized (= MemOpLatency) — so identical cycle models always
// content-address to the same cell, mirroring canonicalTLBWays for the
// TLB geometry.
func (t Timing) Normalize() Timing {
	if t.RefsPerCycle == 0 {
		t.RefsPerCycle = 1
	}
	if t.MemOpOccupancy == 0 {
		t.MemOpOccupancy = t.MemOpLatency
	}
	return t
}

// Validate reports whether the constants form a usable cycle model.
func (t Timing) Validate() error {
	if t.MissPenalty == 0 || t.MemOpLatency == 0 || t.CyclesPerRef == 0 {
		return fmt.Errorf("sweep: timing constants must be positive (penalty=%d, memop=%d, perRef=%d)",
			t.MissPenalty, t.MemOpLatency, t.CyclesPerRef)
	}
	if n := t.Normalize(); n.MemOpOccupancy > n.MemOpLatency {
		return fmt.Errorf("sweep: MemOpOccupancy %d exceeds MemOpLatency %d (an operation cannot block the channel longer than it takes)",
			n.MemOpOccupancy, n.MemOpLatency)
	}
	return nil
}
