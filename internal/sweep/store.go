package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/stats"
)

// Result is one completed cell: its identity plus the measured counters.
// Timing is set only for cycle-model cells; Apps only for mix cells (one
// per-process attribution entry per mix member, scheduling order).
type Result struct {
	Key    Key              `json:"key"`
	Stats  sim.Stats        `json:"stats"`
	Apps   []sim.Stats      `json:"apps,omitempty"`
	Timing *sim.TimingStats `json:"timing,omitempty"`
}

// storeFile is the legacy monolithic on-disk layout: schema and provenance
// metadata in the header plus the full hash → result map. Stores in this
// shape (any schema) still open — and convert to the sharded layout on the
// next Save — but are no longer written. encoding/json sorts map keys, so
// the serialized form is a canonical function of the store's contents.
type storeFile struct {
	Schema  int               `json:"schema"`
	Binary  string            `json:"binary,omitempty"`
	Results map[string]Result `json:"results"`
}

// binaryVersion stamps stores with the producing binary's module version
// (or VCS revision when built from a checkout) for provenance. It is
// deterministic for a given binary, so saving an unchanged store rewrites
// identical bytes.
func binaryVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			v += "+" + s.Value
			break
		}
	}
	return v
}

// Store is a content-addressed result cache: key hash → Result. It is safe
// for concurrent use by the Runner's workers. A Store may be purely
// in-memory (NewStore) or bound to a file (OpenStore + Save).
//
// A file-bound store is sharded on disk: the bound path holds the cell
// index (every key, plus the digest of each segment), and the payloads
// live in per-prefix segment files under "<path>.d/". The index alone is
// read at open; a segment is read only when a cell in its prefix is
// actually needed, so Get, Merge, GC, filtering and diffing are O(touched
// cells), not O(store).
type Store struct {
	mu     sync.Mutex
	saveMu sync.Mutex // serializes Saves: a checkpoint and a final save must not reorder
	path   string

	keys    map[string]Key    // the index: every cell's key, resident from open
	results map[string]Result // resident payloads (loaded segments + fresh Puts)
	loaded  map[string]bool   // prefix → its on-disk segment is fully resident
	dirty   map[string]bool   // prefix → differs from its on-disk segment
	segs    map[string]string // prefix → digest of its on-disk segment

	segReads  int // segment files read since open (instrumentation, see SegmentReads)
	segWrites int // segment files written since open (instrumentation, see SegmentWrites)

	migrated   int  // cells re-keyed from an older schema at open time
	fromSchema int  // the schema those cells were stored under (0 when none)
	converted  bool // opened from a monolithic file; the next Save writes the sharded layout
}

// NewStore returns an empty in-memory store.
func NewStore() *Store {
	return &Store{
		keys:    make(map[string]Key),
		results: make(map[string]Result),
		loaded:  make(map[string]bool),
		dirty:   make(map[string]bool),
		segs:    make(map[string]string),
	}
}

// OpenStore binds a store to a file, loading its cell index when the file
// exists (a missing file is an empty store, not an error). Sharded stores
// load the index alone — O(cells) of key metadata, no payloads; each
// segment is read, digest-verified and hash-checked only when one of its
// cells is first touched.
//
// Legacy monolithic files still open transparently. A current-schema
// monolithic store loads with every cell verified against its stored hash
// and converts to the sharded layout on the next Save (Converted reports
// this). Schema-1 and schema-2 stores additionally migrate: every cell is
// verified under its old schema, re-keyed under the current one (see
// keyV1.toCurrent and migrateV2), and reported via Migrated/MigratedFrom.
// Unseeded grids then satisfy every migrated cell from cache; grids with a
// nonzero base seed derive their per-cell streams from the key layout and
// therefore name fresh cells across a schema change that reshapes the
// layout (v3 does not — see DeriveSeed).
func OpenStore(path string) (*Store, error) {
	s := NewStore()
	s.path = path
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("sweep: reading store: %w", err)
	}
	var f struct {
		Schema   int                        `json:"schema"`
		Layout   string                     `json:"layout"`
		Segments map[string]string          `json:"segments"`
		Keys     map[string]Key             `json:"keys"`
		Results  map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sweep: parsing store %s: %w", path, err)
	}
	if f.Layout != "" {
		if f.Layout != storeLayout {
			return nil, fmt.Errorf("sweep: store %s has layout %q, this binary speaks %q (delete or migrate it)",
				path, f.Layout, storeLayout)
		}
		if f.Schema != KeySchema {
			return nil, fmt.Errorf("sweep: store %s has schema %d, this binary speaks %d (delete or migrate it)",
				path, f.Schema, KeySchema)
		}
		for p := range f.Segments {
			if len(p) != segPrefixLen {
				return nil, fmt.Errorf("sweep: store %s index names malformed segment prefix %q", path, p)
			}
		}
		for h, k := range f.Keys {
			if len(h) < segPrefixLen {
				return nil, fmt.Errorf("sweep: store %s index entry %q is not a key hash", path, h)
			}
			// A self-consistent cell from another schema hashes correctly
			// (the schema is part of the key), so check it explicitly: it
			// must be named as a schema problem, not surface later as a
			// baffling cell mismatch in -diff or a cache miss in a sweep.
			if k.Schema != KeySchema {
				return nil, fmt.Errorf("sweep: store %s entry %s declares key schema %d, this binary speaks %d (delete or migrate it)",
					path, h, k.Schema, KeySchema)
			}
			if _, ok := f.Segments[segPrefix(h)]; !ok {
				return nil, fmt.Errorf("sweep: store %s index names cell %s but no segment covers prefix %s — corrupt or hand-edited",
					path, h, segPrefix(h))
			}
			s.keys[h] = k
		}
		for p, dig := range f.Segments {
			s.segs[p] = dig
		}
		return s, nil
	}

	// Monolithic file: the pre-sharding layout. Load it whole (its payloads
	// are inline) and mark every prefix dirty so the next Save rewrites the
	// store sharded.
	switch f.Schema {
	case KeySchema:
		for h, raw := range f.Results {
			var r Result
			if err := json.Unmarshal(raw, &r); err != nil {
				return nil, fmt.Errorf("sweep: store %s entry %s: %w", path, h, err)
			}
			if r.Key.Schema != KeySchema {
				return nil, fmt.Errorf("sweep: store %s entry %s declares key schema %d, this binary speaks %d (delete or migrate it)",
					path, h, r.Key.Schema, KeySchema)
			}
			if got := r.Key.Hash(); got != h {
				return nil, fmt.Errorf("sweep: store %s entry %s does not hash to its key (%s) — corrupt or hand-edited",
					path, h, got)
			}
			s.results[h] = r
		}
	case 1:
		migrated, err := migrateV1(path, f.Results)
		if err != nil {
			return nil, err
		}
		s.results = migrated
		s.migrated = len(migrated)
		s.fromSchema = 1
	case 2:
		migrated, err := migrateV2(path, f.Results)
		if err != nil {
			return nil, err
		}
		s.results = migrated
		s.migrated = len(migrated)
		s.fromSchema = 2
	default:
		return nil, fmt.Errorf("sweep: store %s has schema %d, this binary speaks %d (delete or migrate it)",
			path, f.Schema, KeySchema)
	}
	s.converted = true
	for h, r := range s.results {
		s.keys[h] = r.Key
		p := segPrefix(h)
		s.loaded[p] = true
		s.dirty[p] = true
	}
	return s, nil
}

// Path returns the file the store is bound to ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Migrated returns how many cells were re-keyed from an older schema when
// the store was opened (0 for current-schema and in-memory stores).
func (s *Store) Migrated() int { return s.migrated }

// MigratedFrom returns the schema the migrated cells were stored under (0
// when the store opened without migrating).
func (s *Store) MigratedFrom() int { return s.fromSchema }

// Converted reports whether the store was opened from a legacy monolithic
// file — its cells are all resident and the next Save rewrites it under
// the sharded segment+index layout.
func (s *Store) Converted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.converted
}

// Len returns the number of stored results, from the index alone.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// Has reports whether a cell is present, from the index alone — no
// segment is read.
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.keys[hash]
	return ok
}

// Get looks a result up by key hash. A miss is decided from the index
// without touching the disk; a hit reads (at most) the one segment file
// the hash's prefix names.
func (s *Store) Get(hash string) (Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(hash)
}

func (s *Store) getLocked(hash string) (Result, bool, error) {
	if r, ok := s.results[hash]; ok {
		return r, true, nil
	}
	if _, ok := s.keys[hash]; !ok {
		return Result{}, false, nil
	}
	if err := s.loadSegmentLocked(segPrefix(hash)); err != nil {
		return Result{}, false, err
	}
	r, ok := s.results[hash]
	if !ok {
		return Result{}, false, fmt.Errorf("sweep: store %s index names cell %s but its segment lacks it — corrupt or hand-edited",
			s.path, hash)
	}
	return r, true, nil
}

// Put records a result under its key's hash, replacing any previous value.
func (s *Store) Put(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := r.Key.Hash()
	s.results[h] = r
	s.keys[h] = r.Key
	s.dirty[segPrefix(h)] = true
}

// mergeConflictShown caps how many conflicting hashes a MergeConflictError
// renders (all of them are carried in Hashes).
const mergeConflictShown = 8

// MergeConflictError reports every cell in a merged batch whose payload
// diverged from the value already stored — two honest runs of one
// content-addressed cell can never disagree, so each one is evidence of
// simulator behaviour changing without a schema bump. Hashes holds every
// conflicting hash in batch order; Error renders the count plus the first
// mergeConflictShown of them.
type MergeConflictError struct {
	Hashes []string
}

// Error implements error.
func (e *MergeConflictError) Error() string {
	shown := e.Hashes
	more := ""
	if len(shown) > mergeConflictShown {
		more = fmt.Sprintf(" +%d more", len(shown)-mergeConflictShown)
		shown = shown[:mergeConflictShown]
	}
	short := make([]string, len(shown))
	for i, h := range shown {
		short[i] = fmt.Sprintf("%.12s…", h)
	}
	return fmt.Sprintf("sweep: merge conflict on %d cell(s) [%s%s]: a different payload is already stored (simulator behaviour changed without a schema bump?)",
		len(e.Hashes), strings.Join(short, " "), more)
}

// Merge records a batch of results under one lock acquisition — the
// coordinator's ingest path, where several workers' uploads race for the
// store. A cell already present with an identical payload is skipped
// (idempotent re-delivery after a lease expiry); a cell already present
// with a *different* payload is a conflict — Merge keeps the first-accepted
// value, merges the rest of the batch, and reports every conflicting cell
// in one *MergeConflictError, so a divergent worker is diagnosable in a
// single pass. Only the segments the batch's prefixes name are read.
func (s *Store) Merge(rs []Result) (added int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var conflicts []string
	for _, r := range rs {
		h := r.Key.Hash()
		old, ok, gerr := s.getLocked(h)
		if gerr != nil {
			return added, gerr
		}
		if !ok {
			s.results[h] = r
			s.keys[h] = r.Key
			s.dirty[segPrefix(h)] = true
			added++
			continue
		}
		co, errO := stats.Canonical(old)
		cn, errN := stats.Canonical(r)
		if errO != nil || errN != nil || !bytes.Equal(co, cn) {
			conflicts = append(conflicts, h)
		}
	}
	if len(conflicts) > 0 {
		err = &MergeConflictError{Hashes: conflicts}
	}
	return added, err
}

// IndexKeys returns every stored cell's key, sorted by key hash, from the
// index alone — no segment is read. This is the O(index) way to match
// filters or diagnose them without paying for payloads.
func (s *Store) IndexKeys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	hashes := make([]string, 0, len(s.keys))
	for h := range s.keys {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	out := make([]Key, 0, len(hashes))
	for _, h := range hashes {
		out = append(out, s.keys[h])
	}
	return out
}

// Results returns every stored result sorted by key hash — the same
// deterministic order the serialized form uses. Every segment is loaded;
// prefer IndexKeys or a Filter when the payloads are not all needed.
func (s *Store) Results() ([]Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadAllLocked(); err != nil {
		return nil, err
	}
	hashes := make([]string, 0, len(s.keys))
	for h := range s.keys {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	out := make([]Result, 0, len(hashes))
	for _, h := range hashes {
		r, ok := s.results[h]
		if !ok {
			return nil, fmt.Errorf("sweep: store %s index names cell %s but its segment lacks it — corrupt or hand-edited",
				s.path, h)
		}
		out = append(out, r)
	}
	return out, nil
}

// Bytes serializes the store's full contents in the canonical monolithic
// form: a pure function of the cells — same results → identical bytes,
// regardless of insertion order or how many workers produced them. It is
// the store-equality currency for tests and tooling; Save does not write
// it (the sharded layout is the on-disk form).
func (s *Store) Bytes() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadAllLocked(); err != nil {
		return nil, err
	}
	f := storeFile{Schema: KeySchema, Binary: binaryVersion(), Results: s.results}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GC drops every cell whose key hash is not in keep, returning how many
// were removed. Pair it with Grid.Jobs to shrink a store down to exactly
// the cells a current grid references. Only segments losing a strict
// subset of their cells are read; a fully dropped segment is unlinked at
// the next Save without ever being loaded.
func (s *Store) GC(keep map[string]bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byPrefix := make(map[string][]string)
	for h := range s.keys {
		if !keep[h] {
			p := segPrefix(h)
			byPrefix[p] = append(byPrefix[p], h)
		}
	}
	kept := make(map[string]int)
	for h := range s.keys {
		if keep[h] {
			kept[segPrefix(h)]++
		}
	}
	dropped := 0
	for p, drop := range byPrefix {
		if kept[p] > 0 {
			// Mixed segment: its survivors must be resident so Save can
			// rewrite it in full.
			if err := s.loadSegmentLocked(p); err != nil {
				return dropped, err
			}
		}
		for _, h := range drop {
			delete(s.keys, h)
			delete(s.results, h)
			dropped++
		}
		s.dirty[p] = true
	}
	return dropped, nil
}

// SegmentReads returns how many segment files were read since the store
// was opened — the instrumentation behind the O(touched segments) pins on
// filtering and single-cell lookups.
func (s *Store) SegmentReads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segReads
}

// SegmentWrites returns how many segment files were written since the
// store was opened — the instrumentation behind the dirty-segments-only
// checkpoint pin.
func (s *Store) SegmentWrites() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segWrites
}

// Segments returns how many on-disk segments the store currently
// references (0 for in-memory and never-saved stores).
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}
