package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/stats"
)

// Result is one completed cell: its identity plus the measured counters.
// Timing is set only for cycle-model cells; Apps only for mix cells (one
// per-process attribution entry per mix member, scheduling order).
type Result struct {
	Key    Key              `json:"key"`
	Stats  sim.Stats        `json:"stats"`
	Apps   []sim.Stats      `json:"apps,omitempty"`
	Timing *sim.TimingStats `json:"timing,omitempty"`
}

// storeFile is the on-disk layout: schema and provenance metadata in the
// header plus the hash → result map. encoding/json sorts map keys, so the
// serialized form is a canonical function of the store's contents (the
// binary stamp is a pure function of the producing binary, keeping
// repeated saves byte-identical).
type storeFile struct {
	Schema  int               `json:"schema"`
	Binary  string            `json:"binary,omitempty"`
	Results map[string]Result `json:"results"`
}

// binaryVersion stamps stores with the producing binary's module version
// (or VCS revision when built from a checkout) for provenance. It is
// deterministic for a given binary, so saving an unchanged store rewrites
// identical bytes.
func binaryVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			v += "+" + s.Value
			break
		}
	}
	return v
}

// Store is a content-addressed result cache: key hash → Result. It is safe
// for concurrent use by the Runner's workers. A Store may be purely
// in-memory (NewStore) or bound to a JSON file (OpenStore + Save).
type Store struct {
	mu         sync.Mutex
	saveMu     sync.Mutex // serializes Saves: a checkpoint and a final save must not reorder
	path       string
	results    map[string]Result
	migrated   int // cells re-keyed from an older schema at open time
	fromSchema int // the schema those cells were stored under (0 when none)
}

// NewStore returns an empty in-memory store.
func NewStore() *Store {
	return &Store{results: make(map[string]Result)}
}

// OpenStore binds a store to a JSON file, loading its contents when the
// file exists (a missing file is an empty store, not an error). Schema-1
// and schema-2 stores migrate transparently: every cell is verified
// against its stored hash under its old schema, re-keyed under the current
// one (see keyV1.toCurrent and migrateV2), and reported via Migrated /
// MigratedFrom; the file itself is rewritten under the current schema on
// the next Save. Unseeded grids then satisfy every migrated cell from
// cache; grids with a nonzero base seed derive their per-cell streams from
// the key layout and therefore name fresh cells across a schema change
// that reshapes the layout (v3 does not — see DeriveSeed).
func OpenStore(path string) (*Store, error) {
	s := NewStore()
	s.path = path
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: reading store: %w", err)
	}
	var f struct {
		Schema  int                        `json:"schema"`
		Results map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sweep: parsing store %s: %w", path, err)
	}
	switch f.Schema {
	case KeySchema:
		for h, raw := range f.Results {
			var r Result
			if err := json.Unmarshal(raw, &r); err != nil {
				return nil, fmt.Errorf("sweep: store %s entry %s: %w", path, h, err)
			}
			// A self-consistent cell from another schema hashes correctly
			// (the schema is part of the key), so check it explicitly: it
			// must be named as a schema problem, not surface later as a
			// baffling cell mismatch in -diff or a cache miss in a sweep.
			if r.Key.Schema != KeySchema {
				return nil, fmt.Errorf("sweep: store %s entry %s declares key schema %d, this binary speaks %d (delete or migrate it)",
					path, h, r.Key.Schema, KeySchema)
			}
			if got := r.Key.Hash(); got != h {
				return nil, fmt.Errorf("sweep: store %s entry %s does not hash to its key (%s) — corrupt or hand-edited",
					path, h, got)
			}
			s.results[h] = r
		}
	case 1:
		migrated, err := migrateV1(path, f.Results)
		if err != nil {
			return nil, err
		}
		s.results = migrated
		s.migrated = len(migrated)
		s.fromSchema = 1
	case 2:
		migrated, err := migrateV2(path, f.Results)
		if err != nil {
			return nil, err
		}
		s.results = migrated
		s.migrated = len(migrated)
		s.fromSchema = 2
	default:
		return nil, fmt.Errorf("sweep: store %s has schema %d, this binary speaks %d (delete or migrate it)",
			path, f.Schema, KeySchema)
	}
	return s, nil
}

// Path returns the file the store is bound to ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Migrated returns how many cells were re-keyed from an older schema when
// the store was opened (0 for current-schema and in-memory stores).
func (s *Store) Migrated() int { return s.migrated }

// MigratedFrom returns the schema the migrated cells were stored under (0
// when the store opened without migrating).
func (s *Store) MigratedFrom() int { return s.fromSchema }

// Len returns the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// Get looks a result up by key hash.
func (s *Store) Get(hash string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[hash]
	return r, ok
}

// Put records a result under its key's hash, replacing any previous value.
func (s *Store) Put(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[r.Key.Hash()] = r
}

// Merge records a batch of results under one lock acquisition — the
// coordinator's ingest path, where several workers' uploads race for the
// store. A cell already present with an identical payload is skipped
// (idempotent re-delivery after a lease expiry); a cell already present
// with a *different* payload is a conflict — Merge keeps the first-accepted
// value, merges the rest of the batch, and reports the conflict, since two
// honest runs of one content-addressed cell can never disagree.
func (s *Store) Merge(rs []Result) (added int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rs {
		h := r.Key.Hash()
		old, ok := s.results[h]
		if !ok {
			s.results[h] = r
			added++
			continue
		}
		co, errO := stats.Canonical(old)
		cn, errN := stats.Canonical(r)
		if errO != nil || errN != nil || string(co) != string(cn) {
			if err == nil {
				err = fmt.Errorf("sweep: merge conflict on cell %.12s…: a different payload is already stored (simulator behaviour changed without a schema bump?)", h)
			}
		}
	}
	return added, err
}

// Results returns every stored result sorted by key hash — the same
// deterministic order the serialized form uses.
func (s *Store) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	hashes := make([]string, 0, len(s.results))
	for h := range s.results {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	out := make([]Result, 0, len(hashes))
	for _, h := range hashes {
		out = append(out, s.results[h])
	}
	return out
}

// Bytes serializes the store. The output is a pure function of the
// contents: same results → identical bytes, regardless of insertion order
// or how many workers produced them.
func (s *Store) Bytes() ([]byte, error) {
	s.mu.Lock()
	f := storeFile{Schema: KeySchema, Binary: binaryVersion(), Results: s.results}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	err := enc.Encode(f)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GC drops every cell whose key hash is not in keep, returning how many
// were removed. Pair it with Grid.Jobs to shrink a store down to exactly
// the cells a current grid references.
func (s *Store) GC(keep map[string]bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for h := range s.results {
		if !keep[h] {
			delete(s.results, h)
			dropped++
		}
	}
	return dropped
}

// Save writes the store to its bound file atomically and durably: the
// serialized bytes land in a temp file which is fsynced before the rename,
// and the parent directory is fsynced after, so a crash at any point leaves
// either the old complete store or the new complete store — never a torn
// file, and never a rename the filesystem forgot. Saves are serialized
// against each other (a periodic checkpoint racing a final save must not
// let older bytes land last), and the snapshot itself is taken under the
// results lock, so a concurrent Merge is either fully in or fully out.
// Saving an in-memory store is a no-op.
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	data, err := s.Bytes()
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".sweep-store-*")
	if err != nil {
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	tmpName := tmp.Name()
	// CreateTemp makes the file 0600; keep the existing store's mode (or a
	// conventional 0644) so the rename does not silently tighten it.
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(s.path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Filesystems that refuse to fsync directories are tolerated: the
// rename itself already happened, only its crash-durability is weaker.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
