package sweep

import (
	"testing"

	"tlbprefetch/internal/prefetch"
)

// fuzzMech resolves a registry kind to a small, eviction-heavy geometry
// (32 rows, 2-way, 2 slots — tiny tables wrap and conflict constantly).
func fuzzMech(t testing.TB, kind string) prefetch.Prefetcher {
	m := Mech{Kind: kind, Rows: 32, Ways: 2, Slots: 2}.Normalize()
	if err := m.Validate(); err != nil {
		t.Fatalf("registry kind %q does not validate at the fuzz geometry: %v", kind, err)
	}
	return m.Build()
}

// FuzzOnMiss drives every registered mechanism with an arbitrary
// miss/hit/eviction interleaving decoded from the fuzz input and checks
// the OnMiss contract properties that the simulator relies on:
//
//   - predictions are appended to the caller's scratch buffer without
//     reallocating it (they never exceed the provided capacity);
//   - a mechanism never prefetches the page that triggered the miss;
//   - state survives arbitrary interleavings, including mid-stream
//     Resets, without panicking.
//
// The decoded stream respects the one invariant real miss streams have:
// consecutive misses are never the same page (a page that just filled the
// TLB cannot immediately miss again).
func FuzzOnMiss(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 1})
	f.Add([]byte{7, 1, 3, 0, 7, 1, 3, 0, 9, 2, 3, 128, 7, 1, 3, 0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range Kinds() {
			p := fuzzMech(t, kind)
			if p == nil { // the "none" baseline
				continue
			}
			const scratchCap = 64
			scratch := make([]uint64, 0, scratchCap)
			var (
				lastVPN uint64
				hasLast bool
				ring    [8]uint64
				head    uint64
			)
			for i := 0; i+3 < len(data); i += 4 {
				// 16-bit page space: dense enough to revisit pages, small
				// enough to hammer every set of a 32-row table.
				vpn := uint64(data[i]) | uint64(data[i+1])<<8
				if hasLast && vpn == lastVPN {
					vpn = (vpn + 1) & 0xffff
				}
				ctrl := data[i+3]
				ev := prefetch.Event{
					VPN:       vpn,
					PC:        uint64(data[i+2] & 0x3f),
					BufferHit: ctrl&1 != 0,
				}
				if head >= uint64(len(ring)) {
					if evicted := ring[head%uint64(len(ring))]; evicted != vpn {
						ev.EvictedVPN, ev.HasEvicted = evicted, true
					}
				}
				ring[head%uint64(len(ring))] = vpn
				head++
				lastVPN, hasLast = vpn, true

				act := p.OnMiss(ev, scratch[:0])
				if n := len(act.Prefetches); n > 0 {
					if n > scratchCap {
						t.Fatalf("%s: %d predictions overflow the %d-entry scratch buffer", kind, n, scratchCap)
					}
					if &act.Prefetches[0] != &scratch[:1][0] {
						t.Fatalf("%s: predictions reallocated away from the caller's scratch buffer", kind)
					}
					for _, pfn := range act.Prefetches {
						if pfn == ev.VPN {
							t.Fatalf("%s: prefetched the triggering page %#x (predictions %v)", kind, ev.VPN, act.Prefetches)
						}
					}
				}
				if ctrl&0xc0 == 0xc0 {
					p.Reset()
				}
			}
		}
	})
}
