package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

func testGrid(refs uint64) Grid {
	return Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}, {Kind: "RP"}},
		TLBEntries: []int{64, 128},
		Buffers:    []int{8, 16},
		Refs:       refs,
	}
}

func TestGridEnumeratesCrossProduct(t *testing.T) {
	jobs, err := testGrid(10_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 mechs x 2 TLB sizes x 2 buffers.
	if len(jobs) != 16 {
		t.Fatalf("jobs = %d, want 16", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		h := j.Key().Hash()
		if seen[h] {
			t.Fatalf("duplicate key hash for %+v", j)
		}
		seen[h] = true
	}
}

func TestGridDedupesAxesTheMechanismIgnores(t *testing.T) {
	g := Grid{
		Workloads: []string{"swim"},
		Mechs: []Mech{
			{Kind: "RP", Rows: 64},
			{Kind: "RP", Rows: 256}, // same cell: RP has no table
			{Kind: "ASP", Rows: 256, Slots: 4},
			{Kind: "ASP", Rows: 256, Slots: 2}, // same cell: ASP has no slots
		},
		Refs: 10_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (RP and ASP,256 each once)", len(jobs))
	}
}

func TestMechNormalizeLabelValidate(t *testing.T) {
	if got := (Mech{Kind: "DP", Rows: 256, Ways: 1}).Label(); got != "DP,256,D" {
		t.Errorf("label = %q", got)
	}
	if got := (Mech{Kind: "MP", Rows: 256, Ways: 256}).Label(); got != "MP,256,F" {
		t.Errorf("label = %q", got)
	}
	if got := (Mech{Kind: "RP", Rows: 999}).Normalize(); got != (Mech{Kind: "RP"}) {
		t.Errorf("RP normalize kept table params: %+v", got)
	}
	if err := (Mech{Kind: "XX"}).Validate(); err == nil {
		t.Error("unknown kind validated")
	}
	if err := (Mech{Kind: "DP", Ways: 1}).Validate(); err == nil {
		t.Error("DP with no rows validated")
	}
	if err := (Mech{Kind: "none"}).Validate(); err != nil {
		t.Errorf("none: %v", err)
	}
}

func TestKeyCanonicalizesFullyAssociativeTLB(t *testing.T) {
	a := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"}, Refs: 1000,
		Config: sim.Config{TLB: tlb.Config{Entries: 128, Ways: 0}, BufferEntries: 16, PageShift: 12}}
	b := a
	b.Config.TLB.Ways = 128 // the same fully associative TLB, spelled explicitly
	if a.Key().Hash() != b.Key().Hash() {
		t.Fatal("Ways=0 and Ways=Entries content-address to different cells")
	}
	c := a
	c.Config.TLB.Ways = 2
	if a.Key().Hash() == c.Key().Hash() {
		t.Fatal("distinct associativity hashed identically")
	}
	// And the two spellings really do simulate identically.
	res, _, err := (&Runner{}).Run([]Job{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats != res[1].Stats {
		t.Fatal("equivalent TLB spellings produced different stats")
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	dt := DefaultTiming()
	bad.Timing = &dt
	bad.Warmup = 10
	if err := bad.Validate(); err == nil {
		t.Error("timing job with warmup validated")
	}
}

// TestWorkerCountDeterminism pins the store-level determinism contract:
// the same grid run with 1 worker and with many workers produces
// byte-identical stores.
func TestWorkerCountDeterminism(t *testing.T) {
	jobs, err := testGrid(30_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var stores [][]byte
	for _, workers := range []int{1, 8} {
		st := NewStore()
		r := Runner{Store: st, Workers: workers}
		if _, _, err := r.Run(jobs); err != nil {
			t.Fatal(err)
		}
		b, err := st.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, b)
	}
	if !bytes.Equal(stores[0], stores[1]) {
		t.Fatal("1-worker and 8-worker sweeps produced different stores")
	}
}

// TestSingleCellRerunMatchesSweep pins cell-level reproducibility: running
// one cell in isolation yields exactly the stats the full sweep stored for
// it.
func TestSingleCellRerunMatchesSweep(t *testing.T) {
	jobs, err := testGrid(30_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if _, _, err := (&Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	for _, pick := range []int{3, 10, len(jobs) - 1} {
		solo, _, err := (&Runner{}).Run([]Job{jobs[pick]})
		if err != nil {
			t.Fatal(err)
		}
		stored, ok, err := st.Get(jobs[pick].Key().Hash())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cell %d missing from store", pick)
		}
		if solo[0].Stats != stored.Stats {
			t.Fatalf("cell %d: isolated run %+v != sweep value %+v", pick, solo[0].Stats, stored.Stats)
		}
	}
}

// TestRunnerMatchesDirectSimulator pins the runner's shard loop (including
// warmup) against a hand-rolled simulator run.
func TestRunnerMatchesDirectSimulator(t *testing.T) {
	w, _ := workload.ByName("gap")
	cfg := sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}
	job := Job{Source: WorkloadSource("gap"), Mech: Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2},
		Config: cfg, Refs: 40_000, Warmup: 20_000}

	res, _, err := (&Runner{}).Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}

	s := sim.New(cfg, job.Mech.Build())
	var seen uint64
	workload.Generate(w, job.Warmup+job.Refs, func(pc, vaddr uint64) bool {
		s.Ref(pc, vaddr)
		seen++
		if seen == job.Warmup {
			s.ResetStats()
		}
		return true
	})
	if res[0].Stats != s.Stats() {
		t.Fatalf("runner %+v != direct %+v", res[0].Stats, s.Stats())
	}
}

// TestTimingJobMatchesDirectSimulator does the same for the cycle model.
func TestTimingJobMatchesDirectSimulator(t *testing.T) {
	w, _ := workload.ByName("mcf")
	cfg := sim.Default()
	dt := DefaultTiming()
	job := Job{Source: WorkloadSource("mcf"), Mech: Mech{Kind: "RP"}, Config: cfg, Refs: 40_000, Timing: &dt}

	res, _, err := (&Runner{}).Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Timing == nil {
		t.Fatal("timing job returned no timing stats")
	}

	tc := sim.DefaultTiming()
	tc.Config = cfg
	s := sim.NewTiming(tc, job.Mech.Build())
	workload.Generate(w, job.Refs, func(pc, vaddr uint64) bool {
		s.Ref(pc, vaddr)
		return true
	})
	if *res[0].Timing != s.Stats() {
		t.Fatalf("runner %+v != direct %+v", *res[0].Timing, s.Stats())
	}
	if res[0].Timing.Cycles == 0 {
		t.Fatal("no cycles accounted")
	}
}

func TestCacheSatisfiesSecondRun(t *testing.T) {
	jobs, err := testGrid(20_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	r := Runner{Store: st}
	if _, sum, err := r.Run(jobs); err != nil || sum.Ran != len(jobs) {
		t.Fatalf("first run: sum=%+v err=%v", sum, err)
	}
	var events int
	r.Progress = func(ev ProgressEvent) {
		events++
		if !ev.Cached {
			t.Errorf("cell %s re-ran on the second pass", ev.Result.Key.Hash())
		}
	}
	before, _ := st.Bytes()
	_, sum, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cached != len(jobs) || sum.Ran != 0 {
		t.Fatalf("second run not fully cached: %+v", sum)
	}
	if events != len(jobs) {
		t.Fatalf("progress events = %d, want %d", events, len(jobs))
	}
	after, _ := st.Bytes()
	if !bytes.Equal(before, after) {
		t.Fatal("cached pass mutated the store")
	}
}

// TestDirtyCellRecomputed simulates editing one mechanism: dropping one
// cell from the store re-runs only that cell.
func TestDirtyCellRecomputed(t *testing.T) {
	jobs, err := testGrid(20_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	r := Runner{Store: st}
	first, _, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	dirty := jobs[5].Key().Hash()
	st.mu.Lock()
	delete(st.results, dirty)
	delete(st.keys, dirty)
	st.mu.Unlock()
	second, sum, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ran != 1 || sum.Cached != len(jobs)-1 {
		t.Fatalf("dirty-cell pass: %+v", sum)
	}
	for i := range first {
		if first[i].Stats != second[i].Stats {
			t.Fatalf("cell %d changed across dirty re-run", i)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := Grid{Workloads: []string{"swim"}, Mechs: []Mech{{Kind: "SP"}}, Refs: 10_000}.Jobs()
	if _, _, err := (&Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := st.Bytes()
	b2, _ := re.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatal("store changed across save/load")
	}
	if re.Len() != 1 {
		t.Fatalf("reloaded store has %d results", re.Len())
	}
}

func TestStoreRejectsTamperedEntries(t *testing.T) {
	dir := t.TempDir()
	jobs, _ := Grid{Workloads: []string{"swim"}, Mechs: []Mech{{Kind: "SP"}}, Refs: 10_000}.Jobs()
	results, _, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Monolithic layout: a hand-edited key no longer hashes to its address.
	mono := storeFile{Schema: KeySchema, Results: map[string]Result{results[0].Key.Hash(): results[0]}}
	raw, err := json.Marshal(mono)
	if err != nil {
		t.Fatal(err)
	}
	monoPath := filepath.Join(dir, "mono.json")
	tampered := bytes.Replace(raw, []byte(`"refs":10000`), []byte(`"refs":99999`), 1)
	if bytes.Equal(raw, tampered) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(monoPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(monoPath); err == nil {
		t.Fatal("tampered monolithic store loaded without error")
	}

	// Unknown header schema is named as such.
	mono.Schema = KeySchema + 1
	raw, _ = json.Marshal(mono)
	os.WriteFile(monoPath, raw, 0o644)
	if _, err := OpenStore(monoPath); err == nil {
		t.Fatal("wrong-schema store loaded without error")
	}

	// Sharded layout: a tampered segment no longer matches the digest its
	// index committed, and fails the lookup that first reads it.
	shardPath := filepath.Join(dir, "shard.json")
	st, err := OpenStore(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(results[0])
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(shardPath + ".d")
	if err != nil || len(ents) != 1 {
		t.Fatalf("segment dir entries = %d (err=%v), want 1", len(ents), err)
	}
	segPath := filepath.Join(shardPath+".d", ents[0].Name())
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered = bytes.Replace(data, []byte(`"refs": 10000`), []byte(`"refs": 99999`), 1)
	if bytes.Equal(data, tampered) {
		t.Fatal("segment tamper target not found")
	}
	if err := os.WriteFile(segPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(shardPath)
	if err != nil {
		t.Fatal(err) // the index alone is untouched
	}
	if _, _, err := re.Get(results[0].Key.Hash()); err == nil {
		t.Fatal("tampered segment satisfied a lookup")
	}
}

func TestDeriveSeed(t *testing.T) {
	k1 := Job{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}.Key()
	k2 := Job{Source: WorkloadSource("mcf"), Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}.Key()
	if DeriveSeed(0, k1) != 0 {
		t.Error("base 0 must keep the model's own stream seed")
	}
	s1, s1b, s2 := DeriveSeed(7, k1), DeriveSeed(7, k1), DeriveSeed(7, k2)
	if s1 == 0 || s1 != s1b {
		t.Error("derived seed not deterministic")
	}
	if s1 == s2 {
		t.Error("different cells derived the same seed")
	}
	// The seed actually changes the stream (and is itself reproducible).
	base := Job{Source: WorkloadSource("mcf"), Mech: Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2},
		Config: sim.Default(), Refs: 30_000}
	seeded := base
	seeded.Seed = DeriveSeed(7, base.Key())
	res, _, err := (&Runner{}).Run([]Job{base, seeded, seeded})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats == res[1].Stats {
		t.Error("derived seed did not perturb the stream")
	}
	if res[1].Stats != res[2].Stats {
		t.Error("seeded cell not reproducible")
	}
}

func TestRunnerErrors(t *testing.T) {
	if _, _, err := (&Runner{}).Run([]Job{{Source: WorkloadSource("no-such-app"), Mech: Mech{Kind: "RP"},
		Config: sim.Default(), Refs: 100}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, _, err := (&Runner{}).Run([]Job{{Source: WorkloadSource("swim"), Mech: Mech{Kind: "XX"},
		Config: sim.Default(), Refs: 100}}); err == nil {
		t.Error("invalid mechanism accepted")
	}
}

func TestEmitters(t *testing.T) {
	jobs, _ := Grid{Workloads: []string{"swim"}, Mechs: []Mech{{Kind: "DP", Rows: 256, Slots: 2}},
		Refs: 10_000}.Jobs()
	results, _, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	tab := Table(results).String()
	for _, want := range []string{"source", "swim", "DP,256,D", "accuracy"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if strings.Contains(tab, "cycles") {
		t.Error("functional results rendered timing columns")
	}
	csv := CSV(results)
	if !strings.HasPrefix(csv, "source,mech,") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	js, err := JSON(results)
	if err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if len(back) != len(results) || back[0].Stats != results[0].Stats {
		t.Error("JSON round-trip changed the results")
	}

	dt := DefaultTiming()
	timingJobs := []Job{{Source: WorkloadSource("swim"), Mech: Mech{Kind: "RP"}, Config: sim.Default(),
		Refs: 10_000, Timing: &dt}}
	tres, _, err := (&Runner{}).Run(timingJobs)
	if err != nil {
		t.Fatal(err)
	}
	ttab := Table(tres).String()
	if !strings.Contains(ttab, "cycles") || !strings.Contains(ttab, "CPI") {
		t.Errorf("timing table missing cycle columns:\n%s", ttab)
	}
}
