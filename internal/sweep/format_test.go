package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// recordTraceFormat records a workload in one of the three trace encodings.
func recordTraceFormat(t *testing.T, path, workloadName, format string, refs uint64) Source {
	t.Helper()
	w, ok := workload.ByName(workloadName)
	if !ok {
		t.Fatalf("unknown workload %q", workloadName)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var (
		tw     trace.Writer
		finish func() error
	)
	switch format {
	case "text":
		x := trace.NewTextWriter(f)
		tw, finish = x, x.Flush
	case "v1":
		x, err := trace.NewBinaryWriter(f)
		if err != nil {
			t.Fatal(err)
		}
		tw, finish = x, func() error { return x.FinishCount(f) }
	case "v2":
		x, err := trace.NewBlockWriter(f)
		if err != nil {
			t.Fatal(err)
		}
		tw, finish = x, func() error { return x.FinishCount(f) }
	default:
		t.Fatalf("unknown format %q", format)
	}
	if _, err := workload.GenerateTo(w, refs, tw); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := TraceSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestTraceFormatsStatsIdentical is the cross-encoding differential
// contract: one recording stored as text, v1 and v2 must produce
// bit-identical cell statistics (the keys differ only by content digest),
// for functional, warmup, timing and mix cells alike.
func TestTraceFormatsStatsIdentical(t *testing.T) {
	dir := t.TempDir()
	formats := []string{"text", "v1", "v2"}
	srcs := make(map[string]Source)
	mixSrcs := make(map[string]Source)
	for _, fm := range formats {
		srcs[fm] = recordTraceFormat(t, filepath.Join(dir, "a-"+fm+".trc"), "gap", fm, 30_000)
		mixSrcs[fm] = recordTraceFormat(t, filepath.Join(dir, "b-"+fm+".trc"), "swim", fm, 30_000)
	}
	// All three encodings carry the same records but different bytes, so
	// their content digests — and cell keys — must differ.
	if srcs["text"].TraceSHA256 == srcs["v1"].TraceSHA256 || srcs["v1"].TraceSHA256 == srcs["v2"].TraceSHA256 {
		t.Fatal("different encodings hashed identically")
	}

	timing := DefaultTiming()
	jobs := func(src, mixMate Source) []Job {
		mech := Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}
		return []Job{
			{Source: src, Mech: mech, Config: sim.Default(), Refs: 20_000, Warmup: 5_000},
			{Source: src, Mech: mech, Config: sim.Default(), Refs: 20_000, Timing: &timing},
			{Mix: &Mix{Sources: []Source{src, mixMate}, Quantum: 500, Policy: "retain", ASID: "tagged"},
				Mech: mech, Config: sim.Default(), Refs: 20_000},
		}
	}
	var base []Result
	for _, fm := range formats {
		res, _, err := (&Runner{}).Run(jobs(srcs[fm], mixSrcs[fm]))
		if err != nil {
			t.Fatalf("%s: %v", fm, err)
		}
		if base == nil {
			base = res
			continue
		}
		for i := range res {
			if res[i].Stats != base[i].Stats {
				t.Errorf("%s job %d: stats %+v != %s baseline %+v", fm, i, res[i].Stats, formats[0], base[i].Stats)
			}
			if res[i].Timing != nil && *res[i].Timing != *base[i].Timing {
				t.Errorf("%s job %d: timing stats diverge", fm, i)
			}
			if res[i].Key.Hash() == base[i].Key.Hash() {
				t.Errorf("%s job %d: key identical to the %s cell — digest not in the key?", fm, i, formats[0])
			}
		}
	}
}
