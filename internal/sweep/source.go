package sweep

import (
	"fmt"

	"tlbprefetch/internal/trace"
)

// Source names the reference stream a cell consumes: either a synthetic
// workload model from the registry, or a recorded trace file. Trace sources
// are identified by the SHA-256 digest of the file's bytes, not by the
// path, so keys stay stable when a trace moves between directories or
// machines; the path is resolution metadata the local runner uses to open
// the file.
type Source struct {
	// Workload is the registry name of a synthetic application model.
	// Exactly one of Workload and TraceSHA256 identifies the source.
	Workload string `json:"workload,omitempty"`
	// TraceSHA256 is the hex SHA-256 of the trace file's raw bytes — the
	// machine-independent identity of the recording.
	TraceSHA256 string `json:"trace_sha256,omitempty"`
	// TracePath locates the trace file on this machine. It is excluded
	// from the content address (and from stored keys): the digest is the
	// identity, the path is how this process finds the bytes.
	TracePath string `json:"-"`
}

// WorkloadSource names a synthetic-registry workload.
func WorkloadSource(name string) Source { return Source{Workload: name} }

// TraceSource digests the trace file at path and returns a source pinned to
// that recording.
func TraceSource(path string) (Source, error) {
	digest, err := trace.DigestFile(path)
	if err != nil {
		return Source{}, err
	}
	return Source{TracePath: path, TraceSHA256: digest}, nil
}

// IsTrace reports whether the source is a recorded trace.
func (s Source) IsTrace() bool { return s.TraceSHA256 != "" }

// Canonical returns the content-addressed form: the digest alone for trace
// sources (no path), the registry name alone for synthetic ones.
func (s Source) Canonical() Source {
	if s.IsTrace() {
		return Source{TraceSHA256: s.TraceSHA256}
	}
	return Source{Workload: s.Workload}
}

// Label renders the source for tables and progress lines: the workload name,
// or "trace:" plus a digest prefix.
func (s Source) Label() string {
	if s.IsTrace() {
		d := s.TraceSHA256
		if len(d) > 12 {
			d = d[:12]
		}
		return "trace:" + d
	}
	return s.Workload
}

// Validate reports whether the source names exactly one stream.
func (s Source) Validate() error {
	switch {
	case s.Workload != "" && s.TraceSHA256 != "":
		return fmt.Errorf("sweep: source names both workload %q and trace %s", s.Workload, s.Label())
	case s.Workload == "" && s.TraceSHA256 == "":
		return fmt.Errorf("sweep: source names neither a workload nor a trace")
	}
	return nil
}
