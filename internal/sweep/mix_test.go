package sweep

import (
	"bytes"
	"testing"

	"tlbprefetch/internal/multiprog"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

func mixGrid(refs uint64) Grid {
	return Grid{
		Mixes: []Mix{
			{Sources: []Source{WorkloadSource("galgel"), WorkloadSource("gcc")}},
			{Sources: []Source{WorkloadSource("swim"), WorkloadSource("mcf")}},
		},
		Mechs:    []Mech{{Kind: "DP", Rows: 256, Ways: 1, Slots: 2}},
		Quanta:   []uint64{5_000, 20_000},
		Policies: []string{"retain", "flush", "per-process"},
		Refs:     refs,
	}
}

func TestGridEnumeratesMixCells(t *testing.T) {
	jobs, err := mixGrid(10_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// 2 mixes x 1 mech x 2 quanta x 3 policies x 1 (default) asid.
	if len(jobs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Mix == nil {
			t.Fatalf("mix grid produced a single-source job: %+v", j)
		}
		h := j.Key().Hash()
		if seen[h] {
			t.Fatalf("duplicate key hash for %+v", j)
		}
		seen[h] = true
		k := j.Key()
		if k.Mix == nil || k.Mix.ASID != "flush" {
			t.Fatalf("key did not canonicalize the ASID default: %+v", k.Mix)
		}
	}
}

func TestGridMixSchedulerFallbacks(t *testing.T) {
	// No grid-level scheduler axes: the mix's own fields (then defaults)
	// fill in.
	g := Grid{
		Mixes: []Mix{{
			Sources: []Source{WorkloadSource("swim"), WorkloadSource("mcf")},
			Quantum: 7_000,
			Policy:  "flush",
		}},
		Mechs: []Mech{{Kind: "RP"}},
		Refs:  10_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	m := jobs[0].Key().Mix
	if m.Quantum != 7_000 || m.Policy != "flush" || m.ASID != "flush" {
		t.Fatalf("fallbacks not applied: %+v", m)
	}

	g.Mixes[0].Quantum = 0
	g.Mixes[0].Policy = ""
	jobs, err = g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	m = jobs[0].Key().Mix
	if m.Quantum != DefaultQuantum || m.Policy != "retain" {
		t.Fatalf("defaults not applied: %+v", m)
	}
}

func TestMixJobValidate(t *testing.T) {
	mix := &Mix{Sources: []Source{WorkloadSource("swim"), WorkloadSource("mcf")}}
	good := Job{Mix: mix, Mech: Mech{Kind: "RP"}, Config: sim.Default(), Refs: 1000}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	both := good
	both.Source = WorkloadSource("swim")
	if err := both.Validate(); err == nil {
		t.Error("job with both a source and a mix validated")
	}

	lone := good
	lone.Mix = &Mix{Sources: []Source{WorkloadSource("swim")}}
	if err := lone.Validate(); err == nil {
		t.Error("single-member mix validated")
	}

	badPol := good
	badPol.Mix = &Mix{Sources: mix.Sources, Policy: "keep"}
	if err := badPol.Validate(); err == nil {
		t.Error("unknown policy validated")
	}

	seeded := good
	seeded.Seed = 42
	if err := seeded.Validate(); err == nil {
		t.Error("seeded mix job validated")
	}

	warm := good
	warm.Warmup = 100
	if err := warm.Validate(); err == nil {
		t.Error("warmup mix job validated")
	}

	timed := good
	dt := DefaultTiming()
	timed.Timing = &dt
	if err := timed.Validate(); err == nil {
		t.Error("timing mix job validated")
	}
}

func TestGridRejectsMixWithTimingOrWarmup(t *testing.T) {
	g := mixGrid(10_000)
	g.Warmup = 100
	if _, err := g.Jobs(); err == nil {
		t.Error("mix grid with warmup enumerated")
	}
	g = mixGrid(10_000)
	g.Timing = true
	if _, err := g.Jobs(); err == nil {
		t.Error("mix grid with timing enumerated")
	}
}

// TestMixWorkerCountDeterminism extends the store-level determinism
// contract to mix cells: 1 worker and 8 workers produce byte-identical
// stores.
func TestMixWorkerCountDeterminism(t *testing.T) {
	jobs, err := mixGrid(30_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var stores [][]byte
	for _, workers := range []int{1, 8} {
		st := NewStore()
		r := Runner{Store: st, Workers: workers}
		if _, _, err := r.Run(jobs); err != nil {
			t.Fatal(err)
		}
		b, err := st.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, b)
	}
	if !bytes.Equal(stores[0], stores[1]) {
		t.Fatal("1-worker and 8-worker mix sweeps produced different stores")
	}
}

// TestMixCellsShareStreamShards pins the coalescing contract: cells that
// differ only in policy/ASID share one interleaving pass per (mix, quantum,
// geometry), so the 12-cell grid runs in 4 shards (2 mixes × 2 quanta).
func TestMixCellsShareStreamShards(t *testing.T) {
	jobs, err := mixGrid(10_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shards != 4 {
		t.Fatalf("shards = %d, want 4 (one per mix × quantum)", sum.Shards)
	}
}

// TestMixCellMatchesDirectMultiprog pins the runner's mix path to the
// multiprog package driven directly: same split, same interleaving, same
// switch actions.
func TestMixCellMatchesDirectMultiprog(t *testing.T) {
	w1, _ := workload.ByName("galgel")
	w2, _ := workload.ByName("gcc")
	cfg := sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}

	for _, tc := range []struct {
		policy string
		asid   string
		pol    multiprog.Policy
		mode   multiprog.ASIDMode
	}{
		{"retain", "flush", multiprog.Retain, multiprog.ASIDFlush},
		{"flush", "tagged", multiprog.Flush, multiprog.ASIDTagged},
		{"per-process", "flush", multiprog.PerProcess, multiprog.ASIDFlush},
	} {
		job := Job{
			Mix: &Mix{
				Sources: []Source{WorkloadSource("galgel"), WorkloadSource("gcc")},
				Quantum: 5_000,
				Policy:  tc.policy,
				ASID:    tc.asid,
			},
			Mech:   Mech{Kind: "DP", Rows: 256, Ways: 1, Slots: 2},
			Config: cfg,
			Refs:   60_000,
		}
		res, _, err := (&Runner{}).Run([]Job{job})
		if err != nil {
			t.Fatal(err)
		}
		direct := multiprog.Run([]workload.Workload{w1, w2}, 60_000, 5_000,
			tc.pol, tc.mode, job.Mech.Build, cfg)
		if res[0].Stats.Misses != direct.Misses || res[0].Stats.BufferHits != direct.Hits {
			t.Errorf("%s/%s: sweep cell %+v != direct multiprog run (misses %d, hits %d)",
				tc.policy, tc.asid, res[0].Stats, direct.Misses, direct.Hits)
		}
		if len(res[0].Apps) != 2 {
			t.Fatalf("apps = %d, want 2", len(res[0].Apps))
		}
		for i, a := range res[0].Apps {
			if a != direct.Apps[i] {
				t.Errorf("%s/%s: app %d attribution %+v != direct %+v",
					tc.policy, tc.asid, i, a, direct.Apps[i])
			}
		}
	}
}

// TestMixCacheSatisfiesSecondRun pins the caching contract for mix cells.
func TestMixCacheSatisfiesSecondRun(t *testing.T) {
	jobs, err := mixGrid(10_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if _, sum, err := (&Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	} else if sum.Ran != len(jobs) {
		t.Fatalf("cold run: %+v", sum)
	}
	if _, sum, err := (&Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	} else if sum.Cached != len(jobs) || sum.Ran != 0 {
		t.Fatalf("warm run recomputed cells: %+v", sum)
	}
}

func TestMixFilterFields(t *testing.T) {
	jobs, err := mixGrid(10_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if _, _, err := (&Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		spec string
		want int
	}{
		{"mix=true", 12},
		{"mix=false", 0},
		{"quantum=5000", 6},
		{"policy=flush", 4},
		{"policy=retain,quantum=20000", 2},
		{"asid=flush", 12},
		{"asid=tagged", 0},
		{"source=galgel+gcc", 6},
		{"workload=galgel", 6},
		{"workload=swim", 6},
	} {
		f, err := ParseFilter(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		sel, err := f.Select(st)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if got := len(sel); got != tc.want {
			t.Errorf("filter %q selected %d cells, want %d", tc.spec, got, tc.want)
		}
	}
}

// TestMixStoreRoundTrip pins serialization: mix keys and per-app payloads
// survive a save/load cycle byte-identically.
func TestMixStoreRoundTrip(t *testing.T) {
	jobs, err := mixGrid(10_000).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if _, _, err := (&Runner{Store: st}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st2, err := OpenStore(dir + "/mix.json")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := st.Results()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Apps) != 2 {
			t.Fatalf("mix cell stored %d app entries", len(r.Apps))
		}
		st2.Put(r)
	}
	if err := st2.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir + "/mix.json")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := st2.Bytes()
	b2, _ := re.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatal("mix store changed across save/load")
	}
	if _, sum, err := (&Runner{Store: re}).Run(jobs); err != nil {
		t.Fatal(err)
	} else if sum.Cached != len(jobs) {
		t.Fatalf("reloaded store did not satisfy the grid: %+v", sum)
	}
}
