package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"syscall"
)

// storeLayout names the sharded on-disk format a file-bound store writes:
// the bound path holds the index (schema, binary stamp, per-prefix segment
// digests, and every cell's key), and the payloads live in content-
// addressed per-prefix segment files under "<path>.d/". Both the index and
// each segment serialize through encoding/json's sorted-map canonical
// form, so the whole layout is a pure function of the store's contents —
// same cells → identical index bytes and an identical segment directory,
// regardless of worker count or insertion order.
const storeLayout = "sharded-v1"

// segPrefixLen is how many leading hex digits of a cell's key hash name
// its segment: 2 digits partition a store into at most 256 segments, so a
// million-cell store checkpoints and filters in ~4k-cell units.
const segPrefixLen = 2

// segPrefix returns the segment a key hash belongs to.
func segPrefix(hash string) string { return hash[:segPrefixLen] }

// segFileName renders a segment's content-addressed file name. The digest
// (of the serialized segment bytes) is part of the name, so a new version
// of a segment never overwrites the old one in place: the previous file
// stays valid until the index stops referencing it and Save prunes it.
func segFileName(prefix, digest string) string {
	return prefix + "-" + digest[:16] + ".seg"
}

// segDir returns the directory the store's segment files live in.
func (s *Store) segDir() string { return s.path + ".d" }

// indexFile is the on-disk index layout at the store's bound path.
type indexFile struct {
	Schema   int               `json:"schema"`
	Layout   string            `json:"layout"`
	Binary   string            `json:"binary,omitempty"`
	Segments map[string]string `json:"segments"`
	Keys     map[string]Key    `json:"keys"`
}

// segmentFile is the on-disk layout of one segment: the payloads of every
// cell whose key hash starts with Prefix.
type segmentFile struct {
	Schema  int               `json:"schema"`
	Prefix  string            `json:"prefix"`
	Results map[string]Result `json:"results"`
}

// encodeSegment serializes one segment canonically (sorted map keys,
// two-space indent — same cells, same bytes).
func encodeSegment(prefix string, cells map[string]Result) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(segmentFile{Schema: KeySchema, Prefix: prefix, Results: cells}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// digestOf is the content address of a serialized segment.
func digestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// loadSegmentLocked makes a prefix's on-disk cells resident (mu held). The
// segment's bytes are verified against the digest the index committed, and
// every cell against its own key hash, so neither a tampered segment nor a
// stale one can satisfy a lookup. Cells already resident (a fresh Put
// racing ahead of the load) win over the on-disk value; cells on disk that
// the index no longer names (dropped by GC, not yet saved) are skipped.
func (s *Store) loadSegmentLocked(p string) error {
	if s.loaded[p] {
		return nil
	}
	dig, ok := s.segs[p]
	if !ok || s.path == "" {
		s.loaded[p] = true
		return nil
	}
	name := filepath.Join(s.segDir(), segFileName(p, dig))
	data, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("sweep: store %s: reading segment %s: %w", s.path, filepath.Base(name), err)
	}
	s.segReads++
	if got := digestOf(data); got != dig {
		return fmt.Errorf("sweep: store %s: segment %s hashes to %.12s…, index expects %.12s… — corrupt or hand-edited",
			s.path, filepath.Base(name), got, dig)
	}
	var f segmentFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("sweep: store %s: parsing segment %s: %w", s.path, filepath.Base(name), err)
	}
	if f.Schema != KeySchema || f.Prefix != p {
		return fmt.Errorf("sweep: store %s: segment %s declares schema %d prefix %q, want %d %q — corrupt or hand-edited",
			s.path, filepath.Base(name), f.Schema, f.Prefix, KeySchema, p)
	}
	for h, r := range f.Results {
		k, named := s.keys[h]
		if !named {
			continue // dropped from the index (GC) but not yet saved
		}
		if segPrefix(h) != p {
			return fmt.Errorf("sweep: store %s: segment %s holds cell %s outside its prefix — corrupt or hand-edited",
				s.path, filepath.Base(name), h)
		}
		if got := r.Key.Hash(); got != h {
			return fmt.Errorf("sweep: store %s entry %s does not hash to its key (%s) — corrupt or hand-edited",
				s.path, h, got)
		}
		if !reflect.DeepEqual(k, r.Key) {
			return fmt.Errorf("sweep: store %s: index key for cell %s disagrees with its segment — corrupt or hand-edited",
				s.path, h)
		}
		if _, resident := s.results[h]; !resident {
			s.results[h] = r
		}
	}
	s.loaded[p] = true
	return nil
}

// loadAllLocked makes every on-disk segment resident (mu held).
func (s *Store) loadAllLocked() error {
	for p := range s.segs {
		if err := s.loadSegmentLocked(p); err != nil {
			return err
		}
	}
	return nil
}

// Test seams: the crash-during-save suite injects a failure at each
// durability step (temp write, file fsync, rename, directory fsync) and
// asserts the previous store survives complete.
var (
	saveWrite  = func(f *os.File, data []byte) (int, error) { return f.Write(data) }
	saveSync   = func(f *os.File) error { return f.Sync() }
	saveRename = os.Rename
	dirSync    = func(d *os.File) error { return d.Sync() }
)

// Save writes the store's sharded layout to its bound path atomically and
// durably. Only dirty segments — prefixes whose cells changed since the
// last save — are serialized and written (content-addressed under
// "<path>.d/", each fsynced before its rename); then the index lands over
// the bound path via the same temp+fsync+rename dance, the parent
// directory is fsynced, and segment files the new index no longer
// references are pruned. A crash at any point leaves either the old
// complete store or the new complete store — never a torn file, never a
// rename the filesystem forgot, at worst a few unreferenced segment files
// the next Save removes.
//
// Saves are serialized against each other (a periodic checkpoint racing a
// final save must not let older bytes land last), and the snapshot is
// taken under the results lock, so a concurrent Merge is either fully in
// or fully out. Saving an in-memory store is a no-op.
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()

	// Snapshot: every dirty prefix must be fully resident so its segment
	// can be rewritten whole, then the cells, index and dirty set are taken
	// under the lock. The dirty marks move out of the store here — a Put
	// landing mid-save re-dirties its prefix for the next checkpoint — and
	// move back on failure so no change is ever silently dropped.
	s.mu.Lock()
	for p := range s.dirty {
		if err := s.loadSegmentLocked(p); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	dirty := s.dirty
	s.dirty = make(map[string]bool)
	keys := make(map[string]Key, len(s.keys))
	for h, k := range s.keys {
		keys[h] = k
	}
	snaps := make(map[string]map[string]Result, len(dirty))
	for p := range dirty {
		snaps[p] = make(map[string]Result)
	}
	for h, r := range s.results {
		if m, ok := snaps[segPrefix(h)]; ok {
			if _, named := s.keys[h]; named {
				m[h] = r
			}
		}
	}
	segs := make(map[string]string, len(s.segs))
	for p, d := range s.segs {
		segs[p] = d
	}
	s.mu.Unlock()

	restoreDirty := func() {
		s.mu.Lock()
		for p := range dirty {
			s.dirty[p] = true
		}
		s.mu.Unlock()
	}

	prefixes := make([]string, 0, len(dirty))
	for p := range dirty {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	wroteSeg := false
	for _, p := range prefixes {
		cells := snaps[p]
		if len(cells) == 0 {
			delete(segs, p)
			continue
		}
		data, err := encodeSegment(p, cells)
		if err != nil {
			restoreDirty()
			return err
		}
		dig := digestOf(data)
		if segs[p] == dig {
			continue // marked dirty but content-identical: nothing to write
		}
		wrote, err := s.writeSegment(p, dig, data)
		if err != nil {
			restoreDirty()
			return err
		}
		segs[p] = dig
		wroteSeg = wroteSeg || wrote
	}
	if wroteSeg {
		if err := syncDir(s.segDir()); err != nil {
			restoreDirty()
			return err
		}
	}

	if err := s.writeIndex(segs, keys); err != nil {
		restoreDirty()
		return err
	}
	if err := s.pruneSegments(segs); err != nil {
		restoreDirty()
		return err
	}

	s.mu.Lock()
	s.segs = segs
	s.converted = false
	s.mu.Unlock()
	return nil
}

// writeSegment lands one segment file durably under its content address.
// A file already carrying the digest's name is the same content — nothing
// to do (and how an unchanged segment costs nothing across checkpoints).
func (s *Store) writeSegment(prefix, digest string, data []byte) (wrote bool, err error) {
	dir := s.segDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, fmt.Errorf("sweep: saving store: %w", err)
	}
	name := filepath.Join(dir, segFileName(prefix, digest))
	if _, err := os.Stat(name); err == nil {
		return false, nil
	}
	tmp, err := os.CreateTemp(dir, ".seg-*")
	if err != nil {
		return false, fmt.Errorf("sweep: saving store: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (bool, error) {
		tmp.Close()
		os.Remove(tmpName)
		return false, fmt.Errorf("sweep: saving store segment %s: %w", filepath.Base(name), err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if _, err := saveWrite(tmp, data); err != nil {
		return fail(err)
	}
	if err := saveSync(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return false, fmt.Errorf("sweep: saving store segment %s: %w", filepath.Base(name), err)
	}
	if err := saveRename(tmpName, name); err != nil {
		os.Remove(tmpName)
		return false, fmt.Errorf("sweep: saving store segment %s: %w", filepath.Base(name), err)
	}
	s.mu.Lock()
	s.segWrites++
	s.mu.Unlock()
	return true, nil
}

// writeIndex lands the index over the store's bound path durably: temp
// file, fsync, rename, parent-directory fsync. The rename is the commit
// point of the whole Save.
func (s *Store) writeIndex(segs map[string]string, keys map[string]Key) error {
	f := indexFile{Schema: KeySchema, Layout: storeLayout, Binary: binaryVersion(), Segments: segs, Keys: keys}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return err
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".sweep-store-*")
	if err != nil {
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	// CreateTemp makes the file 0600; keep the existing store's mode (or a
	// conventional 0644) so the rename does not silently tighten it.
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(s.path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		return fail(err)
	}
	if _, err := saveWrite(tmp, buf.Bytes()); err != nil {
		return fail(err)
	}
	if err := saveSync(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	if err := saveRename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	return syncDir(dir)
}

// pruneSegments removes segment files the just-committed index does not
// reference: superseded segment versions, segments emptied by GC, and temp
// files a crashed save left behind. Running after the index rename, a
// crash before (or during) the prune leaves only unreferenced extras — the
// committed store is already complete without them.
func (s *Store) pruneSegments(segs map[string]string) error {
	dir := s.segDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("sweep: saving store: %w", err)
	}
	keep := make(map[string]bool, len(segs))
	for p, dig := range segs {
		keep[segFileName(p, dig)] = true
	}
	for _, e := range ents {
		if keep[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("sweep: pruning store segment %s: %w", e.Name(), err)
		}
	}
	if len(segs) == 0 {
		os.Remove(dir) // best-effort: an empty store needs no segment dir
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Filesystems that cannot fsync a directory report EINVAL or
// ENOTSUP — those are tolerated (the rename itself already happened, only
// its crash-durability is weaker); every other error propagates, because a
// checkpoint that claims durability must not swallow a real I/O failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sweep: syncing directory: %w", err)
	}
	defer d.Close()
	if err := dirSync(d); err != nil && !fsyncUnsupported(err) {
		return fmt.Errorf("sweep: syncing directory %s: %w", dir, err)
	}
	return nil
}

// fsyncUnsupported reports the errnos a filesystem uses to refuse
// directory fsync outright (as opposed to failing it).
func fsyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}
