// Package sweep is the parameter-grid sweep engine behind the experiment
// harness and cmd/tlbsweep. The paper's whole evaluation is one big
// cross-product — sources (synthetic workloads and recorded traces) ×
// mechanisms × TLB geometries × buffer sizes × table shapes × cycle-model
// timing points — and sweep makes that cross-product a first-class object:
//
//   - A Grid declares axes and enumerates Jobs (one simulation cell each).
//   - Every Job is content-addressed: a canonical Key (schema-versioned,
//     fully resolved configuration) hashes to a stable identity, so the
//     same cell always lands in the same place no matter which sweep asked
//     for it.
//   - A Runner shards jobs across a worker pool, coalescing cells that
//     share a reference stream (workload or trace) and TLB geometry onto
//     one sim.Group shared frontend (the 21-way fan-out win of the figure
//     harness, applied automatically), and skips cells already present in
//     a Store. Work arrives either as a fixed slice (Run) or through the
//     JobSource seam (RunSource), which the distributed backend in
//     internal/sweepd implements as a remote lease feed.
//   - A Store maps key hashes to results and persists as deterministic
//     JSON: re-running a sweep after editing one mechanism recomputes only
//     the dirty cells, and two runs of the same grid produce byte-identical
//     files regardless of worker count.
//
// Rendering lives next door: Filter selects store subsets for the flat
// emitters in this package (Table, CSV, JSON), and internal/report turns
// the same subsets into paper-style grouped-bar figures.
package sweep

import (
	"fmt"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/stats"
	"tlbprefetch/internal/tlb"
)

// KeySchema versions the content-addressing layout. Bump it whenever the
// meaning of a Key field (or of the simulation it names) changes, so stale
// stores miss cleanly instead of serving wrong numbers.
//
// Schema history:
//
//	v1: workloads addressed by registry name only; timing cells a bare
//	    bool pinning sim.DefaultTiming's constants.
//	v2: sources are first-class (synthetic name or trace-file SHA-256)
//	    and the cycle model's constants are key axes (see Timing).
//	    v1 stores migrate transparently on open — v1 timing cells re-key
//	    to the default Timing axis they always meant.
//	v3: multiprogrammed mixes are first-class sources (see Mix): a Key
//	    carries either a single Source or a Mix (member sources +
//	    context-switch quantum + table policy + ASID mode). v1 and v2
//	    stores migrate transparently on open; a v2 key encodes
//	    identically under v3 (the mix field is absent), so every v2 cell
//	    re-keys with only its schema number changing.
const KeySchema = 3

// Mech names one prefetching-mechanism configuration, fully resolved (no
// harness-level defaulting left). The zero parameters of kinds that ignore
// them are canonicalized away by Normalize so that, e.g., "RP with r=256"
// and "RP with r=1024" content-address to the same cell.
type Mech struct {
	// Kind is one of the paper's mechanisms — "DP", "DP-PC", "DP2", "RP",
	// "RP3", "MP", "ASP", "SP", "SP-A", "none" — or a modern successor:
	// "STMS", "MASP", "SBFP".
	Kind string `json:"kind"`
	// Rows (r) and Ways apply to the table-based mechanisms (DP-family,
	// MP, ASP, STMS, MASP). Ways 0 is canonicalized to 1 (direct-mapped);
	// Ways == Rows is fully associative.
	Rows int `json:"rows,omitempty"`
	Ways int `json:"ways,omitempty"`
	// Slots is s, the predictions per row, for the MP/DP families; for
	// STMS it is the prefetch degree, for MASP the strides per PC.
	Slots int `json:"slots,omitempty"`
}

// Kinds returns every registered mechanism kind in registry order. Tests
// iterate this to assert each kind validates, builds, and carries its
// differential-test and benchmark coverage.
func Kinds() []string {
	return []string{
		"none", "SP", "SP-A", "ASP", "MP", "RP", "RP3",
		"DP", "DP-PC", "DP2",
		"STMS", "MASP", "SBFP",
	}
}

// usesTable reports whether the kind has a prediction table (and therefore
// meaningful Rows/Ways).
func (m Mech) usesTable() bool {
	switch m.Kind {
	case "DP", "DP-PC", "DP2", "MP", "ASP", "STMS", "MASP":
		return true
	}
	return false
}

// usesSlots reports whether the kind has per-row prediction slots (for
// STMS the GHB walk degree, for MASP the strides tracked per PC).
func (m Mech) usesSlots() bool {
	switch m.Kind {
	case "DP", "DP-PC", "DP2", "MP", "STMS", "MASP":
		return true
	}
	return false
}

// Normalize canonicalizes the parameters the kind actually uses and zeroes
// the rest, so equivalent configurations hash identically.
func (m Mech) Normalize() Mech {
	if !m.usesTable() {
		m.Rows, m.Ways = 0, 0
	} else if m.Ways == 0 {
		m.Ways = 1
	}
	if !m.usesSlots() {
		m.Slots = 0
	}
	return m
}

// Validate reports whether the configuration can be built.
func (m Mech) Validate() error {
	switch m.Kind {
	case "RP", "RP3", "SP", "SP-A", "SBFP", "none":
		return nil
	case "DP", "DP-PC", "DP2", "MP", "ASP", "STMS", "MASP":
	default:
		return fmt.Errorf("sweep: unknown mechanism kind %q", m.Kind)
	}
	n := m.Normalize()
	if n.Rows <= 0 {
		return fmt.Errorf("sweep: %s needs a positive table row count, got %d", m.Kind, m.Rows)
	}
	if n.Ways < 0 {
		return fmt.Errorf("sweep: %s table associativity must not be negative, got %d", m.Kind, n.Ways)
	}
	if n.Rows%n.Ways != 0 {
		return fmt.Errorf("sweep: %s table rows %d not divisible by ways %d", m.Kind, n.Rows, n.Ways)
	}
	if n.usesSlots() && n.Slots <= 0 {
		return fmt.Errorf("sweep: %s needs positive prediction slots, got %d", m.Kind, m.Slots)
	}
	return nil
}

// Label renders the paper's figure-legend naming, e.g. "DP,256,D".
func (m Mech) Label() string {
	if !m.usesTable() {
		return m.Kind
	}
	assoc := "D"
	switch {
	case m.Ways == m.Rows:
		assoc = "F"
	case m.Ways > 1:
		assoc = fmt.Sprintf("%d", m.Ways)
	}
	return fmt.Sprintf("%s,%d,%s", m.Kind, m.Rows, assoc)
}

// Build instantiates the mechanism ("none" builds the no-prefetching
// baseline, i.e. nil). It panics on an unknown kind; call Validate first
// when the kind comes from user input.
func (m Mech) Build() prefetch.Prefetcher {
	m = m.Normalize()
	switch m.Kind {
	case "none":
		return nil
	case "RP":
		return prefetch.NewRecency()
	case "RP3":
		return prefetch.NewRecencyDegree(3)
	case "SP":
		return prefetch.NewSequential(true)
	case "SP-A":
		return prefetch.NewAdaptiveSequential()
	case "ASP":
		return prefetch.NewASP(m.Rows, m.Ways)
	case "MP":
		return prefetch.NewMarkov(m.Rows, m.Ways, m.Slots)
	case "DP":
		return core.NewDistance(m.Rows, m.Ways, m.Slots)
	case "DP-PC":
		return core.NewDistancePC(m.Rows, m.Ways, m.Slots)
	case "DP2":
		return core.NewDistance2(m.Rows, m.Ways, m.Slots)
	case "STMS":
		return prefetch.NewSTMS(m.Rows, m.Ways, m.Slots)
	case "MASP":
		return prefetch.NewMASP(m.Rows, m.Ways, m.Slots)
	case "SBFP":
		return prefetch.NewSBFP()
	}
	panic(fmt.Sprintf("sweep: unknown mechanism kind %q", m.Kind))
}

// Job is one cell of a sweep: one reference stream through one simulator
// configuration with one mechanism.
type Job struct {
	// Source is the reference stream: a synthetic workload (resolved via
	// workload.ByName unless the Runner is given a custom resolver) or a
	// recorded trace file. Exactly one of Source and Mix is set.
	Source Source
	// Mix, when non-nil, makes the cell multiprogrammed: the mix's member
	// sources are interleaved round-robin under its scheduler parameters
	// and Source stays zero. Mix cells run the functional simulator and
	// carry no Warmup, Seed or Timing.
	Mix *Mix
	// Mech is the prefetching mechanism (fully resolved; see Mech).
	Mech Mech
	// Config is the simulator configuration (TLB geometry, buffer size,
	// page size).
	Config sim.Config
	// Refs is the number of references measured; Warmup references are
	// simulated before the statistics counters reset (the paper's
	// fast-forward). Warmup must be 0 for timing jobs.
	Refs   uint64
	Warmup uint64
	// Seed, when nonzero, replaces the workload model's own stream seed,
	// giving the cell an independent, reproducible stream (see DeriveSeed).
	// 0 keeps the model's paper-calibrated stream. Trace sources are a
	// fixed recording and must keep Seed 0.
	Seed uint64
	// Timing, when non-nil, switches the cell to the cycle-accounting
	// simulator with these constants (the paper's Table 3 uses
	// DefaultTiming). Nil runs the functional simulator.
	Timing *Timing
}

// Key is the canonical, schema-versioned identity of a Job used for
// content addressing. It flattens the job so that the hash depends on
// every simulation-relevant parameter and nothing else: trace sources
// contribute their digest (not their local path), and timing cells
// contribute the full constant set of their cycle model.
type Key struct {
	Schema int    `json:"schema"`
	Source Source `json:"source"`
	// Mix is set for multiprogrammed cells (canonical form) and absent
	// otherwise. Absence keeps a single-source key's canonical JSON — and
	// therefore its hash — identical to its schema-2 encoding, which is
	// what lets v2 stores migrate by re-numbering alone.
	Mix        *Mix    `json:"mix,omitempty"`
	Mech       Mech    `json:"mech"`
	TLBEntries int     `json:"tlb_entries"`
	TLBWays    int     `json:"tlb_ways"`
	Buffer     int     `json:"buffer"`
	PageShift  uint    `json:"page_shift"`
	Refs       uint64  `json:"refs"`
	Warmup     uint64  `json:"warmup,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Timing     *Timing `json:"timing,omitempty"`
}

// canonicalTLBWays canonicalizes the two spellings of a fully associative
// TLB (Ways == 0 and Ways == Entries, which tlb.Config treats identically)
// to 0, so the identical configuration always content-addresses to the
// same cell.
func canonicalTLBWays(c tlb.Config) int {
	if c.Ways == c.Entries {
		return 0
	}
	return c.Ways
}

// Key returns the job's canonical identity (with the source, mechanism,
// TLB geometry and timing axis normalized; the Timing copy never aliases
// the job's).
func (j Job) Key() Key {
	k := Key{
		Schema:     KeySchema,
		Source:     j.Source.Canonical(),
		Mech:       j.Mech.Normalize(),
		TLBEntries: j.Config.TLB.Entries,
		TLBWays:    canonicalTLBWays(j.Config.TLB),
		Buffer:     j.Config.BufferEntries,
		PageShift:  j.Config.PageShift,
		Refs:       j.Refs,
		Warmup:     j.Warmup,
		Seed:       j.Seed,
	}
	if j.Mix != nil {
		m := j.Mix.Canonical()
		k.Mix = &m
	}
	if j.Timing != nil {
		t := j.Timing.Normalize()
		k.Timing = &t
	}
	return k
}

// SourceLabel renders the cell's stream for tables, progress lines and
// figure groups: the mix label ("galgel+gcc") for multiprogrammed cells,
// the source label otherwise.
func (k Key) SourceLabel() string {
	if k.Mix != nil {
		return k.Mix.Label()
	}
	return k.Source.Label()
}

// Hash returns the key's content address: the hex SHA-256 of its canonical
// JSON encoding.
func (k Key) Hash() string {
	h, err := stats.Fingerprint(k)
	if err != nil {
		panic(err) // Key contains only marshalable fields
	}
	return h
}

// Validate reports whether the job can run.
func (j Job) Validate() error {
	if j.Mix != nil {
		if j.Source.Workload != "" || j.Source.TraceSHA256 != "" {
			return fmt.Errorf("sweep: a cell carries either a source or a mix, not both")
		}
		if err := j.Mix.Validate(); err != nil {
			return err
		}
		// Mix cells are deliberately narrow: the members' own calibrated
		// streams (no derived seeds), the functional simulator, and no
		// statistics fast-forward.
		if j.Seed != 0 {
			return fmt.Errorf("sweep: mix cells replay the members' own streams and cannot carry a stream seed")
		}
		if j.Warmup != 0 {
			return fmt.Errorf("sweep: mix cells do not support warmup")
		}
		if j.Timing != nil {
			return fmt.Errorf("sweep: mix cells run the functional simulator, not the cycle model")
		}
	} else if err := j.Source.Validate(); err != nil {
		return err
	}
	if j.Source.IsTrace() && j.Seed != 0 {
		return fmt.Errorf("sweep: trace cells are a fixed recording and cannot carry a stream seed")
	}
	if err := j.Mech.Validate(); err != nil {
		return err
	}
	if err := j.Config.Validate(); err != nil {
		return err
	}
	if j.Refs == 0 {
		return fmt.Errorf("sweep: job needs a positive reference count")
	}
	if j.Timing != nil {
		if j.Warmup != 0 {
			return fmt.Errorf("sweep: timing jobs do not support warmup (the cycle model has no statistics fast-forward)")
		}
		if err := j.Timing.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed maps a sweep-level base seed and a job key to the job's
// stream seed: a splitmix64-style finalizer over the base and the key's
// hash, with the Seed field zeroed (to avoid self-reference) and the
// Schema field zeroed (so a schema bump that does not reshape the key
// layout keeps derived streams stable). Any single cell can therefore be
// re-run in isolation from (base, key) alone. Note that v1 stores derived
// seeds from the v1 key layout: migrated seeded cells remain addressable
// by their stored keys, but a re-declared seeded grid derives fresh
// streams — the zero-recompute migration guarantee covers unseeded grids.
func DeriveSeed(base uint64, k Key) uint64 {
	if base == 0 {
		return 0
	}
	k.Seed = 0
	k.Schema = 0
	h := k.Hash()
	var x uint64
	for i := 0; i < 16; i++ { // fold the first 16 hex digits
		x = x<<4 | uint64(hexVal(h[i]))
	}
	x ^= base
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = base
	}
	return x
}

func hexVal(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// Grid declares the axes of a sweep. Jobs enumerates the full cross
// product in a deterministic order (sources outermost, then mechanisms,
// TLB entries, TLB ways, buffer sizes, page shifts, timing points),
// dropping cells that canonicalize to an already-enumerated key (e.g. RP
// crossed with a table axis it ignores).
type Grid struct {
	// Workloads are synthetic-registry names; Traces are recorded trace
	// sources (see TraceSource). Both contribute to the source axis,
	// workloads first.
	Workloads []string
	Traces    []Source
	// Mixes are multiprogrammed sources, enumerated after the single
	// sources. Each mix is crossed with the scheduler axes: Quanta
	// (context-switch quanta in refs), Policies (table policies) and
	// ASIDs (ASID modes). An empty scheduler axis falls back to the mix's
	// own field, then to the default (DefaultQuantum / "retain" /
	// "flush"). Mix cells ignore Seed and are incompatible with Warmup
	// and the timing axes.
	Mixes      []Mix
	Quanta     []uint64
	Policies   []string
	ASIDs      []string
	Mechs      []Mech
	TLBEntries []int
	TLBWays    []int // 0 = fully associative
	Buffers    []int
	PageShifts []uint
	Refs       uint64
	Warmup     uint64
	// Seed, when nonzero, gives every synthetic cell an independent
	// derived stream seed (DeriveSeed(Seed, key)); 0 keeps the workload
	// models' own paper-calibrated streams. Trace cells always keep 0.
	Seed uint64
	// Timings is the cycle-model axis: each cell is crossed with every
	// timing point. When Timings is empty, a non-empty TimingAxes expands
	// into the axis instead (the decoupled penalty × memory-op-cost ×
	// issue-width design space); declaring both is an error. Failing both,
	// Timing set runs every cell at DefaultTiming, and everything empty
	// runs the functional simulator.
	Timings    []Timing
	TimingAxes TimingAxes
	Timing     bool
}

// Jobs enumerates and validates the grid's cells.
func (g Grid) Jobs() ([]Job, error) {
	sources := make([]Source, 0, len(g.Workloads)+len(g.Traces))
	for _, w := range g.Workloads {
		sources = append(sources, WorkloadSource(w))
	}
	sources = append(sources, g.Traces...)
	if len(sources) == 0 && len(g.Mixes) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one workload, trace or mix source")
	}
	if len(g.Mechs) == 0 {
		return nil, fmt.Errorf("sweep: grid needs at least one mechanism")
	}
	if len(g.Mixes) > 0 {
		if g.Warmup != 0 {
			return nil, fmt.Errorf("sweep: mix cells do not support warmup — split warmup grids and mix grids")
		}
		if len(g.Timings) > 0 || !g.TimingAxes.Empty() || g.Timing {
			return nil, fmt.Errorf("sweep: mix cells run the functional simulator — a grid cannot cross mixes with timing axes")
		}
	}
	timings := make([]*Timing, 0, 1)
	switch {
	case len(g.Timings) > 0 && !g.TimingAxes.Empty():
		return nil, fmt.Errorf("sweep: grid declares both explicit Timings and TimingAxes — pick one cycle-model axis")
	case len(g.Timings) > 0:
		for i := range g.Timings {
			timings = append(timings, &g.Timings[i])
		}
	case !g.TimingAxes.Empty():
		pts, err := g.TimingAxes.Points()
		if err != nil {
			return nil, err
		}
		for i := range pts {
			timings = append(timings, &pts[i])
		}
	case g.Timing:
		dt := DefaultTiming()
		timings = append(timings, &dt)
	default:
		timings = append(timings, nil)
	}
	entries := g.TLBEntries
	if len(entries) == 0 {
		entries = []int{sim.Default().TLB.Entries}
	}
	ways := g.TLBWays
	if len(ways) == 0 {
		ways = []int{0}
	}
	buffers := g.Buffers
	if len(buffers) == 0 {
		buffers = []int{sim.Default().BufferEntries}
	}
	shifts := g.PageShifts
	if len(shifts) == 0 {
		shifts = []uint{sim.Default().PageShift}
	}
	refs := g.Refs
	if refs == 0 {
		refs = 1_000_000
	}

	seen := make(map[string]bool)
	var jobs []Job
	add := func(j Job) error {
		if err := j.Validate(); err != nil {
			return err
		}
		h := j.Key().Hash()
		if !seen[h] {
			seen[h] = true
			jobs = append(jobs, j)
		}
		return nil
	}
	for _, src := range sources {
		for _, m := range g.Mechs {
			for _, e := range entries {
				for _, tw := range ways {
					for _, b := range buffers {
						for _, ps := range shifts {
							for _, tm := range timings {
								j := Job{
									Source: src,
									Mech:   m.Normalize(),
									Config: sim.Config{
										TLB:           tlb.Config{Entries: e, Ways: tw},
										BufferEntries: b,
										PageShift:     ps,
									},
									Refs:   refs,
									Warmup: g.Warmup,
									Timing: tm,
								}
								if !src.IsTrace() {
									j.Seed = DeriveSeed(g.Seed, j.Key())
								}
								if err := add(j); err != nil {
									return nil, err
								}
							}
						}
					}
				}
			}
		}
	}
	for _, mix := range g.Mixes {
		quanta := g.Quanta
		if len(quanta) == 0 {
			q := mix.Quantum
			if q == 0 {
				q = DefaultQuantum
			}
			quanta = []uint64{q}
		}
		policies := g.Policies
		if len(policies) == 0 {
			policies = []string{mix.Canonical().Policy}
		}
		asids := g.ASIDs
		if len(asids) == 0 {
			asids = []string{mix.Canonical().ASID}
		}
		for _, m := range g.Mechs {
			for _, e := range entries {
				for _, tw := range ways {
					for _, b := range buffers {
						for _, ps := range shifts {
							for _, q := range quanta {
								for _, pol := range policies {
									for _, as := range asids {
										j := Job{
											Mix: &Mix{
												Sources: mix.Sources,
												Quantum: q,
												Policy:  pol,
												ASID:    as,
											},
											Mech: m.Normalize(),
											Config: sim.Config{
												TLB:           tlb.Config{Entries: e, Ways: tw},
												BufferEntries: b,
												PageShift:     ps,
											},
											Refs: refs,
										}
										if err := add(j); err != nil {
											return nil, err
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}
