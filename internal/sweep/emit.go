package sweep

import (
	"fmt"

	"tlbprefetch/internal/stats"
)

// Table renders results as an aligned text table, one row per cell in the
// given order. Cycle columns (including the miss-penalty and memory-op
// latency axes the cells were run at) appear only when at least one cell
// carries timing data.
func Table(results []Result) *stats.Table {
	timing, mixed := false, false
	for _, r := range results {
		if r.Timing != nil {
			timing = true
		}
		if r.Key.Mix != nil {
			mixed = true
		}
	}
	header := []string{"source", "mech", "tlb", "tlbways", "buffer", "pageshift",
		"refs", "missrate", "accuracy", "misses", "bufferhits", "issued", "memops"}
	if mixed {
		header = append(header, "quantum", "policy", "asid")
	}
	if timing {
		header = append(header, "penalty", "memop", "cycles", "CPI")
	}
	t := stats.NewTable(header...)
	for _, r := range results {
		k := r.Key
		row := []string{
			k.SourceLabel(),
			k.Mech.Label(),
			fmt.Sprintf("%d", k.TLBEntries),
			fmt.Sprintf("%d", k.TLBWays),
			fmt.Sprintf("%d", k.Buffer),
			fmt.Sprintf("%d", k.PageShift),
			fmt.Sprintf("%d", k.Refs),
			stats.F(r.Stats.MissRate()),
			stats.F(r.Stats.Accuracy()),
			fmt.Sprintf("%d", r.Stats.Misses),
			fmt.Sprintf("%d", r.Stats.BufferHits),
			fmt.Sprintf("%d", r.Stats.PrefetchesIssued),
			fmt.Sprintf("%d", r.Stats.MemOps()),
		}
		if mixed {
			if k.Mix != nil {
				row = append(row, fmt.Sprintf("%d", k.Mix.Quantum), k.Mix.Policy, k.Mix.ASID)
			} else {
				row = append(row, "-", "-", "-")
			}
		}
		if timing {
			if r.Timing != nil && k.Timing != nil {
				row = append(row,
					fmt.Sprintf("%d", k.Timing.MissPenalty),
					fmt.Sprintf("%d", k.Timing.MemOpLatency),
					fmt.Sprintf("%d", r.Timing.Cycles), stats.F(r.Timing.CPI()))
			} else {
				row = append(row, "-", "-", "-", "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// CSV renders results as comma-separated values.
func CSV(results []Result) string { return Table(results).CSV() }

// JSON renders results as canonical JSON (an array in the given order).
func JSON(results []Result) ([]byte, error) { return stats.Canonical(results) }
