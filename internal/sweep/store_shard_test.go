package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardGrid is the 16-cell grid the sharded-layout tests run: big enough to
// spread cells across many segment prefixes, small enough to stay fast.
func shardGrid() Grid {
	return Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []Mech{{Kind: "RP"}, {Kind: "SP"}},
		TLBEntries: []int{64, 128},
		Buffers:    []int{8, 16},
		Refs:       5_000,
	}
}

// savedShardStore runs shardGrid into a file-bound store, saves it, and
// returns the path.
func savedShardStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.json")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := shardGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (&Runner{Store: st, Workers: 4}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardedRoundTrip pins the sharded layout end to end: Save writes an
// index at the bound path plus a segment directory, the reopened store
// satisfies the same grid entirely from cache, and the canonical bytes
// survive the trip.
func TestShardedRoundTrip(t *testing.T) {
	path := savedShardStore(t)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"layout": "sharded-v1"`, `"schema": 3`, `"segments"`, `"keys"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("index missing %s", want)
		}
	}
	if strings.Contains(string(data), `"stats"`) {
		t.Error("index carries payloads — cells belong in segments")
	}
	ents, err := os.ReadDir(path + ".d")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".seg") {
			t.Errorf("unexpected file %s in segment dir", e.Name())
		}
	}

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 16 {
		t.Fatalf("reopened store has %d cells, want 16", re.Len())
	}
	if got := re.Segments(); got != len(ents) {
		t.Fatalf("index references %d segments, dir holds %d", got, len(ents))
	}
	jobs, _ := shardGrid().Jobs()
	if _, sum, err := (&Runner{Store: re}).Run(jobs); err != nil {
		t.Fatal(err)
	} else if sum.Cached != len(jobs) || sum.Ran != 0 {
		t.Fatalf("reopened store recomputed cells: %+v", sum)
	}

	st, _ := OpenStore(path)
	b1, err := st.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := re.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("store changed across save/load")
	}
}

// TestSelectReadsOnlyMatchingSegments is the O(touched cells) acceptance
// pin: a filter loads exactly the segments its matching cells' key-hash
// prefixes name — a strict subset of the store.
func TestSelectReadsOnlyMatchingSegments(t *testing.T) {
	path := savedShardStore(t)
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFilter("workload=swim")
	if err != nil {
		t.Fatal(err)
	}
	wantPrefixes := map[string]bool{}
	for _, k := range re.IndexKeys() {
		if f.Match(k) {
			wantPrefixes[segPrefix(k.Hash())] = true
		}
	}
	if re.SegmentReads() != 0 {
		t.Fatalf("open + IndexKeys read %d segments, want 0", re.SegmentReads())
	}
	sel, err := f.Select(re)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 8 {
		t.Fatalf("selected %d cells, want 8", len(sel))
	}
	if got := re.SegmentReads(); got != len(wantPrefixes) {
		t.Fatalf("Select read %d segments, want %d (the matched prefixes)", got, len(wantPrefixes))
	}
	if len(wantPrefixes) >= re.Segments() {
		t.Fatalf("filter touched all %d segments — grid no longer pins the subset property", re.Segments())
	}
}

// TestSingleCellRerunReadsOneSegment pins the other acceptance lookup: a
// cached single-cell re-run (and a raw Get) reads exactly the one segment
// its hash prefix names, and a miss is decided from the index with no reads.
func TestSingleCellRerunReadsOneSegment(t *testing.T) {
	path := savedShardStore(t)
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := shardGrid().Jobs()
	if _, sum, err := (&Runner{Store: re}).Run(jobs[:1]); err != nil {
		t.Fatal(err)
	} else if sum.Cached != 1 {
		t.Fatalf("single-cell re-run missed the cache: %+v", sum)
	}
	if got := re.SegmentReads(); got != 1 {
		t.Fatalf("single-cell re-run read %d segments, want 1", got)
	}
	// A second lookup in the same prefix is already resident.
	if _, ok, err := re.Get(jobs[0].Key().Hash()); err != nil || !ok {
		t.Fatalf("cached cell lookup failed: ok=%v err=%v", ok, err)
	}
	if got := re.SegmentReads(); got != 1 {
		t.Fatalf("resident lookup re-read the segment (%d reads)", got)
	}
	// A miss never touches the disk.
	if _, ok, err := re.Get(strings.Repeat("f", 64)); err != nil || ok {
		t.Fatalf("phantom cell: ok=%v err=%v", ok, err)
	}
	if got := re.SegmentReads(); got != 1 {
		t.Fatalf("index miss read a segment (%d reads)", got)
	}
}

// TestShardedSaveDeterministic pins byte-determinism across worker counts:
// 1-worker and 8-worker sweeps of the same grid produce an identical index
// file and an identical segment directory.
func TestShardedSaveDeterministic(t *testing.T) {
	dir := t.TempDir()
	jobs, err := shardGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{filepath.Join(dir, "w1.json"), filepath.Join(dir, "w8.json")}
	for i, workers := range []int{1, 8} {
		st, err := OpenStore(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := (&Runner{Store: st, Workers: workers}).Run(jobs); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(); err != nil {
			t.Fatal(err)
		}
	}
	b1, _ := os.ReadFile(paths[0])
	b2, _ := os.ReadFile(paths[1])
	if !bytes.Equal(b1, b2) {
		t.Fatal("1-worker and 8-worker index files differ")
	}
	e1, err := os.ReadDir(paths[0] + ".d")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := os.ReadDir(paths[1] + ".d")
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(e2) {
		t.Fatalf("segment dirs differ: %d vs %d files", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Name() != e2[i].Name() {
			t.Fatalf("segment file %d: %s vs %s", i, e1[i].Name(), e2[i].Name())
		}
		s1, _ := os.ReadFile(filepath.Join(paths[0]+".d", e1[i].Name()))
		s2, _ := os.ReadFile(filepath.Join(paths[1]+".d", e2[i].Name()))
		if !bytes.Equal(s1, s2) {
			t.Fatalf("segment %s differs between worker counts", e1[i].Name())
		}
	}
}

// TestCheckpointWritesOnlyDirtySegments pins the incremental-save contract
// sweepd's periodic checkpoint depends on: a save after one new cell writes
// exactly one segment file (the dirty prefix) — not the whole store — and a
// save with nothing dirty writes none.
func TestCheckpointWritesOnlyDirtySegments(t *testing.T) {
	path := savedShardStore(t)
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing dirty: nothing written.
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	if got := st.SegmentWrites(); got != 0 {
		t.Fatalf("clean save wrote %d segments, want 0", got)
	}

	jobs, _ := shardGrid().Jobs()
	fresh := jobs[0]
	fresh.Seed = 98765 // a cell the store does not have
	res, _, err := (&Runner{}).Run([]Job{fresh})
	if err != nil {
		t.Fatal(err)
	}
	st.Put(res[0])
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	if got := st.SegmentWrites(); got != 1 {
		t.Fatalf("one-cell checkpoint wrote %d segments, want 1", got)
	}
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 17 {
		t.Fatalf("store has %d cells after checkpoint, want 17", re.Len())
	}
	if _, ok, err := re.Get(res[0].Key.Hash()); err != nil || !ok {
		t.Fatalf("checkpointed cell missing: ok=%v err=%v", ok, err)
	}
}

// TestGCDropsWholePrefixesWithoutReads pins GC's laziness: dropping every
// cell of a store needs no segment reads at all (whole segments are
// unlinked, not loaded), and the shrunken store survives a save.
func TestGCDropsWholePrefixesWithoutReads(t *testing.T) {
	path := savedShardStore(t)
	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := shardGrid().Jobs()
	keep := map[string]bool{jobs[0].Key().Hash(): true}
	dropped, err := re.GC(keep)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 15 {
		t.Fatalf("GC dropped %d cells, want 15", dropped)
	}
	// Only the kept cell's segment could have needed a read (it survives a
	// mixed prefix); every fully dropped segment stays untouched.
	if got := re.SegmentReads(); got > 1 {
		t.Fatalf("GC read %d segments, want at most 1", got)
	}
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(path + ".d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != re.Segments() {
		t.Fatalf("segment dir holds %d files, index references %d", len(ents), re.Segments())
	}
	after, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != 1 {
		t.Fatalf("store has %d cells after GC+save, want 1", after.Len())
	}
	if _, ok, err := after.Get(jobs[0].Key().Hash()); err != nil || !ok {
		t.Fatalf("kept cell lost: ok=%v err=%v", ok, err)
	}
}

// TestV3ConversionRoundTrip pins the monolithic → sharded conversion against
// the committed fixture a pre-sharding binary wrote: it opens with zero
// recomputed cells, reports Converted, satisfies its grids from cache, and
// the next Save rewrites it sharded with identical contents.
func TestV3ConversionRoundTrip(t *testing.T) {
	path := copyFixtureFile(t, "store_v3.json")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converted() {
		t.Fatal("monolithic v3 fixture did not report Converted")
	}
	if st.Migrated() != 0 {
		t.Fatalf("same-schema conversion migrated %d cells, want 0", st.Migrated())
	}
	if st.Len() != 18 {
		t.Fatalf("fixture has %d cells, want 18", st.Len())
	}
	for _, g := range fixtureGrids() {
		jobs, err := g.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if _, sum, err := (&Runner{Store: st}).Run(jobs); err != nil {
			t.Fatal(err)
		} else if sum.Ran != 0 || sum.Cached != len(jobs) {
			t.Fatalf("monolithic fixture did not satisfy its grid from cache: %+v", sum)
		}
	}
	before, err := st.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), `"layout": "sharded-v1"`) {
		t.Fatal("conversion save did not write the sharded layout")
	}
	if _, err := os.Stat(path + ".d"); err != nil {
		t.Fatalf("conversion save left no segment dir: %v", err)
	}

	re, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Converted() {
		t.Fatal("sharded store still reports Converted")
	}
	after, err := re.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("conversion changed the store's contents")
	}
	jobs, _ := fixtureGrids()[0].Jobs()
	if _, sum, err := (&Runner{Store: re}).Run(jobs); err != nil {
		t.Fatal(err)
	} else if sum.Cached != len(jobs) {
		t.Fatalf("converted store recomputed cells: %+v", sum)
	}
}
