package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wireTestResults runs a tiny grid and returns its results.
func wireTestResults(t *testing.T) []Result {
	t.Helper()
	g := Grid{
		Workloads: []string{"swim"},
		Mechs:     []Mech{{Kind: "RP"}, {Kind: "SP"}},
		Refs:      5_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestSealOpenRoundTrip(t *testing.T) {
	results := wireTestResults(t)
	wc, err := SealResult(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q is not 64 hex chars", wc.Fingerprint)
	}
	back, err := wc.Open()
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats != results[0].Stats || back.Key.Hash() != results[0].Key.Hash() {
		t.Fatal("seal/open changed the result")
	}

	corrupt := wc
	corrupt.Result.Stats.BufferHits++
	if _, err := corrupt.Open(); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("corrupted payload opened (err=%v)", err)
	}
}

// TestWireResultJSONRoundTrip pins the transport encoding the protocol
// actually ships (WireResult inside a JSON request body): a sealed cell
// survives marshal/unmarshal exactly, and one corrupted in transit fails
// verification on the receiving side.
func TestWireResultJSONRoundTrip(t *testing.T) {
	results := wireTestResults(t)
	sealed := make([]WireResult, len(results))
	for i, r := range results {
		var err error
		if sealed[i], err = SealResult(r); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	var back []WireResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		r, err := back[i].Open()
		if err != nil {
			t.Fatalf("cell %d failed verification after the wire: %v", i, err)
		}
		if r.Stats != results[i].Stats {
			t.Fatalf("cell %d changed across the wire", i)
		}
	}

	// Corruption in transit: flip a counter inside the serialized bytes.
	tampered := bytes.Replace(data, []byte(`"Misses":`), []byte(`"Misses":1`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found")
	}
	var bad []WireResult
	if err := json.Unmarshal(tampered, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := bad[0].Open(); err == nil {
		t.Fatal("cell corrupted in transit opened without error")
	}
}

func TestStoreMerge(t *testing.T) {
	results := wireTestResults(t)
	st := NewStore()
	added, err := st.Merge(results)
	if err != nil || added != len(results) {
		t.Fatalf("first merge: added=%d err=%v", added, err)
	}
	// Idempotent re-delivery: nothing added, no error, bytes unchanged.
	before, _ := st.Bytes()
	added, err = st.Merge(results)
	if err != nil || added != 0 {
		t.Fatalf("re-merge: added=%d err=%v", added, err)
	}
	after, _ := st.Bytes()
	if string(before) != string(after) {
		t.Fatal("idempotent merge changed the store bytes")
	}
	// A divergent payload under an existing hash is a conflict: the first
	// value wins and the conflict is reported.
	divergent := results[0]
	divergent.Stats.Misses += 99
	if _, err := st.Merge([]Result{divergent}); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("divergent merge accepted (err=%v)", err)
	}
	kept, _, _ := st.Get(results[0].Key.Hash())
	if kept.Stats != results[0].Stats {
		t.Fatal("conflict replaced the first-accepted value")
	}
}

// TestStoreMergeReportsEveryConflict pins the multi-conflict contract: a
// batch carrying several divergent cells reports all of them in one typed
// error, not just the first.
func TestStoreMergeReportsEveryConflict(t *testing.T) {
	g := Grid{
		Workloads:  []string{"swim", "mcf"},
		Mechs:      []Mech{{Kind: "RP"}, {Kind: "SP"}},
		TLBEntries: []int{64, 128},
		Refs:       5_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if _, err := st.Merge(results); err != nil {
		t.Fatal(err)
	}

	// A batch with three divergent cells, one identical re-delivery and one
	// fresh cell interleaved: every divergence is reported, the rest merge.
	batch := make([]Result, 0, 5)
	wantConflicts := []string{}
	for _, i := range []int{0, 2, 5} {
		d := results[i]
		d.Stats.Misses += 99
		batch = append(batch, d)
		wantConflicts = append(wantConflicts, d.Key.Hash())
	}
	batch = append(batch, results[1]) // idempotent re-delivery
	fresh := results[3]
	fresh.Key.Seed = 12345 // a different cell entirely
	batch = append(batch, fresh)

	added, err := st.Merge(batch)
	if added != 1 {
		t.Fatalf("merge added %d cells, want 1 (the fresh one)", added)
	}
	var mc *MergeConflictError
	if !errors.As(err, &mc) {
		t.Fatalf("merge error %T is not *MergeConflictError: %v", err, err)
	}
	if len(mc.Hashes) != 3 {
		t.Fatalf("conflict error names %d cells, want 3: %v", len(mc.Hashes), mc.Hashes)
	}
	for i, h := range wantConflicts {
		if mc.Hashes[i] != h {
			t.Fatalf("conflict %d = %s, want %s (batch order)", i, mc.Hashes[i], h)
		}
	}
	if !strings.Contains(err.Error(), "3 cell(s)") || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("error text does not report the count: %v", err)
	}
	// First-accepted values all survived.
	for _, i := range []int{0, 2, 5} {
		kept, _, _ := st.Get(results[i].Key.Hash())
		if kept.Stats != results[i].Stats {
			t.Fatalf("conflict %d replaced the first-accepted value", i)
		}
	}
	// The capped rendering still carries every hash in the error value.
	long := &MergeConflictError{}
	for i := 0; i < mergeConflictShown+4; i++ {
		long.Hashes = append(long.Hashes, strings.Repeat("a", 64))
	}
	if !strings.Contains(long.Error(), "+4 more") {
		t.Fatalf("capped rendering missing overflow note: %v", long.Error())
	}
}

// TestStoreRejectsUnknownSchemaCells is the -diff regression: a store file
// whose header says the current schema but which contains a
// self-consistent cell keyed under another schema (doctored or produced by
// a broken writer) must fail to open with an error naming that schema —
// not load silently and surface later as a baffling cell mismatch in
// tlbsweep -diff or a cache miss in a sweep.
func TestStoreRejectsUnknownSchemaCells(t *testing.T) {
	dir := t.TempDir()
	results := wireTestResults(t)

	// Doctor a cell: re-key it under a future schema, with its hash
	// recomputed so it is self-consistent (the hash check alone cannot
	// catch it).
	doctored := results[0]
	doctored.Key.Schema = KeySchema + 1

	// Monolithic layout: the header says the current schema but one cell
	// inside is keyed under another.
	mono := storeFile{Schema: KeySchema, Results: map[string]Result{
		results[1].Key.Hash(): results[1],
		doctored.Key.Hash():   doctored,
	}}
	monoPath := filepath.Join(dir, "mono.json")
	raw, err := json.Marshal(mono)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(monoPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(monoPath)
	if err == nil {
		t.Fatal("monolithic store with an unknown-schema cell opened without error")
	}
	for _, want := range []string{"schema 4", "speaks 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the schemas (want %q)", err, want)
		}
	}

	// Sharded layout: the same doctored key smuggled into a saved index.
	shardPath := filepath.Join(dir, "shard.json")
	st, err := OpenStore(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Merge(results); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	var idx map[string]json.RawMessage
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	var keys map[string]Key
	if err := json.Unmarshal(idx["keys"], &keys); err != nil {
		t.Fatal(err)
	}
	keys[results[0].Key.Hash()] = doctored.Key
	rekeyed, err := json.Marshal(keys)
	if err != nil {
		t.Fatal(err)
	}
	idx["keys"] = rekeyed
	if raw, err = json.Marshal(idx); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(shardPath)
	if err == nil {
		t.Fatal("sharded store with an unknown-schema index key opened without error")
	}
	for _, want := range []string{"schema 4", "speaks 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the schemas (want %q)", err, want)
		}
	}
}
