package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wireTestResults runs a tiny grid and returns its results.
func wireTestResults(t *testing.T) []Result {
	t.Helper()
	g := Grid{
		Workloads: []string{"swim"},
		Mechs:     []Mech{{Kind: "RP"}, {Kind: "SP"}},
		Refs:      5_000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := (&Runner{}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestSealOpenRoundTrip(t *testing.T) {
	results := wireTestResults(t)
	wc, err := SealResult(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q is not 64 hex chars", wc.Fingerprint)
	}
	back, err := wc.Open()
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats != results[0].Stats || back.Key.Hash() != results[0].Key.Hash() {
		t.Fatal("seal/open changed the result")
	}

	corrupt := wc
	corrupt.Result.Stats.BufferHits++
	if _, err := corrupt.Open(); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("corrupted payload opened (err=%v)", err)
	}
}

// TestWireResultJSONRoundTrip pins the transport encoding the protocol
// actually ships (WireResult inside a JSON request body): a sealed cell
// survives marshal/unmarshal exactly, and one corrupted in transit fails
// verification on the receiving side.
func TestWireResultJSONRoundTrip(t *testing.T) {
	results := wireTestResults(t)
	sealed := make([]WireResult, len(results))
	for i, r := range results {
		var err error
		if sealed[i], err = SealResult(r); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	var back []WireResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		r, err := back[i].Open()
		if err != nil {
			t.Fatalf("cell %d failed verification after the wire: %v", i, err)
		}
		if r.Stats != results[i].Stats {
			t.Fatalf("cell %d changed across the wire", i)
		}
	}

	// Corruption in transit: flip a counter inside the serialized bytes.
	tampered := bytes.Replace(data, []byte(`"Misses":`), []byte(`"Misses":1`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found")
	}
	var bad []WireResult
	if err := json.Unmarshal(tampered, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := bad[0].Open(); err == nil {
		t.Fatal("cell corrupted in transit opened without error")
	}
}

func TestStoreMerge(t *testing.T) {
	results := wireTestResults(t)
	st := NewStore()
	added, err := st.Merge(results)
	if err != nil || added != len(results) {
		t.Fatalf("first merge: added=%d err=%v", added, err)
	}
	// Idempotent re-delivery: nothing added, no error, bytes unchanged.
	before, _ := st.Bytes()
	added, err = st.Merge(results)
	if err != nil || added != 0 {
		t.Fatalf("re-merge: added=%d err=%v", added, err)
	}
	after, _ := st.Bytes()
	if string(before) != string(after) {
		t.Fatal("idempotent merge changed the store bytes")
	}
	// A divergent payload under an existing hash is a conflict: the first
	// value wins and the conflict is reported.
	divergent := results[0]
	divergent.Stats.Misses += 99
	if _, err := st.Merge([]Result{divergent}); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("divergent merge accepted (err=%v)", err)
	}
	kept, _ := st.Get(results[0].Key.Hash())
	if kept.Stats != results[0].Stats {
		t.Fatal("conflict replaced the first-accepted value")
	}
}

// TestStoreRejectsUnknownSchemaCells is the -diff regression: a store file
// whose header says the current schema but which contains a
// self-consistent cell keyed under another schema (doctored or produced by
// a broken writer) must fail to open with an error naming that schema —
// not load silently and surface later as a baffling cell mismatch in
// tlbsweep -diff or a cache miss in a sweep.
func TestStoreRejectsUnknownSchemaCells(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	results := wireTestResults(t)
	if _, err := st.Merge(results); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}

	// Doctor the file: re-key one cell under a future schema, with its
	// hash recomputed so it is self-consistent (the hash check alone
	// cannot catch it).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	doctored := results[0]
	doctored.Key.Schema = KeySchema + 1
	delete(f.Results, results[0].Key.Hash())
	f.Results[doctored.Key.Hash()] = doctored
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenStore(path)
	if err == nil {
		t.Fatal("store with an unknown-schema cell opened without error")
	}
	for _, want := range []string{"schema 4", "speaks 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the schemas (want %q)", err, want)
		}
	}
}
