package sweep

import (
	"fmt"

	"tlbprefetch/internal/stats"
)

// WireResult is the transport form of a completed cell: the Result plus
// the fingerprint of its canonical encoding. The fingerprint travels with
// the payload so the receiving side can re-derive it from the bytes it
// actually decoded and refuse anything that does not hash to its claim —
// the distributed feed's defence against corruption in transit and buggy
// or lying workers mislabelling results.
type WireResult struct {
	Result      Result `json:"result"`
	Fingerprint string `json:"fp"`
}

// SealResult wraps a result for the wire, stamping it with the fingerprint
// of its canonical encoding.
func SealResult(r Result) (WireResult, error) {
	fp, err := stats.Fingerprint(r)
	if err != nil {
		return WireResult{}, err
	}
	return WireResult{Result: r, Fingerprint: fp}, nil
}

// Open verifies the sealed result against its fingerprint and returns the
// payload. A mismatch means the cell was corrupted or relabelled somewhere
// between the producing worker and here.
func (w WireResult) Open() (Result, error) {
	if err := stats.VerifyFingerprint(w.Result, w.Fingerprint); err != nil {
		return Result{}, fmt.Errorf("sweep: cell %s: %w", w.Result.Key.Hash()[:12], err)
	}
	return w.Result, nil
}
