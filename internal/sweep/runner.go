package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

// ProgressEvent reports one settled cell (from cache or freshly run).
type ProgressEvent struct {
	// Done cells out of Total have settled, this one included.
	Done, Total int
	// Cached is true when the cell was satisfied from the store.
	Cached bool
	Result Result
}

// Summary counts how a run's cells were satisfied.
type Summary struct {
	Total  int // cells requested
	Cached int // satisfied from the store without simulating
	Ran    int // freshly simulated
	Shards int // worker units the fresh cells were coalesced into
}

// Runner executes sweep jobs. The zero value runs everything with
// GOMAXPROCS workers and no caching; set Store to skip cells whose key
// hash is already present (and to record fresh ones).
type Runner struct {
	// Store, when non-nil, is consulted before running each cell and
	// updated with every fresh result.
	Store *Store
	// Workers bounds the worker pool (0 = GOMAXPROCS). The results are
	// bit-identical for any worker count.
	Workers int
	// Resolve maps a job's workload name to its model. Nil uses the
	// global registry (workload.ByName).
	Resolve func(name string) (workload.Workload, bool)
	// Progress, when non-nil, is called once per settled cell. Calls are
	// serialized; the callback must not invoke the Runner reentrantly.
	Progress func(ProgressEvent)
}

// shardKey identifies cells that can share one generation pass and (for
// functional cells) one sim.Group: same stream (workload, seed, length)
// and same TLB-frontend geometry. Buffer size and mechanism may differ
// within a shard — they live in the per-member back half.
type shardKey struct {
	workload  string
	tlbCfg    tlb.Config
	pageShift uint
	refs      uint64
	warmup    uint64
	seed      uint64
	timing    bool
}

// shard is one worker unit: the indices (into the caller's job slice) of
// the cells it settles.
type shard struct {
	key     shardKey
	indices []int
}

// Run executes the jobs, returning one result per job in input order plus
// a summary of cache behaviour. Jobs whose key hash is present in the
// store are returned from cache; the rest are sharded across the worker
// pool. Results are deterministic: independent of worker count, shard
// order, and of which other cells the sweep contains.
func (r *Runner) Run(jobs []Job) ([]Result, Summary, error) {
	sum := Summary{Total: len(jobs)}
	out := make([]Result, len(jobs))
	hashes := make([]string, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, sum, fmt.Errorf("job %d (%s/%s): %w", i, j.Workload, j.Mech.Label(), err)
		}
		hashes[i] = j.Key().Hash()
	}

	resolve := r.Resolve
	if resolve == nil {
		resolve = workload.ByName
	}

	// Settle cached cells first, then coalesce the rest into shards.
	done := 0
	byKey := make(map[shardKey]int)
	var shards []*shard
	for i, j := range jobs {
		if r.Store != nil {
			if res, ok := r.Store.Get(hashes[i]); ok {
				out[i] = res
				sum.Cached++
				done++
				if r.Progress != nil {
					r.Progress(ProgressEvent{Done: done, Total: len(jobs), Cached: true, Result: res})
				}
				continue
			}
		}
		if _, ok := resolve(j.Workload); !ok {
			return nil, sum, fmt.Errorf("job %d: unknown workload %q", i, j.Workload)
		}
		k := shardKey{
			workload:  j.Workload,
			tlbCfg:    tlb.Config{Entries: j.Config.TLB.Entries, Ways: canonicalTLBWays(j.Config.TLB)},
			pageShift: j.Config.PageShift,
			refs:      j.Refs,
			warmup:    j.Warmup,
			seed:      j.Seed,
			timing:    j.Timing,
		}
		si, ok := byKey[k]
		if !ok {
			si = len(shards)
			byKey[k] = si
			shards = append(shards, &shard{key: k})
		}
		shards[si].indices = append(shards[si].indices, i)
	}
	sum.Ran = len(jobs) - sum.Cached
	sum.Shards = len(shards)
	if len(shards) == 0 {
		return out, sum, nil
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	var (
		mu   sync.Mutex // guards done + Progress
		wg   sync.WaitGroup
		work = make(chan *shard)
	)
	settle := func(idx int, res Result) {
		out[idx] = res
		if r.Store != nil {
			r.Store.Put(res)
		}
		mu.Lock()
		done++
		if r.Progress != nil {
			r.Progress(ProgressEvent{Done: done, Total: len(jobs), Result: res})
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				runShard(sh, jobs, resolve, settle)
			}
		}()
	}
	for _, sh := range shards {
		work <- sh
	}
	close(work)
	wg.Wait()
	return out, sum, nil
}

// runShard simulates one shard: one generation pass over the workload
// stream feeding every member cell.
func runShard(sh *shard, jobs []Job, resolve func(string) (workload.Workload, bool), settle func(int, Result)) {
	w, _ := resolve(sh.key.workload) // presence checked during sharding
	if sh.key.seed != 0 {
		w.Seed = sh.key.seed
	}
	if sh.key.timing {
		runTimingShard(sh, w, jobs, settle)
		return
	}

	// Functional cells: geometry-identical members share one canonical
	// TLB frontend via sim.Group (heterogeneous buffer sizes are fine —
	// the buffer is in the per-member back half).
	g := sim.NewGroup()
	for _, idx := range sh.indices {
		j := jobs[idx]
		g.Add(sim.New(j.Config, j.Mech.Build()))
	}
	total := sh.key.warmup + sh.key.refs
	var seen uint64
	workload.Generate(w, total, func(pc, vaddr uint64) bool {
		g.Ref(pc, vaddr)
		seen++
		if seen == sh.key.warmup {
			for _, s := range g.Members() {
				s.ResetStats()
			}
		}
		return true
	})
	for mi, s := range g.Members() {
		idx := sh.indices[mi]
		settle(idx, Result{Key: jobs[idx].Key(), Stats: s.Stats()})
	}
}

// runTimingShard drives the cycle model: the members cannot share a
// frontend (each owns its clock), but they do share the single generation
// pass.
func runTimingShard(sh *shard, w workload.Workload, jobs []Job, settle func(int, Result)) {
	sims := make([]*sim.TimingSimulator, len(sh.indices))
	for mi, idx := range sh.indices {
		j := jobs[idx]
		tc := sim.DefaultTiming()
		tc.Config = j.Config
		sims[mi] = sim.NewTiming(tc, j.Mech.Build())
	}
	workload.Generate(w, sh.key.refs, func(pc, vaddr uint64) bool {
		for _, s := range sims {
			s.Ref(pc, vaddr)
		}
		return true
	})
	for mi, idx := range sh.indices {
		st := sims[mi].Stats()
		settle(idx, Result{Key: jobs[idx].Key(), Stats: st.Stats, Timing: &st})
	}
}
