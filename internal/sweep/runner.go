package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"tlbprefetch/internal/multiprog"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// ProgressEvent reports one settled cell (from cache or freshly run).
type ProgressEvent struct {
	// Done cells out of Total have settled, this one included.
	Done, Total int
	// Cached is true when the cell was satisfied from the store.
	Cached bool
	Result Result
}

// Summary counts how a run's cells were satisfied.
type Summary struct {
	Total  int // cells requested
	Cached int // satisfied from the store without simulating
	Ran    int // freshly simulated
	Shards int // worker units the fresh cells were coalesced into
}

// Runner executes sweep jobs. The zero value runs everything with
// GOMAXPROCS workers and no caching; set Store to skip cells whose key
// hash is already present (and to record fresh ones).
type Runner struct {
	// Store, when non-nil, is consulted before running each cell and
	// updated with every fresh result.
	Store *Store
	// Workers bounds the worker pool (0 = GOMAXPROCS). The results are
	// bit-identical for any worker count.
	Workers int
	// Resolve maps a job's workload name to its model. Nil uses the
	// global registry (workload.ByName).
	Resolve func(name string) (workload.Workload, bool)
	// OpenTrace opens a trace source's reference stream. Nil opens
	// Source.TracePath from the filesystem (after verifying the file
	// still hashes to the key's digest); tests may substitute in-memory
	// streams, in which case digest verification is the caller's problem.
	OpenTrace func(src Source) (trace.Reader, io.Closer, error)
	// Progress, when non-nil, is called once per settled cell. Calls are
	// serialized; the callback must not invoke the Runner reentrantly.
	Progress func(ProgressEvent)
}

// shardKey identifies cells that can share one generation pass and (for
// functional cells) one sim.Group: same stream (source, seed, length) and
// same TLB-frontend geometry. Buffer size, mechanism — and for timing
// shards the cycle-model constants — may differ within a shard; they live
// in the per-member back half. Mix cells key on the interleaved stream's
// fingerprint (member sources + quantum) instead of a single source; the
// switch policy and ASID mode live in the back half because the tagged
// stream they consume is identical (see Mix.streamFingerprint).
type shardKey struct {
	source    Source // canonical: workload name or trace digest (single-source cells)
	mix       string // Mix.streamFingerprint ("" for single-source cells)
	tlbCfg    tlb.Config
	pageShift uint
	refs      uint64
	warmup    uint64
	seed      uint64
	timing    bool
}

// shard is one worker unit: the indices (into the caller's job slice) of
// the cells it settles, plus the local path when the stream is a trace.
// Mix shards keep the first member job's Mix, whose sources carry the
// local trace paths the stream materializes from.
type shard struct {
	key       shardKey
	tracePath string
	mix       *Mix
	indices   []int
}

// Run executes the jobs, returning one result per job in input order plus
// a summary of cache behaviour. Jobs whose key hash is present in the
// store are returned from cache; the rest are sharded across the worker
// pool. Results are deterministic: independent of worker count, shard
// order, and of which other cells the sweep contains.
func (r *Runner) Run(jobs []Job) ([]Result, Summary, error) {
	sum := Summary{Total: len(jobs)}
	out := make([]Result, len(jobs))
	hashes := make([]string, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			label := j.Source.Label()
			if j.Mix != nil {
				label = j.Mix.Label()
			}
			return nil, sum, fmt.Errorf("job %d (%s/%s): %w", i, label, j.Mech.Label(), err)
		}
		hashes[i] = j.Key().Hash()
	}

	resolve := r.Resolve
	if resolve == nil {
		resolve = workload.ByName
	}

	// Settle cached cells first, then coalesce the rest into shards.
	done := 0
	byKey := make(map[shardKey]int)
	verified := make(map[string]string) // trace path -> actual file digest
	var shards []*shard
	for i, j := range jobs {
		if r.Store != nil {
			res, ok, err := r.Store.Get(hashes[i])
			if err != nil {
				return nil, sum, err
			}
			if ok {
				out[i] = res
				sum.Cached++
				done++
				if r.Progress != nil {
					r.Progress(ProgressEvent{Done: done, Total: len(jobs), Cached: true, Result: res})
				}
				continue
			}
		}
		if j.Mix != nil {
			for mi, src := range j.Mix.Sources {
				if src.IsTrace() {
					if err := r.verifyTrace(src, verified); err != nil {
						return nil, sum, fmt.Errorf("job %d mix member %d: %w", i, mi, err)
					}
				} else if _, ok := resolve(src.Workload); !ok {
					return nil, sum, fmt.Errorf("job %d mix member %d: unknown workload %q", i, mi, src.Workload)
				}
			}
			k := shardKey{
				mix:       j.Mix.streamFingerprint(),
				tlbCfg:    tlb.Config{Entries: j.Config.TLB.Entries, Ways: canonicalTLBWays(j.Config.TLB)},
				pageShift: j.Config.PageShift,
				refs:      j.Refs,
			}
			si, ok := byKey[k]
			if !ok {
				si = len(shards)
				byKey[k] = si
				shards = append(shards, &shard{key: k, mix: j.Mix})
			}
			shards[si].indices = append(shards[si].indices, i)
			continue
		}
		if j.Source.IsTrace() {
			if err := r.verifyTrace(j.Source, verified); err != nil {
				return nil, sum, fmt.Errorf("job %d: %w", i, err)
			}
		} else if _, ok := resolve(j.Source.Workload); !ok {
			return nil, sum, fmt.Errorf("job %d: unknown workload %q", i, j.Source.Workload)
		}
		k := shardKey{
			source:    j.Source.Canonical(),
			tlbCfg:    tlb.Config{Entries: j.Config.TLB.Entries, Ways: canonicalTLBWays(j.Config.TLB)},
			pageShift: j.Config.PageShift,
			refs:      j.Refs,
			warmup:    j.Warmup,
			seed:      j.Seed,
			timing:    j.Timing != nil,
		}
		si, ok := byKey[k]
		if !ok {
			si = len(shards)
			byKey[k] = si
			shards = append(shards, &shard{key: k, tracePath: j.Source.TracePath})
		}
		shards[si].indices = append(shards[si].indices, i)
	}
	sum.Ran = len(jobs) - sum.Cached
	sum.Shards = len(shards)
	if len(shards) == 0 {
		return out, sum, nil
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	var (
		mu   sync.Mutex // guards done + Progress
		wg   sync.WaitGroup
		work = make(chan int)
		errs = make([]error, len(shards))
	)
	settle := func(idx int, res Result) {
		out[idx] = res
		if r.Store != nil {
			r.Store.Put(res)
		}
		mu.Lock()
		done++
		if r.Progress != nil {
			r.Progress(ProgressEvent{Done: done, Total: len(jobs), Result: res})
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range work {
				errs[si] = r.runShard(shards[si], jobs, resolve, settle)
			}
		}()
	}
	for si := range shards {
		work <- si
	}
	close(work)
	wg.Wait()
	// Report the first failure in shard-creation order, so the error is
	// deterministic regardless of worker scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, sum, err
		}
	}
	return out, sum, nil
}

// verifyTrace checks a trace source's expected digest against the file's
// actual one (digested once per path per Run, compared once per source) so
// a stale or swapped file cannot be silently simulated under another
// recording's key. Skipped when the caller supplies OpenTrace.
func (r *Runner) verifyTrace(src Source, verified map[string]string) error {
	if r.OpenTrace != nil {
		return nil
	}
	if src.TracePath == "" {
		return fmt.Errorf("sweep: trace source %s has no local path to run from", src.Label())
	}
	digest, ok := verified[src.TracePath]
	if !ok {
		var err error
		digest, err = trace.DigestFile(src.TracePath)
		if err != nil {
			return err
		}
		verified[src.TracePath] = digest
	}
	if digest != src.TraceSHA256 {
		return fmt.Errorf("sweep: %s hashes to %.12s…, key expects %.12s… — the file changed since the grid was declared",
			src.TracePath, digest, src.TraceSHA256)
	}
	return nil
}

// streamChunk is the chunk size the runner streams references in: the
// decode (or generation) cost of a chunk amortizes over 4096 references
// while the chunk itself stays cache-resident for the simulators walking
// it.
const streamChunk = 4096

// openTrace resolves the trace-opening hook.
func (r *Runner) openTrace() func(src Source) (trace.Reader, io.Closer, error) {
	if r.OpenTrace != nil {
		return r.OpenTrace
	}
	return func(src Source) (trace.Reader, io.Closer, error) {
		return trace.OpenFile(src.TracePath)
	}
}

// stream drives one generation pass over the shard's reference stream:
// perBatch is called with successive chunks whose lengths sum to exactly
// total, warmup included. Synthetic streams regenerate from the workload
// model; trace streams replay the recording in batched decode chunks and
// fail if it ends before the cells' reference budget.
func (r *Runner) stream(sh *shard, resolve func(string) (workload.Workload, bool), total uint64, perBatch func(refs []trace.Ref)) error {
	var buf [streamChunk]trace.Ref
	if !sh.key.source.IsTrace() {
		w, _ := resolve(sh.key.source.Workload) // presence checked during sharding
		if sh.key.seed != 0 {
			w.Seed = sh.key.seed
		}
		n := 0
		workload.Generate(w, total, func(pc, vaddr uint64) bool {
			buf[n] = trace.Ref{PC: pc, VAddr: vaddr}
			n++
			if n == streamChunk {
				perBatch(buf[:])
				n = 0
			}
			return true
		})
		if n > 0 {
			perBatch(buf[:n])
		}
		return nil
	}
	src := sh.key.source
	src.TracePath = sh.tracePath
	tr, closer, err := r.openTrace()(src)
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	b := trace.AsBatch(tr)
	var n uint64
	for n < total {
		want := uint64(streamChunk)
		if rem := total - n; rem < want {
			want = rem
		}
		k, err := b.ReadBatch(buf[:want])
		if err == io.EOF {
			return fmt.Errorf("sweep: trace %s ends after %d of the %d references the cells need",
				src.Label(), n, total)
		}
		if err != nil {
			return err
		}
		perBatch(buf[:k])
		n += uint64(k)
	}
	return nil
}

// runShard simulates one shard: one generation pass over the reference
// stream feeding every member cell.
func (r *Runner) runShard(sh *shard, jobs []Job, resolve func(string) (workload.Workload, bool), settle func(int, Result)) error {
	if sh.mix != nil {
		return r.runMixShard(sh, jobs, resolve, settle)
	}
	if sh.key.timing {
		return r.runTimingShard(sh, jobs, resolve, settle)
	}

	// Functional cells: geometry-identical members share one canonical
	// TLB frontend via sim.Group (heterogeneous buffer sizes are fine —
	// the buffer is in the per-member back half).
	g := sim.NewGroup()
	for _, idx := range sh.indices {
		j := jobs[idx]
		g.Add(sim.New(j.Config, j.Mech.Build()))
	}
	total := sh.key.warmup + sh.key.refs
	var seen uint64
	err := r.stream(sh, resolve, total, func(refs []trace.Ref) {
		warm := sh.key.warmup
		if seen < warm && seen+uint64(len(refs)) >= warm {
			// The warmup boundary falls inside this chunk: split there so
			// the counters reset after exactly warm references, as the
			// per-reference path did.
			k := warm - seen
			g.RefBatch(refs[:k])
			for _, s := range g.Members() {
				s.ResetStats()
			}
			g.RefBatch(refs[k:])
		} else {
			g.RefBatch(refs)
		}
		seen += uint64(len(refs))
	})
	if err != nil {
		return err
	}
	for mi, s := range g.Members() {
		idx := sh.indices[mi]
		settle(idx, Result{Key: jobs[idx].Key(), Stats: s.Stats()})
	}
	return nil
}

// boundedTrace clips a trace member's stream to its mix share: it delivers
// exactly total references, reports EOF after them, and turns a premature
// end of the recording into the share-shortfall error.
type boundedTrace struct {
	src   trace.BatchReader
	label string
	got   uint64
	total uint64
}

// ReadBatch implements trace.BatchReader.
func (b *boundedTrace) ReadBatch(dst []trace.Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if b.got == b.total {
		return 0, io.EOF
	}
	if rem := b.total - b.got; uint64(len(dst)) > rem {
		dst = dst[:rem]
	}
	n, err := b.src.ReadBatch(dst)
	if err == io.EOF {
		return 0, fmt.Errorf("sweep: trace %s ends after %d of the %d references its mix share needs",
			b.label, b.got, b.total)
	}
	if err != nil {
		return 0, err
	}
	b.got += uint64(n)
	return n, nil
}

// memberStream opens one mix member's reference stream, clipped to its n-
// reference share, as a batch reader the interleaver can rotate over
// without materializing it. Synthetic members regenerate from the workload
// model at its registry seed (mix cells carry no seed axis) through a
// chunked pull adapter; trace members replay the recording and fail if it
// ends early. The returned closer (never nil) must be closed even when the
// stream is abandoned mid-way.
func (r *Runner) memberStream(src Source, n uint64, resolve func(string) (workload.Workload, bool)) (trace.BatchReader, io.Closer, error) {
	if !src.IsTrace() {
		w, _ := resolve(src.Workload) // presence checked during sharding
		cr := workload.NewChunkedReader(w, n)
		return cr, cr, nil
	}
	tr, closer, err := r.openTrace()(src)
	if err != nil {
		return nil, nil, err
	}
	if closer == nil {
		closer = io.NopCloser(nil)
	}
	return &boundedTrace{src: trace.AsBatch(tr), label: src.Label(), total: n}, closer, nil
}

// runMixShard simulates one mix shard: the cell's reference budget is split
// across the member sources, each member stream is opened as a bounded
// batch reader, and a single streaming round-robin interleaving pass feeds
// every member cell's Exec — no member stream is ever materialized. The
// interleaver tags addresses unconditionally, so cells differing in switch
// policy, ASID mode, mechanism or buffer size consume the identical stream
// — exactly what the shard key promises.
func (r *Runner) runMixShard(sh *shard, jobs []Job, resolve func(string) (workload.Workload, bool), settle func(int, Result)) error {
	canon := sh.mix.Canonical()
	shares := multiprog.Split(sh.key.refs, len(sh.mix.Sources))
	streams := make([]trace.BatchReader, len(sh.mix.Sources))
	for i, src := range sh.mix.Sources {
		s, closer, err := r.memberStream(src, shares[i], resolve)
		if err != nil {
			return err
		}
		defer closer.Close()
		streams[i] = s
	}

	execs := make([]*multiprog.Exec, len(sh.indices))
	for mi, idx := range sh.indices {
		j := jobs[idx]
		m := j.Mix.Canonical()
		pol, err := multiprog.ParsePolicy(m.Policy)
		if err != nil {
			return err
		}
		asid, err := multiprog.ParseASID(m.ASID)
		if err != nil {
			return err
		}
		mech := j.Mech
		execs[mi] = multiprog.NewExec(j.Config, pol, asid, len(streams), func() prefetch.Prefetcher {
			return mech.Build()
		})
	}

	it := multiprog.NewStreamInterleaver(streams, canon.Quantum)
	for {
		proc, pc, vaddr, ok := it.Next()
		if !ok {
			break
		}
		for _, e := range execs {
			e.Ref(proc, pc, vaddr)
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	for mi, idx := range sh.indices {
		res := execs[mi].Results()
		settle(idx, Result{Key: jobs[idx].Key(), Stats: res.Aggregate, Apps: res.Apps})
	}
	return nil
}

// runTimingShard drives the cycle model: the members cannot share a
// frontend (each owns its clock — and may own different cycle constants),
// but they do share the single generation pass.
func (r *Runner) runTimingShard(sh *shard, jobs []Job, resolve func(string) (workload.Workload, bool), settle func(int, Result)) error {
	sims := make([]*sim.TimingSimulator, len(sh.indices))
	for mi, idx := range sh.indices {
		j := jobs[idx]
		sims[mi] = sim.NewTiming(j.Timing.Config(j.Config), j.Mech.Build())
	}
	// Sim-outer over each chunk: every TimingSimulator owns its clock and
	// shares no state with the others, so walking the chunk once per sim is
	// bit-identical to the ref-outer order while touching each sim's state
	// in long cache-friendly runs.
	err := r.stream(sh, resolve, sh.key.refs, func(refs []trace.Ref) {
		for _, s := range sims {
			for i := range refs {
				s.Ref(refs[i].PC, refs[i].VAddr)
			}
		}
	})
	if err != nil {
		return err
	}
	for mi, idx := range sh.indices {
		st := sims[mi].Stats()
		settle(idx, Result{Key: jobs[idx].Key(), Stats: st.Stats, Timing: &st})
	}
	return nil
}
