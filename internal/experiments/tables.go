package experiments

import (
	"fmt"
	"strings"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/stats"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/workload"
)

// Table1 renders the paper's Table 1 — the qualitative hardware comparison
// — from each mechanism's self-reported HardwareInfo, so the table can
// never drift from the implementations.
func Table1(opts Options) string {
	describers := []prefetch.HardwareDescriber{
		MechConfig{Kind: "ASP", Rows: 256, Ways: 1}.Build(opts).(prefetch.HardwareDescriber),
		MechConfig{Kind: "MP", Rows: 256, Ways: 1}.Build(opts).(prefetch.HardwareDescriber),
		MechConfig{Kind: "RP"}.Build(opts).(prefetch.HardwareDescriber),
		MechConfig{Kind: "DP", Rows: 256, Ways: 1}.Build(opts).(prefetch.HardwareDescriber),
	}
	t := stats.NewTable("question", "ASP", "MP", "RP", "DP")
	infos := make([]prefetch.HardwareInfo, len(describers))
	for i, d := range describers {
		infos[i] = d.HardwareInfo()
	}
	row := func(q string, get func(prefetch.HardwareInfo) string) {
		cells := []string{q}
		for _, hi := range infos {
			cells = append(cells, get(hi))
		}
		t.AddRow(cells...)
	}
	row("How many rows?", func(h prefetch.HardwareInfo) string { return h.Rows })
	row("What are the contents of a row?", func(h prefetch.HardwareInfo) string { return h.RowContents })
	row("Where is the table?", func(h prefetch.HardwareInfo) string { return h.TableLocation })
	row("How is the table indexed?", func(h prefetch.HardwareInfo) string { return h.IndexedBy })
	row("Memory ops per miss (excl. prefetches)?", func(h prefetch.HardwareInfo) string { return h.StateMemOps })
	row("How many prefetches can be initiated?", func(h prefetch.HardwareInfo) string { return h.MaxPrefetches })
	return t.String()
}

// Table2Row is one mechanism's averages over all 56 applications.
type Table2Row struct {
	Mechanism    string
	Average      float64 // (Σ p_i)/n
	WeightedAvg  float64 // Σ(m_i·p_i)/Σ(m_i)
	PerApp       []float64
	PerAppMiss   []float64
	PerAppLabels []string
}

// Table2Result reproduces the paper's Table 2 (s=2, r=256 for DP, MP, ASP).
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs all 56 applications against the four headline mechanisms at
// the paper's Table 2 operating point.
func Table2(opts Options) Table2Result {
	mechs := []MechConfig{
		{Kind: "DP", Rows: 256, Ways: 1},
		{Kind: "RP"},
		{Kind: "ASP", Rows: 256, Ways: 1},
		{Kind: "MP", Rows: 256, Ways: 1},
	}
	results := RunSuite(workload.All(), opts, mechs)
	out := Table2Result{}
	for mi, m := range mechs {
		row := Table2Row{Mechanism: m.Kind}
		var accs, rates []float64
		for _, r := range results {
			accs = append(accs, r.Acc[mi])
			rates = append(rates, r.MissRate)
			row.PerAppLabels = append(row.PerAppLabels, r.App)
		}
		row.PerApp = accs
		row.PerAppMiss = rates
		row.Average = stats.Mean(accs)
		row.WeightedAvg = stats.WeightedMean(accs, rates)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// FormatTable2 renders Table 2 alongside the paper's published values.
func FormatTable2(r Table2Result) string {
	paper := map[string][2]float64{
		"DP":  {0.43, 0.82},
		"RP":  {0.29, 0.86},
		"ASP": {0.28, 0.73},
		"MP":  {0.11, 0.04},
	}
	t := stats.NewTable("scheme", "average", "weighted avg", "paper avg", "paper wavg")
	for _, row := range r.Rows {
		p := paper[row.Mechanism]
		t.AddRow(row.Mechanism, stats.F2(row.Average), stats.F2(row.WeightedAvg),
			stats.F2(p[0]), stats.F2(p[1]))
	}
	return t.String()
}

// Table3AppNames lists the five applications of the paper's Table 3 — the
// ones where RP's accuracy beats DP's, making the cycle comparison the
// interesting one.
func Table3AppNames() []string {
	return []string{"ammp", "mcf", "vpr", "twolf", "lucas"}
}

// Table3Row is one application's normalized execution cycles.
type Table3Row struct {
	App            string
	BaselineCycles uint64
	RPCycles       uint64
	DPCycles       uint64
	RPNormalized   float64
	DPNormalized   float64
	RPStats        sim.TimingStats
	DPStats        sim.TimingStats
}

// Table3 reproduces the execution-cycle comparison: RP vs DP (s=2, r=256)
// normalized to no prefetching, under the paper's timing model (100-cycle
// TLB miss penalty, 50-cycle prefetch memory operations contending only
// with each other, RP's skip-when-busy rule). It is the default point of
// the latency-sensitivity grid Table3Latency sweeps: one timing axis
// (sweep.DefaultTiming), five apps, three mechanisms, every cell rendered
// from the sweep store.
func Table3(opts Options) []Table3Row {
	rows := Table3Latency(opts, []sweep.Timing{sweep.DefaultTiming()})
	out := make([]Table3Row, len(rows))
	for i, r := range rows {
		out[i] = r.Table3Row
	}
	return out
}

// Table3LatencyRow is one (application, timing point) cell group of the
// latency-sensitivity grid.
type Table3LatencyRow struct {
	Table3Row
	Timing sweep.Timing
}

// Table3Latency generalizes Table 3 into a latency-sensitivity study: the
// (5 apps) × (baseline, RP, DP) × (timing points) grid, each app's cells
// at one timing point sharing a generation pass in the sweep shard, with
// every cell content-addressed — so re-rendering at the default point, or
// extending the penalty axis later, only simulates cells the store lacks.
func Table3Latency(opts Options, timings []sweep.Timing) []Table3LatencyRow {
	apps := make([]workload.Workload, 0, len(Table3AppNames()))
	for _, name := range Table3AppNames() {
		w, ok := workload.ByName(name)
		if !ok {
			panic("experiments: missing table3 workload " + name)
		}
		apps = append(apps, w)
	}
	mechs := []MechConfig{{Kind: "none"}, {Kind: "RP"}, {Kind: "DP", Rows: 256, Ways: 1}}
	jobs := make([]sweep.Job, 0, len(apps)*len(mechs)*len(timings))
	for _, w := range apps {
		for ti := range timings {
			for _, m := range mechs {
				jobs = append(jobs, sweep.Job{
					Source: sweep.WorkloadSource(w.Name),
					Mech:   m.sweepMech(opts),
					Config: opts.simConfig(),
					Refs:   opts.Refs,
					Timing: &timings[ti],
				})
			}
		}
	}
	results := runJobs(apps, opts, jobs)
	var out []Table3LatencyRow
	for i, w := range apps {
		for ti, tm := range timings {
			base := (i*len(timings) + ti) * len(mechs)
			bs := *results[base+0].Timing
			rs := *results[base+1].Timing
			ds := *results[base+2].Timing
			row := Table3LatencyRow{
				Table3Row: Table3Row{
					App:            w.Name,
					BaselineCycles: bs.Cycles,
					RPCycles:       rs.Cycles,
					DPCycles:       ds.Cycles,
					RPStats:        rs,
					DPStats:        ds,
				},
				Timing: tm,
			}
			if bs.Cycles > 0 {
				row.RPNormalized = float64(rs.Cycles) / float64(bs.Cycles)
				row.DPNormalized = float64(ds.Cycles) / float64(bs.Cycles)
			}
			out = append(out, row)
		}
	}
	return out
}

// DefaultLatencyAxis is the miss-penalty sensitivity axis of the
// table3-lat experiment: the paper's 100-cycle point bracketed by a
// faster and two slower memory systems. The costs that are fractions of
// a page-table walk scale with it — the prefetch memory-op cost at the
// paper's 1:2 ratio, and the buffer-hit residual (fill + pipeline
// restart, 65% of the walk at the default point) in proportion, so a
// successful prefetch never models as costlier than the miss it avoids.
func DefaultLatencyAxis() []sweep.Timing {
	var out []sweep.Timing
	for _, penalty := range []uint64{50, 100, 200, 400} {
		out = append(out, sweep.ScaledTiming(penalty))
	}
	return out
}

// DefaultTable3SpaceAxes declares the table3-space design space: the
// latency axis bracketing the paper's 100-cycle point, the memory-op cost
// decoupled from the paper's fixed 2:1 penalty:memop ratio (0.25 models an
// aggressive prefetch path, 1.0 a memory system where a prefetch op costs
// a full walk), and both a serialized and the paper's 2-wide issue core.
func DefaultTable3SpaceAxes() sweep.TimingAxes {
	return sweep.TimingAxes{
		MissPenalties: []uint64{50, 100, 200, 400},
		MemOpRatios:   []float64{0.25, 0.5, 1},
		RefsPerCycle:  []uint64{1, 2},
	}
}

// Table3Space maps the full Table 3 design space: the (5 apps) ×
// (baseline, RP, DP) grid crossed with every point of the decoupled
// (MissPenalty × memop ratio × RefsPerCycle) axes. It is Table3Latency
// over TimingAxes.Points — every cell content-addressed, so the default
// Table 3 point is shared with table3/table3-lat through the store and a
// re-render recomputes nothing.
func Table3Space(opts Options, axes sweep.TimingAxes) ([]Table3LatencyRow, error) {
	pts, err := axes.Points()
	if err != nil {
		return nil, err
	}
	return Table3Latency(opts, pts), nil
}

// FormatTable3Space renders the design-space grid flat, one row per
// (application, timing point).
func FormatTable3Space(rows []Table3LatencyRow) string {
	t := stats.NewTable("app", "penalty", "memop", "ipc", "RP", "DP", "base cycles")
	for _, r := range rows {
		t.AddRow(r.App,
			fmt.Sprintf("%d", r.Timing.MissPenalty),
			fmt.Sprintf("%d", r.Timing.MemOpLatency),
			fmt.Sprintf("%d", r.Timing.RefsPerCycle),
			stats.F2(r.RPNormalized), stats.F2(r.DPNormalized),
			fmt.Sprintf("%d", r.BaselineCycles))
	}
	var b strings.Builder
	b.WriteString("Table 3 design space: normalized cycles vs (penalty × memop × issue width)\n")
	b.WriteString(t.String())
	return b.String()
}

// FormatTable3Latency renders the sensitivity grid, one row per
// (application, miss penalty).
func FormatTable3Latency(rows []Table3LatencyRow) string {
	t := stats.NewTable("app", "penalty", "memop", "RP", "DP", "base cycles")
	for _, r := range rows {
		t.AddRow(r.App,
			fmt.Sprintf("%d", r.Timing.MissPenalty),
			fmt.Sprintf("%d", r.Timing.MemOpLatency),
			stats.F2(r.RPNormalized), stats.F2(r.DPNormalized),
			fmt.Sprintf("%d", r.BaselineCycles))
	}
	var b strings.Builder
	b.WriteString("Table 3 (extended): normalized cycles vs TLB miss penalty\n")
	b.WriteString(t.String())
	return b.String()
}

// FormatTable3 renders Table 3 alongside the paper's published values.
func FormatTable3(rows []Table3Row) string {
	paper := map[string][2]float64{
		"ammp":  {0.97, 0.86},
		"mcf":   {1.09, 0.95},
		"vpr":   {0.99, 0.98},
		"twolf": {0.98, 0.98},
		"lucas": {1.00, 0.99},
	}
	t := stats.NewTable("app", "RP", "DP", "paper RP", "paper DP",
		"RP acc", "DP acc", "RP memops", "DP memops")
	for _, r := range rows {
		p := paper[r.App]
		t.AddRow(r.App,
			stats.F2(r.RPNormalized), stats.F2(r.DPNormalized),
			stats.F2(p[0]), stats.F2(p[1]),
			stats.F(r.RPStats.Accuracy()), stats.F(r.DPStats.Accuracy()),
			fmt.Sprintf("%d", r.RPStats.MemOps()), fmt.Sprintf("%d", r.DPStats.MemOps()))
	}
	var b strings.Builder
	b.WriteString("Table 3: normalized execution cycles w.r.t. no prefetching\n")
	b.WriteString(t.String())
	return b.String()
}
