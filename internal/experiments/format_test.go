package experiments

import (
	"strings"
	"testing"

	"tlbprefetch/internal/sim"
)

func TestFormatFigure(t *testing.T) {
	res := []AppResult{
		{App: "gzip", MissRate: 0.0123, Labels: []string{"RP", "DP,256,D"}, Acc: []float64{0.1, 0.9}},
		{App: "mcf", MissRate: 0.09, Labels: []string{"RP", "DP,256,D"}, Acc: []float64{0.95, 0.55}},
	}
	out := FormatFigure(res)
	for _, want := range []string{"gzip", "mcf", "0.012", "0.900", "DP,256,D"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if FormatFigure(nil) != "" {
		t.Error("empty results should render empty")
	}
}

func TestFormatTable2IncludesPaperColumns(t *testing.T) {
	r := Table2Result{Rows: []Table2Row{
		{Mechanism: "DP", Average: 0.6, WeightedAvg: 0.8},
		{Mechanism: "MP", Average: 0.07, WeightedAvg: 0.04},
	}}
	out := FormatTable2(r)
	for _, want := range []string{"paper avg", "0.43", "0.82", "0.60", "0.80"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatTable3IncludesPaperColumns(t *testing.T) {
	rows := []Table3Row{{
		App: "ammp", RPNormalized: 0.9, DPNormalized: 0.8,
		RPStats: sim.TimingStats{}, DPStats: sim.TimingStats{},
	}}
	out := FormatTable3(rows)
	for _, want := range []string{"ammp", "0.90", "0.80", "0.97", "0.86", "paper RP"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatFig9AllPanels(t *testing.T) {
	res := Fig9Result{
		TableGeometry: []AppResult{{App: "vpr", Labels: []string{"DP,256,D"}, Acc: []float64{0.7}}},
		SlotCount:     []AppResult{{App: "vpr", Labels: []string{"s=2"}, Acc: []float64{0.7}}},
		BufferSize:    []AppResult{{App: "vpr", Labels: []string{"b=16"}, Acc: []float64{0.7}}},
		TLBSize:       []AppResult{{App: "vpr", Labels: []string{"tlb=64"}, Acc: []float64{0.7}}},
	}
	out := FormatFig9(res)
	for _, want := range []string{"Figure 9a", "Figure 9b", "Figure 9c", "Figure 9d"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFormatExtHelpers(t *testing.T) {
	cache := FormatExtCache([]ExtCacheRow{{Workload: "cache-seq", DP: 1, ASP: 0.5, SP: 0.25}})
	if !strings.Contains(cache, "cache-seq") || !strings.Contains(cache, "1.000") {
		t.Errorf("cache table:\n%s", cache)
	}
	ps := FormatExtPageSize([]ExtPageSizeRow{{App: "vpr", Acc4K: 0.7, Acc8K: 0.71, Acc16K: 0.75}})
	if !strings.Contains(ps, "vpr") || !strings.Contains(ps, "16KB") {
		t.Errorf("pagesize table:\n%s", ps)
	}
}

func TestBuildPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mechanism kind accepted")
		}
	}()
	MechConfig{Kind: "XX"}.Build(DefaultOptions())
}
