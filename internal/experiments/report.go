package experiments

import (
	"fmt"

	"tlbprefetch/internal/report"
)

// FigureFromApps arranges a per-application panel (Fig7/Fig8/Fig9 output)
// as a report figure: groups in the harness's application order, series in
// the panel's own label order — the paper's presentation order, which the
// auto-derived labels of report.Build would re-sort. Every AppResult is
// expected to carry the panel's uniform label set, as RunSuite produces.
func FigureFromApps(title string, apps []AppResult) *report.Figure {
	f := &report.Figure{Title: title, Axis: "prediction accuracy"}
	if len(apps) > 0 {
		f.Series = apps[0].Labels
	}
	for _, a := range apps {
		f.Groups = append(f.Groups, report.Group{Label: a.App, Values: a.Acc})
	}
	return f
}

// Fig9Figures renders the four sensitivity panels of Figure 9 as report
// figures, ready for report.SVGDocument (one multi-panel SVG) or
// panel-by-panel text/CSV output.
func Fig9Figures(r Fig9Result) []*report.Figure {
	return []*report.Figure{
		FigureFromApps("Figure 9a: DP accuracy vs table size/associativity", r.TableGeometry),
		FigureFromApps("Figure 9b: DP accuracy vs prediction slots per row", r.SlotCount),
		FigureFromApps("Figure 9c: DP accuracy vs prefetch buffer size", r.BufferSize),
		FigureFromApps("Figure 9d: DP accuracy vs TLB size", r.TLBSize),
	}
}

// Table3SpaceFigure arranges the design-space study as a report figure:
// applications as groups, one series per (mechanism, miss penalty,
// memory-op cost, issue width) point, plotting execution cycles normalized
// to the no-prefetching baseline at the same timing point (below 1.0 means
// prefetching helped).
func Table3SpaceFigure(rows []Table3LatencyRow) *report.Figure {
	f := &report.Figure{
		Title: "Table 3 design space: normalized cycles vs (penalty × memop × issue width)",
		Axis:  "cycles normalized to no prefetching",
	}
	seriesIdx := make(map[string]int)
	groupIdx := make(map[string]int)
	add := func(app, series string, v float64) {
		si, ok := seriesIdx[series]
		if !ok {
			si = len(f.Series)
			seriesIdx[series] = si
			f.Series = append(f.Series, series)
		}
		gi, ok := groupIdx[app]
		if !ok {
			gi = len(f.Groups)
			groupIdx[app] = gi
			f.Groups = append(f.Groups, report.Group{Label: app})
		}
		g := &f.Groups[gi]
		for len(g.Values) <= si {
			g.Values = append(g.Values, 0)
			g.Present = append(g.Present, false)
		}
		g.Values[si], g.Present[si] = v, true
	}
	for _, r := range rows {
		point := fmt.Sprintf("p=%d m=%d ipc=%d", r.Timing.MissPenalty, r.Timing.MemOpLatency, r.Timing.RefsPerCycle)
		add(r.App, "RP "+point, r.RPNormalized)
		add(r.App, "DP "+point, r.DPNormalized)
	}
	// Pad late-discovered groups so every one indexes the full series list.
	for gi := range f.Groups {
		g := &f.Groups[gi]
		for len(g.Values) < len(f.Series) {
			g.Values = append(g.Values, 0)
			g.Present = append(g.Present, false)
		}
	}
	return f
}
