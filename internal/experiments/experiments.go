// Package experiments regenerates every table and figure of the paper's
// evaluation (§3), plus the extension studies DESIGN.md lists. It is shared
// by cmd/experiments (human-readable output) and bench_test.go (one
// testing.B benchmark per experiment).
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

// Options scales and parameterizes the experiment runs.
type Options struct {
	// Refs is the number of references simulated per workload (the paper
	// simulates 1B instructions; the synthetic models are stationary, so
	// the default 1M references reaches steady state comfortably).
	Refs uint64
	// TLBEntries/TLBWays give the TLB geometry (paper default: 128-entry
	// fully associative; TLBWays 0 means fully associative).
	TLBEntries int
	TLBWays    int
	// Buffer is the prefetch buffer size b (paper default 16).
	Buffer int
	// PageShift is log2(page size) (paper default 12).
	PageShift uint
	// Slots is s, the predictions per row for MP/DP (paper default 2).
	Slots int
	// WarmupRefs references are simulated before the counters are reset,
	// mirroring the paper's 2-billion-instruction fast-forward: mechanisms
	// and TLB state stay warm, only the statistics restart. 0 disables.
	WarmupRefs uint64
}

// DefaultOptions returns the paper's baseline configuration at the default
// simulation scale.
func DefaultOptions() Options {
	return Options{
		Refs:       1_000_000,
		TLBEntries: 128,
		TLBWays:    0,
		Buffer:     16,
		PageShift:  12,
		Slots:      2,
	}
}

func (o Options) simConfig() sim.Config {
	return sim.Config{
		TLB:           tlb.Config{Entries: o.TLBEntries, Ways: o.TLBWays},
		BufferEntries: o.Buffer,
		PageShift:     o.PageShift,
	}
}

// MechConfig names one mechanism configuration (a bar in the paper's
// figures).
type MechConfig struct {
	// Kind is one of "RP", "RP3", "MP", "DP", "ASP", "SP", "SP-A",
	// "DP-PC", "DP2".
	Kind string
	// Rows (r) and Ways apply to the table-based mechanisms; Ways 0 means
	// direct-mapped for ASP/MP/DP table sweeps is expressed as Ways 1, and
	// Ways == Rows as fully associative.
	Rows, Ways int
	// Slots is s for MP/DP-family mechanisms (0 = use Options.Slots).
	Slots int
}

// Label renders the paper's figure-legend naming, e.g. "DP,256,D".
func (m MechConfig) Label() string {
	switch m.Kind {
	case "RP", "RP3", "SP", "SP-A":
		return m.Kind
	}
	assoc := "D"
	switch {
	case m.Ways == m.Rows:
		assoc = "F"
	case m.Ways > 1:
		assoc = fmt.Sprintf("%d", m.Ways)
	}
	return fmt.Sprintf("%s,%d,%s", m.Kind, m.Rows, assoc)
}

// Build instantiates the mechanism.
func (m MechConfig) Build(opts Options) prefetch.Prefetcher {
	ways := m.Ways
	if ways == 0 {
		ways = 1
	}
	slots := m.Slots
	if slots == 0 {
		slots = opts.Slots
	}
	switch m.Kind {
	case "RP":
		return prefetch.NewRecency()
	case "RP3":
		return prefetch.NewRecencyDegree(3)
	case "SP":
		return prefetch.NewSequential(true)
	case "SP-A":
		return prefetch.NewAdaptiveSequential()
	case "ASP":
		return prefetch.NewASP(m.Rows, ways)
	case "MP":
		return prefetch.NewMarkov(m.Rows, ways, slots)
	case "DP":
		return core.NewDistance(m.Rows, ways, slots)
	case "DP-PC":
		return core.NewDistancePC(m.Rows, ways, slots)
	case "DP2":
		return core.NewDistance2(m.Rows, ways, slots)
	}
	panic(fmt.Sprintf("experiments: unknown mechanism kind %q", m.Kind))
}

// AppResult is one application's row of a figure: the miss rate (of the
// unmodified TLB) plus accuracy per mechanism configuration.
type AppResult struct {
	App      string
	Suite    string
	MissRate float64
	Labels   []string
	Acc      []float64
	Stats    []sim.Stats
}

// Get returns the accuracy for a label (0, false if absent).
func (r AppResult) Get(label string) (float64, bool) {
	for i, l := range r.Labels {
		if l == label {
			return r.Acc[i], true
		}
	}
	return 0, false
}

// RunApp evaluates every mechanism configuration against one workload in a
// single pass over its (regenerated) reference stream.
func RunApp(w workload.Workload, opts Options, mechs []MechConfig) AppResult {
	g := sim.NewGroup()
	for _, m := range mechs {
		g.Add(sim.New(opts.simConfig(), m.Build(opts)))
	}
	total := opts.WarmupRefs + opts.Refs
	var seen uint64
	workload.Generate(w, total, func(pc, vaddr uint64) bool {
		g.Ref(pc, vaddr)
		seen++
		if seen == opts.WarmupRefs {
			for _, s := range g.Members() {
				s.ResetStats()
			}
		}
		return true
	})
	res := AppResult{App: w.Name, Suite: w.Suite}
	for i, s := range g.Members() {
		st := s.Stats()
		res.Labels = append(res.Labels, mechs[i].Label())
		res.Acc = append(res.Acc, st.Accuracy())
		res.Stats = append(res.Stats, st)
		if i == 0 {
			res.MissRate = st.MissRate()
		}
	}
	return res
}

// RunSuite evaluates a list of workloads, one goroutine per workload (the
// runs are independent: each regenerates its own stream and owns its own
// simulators), bounded by GOMAXPROCS. Results keep the input order and are
// bit-identical to a serial run.
func RunSuite(ws []workload.Workload, opts Options, mechs []MechConfig) []AppResult {
	out := make([]AppResult, len(ws))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = RunApp(w, opts, mechs)
		}(i, w)
	}
	wg.Wait()
	return out
}
