// Package experiments regenerates every table and figure of the paper's
// evaluation (§3), plus the extension studies in ext.go and the
// design-space studies that go beyond the published tables (table3-lat,
// table3-space). It is shared by cmd/experiments (human-readable output)
// and bench_test.go (one testing.B benchmark per experiment); the figure
// experiments also render as report.Figure values (report.go in this
// package) for cmd/experiments -figure.
package experiments

import (
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

// Options scales and parameterizes the experiment runs.
type Options struct {
	// Refs is the number of references simulated per workload (the paper
	// simulates 1B instructions; the synthetic models are stationary, so
	// the default 1M references reaches steady state comfortably).
	Refs uint64
	// TLBEntries/TLBWays give the TLB geometry (paper default: 128-entry
	// fully associative; TLBWays 0 means fully associative).
	TLBEntries int
	TLBWays    int
	// Buffer is the prefetch buffer size b (paper default 16).
	Buffer int
	// PageShift is log2(page size) (paper default 12).
	PageShift uint
	// Slots is s, the predictions per row for MP/DP (paper default 2).
	Slots int
	// WarmupRefs references are simulated before the counters are reset,
	// mirroring the paper's 2-billion-instruction fast-forward: mechanisms
	// and TLB state stay warm, only the statistics restart. 0 disables.
	WarmupRefs uint64
	// Store, when non-nil, is the sweep result cache every experiment
	// reads from and writes to: cells already present (from an earlier
	// experiment or a previous run) are not re-simulated.
	Store *sweep.Store
	// Tally, when non-nil, accumulates how the experiments' sweep cells
	// were satisfied (cached vs freshly simulated) across every grid the
	// run declares — the cache-behaviour evidence cmd/experiments prints
	// and the docs smoke asserts.
	Tally *sweep.Summary
}

// DefaultOptions returns the paper's baseline configuration at the default
// simulation scale.
func DefaultOptions() Options {
	return Options{
		Refs:       1_000_000,
		TLBEntries: 128,
		TLBWays:    0,
		Buffer:     16,
		PageShift:  12,
		Slots:      2,
	}
}

func (o Options) simConfig() sim.Config {
	return sim.Config{
		TLB:           tlb.Config{Entries: o.TLBEntries, Ways: o.TLBWays},
		BufferEntries: o.Buffer,
		PageShift:     o.PageShift,
	}
}

// MechConfig names one mechanism configuration (a bar in the paper's
// figures).
type MechConfig struct {
	// Kind is one of "RP", "RP3", "MP", "DP", "ASP", "SP", "SP-A",
	// "DP-PC", "DP2", "STMS", "MASP", "SBFP".
	Kind string
	// Rows (r) and Ways apply to the table-based mechanisms; Ways 0 means
	// direct-mapped for ASP/MP/DP table sweeps is expressed as Ways 1, and
	// Ways == Rows as fully associative.
	Rows, Ways int
	// Slots is s for MP/DP-family mechanisms (0 = use Options.Slots).
	Slots int
}

// sweepMech resolves the harness-level defaults (Slots from Options) into
// the fully-specified mechanism the sweep engine content-addresses.
func (m MechConfig) sweepMech(opts Options) sweep.Mech {
	slots := m.Slots
	if slots == 0 {
		slots = opts.Slots
	}
	return sweep.Mech{Kind: m.Kind, Rows: m.Rows, Ways: m.Ways, Slots: slots}.Normalize()
}

// Label renders the paper's figure-legend naming, e.g. "DP,256,D".
func (m MechConfig) Label() string {
	return sweep.Mech{Kind: m.Kind, Rows: m.Rows, Ways: m.Ways}.Label()
}

// Build instantiates the mechanism.
func (m MechConfig) Build(opts Options) prefetch.Prefetcher {
	return m.sweepMech(opts).Build()
}

// AppResult is one application's row of a figure: the miss rate (of the
// unmodified TLB) plus accuracy per mechanism configuration.
type AppResult struct {
	App      string
	Suite    string
	MissRate float64
	Labels   []string
	Acc      []float64
	Stats    []sim.Stats
}

// Get returns the accuracy for a label (0, false if absent).
func (r AppResult) Get(label string) (float64, bool) {
	for i, l := range r.Labels {
		if l == label {
			return r.Acc[i], true
		}
	}
	return 0, false
}

// RunApp evaluates every mechanism configuration against one workload in a
// single pass over its (regenerated) reference stream.
func RunApp(w workload.Workload, opts Options, mechs []MechConfig) AppResult {
	return RunSuite([]workload.Workload{w}, opts, mechs)[0]
}

// RunSuite evaluates a list of workloads by declaring the workload ×
// mechanism grid to the sweep engine: geometry-identical cells of one
// workload coalesce onto a shared sim.Group frontend, shards run across
// GOMAXPROCS workers, and — when Options.Store is set — cells already in
// the store are not re-simulated. Results keep the input order and are
// bit-identical to a serial run.
func RunSuite(ws []workload.Workload, opts Options, mechs []MechConfig) []AppResult {
	jobs := make([]sweep.Job, 0, len(ws)*len(mechs))
	for _, w := range ws {
		for _, m := range mechs {
			jobs = append(jobs, sweep.Job{
				Source: sweep.WorkloadSource(w.Name),
				Mech:   m.sweepMech(opts),
				Config: opts.simConfig(),
				Refs:   opts.Refs,
				Warmup: opts.WarmupRefs,
			})
		}
	}
	results := runJobs(ws, opts, jobs)
	out := make([]AppResult, len(ws))
	for i, w := range ws {
		res := AppResult{App: w.Name, Suite: w.Suite}
		for j, m := range mechs {
			st := results[i*len(mechs)+j].Stats
			res.Labels = append(res.Labels, m.Label())
			res.Acc = append(res.Acc, st.Accuracy())
			res.Stats = append(res.Stats, st)
			if j == 0 {
				res.MissRate = st.MissRate()
			}
		}
		out[i] = res
	}
	return out
}

// runJobs executes sweep jobs with the harness conventions: workloads
// resolve from the slice the experiment was handed (so unregistered models
// work too), the store comes from Options, and failures — impossible for
// well-formed experiment declarations — panic, as the bespoke loops did.
func runJobs(ws []workload.Workload, opts Options, jobs []sweep.Job) []sweep.Result {
	byName := make(map[string]workload.Workload, len(ws))
	for _, w := range ws {
		byName[w.Name] = w
	}
	r := sweep.Runner{
		Store: opts.Store,
		Resolve: func(name string) (workload.Workload, bool) {
			if w, ok := byName[name]; ok {
				return w, true
			}
			return workload.ByName(name)
		},
	}
	results, sum, err := r.Run(jobs)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	if opts.Tally != nil {
		opts.Tally.Total += sum.Total
		opts.Tally.Cached += sum.Cached
		opts.Tally.Ran += sum.Ran
		opts.Tally.Shards += sum.Shards
	}
	return results
}
