package experiments

import (
	"testing"

	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

// TestOnlyTheEightHotApps guards the paper's application-selection fact:
// "we specifically focus on 8 applications ... which have the highest TLB
// miss rates ... amongst all these applications", ammp being the coolest of
// the eight at 0.0113. Every other model must stay below ammp's band floor,
// or the Table 2 weighting (and the whole Table 3 story) silently shifts.
func TestOnlyTheEightHotApps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 56 workloads")
	}
	hot := map[string]bool{}
	for _, name := range Fig9AppNames() {
		hot[name] = true
	}
	const ceiling = 0.0115 // just above ammp's published 0.0113
	for _, w := range workload.All() {
		s := sim.New(sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}, nil)
		var warm uint64
		workload.Generate(w, 900_000, func(pc, vaddr uint64) bool {
			s.Ref(pc, vaddr)
			warm++
			if warm == 500_000 {
				s.ResetStats()
			}
			return true
		})
		mr := s.Stats().MissRate()
		if hot[w.Name] {
			if mr < 0.007 {
				t.Errorf("%s is one of the paper's eight hottest apps but measured only %.4f", w.Name, mr)
			}
			continue
		}
		if mr > ceiling {
			t.Errorf("%s miss rate %.4f exceeds ammp's %.4f but is not in the paper's top eight",
				w.Name, mr, ceiling)
		}
	}
}

// TestAllWorkloadsNonDegenerate: every model must produce a live miss
// stream (mechanisms need something to predict) with a footprint that
// matches its design — hot-set apps excepted, which is the point of them.
func TestAllWorkloadsNonDegenerate(t *testing.T) {
	for _, w := range workload.All() {
		s := sim.New(sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}, nil)
		workload.Generate(w, 200_000, func(pc, vaddr uint64) bool {
			s.Ref(pc, vaddr)
			return true
		})
		st := s.Stats()
		if st.Refs != 200_000 {
			t.Errorf("%s generated %d refs, want 200000", w.Name, st.Refs)
		}
		if st.Misses == 0 {
			t.Errorf("%s produced no TLB misses at all", w.Name)
		}
	}
}
