package experiments

import (
	"fmt"
	"strings"

	"tlbprefetch/internal/stats"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/workload"
)

// Fig7Configs returns the mechanism configurations of Figures 7 and 8: RP;
// MP with r in {256,512,1024} and D/4/2/F indexing (the subset the paper
// plots); DP direct-mapped with r in {32..1024}; ASP with r in {32..1024}.
func Fig7Configs() []MechConfig {
	cfgs := []MechConfig{{Kind: "RP"}}
	cfgs = append(cfgs,
		MechConfig{Kind: "MP", Rows: 1024, Ways: 1},
		MechConfig{Kind: "MP", Rows: 1024, Ways: 4},
		MechConfig{Kind: "MP", Rows: 1024, Ways: 2},
		MechConfig{Kind: "MP", Rows: 512, Ways: 1},
		MechConfig{Kind: "MP", Rows: 512, Ways: 4},
		MechConfig{Kind: "MP", Rows: 256, Ways: 1},
		MechConfig{Kind: "MP", Rows: 256, Ways: 4},
		MechConfig{Kind: "MP", Rows: 256, Ways: 256},
	)
	for _, r := range []int{1024, 512, 256, 128, 64, 32} {
		cfgs = append(cfgs, MechConfig{Kind: "DP", Rows: r, Ways: 1})
	}
	for _, r := range []int{1024, 512, 256, 128, 64, 32} {
		cfgs = append(cfgs, MechConfig{Kind: "ASP", Rows: r, Ways: 1})
	}
	return cfgs
}

// Fig7 reproduces Figure 7: prediction accuracy of all mechanisms for the
// 26 SPEC CPU2000 applications.
func Fig7(opts Options) []AppResult {
	return RunSuite(workload.Suite("SPEC"), opts, Fig7Configs())
}

// Fig8 reproduces Figure 8: the same comparison for MediaBench, Etch and
// the Pointer-Intensive suite.
func Fig8(opts Options) []AppResult {
	ws := append([]workload.Workload{}, workload.Suite("MediaBench")...)
	ws = append(ws, workload.Suite("Etch")...)
	ws = append(ws, workload.Suite("PointerIntensive")...)
	return RunSuite(ws, opts, Fig7Configs())
}

// FormatFigure renders per-app accuracy bars as an aligned text table.
func FormatFigure(results []AppResult) string {
	if len(results) == 0 {
		return ""
	}
	header := append([]string{"app", "missrate"}, results[0].Labels...)
	t := stats.NewTable(header...)
	for _, r := range results {
		row := []string{r.App, stats.F(r.MissRate)}
		for _, a := range r.Acc {
			row = append(row, stats.F(a))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Fig9AppNames lists the eight applications with the highest d-TLB miss
// rates, which the paper's sensitivity analysis (Figure 9) and Table 3 use.
func Fig9AppNames() []string {
	return []string{"vpr", "mcf", "twolf", "galgel", "ammp", "lucas", "apsi", "adpcm-enc"}
}

func fig9Workloads() []workload.Workload {
	var out []workload.Workload
	for _, name := range Fig9AppNames() {
		w, ok := workload.ByName(name)
		if !ok {
			panic("experiments: missing fig9 workload " + name)
		}
		out = append(out, w)
	}
	return out
}

// Fig9 holds the four sensitivity panels of Figure 9.
type Fig9Result struct {
	TableGeometry []AppResult // panel a: DP vs r and associativity
	SlotCount     []AppResult // panel b: DP vs s in {2,4,6}
	BufferSize    []AppResult // panel c: DP vs b in {16,32,64}
	TLBSize       []AppResult // panel d: DP vs TLB entries in {64,128,256}
}

// Fig9 reproduces the DP sensitivity analysis of Figure 9.
func Fig9(opts Options) Fig9Result {
	apps := fig9Workloads()
	var res Fig9Result

	// Panel a: table size and associativity (the paper's bar set).
	var geom []MechConfig
	for _, rc := range []struct{ r, w int }{
		{1024, 1}, {1024, 4}, {1024, 2},
		{512, 1}, {512, 4},
		{256, 1}, {256, 4}, {256, 256},
		{128, 1}, {128, 128},
		{64, 1}, {64, 64},
		{32, 1}, {32, 32},
	} {
		geom = append(geom, MechConfig{Kind: "DP", Rows: rc.r, Ways: rc.w})
	}
	res.TableGeometry = RunSuite(apps, opts, geom)

	// Panel b: prediction slots per row.
	var slotCfg []MechConfig
	for _, s := range []int{2, 4, 6} {
		slotCfg = append(slotCfg, MechConfig{Kind: "DP", Rows: 256, Ways: 1, Slots: s})
	}
	slotRes := RunSuite(apps, opts, slotCfg)
	for i := range slotRes {
		for j, s := range []int{2, 4, 6} {
			slotRes[i].Labels[j] = fmt.Sprintf("s=%d", s)
		}
	}
	res.SlotCount = slotRes

	// Panel c: prefetch buffer size (simulator-level variation, so each
	// variant is its own fan-out member over the shared stream).
	res.BufferSize = runPanelVaryingSim(apps, opts, []panelVariant{
		{label: "b=16", mutate: func(o *Options) { o.Buffer = 16 }},
		{label: "b=32", mutate: func(o *Options) { o.Buffer = 32 }},
		{label: "b=64", mutate: func(o *Options) { o.Buffer = 64 }},
	})

	// Panel d: TLB size.
	res.TLBSize = runPanelVaryingSim(apps, opts, []panelVariant{
		{label: "tlb=64", mutate: func(o *Options) { o.TLBEntries = 64 }},
		{label: "tlb=128", mutate: func(o *Options) { o.TLBEntries = 128 }},
		{label: "tlb=256", mutate: func(o *Options) { o.TLBEntries = 256 }},
	})
	return res
}

type panelVariant struct {
	label  string
	mutate func(*Options)
}

// runPanelVaryingSim evaluates DP,256,D under simulator-level variations
// (buffer size, TLB size), declared as a workload × variant grid. Variants
// that keep the TLB geometry (the buffer panel) coalesce onto one shared
// frontend per workload; the rest shard into independent cells — exactly
// the fan-out the bespoke loop used to wire by hand.
func runPanelVaryingSim(apps []workload.Workload, opts Options, variants []panelVariant) []AppResult {
	dp := MechConfig{Kind: "DP", Rows: 256, Ways: 1}
	jobs := make([]sweep.Job, 0, len(apps)*len(variants))
	for _, w := range apps {
		for _, v := range variants {
			o := opts
			v.mutate(&o)
			jobs = append(jobs, sweep.Job{
				Source: sweep.WorkloadSource(w.Name),
				Mech:   dp.sweepMech(o),
				Config: o.simConfig(),
				Refs:   opts.Refs,
			})
		}
	}
	results := runJobs(apps, opts, jobs)
	var out []AppResult
	for i, w := range apps {
		res := AppResult{App: w.Name, Suite: w.Suite}
		for j, v := range variants {
			st := results[i*len(variants)+j].Stats
			res.Labels = append(res.Labels, v.label)
			res.Acc = append(res.Acc, st.Accuracy())
			res.Stats = append(res.Stats, st)
			if j == 0 {
				res.MissRate = st.MissRate()
			}
		}
		out = append(out, res)
	}
	return out
}

// FormatFig9 renders the four panels.
func FormatFig9(r Fig9Result) string {
	var b strings.Builder
	b.WriteString("Figure 9a: DP prediction accuracy vs table size/associativity\n")
	b.WriteString(FormatFigure(r.TableGeometry))
	b.WriteString("\nFigure 9b: DP vs prediction slots per row (r=256, direct-mapped)\n")
	b.WriteString(FormatFigure(r.SlotCount))
	b.WriteString("\nFigure 9c: DP vs prefetch buffer size\n")
	b.WriteString(FormatFigure(r.BufferSize))
	b.WriteString("\nFigure 9d: DP vs TLB size\n")
	b.WriteString(FormatFigure(r.TLBSize))
	return b.String()
}
