package experiments

import (
	"strings"
	"testing"

	"tlbprefetch/internal/workload"
)

// shapeOpts runs long enough for history mechanisms to warm up but keeps
// the suite fast.
func shapeOpts() Options {
	o := DefaultOptions()
	o.Refs = 500_000
	return o
}

// headline returns accuracies for the four Table 2 mechanisms at the
// paper's operating point (r=256, direct-mapped, s=2).
func headline(t *testing.T, app string) (dp, rp, asp, mp float64, missRate float64) {
	t.Helper()
	w, ok := workload.ByName(app)
	if !ok {
		t.Fatalf("missing workload %q", app)
	}
	res := RunApp(w, shapeOpts(), []MechConfig{
		{Kind: "DP", Rows: 256, Ways: 1},
		{Kind: "RP"},
		{Kind: "ASP", Rows: 256, Ways: 1},
		{Kind: "MP", Rows: 256, Ways: 1},
	})
	return res.Acc[0], res.Acc[1], res.Acc[2], res.Acc[3], res.MissRate
}

func TestShapeFirstTouchStrided(t *testing.T) {
	// gzip group: "ASP captures many of the first time reference
	// predictions that history based mechanisms are not very well suited
	// to" — ASP and DP well ahead of RP and MP.
	dp, rp, asp, mp, _ := headline(t, "gzip")
	if asp < 0.4 || dp < 0.4 {
		t.Errorf("gzip: strided predictors too weak (DP %.2f ASP %.2f)", dp, asp)
	}
	if rp > 0.3 || mp > 0.3 {
		t.Errorf("gzip: history predictors should have little to replay (RP %.2f MP %.2f)", rp, mp)
	}
}

func TestShapeHistoryWins(t *testing.T) {
	// crafty: "accesses are not strided enough for ASP ... historical
	// indications can give a much better perspective ... for RP and MP."
	dp, rp, asp, _, _ := headline(t, "crafty")
	if rp < 0.6 {
		t.Errorf("crafty: RP = %.2f, want history to win", rp)
	}
	if asp > 0.1 {
		t.Errorf("crafty: ASP = %.2f, want near zero (unstrided)", asp)
	}
	if dp >= rp {
		t.Errorf("crafty: DP %.2f should trail RP %.2f here", dp, rp)
	}
}

func TestShapeStencilDPWellAhead(t *testing.T) {
	// swim: "DP does much better than the others". The stencil models have
	// long outer iterations (~260k refs), so measure steady state after a
	// warmup pass, like the paper's fast-forward.
	w, _ := workload.ByName("swim")
	opts := shapeOpts()
	opts.WarmupRefs = 600_000
	res := RunApp(w, opts, []MechConfig{
		{Kind: "DP", Rows: 256, Ways: 1},
		{Kind: "RP"},
		{Kind: "ASP", Rows: 256, Ways: 1},
		{Kind: "MP", Rows: 256, Ways: 1},
	})
	dp, rp, asp, mp := res.Acc[0], res.Acc[1], res.Acc[2], res.Acc[3]
	if dp < 0.7 {
		t.Errorf("swim: DP = %.2f, want > 0.7", dp)
	}
	if dp < rp+0.15 || dp < asp+0.1 || dp < mp+0.3 {
		t.Errorf("swim: DP %.2f must be well ahead of RP %.2f, ASP %.2f, MP %.2f", dp, rp, asp, mp)
	}
}

func TestShapeDPOnlyCodecs(t *testing.T) {
	// gsm-enc: "DP is the only mechanism which makes any noticeable
	// predictions (even if the accuracy does not exceed 20%)".
	dp, rp, asp, mp, _ := headline(t, "gsm-enc")
	if dp < 0.05 || dp > 0.45 {
		t.Errorf("gsm-enc: DP = %.2f, want noticeable but modest", dp)
	}
	for name, v := range map[string]float64{"RP": rp, "ASP": asp, "MP": mp} {
		if v > 0.05 {
			t.Errorf("gsm-enc: %s = %.2f, want ~0", name, v)
		}
	}
}

func TestShapeNothingWorks(t *testing.T) {
	dp, rp, asp, mp, _ := headline(t, "fma3d")
	for name, v := range map[string]float64{"DP": dp, "RP": rp, "ASP": asp, "MP": mp} {
		if v > 0.05 {
			t.Errorf("fma3d: %s = %.2f, want ~0 (unstructured random walk)", name, v)
		}
	}
}

func TestShapeFewMisses(t *testing.T) {
	_, _, _, _, mr := headline(t, "eon")
	if mr > 0.003 {
		t.Errorf("eon miss rate = %.4f, want almost none", mr)
	}
}

func TestShapeRPBeatsDPOnTable3Apps(t *testing.T) {
	// "RP provides better accuracy than DP for 5 applications - vpr, mcf,
	// twolf, ammp and lucas."
	for _, app := range Table3AppNames() {
		dp, rp, _, _, _ := headline(t, app)
		if rp <= dp {
			t.Errorf("%s: RP %.3f should beat DP %.3f on accuracy", app, rp, dp)
		}
		if dp < 0.3 {
			t.Errorf("%s: DP %.3f should still be substantial", app, dp)
		}
	}
}

func TestShapeAlternationMPBeatsRP(t *testing.T) {
	// parser/vortex: "MP does better than even RP" (with enough rows).
	for _, app := range []string{"parser", "vortex"} {
		w, _ := workload.ByName(app)
		res := RunApp(w, shapeOpts(), []MechConfig{
			{Kind: "MP", Rows: 1024, Ways: 1},
			{Kind: "RP"},
		})
		if res.Acc[0] <= res.Acc[1] {
			t.Errorf("%s: MP,1024 %.3f should beat RP %.3f", app, res.Acc[0], res.Acc[1])
		}
	}
}

func TestShapeMPStarvedAtSmallTables(t *testing.T) {
	// galgel/art/mesa: "MP performs poorly with small r. Since these are
	// quite large data sets, keeping the history for all the references
	// needs considerably more space."
	for _, app := range []string{"galgel", "art", "mesa"} {
		w, _ := workload.ByName(app)
		res := RunApp(w, shapeOpts(), []MechConfig{{Kind: "MP", Rows: 256, Ways: 1}})
		if res.Acc[0] > 0.2 {
			t.Errorf("%s: MP,256 = %.3f, want starved (< 0.2)", app, res.Acc[0])
		}
	}
}

func TestShapeMissRateBands(t *testing.T) {
	// The paper's eight highest-miss-rate applications (§3.2) with their
	// published rates; the models must land within loose bands, and the
	// qualitative ordering (galgel and adpcm far above the rest) must hold.
	bands := map[string][2]float64{
		"galgel":    {0.17, 0.29},   // paper 0.228
		"adpcm-enc": {0.14, 0.24},   // paper 0.192
		"mcf":       {0.07, 0.11},   // paper 0.090
		"apsi":      {0.012, 0.026}, // paper 0.018
		"vpr":       {0.011, 0.023}, // paper 0.016
		"lucas":     {0.011, 0.023}, // paper 0.016
		"twolf":     {0.009, 0.019}, // paper 0.013
		"ammp":      {0.007, 0.016}, // paper 0.0113
	}
	for app, band := range bands {
		_, _, _, _, mr := headline(t, app)
		if mr < band[0] || mr > band[1] {
			t.Errorf("%s miss rate %.4f outside band [%.3f, %.3f]", app, mr, band[0], band[1])
		}
	}
}

func TestTable2Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 runs all 56 workloads")
	}
	opts := DefaultOptions()
	opts.Refs = 400_000
	res := Table2(opts)
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Mechanism] = r
	}
	// Paper Table 2 orderings: DP best plain average, MP worst; weighted
	// averages put DP and RP on top (nearly tied) with ASP behind and MP
	// collapsed.
	if !(byName["DP"].Average > byName["RP"].Average &&
		byName["RP"].Average > byName["MP"].Average &&
		byName["ASP"].Average > byName["MP"].Average) {
		t.Errorf("plain average ordering broken: %+v", summary(res))
	}
	if !(byName["DP"].WeightedAvg > byName["ASP"].WeightedAvg &&
		byName["RP"].WeightedAvg > byName["ASP"].WeightedAvg &&
		byName["ASP"].WeightedAvg > byName["MP"].WeightedAvg) {
		t.Errorf("weighted average ordering broken: %+v", summary(res))
	}
	if byName["MP"].WeightedAvg > 0.15 {
		t.Errorf("MP weighted average %.3f, paper reports collapse (0.04)", byName["MP"].WeightedAvg)
	}
	if len(byName["DP"].PerApp) != 56 {
		t.Errorf("table 2 covered %d apps, want 56", len(byName["DP"].PerApp))
	}
}

func summary(r Table2Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		b.WriteString(row.Mechanism + ": ")
		b.WriteString(strings.TrimSpace(FormatTable2(r)))
		break
	}
	return b.String()
}

func TestTable3DPAlwaysWinsCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("timing runs")
	}
	opts := DefaultOptions()
	opts.Refs = 400_000
	rows := Table3(opts)
	if len(rows) != 5 {
		t.Fatalf("table 3 rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's conclusion: "DP still comes out in front when
		// considering execution cycles" on every one of these apps.
		if r.DPNormalized >= r.RPNormalized {
			t.Errorf("%s: DP %.3f should beat RP %.3f", r.App, r.DPNormalized, r.RPNormalized)
		}
		if r.DPNormalized >= 1.0 {
			t.Errorf("%s: DP %.3f should beat no-prefetching", r.App, r.DPNormalized)
		}
		// RP's traffic: "RP generates much more memory traffic ranging
		// from anywhere between 2-3 times that for DP" (at least 2x here).
		if r.RPStats.MemOps() < 2*r.DPStats.MemOps() {
			t.Errorf("%s: RP memops %d not >= 2x DP %d", r.App, r.RPStats.MemOps(), r.DPStats.MemOps())
		}
	}
	// mcf: RP slower than no prefetching (paper: 1.09).
	for _, r := range rows {
		if r.App == "mcf" && r.RPNormalized <= 1.0 {
			t.Errorf("mcf: RP %.3f, paper reports a slowdown (1.09)", r.RPNormalized)
		}
	}
}

func TestFig9Insensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep")
	}
	opts := DefaultOptions()
	opts.Refs = 300_000
	res := Fig9(opts)
	// Panel a: "even a small direct-mapped 32-256 entry table suffices" —
	// DP,256,D within 0.1 of DP,1024,D for every app.
	for _, app := range res.TableGeometry {
		big, _ := app.Get("DP,1024,D")
		mid, _ := app.Get("DP,256,D")
		if big-mid > 0.1 {
			t.Errorf("%s: DP,256 %.3f much worse than DP,1024 %.3f", app.App, mid, big)
		}
	}
	// Panel b/c/d: growing s, b or the TLB never hurts much.
	for _, app := range res.SlotCount {
		if app.Acc[0] > app.Acc[2]+0.1 {
			t.Errorf("%s: accuracy dropped sharply with more slots: %v", app.App, app.Acc)
		}
	}
	for _, app := range res.BufferSize {
		if app.Acc[0] > app.Acc[2]+0.05 {
			t.Errorf("%s: bigger buffer hurt: %v", app.App, app.Acc)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1(DefaultOptions())
	for _, want := range []string{"ASP", "MP", "RP", "DP", "distance", "in memory", "PC"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestMechConfigLabels(t *testing.T) {
	cases := []struct {
		m    MechConfig
		want string
	}{
		{MechConfig{Kind: "RP"}, "RP"},
		{MechConfig{Kind: "DP", Rows: 256, Ways: 1}, "DP,256,D"},
		{MechConfig{Kind: "DP", Rows: 256, Ways: 4}, "DP,256,4"},
		{MechConfig{Kind: "MP", Rows: 256, Ways: 256}, "MP,256,F"},
	}
	for _, c := range cases {
		if got := c.m.Label(); got != c.want {
			t.Errorf("label = %q, want %q", got, c.want)
		}
	}
}

func TestFig7ConfigsMatchPaperLegend(t *testing.T) {
	cfgs := Fig7Configs()
	// RP + 8 MP bars + 6 DP bars + 6 ASP bars.
	if len(cfgs) != 21 {
		t.Fatalf("fig7 has %d bars, want 21", len(cfgs))
	}
	if cfgs[0].Kind != "RP" {
		t.Fatal("first bar must be RP (left-most in the paper's figures)")
	}
}

func TestRunAppSharedMissStream(t *testing.T) {
	w, _ := workload.ByName("gap")
	opts := DefaultOptions()
	opts.Refs = 100_000
	res := RunApp(w, opts, []MechConfig{{Kind: "DP", Rows: 256, Ways: 1}, {Kind: "RP"}})
	if res.Stats[0].Misses != res.Stats[1].Misses {
		t.Fatalf("fan-out members saw different miss streams: %d vs %d",
			res.Stats[0].Misses, res.Stats[1].Misses)
	}
	if res.MissRate <= 0 {
		t.Fatal("no misses recorded")
	}
}

func TestExtDPVariantsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("variant sweep")
	}
	opts := DefaultOptions()
	opts.Refs = 200_000
	res := ExtDPVariants(opts)
	if len(res) != 8 {
		t.Fatalf("variant rows = %d", len(res))
	}
	for _, r := range res {
		if len(r.Acc) != 6 {
			t.Fatalf("%s: %d accuracies", r.App, len(r.Acc))
		}
	}
}

func TestExtCacheShape(t *testing.T) {
	opts := DefaultOptions()
	opts.Refs = 400_000
	rows := ExtCache(opts)
	if len(rows) != 3 {
		t.Fatalf("cache rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Workload {
		case "cache-seq":
			if r.DP < 0.9 || r.SP < 0.9 {
				t.Errorf("cache-seq: sequential must be easy (DP %.2f SP %.2f)", r.DP, r.SP)
			}
		case "cache-motif":
			if r.DP < 0.8 || r.ASP > 0.2 {
				t.Errorf("cache-motif: DP %.2f should own the motif (ASP %.2f)", r.DP, r.ASP)
			}
		case "cache-chase":
			if r.DP > 0.2 {
				t.Errorf("cache-chase: DP %.2f should fail on a full shuffle", r.DP)
			}
		}
	}
}

func TestExtMultiprogPolicies(t *testing.T) {
	opts := DefaultOptions()
	opts.Refs = 300_000
	rows := ExtMultiprog(opts)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At every quantum: per-process >= flush (small tolerance), and the
	// flush penalty shrinks as the quantum grows. Coverage (buffer hits /
	// misses) is the paper's metric.
	byQ := map[uint64]map[string]float64{}
	for _, r := range rows {
		if byQ[r.Quantum] == nil {
			byQ[r.Quantum] = map[string]float64{}
		}
		byQ[r.Quantum][r.Policy] = r.Coverage
	}
	for q, m := range byQ {
		if m["flush"] > m["per-process"]+0.02 {
			t.Errorf("quantum %d: flush %.3f beats per-process %.3f", q, m["flush"], m["per-process"])
		}
	}
	if byQ[5000]["flush"] > byQ[100000]["flush"] {
		t.Errorf("flush penalty should shrink with quantum: %.3f vs %.3f",
			byQ[5000]["flush"], byQ[100000]["flush"])
	}
}

func TestExtPageSizeStability(t *testing.T) {
	if testing.Short() {
		t.Skip("page size sweep")
	}
	opts := DefaultOptions()
	opts.Refs = 300_000
	rows := ExtPageSize(opts)
	for _, r := range rows {
		// "DP is able to make good predictions across different TLB
		// configurations and page sizes": no collapse at larger pages.
		if r.Acc8K < r.Acc4K-0.15 || r.Acc16K < r.Acc4K-0.2 {
			t.Errorf("%s: DP collapsed with page size: 4K %.2f 8K %.2f 16K %.2f",
				r.App, r.Acc4K, r.Acc8K, r.Acc16K)
		}
	}
}
