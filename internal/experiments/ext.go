package experiments

import (
	"fmt"

	"tlbprefetch/internal/cachesim"
	"tlbprefetch/internal/multiprog"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/report"
	"tlbprefetch/internal/stats"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/workload"
	"tlbprefetch/internal/xrand"
)

// --- Extension A: DP indexing variants -------------------------------------

// ExtDPVariants runs the paper's §4 future-work indexing variants —
// PC⊕distance and two-consecutive-distances — against plain DP on the
// eight high-miss-rate applications.
func ExtDPVariants(opts Options) []AppResult {
	mechs := []MechConfig{
		{Kind: "DP", Rows: 256, Ways: 1},
		{Kind: "DP-PC", Rows: 256, Ways: 1},
		{Kind: "DP2", Rows: 256, Ways: 1},
		{Kind: "DP", Rows: 1024, Ways: 1},
		{Kind: "DP-PC", Rows: 1024, Ways: 1},
		{Kind: "DP2", Rows: 1024, Ways: 1},
	}
	return RunSuite(fig9Workloads(), opts, mechs)
}

// FormatExtDPVariants renders the variant comparison.
func FormatExtDPVariants(results []AppResult) string {
	return FormatFigure(results)
}

// --- Extension B: DP at the cache level -------------------------------------

// ExtCacheRow is one workload's cache-level comparison.
type ExtCacheRow struct {
	Workload string
	MissRate float64
	DP       float64
	ASP      float64
	SP       float64
}

// ExtCache drives a 32 KiB / 64 B-block / 4-way cache with DP, ASP and SP
// prefetching into a 16-entry buffer, over cache-grained versions of three
// behaviour classes. Block distances play the role page distances play in
// the TLB: the mechanism is unchanged.
func ExtCache(opts Options) []ExtCacheRow {
	// Streams are written at cache-block granularity (64-byte steps), the
	// unit the cache-level DP predictor works in.
	const block = 64
	cacheWls := []workload.Workload{
		cacheWorkload("cache-seq", 0xC101, func() []workload.Phase {
			// Fresh sequential block stream with 4 touches per block.
			next := uint64(1 << 30)
			return []workload.Phase{workload.PhaseFunc(func(emit workload.EmitFunc, _ *xrand.Rand) bool {
				for i := 0; i < 4096; i++ {
					for j := 0; j < 4; j++ {
						if !emit(0x900000, next+uint64(j*8)) {
							return false
						}
					}
					next += block
				}
				return true
			})}
		}),
		cacheWorkload("cache-motif", 0xC102, func() []workload.Phase {
			// A fixed block-offset motif applied to fresh block groups —
			// the TLB-level class (d) behaviour, one level down.
			motif := []int64{0, 2, 5, 1, 4}
			next := uint64(1 << 30)
			return []workload.Phase{workload.PhaseFunc(func(emit workload.EmitFunc, _ *xrand.Rand) bool {
				for g := 0; g < 512; g++ {
					for _, d := range motif {
						addr := next + uint64(d*block)
						if !emit(0x910000, addr) {
							return false
						}
					}
					next += 6 * block
				}
				return true
			})}
		}),
		cacheWorkload("cache-chase", 0xC103, func() []workload.Phase {
			// A fixed shuffled visit order over 2048 blocks, repeated.
			var order []uint32
			return []workload.Phase{workload.PhaseFunc(func(emit workload.EmitFunc, r *xrand.Rand) bool {
				if order == nil {
					for _, v := range r.Perm(2048) {
						order = append(order, uint32(v))
					}
				}
				for _, idx := range order {
					if !emit(0x920000, 1<<30+uint64(idx)*block) {
						return false
					}
				}
				return true
			})}
		}),
	}
	var out []ExtCacheRow
	cfg := cachesim.Config{SizeBytes: 32 << 10, BlockBytes: 64, Ways: 4, BufferEntries: 16}
	for _, w := range cacheWls {
		row := ExtCacheRow{Workload: w.Name}
		for i, mk := range []func() prefetch.Prefetcher{
			func() prefetch.Prefetcher { return MechConfig{Kind: "DP", Rows: 256, Ways: 1}.Build(opts) },
			func() prefetch.Prefetcher { return MechConfig{Kind: "ASP", Rows: 256, Ways: 1}.Build(opts) },
			func() prefetch.Prefetcher { return prefetch.NewSequential(true) },
		} {
			c := cachesim.New(cfg, mk())
			workload.Generate(w, opts.Refs/4, func(pc, vaddr uint64) bool {
				c.Ref(pc, vaddr)
				return true
			})
			st := c.Stats()
			switch i {
			case 0:
				row.DP = st.Accuracy()
				row.MissRate = st.MissRate()
			case 1:
				row.ASP = st.Accuracy()
			case 2:
				row.SP = st.Accuracy()
			}
		}
		out = append(out, row)
	}
	return out
}

// cacheWorkload wraps a phase builder as a workload. The generators emit
// page-granular addresses; at cache granularity each "page" unit simply
// spans 64 blocks, which is exactly the scale shift the extension studies.
func cacheWorkload(name string, seed uint64, build func() []workload.Phase) workload.Workload {
	return workload.Workload{Name: name, Suite: "cache", Seed: seed, Build: build}
}

// FormatExtCache renders the cache-level rows.
func FormatExtCache(rows []ExtCacheRow) string {
	t := stats.NewTable("workload", "missrate", "DP", "ASP", "SP")
	for _, r := range rows {
		t.AddRow(r.Workload, stats.F(r.MissRate), stats.F(r.DP), stats.F(r.ASP), stats.F(r.SP))
	}
	return t.String()
}

// --- Extension C: multiprogramming ------------------------------------------

// ExtMultiprogRow is one (quantum, policy) cell. Coverage is buffer hits /
// TLB misses (the metric the paper calls prediction accuracy); Accuracy is
// used / issued prefetches.
type ExtMultiprogRow struct {
	Quantum  uint64
	Policy   string
	Coverage float64
	Accuracy float64
	Misses   uint64
}

// ExtMultiprog co-schedules galgel (strided) with gcc (history) and sweeps
// the context-switch quantum under the three table policies, declared as a
// mix grid to the sweep engine — so an Options.Store caches the cells like
// any other experiment, and the rows match a tlbsweep -mix galgel+gcc run
// cell for cell. Mix cells carry no warmup axis; Options.WarmupRefs is
// ignored here.
func ExtMultiprog(opts Options) []ExtMultiprogRow {
	jobs := make([]sweep.Job, 0, 9)
	for _, quantum := range []uint64{5_000, 20_000, 100_000} {
		for _, pol := range []multiprog.Policy{multiprog.Retain, multiprog.Flush, multiprog.PerProcess} {
			jobs = append(jobs, sweep.Job{
				Mix: &sweep.Mix{
					Sources: []sweep.Source{sweep.WorkloadSource("galgel"), sweep.WorkloadSource("gcc")},
					Quantum: quantum,
					Policy:  pol.String(),
					ASID:    multiprog.ASIDFlush.String(),
				},
				Mech:   MechConfig{Kind: "DP", Rows: 256, Ways: 1}.sweepMech(opts),
				Config: opts.simConfig(),
				Refs:   opts.Refs,
			})
		}
	}
	results := runJobs(nil, opts, jobs)
	out := make([]ExtMultiprogRow, len(results))
	for i, r := range results {
		st := r.Stats
		row := ExtMultiprogRow{
			Quantum:  jobs[i].Mix.Quantum,
			Policy:   jobs[i].Mix.Policy,
			Coverage: st.Accuracy(),
			Misses:   st.Misses,
		}
		if st.PrefetchesIssued > 0 {
			row.Accuracy = float64(st.PrefetchesIssued-st.PrefetchesUnused) / float64(st.PrefetchesIssued)
		}
		out[i] = row
	}
	return out
}

// FormatExtMultiprog renders the policy sweep.
func FormatExtMultiprog(rows []ExtMultiprogRow) string {
	t := stats.NewTable("quantum", "policy", "DP coverage", "accuracy", "misses")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Quantum), r.Policy,
			stats.F(r.Coverage), stats.F(r.Accuracy), fmt.Sprintf("%d", r.Misses))
	}
	return t.String()
}

// --- Extension E: TLB associativity -----------------------------------------

// ExtTLBAssoc re-runs DP,256,D on the eight high-miss applications with the
// TLB organized 2-way, 4-way and fully associative (the configurations the
// paper's §3.1 sweeps): "DP is able to make good predictions across
// different TLB configurations".
func ExtTLBAssoc(opts Options) []AppResult {
	return runPanelVaryingSim(fig9Workloads(), opts, []panelVariant{
		{label: "2-way", mutate: func(o *Options) { o.TLBWays = 2 }},
		{label: "4-way", mutate: func(o *Options) { o.TLBWays = 4 }},
		{label: "full", mutate: func(o *Options) { o.TLBWays = 0 }},
	})
}

// FormatExtTLBAssoc renders the associativity sweep.
func FormatExtTLBAssoc(rows []AppResult) string {
	return FormatFigure(rows)
}

// --- Extension D: page size --------------------------------------------------

// ExtPageSizeRow is one application's DP accuracy across page sizes.
type ExtPageSizeRow struct {
	App    string
	Acc4K  float64
	Acc8K  float64
	Acc16K float64
}

// ExtPageSize re-runs DP,256,D on the eight high-miss applications at 4, 8
// and 16 KB pages (the paper's companion TR studies page-size sensitivity;
// the published conclusion — "DP is able to make good predictions across
// different TLB configurations and page sizes" — is the shape to check).
func ExtPageSize(opts Options) []ExtPageSizeRow {
	apps := fig9Workloads()
	dp := MechConfig{Kind: "DP", Rows: 256, Ways: 1}
	shifts := []uint{12, 13, 14}
	jobs := make([]sweep.Job, 0, len(apps)*len(shifts))
	for _, w := range apps {
		for _, shift := range shifts {
			o := opts
			o.PageShift = shift
			jobs = append(jobs, sweep.Job{
				Source: sweep.WorkloadSource(w.Name),
				Mech:   dp.sweepMech(o),
				Config: o.simConfig(),
				Refs:   o.Refs,
				Warmup: o.WarmupRefs,
			})
		}
	}
	results := runJobs(apps, opts, jobs)
	var out []ExtPageSizeRow
	for i, w := range apps {
		row := ExtPageSizeRow{App: w.Name}
		row.Acc4K = results[i*len(shifts)+0].Stats.Accuracy()
		row.Acc8K = results[i*len(shifts)+1].Stats.Accuracy()
		row.Acc16K = results[i*len(shifts)+2].Stats.Accuracy()
		out = append(out, row)
	}
	return out
}

// FormatExtPageSize renders the page-size sweep.
func FormatExtPageSize(rows []ExtPageSizeRow) string {
	t := stats.NewTable("app", "4KB", "8KB", "16KB")
	for _, r := range rows {
		t.AddRow(r.App, stats.F(r.Acc4K), stats.F(r.Acc8K), stats.F(r.Acc16K))
	}
	return t.String()
}

// --- Extension F: 2002 vs modern mechanisms ---------------------------------

// extModernMechs is the head-to-head lineup: the paper's five mechanisms at
// their recommended operating points against three published successors —
// temporal memory streaming (STMS, after Wenisch et al., HPCA 2009),
// multi-stride ASP (MASP) and sampling-based free prefetching (SBFP, both
// after Vavouliotis et al., ISCA 2021) — at matching table budgets.
func extModernMechs() []MechConfig {
	return []MechConfig{
		{Kind: "SP"},
		{Kind: "ASP", Rows: 256, Ways: 1},
		{Kind: "MP", Rows: 256, Ways: 1},
		{Kind: "RP"},
		{Kind: "DP", Rows: 256, Ways: 1},
		// STMS keeps its history off-chip, so its GHB is orders of
		// magnitude larger than the on-chip tables: at 256 entries every
		// index hit is stale (miss-stream recurrence distances exceed the
		// ring) and it predicts nothing.
		{Kind: "STMS", Rows: 16384, Ways: 1},
		{Kind: "MASP", Rows: 256, Ways: 1},
		{Kind: "SBFP"},
	}
}

// ExtModern runs the 2002-vs-modern comparison on the eight
// high-miss-rate applications of Figure 9.
func ExtModern(opts Options) []AppResult {
	return RunSuite(fig9Workloads(), opts, extModernMechs())
}

// FormatExtModern renders the comparison as the standard accuracy panel.
func FormatExtModern(results []AppResult) string {
	return FormatFigure(results)
}

// ExtModernFigure arranges the comparison as a grouped-bar report figure
// (one group per application, one series per mechanism).
func ExtModernFigure(results []AppResult) *report.Figure {
	return FigureFromApps("Extension F: 2002 mechanisms vs modern successors", results)
}
