package multiprog

import (
	"errors"
	"testing"

	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// mixStreams builds per-process streams of the given lengths from distinct
// workload models.
func mixStreams(t *testing.T, lens []uint64) [][]trace.Ref {
	t.Helper()
	names := []string{"swim", "gzip", "mcf", "gap"}
	out := make([][]trace.Ref, len(lens))
	for i, n := range lens {
		w, ok := workload.ByName(names[i%len(names)])
		if !ok {
			t.Fatal("workload missing")
		}
		buf := make([]trace.Ref, 0, n)
		workload.Generate(w, n, func(pc, vaddr uint64) bool {
			buf = append(buf, trace.Ref{PC: pc, VAddr: vaddr})
			return true
		})
		out[i] = buf
	}
	return out
}

// TestStreamInterleaverMatchesSlice is the differential contract: over any
// stream shapes (unequal lengths, empty members, quantum larger than a
// stream, buffer-boundary crossings) the streaming interleaver must emit
// the exact schedule of the slice interleaver over the materialized
// streams.
func TestStreamInterleaverMatchesSlice(t *testing.T) {
	cases := []struct {
		lens    []uint64
		quantum uint64
	}{
		{[]uint64{10, 10}, 3},
		{[]uint64{100, 7, 0, 55}, 10},
		{[]uint64{1, 1, 1}, 5},
		{[]uint64{9000, 5000}, 1000},     // crosses the 4096 refill boundary
		{[]uint64{4096, 4096, 4097}, 64}, // exactly at the boundary
		{[]uint64{20, 20}, 1000},         // quantum exceeds every stream
	}
	for ci, tc := range cases {
		streams := mixStreams(t, tc.lens)
		want := NewInterleaver(streams, tc.quantum)
		srcs := make([]trace.BatchReader, len(streams))
		for i, s := range streams {
			srcs[i] = trace.NewSliceReader(s)
		}
		got := NewStreamInterleaver(srcs, tc.quantum)
		for step := 0; ; step++ {
			wp, wpc, wva, wok := want.Next()
			gp, gpc, gva, gok := got.Next()
			if wok != gok {
				t.Fatalf("case %d step %d: ok %v != %v", ci, step, gok, wok)
			}
			if !wok {
				break
			}
			if wp != gp || wpc != gpc || wva != gva {
				t.Fatalf("case %d step %d: got (%d,%#x,%#x), want (%d,%#x,%#x)",
					ci, step, gp, gpc, gva, wp, wpc, wva)
			}
		}
		if err := got.Err(); err != nil {
			t.Fatalf("case %d: unexpected stream error %v", ci, err)
		}
	}
}

// errAfter yields n refs then a non-EOF error.
type errAfter struct {
	n   int
	err error
}

func (e *errAfter) ReadBatch(dst []trace.Ref) (int, error) {
	if e.n == 0 {
		return 0, e.err
	}
	k := len(dst)
	if k > e.n {
		k = e.n
	}
	for i := 0; i < k; i++ {
		dst[i] = trace.Ref{PC: 1, VAddr: uint64(i)}
	}
	e.n -= k
	return k, nil
}

func TestStreamInterleaverSurfacesSourceError(t *testing.T) {
	boom := errors.New("boom")
	srcs := []trace.BatchReader{
		trace.NewSliceReader(mixStreams(t, []uint64{50})[0]),
		&errAfter{n: 10, err: boom},
	}
	it := NewStreamInterleaver(srcs, 4)
	n := 0
	for {
		_, _, _, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if !errors.Is(it.Err(), boom) {
		t.Fatalf("Err() = %v, want the source error", it.Err())
	}
	if n == 0 {
		t.Fatal("no references delivered before the error surfaced")
	}
}

// sliceBatch wraps a SliceReader to hide its native batching, exercising
// the io.EOF refill path through the adapter too.
type singleRef struct{ r trace.Reader }

func (s singleRef) ReadBatch(dst []trace.Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	ref, err := s.r.Read()
	if err != nil {
		return 0, err
	}
	dst[0] = ref
	return 1, nil
}

func TestStreamInterleaverOneRefBatches(t *testing.T) {
	streams := mixStreams(t, []uint64{33, 17})
	want := NewInterleaver(streams, 5)
	got := NewStreamInterleaver([]trace.BatchReader{
		singleRef{trace.NewSliceReader(streams[0])},
		singleRef{trace.NewSliceReader(streams[1])},
	}, 5)
	for {
		wp, wpc, wva, wok := want.Next()
		gp, gpc, gva, gok := got.Next()
		if wok != gok || wp != gp || wpc != gpc || wva != gva {
			t.Fatalf("schedules diverge: got (%d,%#x,%#x,%v), want (%d,%#x,%#x,%v)",
				gp, gpc, gva, gok, wp, wpc, wva, wok)
		}
		if !wok {
			return
		}
	}
}
