package multiprog

import (
	"io"

	"tlbprefetch/internal/trace"
)

// streamBuf is the per-process buffer a StreamInterleaver keeps: one batch
// refill per 4096 references makes the refill cost invisible next to the
// simulation work the scheduled stream feeds.
const streamBuf = 4096

// StreamInterleaver is Interleaver over streaming sources: it round-robins
// trace.BatchReaders instead of materialized slices, holding only one
// buffered chunk per process. The schedule — and therefore the interleaved
// reference stream — is bit-identical to an Interleaver over the fully
// materialized streams (pinned by TestStreamInterleaverMatchesSlice): same
// rotation rule, same quantum accounting, and a process drops out of the
// rotation the moment its last reference is consumed, because the buffer is
// refilled eagerly right then.
//
// A source error stops the schedule: Next returns ok=false and Err reports
// the error. Callers must check Err after draining.
type StreamInterleaver struct {
	srcs    []trace.BatchReader
	bufs    [][]trace.Ref // current chunk per process (refs at pos[p]:)
	pos     []int
	quantum uint64
	proc    int    // current process
	left    uint64 // references left in the current quantum
	live    int    // processes with references remaining
	err     error
}

// NewStreamInterleaver builds an interleaver over the given sources. It
// panics on a zero quantum or an empty source list; sources that are
// exhausted from the start are allowed (the process just never runs).
func NewStreamInterleaver(srcs []trace.BatchReader, quantum uint64) *StreamInterleaver {
	if len(srcs) == 0 || quantum == 0 {
		panic("multiprog: need streams and a positive quantum")
	}
	it := &StreamInterleaver{
		srcs:    srcs,
		bufs:    make([][]trace.Ref, len(srcs)),
		pos:     make([]int, len(srcs)),
		quantum: quantum,
		proc:    len(srcs) - 1, // first advance lands on process 0
	}
	for p := range srcs {
		it.bufs[p] = make([]trace.Ref, 0, streamBuf)
		it.refill(p)
		if len(it.bufs[p]) > 0 {
			it.live++
		}
	}
	return it
}

// refill replaces process p's buffer with the source's next chunk. An
// exhausted source leaves the buffer empty; a source error is recorded
// (first one wins) and stops the schedule.
func (it *StreamInterleaver) refill(p int) {
	buf := it.bufs[p][:cap(it.bufs[p])]
	n, err := it.srcs[p].ReadBatch(buf)
	it.bufs[p] = buf[:n]
	it.pos[p] = 0
	if err != nil && err != io.EOF && it.err == nil {
		it.err = err
	}
}

// Err returns the first source error, if any. The schedule stops at the
// error; references delivered before it are valid.
func (it *StreamInterleaver) Err() error { return it.err }

// Next returns the next scheduled reference and the process it belongs to,
// with the process's ASID tag already applied to the address. ok is false
// when every stream is exhausted or a source failed.
func (it *StreamInterleaver) Next() (proc int, pc, vaddr uint64, ok bool) {
	if it.live == 0 || it.err != nil {
		return 0, 0, 0, false
	}
	if it.left == 0 {
		for i := 1; i <= len(it.srcs); i++ {
			p := (it.proc + i) % len(it.srcs)
			if it.pos[p] < len(it.bufs[p]) {
				it.proc = p
				it.left = it.quantum
				break
			}
		}
	}
	p := it.proc
	ref := it.bufs[p][it.pos[p]]
	it.pos[p]++
	it.left--
	if it.pos[p] == len(it.bufs[p]) {
		// Eager refill: the rotation must know *now* whether this process
		// still has references, exactly like the slice interleaver's
		// pos==len check.
		it.refill(p)
		if len(it.bufs[p]) == 0 {
			it.live--
			it.left = 0
		}
	}
	return p, ref.PC, ref.VAddr | uint64(p+1)<<ASIDShift, true
}
