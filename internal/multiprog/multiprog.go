// Package multiprog implements the multiprogramming study the paper names
// as ongoing work in §4: "We are also investigating prefetching issues in a
// multiprogrammed environment (flushing/switching the prefetch tables)".
//
// Two (or more) workloads share one CPU round-robin with a context-switch
// quantum. The TLB is flushed on every switch (no ASIDs, the conservative
// 2002-era assumption). The question is what to do with the *prefetcher's*
// prediction state: flush it alongside the TLB, or let the processes share
// (and pollute) one table. DP's distance table is the interesting case —
// distances are process-relative, so a shared table suffers cross-process
// aliasing, while flushing discards warm state every quantum.
package multiprog

import (
	"fmt"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/workload"
)

// Policy selects the prediction-table treatment at a context switch.
type Policy int

const (
	// Retain keeps one shared prediction table across switches.
	Retain Policy = iota
	// Flush resets the prediction table at every switch (the TLB is
	// flushed in both policies).
	Flush
	// PerProcess gives each process its own table, switched with the
	// process — the idealized hardware (tagged or saved/restored tables).
	PerProcess
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Retain:
		return "retain"
	case Flush:
		return "flush"
	case PerProcess:
		return "per-process"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Result summarizes one multiprogrammed run.
type Result struct {
	Policy   Policy
	Quantum  uint64 // references per scheduling quantum
	Refs     uint64
	Misses   uint64
	Hits     uint64 // prefetch buffer hits
	Accuracy float64
}

// Run interleaves the workloads round-robin with the given quantum and
// mechanism factory, under the given policy. The factory is invoked once
// for Retain/Flush and once per process for PerProcess.
func Run(ws []workload.Workload, refsTotal, quantum uint64, policy Policy,
	mk func() prefetch.Prefetcher, cfg sim.Config) Result {

	if len(ws) == 0 || quantum == 0 {
		panic("multiprog: need workloads and a positive quantum")
	}

	// One reference stream per process, consumed incrementally. The
	// streams are materialized in chunks via workload.Reader at full
	// length: refsTotal is split evenly.
	perProc := refsTotal / uint64(len(ws))
	readers := make([]func() (uint64, uint64, bool), len(ws))
	for i, w := range ws {
		r := workload.Reader(w, perProc)
		readers[i] = func() (uint64, uint64, bool) {
			ref, err := r.Read()
			if err != nil {
				return 0, 0, false
			}
			return ref.PC, ref.VAddr, true
		}
	}

	// Shared pipeline state. For PerProcess each process has its own
	// prefetcher; the TLB and buffer are shared hardware either way.
	var prefs []prefetch.Prefetcher
	switch policy {
	case PerProcess:
		for range ws {
			prefs = append(prefs, mk())
		}
	default:
		prefs = []prefetch.Prefetcher{mk()}
	}
	sims := make([]*sim.Simulator, len(prefs))
	for i := range prefs {
		sims[i] = sim.New(cfg, prefs[i])
	}

	var agg Result
	agg.Policy = policy
	agg.Quantum = quantum
	active := 0
	done := make([]bool, len(ws))
	remaining := len(ws)

	// Address-space disambiguation: each process's pages are offset into
	// its own region (the models already use disjoint regions, but a
	// multiprogrammed OS guarantees it; shift by process id to be safe).
	const asidShift = 44

	for remaining > 0 {
		if done[active] {
			active = (active + 1) % len(ws)
			continue
		}
		s := sims[0]
		if policy == PerProcess {
			s = sims[active]
		}
		// Context switch in: flush the TLB (and buffer), and the tables
		// under the Flush policy.
		s.TLB().Reset()
		s.Buffer().Reset()
		if policy == Flush {
			s.Prefetcher().Reset()
		}
		var executed uint64
		for executed < quantum {
			pc, va, ok := readers[active]()
			if !ok {
				done[active] = true
				remaining--
				break
			}
			s.Ref(pc, va|uint64(active+1)<<asidShift)
			executed++
		}
		active = (active + 1) % len(ws)
	}

	for i := range sims {
		st := sims[i].Stats()
		agg.Refs += st.Refs
		agg.Misses += st.Misses
		agg.Hits += st.BufferHits
	}
	if agg.Misses > 0 {
		agg.Accuracy = float64(agg.Hits) / float64(agg.Misses)
	}
	return agg
}
