// Package multiprog implements the multiprogramming study the paper names
// as ongoing work in §4: "We are also investigating prefetching issues in a
// multiprogrammed environment (flushing/switching the prefetch tables)".
//
// Two or more reference streams share one CPU round-robin with a
// context-switch quantum. The TLB, prefetch buffer and prefetcher are one
// shared hardware pipeline; what differs per cell is the scheduler's
// treatment of that state at a switch:
//
//   - Policy picks what happens to the *prediction tables*: keep one shared
//     table (Retain), reset it every switch (Flush), or save/restore a
//     private table per process (PerProcess — the idealized tagged
//     hardware). DP's distance table is the interesting case: distances are
//     process-relative, so a shared table suffers cross-process aliasing,
//     while flushing discards warm state every quantum.
//   - ASIDMode picks what happens to the *translations*: flush TLB and
//     prefetch buffer at every switch (ASIDFlush, the conservative 2002-era
//     assumption of no address-space identifiers), or keep them resident
//     under ASID-tagged entries (ASIDTagged; the interleaver's per-process
//     address tagging stands in for the tag match).
//
// The package splits the mechanics in two so the sweep runner can share
// work: an Interleaver deterministically round-robins materialized
// per-process streams (allocation-free per reference, so one interleaving
// pass can feed many cells), and an Exec drives one simulator under one
// (Policy, ASIDMode) pair, attributing counters to the process that was
// running. Run bundles both for single-cell use.
package multiprog

import (
	"fmt"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// Policy selects the prediction-table treatment at a context switch.
type Policy int

const (
	// Retain keeps one shared prediction table across switches.
	Retain Policy = iota
	// Flush resets the prediction table at every switch.
	Flush
	// PerProcess gives each process its own table, swapped in with the
	// process — the idealized hardware (tagged or saved/restored tables).
	PerProcess
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Retain:
		return "retain"
	case Flush:
		return "flush"
	case PerProcess:
		return "per-process"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps the string spellings ("retain", "flush", "per-process")
// back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "retain":
		return Retain, nil
	case "flush":
		return Flush, nil
	case "per-process":
		return PerProcess, nil
	}
	return 0, fmt.Errorf("multiprog: unknown policy %q (retain, flush, per-process)", s)
}

// ASIDMode selects the translation treatment at a context switch.
type ASIDMode int

const (
	// ASIDFlush flushes the TLB and prefetch buffer at every real switch:
	// no address-space identifiers, the conservative 2002 assumption.
	ASIDFlush ASIDMode = iota
	// ASIDTagged keeps translations resident across switches under
	// ASID-tagged entries; processes contend for capacity instead.
	ASIDTagged
)

// String implements fmt.Stringer.
func (m ASIDMode) String() string {
	switch m {
	case ASIDFlush:
		return "flush"
	case ASIDTagged:
		return "tagged"
	}
	return fmt.Sprintf("ASIDMode(%d)", int(m))
}

// ParseASID maps the string spellings ("flush", "tagged") back to an
// ASIDMode.
func ParseASID(s string) (ASIDMode, error) {
	switch s {
	case "flush":
		return ASIDFlush, nil
	case "tagged":
		return ASIDTagged, nil
	}
	return 0, fmt.Errorf("multiprog: unknown asid mode %q (flush, tagged)", s)
}

// ASIDShift is the bit position of the interleaver's per-process address
// tag: process i's references carry (i+1)<<ASIDShift, disambiguating
// address spaces the way an OS (or an ASID tag match) would. Tagging is
// unconditional — under ASIDFlush the TLB is emptied at every switch, so
// the tags are inert there — which keeps the interleaved stream identical
// across every policy and ASID mode sharing one interleaving pass.
const ASIDShift = 44

// Split divides a total reference budget across n processes: total/n each,
// with the remainder spread over the earliest processes, so the shares sum
// to exactly total.
func Split(total uint64, n int) []uint64 {
	if n <= 0 {
		panic("multiprog: need a positive process count")
	}
	per, rem := total/uint64(n), total%uint64(n)
	out := make([]uint64, n)
	for i := range out {
		out[i] = per
		if uint64(i) < rem {
			out[i]++
		}
	}
	return out
}

// Interleaver round-robins materialized per-process reference streams with
// a fixed context-switch quantum. The schedule is a pure function of the
// stream lengths and the quantum: process 0 runs first, a process runs
// until its quantum expires or its stream ends, and exhausted processes
// drop out of the rotation — when one process remains it simply keeps
// running (no spurious switches to itself). Next is allocation-free.
type Interleaver struct {
	streams [][]trace.Ref
	quantum uint64
	pos     []int
	proc    int    // current process
	left    uint64 // references left in the current quantum
	live    int    // processes with references remaining
}

// NewInterleaver builds an interleaver over the given streams. It panics on
// a zero quantum or an empty stream list; zero-length streams are allowed
// (the process just never runs).
func NewInterleaver(streams [][]trace.Ref, quantum uint64) *Interleaver {
	if len(streams) == 0 || quantum == 0 {
		panic("multiprog: need streams and a positive quantum")
	}
	it := &Interleaver{
		streams: streams,
		quantum: quantum,
		pos:     make([]int, len(streams)),
		proc:    len(streams) - 1, // first advance lands on process 0
	}
	for _, s := range streams {
		if len(s) > 0 {
			it.live++
		}
	}
	return it
}

// Next returns the next scheduled reference and the process it belongs to,
// with the process's ASID tag already applied to the address. ok is false
// when every stream is exhausted.
func (it *Interleaver) Next() (proc int, pc, vaddr uint64, ok bool) {
	if it.live == 0 {
		return 0, 0, 0, false
	}
	if it.left == 0 {
		// Quantum expired (or first dispatch): rotate to the next process
		// with references left — possibly the current one, when it is the
		// only process still running.
		for i := 1; i <= len(it.streams); i++ {
			p := (it.proc + i) % len(it.streams)
			if it.pos[p] < len(it.streams[p]) {
				it.proc = p
				it.left = it.quantum
				break
			}
		}
	}
	p := it.proc
	ref := it.streams[p][it.pos[p]]
	it.pos[p]++
	it.left--
	if it.pos[p] == len(it.streams[p]) {
		it.live--
		it.left = 0
	}
	return p, ref.PC, ref.VAddr | uint64(p+1)<<ASIDShift, true
}

// Exec drives one shared simulator pipeline under one (Policy, ASIDMode)
// pair, fed by an interleaved stream. It detects context switches from the
// process ids the Interleaver reports — only a *real* process change
// triggers switch actions, so a lone remaining process runs undisturbed —
// and attributes the counters accrued between switches to the process that
// was running.
type Exec struct {
	sim    *sim.Simulator
	policy Policy
	asid   ASIDMode
	tables []prefetch.Prefetcher // per-process tables (PerProcess only)
	cur    int                   // running process (-1 before first dispatch)
	prev   sim.Stats             // counter snapshot at the last boundary
	apps   []sim.Stats
}

// NewExec builds an executor for nprocs processes. mk builds one
// prediction-table instance; it is invoked once for Retain/Flush and once
// per process for PerProcess (nil results mean no prefetching).
func NewExec(cfg sim.Config, policy Policy, asid ASIDMode, nprocs int, mk func() prefetch.Prefetcher) *Exec {
	if nprocs <= 0 {
		panic("multiprog: need a positive process count")
	}
	e := &Exec{
		policy: policy,
		asid:   asid,
		cur:    -1,
		apps:   make([]sim.Stats, nprocs),
	}
	if policy == PerProcess {
		e.tables = make([]prefetch.Prefetcher, nprocs)
		for i := range e.tables {
			e.tables[i] = mk()
		}
		e.sim = sim.New(cfg, e.tables[0])
	} else {
		e.sim = sim.New(cfg, mk())
	}
	return e
}

// Ref feeds one scheduled reference (as produced by Interleaver.Next) into
// the pipeline, performing switch actions when the process changed.
func (e *Exec) Ref(proc int, pc, vaddr uint64) {
	if proc != e.cur {
		e.contextSwitch(proc)
	}
	e.sim.Ref(pc, vaddr)
}

// contextSwitch attributes the outgoing process's counters and applies the
// configured switch actions. The first dispatch installs the process
// without any flushing — nothing ran yet, there is nothing to invalidate.
func (e *Exec) contextSwitch(next int) {
	e.attribute()
	if e.cur >= 0 {
		if e.asid == ASIDFlush {
			e.sim.TLB().Reset()
			e.sim.Buffer().Flush()
		}
		if e.policy == Flush {
			e.sim.Prefetcher().Reset()
		}
	}
	if e.policy == PerProcess {
		e.sim.SwapPrefetcher(e.tables[next])
	}
	e.cur = next
}

// attribute charges the counters accrued since the last boundary to the
// process that was running. Only the monotonic counters are attributed:
// PrefetchesUnused counts buffer-resident entries (which later use can
// shrink), so it is meaningful for the aggregate snapshot only and stays 0
// in per-process stats.
func (e *Exec) attribute() {
	if e.cur < 0 {
		return
	}
	now := e.sim.Stats()
	now.PrefetchesUnused = 0
	a := &e.apps[e.cur]
	a.Refs += now.Refs - e.prev.Refs
	a.Misses += now.Misses - e.prev.Misses
	a.BufferHits += now.BufferHits - e.prev.BufferHits
	a.DemandFetches += now.DemandFetches - e.prev.DemandFetches
	a.PrefetchesRequested += now.PrefetchesRequested - e.prev.PrefetchesRequested
	a.PrefetchesIssued += now.PrefetchesIssued - e.prev.PrefetchesIssued
	a.PrefetchDuplicates += now.PrefetchDuplicates - e.prev.PrefetchDuplicates
	a.StateMemOps += now.StateMemOps - e.prev.StateMemOps
	e.prev = now
}

// ExecResult is an Exec's outcome: the shared pipeline's aggregate counters
// plus the per-process attribution.
type ExecResult struct {
	// Aggregate is the shared pipeline's counters over the whole run,
	// including the finalized unused-prefetch count.
	Aggregate sim.Stats
	// Apps holds one entry per process: the counters accrued while that
	// process was running. PrefetchesUnused is always 0 here (see
	// Exec.attribute).
	Apps []sim.Stats
}

// Results attributes the final segment and returns the run's counters. The
// Exec can continue to be fed afterwards; Results may be called again.
func (e *Exec) Results() ExecResult {
	e.attribute()
	return ExecResult{
		Aggregate: e.sim.Stats(),
		Apps:      append([]sim.Stats(nil), e.apps...),
	}
}

// Result summarizes one multiprogrammed run.
type Result struct {
	Policy  Policy
	ASID    ASIDMode
	Quantum uint64 // references per scheduling quantum
	Refs    uint64
	Misses  uint64
	Hits    uint64 // prefetch buffer hits
	// Coverage is Hits/Misses — the fraction of TLB misses the prefetch
	// buffer absorbed, the metric the paper calls prediction accuracy.
	Coverage float64
	// Accuracy is used/issued — the fraction of issued prefetches that
	// served a miss before being discarded.
	Accuracy float64
	// Apps is the per-process attribution (see ExecResult.Apps).
	Apps []sim.Stats
}

// Run interleaves the workloads round-robin with the given quantum,
// mechanism factory, table policy and ASID mode. refsTotal is split across
// the processes (see Split). The factory is invoked once for Retain/Flush
// and once per process for PerProcess.
func Run(ws []workload.Workload, refsTotal, quantum uint64, policy Policy, asid ASIDMode,
	mk func() prefetch.Prefetcher, cfg sim.Config) Result {

	if len(ws) == 0 || quantum == 0 || refsTotal == 0 {
		panic("multiprog: need workloads, references and a positive quantum")
	}
	shares := Split(refsTotal, len(ws))
	streams := make([][]trace.Ref, len(ws))
	for i, w := range ws {
		buf := make([]trace.Ref, 0, shares[i])
		workload.Generate(w, shares[i], func(pc, vaddr uint64) bool {
			buf = append(buf, trace.Ref{PC: pc, VAddr: vaddr})
			return true
		})
		streams[i] = buf
	}

	it := NewInterleaver(streams, quantum)
	e := NewExec(cfg, policy, asid, len(ws), mk)
	for {
		proc, pc, vaddr, ok := it.Next()
		if !ok {
			break
		}
		e.Ref(proc, pc, vaddr)
	}

	res := e.Results()
	agg := res.Aggregate
	r := Result{
		Policy:   policy,
		ASID:     asid,
		Quantum:  quantum,
		Refs:     agg.Refs,
		Misses:   agg.Misses,
		Hits:     agg.BufferHits,
		Coverage: agg.Accuracy(),
		Apps:     res.Apps,
	}
	if agg.PrefetchesIssued > 0 {
		r.Accuracy = float64(agg.PrefetchesIssued-agg.PrefetchesUnused) / float64(agg.PrefetchesIssued)
	}
	return r
}
