package multiprog

import (
	"reflect"
	"testing"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

func simCfg() sim.Config {
	return sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}
}

func mkDP() prefetch.Prefetcher { return core.NewDistance(256, 1, 2) }

func pair() []workload.Workload {
	a, ok1 := workload.ByName("galgel")
	b, ok2 := workload.ByName("gap")
	if !ok1 || !ok2 {
		panic("missing workloads")
	}
	return []workload.Workload{a, b}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{Retain, Flush, PerProcess} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy renders empty")
	}
	if _, err := ParsePolicy("keep"); err == nil {
		t.Fatal("bad policy parsed")
	}
}

func TestASIDStringRoundTrip(t *testing.T) {
	for _, m := range []ASIDMode{ASIDFlush, ASIDTagged} {
		got, err := ParseASID(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseASID(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseASID("asid"); err == nil {
		t.Fatal("bad asid mode parsed")
	}
}

func TestSplitSumsAndSpreads(t *testing.T) {
	for _, tc := range []struct {
		total uint64
		n     int
		want  []uint64
	}{
		{10, 2, []uint64{5, 5}},
		{11, 2, []uint64{6, 5}},
		{7, 3, []uint64{3, 2, 2}},
		{2, 3, []uint64{1, 1, 0}},
	} {
		got := Split(tc.total, tc.n)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Split(%d, %d) = %v, want %v", tc.total, tc.n, got, tc.want)
		}
	}
}

// synthetic per-process streams where every address names the process, so
// the schedule is fully checkable.
func taggedStreams(lens ...int) [][]trace.Ref {
	out := make([][]trace.Ref, len(lens))
	for p, n := range lens {
		s := make([]trace.Ref, n)
		for i := range s {
			s[i] = trace.Ref{PC: uint64(p)<<32 | uint64(i), VAddr: uint64(i) << 12}
		}
		out[p] = s
	}
	return out
}

func TestInterleaverSchedule(t *testing.T) {
	// Quantum 3 over streams of 5 and 4: p0 runs 3, p1 runs 3, p0 runs its
	// last 2 (stream ends mid-quantum → switch), p1 runs its last 1.
	it := NewInterleaver(taggedStreams(5, 4), 3)
	var procs []int
	for {
		p, _, _, ok := it.Next()
		if !ok {
			break
		}
		procs = append(procs, p)
	}
	want := []int{0, 0, 0, 1, 1, 1, 0, 0, 1}
	if !reflect.DeepEqual(procs, want) {
		t.Fatalf("schedule = %v, want %v", procs, want)
	}
}

func TestInterleaverLoneSurvivorKeepsRunning(t *testing.T) {
	// Once one stream is exhausted the survivor must run uninterrupted:
	// the process id sequence may not switch away and back.
	it := NewInterleaver(taggedStreams(2, 10), 2)
	var procs []int
	for {
		p, _, _, ok := it.Next()
		if !ok {
			break
		}
		procs = append(procs, p)
	}
	if len(procs) != 12 {
		t.Fatalf("total refs = %d, want 12", len(procs))
	}
	// Everything after p0's last reference must be p1, uninterrupted.
	last0 := -1
	for i, p := range procs {
		if p == 0 {
			last0 = i
		}
	}
	for i := last0 + 1; i < len(procs); i++ {
		if procs[i] != 1 {
			t.Fatalf("after p0 exhausted, schedule %v switches again", procs)
		}
	}
}

func TestInterleaverAppliesASIDTags(t *testing.T) {
	it := NewInterleaver(taggedStreams(2, 2), 1)
	for {
		p, _, vaddr, ok := it.Next()
		if !ok {
			break
		}
		if got := vaddr >> ASIDShift; got != uint64(p+1) {
			t.Fatalf("proc %d address tagged %d", p, got)
		}
	}
}

func TestInterleaverZeroLengthStreamNeverRuns(t *testing.T) {
	it := NewInterleaver(taggedStreams(0, 3), 2)
	n := 0
	for {
		p, _, _, ok := it.Next()
		if !ok {
			break
		}
		if p != 1 {
			t.Fatalf("empty stream's process %d was scheduled", p)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("refs = %d, want 3", n)
	}
}

// TestNoSpuriousFlushAtQuantumBoundary pins the satellite fix: a lone
// process hitting quantum boundaries must behave exactly like a
// single-process run — no flushes of any kind, under any policy/ASID pair.
func TestNoSpuriousFlushAtQuantumBoundary(t *testing.T) {
	w := pair()[0]
	var refs []trace.Ref
	workload.Generate(w, 50_000, func(pc, vaddr uint64) bool {
		refs = append(refs, trace.Ref{PC: pc, VAddr: vaddr})
		return true
	})

	// Reference: one simulator fed the same tagged stream directly.
	ref := sim.New(simCfg(), mkDP())
	for _, r := range refs {
		ref.Ref(r.PC, r.VAddr|1<<ASIDShift)
	}
	want := ref.Stats()

	for _, pol := range []Policy{Retain, Flush, PerProcess} {
		for _, asid := range []ASIDMode{ASIDFlush, ASIDTagged} {
			// Tiny quantum: thousands of quantum expiries, zero real
			// switches (the second "process" has an empty stream).
			it := NewInterleaver([][]trace.Ref{refs, nil}, 100)
			e := NewExec(simCfg(), pol, asid, 2, mkDP)
			for {
				p, pc, vaddr, ok := it.Next()
				if !ok {
					break
				}
				e.Ref(p, pc, vaddr)
			}
			got := e.Results().Aggregate
			if got != want {
				t.Errorf("%v/%v: lone process diverges from single-process run:\n got %+v\nwant %+v",
					pol, asid, got, want)
			}
		}
	}
}

func TestRunBasics(t *testing.T) {
	res := Run(pair(), 200_000, 10_000, Retain, ASIDFlush, mkDP, simCfg())
	if res.Refs == 0 || res.Misses == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Refs != 200_000 {
		t.Fatalf("refs %d, want the full budget", res.Refs)
	}
	if res.Coverage < 0 || res.Coverage > 1 {
		t.Fatalf("coverage %v", res.Coverage)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("accuracy %v", res.Accuracy)
	}
	if res.Policy != Retain || res.ASID != ASIDFlush || res.Quantum != 10_000 {
		t.Fatalf("metadata lost: %+v", res)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	var appRefs, appMisses uint64
	for _, a := range res.Apps {
		appRefs += a.Refs
		appMisses += a.Misses
		if a.PrefetchesUnused != 0 {
			t.Fatalf("per-app unused prefetches attributed: %+v", a)
		}
	}
	if appRefs != res.Refs {
		t.Fatalf("per-app refs sum %d != aggregate %d", appRefs, res.Refs)
	}
	if appMisses != res.Misses {
		t.Fatalf("per-app misses sum %d != aggregate %d", appMisses, res.Misses)
	}
}

func TestFlushNeverBeatsPerProcess(t *testing.T) {
	for _, q := range []uint64{5_000, 50_000} {
		flush := Run(pair(), 300_000, q, Flush, ASIDFlush, mkDP, simCfg())
		perProc := Run(pair(), 300_000, q, PerProcess, ASIDFlush, mkDP, simCfg())
		if flush.Coverage > perProc.Coverage+0.02 {
			t.Errorf("quantum %d: flush %.3f beats per-process %.3f",
				q, flush.Coverage, perProc.Coverage)
		}
	}
}

func TestFlushPenaltyShrinksWithQuantum(t *testing.T) {
	small := Run(pair(), 300_000, 2_000, Flush, ASIDFlush, mkDP, simCfg())
	large := Run(pair(), 300_000, 100_000, Flush, ASIDFlush, mkDP, simCfg())
	if small.Coverage > large.Coverage {
		t.Errorf("flush at small quantum %.3f should not beat large quantum %.3f",
			small.Coverage, large.Coverage)
	}
}

func TestTaggedNeverLosesToASIDFlush(t *testing.T) {
	// Keeping translations resident across switches can only help a
	// round-robin pair (they contend for capacity but lose no state).
	flush := Run(pair(), 300_000, 5_000, Retain, ASIDFlush, mkDP, simCfg())
	tagged := Run(pair(), 300_000, 5_000, Retain, ASIDTagged, mkDP, simCfg())
	if tagged.Misses > flush.Misses {
		t.Errorf("tagged TLB misses %d exceed flushed %d", tagged.Misses, flush.Misses)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(pair(), 100_000, 7_000, Retain, ASIDTagged, mkDP, simCfg())
	b := Run(pair(), 100_000, 7_000, Retain, ASIDTagged, mkDP, simCfg())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multiprogrammed run not deterministic: %+v vs %+v", a, b)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero quantum")
		}
	}()
	Run(pair(), 1000, 0, Retain, ASIDFlush, mkDP, simCfg())
}
