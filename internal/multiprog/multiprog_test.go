package multiprog

import (
	"testing"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/workload"
)

func simCfg() sim.Config {
	return sim.Config{TLB: tlb.Config{Entries: 128}, BufferEntries: 16, PageShift: 12}
}

func mkDP() prefetch.Prefetcher { return core.NewDistance(256, 1, 2) }

func pair() []workload.Workload {
	a, ok1 := workload.ByName("galgel")
	b, ok2 := workload.ByName("gap")
	if !ok1 || !ok2 {
		panic("missing workloads")
	}
	return []workload.Workload{a, b}
}

func TestPolicyString(t *testing.T) {
	if Retain.String() != "retain" || Flush.String() != "flush" || PerProcess.String() != "per-process" {
		t.Fatal("policy names")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy renders empty")
	}
}

func TestRunBasics(t *testing.T) {
	res := Run(pair(), 200_000, 10_000, Retain, mkDP, simCfg())
	if res.Refs == 0 || res.Misses == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Refs > 200_000 {
		t.Fatalf("refs %d exceeds budget", res.Refs)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("accuracy %v", res.Accuracy)
	}
	if res.Policy != Retain || res.Quantum != 10_000 {
		t.Fatalf("metadata lost: %+v", res)
	}
}

func TestFlushNeverBeatsPerProcess(t *testing.T) {
	for _, q := range []uint64{5_000, 50_000} {
		flush := Run(pair(), 300_000, q, Flush, mkDP, simCfg())
		perProc := Run(pair(), 300_000, q, PerProcess, mkDP, simCfg())
		if flush.Accuracy > perProc.Accuracy+0.02 {
			t.Errorf("quantum %d: flush %.3f beats per-process %.3f",
				q, flush.Accuracy, perProc.Accuracy)
		}
	}
}

func TestFlushPenaltyShrinksWithQuantum(t *testing.T) {
	small := Run(pair(), 300_000, 2_000, Flush, mkDP, simCfg())
	large := Run(pair(), 300_000, 100_000, Flush, mkDP, simCfg())
	if small.Accuracy > large.Accuracy {
		t.Errorf("flush at small quantum %.3f should not beat large quantum %.3f",
			small.Accuracy, large.Accuracy)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(pair(), 100_000, 7_000, Retain, mkDP, simCfg())
	b := Run(pair(), 100_000, 7_000, Retain, mkDP, simCfg())
	if a != b {
		t.Fatalf("multiprogrammed run not deterministic: %+v vs %+v", a, b)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero quantum")
		}
	}()
	Run(pair(), 1000, 0, Retain, mkDP, simCfg())
}
