// Package cachesim demonstrates that Distance Prefetching is a general
// technique, not a TLB-specific one — the paper's §4: "DP is a fairly
// generic mechanism, that can possibly be used in the context of caches,
// I/O etc."
//
// The model is a set-associative data cache with LRU replacement and a
// small prefetch buffer, driven by the same prefetch.Prefetcher interface
// the TLB simulator uses — the only change is the granularity: cache blocks
// (64 B) instead of pages (4 KB). The ext-cache experiment compares DP and
// ASP prefetching into the buffer on strided and pattern workloads.
package cachesim

import (
	"fmt"
	"io"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
)

// Config describes the cache geometry.
type Config struct {
	// SizeBytes is the total capacity (e.g. 32 KiB).
	SizeBytes int
	// BlockBytes is the line size (e.g. 64).
	BlockBytes int
	// Ways is the associativity; 0 means fully associative.
	Ways int
	// BufferEntries is the prefetch buffer size.
	BufferEntries int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.SizeBytes%c.BlockBytes != 0 {
		return fmt.Errorf("cachesim: size %d not divisible by block %d", c.SizeBytes, c.BlockBytes)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cachesim: block size %d not a power of two", c.BlockBytes)
	}
	if c.BufferEntries <= 0 {
		return fmt.Errorf("cachesim: buffer entries must be positive")
	}
	return nil
}

// Stats mirrors sim.Stats at cache-block granularity.
type Stats struct {
	Refs       uint64
	Misses     uint64
	BufferHits uint64
}

// Accuracy is the fraction of cache misses satisfied by the prefetch
// buffer.
func (s Stats) Accuracy() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(s.Misses)
}

// MissRate is misses per reference.
func (s Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}

// Cache is the prefetching cache simulator. The tag store reuses the TLB
// structure (both are set-associative LRU arrays of block numbers).
type Cache struct {
	cfg        Config
	blockShift uint
	tags       *tlb.TLB
	buf        *tlb.PrefetchBuffer
	pf         prefetch.Prefetcher
	stat       Stats
	scratch    []uint64 // reusable prediction buffer handed to the mechanism
}

// New builds a cache around the given prefetcher (nil = no prefetching).
func New(cfg Config, pf prefetch.Prefetcher) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if pf == nil {
		pf = prefetch.Nop{}
	}
	shift := uint(0)
	for 1<<shift != cfg.BlockBytes {
		shift++
	}
	blocks := cfg.SizeBytes / cfg.BlockBytes
	ways := cfg.Ways
	if ways == 0 {
		ways = blocks
	}
	return &Cache{
		cfg:        cfg,
		blockShift: shift,
		tags:       tlb.New(tlb.Config{Entries: blocks, Ways: ways}),
		buf:        tlb.NewPrefetchBuffer(cfg.BufferEntries),
		pf:         pf,
	}
}

// Ref simulates one memory reference.
func (c *Cache) Ref(pc, addr uint64) {
	c.stat.Refs++
	block := addr >> c.blockShift
	if c.tags.Access(block) {
		return
	}
	c.stat.Misses++
	_, bufferHit := c.buf.TakeOut(block)
	if bufferHit {
		c.stat.BufferHits++
	}
	evicted, hasEvicted := c.tags.Insert(block)
	act := c.pf.OnMiss(prefetch.Event{
		VPN:        block,
		PC:         pc,
		BufferHit:  bufferHit,
		EvictedVPN: evicted,
		HasEvicted: hasEvicted,
	}, c.scratch[:0])
	for _, p := range act.Prefetches {
		if c.tags.Contains(p) || c.buf.Contains(p) {
			continue
		}
		c.buf.Insert(p, 0)
	}
	if cap(act.Prefetches) > cap(c.scratch) {
		c.scratch = act.Prefetches
	}
}

// Run drains a trace reader.
func (c *Cache) Run(src trace.Reader) error {
	for {
		ref, err := src.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.Ref(ref.PC, ref.VAddr)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stat }
