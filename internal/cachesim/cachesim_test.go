package cachesim

import (
	"testing"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/trace"
)

func cfg() Config {
	return Config{SizeBytes: 1 << 10, BlockBytes: 64, Ways: 4, BufferEntries: 8}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, BlockBytes: 64, BufferEntries: 8},
		{SizeBytes: 1000, BlockBytes: 64, BufferEntries: 8}, // not divisible
		{SizeBytes: 1024, BlockBytes: 48, BufferEntries: 8}, // not a power of two
		{SizeBytes: 1024, BlockBytes: 64, BufferEntries: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted invalid %+v", c)
		}
	}
}

func TestBlockGranularity(t *testing.T) {
	c := New(cfg(), nil)
	c.Ref(0, 0x1000) // block 0x40
	c.Ref(0, 0x103f) // same 64-byte block -> hit
	c.Ref(0, 0x1040) // next block -> miss
	st := c.Stats()
	if st.Refs != 3 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MissRate() <= 0.5 || st.MissRate() >= 0.7 {
		t.Fatalf("miss rate = %v", st.MissRate())
	}
}

func TestDistancePrefetchingAtCacheLevel(t *testing.T) {
	// Stride-2-blocks stream: DP learns "distance 2 follows distance 2"
	// exactly as it learns page distances at the TLB level.
	c := New(cfg(), core.NewDistance(64, 1, 2))
	addr := uint64(1 << 20)
	for i := 0; i < 2000; i++ {
		c.Ref(0, addr)
		addr += 128 // two blocks
	}
	st := c.Stats()
	if st.Accuracy() < 0.9 {
		t.Fatalf("DP accuracy at cache level = %.3f, want ~1", st.Accuracy())
	}
}

func TestNopBaseline(t *testing.T) {
	c := New(cfg(), prefetch.Nop{})
	for i := uint64(0); i < 100; i++ {
		c.Ref(0, i*64)
	}
	if st := c.Stats(); st.BufferHits != 0 || st.Accuracy() != 0 {
		t.Fatalf("baseline hit the buffer: %+v", st)
	}
}

func TestRunFromTrace(t *testing.T) {
	refs := make([]trace.Ref, 100)
	for i := range refs {
		refs[i] = trace.Ref{VAddr: uint64(i) * 64}
	}
	c := New(cfg(), prefetch.NewSequential(true))
	if err := c.Run(trace.NewSliceReader(refs)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Refs != 100 {
		t.Fatalf("refs = %d", st.Refs)
	}
	// Sequential blocks: SP covers nearly everything after the first.
	if st.Accuracy() < 0.9 {
		t.Fatalf("SP accuracy = %.3f", st.Accuracy())
	}
}

func TestFullyAssociativeDefault(t *testing.T) {
	c := New(Config{SizeBytes: 256, BlockBytes: 64, Ways: 0, BufferEntries: 4}, nil)
	// 4 blocks capacity, fully associative: 4 distinct blocks then re-touch.
	for i := uint64(0); i < 4; i++ {
		c.Ref(0, i*64)
	}
	for i := uint64(0); i < 4; i++ {
		c.Ref(0, i*64)
	}
	if st := c.Stats(); st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (all re-touches hit)", st.Misses)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(Config{}, nil)
}
