package prefetch

// SBFP implements sampling-based free TLB prefetching (after Vavouliotis et
// al., ISCA 2021). The insight: a page-table walk fetches a cache line of
// PTEs, so the translations at small "free distances" around the missing
// page (±1..±7 pages in an 8-PTE line) arrive for free with the demand walk.
// SBFP decides *which* of those free translations are worth keeping with a
// free distance table (FDT) of saturating usefulness counters, one per
// distance:
//
//   - distances whose counter is at or above a confidence threshold are
//     prefetched and tracked in a bounded prefetch queue (PQ);
//   - the rest are merely *sampled*: remembered in a bounded sampler so a
//     later miss on the page proves the distance would have been useful.
//
// A miss matching a PQ or sampler entry increments that entry's distance
// counter; a PQ entry evicted unused decrements its distance counter. Both
// structures are plain FIFO rings, so the whole mechanism is a few flat
// arrays with no table geometry to sweep — like RP, its hardware is fixed.
const (
	sbfpMaxDistance = 7    // free distances are -7..-1 and +1..+7
	sbfpDistances   = 14   // counted distances (2 * sbfpMaxDistance)
	sbfpThreshold   = 100  // counter value at which a distance is prefetched
	sbfpMaxCounter  = 1023 // 10-bit saturating counters
	sbfpSamplerSize = 64   // below-threshold candidates remembered
	sbfpPQSize      = 32   // in-flight free prefetches tracked
)

// sbfpEntry is one sampler or prefetch-queue slot: the page a free
// translation covers, and the distance that produced it.
type sbfpEntry struct {
	vpn   uint64
	dist  int8
	valid bool
}

// SBFP is the sampling-based free prefetcher. Construct with NewSBFP.
type SBFP struct {
	fdt         [sbfpDistances]uint16
	sampler     [sbfpSamplerSize]sbfpEntry
	samplerNext int
	pq          [sbfpPQSize]sbfpEntry
	pqNext      int
}

// NewSBFP builds an SBFP prefetcher with the published structure sizes
// (14 distances, threshold 100, 10-bit counters, 64-entry sampler,
// 32-entry PQ).
func NewSBFP() *SBFP { return &SBFP{} }

// sbfpIndex maps a free distance (-7..-1, 1..7) to its FDT counter index.
func sbfpIndex(dist int) int {
	if dist < 0 {
		return dist + sbfpMaxDistance // -7..-1 -> 0..6
	}
	return dist + sbfpMaxDistance - 1 // 1..7 -> 7..13
}

// Name implements Prefetcher.
func (s *SBFP) Name() string { return "SBFP" }

// OnMiss implements Prefetcher.
func (s *SBFP) OnMiss(ev Event, dst []uint64) Action {
	// 1. Train: a miss on a tracked page proves its distance useful.
	for i := range s.pq {
		if s.pq[i].valid && s.pq[i].vpn == ev.VPN {
			s.bump(int(s.pq[i].dist))
			s.pq[i].valid = false
		}
	}
	for i := range s.sampler {
		if s.sampler[i].valid && s.sampler[i].vpn == ev.VPN {
			s.bump(int(s.sampler[i].dist))
			s.sampler[i].valid = false
		}
	}
	// 2. The demand walk exposes every free distance: prefetch the
	// confident ones, sample the rest. Candidates are visited in
	// magnitude order (+1, -1, +2, -2, ...) so nearer pages claim
	// prefetch-buffer and PQ space first.
	for d := 1; d <= sbfpMaxDistance; d++ {
		for _, dist := range [2]int{d, -d} {
			var page uint64
			if dist < 0 {
				if ev.VPN < uint64(-dist) {
					continue // below page 0
				}
				page = ev.VPN - uint64(-dist)
			} else {
				page = ev.VPN + uint64(dist)
				if page < ev.VPN {
					continue // address-space wraparound
				}
			}
			if s.fdt[sbfpIndex(dist)] >= sbfpThreshold {
				dst = append(dst, page)
				s.pushPQ(page, dist)
			} else {
				s.pushSampler(page, dist)
			}
		}
	}
	if len(dst) == 0 {
		return Action{}
	}
	return Action{Prefetches: dst}
}

// bump saturating-increments a distance's usefulness counter.
func (s *SBFP) bump(dist int) {
	if c := &s.fdt[sbfpIndex(dist)]; *c < sbfpMaxCounter {
		*c++
	}
}

// pushPQ records an issued free prefetch, retiring the oldest slot. A slot
// still valid at eviction was a prefetch that went unused: its distance
// pays with a counter decrement.
func (s *SBFP) pushPQ(vpn uint64, dist int) {
	if old := &s.pq[s.pqNext]; old.valid {
		if c := &s.fdt[sbfpIndex(int(old.dist))]; *c > 0 {
			*c--
		}
	}
	s.pq[s.pqNext] = sbfpEntry{vpn: vpn, dist: int8(dist), valid: true}
	s.pqNext = (s.pqNext + 1) % sbfpPQSize
}

// pushSampler records a below-threshold candidate. Sampled entries are
// free to discard: eviction carries no penalty.
func (s *SBFP) pushSampler(vpn uint64, dist int) {
	s.sampler[s.samplerNext] = sbfpEntry{vpn: vpn, dist: int8(dist), valid: true}
	s.samplerNext = (s.samplerNext + 1) % sbfpSamplerSize
}

// Reset implements Prefetcher.
func (s *SBFP) Reset() {
	*s = SBFP{}
}

// HardwareInfo implements HardwareDescriber.
func (s *SBFP) HardwareInfo() HardwareInfo {
	return HardwareInfo{
		Mechanism:     "SBFP",
		Rows:          "14 counters + 64 sampler + 32 PQ",
		RowContents:   "10-bit usefulness counter; page #, free distance",
		TableLocation: "on-chip",
		IndexedBy:     "free distance",
		StateMemOps:   "0",
		MaxPrefetches: itoa(sbfpDistances),
	}
}

var _ Prefetcher = (*SBFP)(nil)
var _ HardwareDescriber = (*SBFP)(nil)
