package prefetch

import "testing"

// TestModernMechanismsZeroAlloc pins the steady-state allocation behaviour
// of the modern mechanisms in tier-1 (the benchmarks pin the same property,
// but only when someone runs them). After a warm-up pass that populates
// every table row — first-touch of a row may allocate its backing storage,
// which the tables then recycle on eviction — replaying the same miss
// stream must not allocate at all.
func TestModernMechanismsZeroAlloc(t *testing.T) {
	mechs := []struct {
		name string
		p    Prefetcher
	}{
		{"STMS", NewSTMS(64, 2, 4)},
		{"MASP", NewMASP(64, 2, 2)},
		{"SBFP", NewSBFP()},
	}
	// Deterministic stream: an LCG over a 16-bit page space with 64 PCs,
	// enough churn to wrap every ring and cycle every table row.
	const events = 8192
	evs := make([]Event, events)
	state := uint64(1)
	var last uint64
	for i := range evs {
		state = state*6364136223846793005 + 1442695040888963407
		vpn := (state >> 33) & 0xffff
		if vpn == last {
			vpn = (vpn + 1) & 0xffff
		}
		evs[i] = Event{VPN: vpn, PC: (state >> 50) & 0x3f, BufferHit: state&7 == 0}
		last = vpn
	}
	for _, m := range mechs {
		t.Run(m.name, func(t *testing.T) {
			scratch := make([]uint64, 0, 64)
			replay := func() {
				for _, e := range evs {
					m.p.OnMiss(e, scratch[:0])
				}
			}
			replay() // warm up: populate rows, wrap rings
			if allocs := testing.AllocsPerRun(3, replay); allocs != 0 {
				t.Fatalf("%s allocated %.1f times per replay after warm-up; the miss path must be allocation-free", m.name, allocs)
			}
		})
	}
}
