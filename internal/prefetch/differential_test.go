package prefetch_test

// Differential harness: replays recorded and synthetic reference streams
// through each optimized mechanism and its naive reference model
// (reference_test.go) and asserts identical prediction sequences, so
// hot-path tricks (flat arrays, per-set rings, no maps on the miss path)
// can never silently change behaviour. Every kind in the sweep registry
// has a TestDifferential<Kind> entry point here; the AST gate in
// internal/sweep/coverage_test.go enforces that new kinds add theirs.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// diffStream produces one deterministic reference stream.
type diffStream struct {
	name string
	feed func(t *testing.T, emit func(pc, vaddr uint64))
}

const diffRefs = 25_000

// syntheticStream feeds a workload model's generated references directly.
func syntheticStream(name string) diffStream {
	return diffStream{name: "synthetic/" + name, feed: func(t *testing.T, emit func(pc, vaddr uint64)) {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		workload.Generate(w, diffRefs, func(pc, vaddr uint64) bool {
			emit(pc, vaddr)
			return true
		})
	}}
}

// recordedStream writes a workload to a v2 block trace file, then feeds the
// decoded recording — the genuine record/replay path.
func recordedStream(name string) diffStream {
	return diffStream{name: "recorded/" + name, feed: func(t *testing.T, emit func(pc, vaddr uint64)) {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		path := filepath.Join(t.TempDir(), name+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		bw, err := trace.NewBlockWriter(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := workload.GenerateTo(w, diffRefs, bw); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		r, closer, err := trace.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer closer.Close()
		for {
			ref, err := r.Read()
			if err != nil {
				break
			}
			emit(ref.PC, ref.VAddr)
		}
	}}
}

// diffStreams is the shared stimulus set: two recorded traces and three
// synthetic workloads spanning strided (galgel), pointer-chasing (mcf) and
// mixed (swim) behaviour.
func diffStreams() []diffStream {
	return []diffStream{
		recordedStream("mcf"),
		recordedStream("adpcm-enc"),
		syntheticStream("swim"),
		syntheticStream("mcf"),
		syntheticStream("galgel"),
	}
}

// missEvents converts a raw reference stream into the miss-event stream a
// simulator would produce, deterministically:
//
//   - consecutive events never repeat a page (a page that just filled the
//     TLB cannot immediately miss again — the invariant mechanisms like DP
//     and MP rely on);
//   - BufferHit follows a fixed pseudo-pattern (mechanisms must agree
//     under any interleaving, so any deterministic pattern serves);
//   - evictions replay a 128-entry FIFO shadow of recent misses, so the
//     stack-maintaining mechanisms (RP) see a full unlink/push workload.
func missEvents(t *testing.T, s diffStream, visit func(ev prefetch.Event)) {
	var (
		lastVPN  uint64
		hasLast  bool
		ring     [128]uint64
		ringHead uint64
	)
	s.feed(t, func(pc, vaddr uint64) {
		vpn := vaddr >> 12
		if hasLast && vpn == lastVPN {
			return
		}
		ev := prefetch.Event{
			VPN:       vpn,
			PC:        pc,
			BufferHit: (vpn^pc)%5 == 0,
		}
		if ringHead >= uint64(len(ring)) {
			if ev2 := ring[ringHead%uint64(len(ring))]; ev2 != vpn {
				ev.EvictedVPN, ev.HasEvicted = ev2, true
			}
		}
		ring[ringHead%uint64(len(ring))] = vpn
		ringHead++
		lastVPN, hasLast = vpn, true
		visit(ev)
	})
}

// diffConfig is one (implementation, reference) pair under one geometry.
type diffConfig struct {
	label string
	mk    func() prefetch.Prefetcher // nil Prefetcher = the "none" baseline
	mkRef func() refModel
}

// runDifferential replays every stream through every configuration pair,
// comparing prediction sequences event by event. The scratch buffer is
// reused across calls, as the simulator's hot path does.
func runDifferential(t *testing.T, configs []diffConfig) {
	for _, cfg := range configs {
		for _, s := range diffStreams() {
			t.Run(cfg.label+"/"+s.name, func(t *testing.T) {
				impl := cfg.mk()
				ref := cfg.mkRef()
				scratch := make([]uint64, 0, 64)
				n := 0
				missEvents(t, s, func(ev prefetch.Event) {
					if t.Failed() {
						return
					}
					var got []uint64
					if impl != nil {
						got = impl.OnMiss(ev, scratch[:0]).Prefetches
					}
					want := ref.onMiss(ev)
					if len(got) != len(want) {
						t.Errorf("event %d (vpn=%#x pc=%#x): got %d predictions %v, reference %d %v",
							n, ev.VPN, ev.PC, len(got), got, len(want), want)
						return
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("event %d (vpn=%#x pc=%#x): prediction %d: got %#x, reference %#x (got %v, want %v)",
								n, ev.VPN, ev.PC, i, got[i], want[i], got, want)
							return
						}
					}
					n++
				})
				if n < 1000 {
					t.Fatalf("stream %s produced only %d events — not a meaningful differential", s.name, n)
				}
			})
		}
	}
}

func TestDifferentialNone(t *testing.T) {
	runDifferential(t, []diffConfig{
		{label: "none", mk: func() prefetch.Prefetcher { return nil }, mkRef: func() refModel { return refNone{} }},
		{label: "nop", mk: func() prefetch.Prefetcher { return prefetch.Nop{} }, mkRef: func() refModel { return refNone{} }},
	})
}

func TestDifferentialSP(t *testing.T) {
	runDifferential(t, []diffConfig{
		{label: "tagged", mk: func() prefetch.Prefetcher { return prefetch.NewSequential(true) },
			mkRef: func() refModel { return refSP{tagged: true} }},
		{label: "untagged", mk: func() prefetch.Prefetcher { return prefetch.NewSequential(false) },
			mkRef: func() refModel { return refSP{tagged: false} }},
	})
}

func TestDifferentialSPA(t *testing.T) {
	runDifferential(t, []diffConfig{
		{label: "SP-A", mk: func() prefetch.Prefetcher { return prefetch.NewAdaptiveSequential() },
			mkRef: func() refModel { return &refSPA{} }},
	})
}

func TestDifferentialASP(t *testing.T) {
	var configs []diffConfig
	for _, g := range [][2]int{{64, 1}, {128, 4}} {
		entries, ways := g[0], g[1]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d", entries, ways),
			mk:    func() prefetch.Prefetcher { return prefetch.NewASP(entries, ways) },
			mkRef: func() refModel { return newRefASP(entries, ways) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialMP(t *testing.T) {
	var configs []diffConfig
	for _, g := range [][3]int{{64, 1, 2}, {128, 4, 3}} {
		entries, ways, slots := g[0], g[1], g[2]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d,s=%d", entries, ways, slots),
			mk:    func() prefetch.Prefetcher { return prefetch.NewMarkov(entries, ways, slots) },
			mkRef: func() refModel { return newRefMP(entries, ways, slots) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialRP(t *testing.T) {
	runDifferential(t, []diffConfig{
		{label: "degree=2", mk: func() prefetch.Prefetcher { return prefetch.NewRecency() },
			mkRef: func() refModel { return newRefRP(2) }},
	})
}

func TestDifferentialRP3(t *testing.T) {
	runDifferential(t, []diffConfig{
		{label: "degree=3", mk: func() prefetch.Prefetcher { return prefetch.NewRecencyDegree(3) },
			mkRef: func() refModel { return newRefRP(3) }},
	})
}

func dpGeometries() [][3]int { return [][3]int{{64, 1, 2}, {128, 4, 3}} }

func TestDifferentialDP(t *testing.T) {
	var configs []diffConfig
	for _, g := range dpGeometries() {
		entries, ways, slots := g[0], g[1], g[2]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d,s=%d", entries, ways, slots),
			mk:    func() prefetch.Prefetcher { return core.NewDistance(entries, ways, slots) },
			mkRef: func() refModel { return newRefDP("DP", entries, ways, slots) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialDPPC(t *testing.T) {
	var configs []diffConfig
	for _, g := range dpGeometries() {
		entries, ways, slots := g[0], g[1], g[2]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d,s=%d", entries, ways, slots),
			mk:    func() prefetch.Prefetcher { return core.NewDistancePC(entries, ways, slots) },
			mkRef: func() refModel { return newRefDP("DP-PC", entries, ways, slots) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialDP2(t *testing.T) {
	var configs []diffConfig
	for _, g := range dpGeometries() {
		entries, ways, slots := g[0], g[1], g[2]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d,s=%d", entries, ways, slots),
			mk:    func() prefetch.Prefetcher { return core.NewDistance2(entries, ways, slots) },
			mkRef: func() refModel { return newRefDP("DP2", entries, ways, slots) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialSTMS(t *testing.T) {
	var configs []diffConfig
	// A 64-entry ring wraps thousands of times over a stream, exercising
	// the staleness window; 4-way indexing exercises index-table eviction.
	for _, g := range [][3]int{{64, 1, 4}, {256, 4, 2}} {
		entries, ways, degree := g[0], g[1], g[2]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d,d=%d", entries, ways, degree),
			mk:    func() prefetch.Prefetcher { return prefetch.NewSTMS(entries, ways, degree) },
			mkRef: func() refModel { return newRefSTMS(entries, ways, degree) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialMASP(t *testing.T) {
	var configs []diffConfig
	for _, g := range [][3]int{{64, 1, 2}, {128, 4, 3}} {
		entries, ways, slots := g[0], g[1], g[2]
		configs = append(configs, diffConfig{
			label: fmt.Sprintf("r=%d,w=%d,s=%d", entries, ways, slots),
			mk:    func() prefetch.Prefetcher { return prefetch.NewMASP(entries, ways, slots) },
			mkRef: func() refModel { return newRefMASP(entries, ways, slots) },
		})
	}
	runDifferential(t, configs)
}

func TestDifferentialSBFP(t *testing.T) {
	runDifferential(t, []diffConfig{
		{label: "fixed", mk: func() prefetch.Prefetcher { return prefetch.NewSBFP() },
			mkRef: func() refModel { return newRefSBFP() }},
	})
}
