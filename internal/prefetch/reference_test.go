package prefetch_test

// Deliberately slow, map/slice-based reference models for every mechanism
// in the sweep registry. Each one restates its mechanism's published
// algorithm with the most naive data structures available — copy-heavy
// slices for LRU orders, append-only history, maps for counters — so the
// optimized implementations (flat arrays, internal/assoc tables, per-set
// rings) can be pinned bit-identical to the semantics by differential
// replay (differential_test.go). Keep these boring: their only virtue is
// being obviously correct.

import (
	"tlbprefetch/internal/prefetch"
)

// refModel is the reference side of a differential pair: the prediction
// sequence for one miss event.
type refModel interface {
	onMiss(ev prefetch.Event) []uint64
}

// --- naive set-associative LRU table ---------------------------------------

// refTable mirrors table.Table semantics: set index = key mod nsets (ways
// divides entries), full key as tag, true LRU per set via an MRU-first
// slice that is copied on every reordering.
type refCell[V any] struct {
	key uint64
	val V
}

type refTable[V any] struct {
	ways int
	sets [][]refCell[V]
}

func newRefTable[V any](entries, ways int) *refTable[V] {
	if ways == 0 {
		ways = 1
	}
	return &refTable[V]{ways: ways, sets: make([][]refCell[V], entries/ways)}
}

func (t *refTable[V]) setIndex(key uint64) int { return int(key % uint64(len(t.sets))) }

// lookup promotes a hit to MRU (like Table.Lookup).
func (t *refTable[V]) lookup(key uint64) (*V, bool) {
	si := t.setIndex(key)
	s := t.sets[si]
	for i := range s {
		if s[i].key == key {
			hit := s[i]
			rest := append([]refCell[V]{}, s[:i]...)
			rest = append(rest, s[i+1:]...)
			t.sets[si] = append([]refCell[V]{hit}, rest...)
			return &t.sets[si][0].val, true
		}
	}
	return nil, false
}

// insert places (key, val) at MRU, evicting LRU on a full set (like
// Table.Insert).
func (t *refTable[V]) insert(key uint64, val V) {
	if v, ok := t.lookup(key); ok {
		*v = val
		return
	}
	si := t.setIndex(key)
	s := t.sets[si]
	if len(s) >= t.ways {
		s = s[:t.ways-1] // drop LRU
	}
	t.sets[si] = append([]refCell[V]{{key: key, val: val}}, s...)
}

// getOrInsert returns key's value, inserting the zero value at MRU when
// absent (like Table.GetOrInsert; the Lazy variant differs only in reusing
// storage the mechanisms reinitialize anyway).
func (t *refTable[V]) getOrInsert(key uint64) (*V, bool) {
	if v, ok := t.lookup(key); ok {
		return v, true
	}
	var zero V
	t.insert(key, zero)
	return &t.sets[t.setIndex(key)][0].val, false
}

// --- naive LRU slot list ----------------------------------------------------

// refSlots mirrors table.SlotList: fixed capacity, MRU-first, Touch moves
// to front or inserts at front evicting the last slot.
type refSlots struct {
	vals []int64
	cap  int
}

func newRefSlots(cap int) *refSlots { return &refSlots{cap: cap} }

func (l *refSlots) contains(v int64) bool {
	for _, x := range l.vals {
		if x == v {
			return true
		}
	}
	return false
}

func (l *refSlots) touch(v int64) {
	out := []int64{v}
	for _, x := range l.vals {
		if x != v {
			out = append(out, x)
		}
	}
	if len(out) > l.cap {
		out = out[:l.cap]
	}
	l.vals = out
}

func (l *refSlots) values() []int64 { return l.vals }

// --- none / SP / SP-A --------------------------------------------------------

// refNone is the no-prefetching baseline.
type refNone struct{}

func (refNone) onMiss(prefetch.Event) []uint64 { return nil }

// refSP is sequential prefetching: next page, tagged or untagged.
type refSP struct{ tagged bool }

func (s refSP) onMiss(ev prefetch.Event) []uint64 {
	if !s.tagged && ev.BufferHit {
		return nil
	}
	return []uint64{ev.VPN + 1}
}

// refSPA is the adaptive sequential prefetcher: degree doubles when at
// least 75% of a 16-miss window were buffer hits, halves below 40%,
// bounded by [1, 4].
type refSPA struct {
	degree, hits, misses int
}

func (a *refSPA) onMiss(ev prefetch.Event) []uint64 {
	if a.degree == 0 {
		a.degree = 1
	}
	if ev.BufferHit {
		a.hits++
	} else {
		a.misses++
	}
	if a.hits+a.misses >= 16 {
		frac := float64(a.hits) / float64(a.hits+a.misses)
		switch {
		case frac >= 0.75 && a.degree < 4:
			a.degree *= 2
		case frac <= 0.40 && a.degree > 1:
			a.degree /= 2
		}
		a.hits, a.misses = 0, 0
	}
	var out []uint64
	for d := 1; d <= a.degree; d++ {
		out = append(out, ev.VPN+uint64(d))
	}
	return out
}

// --- ASP ---------------------------------------------------------------------

type refASPRow struct {
	prevVPN uint64
	stride  int64
	state   int // 0 initial, 1 transient, 2 steady, 3 no-pred
}

// refASP is the Chen & Baer reference prediction table.
type refASP struct {
	t *refTable[refASPRow]
}

func newRefASP(entries, ways int) *refASP {
	return &refASP{t: newRefTable[refASPRow](entries, ways)}
}

func (a *refASP) onMiss(ev prefetch.Event) []uint64 {
	row, ok := a.t.lookup(ev.PC)
	if !ok {
		a.t.insert(ev.PC, refASPRow{prevVPN: ev.VPN})
		return nil
	}
	stride := int64(ev.VPN) - int64(row.prevVPN)
	correct := stride == row.stride
	switch row.state {
	case 0: // initial
		if correct {
			row.state = 2
		} else {
			row.stride, row.state = stride, 1
		}
	case 1: // transient
		if correct {
			row.state = 2
		} else {
			row.stride, row.state = stride, 3
		}
	case 2: // steady
		if !correct {
			row.state = 0
		}
	case 3: // no-pred
		if correct {
			row.state = 1
		} else {
			row.stride = stride
		}
	}
	row.prevVPN = ev.VPN
	if row.state == 2 && row.stride != 0 {
		return []uint64{uint64(int64(ev.VPN) + row.stride)}
	}
	return nil
}

// --- MP ----------------------------------------------------------------------

// refMP is Markov prefetching: page-indexed successor slots.
type refMP struct {
	t       *refTable[*refSlots]
	slots   int
	prevVPN uint64
	hasPrev bool
}

func newRefMP(entries, ways, slots int) *refMP {
	return &refMP{t: newRefTable[*refSlots](entries, ways), slots: slots}
}

func (m *refMP) onMiss(ev prefetch.Event) []uint64 {
	var out []uint64
	row, existed := m.t.getOrInsert(ev.VPN)
	if existed {
		for _, succ := range (*row).values() {
			out = append(out, uint64(succ))
		}
	} else {
		*row = newRefSlots(m.slots)
	}
	if m.hasPrev && m.prevVPN != ev.VPN {
		prow, pexisted := m.t.getOrInsert(m.prevVPN)
		if !pexisted {
			*prow = newRefSlots(m.slots)
		}
		(*prow).touch(int64(ev.VPN))
	}
	m.prevVPN = ev.VPN
	m.hasPrev = true
	return out
}

// --- RP ----------------------------------------------------------------------

// refRP is recency prefetching: the LRU stack kept as a plain top-first
// slice, rebuilt on every unlink/push.
type refRP struct {
	stack  []uint64
	degree int
}

func newRefRP(degree int) *refRP { return &refRP{degree: degree} }

func (r *refRP) find(vpn uint64) int {
	for i, v := range r.stack {
		if v == vpn {
			return i
		}
	}
	return -1
}

func (r *refRP) remove(vpn uint64) {
	if i := r.find(vpn); i >= 0 {
		r.stack = append(append([]uint64{}, r.stack[:i]...), r.stack[i+1:]...)
	}
}

func (r *refRP) onMiss(ev prefetch.Event) []uint64 {
	var out []uint64
	// Neighbours walked alternately outward from the missing page, toward
	// the top first, at most ceil(n/2) per direction (AppendNeighborsN).
	if i := r.find(ev.VPN); i >= 0 {
		perSide := (r.degree + 1) / 2
		up, down := i-1, i+1
		ups, downs := 0, 0
		for len(out) < r.degree && ((up >= 0 && ups < perSide) || (down < len(r.stack) && downs < perSide)) {
			if up >= 0 && ups < perSide {
				out = append(out, r.stack[up])
				up--
				ups++
			}
			if len(out) < r.degree && down < len(r.stack) && downs < perSide {
				out = append(out, r.stack[down])
				down++
				downs++
			}
		}
	}
	r.remove(ev.VPN)
	if ev.HasEvicted {
		r.remove(ev.EvictedVPN) // defensive unlink, as pagetable.Push does
		r.stack = append([]uint64{ev.EvictedVPN}, r.stack...)
	}
	return out
}

// --- DP family ---------------------------------------------------------------

// refDP is distance prefetching with a pluggable table key, covering DP
// (key = distance), DP-PC (key = pc ⊕ distance) and DP2 (key = distance
// pair). The key derivations restate the formulas in internal/core.
type refDP struct {
	t     *refTable[*refSlots]
	slots int

	prevVPN uint64
	hasPrev bool

	// plain DP / DP-PC: one previous key; DP2: two previous distances.
	mode    string // "DP", "DP-PC", "DP2"
	prevKey uint64
	hasKey  bool
	d1, d2  int64
	nDists  int
}

func newRefDP(mode string, entries, ways, slots int) *refDP {
	return &refDP{t: newRefTable[*refSlots](entries, ways), slots: slots, mode: mode}
}

func refPCDistKey(pc uint64, dist int64) uint64 {
	return uint64(dist) ^ (pc << 32) ^ (pc >> 16)
}

func refDistPairKey(d1, d2 int64) uint64 {
	return uint64(d2) ^ (uint64(d1) << 27) ^ (uint64(d1) >> 37)
}

func (d *refDP) record(key uint64, dist int64) {
	row, existed := d.t.getOrInsert(key)
	if !existed {
		*row = newRefSlots(d.slots)
	}
	(*row).touch(dist)
}

func (d *refDP) predict(key uint64, vpn uint64) []uint64 {
	var out []uint64
	if row, ok := d.t.lookup(key); ok {
		for _, pd := range (*row).values() {
			out = append(out, uint64(int64(vpn)+pd))
		}
	}
	return out
}

func (d *refDP) onMiss(ev prefetch.Event) []uint64 {
	if !d.hasPrev {
		d.prevVPN = ev.VPN
		d.hasPrev = true
		return nil
	}
	dist := int64(ev.VPN) - int64(d.prevVPN)
	var out []uint64
	switch d.mode {
	case "DP2":
		if d.nDists >= 1 {
			// Current context: (previous distance, current distance).
			out = d.predict(refDistPairKey(d.d2, dist), ev.VPN)
		}
	default:
		key := uint64(dist)
		if d.mode == "DP-PC" {
			key = refPCDistKey(ev.PC, dist)
		}
		out = d.predict(key, ev.VPN)
		if d.hasKey {
			d.record(d.prevKey, dist)
		}
		d.prevKey = key
		d.hasKey = true
	}
	if d.mode == "DP2" {
		if d.nDists >= 2 {
			d.record(refDistPairKey(d.d1, d.d2), dist)
		}
		d.d1, d.d2 = d.d2, dist
		if d.nDists < 2 {
			d.nDists++
		}
	}
	d.prevVPN = ev.VPN
	return out
}

// --- STMS --------------------------------------------------------------------

// refSTMS keeps the whole miss history in an append-only slice; only the
// last `capacity` positions are considered live, matching the ring.
type refSTMS struct {
	idx      *refTable[uint64]
	hist     []uint64
	capacity uint64
	degree   int
}

func newRefSTMS(entries, ways, degree int) *refSTMS {
	return &refSTMS{
		idx:      newRefTable[uint64](entries, ways),
		capacity: uint64(entries),
		degree:   degree,
	}
}

func (s *refSTMS) onMiss(ev prefetch.Event) []uint64 {
	var out []uint64
	head := uint64(len(s.hist))
	if p, ok := s.idx.lookup(ev.VPN); ok {
		pos := *p
		if head-pos <= s.capacity {
			for i := uint64(1); i <= uint64(s.degree); i++ {
				succ := pos + i
				if succ >= head {
					break
				}
				if v := s.hist[succ]; v != ev.VPN {
					out = append(out, v)
				}
			}
		}
	}
	s.hist = append(s.hist, ev.VPN)
	s.idx.insert(ev.VPN, head)
	return out
}

// --- MASP --------------------------------------------------------------------

type refMASPRow struct {
	prevVPN uint64
	strides *refSlots
}

// refMASP tracks multiple concurrent strides per PC.
type refMASP struct {
	t     *refTable[*refMASPRow]
	slots int
}

func newRefMASP(entries, ways, slots int) *refMASP {
	return &refMASP{t: newRefTable[*refMASPRow](entries, ways), slots: slots}
}

func (m *refMASP) onMiss(ev prefetch.Event) []uint64 {
	row, existed := m.t.getOrInsert(ev.PC)
	if !existed {
		*row = &refMASPRow{prevVPN: ev.VPN, strides: newRefSlots(m.slots)}
		return nil
	}
	r := *row
	stride := int64(ev.VPN) - int64(r.prevVPN)
	r.prevVPN = ev.VPN
	if stride == 0 {
		return nil
	}
	confirmed := r.strides.contains(stride)
	r.strides.touch(stride)
	if !confirmed {
		return nil
	}
	var out []uint64
	for _, s := range r.strides.values() {
		out = append(out, uint64(int64(ev.VPN)+s))
	}
	return out
}

// --- SBFP --------------------------------------------------------------------

type refFreeEntry struct {
	vpn   uint64
	dist  int
	valid bool
}

// refSBFP restates SBFP with a map-backed free distance table. The sampler
// and PQ rotations overwrite fixed slots (invalid holes persist until the
// cursor returns), so they are modelled as fixed-length slices, not queues.
type refSBFP struct {
	fdt         map[int]int
	sampler     []refFreeEntry
	samplerNext int
	pq          []refFreeEntry
	pqNext      int
}

func newRefSBFP() *refSBFP {
	return &refSBFP{
		fdt:     map[int]int{},
		sampler: make([]refFreeEntry, 64),
		pq:      make([]refFreeEntry, 32),
	}
}

func (s *refSBFP) onMiss(ev prefetch.Event) []uint64 {
	for i := range s.pq {
		if s.pq[i].valid && s.pq[i].vpn == ev.VPN {
			if s.fdt[s.pq[i].dist] < 1023 {
				s.fdt[s.pq[i].dist]++
			}
			s.pq[i].valid = false
		}
	}
	for i := range s.sampler {
		if s.sampler[i].valid && s.sampler[i].vpn == ev.VPN {
			if s.fdt[s.sampler[i].dist] < 1023 {
				s.fdt[s.sampler[i].dist]++
			}
			s.sampler[i].valid = false
		}
	}
	var out []uint64
	for d := 1; d <= 7; d++ {
		for _, dist := range [2]int{d, -d} {
			var page uint64
			if dist < 0 {
				if ev.VPN < uint64(-dist) {
					continue
				}
				page = ev.VPN - uint64(-dist)
			} else {
				page = ev.VPN + uint64(dist)
				if page < ev.VPN {
					continue
				}
			}
			if s.fdt[dist] >= 100 {
				out = append(out, page)
				if old := s.pq[s.pqNext]; old.valid && s.fdt[old.dist] > 0 {
					s.fdt[old.dist]--
				}
				s.pq[s.pqNext] = refFreeEntry{vpn: page, dist: dist, valid: true}
				s.pqNext = (s.pqNext + 1) % len(s.pq)
			} else {
				s.sampler[s.samplerNext] = refFreeEntry{vpn: page, dist: dist, valid: true}
				s.samplerNext = (s.samplerNext + 1) % len(s.sampler)
			}
		}
	}
	return out
}
