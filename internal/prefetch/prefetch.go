// Package prefetch defines the TLB-prefetcher contract and implements the
// previously proposed mechanisms the paper compares against: tagged
// Sequential Prefetching (SP), Arbitrary Stride Prefetching (ASP, Chen &
// Baer's reference prediction table), Markov Prefetching (MP, Joseph &
// Grunwald adapted to TLBs) and Recency-based Prefetching (RP, Saulsbury et
// al.). Distance Prefetching — the paper's contribution — lives in
// internal/core.
//
// All mechanisms follow the paper's uniform adaptation: they observe only
// the miss stream coming out of the TLB (never the raw reference stream) and
// deposit predictions into the shared prefetch buffer.
package prefetch

// Event describes one TLB miss, delivered to the prefetcher after the
// prefetch buffer has been probed and the TLB filled.
type Event struct {
	// VPN is the virtual page number that missed.
	VPN uint64
	// PC is the program counter of the referencing instruction (ASP's
	// index; other mechanisms ignore it).
	PC uint64
	// BufferHit reports whether this miss was satisfied by the prefetch
	// buffer (tagged SP uses this to distinguish "first hit to a
	// prefetched entry" from a demand fetch; both trigger prefetches).
	BufferHit bool
	// EvictedVPN is the translation the TLB evicted to make room for the
	// fill, when HasEvicted is true (RP pushes it on its LRU stack).
	EvictedVPN uint64
	HasEvicted bool
}

// Action is a prefetcher's response to a miss.
type Action struct {
	// Prefetches lists the virtual pages to fetch into the prefetch
	// buffer, strongest prediction first. It is the dst slice passed to
	// OnMiss with this miss's predictions appended (nil when the call
	// appended nothing), so it aliases the caller's scratch buffer and is
	// only valid until that buffer's next use.
	Prefetches []uint64
	// StateMemOps counts memory system operations the mechanism performed
	// to maintain its own metadata (RP's LRU-stack pointer writes). These
	// are charged by the timing model in addition to the prefetch fetches
	// themselves. On-chip mechanisms report 0.
	StateMemOps int
}

// Prefetcher is a TLB prefetching mechanism.
type Prefetcher interface {
	// Name returns the mechanism's short name (e.g. "DP", "RP").
	Name() string
	// OnMiss observes one TLB miss and returns the pages to prefetch,
	// appended to dst. The simulator owns dst (a reusable scratch buffer
	// passed with length 0) so that the prediction path performs no
	// allocation in steady state; implementations must append rather than
	// retain or reallocate storage of their own. Passing nil dst is valid
	// (tests do) — append grows a fresh slice.
	OnMiss(ev Event, dst []uint64) Action
	// Reset clears all prediction state (used between runs and by the
	// multiprogramming flush study).
	Reset()
}

// HardwareInfo summarizes a mechanism's hardware cost, the rows of the
// paper's Table 1.
type HardwareInfo struct {
	Mechanism     string
	Rows          string // number of rows ("r" or "one per PTE")
	RowContents   string
	TableLocation string // "on-chip" or "in memory"
	IndexedBy     string
	StateMemOps   string // memory system operations per miss, excluding prefetches
	MaxPrefetches string
}

// HardwareDescriber is implemented by mechanisms that can report their
// Table 1 row.
type HardwareDescriber interface {
	HardwareInfo() HardwareInfo
}

// Nop is a no-op prefetcher: the no-prefetching baseline.
type Nop struct{}

// Name implements Prefetcher.
func (Nop) Name() string { return "none" }

// OnMiss implements Prefetcher.
func (Nop) OnMiss(Event, []uint64) Action { return Action{} }

// Reset implements Prefetcher.
func (Nop) Reset() {}
