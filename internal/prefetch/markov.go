package prefetch

import (
	"fmt"

	"tlbprefetch/internal/table"
)

// Markov implements MP (paper §2.3): a table indexed by the missing virtual
// page number whose rows hold the s pages that missed immediately after this
// page in the past — an approximation of a Markov state-transition diagram
// with LRU-ordered out-edges.
//
// Behaviour on a miss of page q (previous miss was page p):
//  1. predict: if q has a row, prefetch its slot pages (MRU first);
//  2. allocate q's row (empty slots) if absent ("If not found, then this
//     entry is added, and the s slots for this entry are kept empty");
//  3. record: add q into p's slots ("we also go to the entry of the previous
//     page that missed, and add the current miss address into one of its s
//     slots"), evicting LRU within the slots when full. If p's row was
//     itself replaced in the meantime it is re-allocated — the hardware
//     equivalent of an allocate-on-update table write.
type Markov struct {
	t       *table.Table[table.SlotList]
	slots   int
	prevVPN uint64
	hasPrev bool
}

// NewMarkov builds an MP prefetcher: entries rows, ways-associative,
// s prediction slots per row (the paper uses s=2 by default).
func NewMarkov(entries, ways, s int) *Markov {
	return &Markov{
		t:     table.New[table.SlotList](entries, ways),
		slots: s,
	}
}

// Name implements Prefetcher.
func (m *Markov) Name() string { return "MP" }

// ConfigString describes the geometry (for experiment labels).
func (m *Markov) ConfigString() string {
	return fmt.Sprintf("MP,r=%d,w=%d,s=%d", m.t.Entries(), m.t.Ways(), m.slots)
}

// OnMiss implements Prefetcher.
func (m *Markov) OnMiss(ev Event, dst []uint64) Action {
	// 1. Predict from the current page's row; 2. allocate it with empty
	// slots when absent (recycling an evicted row's backing storage).
	if row, existed := m.t.GetOrInsertLazy(ev.VPN); existed {
		for _, succ := range row.Values() {
			dst = append(dst, uint64(succ))
		}
	} else {
		row.Reset(m.slots)
	}
	// 3. Record the transition prev -> current.
	if m.hasPrev && m.prevVPN != ev.VPN {
		row, existed := m.t.GetOrInsertLazy(m.prevVPN)
		if !existed {
			row.Reset(m.slots)
		}
		row.Touch(int64(ev.VPN))
	}
	m.prevVPN = ev.VPN
	m.hasPrev = true
	if len(dst) == 0 {
		return Action{}
	}
	return Action{Prefetches: dst}
}

// Reset implements Prefetcher.
func (m *Markov) Reset() {
	m.t.Reset()
	m.hasPrev = false
}

// TableLen reports occupied rows (diagnostics).
func (m *Markov) TableLen() int { return m.t.Len() }

// HardwareInfo implements HardwareDescriber (Table 1's MP column).
func (m *Markov) HardwareInfo() HardwareInfo {
	return HardwareInfo{
		Mechanism:     "MP",
		Rows:          "r",
		RowContents:   fmt.Sprintf("page # tag, %d prediction page #s", m.slots),
		TableLocation: "on-chip",
		IndexedBy:     "page #",
		StateMemOps:   "0",
		MaxPrefetches: fmt.Sprintf("%d", m.slots),
	}
}
