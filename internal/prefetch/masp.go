package prefetch

import (
	"fmt"

	"tlbprefetch/internal/table"
)

// maspRow is one MASP table row: the page the PC last missed on, plus the
// s most recent distinct strides observed at that PC (LRU ordered).
type maspRow struct {
	prevVPN uint64
	strides table.SlotList
}

// MASP is the multi-stride generalization of ASP (after the agile TLB
// prefetching study of Vavouliotis et al., ISCA 2021): where ASP's
// reference prediction table tracks a single stride per PC behind a
// confirmation state machine, MASP keeps the s most recent distinct strides
// per PC. A stride is confirmed the second time it is observed — it need
// not be consecutive, so interleaved access patterns from one instruction
// (e.g. two arrays walked with different strides) that defeat ASP's
// single-slot row are captured. On confirmation, MASP prefetches the
// current page plus every tracked stride, strongest (most recently
// confirmed) first.
type MASP struct {
	t     *table.Table[maspRow]
	slots int
}

// NewMASP builds a MASP prefetcher: entries rows, ways-associative, with s
// stride slots per row (s == 1 degenerates to a stateless ASP without the
// Chen & Baer confirmation machine).
func NewMASP(entries, ways, s int) *MASP {
	if s <= 0 {
		panic("prefetch: MASP needs positive stride slots")
	}
	return &MASP{
		t:     table.New[maspRow](entries, ways),
		slots: s,
	}
}

// Name implements Prefetcher.
func (m *MASP) Name() string { return "MASP" }

// ConfigString describes the geometry (for experiment labels).
func (m *MASP) ConfigString() string {
	return fmt.Sprintf("MASP,r=%d,w=%d,s=%d", m.t.Entries(), m.t.Ways(), m.slots)
}

// OnMiss implements Prefetcher.
func (m *MASP) OnMiss(ev Event, dst []uint64) Action {
	row, existed := m.t.GetOrInsertLazy(ev.PC)
	if !existed {
		// First sighting of this PC (or its row was evicted): recycle the
		// slot storage and establish the previous page only.
		row.prevVPN = ev.VPN
		row.strides.Reset(m.slots)
		return Action{}
	}
	stride := int64(ev.VPN) - int64(row.prevVPN)
	row.prevVPN = ev.VPN
	if stride == 0 {
		return Action{}
	}
	confirmed := row.strides.Contains(stride)
	row.strides.Touch(stride)
	if !confirmed {
		// New stride: learn it, but don't predict until it repeats.
		return Action{}
	}
	for _, s := range row.strides.Values() {
		dst = append(dst, uint64(int64(ev.VPN)+s))
	}
	return Action{Prefetches: dst}
}

// Reset implements Prefetcher.
func (m *MASP) Reset() { m.t.Reset() }

// TableLen reports occupied rows (diagnostics).
func (m *MASP) TableLen() int { return m.t.Len() }

// HardwareInfo implements HardwareDescriber.
func (m *MASP) HardwareInfo() HardwareInfo {
	return HardwareInfo{
		Mechanism:     "MASP",
		Rows:          "r",
		RowContents:   fmt.Sprintf("PC tag, page #, %d strides", m.slots),
		TableLocation: "on-chip",
		IndexedBy:     "PC",
		StateMemOps:   "0",
		MaxPrefetches: itoa(m.slots),
	}
}

var _ Prefetcher = (*MASP)(nil)
var _ HardwareDescriber = (*MASP)(nil)
