package prefetch

// Sequential implements SP, sequential prefetching (paper §2.1). On a miss
// it prefetches the next virtual page (stride +1). The tagged variant — the
// one the paper evaluates, following Vanderwiel & Lilja's observation that
// it is the most effective — triggers on every demand fetch AND on every
// first hit to a prefetched entry; since both appear in the TLB miss stream,
// the trigger is simply every miss event. The untagged variant triggers only
// on demand fetches (misses that also missed the prefetch buffer).
type Sequential struct {
	tagged bool
}

// NewSequential returns an SP prefetcher. tagged selects the tagged variant.
func NewSequential(tagged bool) *Sequential {
	return &Sequential{tagged: tagged}
}

// Name implements Prefetcher.
func (s *Sequential) Name() string {
	if s.tagged {
		return "SP"
	}
	return "SP-untagged"
}

// OnMiss implements Prefetcher.
func (s *Sequential) OnMiss(ev Event, dst []uint64) Action {
	if !s.tagged && ev.BufferHit {
		return Action{}
	}
	return Action{Prefetches: append(dst, ev.VPN+1)}
}

// Reset implements Prefetcher.
func (s *Sequential) Reset() {}

// HardwareInfo implements HardwareDescriber.
func (s *Sequential) HardwareInfo() HardwareInfo {
	return HardwareInfo{
		Mechanism:     s.Name(),
		Rows:          "none",
		RowContents:   "none (stride fixed at +1)",
		TableLocation: "on-chip",
		IndexedBy:     "n/a",
		StateMemOps:   "0",
		MaxPrefetches: "1",
	}
}
