package prefetch

// AdaptiveSequential implements the Dahlgren/Dubois/Stenström variant of
// sequential prefetching the paper cites in §2.1: the prefetch degree
// (number of sequential units fetched per miss) adapts to the measured
// usefulness of recent prefetches. The paper notes that "simulations have
// shown only slight differences between these schemes" and evaluates only
// tagged SP; this implementation exists to verify that observation (the
// BenchmarkAblationAdaptiveSP target).
//
// Adaptation, following the fixed/adaptive scheme's spirit: usefulness is
// sampled over windows of prefetch outcomes. A buffer hit is a useful
// prefetch; a miss that was not covered is a lost opportunity. If the
// useful fraction in a window exceeds RaiseAt, degree doubles (up to
// MaxDegree); if it falls below LowerAt, degree halves (down to 1).
type AdaptiveSequential struct {
	// MaxDegree caps the prefetch degree (default 4).
	MaxDegree int
	// Window is the number of misses per adaptation decision (default 16).
	Window int
	// RaiseAt and LowerAt are the useful-fraction thresholds (defaults
	// 0.75 and 0.40).
	RaiseAt, LowerAt float64

	degree int
	hits   int
	misses int
}

// NewAdaptiveSequential returns an adaptive SP with the default tuning.
func NewAdaptiveSequential() *AdaptiveSequential {
	return &AdaptiveSequential{}
}

func (a *AdaptiveSequential) defaults() {
	if a.MaxDegree == 0 {
		a.MaxDegree = 4
	}
	if a.Window == 0 {
		a.Window = 16
	}
	if a.RaiseAt == 0 {
		a.RaiseAt = 0.75
	}
	if a.LowerAt == 0 {
		a.LowerAt = 0.40
	}
	if a.degree == 0 {
		a.degree = 1
	}
}

// Name implements Prefetcher.
func (a *AdaptiveSequential) Name() string { return "SP-adaptive" }

// Degree returns the current prefetch degree (diagnostics, tests).
func (a *AdaptiveSequential) Degree() int {
	a.defaults()
	return a.degree
}

// OnMiss implements Prefetcher.
func (a *AdaptiveSequential) OnMiss(ev Event, dst []uint64) Action {
	a.defaults()
	if ev.BufferHit {
		a.hits++
	} else {
		a.misses++
	}
	if a.hits+a.misses >= a.Window {
		frac := float64(a.hits) / float64(a.hits+a.misses)
		switch {
		case frac >= a.RaiseAt && a.degree < a.MaxDegree:
			a.degree *= 2
		case frac <= a.LowerAt && a.degree > 1:
			a.degree /= 2
		}
		a.hits, a.misses = 0, 0
	}
	for d := 1; d <= a.degree; d++ {
		dst = append(dst, ev.VPN+uint64(d))
	}
	return Action{Prefetches: dst}
}

// Reset implements Prefetcher.
func (a *AdaptiveSequential) Reset() {
	a.degree = 1
	a.hits, a.misses = 0, 0
}

// HardwareInfo implements HardwareDescriber.
func (a *AdaptiveSequential) HardwareInfo() HardwareInfo {
	a.defaults()
	return HardwareInfo{
		Mechanism:     a.Name(),
		Rows:          "none",
		RowContents:   "degree counter and usefulness window",
		TableLocation: "on-chip",
		IndexedBy:     "n/a",
		StateMemOps:   "0",
		MaxPrefetches: itoa(a.MaxDegree),
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
