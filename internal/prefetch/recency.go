package prefetch

import (
	"tlbprefetch/internal/pagetable"
)

// Recency implements RP (paper §2.4, after Saulsbury et al.): an LRU stack
// of page table entries threaded through the page table itself. Pages
// referenced at around the same time in the past sit adjacent in the stack,
// so on a miss of page q the mechanism prefetches q's stack neighbours.
//
// Per miss, in order:
//  1. read q's stack neighbours — these are the prefetch candidates;
//  2. unlink q from the stack (it is entering the TLB) — up to 2 pointer
//     writes in memory;
//  3. push the translation the TLB evicted onto the stack top — up to 2
//     more pointer writes.
//
// The pointer writes are memory system operations (the stack lives in the
// page table, not on chip) and are reported via Action.StateMemOps so the
// timing model can charge them; this is RP's fundamental bandwidth cost that
// Table 3 of the paper exposes.
type Recency struct {
	pt     *pagetable.PageTable
	degree int
}

// NewRecency builds an RP prefetcher with its own page table, prefetching
// the missing page's two stack neighbours (the variant the paper
// implements and evaluates).
func NewRecency() *Recency {
	return NewRecencyDegree(2)
}

// NewRecencyDegree builds RP with a wider stack window: degree is the
// maximum number of stack entries prefetched per miss, walked alternately
// outward from the missing page (prev, next, prev's prev, ...). The paper
// notes "there is a variation in [26] with regard to prefetching some more
// entries"; degree 3 reproduces Saulsbury et al.'s three-entry variant.
func NewRecencyDegree(degree int) *Recency {
	if degree < 1 {
		panic("prefetch: RP degree must be at least 1")
	}
	return &Recency{pt: pagetable.New(), degree: degree}
}

// Name implements Prefetcher.
func (r *Recency) Name() string { return "RP" }

// OnMiss implements Prefetcher.
func (r *Recency) OnMiss(ev Event, dst []uint64) Action {
	dst = r.pt.AppendNeighborsN(dst, ev.VPN, r.degree)
	ops := r.pt.Unlink(ev.VPN)
	if ev.HasEvicted {
		ops += r.pt.Push(ev.EvictedVPN)
	}
	act := Action{StateMemOps: ops}
	if len(dst) > 0 {
		act.Prefetches = dst
	}
	return act
}

// Reset implements Prefetcher.
func (r *Recency) Reset() {
	r.pt.Reset()
}

// PageTable exposes the underlying page table for tests and invariant
// checks.
func (r *Recency) PageTable() *pagetable.PageTable { return r.pt }

// HardwareInfo implements HardwareDescriber (Table 1's RP column).
func (r *Recency) HardwareInfo() HardwareInfo {
	maxPref := "2"
	if r.degree != 2 {
		maxPref = itoa(r.degree)
	}
	return HardwareInfo{
		Mechanism:     "RP",
		Rows:          "one per PTE",
		RowContents:   "next, prev pointers",
		TableLocation: "in memory",
		IndexedBy:     "page #",
		StateMemOps:   "4",
		MaxPrefetches: maxPref,
	}
}
