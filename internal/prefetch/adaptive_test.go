package prefetch

import "testing"

func TestAdaptiveSPStartsAtDegreeOne(t *testing.T) {
	a := NewAdaptiveSequential()
	act := a.OnMiss(ev(10), nil)
	wantPrefetches(t, act, 11)
	if a.Degree() != 1 {
		t.Fatalf("initial degree = %d", a.Degree())
	}
}

func TestAdaptiveSPRampsUpOnSuccess(t *testing.T) {
	a := NewAdaptiveSequential()
	// A full window of buffer hits doubles the degree.
	for i := 0; i < 16; i++ {
		a.OnMiss(Event{VPN: uint64(10 + i), BufferHit: true}, nil)
	}
	if a.Degree() != 2 {
		t.Fatalf("degree after hot window = %d, want 2", a.Degree())
	}
	// Prefetches now cover two sequential pages.
	act := a.OnMiss(Event{VPN: 100, BufferHit: true}, nil)
	wantPrefetches(t, act, 101, 102)
	// Two more hot windows saturate at MaxDegree (4).
	for i := 0; i < 32; i++ {
		a.OnMiss(Event{VPN: uint64(200 + i), BufferHit: true}, nil)
	}
	if a.Degree() != 4 {
		t.Fatalf("degree = %d, want cap 4", a.Degree())
	}
	for i := 0; i < 16; i++ {
		a.OnMiss(Event{VPN: uint64(300 + i), BufferHit: true}, nil)
	}
	if a.Degree() != 4 {
		t.Fatalf("degree exceeded cap: %d", a.Degree())
	}
}

func TestAdaptiveSPBacksOffOnFailure(t *testing.T) {
	a := NewAdaptiveSequential()
	for i := 0; i < 16; i++ {
		a.OnMiss(Event{VPN: uint64(10 + i), BufferHit: true}, nil)
	}
	if a.Degree() != 2 {
		t.Fatalf("setup degree = %d", a.Degree())
	}
	// A cold window halves it again.
	for i := 0; i < 16; i++ {
		a.OnMiss(Event{VPN: uint64(1000 + 97*i)}, nil)
	}
	if a.Degree() != 1 {
		t.Fatalf("degree after cold window = %d, want 1", a.Degree())
	}
}

func TestAdaptiveSPReset(t *testing.T) {
	a := NewAdaptiveSequential()
	for i := 0; i < 16; i++ {
		a.OnMiss(Event{VPN: uint64(10 + i), BufferHit: true}, nil)
	}
	a.Reset()
	if a.Degree() != 1 {
		t.Fatalf("degree after reset = %d", a.Degree())
	}
}

func TestAdaptiveSPHardwareInfo(t *testing.T) {
	hi := NewAdaptiveSequential().HardwareInfo()
	if hi.MaxPrefetches != "4" || hi.StateMemOps != "0" {
		t.Fatalf("hardware info: %+v", hi)
	}
}

func TestRecencyDegreeThree(t *testing.T) {
	r := NewRecencyDegree(3)
	// Build stack [4, 3, 2, 1] via evictions.
	for i, e := range []uint64{1, 2, 3, 4} {
		r.OnMiss(Event{VPN: uint64(100 + i), EvictedVPN: e, HasEvicted: true}, nil)
	}
	// Miss on 3: neighbours outward = prev(4), next(2), next's next(1).
	act := r.OnMiss(Event{VPN: 3, EvictedVPN: 100, HasEvicted: true}, nil)
	wantPrefetches(t, act, 4, 2, 1)
	if hi := r.HardwareInfo(); hi.MaxPrefetches != "3" {
		t.Fatalf("hardware info: %+v", hi)
	}
}

func TestRecencyDegreeOne(t *testing.T) {
	r := NewRecencyDegree(1)
	for i, e := range []uint64{1, 2, 3} {
		r.OnMiss(Event{VPN: uint64(100 + i), EvictedVPN: e, HasEvicted: true}, nil)
	}
	// Stack [3, 2, 1]; miss on 2 prefetches only the prev neighbour (3).
	act := r.OnMiss(Event{VPN: 2, EvictedVPN: 100, HasEvicted: true}, nil)
	wantPrefetches(t, act, 3)
}

func TestRecencyDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree 0 accepted")
		}
	}()
	NewRecencyDegree(0)
}
