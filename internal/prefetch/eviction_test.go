package prefetch

import "testing"

// Table-driven eviction-order tests for the two mechanisms whose behaviour
// hinges on replacement order: MP's LRU slot lists and rows (markov.go) and
// RP's page-table LRU stack (recency.go). Each case replays a miss sequence
// step by step and pins the exact predictions (MRU-first) — and, for RP, the
// exact stack layout — after every step, so a replacement-policy regression
// fails on the first divergent step, not as a downstream accuracy drift.

// markovStep is one miss and the predictions it must produce.
type markovStep struct {
	vpn  uint64
	want []uint64
}

func TestMarkovEvictionOrder(t *testing.T) {
	cases := []struct {
		name                 string
		entries, ways, slots int
		steps                []markovStep
	}{
		{
			// Row 1 accumulates successors 2, 3, 4 with only two slots:
			// recording 4 must evict the LRU successor (2), and predictions
			// come out MRU-first.
			name:    "slot list evicts LRU successor",
			entries: 8, ways: 1, slots: 2,
			steps: []markovStep{
				{vpn: 1},                    // allocate row 1
				{vpn: 2},                    // record 1 -> 2
				{vpn: 1, want: []uint64{2}}, // predict; record 2 -> 1
				{vpn: 3},                    // record 1 -> 3
				{vpn: 1, want: []uint64{3, 2}},
				{vpn: 4}, // record 1 -> 4: slot LRU (2) evicted
				{vpn: 1, want: []uint64{4, 3}},
			},
		},
		{
			// Re-recording an already-present successor must promote it to
			// MRU instead of duplicating or evicting.
			name:    "slot list promotes repeated successor",
			entries: 8, ways: 1, slots: 2,
			steps: []markovStep{
				{vpn: 1},
				{vpn: 2},                    // record 1 -> 2
				{vpn: 1, want: []uint64{2}}, // record 2 -> 1
				{vpn: 3},                    // record 1 -> 3
				{vpn: 1, want: []uint64{3, 2}},
				{vpn: 2, want: []uint64{1}}, // record 1 -> 2: promote 2 to MRU
				{vpn: 1, want: []uint64{2, 3}},
			},
		},
		{
			// A 2-entry fully-associative table: allocating a third row
			// evicts the set-LRU row, so its history is gone on return;
			// the record step re-allocates the previous page's row.
			name:    "table evicts LRU row",
			entries: 2, ways: 2, slots: 2,
			steps: []markovStep{
				{vpn: 10},
				{vpn: 20},                     // set MRU order [10, 20] (record promoted 10)
				{vpn: 30},                     // row 20 evicted; record re-allocates it, evicting 10
				{vpn: 10},                     // history lost: no prediction; re-allocated, evicting 30
				{vpn: 30, want: []uint64{10}}, // record at step 4 rebuilt row 30
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMarkov(tc.entries, tc.ways, tc.slots)
			scratch := make([]uint64, 0, 8)
			for i, step := range tc.steps {
				act := m.OnMiss(ev(step.vpn), scratch[:0])
				if !equalU64(act.Prefetches, step.want) {
					t.Fatalf("step %d (miss %d): predictions = %v, want %v",
						i, step.vpn, act.Prefetches, step.want)
				}
			}
		})
	}
}

// recencyStep is one miss event and the predictions plus the exact LRU stack
// (top to bottom) it must leave behind.
type recencyStep struct {
	vpn        uint64
	evicted    uint64
	hasEvicted bool
	want       []uint64
	wantStack  []uint64
}

func TestRecencyStackOrder(t *testing.T) {
	cases := []struct {
		name   string
		degree int
		steps  []recencyStep
	}{
		{
			name:   "degree 2 walks one neighbour per side",
			degree: 2,
			steps: []recencyStep{
				{vpn: 1, wantStack: nil},
				{vpn: 2, evicted: 1, hasEvicted: true, wantStack: []uint64{1}},
				{vpn: 3, evicted: 2, hasEvicted: true, wantStack: []uint64{2, 1}},
				{vpn: 4, evicted: 3, hasEvicted: true, wantStack: []uint64{3, 2, 1}},
				// Mid-stack miss: prev (toward top) first, then next.
				{vpn: 2, evicted: 4, hasEvicted: true, want: []uint64{3, 1}, wantStack: []uint64{4, 3, 1}},
				// Top-of-stack miss: only a next neighbour exists.
				{vpn: 4, evicted: 2, hasEvicted: true, want: []uint64{3}, wantStack: []uint64{2, 3, 1}},
				// Bottom-of-stack miss: only a prev neighbour (3) exists.
				{vpn: 1, evicted: 4, hasEvicted: true, want: []uint64{3}, wantStack: []uint64{4, 2, 3}},
				// Miss outside the stack predicts nothing but still pushes.
				{vpn: 5, evicted: 1, hasEvicted: true, wantStack: []uint64{1, 4, 2, 3}},
				// Pushing a page already linked unlinks it first (defensive
				// re-push) instead of corrupting the list.
				{vpn: 6, evicted: 2, hasEvicted: true, wantStack: []uint64{2, 1, 4, 3}},
			},
		},
		{
			name:   "degree 3 walks two up, one down",
			degree: 3,
			steps: []recencyStep{
				{vpn: 1, wantStack: nil},
				{vpn: 2, evicted: 1, hasEvicted: true, wantStack: []uint64{1}},
				{vpn: 3, evicted: 2, hasEvicted: true, wantStack: []uint64{2, 1}},
				{vpn: 4, evicted: 3, hasEvicted: true, wantStack: []uint64{3, 2, 1}},
				{vpn: 5, evicted: 4, hasEvicted: true, wantStack: []uint64{4, 3, 2, 1}},
				// Alternating walk from 2 in [4,3,2,1]: up 3, down 1, up 4.
				{vpn: 2, evicted: 5, hasEvicted: true, want: []uint64{3, 1, 4}, wantStack: []uint64{5, 4, 3, 1}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecencyDegree(tc.degree)
			scratch := make([]uint64, 0, 8)
			for i, step := range tc.steps {
				e := ev(step.vpn)
				e.EvictedVPN, e.HasEvicted = step.evicted, step.hasEvicted
				act := r.OnMiss(e, scratch[:0])
				if !equalU64(act.Prefetches, step.want) {
					t.Fatalf("step %d (miss %d): predictions = %v, want %v",
						i, step.vpn, act.Prefetches, step.want)
				}
				if got := r.PageTable().StackWalk(); !equalU64(got, step.wantStack) {
					t.Fatalf("step %d (miss %d): stack = %v, want %v",
						i, step.vpn, got, step.wantStack)
				}
			}
		})
	}
}

func equalU64(got, want []uint64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
