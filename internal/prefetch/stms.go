package prefetch

import (
	"fmt"

	"tlbprefetch/internal/table"
)

// STMS implements sampled temporal memory streaming (after Wenisch et al.,
// HPCA 2009, as adapted to TLB miss streams): a global history buffer (GHB)
// holding the last r missing page numbers in miss order, plus an index table
// mapping a page number to its most recent GHB position. On a miss of page
// q, the index locates q's previous occurrence in the history and the pages
// that followed it *then* are prefetched *now* — temporal correlation, the
// generalization of MP from one-successor rows to arbitrary-length streams.
//
// The exemplar implementations keep the GHB as a growable vector and the
// index as a map; here both are flat arrays sized at construction — the GHB
// is a ring of r page numbers addressed by a monotonically increasing
// position counter, and the index is the same set-associative LRU table the
// other mechanisms use — so the miss path stays allocation-free.
type STMS struct {
	idx    *table.Table[uint64] // page # -> absolute GHB position of its last occurrence
	ghb    []uint64             // ring: ghb[pos % r] is the page recorded at position pos
	head   uint64               // next absolute position to write
	degree int
}

// NewSTMS builds an STMS prefetcher: an entries-deep GHB ring with an
// entries-row, ways-associative index table, issuing up to degree
// prefetches (successive history entries) per miss.
func NewSTMS(entries, ways, degree int) *STMS {
	if entries <= 0 {
		panic("prefetch: STMS needs a positive GHB size")
	}
	if degree < 1 {
		panic("prefetch: STMS degree must be at least 1")
	}
	return &STMS{
		idx:    table.New[uint64](entries, ways),
		ghb:    make([]uint64, entries),
		degree: degree,
	}
}

// Name implements Prefetcher.
func (s *STMS) Name() string { return "STMS" }

// ConfigString describes the geometry (for experiment labels).
func (s *STMS) ConfigString() string {
	return fmt.Sprintf("STMS,r=%d,w=%d,d=%d", len(s.ghb), s.idx.Ways(), s.degree)
}

// OnMiss implements Prefetcher.
func (s *STMS) OnMiss(ev Event, dst []uint64) Action {
	capacity := uint64(len(s.ghb))
	// 1. Predict: find the trigger page's previous occurrence and replay
	// the pages that followed it. A position is live iff it is within the
	// last r recorded misses; older index entries are stale (their ring
	// slot has been overwritten) and must be ignored.
	if p, ok := s.idx.Lookup(ev.VPN); ok {
		pos := *p
		if s.head-pos <= capacity {
			for i := uint64(1); i <= uint64(s.degree); i++ {
				succ := pos + i
				if succ >= s.head {
					break
				}
				if v := s.ghb[succ%capacity]; v != ev.VPN {
					dst = append(dst, v)
				}
			}
		}
	}
	// 2. Train: record this miss in the history and point the index at it.
	s.ghb[s.head%capacity] = ev.VPN
	s.idx.Insert(ev.VPN, s.head)
	s.head++
	if len(dst) == 0 {
		return Action{}
	}
	return Action{Prefetches: dst}
}

// Reset implements Prefetcher.
func (s *STMS) Reset() {
	s.idx.Reset()
	s.head = 0
}

// TableLen reports occupied index rows (diagnostics).
func (s *STMS) TableLen() int { return s.idx.Len() }

// HardwareInfo implements HardwareDescriber.
func (s *STMS) HardwareInfo() HardwareInfo {
	return HardwareInfo{
		Mechanism:     "STMS",
		Rows:          "r (GHB) + r (index)",
		RowContents:   "GHB: page #; index: page # tag, GHB position",
		TableLocation: "on-chip",
		IndexedBy:     "page #",
		StateMemOps:   "0",
		MaxPrefetches: itoa(s.degree),
	}
}

var _ Prefetcher = (*STMS)(nil)
var _ HardwareDescriber = (*STMS)(nil)
