package prefetch

import (
	"testing"
)

// ev builds a plain demand-miss event.
func ev(vpn uint64) Event { return Event{VPN: vpn} }

// evPC builds a demand-miss event with a PC.
func evPC(pc, vpn uint64) Event { return Event{PC: pc, VPN: vpn} }

func wantPrefetches(t *testing.T, act Action, want ...uint64) {
	t.Helper()
	if len(act.Prefetches) != len(want) {
		t.Fatalf("prefetches = %v, want %v", act.Prefetches, want)
	}
	for i := range want {
		if act.Prefetches[i] != want[i] {
			t.Fatalf("prefetches = %v, want %v", act.Prefetches, want)
		}
	}
}

func TestNop(t *testing.T) {
	var n Nop
	if got := n.OnMiss(ev(5), nil); len(got.Prefetches) != 0 || got.StateMemOps != 0 {
		t.Fatalf("Nop acted: %+v", got)
	}
	if n.Name() != "none" {
		t.Fatalf("name = %q", n.Name())
	}
}

func TestSequentialTagged(t *testing.T) {
	s := NewSequential(true)
	wantPrefetches(t, s.OnMiss(ev(10), nil), 11)
	// Tagged: a buffer hit also triggers.
	wantPrefetches(t, s.OnMiss(Event{VPN: 11, BufferHit: true}, nil), 12)
}

func TestSequentialUntagged(t *testing.T) {
	s := NewSequential(false)
	wantPrefetches(t, s.OnMiss(ev(10), nil), 11)
	if got := s.OnMiss(Event{VPN: 11, BufferHit: true}, nil); len(got.Prefetches) != 0 {
		t.Fatalf("untagged SP prefetched on buffer hit: %v", got.Prefetches)
	}
}

func TestASPWarmupThenSteady(t *testing.T) {
	a := NewASP(64, 1)
	// Miss 1: allocate row, no prefetch.
	if got := a.OnMiss(evPC(100, 10), nil); len(got.Prefetches) != 0 {
		t.Fatalf("prefetch on first sighting: %v", got.Prefetches)
	}
	// Miss 2: stride 2 learned (initial -> transient), no prefetch yet.
	if got := a.OnMiss(evPC(100, 12), nil); len(got.Prefetches) != 0 {
		t.Fatalf("prefetch before stride confirmed: %v", got.Prefetches)
	}
	// Miss 3: stride confirmed (transient -> steady) -> prefetch 14+2.
	wantPrefetches(t, a.OnMiss(evPC(100, 14), nil), 16)
	// Steady continues.
	wantPrefetches(t, a.OnMiss(evPC(100, 16), nil), 18)
	if a.TableLen() != 1 {
		t.Fatalf("table len = %d, want 1", a.TableLen())
	}
}

func TestASPForgivesOneBlip(t *testing.T) {
	a := NewASP(64, 1)
	a.OnMiss(evPC(7, 100), nil)
	a.OnMiss(evPC(7, 102), nil)
	wantPrefetches(t, a.OnMiss(evPC(7, 104), nil), 106) // steady, stride 2
	// Blip: jump to 200 (steady -> initial, stride kept at 2).
	if got := a.OnMiss(evPC(7, 200), nil); len(got.Prefetches) != 0 {
		t.Fatalf("prefetch on blip: %v", got.Prefetches)
	}
	// Old stride resumes: initial + correct -> steady immediately.
	wantPrefetches(t, a.OnMiss(evPC(7, 202), nil), 204)
}

func TestASPStrideChangeRelearns(t *testing.T) {
	a := NewASP(64, 1)
	a.OnMiss(evPC(7, 0), nil)
	a.OnMiss(evPC(7, 2), nil)
	wantPrefetches(t, a.OnMiss(evPC(7, 4), nil), 6) // steady at 2
	// Stride changes to 5 and stays there.
	if got := a.OnMiss(evPC(7, 9), nil); len(got.Prefetches) != 0 { // steady->initial
		t.Fatalf("prefetch during change: %v", got.Prefetches)
	}
	if got := a.OnMiss(evPC(7, 14), nil); len(got.Prefetches) != 0 { // initial->transient (stride=5)
		t.Fatalf("prefetch during relearn: %v", got.Prefetches)
	}
	wantPrefetches(t, a.OnMiss(evPC(7, 19), nil), 24) // transient->steady
}

func TestASPErraticSuppressed(t *testing.T) {
	a := NewASP(64, 1)
	pages := []uint64{0, 3, 9, 100, 7, 250, 31}
	for _, p := range pages {
		if got := a.OnMiss(evPC(7, p), nil); len(got.Prefetches) != 0 {
			t.Fatalf("erratic stream produced prefetch at page %d: %v", p, got.Prefetches)
		}
	}
}

func TestASPZeroStrideSuppressed(t *testing.T) {
	a := NewASP(64, 1)
	for i := 0; i < 5; i++ {
		if got := a.OnMiss(evPC(7, 42), nil); len(got.Prefetches) != 0 {
			t.Fatalf("zero-stride prefetch: %v", got.Prefetches)
		}
	}
}

func TestASPSeparatePCsIndependent(t *testing.T) {
	a := NewASP(64, 1)
	// Interleaved streams by two PCs, each stride 1.
	var last Action
	for i := uint64(0); i < 4; i++ {
		a.OnMiss(evPC(1, 10+i), nil)
		last = a.OnMiss(evPC(2, 500+2*i), nil)
	}
	// PC 2 is steady at stride 2 by its third miss.
	wantPrefetches(t, last, 500+2*3+2)
	if a.TableLen() != 2 {
		t.Fatalf("table len = %d, want 2", a.TableLen())
	}
}

func TestASPTableConflictEvicts(t *testing.T) {
	// 2-entry direct-mapped table: PCs 0 and 2 conflict (both even set... 2 sets: 0,2 -> set 0).
	a := NewASP(2, 1)
	a.OnMiss(evPC(0, 10), nil)
	a.OnMiss(evPC(2, 50), nil) // evicts PC 0's row
	a.OnMiss(evPC(0, 12), nil) // reallocates: treated as first sighting
	a.OnMiss(evPC(0, 14), nil)
	if got := a.OnMiss(evPC(0, 16), nil); len(got.Prefetches) != 1 {
		// 12 -> 14 (transient), 14 -> 16 (steady): prefetch
		t.Fatalf("relearn after conflict failed: %v", got.Prefetches)
	}
}

func TestMarkovLearnsSuccessors(t *testing.T) {
	m := NewMarkov(64, 64, 2)
	m.OnMiss(ev(1), nil) // allocate 1
	m.OnMiss(ev(2), nil) // allocate 2, record 1->2
	// Second visit to 1 predicts 2.
	wantPrefetches(t, m.OnMiss(ev(1), nil), 2) // also records 2->1
	wantPrefetches(t, m.OnMiss(ev(2), nil), 1)
}

func TestMarkovAlternationTwoSlots(t *testing.T) {
	m := NewMarkov(64, 64, 2)
	seq := []uint64{1, 2, 3, 4, 1, 5, 2, 6, 3, 7, 4, 8}
	for _, p := range seq {
		m.OnMiss(ev(p), nil)
	}
	// Row 1 has seen successors 2 then 5: MRU first = [5, 2].
	act := m.OnMiss(ev(1), nil)
	wantPrefetches(t, act, 5, 2)
}

func TestMarkovSlotLRUEviction(t *testing.T) {
	m := NewMarkov(64, 64, 2)
	// 1 is followed by 10, 20, 30 in turn; s=2 keeps the two most recent.
	for _, succ := range []uint64{10, 20, 30} {
		m.OnMiss(ev(1), nil)
		m.OnMiss(ev(succ), nil)
	}
	act := m.OnMiss(ev(1), nil)
	wantPrefetches(t, act, 30, 20)
}

func TestMarkovSelfLoopNotRecorded(t *testing.T) {
	m := NewMarkov(64, 64, 2)
	m.OnMiss(ev(5), nil)
	m.OnMiss(ev(5), nil) // same page misses twice in a row: no 5->5 edge
	if got := m.OnMiss(ev(5), nil); len(got.Prefetches) != 0 {
		t.Fatalf("self-loop recorded: %v", got.Prefetches)
	}
}

func TestMarkovRowReplacedOnConflict(t *testing.T) {
	// Direct-mapped, 2 rows: pages 2 and 4 map to set 0, page 1/3 to set 1.
	m := NewMarkov(2, 1, 2)
	m.OnMiss(ev(2), nil)
	m.OnMiss(ev(1), nil) // records 2->1
	m.OnMiss(ev(4), nil) // allocating row 4 evicts row 2 (same set), records 1->4
	// 2 must relearn.
	if got := m.OnMiss(ev(2), nil); len(got.Prefetches) != 0 {
		t.Fatalf("row should have been evicted: %v", got.Prefetches)
	}
}

func TestMarkovReset(t *testing.T) {
	m := NewMarkov(64, 64, 2)
	m.OnMiss(ev(1), nil)
	m.OnMiss(ev(2), nil)
	m.Reset()
	if m.TableLen() != 0 {
		t.Fatal("table not cleared")
	}
	// No stale prev page: the first post-reset miss records nothing.
	m.OnMiss(ev(9), nil)
	if got := m.OnMiss(ev(1), nil); len(got.Prefetches) != 0 {
		t.Fatalf("stale state after reset: %v", got.Prefetches)
	}
}

func TestRecencyColdStartNoPrefetch(t *testing.T) {
	r := NewRecency()
	// Nothing evicted yet, nothing in the stack.
	act := r.OnMiss(ev(1), nil)
	if len(act.Prefetches) != 0 || act.StateMemOps != 0 {
		t.Fatalf("cold miss acted: %+v", act)
	}
}

func TestRecencyPushesEvictions(t *testing.T) {
	r := NewRecency()
	r.OnMiss(Event{VPN: 3, EvictedVPN: 1, HasEvicted: true}, nil)
	r.OnMiss(Event{VPN: 4, EvictedVPN: 2, HasEvicted: true}, nil)
	// Stack is now [2, 1] (2 on top).
	got := r.PageTable().StackWalk()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("stack = %v, want [2 1]", got)
	}
}

func TestRecencyPrefetchesNeighbors(t *testing.T) {
	r := NewRecency()
	// Build stack [3, 2, 1] via evictions.
	r.OnMiss(Event{VPN: 10, EvictedVPN: 1, HasEvicted: true}, nil)
	r.OnMiss(Event{VPN: 11, EvictedVPN: 2, HasEvicted: true}, nil)
	r.OnMiss(Event{VPN: 12, EvictedVPN: 3, HasEvicted: true}, nil)
	// Miss on 2 (middle of stack): prefetch neighbours 3 (prev) and 1 (next);
	// 2 is unlinked and the eviction (10) pushed on top.
	act := r.OnMiss(Event{VPN: 2, EvictedVPN: 10, HasEvicted: true}, nil)
	wantPrefetches(t, act, 3, 1)
	// Unlink middle (2 writes) + push on non-empty stack (2 writes).
	if act.StateMemOps != 4 {
		t.Fatalf("state ops = %d, want 4", act.StateMemOps)
	}
	got := r.PageTable().StackWalk()
	if len(got) != 3 || got[0] != 10 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("stack = %v, want [10 3 1]", got)
	}
	if ok, desc := r.PageTable().CheckInvariants(); !ok {
		t.Fatal(desc)
	}
}

func TestRecencyMissOnTopOfStack(t *testing.T) {
	r := NewRecency()
	r.OnMiss(Event{VPN: 10, EvictedVPN: 1, HasEvicted: true}, nil)
	r.OnMiss(Event{VPN: 11, EvictedVPN: 2, HasEvicted: true}, nil)
	// Miss on 2 (top): only neighbour is 1.
	act := r.OnMiss(Event{VPN: 2, EvictedVPN: 10, HasEvicted: true}, nil)
	wantPrefetches(t, act, 1)
}

func TestRecencyReset(t *testing.T) {
	r := NewRecency()
	r.OnMiss(Event{VPN: 3, EvictedVPN: 1, HasEvicted: true}, nil)
	r.Reset()
	if r.PageTable().StackSize() != 0 || r.PageTable().Pages() != 0 {
		t.Fatal("reset left stack state")
	}
}

func TestHardwareInfoTable1(t *testing.T) {
	// The Table 1 rows the paper reports, as exposed by each mechanism.
	cases := []struct {
		d        HardwareDescriber
		index    string
		stateOps string
		location string
	}{
		{NewASP(256, 1), "PC", "0", "on-chip"},
		{NewMarkov(256, 1, 2), "page #", "0", "on-chip"},
		{NewRecency(), "page #", "4", "in memory"},
	}
	for _, c := range cases {
		hi := c.d.HardwareInfo()
		if hi.IndexedBy != c.index || hi.StateMemOps != c.stateOps || hi.TableLocation != c.location {
			t.Errorf("%s: got %+v", hi.Mechanism, hi)
		}
	}
}
