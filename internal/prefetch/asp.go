package prefetch

import (
	"fmt"

	"tlbprefetch/internal/table"
)

// aspState is the Chen & Baer reference-prediction-table state machine.
// A prefetch is issued only from the steady state, which requires the stride
// to have stayed unchanged across at least two successive intervals — the
// paper's "prefetch is initiated only when there is no change in the stride
// for more than two references by that instruction. Such a safeguard tries
// to avoid spurious changes in strides."
type aspState uint8

const (
	aspInitial   aspState = iota // first sighting; stride unestablished
	aspTransient                 // stride just changed; candidate recorded
	aspSteady                    // stride confirmed; predictions issued
	aspNoPred                    // stride erratic; predictions suppressed
)

func (s aspState) String() string {
	switch s {
	case aspInitial:
		return "initial"
	case aspTransient:
		return "transient"
	case aspSteady:
		return "steady"
	case aspNoPred:
		return "no-pred"
	}
	return "?"
}

// aspRow is one RPT row: "(i) the address that was referenced the last time
// the PC came to this instruction, (ii) the corresponding stride, and (iii)
// a state" (paper §2.2). The PC tag is kept by the table.
type aspRow struct {
	prevVPN uint64
	stride  int64
	state   aspState
}

// ASP is arbitrary stride prefetching: a PC-indexed reference prediction
// table with one slot per row, issuing at most one prefetch (current page +
// stride) per miss.
type ASP struct {
	t *table.Table[aspRow]
}

// NewASP builds an ASP prefetcher with an entries-row, ways-associative RPT.
// The paper sweeps entries in {32..1024}; ways=1 (direct-mapped) is the
// configuration shown in its figures.
func NewASP(entries, ways int) *ASP {
	return &ASP{t: table.New[aspRow](entries, ways)}
}

// Name implements Prefetcher.
func (a *ASP) Name() string { return "ASP" }

// ConfigString describes the table geometry (for experiment labels).
func (a *ASP) ConfigString() string {
	return fmt.Sprintf("ASP,r=%d,w=%d", a.t.Entries(), a.t.Ways())
}

// OnMiss implements Prefetcher.
func (a *ASP) OnMiss(ev Event, dst []uint64) Action {
	row, ok := a.t.Lookup(ev.PC)
	if !ok {
		a.t.Insert(ev.PC, aspRow{prevVPN: ev.VPN, state: aspInitial})
		return Action{}
	}
	stride := int64(ev.VPN) - int64(row.prevVPN)
	correct := stride == row.stride
	switch row.state {
	case aspInitial:
		if correct {
			row.state = aspSteady
		} else {
			row.stride = stride
			row.state = aspTransient
		}
	case aspTransient:
		if correct {
			row.state = aspSteady
		} else {
			row.stride = stride
			row.state = aspNoPred
		}
	case aspSteady:
		if !correct {
			// Chen & Baer: steady + incorrect -> initial, stride kept
			// (one mispredict is forgiven before relearning).
			row.state = aspInitial
		}
	case aspNoPred:
		if correct {
			row.state = aspTransient
		} else {
			row.stride = stride
		}
	}
	row.prevVPN = ev.VPN
	if row.state == aspSteady && row.stride != 0 {
		return Action{Prefetches: append(dst, uint64(int64(ev.VPN)+row.stride))}
	}
	return Action{}
}

// Reset implements Prefetcher.
func (a *ASP) Reset() { a.t.Reset() }

// TableLen reports occupied RPT rows (diagnostics).
func (a *ASP) TableLen() int { return a.t.Len() }

// HardwareInfo implements HardwareDescriber (Table 1's ASP column).
func (a *ASP) HardwareInfo() HardwareInfo {
	return HardwareInfo{
		Mechanism:     "ASP",
		Rows:          "r",
		RowContents:   "PC tag, page #, stride and state",
		TableLocation: "on-chip",
		IndexedBy:     "PC",
		StateMemOps:   "0",
		MaxPrefetches: "1",
	}
}
