package core

import (
	"testing"
	"testing/quick"

	"tlbprefetch/internal/prefetch"
)

func ev(vpn uint64) prefetch.Event { return prefetch.Event{VPN: vpn} }

func wantPrefetches(t *testing.T, act prefetch.Action, want ...uint64) {
	t.Helper()
	if len(act.Prefetches) != len(want) {
		t.Fatalf("prefetches = %v, want %v", act.Prefetches, want)
	}
	for i := range want {
		if act.Prefetches[i] != want[i] {
			t.Fatalf("prefetches = %v, want %v", act.Prefetches, want)
		}
	}
}

// The paper's worked example (§2.5): reference string 1, 2, 4, 5, 7, 8.
// "if we just keep track of the fact that a distance of 1 is followed by a
// (predicted) distance of 2 and vice versa, then we would need only a 2
// entry table to make a prediction."
func TestDistancePaperExample(t *testing.T) {
	d := NewDistance(256, 1, 2)
	if got := d.OnMiss(ev(1), nil); len(got.Prefetches) != 0 {
		t.Fatalf("first miss acted: %v", got.Prefetches)
	}
	if got := d.OnMiss(ev(2), nil); len(got.Prefetches) != 0 { // dist 1, table empty
		t.Fatalf("second miss acted: %v", got.Prefetches)
	}
	if got := d.OnMiss(ev(4), nil); len(got.Prefetches) != 0 { // dist 2, learns 1->2
		t.Fatalf("third miss acted: %v", got.Prefetches)
	}
	wantPrefetches(t, d.OnMiss(ev(5), nil), 7)  // dist 1: predicts +2 -> page 7
	wantPrefetches(t, d.OnMiss(ev(7), nil), 8)  // dist 2: predicts +1 -> page 8
	wantPrefetches(t, d.OnMiss(ev(8), nil), 10) // dist 1: predicts +2 -> page 10
	if d.TableLen() != 2 {
		t.Fatalf("table len = %d; the paper's point is that 2 rows suffice", d.TableLen())
	}
}

func TestDistanceSequentialScan(t *testing.T) {
	// Pure sequential misses: one row ("1 -> 1") suffices; prefetching
	// starts on the fourth miss.
	d := NewDistance(32, 1, 2)
	d.OnMiss(ev(100), nil) // establishes prev page
	d.OnMiss(ev(101), nil) // dist 1; no history yet
	d.OnMiss(ev(102), nil) // dist 1; learns 1->1
	for p := uint64(103); p < 120; p++ {
		wantPrefetches(t, d.OnMiss(ev(p), nil), p+1)
	}
	if d.TableLen() != 1 {
		t.Fatalf("table len = %d, want 1", d.TableLen())
	}
}

func TestDistanceNegativeStrides(t *testing.T) {
	// Backward scan: distance -1 repeating.
	d := NewDistance(32, 1, 2)
	d.OnMiss(ev(500), nil)
	d.OnMiss(ev(499), nil)
	d.OnMiss(ev(498), nil)
	wantPrefetches(t, d.OnMiss(ev(497), nil), 496)
}

func TestDistanceAlternatingMotif(t *testing.T) {
	// Distances cycle +3, -1: pages 0, 3, 2, 5, 4, 7, 6, ...
	d := NewDistance(32, 1, 2)
	pages := []uint64{0, 3, 2, 5, 4, 7, 6, 9, 8}
	// Action.Prefetches is only valid until the next OnMiss, so copy.
	var acts []prefetch.Action
	for _, p := range pages {
		a := d.OnMiss(ev(p), nil)
		a.Prefetches = append([]uint64(nil), a.Prefetches...)
		acts = append(acts, a)
	}
	// After one full cycle both rows exist: miss of 4 (dist -1) predicts
	// 4+3 = 7; miss of 7 (dist +3) predicts 7-1 = 6.
	wantPrefetches(t, acts[4], 7)
	wantPrefetches(t, acts[5], 6)
	wantPrefetches(t, acts[6], 9)
	if d.TableLen() != 2 {
		t.Fatalf("table len = %d, want 2", d.TableLen())
	}
}

func TestDistanceMultipleSlots(t *testing.T) {
	// Distance 1 is followed by 2 and by 5 in turn; s=2 holds both and
	// issues both, MRU first.
	d := NewDistance(64, 1, 2)
	// Build: 0,1,3 teaches 1->2. Then 10,11,16 teaches 1->5.
	for _, p := range []uint64{0, 1, 3} {
		d.OnMiss(ev(p), nil)
	}
	for _, p := range []uint64{10, 11} {
		d.OnMiss(ev(p), nil)
	}
	d.OnMiss(ev(16), nil) // dist 5 after dist 1: row(1) = [5, 2]
	// Next time distance 1 appears, both prefetches issue (MRU first).
	d.OnMiss(ev(100), nil)
	act := d.OnMiss(ev(101), nil) // dist 1
	wantPrefetches(t, act, 106, 103)
}

func TestDistanceSlotLRU(t *testing.T) {
	// s=1: only the most recent successor is kept.
	d := NewDistance(64, 1, 1)
	for _, p := range []uint64{0, 1, 3} { // 1 -> 2
		d.OnMiss(ev(p), nil)
	}
	for _, p := range []uint64{10, 11, 16} { // 1 -> 5 replaces 1 -> 2
		d.OnMiss(ev(p), nil)
	}
	d.OnMiss(ev(100), nil)
	act := d.OnMiss(ev(101), nil)
	wantPrefetches(t, act, 106)
}

func TestDistanceReset(t *testing.T) {
	d := NewDistance(32, 1, 2)
	for _, p := range []uint64{0, 1, 2, 3} {
		d.OnMiss(ev(p), nil)
	}
	d.Reset()
	if d.TableLen() != 0 {
		t.Fatal("table not cleared")
	}
	if got := d.OnMiss(ev(50), nil); len(got.Prefetches) != 0 {
		t.Fatal("stale prev page after reset")
	}
	if got := d.OnMiss(ev(51), nil); len(got.Prefetches) != 0 {
		t.Fatal("stale history after reset")
	}
}

func TestDistanceTableConflict(t *testing.T) {
	// 2-row direct-mapped table: distances 1 and 3 conflict (1 % 2 == 3 % 2).
	d := NewDistance(2, 1, 2)
	for _, p := range []uint64{0, 1, 2, 3} { // learns 1 -> 1 in row "1"
		d.OnMiss(ev(p), nil)
	}
	// Distances 3,3,3 alias into the same set, evicting row 1.
	for _, p := range []uint64{100, 103, 106, 109} {
		d.OnMiss(ev(p), nil)
	}
	// Back to stride 1: the first prediction needs one relearn round.
	d.OnMiss(ev(200), nil) // dist 91 (noise)
	d.OnMiss(ev(201), nil) // dist 1: row 1 was evicted -> no prediction expected
	got := d.OnMiss(ev(202), nil)
	// Depending on aliasing the row may or may not be back; the point of
	// this test is only that nothing panics and predictions resume within
	// one round.
	_ = got
	act := d.OnMiss(ev(203), nil)
	wantPrefetches(t, act, 204)
}

// Property: DP is deterministic — identical miss streams produce identical
// prefetch streams.
func TestQuickDistanceDeterminism(t *testing.T) {
	f := func(pages []uint16) bool {
		d1 := NewDistance(64, 2, 2)
		d2 := NewDistance(64, 2, 2)
		for _, p := range pages {
			a1 := d1.OnMiss(ev(uint64(p)), nil)
			a2 := d2.OnMiss(ev(uint64(p)), nil)
			if len(a1.Prefetches) != len(a2.Prefetches) {
				return false
			}
			for i := range a1.Prefetches {
				if a1.Prefetches[i] != a2.Prefetches[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: DP never issues more than s prefetches per miss.
func TestQuickDistanceBoundedDegree(t *testing.T) {
	f := func(pages []uint16, sHint uint8) bool {
		s := int(sHint%6) + 1
		d := NewDistance(64, 1, s)
		for _, p := range pages {
			if len(d.OnMiss(ev(uint64(p)), nil).Prefetches) > s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistancePCVariantLearns(t *testing.T) {
	d := NewDistancePC(64, 1, 2)
	// Same PC, stride 1: behaves like DP.
	mk := func(pc, vpn uint64) prefetch.Event { return prefetch.Event{PC: pc, VPN: vpn} }
	d.OnMiss(mk(9, 0), nil)
	d.OnMiss(mk(9, 1), nil)
	d.OnMiss(mk(9, 2), nil)
	act := d.OnMiss(mk(9, 3), nil)
	wantPrefetches(t, act, 4)
	// A different PC with the same distance has its own row: no carryover.
	d2 := NewDistancePC(64, 1, 2)
	d2.OnMiss(mk(1, 0), nil)
	d2.OnMiss(mk(1, 1), nil)
	d2.OnMiss(mk(1, 2), nil) // learned under PC 1
	d2.OnMiss(mk(2, 3), nil)
	if got := d2.OnMiss(mk(2, 4), nil); len(got.Prefetches) != 0 {
		t.Fatalf("PC-qualified row leaked across PCs: %v", got.Prefetches)
	}
}

func TestDistance2VariantLearns(t *testing.T) {
	d := NewDistance2(64, 1, 2)
	// Motif +1,+2 repeating: pages 0,1,3,4,6,7,9...
	pages := []uint64{0, 1, 3, 4, 6, 7, 9}
	var last prefetch.Action
	for _, p := range pages {
		last = d.OnMiss(ev(p), nil)
	}
	// By the second repetition the pair (1,2) predicts 1 and (2,1) predicts
	// 2; the final miss (page 9, pair (2)) must predict 9+1 = 10.
	wantPrefetches(t, last, 10)
}

func TestDistance2Reset(t *testing.T) {
	d := NewDistance2(64, 1, 2)
	for _, p := range []uint64{0, 1, 3, 4, 6} {
		d.OnMiss(ev(p), nil)
	}
	d.Reset()
	for _, p := range []uint64{100, 101, 103} {
		if got := d.OnMiss(ev(p), nil); len(got.Prefetches) != 0 {
			t.Fatal("stale state after reset")
		}
	}
}

func BenchmarkDistanceOnMiss(b *testing.B) {
	d := NewDistance(256, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternating distances exercise lookup+update on every miss.
		d.OnMiss(ev(uint64(i)*uint64(1+i%3)), nil)
	}
}
