package core

import (
	"fmt"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/table"
)

// The paper's §2.5 and §4 name two indexing refinements as open research
// questions: "One could, perhaps, envision indexing this table using the PC
// value together with the distance, or using a set of consecutive
// distances." Both are implemented here for the ablation experiment
// (cmd/experiments ext-dpvariants): they reuse DP's row format and differ
// only in the key that indexes the table.

// DistancePC is the PC⊕distance-indexed DP variant. The intuition: the same
// distance may mean different things at different code sites, so qualifying
// the index with the PC can disambiguate — at the cost of losing DP's
// PC-agnostic generalization across loop nests.
type DistancePC struct {
	t     *table.Table[table.SlotList]
	slots int

	prevVPN uint64
	hasPrev bool
	prevKey uint64
	hasKey  bool
}

// NewDistancePC builds the PC+distance variant.
func NewDistancePC(entries, ways, s int) *DistancePC {
	return &DistancePC{
		t:     table.New[table.SlotList](entries, ways),
		slots: s,
	}
}

func pcDistKey(pc uint64, dist int64) uint64 {
	// Fold the PC into the high bits so the distance still picks the set
	// (low bits), mirroring how hardware would concatenate index fields.
	return uint64(dist) ^ (pc << 32) ^ (pc >> 16)
}

// Name implements prefetch.Prefetcher.
func (d *DistancePC) Name() string { return "DP-PC" }

// ConfigString describes the geometry.
func (d *DistancePC) ConfigString() string {
	return fmt.Sprintf("DP-PC,r=%d,w=%d,s=%d", d.t.Entries(), d.t.Ways(), d.slots)
}

// OnMiss implements prefetch.Prefetcher.
func (d *DistancePC) OnMiss(ev prefetch.Event, dst []uint64) prefetch.Action {
	if !d.hasPrev {
		d.prevVPN = ev.VPN
		d.hasPrev = true
		return prefetch.Action{}
	}
	dist := int64(ev.VPN) - int64(d.prevVPN)
	key := pcDistKey(ev.PC, dist)
	if row, ok := d.t.Lookup(key); ok {
		for _, pd := range row.Values() {
			dst = append(dst, uint64(int64(ev.VPN)+pd))
		}
	}
	if d.hasKey {
		row, existed := d.t.GetOrInsertLazy(d.prevKey)
		if !existed {
			row.Reset(d.slots)
		}
		row.Touch(dist)
	}
	d.prevVPN = ev.VPN
	d.prevKey = key
	d.hasKey = true
	if len(dst) == 0 {
		return prefetch.Action{}
	}
	return prefetch.Action{Prefetches: dst}
}

// Reset implements prefetch.Prefetcher.
func (d *DistancePC) Reset() {
	d.t.Reset()
	d.hasPrev, d.hasKey = false, false
}

// Distance2 is the two-consecutive-distances variant: the table key is the
// pair (previous distance, current distance), giving the predictor a longer
// context — sharper on long repeating motifs, slower to warm up, and more
// rows needed for the same coverage.
type Distance2 struct {
	t     *table.Table[table.SlotList]
	slots int

	prevVPN   uint64
	hasPrev   bool
	d1, d2    int64 // last two distances (d2 is the most recent)
	haveDists int   // 0, 1 or 2
}

// NewDistance2 builds the two-distance variant.
func NewDistance2(entries, ways, s int) *Distance2 {
	return &Distance2{
		t:     table.New[table.SlotList](entries, ways),
		slots: s,
	}
}

func distPairKey(d1, d2 int64) uint64 {
	// Mix the older distance into the high bits; the newest distance keeps
	// the low bits (set index), like DP.
	return uint64(d2) ^ (uint64(d1) << 27) ^ (uint64(d1) >> 37)
}

// Name implements prefetch.Prefetcher.
func (d *Distance2) Name() string { return "DP2" }

// ConfigString describes the geometry.
func (d *Distance2) ConfigString() string {
	return fmt.Sprintf("DP2,r=%d,w=%d,s=%d", d.t.Entries(), d.t.Ways(), d.slots)
}

// OnMiss implements prefetch.Prefetcher.
func (d *Distance2) OnMiss(ev prefetch.Event, dst []uint64) prefetch.Action {
	if !d.hasPrev {
		d.prevVPN = ev.VPN
		d.hasPrev = true
		return prefetch.Action{}
	}
	dist := int64(ev.VPN) - int64(d.prevVPN)
	if d.haveDists >= 1 {
		// Current context: (previous distance, current distance).
		key := distPairKey(d.d2, dist)
		if row, ok := d.t.Lookup(key); ok {
			for _, pd := range row.Values() {
				dst = append(dst, uint64(int64(ev.VPN)+pd))
			}
		}
	}
	if d.haveDists >= 2 {
		// Record: the pair (d1, d2) was followed by dist.
		row, existed := d.t.GetOrInsertLazy(distPairKey(d.d1, d.d2))
		if !existed {
			row.Reset(d.slots)
		}
		row.Touch(dist)
	}
	d.prevVPN = ev.VPN
	d.d1, d.d2 = d.d2, dist
	if d.haveDists < 2 {
		d.haveDists++
	}
	if len(dst) == 0 {
		return prefetch.Action{}
	}
	return prefetch.Action{Prefetches: dst}
}

// Reset implements prefetch.Prefetcher.
func (d *Distance2) Reset() {
	d.t.Reset()
	d.hasPrev = false
	d.haveDists = 0
}

var _ prefetch.Prefetcher = (*DistancePC)(nil)
var _ prefetch.Prefetcher = (*Distance2)(nil)
