// Package core implements Distance Prefetching (DP), the contribution of
// Kandiraju & Sivasubramaniam, "Going the Distance for TLB Prefetching"
// (ISCA 2002), plus the indexing variants the paper flags as future work
// (PC+distance and two-distance indexing).
//
// DP keeps a small on-chip table indexed by the *distance* — the signed
// page-number difference between the current TLB miss and the previous one.
// Each row holds the s distances that followed this distance in the past
// (LRU ordered). On a miss, the current distance is computed, the matching
// row's predicted distances are added to the current page to form prefetch
// addresses, and the current distance is recorded as a successor of the
// previous distance.
//
// Because regular strides collapse into a single row ("distance 1 is
// followed by distance 1") and irregular-but-repeating stride patterns need
// only one row per distinct distance, DP captures both stride-typed and
// history-typed reference behaviour in a table of 32-256 entries, where
// page-indexed history mechanisms need a row per page.
package core

import (
	"fmt"

	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/table"
)

// Distance is the DP prefetcher. It implements prefetch.Prefetcher.
//
// The worked example from the paper (§2.5): for the reference string
// 1, 2, 4, 5, 7, 8 the table learns "1 → 2" and "2 → 1" in just two rows,
// whereas Markov prefetching needs a row per page (six).
type Distance struct {
	t     *table.Table[table.SlotList]
	slots int

	prevVPN  uint64
	hasPrev  bool
	prevDist int64
	hasDist  bool
}

// NewDistance builds a DP prefetcher: entries rows, ways-associative,
// s prediction slots per row. The paper's recommended operating point is a
// direct-mapped 32-256 entry table with s=2.
func NewDistance(entries, ways, s int) *Distance {
	return &Distance{
		t:     table.New[table.SlotList](entries, ways),
		slots: s,
	}
}

// Name implements prefetch.Prefetcher.
func (d *Distance) Name() string { return "DP" }

// ConfigString describes the geometry (for experiment labels).
func (d *Distance) ConfigString() string {
	return fmt.Sprintf("DP,r=%d,w=%d,s=%d", d.t.Entries(), d.t.Ways(), d.slots)
}

// OnMiss implements prefetch.Prefetcher, following the five steps of the
// paper's Figure 6:
//  1. calculate the current distance;
//  2. index the table by that distance;
//  3. if present, add the predicted distances to the current page # and
//     issue those prefetches;
//  4. store the current distance as a predicted distance of the previous
//     distance;
//  5. overwrite the previous distance by the current distance.
func (d *Distance) OnMiss(ev prefetch.Event, dst []uint64) prefetch.Action {
	if !d.hasPrev {
		// First miss: establishes the previous page only.
		d.prevVPN = ev.VPN
		d.hasPrev = true
		return prefetch.Action{}
	}
	dist := int64(ev.VPN) - int64(d.prevVPN)     // step 1
	if row, ok := d.t.Lookup(uint64(dist)); ok { // step 2
		for _, pd := range row.Values() { // step 3
			dst = append(dst, uint64(int64(ev.VPN)+pd))
		}
	}
	if d.hasDist { // step 4
		row, existed := d.t.GetOrInsertLazy(uint64(d.prevDist))
		if !existed {
			row.Reset(d.slots)
		}
		row.Touch(dist)
	}
	d.prevVPN = ev.VPN // step 5
	d.prevDist = dist
	d.hasDist = true
	if len(dst) == 0 {
		return prefetch.Action{}
	}
	return prefetch.Action{Prefetches: dst}
}

// Reset implements prefetch.Prefetcher.
func (d *Distance) Reset() {
	d.t.Reset()
	d.hasPrev = false
	d.hasDist = false
}

// TableLen reports occupied rows (diagnostics; the paper's point is that
// this stays tiny for strided codes).
func (d *Distance) TableLen() int { return d.t.Len() }

// HardwareInfo implements prefetch.HardwareDescriber (Table 1's DP column).
func (d *Distance) HardwareInfo() prefetch.HardwareInfo {
	return prefetch.HardwareInfo{
		Mechanism:     "DP",
		Rows:          "r",
		RowContents:   fmt.Sprintf("distance tag, %d prediction distances", d.slots),
		TableLocation: "on-chip",
		IndexedBy:     "distance",
		StateMemOps:   "0",
		MaxPrefetches: fmt.Sprintf("%d", d.slots),
	}
}

var _ prefetch.Prefetcher = (*Distance)(nil)
var _ prefetch.HardwareDescriber = (*Distance)(nil)
