// Codec reproduces the block-codec scenario where the paper finds DP to be
// "the only mechanism which makes any noticeable predictions" (gsm, jpeg):
// a fixed intra-frame offset motif applied to a fresh frame each time.
//
// The frames are new pages, so page-indexed history (MP, RP) never sees a
// repeat. A single code path walks the whole motif, so the PC-indexed
// stride table (ASP) sees a changing stride on every miss. Only the
// *distance pattern* repeats — frame after frame — and DP locks onto it.
//
// The example also shows the dilution effect the paper reports: with
// data-dependent noise mixed in, DP's accuracy drops toward the paper's
// "does not exceed 20%" band while the others stay at zero.
package main

import (
	"fmt"

	"tlbprefetch"
)

// frame processes one frame at the given base page: the motif of intra-
// frame page offsets, each touched 16 times (the codec's arithmetic),
// optionally replacing steps with pseudo-random pages (data-dependent
// lookups).
func frame(s *tlbprefetch.Simulator, base uint64, motif []int64, noise func() (uint64, bool)) {
	for _, d := range motif {
		page := uint64(int64(base) + d)
		if noise != nil {
			if np, ok := noise(); ok {
				page = np
			}
		}
		for r := 0; r < 16; r++ {
			s.Ref(0x500000, page*4096+uint64(r*128))
		}
	}
}

func run(name string, noiseEvery int) {
	motif := []int64{0, 2, 5, 1, 4, 3, 6} // fixed sub-band visit order
	mechs := []tlbprefetch.Prefetcher{
		tlbprefetch.NewDistance(256, 1, 2),
		tlbprefetch.NewASP(256, 1),
		tlbprefetch.NewRecency(),
		tlbprefetch.NewMarkov(1024, 1, 2),
	}
	fmt.Printf("%s:\n", name)
	for _, pf := range mechs {
		s := tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), pf)
		base := uint64(1 << 21)
		rng := uint64(0x9e3779b97f4a7c15)
		step := 0
		for f := 0; f < 30000; f++ {
			var noise func() (uint64, bool)
			if noiseEvery > 0 {
				noise = func() (uint64, bool) {
					step++
					if step%noiseEvery != 0 {
						return 0, false
					}
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return base + rng%150, true
				}
			}
			frame(s, base, motif, noise)
			base += 8 // next frame: fresh pages
		}
		st := s.Stats()
		fmt.Printf("  %-4s accuracy %.3f  (misses %d)\n", pf.Name(), st.Accuracy(), st.Misses)
	}
	fmt.Println()
}

func main() {
	fmt.Println("block codec: fixed page-offset motif over fresh frames")
	fmt.Println()
	run("clean motif (mpeg-dec regime: DP well ahead)", 0)
	run("noisy motif (gsm/jpeg regime: DP modest, everyone else ~0)", 2)
}
