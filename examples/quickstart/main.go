// Quickstart: run Distance Prefetching against one of the paper's workload
// models and print the paper's headline metric — prediction accuracy, the
// fraction of TLB misses satisfied by the prefetch buffer.
package main

import (
	"fmt"

	"tlbprefetch"
)

func main() {
	cfg := tlbprefetch.DefaultConfig() // 128-entry FA TLB, 16-entry buffer, 4 KB pages

	w, ok := tlbprefetch.WorkloadByName("swim")
	if !ok {
		panic("workload not found")
	}

	fmt.Printf("workload %s (%s)\n", w.Name, w.Suite)
	fmt.Printf("model: %s\n\n", w.PaperNote)

	for _, pf := range []tlbprefetch.Prefetcher{
		tlbprefetch.NewDistance(256, 1, 2), // the paper's contribution, at its recommended operating point
		tlbprefetch.NewRecency(),
		tlbprefetch.NewASP(256, 1),
		tlbprefetch.NewMarkov(256, 1, 2),
	} {
		st := tlbprefetch.RunWorkload(cfg, pf, w, 2_000_000)
		fmt.Printf("%-4s accuracy %.3f  (misses %d, buffer hits %d, extra memory ops %d)\n",
			pf.Name(), st.Accuracy(), st.Misses, st.BufferHits, st.MemOps())
	}
}
