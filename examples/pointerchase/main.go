// Pointerchase reproduces the paper's Table 3 argument on a pointer-
// intensive workload: Recency-based Prefetching (RP) wins the accuracy
// contest — the linked structure is traversed in the same irregular order
// every time, which is exactly the history RP's LRU stack replays — yet
// Distance Prefetching wins on execution cycles, because RP pays four
// pointer-manipulation memory operations on every miss while DP's table
// lives on chip.
//
// The timing model is the paper's: 100-cycle TLB miss penalty, 50-cycle
// prefetch memory operations contending only with other prefetch traffic,
// and RP's skip-prefetch-when-busy rule.
package main

import (
	"fmt"

	"tlbprefetch"
)

func main() {
	w, ok := tlbprefetch.WorkloadByName("mcf")
	if !ok {
		panic("mcf workload missing")
	}
	const refs = 2_000_000

	fmt.Printf("workload %s: %s\n\n", w.Name, w.PaperNote)

	tc := tlbprefetch.DefaultTimingConfig()
	base := tlbprefetch.RunWorkloadTimed(tc, nil, w, refs)
	fmt.Printf("no prefetching: %12d cycles (CPI %.2f, miss rate %.3f)\n\n",
		base.Cycles, base.CPI(), base.MissRate())

	type row struct {
		name string
		st   tlbprefetch.TimingStats
	}
	var rows []row
	for _, pf := range []tlbprefetch.Prefetcher{
		tlbprefetch.NewRecency(),
		tlbprefetch.NewDistance(256, 1, 2),
	} {
		rows = append(rows, row{pf.Name(), tlbprefetch.RunWorkloadTimed(tc, pf, w, refs)})
	}

	fmt.Printf("%-4s %-10s %-10s %-10s %-12s\n", "mech", "normalized", "accuracy", "memops", "skipped")
	for _, r := range rows {
		fmt.Printf("%-4s %-10.3f %-10.3f %-10d %-12d\n",
			r.name,
			float64(r.st.Cycles)/float64(base.Cycles),
			r.st.Accuracy(),
			r.st.MemOps(),
			r.st.SkippedPref)
	}

	fmt.Println()
	fmt.Println("RP predicts more misses but moves 4 stack pointers in memory per miss;")
	fmt.Println("DP's lower accuracy still buys more cycles because its table is on chip.")
}
