// Matrixsweep reproduces the scientific-computing scenario that motivates
// Distance Prefetching (the paper's swim/mgrid/applu discussion): blocked
// loop nests sweep the same arrays in different orders with different code.
//
// Page-indexed history (MP, RP) keys its predictions by which page follows
// which — scrambled every time the traversal order changes. PC-indexed
// stride detection (ASP) must re-lock its stride at every tile boundary of
// every nest. Only the distance pattern — "after a +1-page hop comes
// another +1-page hop; after the inter-array hop comes the next array's
// +1" — persists across nests, which is exactly what DP's table stores.
//
// The example builds the scenario from the public API (no canned workload)
// so the structure is visible, then shows how each mechanism fares.
package main

import (
	"fmt"

	"tlbprefetch"
)

// sweep emits one blocked pass over three arrays: for each tile of
// `tile` pages, every page of each array is touched `refsPerPage` times.
// order enumerates tile indices; backward sweeps descend within each tile
// (as a backward stencil sweep does); pcBase distinguishes this nest's code.
func sweep(s *tlbprefetch.Simulator, bases [3]uint64, pages, tile, refsPerPage int, order []int, backward bool, pcBase uint64) {
	for _, t := range order {
		lo, hi := t*tile, (t+1)*tile
		if hi > pages {
			hi = pages
		}
		for i := lo; i < hi; i++ {
			p := i
			if backward {
				p = hi - 1 - (i - lo) // descend within the tile
			}
			for r := 0; r < refsPerPage; r++ {
				for k, b := range bases {
					addr := (b+uint64(p))*4096 + uint64(r*64)
					s.Ref(pcBase+uint64(k)*4, addr)
				}
			}
		}
	}
}

func orders(ntiles int) [][]int {
	fwd := make([]int, ntiles)
	bwd := make([]int, ntiles)
	rb := make([]int, 0, ntiles)
	for i := 0; i < ntiles; i++ {
		fwd[i] = i
		bwd[i] = ntiles - 1 - i
	}
	for i := 0; i < ntiles; i += 2 {
		rb = append(rb, i)
	}
	for i := 1; i < ntiles; i += 2 {
		rb = append(rb, i)
	}
	return [][]int{fwd, bwd, rb}
}

func main() {
	const (
		pages       = 400 // pages per array (4x the TLB reach for all three)
		tile        = 4   // pages per tile: short per-PC miss runs
		refsPerPage = 64
		iterations  = 12
	)
	bases := [3]uint64{1 << 20, 1<<20 + 437, 1<<20 + 874}

	mechs := []func() tlbprefetch.Prefetcher{
		func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistance(256, 1, 2) },
		func() tlbprefetch.Prefetcher { return tlbprefetch.NewASP(256, 1) },
		func() tlbprefetch.Prefetcher { return tlbprefetch.NewRecency() },
		func() tlbprefetch.Prefetcher { return tlbprefetch.NewMarkov(1024, 1, 2) },
	}

	fmt.Println("three 400-page arrays, blocked sweeps, tile order rotating per nest")
	fmt.Println()
	ntiles := (pages + tile - 1) / tile
	for _, mk := range mechs {
		pf := mk()
		s := tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), pf)
		ords := orders(ntiles)
		for it := 0; it < iterations; it++ {
			for n := range ords {
				// Each nest has its own code (a distinct PC base) and, as
				// in a real multigrid cycle, the traversal order a nest
				// uses varies from iteration to iteration; odd nests sweep
				// backward within tiles.
				which := (n + it) % len(ords)
				sweep(s, bases, pages, tile, refsPerPage, ords[which], which == 1, 0x400000+uint64(n)*0x100)
			}
		}
		st := s.Stats()
		fmt.Printf("%-4s accuracy %.3f   (%d misses, %d from buffer)\n",
			pf.Name(), st.Accuracy(), st.Misses, st.BufferHits)
	}

	fmt.Println()
	fmt.Println("DP's distance rows survive the order changes; ASP pays a re-lock tax")
	fmt.Println("per tile per nest; RP/MP's page adjacency is scrambled every nest.")
}
