// Custom shows how to implement a new prefetching mechanism against the
// public Prefetcher interface and evaluate it with the library's simulator
// and workload models — the extension path a downstream user of this
// library would take.
//
// The example mechanism is a hybrid the paper hints at in its future work:
// distance prefetching with a sequential fallback — when the distance table
// has no prediction, fall back to prefetching the next page.
package main

import (
	"fmt"

	"tlbprefetch"
)

// hybrid wraps DP and adds a next-page fallback when DP stays silent.
type hybrid struct {
	dp tlbprefetch.Prefetcher
}

func newHybrid() *hybrid {
	return &hybrid{dp: tlbprefetch.NewDistance(256, 1, 2)}
}

// Name implements tlbprefetch.Prefetcher.
func (h *hybrid) Name() string { return "DP+seq" }

// OnMiss implements tlbprefetch.Prefetcher. Predictions are appended to
// the simulator-owned dst buffer, as the interface requires.
func (h *hybrid) OnMiss(ev tlbprefetch.Event, dst []uint64) tlbprefetch.Action {
	act := h.dp.OnMiss(ev, dst)
	if len(act.Prefetches) > 0 {
		return act
	}
	return tlbprefetch.Action{Prefetches: append(dst, ev.VPN+1)}
}

// Reset implements tlbprefetch.Prefetcher.
func (h *hybrid) Reset() {
	h.dp.Reset()
}

func main() {
	cfg := tlbprefetch.DefaultConfig()
	fmt.Println("custom mechanism: DP with a sequential fallback")
	fmt.Println()
	fmt.Printf("%-12s %-10s %-10s %-10s\n", "workload", "DP", "DP+seq", "delta")
	for _, name := range []string{"gzip", "swim", "mcf", "gsm-enc", "fma3d"} {
		w, ok := tlbprefetch.WorkloadByName(name)
		if !ok {
			panic("missing workload " + name)
		}
		dp := tlbprefetch.RunWorkload(cfg, tlbprefetch.NewDistance(256, 1, 2), w, 1_000_000)
		hy := tlbprefetch.RunWorkload(cfg, newHybrid(), w, 1_000_000)
		fmt.Printf("%-12s %-10.3f %-10.3f %+.3f\n",
			name, dp.Accuracy(), hy.Accuracy(), hy.Accuracy()-dp.Accuracy())
	}
	fmt.Println()
	fmt.Println("The fallback helps on cold sequential streams and is harmless where")
	fmt.Println("DP already predicts — the kind of study this library is built for.")
}
