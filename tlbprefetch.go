// Package tlbprefetch is a library for studying TLB prefetching, built as a
// full reproduction of Kandiraju & Sivasubramaniam, "Going the Distance for
// TLB Prefetching: An Application-driven Study" (ISCA 2002).
//
// The package provides:
//
//   - the five prefetching mechanisms of the paper — tagged Sequential
//     Prefetching (SP), Arbitrary Stride Prefetching (ASP, the Chen-Baer
//     reference prediction table), Markov Prefetching (MP), Recency-based
//     Prefetching (RP, Saulsbury et al.) and the paper's contribution,
//     Distance Prefetching (DP) — all behind one Prefetcher interface,
//     plus three published successors for head-to-head comparison:
//     temporal memory streaming (STMS), multi-stride ASP (MASP) and
//     sampling-based free prefetching (SBFP);
//   - a functional TLB + prefetch-buffer simulator measuring the paper's
//     prediction-accuracy metric, and a timing simulator implementing the
//     paper's Table 3 cycle model;
//   - the 56 synthetic application models standing in for the paper's
//     SPEC CPU2000 / MediaBench / Etch / Pointer-Intensive workloads;
//   - binary and text trace formats for driving the simulator from
//     recorded reference streams.
//
// # Quick start
//
//	cfg := tlbprefetch.DefaultConfig() // 128-entry FA TLB, 16-entry buffer, 4K pages
//	pf := tlbprefetch.NewDistance(256, 1, 2)
//	w, _ := tlbprefetch.WorkloadByName("swim")
//	st := tlbprefetch.RunWorkload(cfg, pf, w, 1_000_000)
//	fmt.Printf("accuracy %.3f\n", st.Accuracy())
//
// Everything here is a thin facade over the internal packages; the
// experiment harness that regenerates the paper's tables and figures lives
// in cmd/experiments.
package tlbprefetch

import (
	"tlbprefetch/internal/core"
	"tlbprefetch/internal/prefetch"
	"tlbprefetch/internal/sim"
	"tlbprefetch/internal/tlb"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// Ref is one memory reference: the program counter of the instruction and
// the data virtual address it touches.
type Ref = trace.Ref

// TraceReader yields a stream of references (io.EOF at the end).
type TraceReader = trace.Reader

// TraceWriter consumes a stream of references.
type TraceWriter = trace.Writer

// TraceBatchReader yields references in caller-owned chunks; see
// trace.BatchReader for the contract. AsBatchTraceReader lifts any
// TraceReader to it.
type TraceBatchReader = trace.BatchReader

// Prefetcher is a TLB prefetching mechanism: it observes the TLB miss
// stream and proposes pages to load into the prefetch buffer.
type Prefetcher = prefetch.Prefetcher

// Event describes one TLB miss as seen by a Prefetcher.
type Event = prefetch.Event

// Action is a Prefetcher's response to a miss.
type Action = prefetch.Action

// HardwareInfo summarizes a mechanism's hardware cost (the paper's
// Table 1).
type HardwareInfo = prefetch.HardwareInfo

// TLBConfig describes a TLB geometry.
type TLBConfig = tlb.Config

// Config parameterizes a functional simulation.
type Config = sim.Config

// TimingConfig parameterizes a timing simulation (paper Table 3 model).
type TimingConfig = sim.TimingConfig

// Stats are the functional counters of a run; Stats.Accuracy is the paper's
// prediction-accuracy metric.
type Stats = sim.Stats

// TimingStats extend Stats with cycle accounting.
type TimingStats = sim.TimingStats

// Simulator is the functional TLB + prefetch-buffer pipeline.
type Simulator = sim.Simulator

// TimingSimulator adds the cycle model.
type TimingSimulator = sim.TimingSimulator

// Group fans one reference stream out to many simulators; when all members
// share TLB geometry it probes one canonical TLB per reference and fans
// out only the misses (the shared-frontend fast path the experiment
// harness rides).
type Group = sim.Group

// Workload is a named synthetic application model.
type Workload = workload.Workload

// DefaultConfig returns the paper's baseline: 128-entry fully associative
// TLB, 16-entry prefetch buffer, 4 KB pages.
func DefaultConfig() Config { return sim.Default() }

// DefaultTimingConfig returns the paper's Table 3 cycle model on top of the
// baseline configuration.
func DefaultTimingConfig() TimingConfig { return sim.DefaultTiming() }

// ScaledTimingConfig returns the default cycle model recalibrated to a
// different TLB miss penalty, with the walk-fraction costs (memory ops,
// buffer-hit residual, channel occupancy) scaled in proportion.
func ScaledTimingConfig(missPenalty uint64) TimingConfig { return sim.ScaledTiming(missPenalty) }

// NewSimulator builds a functional simulator around a mechanism (nil means
// no prefetching — the baseline).
func NewSimulator(cfg Config, pf Prefetcher) *Simulator { return sim.New(cfg, pf) }

// NewTimingSimulator builds a timing simulator around a mechanism.
func NewTimingSimulator(cfg TimingConfig, pf Prefetcher) *TimingSimulator {
	return sim.NewTiming(cfg, pf)
}

// NewGroup builds a fan-out over the given simulators.
func NewGroup(members ...*Simulator) *Group { return sim.NewGroup(members...) }

// NewDistance returns the paper's contribution, Distance Prefetching: a
// table of `entries` rows with `ways` associativity (1 = direct-mapped) and
// `slots` predicted distances per row. The paper's recommended operating
// point is NewDistance(256, 1, 2), and even 32 rows work well.
func NewDistance(entries, ways, slots int) Prefetcher { return core.NewDistance(entries, ways, slots) }

// NewDistancePC returns the PC+distance-indexed DP variant (paper §4 future
// work).
func NewDistancePC(entries, ways, slots int) Prefetcher {
	return core.NewDistancePC(entries, ways, slots)
}

// NewDistance2 returns the two-consecutive-distances DP variant (paper §4
// future work).
func NewDistance2(entries, ways, slots int) Prefetcher {
	return core.NewDistance2(entries, ways, slots)
}

// NewRecency returns Recency-based Prefetching (Saulsbury et al.): an LRU
// stack threaded through the page table; prefetches the missing page's
// stack neighbours.
func NewRecency() Prefetcher { return prefetch.NewRecency() }

// NewMarkov returns Markov Prefetching adapted to TLBs: a page-indexed
// table holding `slots` successor pages per row.
func NewMarkov(entries, ways, slots int) Prefetcher { return prefetch.NewMarkov(entries, ways, slots) }

// NewASP returns Arbitrary Stride Prefetching (Chen & Baer's reference
// prediction table), PC-indexed with one stride slot per row.
func NewASP(entries, ways int) Prefetcher { return prefetch.NewASP(entries, ways) }

// NewSequential returns sequential prefetching; tagged selects the variant
// that also triggers on the first hit to a prefetched entry (the one the
// paper evaluates).
func NewSequential(tagged bool) Prefetcher { return prefetch.NewSequential(tagged) }

// NewAdaptiveSequential returns the Dahlgren/Dubois/Stenström adaptive
// sequential prefetcher the paper cites in §2.1 (prefetch degree tracks
// measured usefulness).
func NewAdaptiveSequential() Prefetcher { return prefetch.NewAdaptiveSequential() }

// NewRecencyDegree returns RP with a wider stack prefetch window (degree 3
// reproduces Saulsbury et al.'s three-entry variant).
func NewRecencyDegree(degree int) Prefetcher { return prefetch.NewRecencyDegree(degree) }

// NewSTMS returns temporal memory streaming adapted to TLB miss streams
// (after Wenisch et al., HPCA 2009): a global history buffer of the last
// `entries` misses with a `ways`-associative index table, replaying up to
// `degree` history successors per miss.
func NewSTMS(entries, ways, degree int) Prefetcher { return prefetch.NewSTMS(entries, ways, degree) }

// NewMASP returns the multi-stride ASP generalization (after Vavouliotis et
// al., ISCA 2021): `slots` concurrent strides tracked per PC, prefetched
// together once a stride repeats.
func NewMASP(entries, ways, slots int) Prefetcher { return prefetch.NewMASP(entries, ways, slots) }

// NewSBFP returns sampling-based free TLB prefetching (Vavouliotis et al.,
// ISCA 2021): a free-distance table of usefulness counters deciding which
// page-walk neighbours to keep, with a bounded sampler and prefetch queue.
func NewSBFP() Prefetcher { return prefetch.NewSBFP() }

// Workloads returns all 56 application models, sorted by suite then name.
func Workloads() []Workload { return workload.All() }

// WorkloadsBySuite returns one suite ("SPEC", "MediaBench", "Etch",
// "PointerIntensive") in paper-figure order.
func WorkloadsBySuite(suite string) []Workload { return workload.Suite(suite) }

// WorkloadByName looks up an application model by its benchmark name.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// GenerateWorkload streams refs references of a workload into a trace
// writer.
func GenerateWorkload(w Workload, refs uint64, dst TraceWriter) (uint64, error) {
	return workload.GenerateTo(w, refs, dst)
}

// WorkloadReader adapts a workload to a TraceReader producing refs
// references (materialized; 16 bytes per reference).
func WorkloadReader(w Workload, refs uint64) TraceReader { return workload.Reader(w, refs) }

// RunWorkload simulates refs references of a workload against a mechanism
// and returns the functional statistics.
func RunWorkload(cfg Config, pf Prefetcher, w Workload, refs uint64) Stats {
	s := sim.New(cfg, pf)
	workload.Generate(w, refs, func(pc, vaddr uint64) bool {
		s.Ref(pc, vaddr)
		return true
	})
	return s.Stats()
}

// RunWorkloadTimed simulates refs references under the cycle model and
// returns the timing statistics.
func RunWorkloadTimed(cfg TimingConfig, pf Prefetcher, w Workload, refs uint64) TimingStats {
	s := sim.NewTiming(cfg, pf)
	workload.Generate(w, refs, func(pc, vaddr uint64) bool {
		s.Ref(pc, vaddr)
		return true
	})
	return s.Stats()
}

// NewBinaryTraceWriter / NewBinaryTraceReader expose the fixed-width v1
// trace file format (16 bytes per record after a 16-byte header);
// NewBlockTraceWriter / NewBlockTraceReader expose the v2 block format
// (delta + varint encoded, typically 2-6 bytes per record, batched
// decode). OpenTraceFile auto-detects text, v1 and v2 from the file's
// leading bytes; AsBatchTraceReader lifts any reader to the chunked
// BatchReader contract (a no-op for readers that batch natively).
var (
	NewBinaryTraceWriter = trace.NewBinaryWriter
	NewBinaryTraceReader = trace.NewBinaryReader
	NewBlockTraceWriter  = trace.NewBlockWriter
	NewBlockTraceReader  = trace.NewBlockReader
	NewTextTraceWriter   = trace.NewTextWriter
	NewTextTraceReader   = trace.NewTextReader
	OpenTraceFile        = trace.OpenFile
	AsBatchTraceReader   = trace.AsBatch
	DigestTraceFile      = trace.DigestFile
	// CopyTrace pumps a batch reader into a writer until EOF, returning the
	// number of records copied — the lossless conversion primitive.
	CopyTrace = trace.CopyBatch
)
