#!/usr/bin/env bash
# docs-smoke.sh — execute every ```bash block of docs/EXPERIMENTS.md, in
# order, exactly as written. This is the drift gate for the guide: a
# documented command that errors, an embedded verification grep that no
# longer matches (cache tallies, zero-match diagnostics, the table3-space
# zero-recompute contract), or a broken determinism check all fail CI.
set -euo pipefail
cd "$(dirname "$0")/.."

script=$(mktemp)
trap 'rm -f "$script"' EXIT
awk '/^```bash$/{inblock=1; next} /^```/{inblock=0} inblock' docs/EXPERIMENTS.md > "$script"

lines=$(grep -c '' "$script" || true)
if [ "$lines" -lt 10 ]; then
    echo "docs-smoke: only $lines command lines extracted from docs/EXPERIMENTS.md — extraction broke?" >&2
    exit 1
fi
echo "docs-smoke: running $lines command lines from docs/EXPERIMENTS.md"
bash -euo pipefail "$script"
echo "docs-smoke: all EXPERIMENTS.md commands passed"
