// Command tracegen writes a workload model's reference stream to a trace
// file (binary by default, text with -text), for driving tlbsim or external
// tools.
//
// Examples:
//
//	tracegen -workload swim -refs 5000000 -o swim.trc
//	tracegen -workload gsm-enc -refs 100000 -text -o gsm.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"tlbprefetch"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload model to emit (see tlbsim -list)")
		refs         = flag.Uint64("refs", 1_000_000, "references to generate")
		out          = flag.String("o", "", "output file (default: <workload>.trc or .txt)")
		text         = flag.Bool("text", false, "write the human-readable text format")
	)
	flag.Parse()

	if *workloadName == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -workload")
		os.Exit(2)
	}
	w, ok := tlbprefetch.WorkloadByName(*workloadName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workloadName)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		if *text {
			path = w.Name + ".txt"
		} else {
			path = w.Name + ".trc"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	bw := bufio.NewWriterSize(f, 1<<20)

	var n uint64
	if *text {
		tw := tlbprefetch.NewTextTraceWriter(bw)
		n, err = tlbprefetch.GenerateWorkload(w, *refs, tw)
		if err == nil {
			err = tw.Flush()
		}
	} else {
		var tw interface {
			Write(tlbprefetch.Ref) error
			Flush() error
		}
		tw, err = tlbprefetch.NewBinaryTraceWriter(bw)
		if err == nil {
			n, err = tlbprefetch.GenerateWorkload(w, *refs, tw.(tlbprefetch.TraceWriter))
		}
		if err == nil {
			err = tw.Flush()
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d references of %s to %s\n", n, w.Name, path)
}
