// Command tracegen writes a workload model's reference stream to a trace
// file, or converts an existing trace between encodings. Three encodings
// are supported: the block-structured delta-encoded v2 binary (the
// default — typically 2-6 bytes per record, batched decode), the
// fixed-width v1 binary (16 bytes per record) and the human-readable text
// format. It prints the SHA-256 digest of the written file — the identity
// trace-backed sweep keys embed — and refuses to overwrite an existing
// file unless -force is given, so a digest a grid already references
// cannot be clobbered by accident.
//
// Conversion is lossless and deterministic: the record stream round-trips
// exactly, and converting the same input twice yields byte-identical
// output (a stable digest).
//
// Examples:
//
//	tracegen -workload swim -refs 5000000 -o swim.trc
//	tracegen -workload gsm-enc -refs 100000 -format text -o gsm.txt
//	tracegen -workload mcf -refs 1000000 -format v1 -o mcf.trc -force
//	tracegen -convert mcf-v1.trc -o mcf.trc            # to v2 (default)
//	tracegen -convert mcf.trc -format text -o mcf.txt  # back out to text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tlbprefetch"
)

// finisher is the writer-side completion hook: text traces only need a
// buffer flush, binary traces patch the record count into the header.
type finisher func(f *os.File) error

// newWriter builds the output-format writer over f.
func newWriter(format string, f *os.File) (tlbprefetch.TraceWriter, finisher, error) {
	switch format {
	case "text":
		tw := tlbprefetch.NewTextTraceWriter(f)
		return tw, func(*os.File) error { return tw.Flush() }, nil
	case "v1":
		tw, err := tlbprefetch.NewBinaryTraceWriter(f)
		if err != nil {
			return nil, nil, err
		}
		return tw, func(f *os.File) error { return tw.FinishCount(f) }, nil
	case "v2":
		tw, err := tlbprefetch.NewBlockTraceWriter(f)
		if err != nil {
			return nil, nil, err
		}
		return tw, func(f *os.File) error { return tw.FinishCount(f) }, nil
	}
	return nil, nil, fmt.Errorf("unknown -format %q (text, v1, v2)", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func main() {
	var (
		workloadName = flag.String("workload", "", "workload model to emit (see tlbsim -list)")
		convert      = flag.String("convert", "", "input trace to re-encode instead of generating (format auto-detected)")
		refs         = flag.Uint64("refs", 1_000_000, "references to generate")
		out          = flag.String("o", "", "output file (default: <workload>.trc or .txt)")
		format       = flag.String("format", "v2", "output encoding: v2 (block binary), v1 (fixed binary), text")
		text         = flag.Bool("text", false, "write the text format (alias for -format text)")
		force        = flag.Bool("force", false, "overwrite the output file if it already exists")
	)
	flag.Parse()

	if *text {
		*format = "text"
	}
	if (*workloadName == "") == (*convert == "") {
		fmt.Fprintln(os.Stderr, "tracegen: need exactly one of -workload or -convert")
		os.Exit(2)
	}

	var (
		src   tlbprefetch.TraceBatchReader
		srcC  io.Closer
		label string
	)
	if *convert != "" {
		r, closer, err := tlbprefetch.OpenTraceFile(*convert)
		if err != nil {
			fatal(err)
		}
		src, srcC, label = tlbprefetch.AsBatchTraceReader(r), closer, *convert
	} else {
		w, ok := tlbprefetch.WorkloadByName(*workloadName)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
		label = w.Name
	}

	path := *out
	if path == "" {
		if *convert != "" {
			fmt.Fprintln(os.Stderr, "tracegen: -convert needs an explicit -o (refusing to guess a name next to the input)")
			os.Exit(2)
		}
		if *format == "text" {
			path = *workloadName + ".txt"
		} else {
			path = *workloadName + ".trc"
		}
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !*force {
		// O_EXCL makes the existence check race-free: the create fails
		// rather than truncating a trace some grid's keys already name.
		flags = os.O_WRONLY | os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if os.IsExist(err) {
			fmt.Fprintf(os.Stderr, "tracegen: %s already exists (its digest may be referenced by sweep grids); use -force to overwrite\n", path)
			os.Exit(1)
		}
		fatal(err)
	}

	tw, finish, err := newWriter(*format, f)
	if err != nil {
		f.Close()
		fatal(err)
	}
	var n uint64
	if *convert != "" {
		n, err = tlbprefetch.CopyTrace(tw, src)
		if cerr := srcC.Close(); err == nil {
			err = cerr
		}
	} else {
		w, _ := tlbprefetch.WorkloadByName(*workloadName)
		n, err = tlbprefetch.GenerateWorkload(w, *refs, tw)
	}
	if err == nil {
		// The binary finishers patch the record count into the header, so
		// the digest must be taken from the finished file, not hashed
		// inline while streaming.
		err = finish(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	digest, err := tlbprefetch.DigestTraceFile(path)
	if err != nil {
		fatal(err)
	}
	if *convert != "" {
		fmt.Printf("converted %d references from %s to %s (%s)\n", n, label, path, *format)
	} else {
		fmt.Printf("wrote %d references of %s to %s\n", n, label, path)
	}
	fmt.Printf("sha256 %s\n", digest)
}
