// Command tracegen writes a workload model's reference stream to a trace
// file (binary by default, text with -text), for driving tlbsim, tlbsweep's
// trace-source axis, or external tools. It prints the SHA-256 digest of the
// written file — the identity trace-backed sweep keys embed — and refuses
// to overwrite an existing file unless -force is given, so a digest a grid
// already references cannot be clobbered by accident.
//
// Examples:
//
//	tracegen -workload swim -refs 5000000 -o swim.trc
//	tracegen -workload gsm-enc -refs 100000 -text -o gsm.txt
//	tracegen -workload mcf -refs 1000000 -o mcf.trc -force
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	"tlbprefetch"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload model to emit (see tlbsim -list)")
		refs         = flag.Uint64("refs", 1_000_000, "references to generate")
		out          = flag.String("o", "", "output file (default: <workload>.trc or .txt)")
		text         = flag.Bool("text", false, "write the human-readable text format")
		force        = flag.Bool("force", false, "overwrite the output file if it already exists")
	)
	flag.Parse()

	if *workloadName == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -workload")
		os.Exit(2)
	}
	w, ok := tlbprefetch.WorkloadByName(*workloadName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *workloadName)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		if *text {
			path = w.Name + ".txt"
		} else {
			path = w.Name + ".trc"
		}
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !*force {
		// O_EXCL makes the existence check race-free: the create fails
		// rather than truncating a trace some grid's keys already name.
		flags = os.O_WRONLY | os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if os.IsExist(err) {
			fmt.Fprintf(os.Stderr, "tracegen: %s already exists (its digest may be referenced by sweep grids); use -force to overwrite\n", path)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	// Hash the exact bytes written so the printed digest matches what
	// sweep.TraceSource will compute when a grid references the file.
	hash := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(f, hash), 1<<20)

	var n uint64
	if *text {
		tw := tlbprefetch.NewTextTraceWriter(bw)
		n, err = tlbprefetch.GenerateWorkload(w, *refs, tw)
		if err == nil {
			err = tw.Flush()
		}
	} else {
		var tw interface {
			Write(tlbprefetch.Ref) error
			Flush() error
		}
		tw, err = tlbprefetch.NewBinaryTraceWriter(bw)
		if err == nil {
			n, err = tlbprefetch.GenerateWorkload(w, *refs, tw.(tlbprefetch.TraceWriter))
		}
		if err == nil {
			err = tw.Flush()
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	digest := hex.EncodeToString(hash.Sum(nil))
	fmt.Printf("wrote %d references of %s to %s\n", n, w.Name, path)
	fmt.Printf("sha256 %s\n", digest)
}
