// Command benchbaseline measures the hot-path throughput of the simulator
// and writes the numbers to a JSON file (default BENCH_baseline.json), so
// future changes can be checked against a recorded performance trajectory:
//
//	go run ./cmd/benchbaseline              # writes BENCH_baseline.json
//	go run ./cmd/benchbaseline -refs 8e6    # longer measurement
//	go run ./cmd/benchbaseline -out -       # print to stdout only
//
// It measures, per mechanism, replay throughput over a pre-materialized
// trace (so generation cost is excluded), plus the 21-way experiment
// fan-out with the shared frontend and with independent pipelines. Each
// measurement reports ns/ref and refs/sec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tlbprefetch"
	"tlbprefetch/internal/experiments"
	"tlbprefetch/internal/multiprog"
	"tlbprefetch/internal/trace"
	"tlbprefetch/internal/workload"
)

// Measurement is one benchmark row.
type Measurement struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"`
	Refs       uint64  `json:"refs"`
	NsPerRef   float64 `json:"ns_per_ref"`
	RefsPerSec float64 `json:"refs_per_sec"`
}

// Baseline is the file layout of BENCH_baseline.json.
type Baseline struct {
	GoVersion    string        `json:"go_version"`
	NumCPU       int           `json:"num_cpu"`
	Date         string        `json:"date"`
	Measurements []Measurement `json:"measurements"`
}

func materialize(name string, n uint64) []trace.Ref {
	w, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchbaseline: unknown workload %q\n", name)
		os.Exit(1)
	}
	refs := make([]trace.Ref, 0, n)
	workload.Generate(w, n, func(pc, vaddr uint64) bool {
		refs = append(refs, trace.Ref{PC: pc, VAddr: vaddr})
		return true
	})
	return refs
}

func measure(name, wname string, refs []trace.Ref, passes int, ref func(pc, vaddr uint64)) Measurement {
	// One warmup pass brings every structure to steady state.
	for _, r := range refs {
		ref(r.PC, r.VAddr)
	}
	start := time.Now()
	for p := 0; p < passes; p++ {
		for _, r := range refs {
			ref(r.PC, r.VAddr)
		}
	}
	el := time.Since(start)
	total := uint64(passes) * uint64(len(refs))
	ns := float64(el.Nanoseconds()) / float64(total)
	return Measurement{
		Name:       name,
		Workload:   wname,
		Refs:       total,
		NsPerRef:   ns,
		RefsPerSec: 1e9 / ns,
	}
}

// writeTrace records refs to dir in the given binary encoding and returns
// the file path.
func writeTrace(dir, format string, refs []trace.Ref) string {
	path := dir + "/bench-" + format + ".trc"
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	var (
		tw     trace.Writer
		finish func() error
	)
	if format == "v1" {
		x, werr := trace.NewBinaryWriter(f)
		if werr != nil {
			err = werr
		} else {
			tw, finish = x, func() error { return x.FinishCount(f) }
		}
	} else {
		x, werr := trace.NewBlockWriter(f)
		if werr != nil {
			err = werr
		} else {
			tw, finish = x, func() error { return x.FinishCount(f) }
		}
	}
	if err == nil {
		for _, r := range refs {
			if err = tw.Write(r); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = finish()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	return path
}

// measureTrace times full passes over a trace file: batched or per-ref
// decode, optionally feeding the baseline (no-prefetcher) simulator.
func measureTrace(name, wname, path string, passes int, batched, sim bool) Measurement {
	var total uint64
	var sink uint64
	start := time.Now()
	for p := 0; p < passes; p++ {
		r, closer, err := trace.OpenFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchbaseline:", err)
			os.Exit(1)
		}
		var s *tlbprefetch.Simulator
		if sim {
			s = tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), nil)
		}
		switch {
		case batched && sim:
			if err := s.RunBatch(trace.AsBatch(r)); err != nil {
				fmt.Fprintln(os.Stderr, "benchbaseline:", err)
				os.Exit(1)
			}
			total += s.Stats().Refs
		case batched:
			src := trace.AsBatch(r)
			var buf [4096]trace.Ref
			for {
				k, err := src.ReadBatch(buf[:])
				if err != nil {
					break
				}
				for i := 0; i < k; i++ {
					sink ^= buf[i].VAddr
				}
				total += uint64(k)
			}
		default:
			for {
				ref, err := r.Read()
				if err != nil {
					break
				}
				if sim {
					s.Ref(ref.PC, ref.VAddr)
				} else {
					sink ^= ref.VAddr
				}
				total++
			}
		}
		closer.Close()
	}
	el := time.Since(start)
	_ = sink
	ns := float64(el.Nanoseconds()) / float64(total)
	return Measurement{
		Name:       name,
		Workload:   wname,
		Refs:       total,
		NsPerRef:   ns,
		RefsPerSec: 1e9 / ns,
	}
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "output file ('-' for stdout only)")
	nrefs := flag.Float64("refs", 2e6, "trace length per measurement")
	passes := flag.Int("passes", 2, "measured passes over the trace")
	flag.Parse()

	n := uint64(*nrefs)
	if n == 0 || *passes <= 0 {
		fmt.Fprintln(os.Stderr, "benchbaseline: -refs and -passes must be positive")
		os.Exit(1)
	}
	base := Baseline{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}

	mechs := []struct {
		name string
		mk   func() tlbprefetch.Prefetcher
	}{
		{"none", func() tlbprefetch.Prefetcher { return nil }},
		{"SP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewSequential(true) }},
		{"ASP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewASP(256, 1) }},
		{"MP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewMarkov(256, 1, 2) }},
		{"RP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewRecency() }},
		{"DP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistance(256, 1, 2) }},
		// The modern mechanisms. STMS gets the deep history it needs to be
		// representative (its GHB is architecturally off-chip).
		{"STMS", func() tlbprefetch.Prefetcher { return tlbprefetch.NewSTMS(16384, 1, 2) }},
		{"MASP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewMASP(256, 1, 2) }},
		{"SBFP", func() tlbprefetch.Prefetcher { return tlbprefetch.NewSBFP() }},
	}
	for _, wname := range []string{"swim", "mcf"} {
		refs := materialize(wname, n)
		for _, m := range mechs {
			s := tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(), m.mk())
			base.Measurements = append(base.Measurements,
				measure("simulator/"+m.name, wname, refs, *passes, s.Ref))
			fmt.Fprintf(os.Stderr, "%-24s %-6s %8.2f ns/ref  %12.0f refs/s\n",
				"simulator/"+m.name, wname,
				base.Measurements[len(base.Measurements)-1].NsPerRef,
				base.Measurements[len(base.Measurements)-1].RefsPerSec)
		}
	}

	// The 21-configuration fan-out of Figures 7/8, shared vs independent.
	refs := materialize("swim", n)
	buildGroup := func() *tlbprefetch.Group {
		g := tlbprefetch.NewGroup()
		for _, m := range experiments.Fig7Configs() {
			g.Add(tlbprefetch.NewSimulator(tlbprefetch.DefaultConfig(),
				m.Build(experiments.DefaultOptions())))
		}
		return g
	}
	g := buildGroup()
	base.Measurements = append(base.Measurements,
		measure("group21/shared", "swim", refs, 1, g.Ref))
	ind := buildGroup().Members()
	base.Measurements = append(base.Measurements,
		measure("group21/independent", "swim", refs, 1, func(pc, vaddr uint64) {
			for _, m := range ind {
				m.Ref(pc, vaddr)
			}
		}))
	for _, m := range base.Measurements[len(base.Measurements)-2:] {
		fmt.Fprintf(os.Stderr, "%-24s %-6s %8.2f ns/ref  %12.0f refs/s\n",
			m.Name, m.Workload, m.NsPerRef, m.RefsPerSec)
	}

	// The multiprogramming hot path: the interleaver alone (the shared
	// per-shard pass, pinned allocation-free), then one full mix cell
	// (interleaver + Exec under retain/ASID-flush with DP,256).
	streams := [][]trace.Ref{materialize("galgel", n/2), materialize("gcc", n/2)}
	mkInter := func() func(pc, vaddr uint64) {
		it := multiprog.NewInterleaver(streams, 20_000)
		return func(pc, vaddr uint64) {
			if _, _, _, ok := it.Next(); !ok {
				it = multiprog.NewInterleaver(streams, 20_000)
				it.Next()
			}
		}
	}
	flat := append(append([]trace.Ref(nil), streams[0]...), streams[1]...)
	base.Measurements = append(base.Measurements,
		measure("mix/interleaver", "galgel+gcc", flat, *passes, mkInter()))
	it := multiprog.NewInterleaver(streams, 20_000)
	e := multiprog.NewExec(tlbprefetch.DefaultConfig(), multiprog.Retain, multiprog.ASIDFlush,
		len(streams), func() tlbprefetch.Prefetcher { return tlbprefetch.NewDistance(256, 1, 2) })
	base.Measurements = append(base.Measurements,
		measure("mix/exec-DP", "galgel+gcc", flat, *passes, func(pc, vaddr uint64) {
			proc, mpc, mva, ok := it.Next()
			if !ok {
				it = multiprog.NewInterleaver(streams, 20_000)
				proc, mpc, mva, _ = it.Next()
			}
			e.Ref(proc, mpc, mva)
		}))
	for _, m := range base.Measurements[len(base.Measurements)-2:] {
		fmt.Fprintf(os.Stderr, "%-24s %-10s %8.2f ns/ref  %12.0f refs/s\n",
			m.Name, m.Workload, m.NsPerRef, m.RefsPerSec)
	}

	// Trace decode and file-backed replay: the per-reference v1 read loop
	// every consumer paid before batching, against batched decode of both
	// binary encodings, then end-to-end replay (decode + baseline
	// simulator) per path.
	mcf := materialize("mcf", n)
	dir, err := os.MkdirTemp("", "benchtrace")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	tracePaths := map[string]string{
		"v1": writeTrace(dir, "v1", mcf),
		"v2": writeTrace(dir, "v2", mcf),
	}
	tr := []struct {
		name    string
		path    string
		batched bool
		sim     bool
	}{
		{"trace/decode-v1-perref", tracePaths["v1"], false, false},
		{"trace/decode-v1", tracePaths["v1"], true, false},
		{"trace/decode-v2", tracePaths["v2"], true, false},
		{"trace/replay-v1-perref", tracePaths["v1"], false, true},
		{"trace/replay-v2-batched", tracePaths["v2"], true, true},
	}
	for _, t := range tr {
		m := measureTrace(t.name, "mcf", t.path, *passes, t.batched, t.sim)
		base.Measurements = append(base.Measurements, m)
		fmt.Fprintf(os.Stderr, "%-24s %-6s %8.2f ns/ref  %12.0f refs/s\n",
			m.Name, m.Workload, m.NsPerRef, m.RefsPerSec)
	}

	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchbaseline:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d measurements)\n", *out, len(base.Measurements))
}
