// Command experiments regenerates the tables and figures of Kandiraju &
// Sivasubramaniam, "Going the Distance for TLB Prefetching" (ISCA 2002),
// plus the extension studies described in DESIGN.md.
//
// Usage:
//
//	experiments [flags] <experiment>
//
// Experiments: table1, table2, table3, table3-lat, fig7, fig8, fig9,
// ext-dpvariants, ext-cache, ext-multiprog, ext-pagesize, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tlbprefetch/internal/experiments"
	"tlbprefetch/internal/sweep"
)

func main() {
	refs := flag.Uint64("refs", 1_000_000, "references simulated per workload")
	tlbEntries := flag.Int("tlb", 128, "TLB entries")
	tlbWays := flag.Int("ways", 0, "TLB associativity (0 = fully associative)")
	buffer := flag.Int("buffer", 16, "prefetch buffer entries (b)")
	pageShift := flag.Uint("pageshift", 12, "log2 of the page size")
	slots := flag.Int("slots", 2, "prediction slots per row (s)")
	warmup := flag.Uint64("warmup", 0, "references to simulate before counting (statistics fast-forward)")
	storePath := flag.String("store", "", "sweep result store (JSON): cells found there are not re-simulated, fresh cells are merged back")
	quiet := flag.Bool("q", false, "suppress timing banner")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 table3 table3-lat fig7 fig8 fig9 ext-dpvariants ext-cache ext-multiprog ext-pagesize ext-tlbassoc all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Validate the experiment name before doing any work: exiting later
	// (os.Exit skips defers) would discard freshly simulated store cells.
	if !knownExperiment(flag.Arg(0)) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{
		Refs:       *refs,
		TLBEntries: *tlbEntries,
		TLBWays:    *tlbWays,
		Buffer:     *buffer,
		PageShift:  *pageShift,
		Slots:      *slots,
		WarmupRefs: *warmup,
	}
	if *storePath != "" {
		store, err := sweep.OpenStore(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if n := store.Migrated(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: migrated %d cells from store schema 1 to %d\n", n, sweep.KeySchema)
		}
		opts.Store = store
		defer func() {
			if err := store.Save(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Println("Table 1: hardware comparison at a glance")
			fmt.Print(experiments.Table1(opts))
		case "table2":
			fmt.Println("Table 2: average and miss-rate-weighted prediction accuracy (56 apps, s=2, r=256)")
			fmt.Print(experiments.FormatTable2(experiments.Table2(opts)))
		case "table3":
			fmt.Print(experiments.FormatTable3(experiments.Table3(opts)))
		case "table3-lat":
			fmt.Println("Table 3 latency sensitivity: miss-penalty axis (50..400 cycles)")
			fmt.Print(experiments.FormatTable3Latency(
				experiments.Table3Latency(opts, experiments.DefaultLatencyAxis())))
		case "fig7":
			fmt.Println("Figure 7: prediction accuracy, SPEC CPU2000")
			fmt.Print(experiments.FormatFigure(experiments.Fig7(opts)))
		case "fig8":
			fmt.Println("Figure 8: prediction accuracy, MediaBench / Etch / Pointer-Intensive")
			fmt.Print(experiments.FormatFigure(experiments.Fig8(opts)))
		case "fig9":
			fmt.Print(experiments.FormatFig9(experiments.Fig9(opts)))
		case "ext-dpvariants":
			fmt.Println("Extension A: DP indexing variants (paper §4 future work)")
			fmt.Print(experiments.FormatExtDPVariants(experiments.ExtDPVariants(opts)))
		case "ext-cache":
			fmt.Println("Extension B: distance prefetching at the cache level")
			fmt.Print(experiments.FormatExtCache(experiments.ExtCache(opts)))
		case "ext-multiprog":
			fmt.Println("Extension C: multiprogramming — flush vs retain prediction tables")
			fmt.Print(experiments.FormatExtMultiprog(experiments.ExtMultiprog(opts)))
		case "ext-pagesize":
			fmt.Println("Extension D: page-size sensitivity of DP")
			fmt.Print(experiments.FormatExtPageSize(experiments.ExtPageSize(opts)))
		case "ext-tlbassoc":
			fmt.Println("Extension E: TLB-associativity sensitivity of DP")
			fmt.Print(experiments.FormatExtTLBAssoc(experiments.ExtTLBAssoc(opts)))
		}
		if !*quiet {
			fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	if flag.Arg(0) == "all" {
		for _, name := range allExperiments {
			run(name)
		}
		return
	}
	run(flag.Arg(0))
}

// allExperiments is the "all" ordering (the paper's presentation order,
// extensions last). table3-lat is on-demand only: it shares table3's
// default-point cells through the store but extends the penalty axis, so
// it stays out of "all" to keep that output stable.
var allExperiments = []string{
	"table1", "fig7", "fig8", "table2", "table3", "fig9",
	"ext-dpvariants", "ext-cache", "ext-multiprog", "ext-pagesize",
	"ext-tlbassoc",
}

func knownExperiment(name string) bool {
	if name == "all" || name == "table3-lat" {
		return true
	}
	for _, n := range allExperiments {
		if n == name {
			return true
		}
	}
	return false
}
