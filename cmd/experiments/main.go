// Command experiments regenerates the tables and figures of Kandiraju &
// Sivasubramaniam, "Going the Distance for TLB Prefetching" (ISCA 2002),
// plus the ext-* extension studies and the table3-lat/table3-space
// design-space studies (docs/EXPERIMENTS.md walks every one).
//
// Usage:
//
//	experiments [flags] <experiment>
//
// Experiments: table1, table2, table3, table3-lat, table3-space, fig7,
// fig8, fig9, ext-dpvariants, ext-cache, ext-multiprog, ext-pagesize,
// ext-modern, all.
//
// The figure experiments (fig7, fig8, fig9, table3-space, ext-modern) can
// also render as paper-style grouped-bar figures: -figure text|csv|svg
// switches the output to internal/report's renderers (fig9's four panels
// stack into one SVG document).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tlbprefetch/internal/experiments"
	"tlbprefetch/internal/report"
	"tlbprefetch/internal/sweep"
)

func main() {
	refs := flag.Uint64("refs", 1_000_000, "references simulated per workload")
	tlbEntries := flag.Int("tlb", 128, "TLB entries")
	tlbWays := flag.Int("ways", 0, "TLB associativity (0 = fully associative)")
	buffer := flag.Int("buffer", 16, "prefetch buffer entries (b)")
	pageShift := flag.Uint("pageshift", 12, "log2 of the page size")
	slots := flag.Int("slots", 2, "prediction slots per row (s)")
	warmup := flag.Uint64("warmup", 0, "references to simulate before counting (statistics fast-forward)")
	storePath := flag.String("store", "", "sweep result store (JSON): cells found there are not re-simulated, fresh cells are merged back")
	figFmt := flag.String("figure", "", "render fig7/fig8/fig9/table3-space/ext-modern as a grouped-bar report figure: text, csv or svg")
	quiet := flag.Bool("q", false, "suppress timing banner")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 table3 table3-lat table3-space fig7 fig8 fig9 ext-dpvariants ext-cache ext-multiprog ext-pagesize ext-tlbassoc ext-modern all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Validate the experiment name before doing any work: exiting later
	// (os.Exit skips defers) would discard freshly simulated store cells.
	if !knownExperiment(flag.Arg(0)) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	switch *figFmt {
	case "", "text", "csv", "svg":
	default:
		fmt.Fprintf(os.Stderr, "unknown -figure format %q (text, csv, svg)\n", *figFmt)
		os.Exit(2)
	}
	if *figFmt != "" && !figureCapable(flag.Arg(0)) {
		fmt.Fprintf(os.Stderr, "-figure applies to a single figure experiment (fig7, fig8, fig9, table3-space, ext-modern), not %q\n", flag.Arg(0))
		os.Exit(2)
	}

	tally := &sweep.Summary{}
	opts := experiments.Options{
		Refs:       *refs,
		TLBEntries: *tlbEntries,
		TLBWays:    *tlbWays,
		Buffer:     *buffer,
		PageShift:  *pageShift,
		Slots:      *slots,
		WarmupRefs: *warmup,
		Tally:      tally,
	}
	if *storePath != "" {
		store, err := sweep.OpenStore(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if n := store.Migrated(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: migrated %d cells from store schema %d to %d\n", n, store.MigratedFrom(), sweep.KeySchema)
		}
		if store.Converted() {
			fmt.Fprintf(os.Stderr, "experiments: converting monolithic store (%d cells) to the sharded segment+index layout on next save\n", store.Len())
		}
		opts.Store = store
		defer func() {
			if err := store.Save(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	// renderFigures emits report figures in the chosen -figure format
	// (text is also the default table3-space rendering appended after its
	// flat table).
	renderFigures := func(format string, figs ...*report.Figure) {
		switch format {
		case "csv":
			for _, f := range figs {
				fmt.Print(f.CSV())
			}
		case "svg":
			fmt.Print(report.SVGDocument(figs...))
		default:
			for _, f := range figs {
				fmt.Print(f.Text())
			}
		}
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Println("Table 1: hardware comparison at a glance")
			fmt.Print(experiments.Table1(opts))
		case "table2":
			fmt.Println("Table 2: average and miss-rate-weighted prediction accuracy (56 apps, s=2, r=256)")
			fmt.Print(experiments.FormatTable2(experiments.Table2(opts)))
		case "table3":
			fmt.Print(experiments.FormatTable3(experiments.Table3(opts)))
		case "table3-lat":
			fmt.Println("Table 3 latency sensitivity: miss-penalty axis (50..400 cycles)")
			fmt.Print(experiments.FormatTable3Latency(
				experiments.Table3Latency(opts, experiments.DefaultLatencyAxis())))
		case "table3-space":
			rows, err := experiments.Table3Space(opts, experiments.DefaultTable3SpaceAxes())
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			if *figFmt != "" {
				renderFigures(*figFmt, experiments.Table3SpaceFigure(rows))
				break
			}
			fmt.Print(experiments.FormatTable3Space(rows))
			fmt.Println()
			renderFigures("text", experiments.Table3SpaceFigure(rows))
		case "fig7":
			res := experiments.Fig7(opts)
			if *figFmt != "" {
				renderFigures(*figFmt, experiments.FigureFromApps("Figure 7: prediction accuracy, SPEC CPU2000", res))
				break
			}
			fmt.Println("Figure 7: prediction accuracy, SPEC CPU2000")
			fmt.Print(experiments.FormatFigure(res))
		case "fig8":
			res := experiments.Fig8(opts)
			if *figFmt != "" {
				renderFigures(*figFmt, experiments.FigureFromApps("Figure 8: prediction accuracy, MediaBench / Etch / Pointer-Intensive", res))
				break
			}
			fmt.Println("Figure 8: prediction accuracy, MediaBench / Etch / Pointer-Intensive")
			fmt.Print(experiments.FormatFigure(res))
		case "fig9":
			res := experiments.Fig9(opts)
			if *figFmt != "" {
				renderFigures(*figFmt, experiments.Fig9Figures(res)...)
				break
			}
			fmt.Print(experiments.FormatFig9(res))
		case "ext-dpvariants":
			fmt.Println("Extension A: DP indexing variants (paper §4 future work)")
			fmt.Print(experiments.FormatExtDPVariants(experiments.ExtDPVariants(opts)))
		case "ext-cache":
			fmt.Println("Extension B: distance prefetching at the cache level")
			fmt.Print(experiments.FormatExtCache(experiments.ExtCache(opts)))
		case "ext-multiprog":
			fmt.Println("Extension C: multiprogramming — flush vs retain prediction tables")
			fmt.Print(experiments.FormatExtMultiprog(experiments.ExtMultiprog(opts)))
		case "ext-pagesize":
			fmt.Println("Extension D: page-size sensitivity of DP")
			fmt.Print(experiments.FormatExtPageSize(experiments.ExtPageSize(opts)))
		case "ext-tlbassoc":
			fmt.Println("Extension E: TLB-associativity sensitivity of DP")
			fmt.Print(experiments.FormatExtTLBAssoc(experiments.ExtTLBAssoc(opts)))
		case "ext-modern":
			res := experiments.ExtModern(opts)
			if *figFmt != "" {
				renderFigures(*figFmt, experiments.ExtModernFigure(res))
				break
			}
			fmt.Println("Extension F: 2002 mechanisms vs modern successors (STMS, MASP, SBFP)")
			fmt.Print(experiments.FormatExtModern(res))
		}
		if !*quiet {
			fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	if flag.Arg(0) == "all" {
		for _, name := range allExperiments {
			run(name)
		}
	} else {
		run(flag.Arg(0))
	}
	fmt.Fprintf(os.Stderr, "experiments: %d cells (%d cached, %d run in %d shards)\n",
		tally.Total, tally.Cached, tally.Ran, tally.Shards)
}

// allExperiments is the "all" ordering (the paper's presentation order,
// extensions last). table3-lat and table3-space are on-demand only: they
// share table3's default-point cells through the store but extend the
// timing axes, so they stay out of "all" to keep that output stable.
var allExperiments = []string{
	"table1", "fig7", "fig8", "table2", "table3", "fig9",
	"ext-dpvariants", "ext-cache", "ext-multiprog", "ext-pagesize",
	"ext-tlbassoc", "ext-modern",
}

// figureCapable reports whether -figure can render the experiment (the
// per-application accuracy panels and the design-space study).
func figureCapable(name string) bool {
	switch name {
	case "fig7", "fig8", "fig9", "table3-space", "ext-modern":
		return true
	}
	return false
}

func knownExperiment(name string) bool {
	if name == "all" || name == "table3-lat" || name == "table3-space" {
		return true
	}
	for _, n := range allExperiments {
		if n == name {
			return true
		}
	}
	return false
}
