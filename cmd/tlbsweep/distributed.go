package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/sweepd"
	"tlbprefetch/internal/trace"
)

// runServe is coordinator mode: the declared grid becomes a lease-based
// job feed that remote workers drain; verified results merge into the
// store, which is saved on completion. The merged store is byte-identical
// to a single-process sweep of the same grid.
func runServe(cfg sweepConfig, jobs []sweep.Job, store *sweep.Store) (int, error) {
	ccfg := sweepd.Config{
		Jobs:     jobs,
		Store:    store,
		LeaseTTL: cfg.leaseTTL,
		MaxBatch: cfg.batch,
	}
	if !cfg.quiet {
		ccfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	coord, err := sweepd.New(ccfg)
	if err != nil {
		return 1, err
	}
	ln, err := net.Listen("tcp", cfg.serve)
	if err != nil {
		return 1, fmt.Errorf("-serve %s: %w", cfg.serve, err)
	}
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "tlbsweep: serving %d-cell feed (%d cached, %d to run) on http://%s\n",
		st.Total, st.Cached, st.Pending, ln.Addr())
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	start := time.Now()
	waitErr := coord.Wait(context.Background())
	if cfg.storePath != "" {
		if err := store.Save(); err != nil {
			return 1, err
		}
	}
	final := coord.Status()
	fmt.Fprintf(os.Stderr, "tlbsweep: %d cells (%d cached, %d completed by workers, %d failed) in %v\n",
		final.Total, final.Cached, final.Done, final.Failed, time.Since(start).Round(time.Millisecond))
	if waitErr != nil {
		return 1, waitErr
	}

	// Emit the grid's results in enumeration order, exactly as a local
	// sweep of the same grid would.
	results := make([]sweep.Result, 0, len(jobs))
	for _, j := range jobs {
		if r, ok := store.Get(j.Key().Hash()); ok {
			results = append(results, r)
		}
	}
	return 0, emit(results, cfg.format)
}

// runWorker is worker mode: join the coordinator's feed, simulate leased
// cells on the local sharded path, upload fingerprinted results, exit when
// the grid completes.
func runWorker(cfg sweepConfig) (int, error) {
	traces, err := localTraces(cfg.traces)
	if err != nil {
		return 1, err
	}
	w := &sweepd.Worker{
		URL:      strings.TrimRight(cfg.workerURL, "/"),
		ID:       cfg.workerID,
		MaxBatch: cfg.batch,
		Traces:   traces,
		Runner:   &sweep.Runner{Workers: cfg.workers},
	}
	if !cfg.quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	sum, err := w.Run(context.Background())
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: worker ran %d cells in %d shards in %v\n",
		sum.Ran, sum.Shards, time.Since(start).Round(time.Millisecond))
	return 0, nil
}

// localTraces digests the worker's -trace files into the digest → path
// map leased trace cells are resolved against.
func localTraces(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		digest, err := trace.DigestFile(tok)
		if err != nil {
			return nil, err
		}
		out[digest] = tok
	}
	return out, nil
}
