package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/sweepd"
	"tlbprefetch/internal/trace"
)

// runServe is coordinator mode: the declared grid becomes a lease-based
// job feed that remote workers drain; verified results merge into the
// store, which is saved on completion. The merged store is byte-identical
// to a single-process sweep of the same grid.
//
// Hardening knobs: -token gates every endpoint behind bearer auth,
// -tls-cert/-tls-key serve the feed over TLS, -checkpoint saves a
// file-bound store mid-grid so a crash (or SIGTERM) loses at most one
// interval, and any -trace files are served as content-addressed blobs so
// workers need not carry their own copies.
func runServe(cfg sweepConfig, jobs []sweep.Job, store *sweep.Store) (int, error) {
	if (cfg.tlsCert == "") != (cfg.tlsKey == "") {
		return 1, fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	// Every trace job carries its local path (the coordinator built the
	// grid, so it has the files); serve them all as blobs — mix members
	// included, so a worker can materialize every stream a mix interleaves.
	blobs := make(map[string]string)
	addBlob := func(src sweep.Source) {
		if src.TraceSHA256 != "" && src.TracePath != "" {
			blobs[src.TraceSHA256] = src.TracePath
		}
	}
	for _, j := range jobs {
		addBlob(j.Source)
		if j.Mix != nil {
			for _, src := range j.Mix.Sources {
				addBlob(src)
			}
		}
	}
	ccfg := sweepd.Config{
		Jobs:     jobs,
		Store:    store,
		LeaseTTL: cfg.leaseTTL,
		MaxBatch: cfg.batch,
		Token:    cfg.token,
		Blobs:    blobs,
	}
	if cfg.storePath != "" {
		// Checkpointing an in-memory store would be a silent no-op; only a
		// file-bound store can resume.
		ccfg.Checkpoint = cfg.checkpoint
	}
	if !cfg.quiet {
		ccfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	coord, err := sweepd.New(ccfg)
	if err != nil {
		return 1, err
	}
	ln, err := net.Listen("tcp", cfg.serve)
	if err != nil {
		return 1, fmt.Errorf("-serve %s: %w", cfg.serve, err)
	}
	st := coord.Status()
	scheme := "http"
	if cfg.tlsCert != "" {
		scheme = "https"
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: serving %d-cell feed (%d cached, %d to run) on %s://%s\n",
		st.Total, st.Cached, st.Pending, scheme, ln.Addr())
	srv := &http.Server{Handler: coord.Handler()}
	if cfg.tlsCert != "" {
		go srv.ServeTLS(ln, cfg.tlsCert, cfg.tlsKey)
	} else {
		go srv.Serve(ln)
	}
	defer srv.Close()

	// SIGTERM/SIGINT drain: stop waiting, checkpoint what has settled, and
	// exit with a distinct code. A restart with the same -store re-feeds
	// only the still-dirty cells.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	waitErr := coord.Wait(ctx)
	if errors.Is(waitErr, context.Canceled) {
		if cfg.storePath != "" {
			if err := store.Save(); err != nil {
				return 1, fmt.Errorf("interrupted, and the final checkpoint failed: %w", err)
			}
		}
		drained := coord.Status()
		fmt.Fprintf(os.Stderr, "tlbsweep: interrupted with %d of %d cells still unsettled; store checkpointed — rerun with the same -store and grid to resume\n",
			drained.Pending+drained.Leased, drained.Total)
		return 3, nil
	}
	if cfg.storePath != "" {
		if err := store.Save(); err != nil {
			return 1, err
		}
	}
	final := coord.Status()
	fmt.Fprintf(os.Stderr, "tlbsweep: %d cells (%d cached, %d completed by workers, %d failed) in %v\n",
		final.Total, final.Cached, final.Done, final.Failed, time.Since(start).Round(time.Millisecond))
	if waitErr != nil {
		return 1, waitErr
	}

	// Emit the grid's results in enumeration order, exactly as a local
	// sweep of the same grid would.
	results := make([]sweep.Result, 0, len(jobs))
	for _, j := range jobs {
		r, ok, err := store.Get(j.Key().Hash())
		if err != nil {
			return 1, err
		}
		if ok {
			results = append(results, r)
		}
	}
	return 0, emit(results, cfg.format)
}

// runWorker is worker mode: join the coordinator's feed, simulate leased
// cells on the local sharded path, upload fingerprinted results, exit when
// the grid completes. Trace cells resolve against local -trace files
// first, then fall back to fetching the blob from the coordinator into a
// bounded, digest-verified on-disk cache.
func runWorker(cfg sweepConfig) (int, error) {
	traces, err := localTraces(cfg.traces)
	if err != nil {
		return 1, err
	}
	client, err := workerClient(cfg.tlsCA)
	if err != nil {
		return 1, err
	}
	cacheDir, err := blobCacheDir(cfg.blobCache)
	if err != nil {
		return 1, err
	}
	w := &sweepd.Worker{
		URL:      strings.TrimRight(cfg.workerURL, "/"),
		ID:       cfg.workerID,
		Token:    cfg.token,
		Client:   client,
		MaxBatch: cfg.batch,
		Traces:   traces,
		Blobs:    &sweepd.BlobCache{Dir: cacheDir},
		Runner:   &sweep.Runner{Workers: cfg.workers},
	}
	if !cfg.quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	sum, err := w.Run(context.Background())
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: worker ran %d cells in %d shards in %v\n",
		sum.Ran, sum.Shards, time.Since(start).Round(time.Millisecond))
	return 0, nil
}

// workerClient builds the worker's HTTP client. With -tls-ca it trusts
// exactly that CA (the usual shape for a self-signed lab coordinator);
// otherwise the default client (system roots for https, plain http else).
func workerClient(caPath string) (*http.Client, error) {
	if caPath == "" {
		return nil, nil // Worker defaults to http.DefaultClient
	}
	pem, err := os.ReadFile(caPath)
	if err != nil {
		return nil, fmt.Errorf("-tls-ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("-tls-ca %s: no PEM certificates found", caPath)
	}
	return &http.Client{
		Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: pool}},
	}, nil
}

// blobCacheDir resolves the worker's blob-cache directory: the -blob-cache
// flag, else a stable per-user cache dir, else a temp dir.
func blobCacheDir(flag string) (string, error) {
	if flag != "" {
		return flag, nil
	}
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "tlbsweep-blobs"), nil
	}
	return filepath.Join(os.TempDir(), "tlbsweep-blobs"), nil
}

// localTraces digests the worker's -trace files into the digest → path
// map leased trace cells are resolved against.
func localTraces(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		digest, err := trace.DigestFile(tok)
		if err != nil {
			return nil, err
		}
		out[digest] = tok
	}
	return out, nil
}
