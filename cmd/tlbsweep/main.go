// Command tlbsweep runs a declarative parameter-grid sweep: the cross
// product of workloads × mechanisms × table shapes × TLB geometries ×
// buffer sizes × page sizes, sharded across the CPU by internal/sweep,
// with results landing in a content-addressed JSON store. Re-running a
// sweep against the same store only simulates the cells that are not
// already present, so growing a study — more workloads, another buffer
// size — costs only the new cells.
//
// Examples:
//
//	tlbsweep -workloads swim,mcf -mechs DP,RP,ASP -entries 64,128,256 -buffer 8,16,32
//	tlbsweep -workloads SPEC -mechs DP -rows 32,64,128,256,512,1024 -store dp-table.json
//	tlbsweep -workloads all -mechs DP,RP -format csv > sweep.csv
//	tlbsweep -workloads mcf -mechs none,RP,DP -timing
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tlbprefetch/internal/prof"
	"tlbprefetch/internal/stats"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/workload"
)

func main() {
	var (
		workloads = flag.String("workloads", "", "comma-separated workload names, suite names (SPEC, MediaBench, Etch, PointerIntensive) or 'all'")
		mechs     = flag.String("mechs", "DP", "comma-separated mechanism kinds: DP, DP-PC, DP2, RP, RP3, MP, ASP, SP, SP-A, none")
		rows      = flag.String("rows", "256", "prediction-table rows axis (table mechanisms)")
		ways      = flag.String("ways", "1", "prediction-table associativity axis (table mechanisms)")
		slots     = flag.String("slots", "2", "prediction slots per row axis (DP/MP families)")
		entries   = flag.String("entries", "128", "TLB entries axis")
		tlbWays   = flag.String("tlbways", "0", "TLB associativity axis (0 = fully associative)")
		buffers   = flag.String("buffer", "16", "prefetch buffer entries axis")
		pageShift = flag.String("pageshift", "12", "log2 page size axis")
		refs      = flag.Uint64("refs", 1_000_000, "references measured per cell")
		warmup    = flag.Uint64("warmup", 0, "references simulated before the counters reset")
		seed      = flag.Uint64("seed", 0, "base seed: 0 keeps the models' paper-calibrated streams, nonzero derives an independent per-cell stream seed")
		timing    = flag.Bool("timing", false, "run every cell under the cycle model (paper Table 3)")
		storePath = flag.String("store", "", "JSON result store to read from and merge into")
		format    = flag.String("format", "table", "output format: table, csv, json, none")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		quiet     = flag.Bool("q", false, "suppress per-cell progress on stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tlbsweep: unexpected arguments %q (the grid is declared with flags)\n", flag.Args())
		os.Exit(2)
	}
	if *workloads == "" {
		fmt.Fprintln(os.Stderr, "tlbsweep: -workloads is required (workload names, suite names, or 'all')")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*workloads, *mechs, *rows, *ways, *slots, *entries, *tlbWays, *buffers, *pageShift,
		*refs, *warmup, *seed, *timing, *storePath, *format, *workers, *quiet, *cpuProf, *memProf); err != nil {
		fmt.Fprintln(os.Stderr, "tlbsweep:", err)
		os.Exit(1)
	}
}

func run(workloads, mechs, rows, ways, slots, entries, tlbWays, buffers, pageShift string,
	refs, warmup, seed uint64, timing bool, storePath, format string, workers int, quiet bool,
	cpuProf, memProf string) error {
	switch format {
	case "table", "csv", "json", "none":
	default:
		return fmt.Errorf("unknown -format %q (table, csv, json, none)", format)
	}

	stopProf, err := prof.Start("tlbsweep", cpuProf, memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	grid, err := buildGrid(workloads, mechs, rows, ways, slots, entries, tlbWays, buffers, pageShift,
		refs, warmup, seed, timing)
	if err != nil {
		return err
	}
	jobs, err := grid.Jobs()
	if err != nil {
		return err
	}

	store := sweep.NewStore()
	if storePath != "" {
		store, err = sweep.OpenStore(storePath)
		if err != nil {
			return err
		}
	}

	runner := sweep.Runner{Store: store, Workers: workers}
	if !quiet {
		runner.Progress = func(ev sweep.ProgressEvent) {
			note := ""
			if ev.Cached {
				note = "  (cached)"
			}
			k := ev.Result.Key
			fmt.Fprintf(os.Stderr, "[%*d/%d] %-12s %-10s tlb=%d/%d buf=%d ps=%d  acc=%s%s\n",
				len(fmt.Sprint(ev.Total)), ev.Done, ev.Total,
				k.Workload, k.Mech.Label(), k.TLBEntries, k.TLBWays, k.Buffer, k.PageShift,
				stats.F(ev.Result.Stats.Accuracy()), note)
		}
	}
	start := time.Now()
	results, sum, err := runner.Run(jobs)
	if err != nil {
		return err
	}
	if storePath != "" {
		if err := store.Save(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: %d cells (%d cached, %d run in %d shards) in %v\n",
		sum.Total, sum.Cached, sum.Ran, sum.Shards, time.Since(start).Round(time.Millisecond))

	switch format {
	case "table":
		fmt.Print(sweep.Table(results).String())
	case "csv":
		fmt.Print(sweep.CSV(results))
	case "json":
		b, err := sweep.JSON(results)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		fmt.Println()
	case "none":
	}
	return nil
}

// buildGrid parses the axis flags into a sweep.Grid.
func buildGrid(workloads, mechs, rows, ways, slots, entries, tlbWays, buffers, pageShift string,
	refs, warmup, seed uint64, timing bool) (sweep.Grid, error) {
	g := sweep.Grid{Refs: refs, Warmup: warmup, Seed: seed, Timing: timing}

	names, err := resolveWorkloads(workloads)
	if err != nil {
		return g, err
	}
	g.Workloads = names

	rowAxis, err := parseInts("rows", rows)
	if err != nil {
		return g, err
	}
	wayAxis, err := parseInts("ways", ways)
	if err != nil {
		return g, err
	}
	slotAxis, err := parseInts("slots", slots)
	if err != nil {
		return g, err
	}
	for _, kind := range strings.Split(mechs, ",") {
		kind = canonicalKind(strings.TrimSpace(kind))
		for _, r := range rowAxis {
			for _, w := range wayAxis {
				for _, s := range slotAxis {
					m := sweep.Mech{Kind: kind, Rows: r, Ways: w, Slots: s}
					if err := m.Validate(); err != nil {
						return g, err
					}
					g.Mechs = append(g.Mechs, m)
				}
			}
		}
	}

	if g.TLBEntries, err = parseInts("entries", entries); err != nil {
		return g, err
	}
	if g.TLBWays, err = parseInts("tlbways", tlbWays); err != nil {
		return g, err
	}
	if g.Buffers, err = parseInts("buffer", buffers); err != nil {
		return g, err
	}
	shifts, err := parseInts("pageshift", pageShift)
	if err != nil {
		return g, err
	}
	for _, s := range shifts {
		if s <= 0 {
			return g, fmt.Errorf("-pageshift values must be positive, got %d", s)
		}
		g.PageShifts = append(g.PageShifts, uint(s))
	}
	return g, nil
}

// canonicalKind maps case-insensitive user input onto the registry's
// mechanism spelling.
func canonicalKind(kind string) string {
	switch up := strings.ToUpper(kind); up {
	case "NONE":
		return "none"
	default:
		return up
	}
}

// resolveWorkloads expands each comma-separated token — a workload name, a
// suite name, or "all" — into workload registry names, de-duplicated in
// first-mention order.
func resolveWorkloads(spec string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "all" {
			for _, w := range workload.All() {
				add(w.Name)
			}
			continue
		}
		if suite := workload.Suite(tok); len(suite) > 0 {
			for _, w := range suite {
				add(w.Name)
			}
			continue
		}
		if _, ok := workload.ByName(tok); !ok {
			return nil, fmt.Errorf("unknown workload or suite %q (try tlbsim -list)", tok)
		}
		add(tok)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workloads %q selected no workloads", spec)
	}
	return out, nil
}

// parseInts parses a comma-separated integer axis.
func parseInts(name, spec string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not an integer", name, tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s needs at least one value", name)
	}
	return out, nil
}
