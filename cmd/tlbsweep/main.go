// Command tlbsweep runs a declarative parameter-grid sweep: the cross
// product of sources (synthetic workloads, recorded traces, and
// multiprogrammed mixes of either) × mechanisms × table shapes × TLB
// geometries × buffer sizes × page sizes × scheduler points (quantum ×
// table policy × ASID mode, mix cells) × timing points, sharded across the
// CPU by internal/sweep, with results landing in a content-addressed JSON
// store. Re-running a sweep against the same store only simulates the cells
// that are not already present, so growing a study — more workloads,
// another buffer size, a new miss-penalty point — costs only the new cells.
//
// Besides sweeping, tlbsweep is the store's lifecycle tool: -where renders
// a stored subset without re-declaring the grid, -figure renders a subset
// as a paper-style grouped-bar figure (text, CSV or SVG via internal/
// report), -gc drops cells the current grid no longer references, and
// -diff compares two stores.
//
// A grid can also span hosts: -serve turns tlbsweep into the coordinator
// of a lease-based job feed (internal/sweepd) and -worker joins a feed,
// pulling batches of cells, simulating them on the local sharded path, and
// uploading fingerprinted results. The merged store is byte-identical to a
// single-process run of the same grid.
//
// Examples:
//
//	tlbsweep -workloads swim,mcf -mechs DP,RP,ASP -entries 64,128,256 -buffer 8,16,32
//	tlbsweep -workloads SPEC -mechs DP -rows 32,64,128,256,512,1024 -store dp-table.json
//	tlbsweep -workloads mcf,vpr -mechs SP,DP,STMS,MASP,SBFP -store modern.json
//	tlbsweep -mix galgel+gcc -mechs DP -quantum 5000,20000 -policy retain,flush,per-process -store mix.json
//	tlbsweep -store mix.json -figure accuracy -where quantum=20000 -format svg > policies.svg
//	tlbsweep -trace app.trc -mechs none,RP,DP -miss-penalty 50,100,200 -store lat.json
//	tlbsweep -trace app.trc -mechs none,RP,DP -miss-penalty 100,200 -memop-ratio 0.25,0.5,1 -refs-per-cycle 1,2 -store space.json
//	tlbsweep -store lat.json -where mech=DP,misspenalty=200 -format csv
//	tlbsweep -store lat.json -figure accuracy -where misspenalty=200 -format svg > fig.svg
//	tlbsweep -workloads mcf -mechs DP -store sweep.json -gc
//	tlbsweep -store a.json -diff b.json
//	tlbsweep -serve 127.0.0.1:9177 -workloads all -mechs DP,RP -store grid.json
//	tlbsweep -worker http://coordinator:9177 -workers 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"tlbprefetch/internal/prof"
	"tlbprefetch/internal/report"
	"tlbprefetch/internal/stats"
	"tlbprefetch/internal/sweep"
	"tlbprefetch/internal/workload"
)

func main() {
	var (
		workloads   = flag.String("workloads", "", "comma-separated workload names, suite names (SPEC, MediaBench, Etch, PointerIntensive) or 'all'")
		traces      = flag.String("trace", "", "comma-separated trace files added to the source axis (digested into the keys)")
		mixes       = flag.String("mix", "", "comma-separated multiprogrammed mixes, each '+'-joined members (workload names or trace files), e.g. galgel+gcc")
		quanta      = flag.String("quantum", "", "mix context-switch quantum axis in references (default 20000)")
		policies    = flag.String("policy", "", "mix prediction-table policy axis: retain, flush, per-process (default retain)")
		asids       = flag.String("asid", "", "mix translation treatment axis: flush (TLB+buffer emptied per switch) or tagged (default flush)")
		mechs       = flag.String("mechs", "DP", "comma-separated mechanism kinds: DP, DP-PC, DP2, RP, RP3, MP, ASP, SP, SP-A, STMS, MASP, SBFP, none")
		rows        = flag.String("rows", "256", "prediction-table rows axis (table mechanisms)")
		ways        = flag.String("ways", "1", "prediction-table associativity axis (table mechanisms)")
		slots       = flag.String("slots", "2", "prediction slots per row axis (DP/MP families)")
		entries     = flag.String("entries", "128", "TLB entries axis")
		tlbWays     = flag.String("tlbways", "0", "TLB associativity axis (0 = fully associative)")
		buffers     = flag.String("buffer", "16", "prefetch buffer entries axis")
		pageShift   = flag.String("pageshift", "12", "log2 page size axis")
		refs        = flag.Uint64("refs", 1_000_000, "references measured per cell")
		warmup      = flag.Uint64("warmup", 0, "references simulated before the counters reset")
		seed        = flag.Uint64("seed", 0, "base seed: 0 keeps the models' paper-calibrated streams, nonzero derives an independent per-cell stream seed")
		timing      = flag.Bool("timing", false, "run every cell under the cycle model (paper Table 3)")
		missPenalty = flag.String("miss-penalty", "", "TLB miss penalty axis in cycles (implies -timing; default 100, memop/buffer-hit costs scale with it)")
		memopLat    = flag.String("memop-latency", "", "prefetch memory-op latency axis in cycles (implies -timing; default scales at half the miss penalty; exclusive with -memop-ratio)")
		memopRatio  = flag.String("memop-ratio", "", "prefetch memory-op cost axis as a ratio of the miss penalty (implies -timing; the paper's point is 0.5)")
		refsPerCyc  = flag.String("refs-per-cycle", "", "issue-width axis: references retired per cycle (implies -timing; default 2)")
		storePath   = flag.String("store", "", "JSON result store to read from and merge into")
		where       = flag.String("where", "", "render matching store cells (field=value,... filters) instead of sweeping")
		figure      = flag.String("figure", "", "render matching store cells as a grouped-bar figure of this metric ("+report.MetricNames()+"); combine with -where to subset")
		gc          = flag.Bool("gc", false, "drop store cells the declared grid does not reference, then save")
		diffPath    = flag.String("diff", "", "compare the -store file against this second store and exit (1 when they differ)")
		serve       = flag.String("serve", "", "serve the grid as a distributed job feed on this address (coordinator mode, e.g. 127.0.0.1:9177)")
		workerURL   = flag.String("worker", "", "join a coordinator's job feed at this base URL (worker mode; the grid comes from the coordinator)")
		batch       = flag.Int("batch", 0, "distributed modes: max cells per lease (0 = coordinator default)")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "coordinator mode: a worker silent this long forfeits its leased cells")
		workerID    = flag.String("worker-id", "", "worker mode: name shown in coordinator logs (default worker-<pid>)")
		token       = flag.String("token", "", "distributed modes: bearer token — the coordinator requires it on every request (401 otherwise), workers send it")
		tlsCert     = flag.String("tls-cert", "", "coordinator mode: serve the feed over TLS with this certificate file (requires -tls-key)")
		tlsKey      = flag.String("tls-key", "", "coordinator mode: TLS private key file (requires -tls-cert)")
		tlsCA       = flag.String("tls-ca", "", "worker mode: PEM bundle to trust for an https coordinator (self-signed deployments; default system roots)")
		checkpoint  = flag.Duration("checkpoint", 30*time.Second, "coordinator mode: save the store this often mid-grid so a crash resumes from the last checkpoint (0 disables)")
		blobCache   = flag.String("blob-cache", "", "worker mode: directory for trace blobs fetched from the coordinator (default <user-cache-dir>/tlbsweep-blobs)")
		format      = flag.String("format", "table", "output format: table, csv, json, none (-figure mode: table, csv, svg)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		quiet       = flag.Bool("q", false, "suppress per-cell progress on stderr")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: tlbsweep [flags]\n\n")
		fmt.Fprintf(o, "Modes (mutually exclusive): sweep the declared grid (default), render a store\n")
		fmt.Fprintf(o, "subset (-where and/or -figure), -gc, -diff, -serve, -worker. -figure combines\n")
		fmt.Fprintf(o, "with -where to render only the matching cells.\n\n")
		fmt.Fprintf(o, "Exit codes: 0 success; 1 error, differing stores (-diff), or a filter matching\n")
		fmt.Fprintf(o, "zero cells (-where/-figure — a diagnostic on stderr names the clauses that\n")
		fmt.Fprintf(o, "match nothing); 2 flag or usage errors.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tlbsweep: unexpected arguments %q (the grid is declared with flags)\n", flag.Args())
		os.Exit(2)
	}
	render := *where != "" || *figure != ""
	modes := 0
	for _, on := range []bool{render, *gc, *diffPath != "", *serve != "", *workerURL != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "tlbsweep: -where/-figure, -gc, -diff, -serve and -worker are mutually exclusive modes")
		os.Exit(2)
	}
	if (render || *gc || *diffPath != "") && *storePath == "" {
		fmt.Fprintln(os.Stderr, "tlbsweep: -where/-figure/-gc/-diff operate on a store: -store is required")
		os.Exit(2)
	}
	if *workerURL != "" && *storePath != "" {
		fmt.Fprintln(os.Stderr, "tlbsweep: a worker holds no store — the coordinator given with -serve owns it")
		os.Exit(2)
	}
	if *workerURL != "" {
		// The grid comes from the coordinator: silently dropping axis
		// flags would let `-worker URL -workloads swim -refs 1e6` look
		// like it constrained the work. -trace is the exception (it names
		// the worker's local recordings, matched to cells by digest).
		workerFlags := map[string]bool{
			"worker": true, "worker-id": true, "batch": true, "trace": true,
			"workers": true, "q": true, "cpuprofile": true, "memprofile": true,
			"token": true, "tls-ca": true, "blob-cache": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if !workerFlags[f.Name] {
				fmt.Fprintf(os.Stderr, "tlbsweep: -%s has no effect in worker mode (the coordinator declares the grid)\n", f.Name)
				os.Exit(2)
			}
		})
	}
	if !render && *diffPath == "" && *workerURL == "" && *workloads == "" && *traces == "" && *mixes == "" {
		fmt.Fprintln(os.Stderr, "tlbsweep: need a source axis: -workloads (names, suites, 'all'), -trace files and/or -mix combinations")
		flag.Usage()
		os.Exit(2)
	}

	cfg := sweepConfig{
		workloads: *workloads, traces: *traces, mechs: *mechs,
		mixes: *mixes, quanta: *quanta, policies: *policies, asids: *asids,
		rows: *rows, ways: *ways, slots: *slots,
		entries: *entries, tlbWays: *tlbWays, buffers: *buffers, pageShift: *pageShift,
		refs: *refs, warmup: *warmup, seed: *seed,
		timing: *timing, missPenalty: *missPenalty, memopLat: *memopLat,
		memopRatio: *memopRatio, refsPerCyc: *refsPerCyc,
		storePath: *storePath, where: *where, figure: *figure, gc: *gc, diffPath: *diffPath,
		serve: *serve, workerURL: *workerURL, batch: *batch,
		leaseTTL: *leaseTTL, workerID: *workerID,
		token: *token, tlsCert: *tlsCert, tlsKey: *tlsKey, tlsCA: *tlsCA,
		checkpoint: *checkpoint, blobCache: *blobCache,
		format: *format, workers: *workers, quiet: *quiet,
		cpuProf: *cpuProf, memProf: *memProf,
	}
	code, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbsweep:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// sweepConfig carries the parsed flag surface.
type sweepConfig struct {
	workloads, traces, mechs             string
	mixes, quanta, policies, asids       string
	rows, ways, slots                    string
	entries, tlbWays, buffers, pageShift string
	refs, warmup, seed                   uint64
	timing                               bool
	missPenalty, memopLat                string
	memopRatio, refsPerCyc               string
	storePath, where, figure             string
	diffPath, format                     string
	gc                                   bool
	serve, workerURL, workerID           string
	token, tlsCert, tlsKey, tlsCA        string
	blobCache                            string
	batch                                int
	leaseTTL, checkpoint                 time.Duration
	workers                              int
	quiet                                bool
	cpuProf, memProf                     string
}

func run(cfg sweepConfig) (int, error) {
	switch cfg.format {
	case "table", "csv", "json", "none":
	case "svg":
		if cfg.figure == "" {
			return 1, fmt.Errorf("-format svg renders figures: combine it with -figure")
		}
	default:
		return 1, fmt.Errorf("unknown -format %q (table, csv, json, none; -figure mode also svg)", cfg.format)
	}

	stopProf, err := prof.Start("tlbsweep", cfg.cpuProf, cfg.memProf)
	if err != nil {
		return 1, err
	}
	defer stopProf()

	// Worker mode needs no grid or store of its own: everything comes
	// from the coordinator's feed.
	if cfg.workerURL != "" {
		return runWorker(cfg)
	}

	// The read-only modes consume an existing store; a missing file there
	// is a path typo that would otherwise succeed vacuously ("stores are
	// identical", "0 cells match"). Only a sweep may start a store fresh.
	readOnly := cfg.diffPath != "" || cfg.where != "" || cfg.figure != "" || cfg.gc
	var store *sweep.Store
	if cfg.storePath != "" {
		if readOnly {
			if _, err := os.Stat(cfg.storePath); err != nil {
				return 1, fmt.Errorf("-store %s: %w", cfg.storePath, err)
			}
		}
		store, err = sweep.OpenStore(cfg.storePath)
		if err != nil {
			return 1, err
		}
		if n := store.Migrated(); n > 0 {
			fmt.Fprintf(os.Stderr, "tlbsweep: migrated %d cells from store schema %d to %d\n", n, store.MigratedFrom(), sweep.KeySchema)
		}
		if store.Converted() {
			fmt.Fprintf(os.Stderr, "tlbsweep: converting monolithic store (%d cells) to the sharded segment+index layout on next save\n", store.Len())
		}
	}

	switch {
	case cfg.diffPath != "":
		return runDiff(store, cfg.diffPath)
	case cfg.figure != "":
		return runFigure(store, cfg.figure, cfg.where, cfg.format)
	case cfg.where != "":
		return runWhere(store, cfg.where, cfg.format)
	}

	grid, err := buildGrid(cfg)
	if err != nil {
		return 1, err
	}
	jobs, err := grid.Jobs()
	if err != nil {
		return 1, err
	}

	if cfg.serve != "" {
		if store == nil {
			store = sweep.NewStore()
		}
		return runServe(cfg, jobs, store)
	}

	if cfg.gc {
		keep := make(map[string]bool, len(jobs))
		for _, j := range jobs {
			keep[j.Key().Hash()] = true
		}
		dropped, err := store.GC(keep)
		if err != nil {
			return 1, err
		}
		if err := store.Save(); err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "tlbsweep: gc dropped %d cells, kept %d\n", dropped, store.Len())
		return 0, nil
	}

	if store == nil {
		store = sweep.NewStore()
	}
	runner := sweep.Runner{Store: store, Workers: cfg.workers}
	if !cfg.quiet {
		runner.Progress = func(ev sweep.ProgressEvent) {
			note := ""
			if ev.Cached {
				note = "  (cached)"
			}
			k := ev.Result.Key
			fmt.Fprintf(os.Stderr, "[%*d/%d] %-12s %-10s tlb=%d/%d buf=%d ps=%d  acc=%s%s\n",
				len(fmt.Sprint(ev.Total)), ev.Done, ev.Total,
				k.SourceLabel(), k.Mech.Label(), k.TLBEntries, k.TLBWays, k.Buffer, k.PageShift,
				stats.F(ev.Result.Stats.Accuracy()), note)
		}
	}
	start := time.Now()
	results, sum, err := runner.Run(jobs)
	if err != nil {
		return 1, err
	}
	if cfg.storePath != "" {
		if err := store.Save(); err != nil {
			return 1, err
		}
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: %d cells (%d cached, %d run in %d shards) in %v\n",
		sum.Total, sum.Cached, sum.Ran, sum.Shards, time.Since(start).Round(time.Millisecond))

	return 0, emit(results, cfg.format)
}

// runWhere renders the store subset a filter selects, no grid required. A
// filter matching zero cells is an error (exit 1) with a diagnostic naming
// the clauses that match nothing, not a vacuous empty table.
func runWhere(store *sweep.Store, spec, format string) (int, error) {
	f, err := sweep.ParseFilter(spec)
	if err != nil {
		return 1, err
	}
	results, err := f.Select(store)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: %d of %d store cells match %q\n", len(results), store.Len(), spec)
	if len(results) == 0 {
		diagnoseEmptyMatch(store, f)
		return 1, nil
	}
	return 0, emit(results, format)
}

// runFigure renders the store subset (everything, or the -where matches) as
// a grouped-bar figure of the chosen metric.
func runFigure(store *sweep.Store, metric, spec, format string) (int, error) {
	m, ok := report.MetricByName(metric)
	if !ok {
		return 1, fmt.Errorf("unknown -figure metric %q (known: %s)", metric, report.MetricNames())
	}
	f, err := sweep.ParseFilter(spec)
	if err != nil {
		return 1, err
	}
	results, err := f.Select(store)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(os.Stderr, "tlbsweep: rendering %d of %d store cells as a figure of %s\n",
		len(results), store.Len(), m.Name)
	if len(results) == 0 {
		diagnoseEmptyMatch(store, f)
		return 1, nil
	}
	title := m.Axis + " by application"
	if spec != "" {
		title += " [" + spec + "]"
	}
	fig, err := report.Build(results, report.Options{Metric: m.Name, Title: title})
	if err != nil {
		return 1, err
	}
	switch format {
	case "table":
		fmt.Print(fig.Text())
	case "csv":
		fmt.Print(fig.CSV())
	case "svg":
		fmt.Print(fig.SVG())
	default:
		return 1, fmt.Errorf("-figure renders table, csv or svg, not %q", format)
	}
	return 0, nil
}

// diagnoseEmptyMatch explains a filter that selected nothing: per-clause
// solo match counts, with the clauses no store cell satisfies called out —
// the difference between a typoed value and an empty conjunction.
func diagnoseEmptyMatch(store *sweep.Store, f sweep.Filter) {
	if store.Len() == 0 {
		fmt.Fprintln(os.Stderr, "tlbsweep: the store holds no cells at all — sweep into it first")
		return
	}
	if f.Empty() {
		return // store.Len()>0 and an empty filter cannot select nothing
	}
	// The index alone carries every key — no segment is read to explain an
	// empty match.
	keys := store.IndexKeys()
	var unmatched []string
	for _, cm := range f.ClauseMatches(keys) {
		fmt.Fprintf(os.Stderr, "tlbsweep:   %s alone matches %d cells\n", cm.Clause, cm.Matches)
		if cm.Matches == 0 {
			unmatched = append(unmatched, cm.Clause)
		}
	}
	if len(unmatched) > 0 {
		fmt.Fprintf(os.Stderr, "tlbsweep: no store cell satisfies %s — drop or fix those clauses\n",
			strings.Join(unmatched, ", "))
	} else {
		fmt.Fprintln(os.Stderr, "tlbsweep: every clause matches some cells, but no single cell satisfies the whole conjunction")
	}
}

// runDiff compares two stores; exit code 1 reports a difference.
func runDiff(a *sweep.Store, bPath string) (int, error) {
	if _, err := os.Stat(bPath); err != nil {
		return 1, fmt.Errorf("-diff %s: %w", bPath, err)
	}
	b, err := sweep.OpenStore(bPath)
	if err != nil {
		return 1, err
	}
	d, err := sweep.DiffStores(a, b)
	if err != nil {
		return 1, err
	}
	fmt.Print(d.Summary())
	if d.Empty() {
		return 0, nil
	}
	return 1, nil
}

func emit(results []sweep.Result, format string) error {
	switch format {
	case "table":
		fmt.Print(sweep.Table(results).String())
	case "csv":
		fmt.Print(sweep.CSV(results))
	case "json":
		b, err := sweep.JSON(results)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		fmt.Println()
	case "none":
	}
	return nil
}

// buildGrid parses the axis flags into a sweep.Grid.
func buildGrid(cfg sweepConfig) (sweep.Grid, error) {
	g := sweep.Grid{Refs: cfg.refs, Warmup: cfg.warmup, Seed: cfg.seed}
	var err error

	if cfg.workloads != "" {
		names, err := resolveWorkloads(cfg.workloads)
		if err != nil {
			return g, err
		}
		g.Workloads = names
	}
	for _, tok := range strings.Split(cfg.traces, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		src, err := sweep.TraceSource(tok)
		if err != nil {
			return g, err
		}
		g.Traces = append(g.Traces, src)
	}
	for _, tok := range strings.Split(cfg.mixes, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		mix, err := parseMix(tok)
		if err != nil {
			return g, err
		}
		g.Mixes = append(g.Mixes, mix)
	}
	if cfg.quanta != "" {
		if g.Quanta, err = parseUints("quantum", cfg.quanta); err != nil {
			return g, err
		}
	}
	if cfg.policies != "" {
		g.Policies = splitAxis(cfg.policies)
	}
	if cfg.asids != "" {
		g.ASIDs = splitAxis(cfg.asids)
	}

	rowAxis, err := parseInts("rows", cfg.rows)
	if err != nil {
		return g, err
	}
	wayAxis, err := parseInts("ways", cfg.ways)
	if err != nil {
		return g, err
	}
	slotAxis, err := parseInts("slots", cfg.slots)
	if err != nil {
		return g, err
	}
	for _, kind := range strings.Split(cfg.mechs, ",") {
		kind = canonicalKind(strings.TrimSpace(kind))
		for _, r := range rowAxis {
			for _, w := range wayAxis {
				for _, s := range slotAxis {
					m := sweep.Mech{Kind: kind, Rows: r, Ways: w, Slots: s}
					if err := m.Validate(); err != nil {
						return g, err
					}
					g.Mechs = append(g.Mechs, m)
				}
			}
		}
	}

	if g.TLBEntries, err = parseInts("entries", cfg.entries); err != nil {
		return g, err
	}
	if g.TLBWays, err = parseInts("tlbways", cfg.tlbWays); err != nil {
		return g, err
	}
	if g.Buffers, err = parseInts("buffer", cfg.buffers); err != nil {
		return g, err
	}
	shifts, err := parseInts("pageshift", cfg.pageShift)
	if err != nil {
		return g, err
	}
	for _, s := range shifts {
		if s <= 0 {
			return g, fmt.Errorf("-pageshift values must be positive, got %d", s)
		}
		g.PageShifts = append(g.PageShifts, uint(s))
	}

	axes, err := buildTimingAxes(cfg)
	if err != nil {
		return g, err
	}
	g.TimingAxes = axes
	return g, nil
}

// buildTimingAxes parses the cycle-model flags into the decoupled design
// space sweep.TimingAxes expands: -miss-penalty × (-memop-latency cycles OR
// -memop-ratio fractions of the penalty) × -refs-per-cycle issue widths.
// Any of the axis flags implies the cycle model; -timing alone runs the
// single default point.
func buildTimingAxes(cfg sweepConfig) (sweep.TimingAxes, error) {
	var axes sweep.TimingAxes
	if cfg.missPenalty == "" && cfg.memopLat == "" && cfg.memopRatio == "" && cfg.refsPerCyc == "" {
		if cfg.timing {
			// The single default point, spelled as a one-penalty axis.
			axes.MissPenalties = []uint64{sweep.DefaultTiming().MissPenalty}
		}
		return axes, nil
	}
	var err error
	if cfg.missPenalty != "" {
		if axes.MissPenalties, err = parseUints("miss-penalty", cfg.missPenalty); err != nil {
			return axes, err
		}
	}
	if cfg.memopLat != "" {
		if axes.MemOpLatencies, err = parseUints("memop-latency", cfg.memopLat); err != nil {
			return axes, err
		}
	}
	if cfg.memopRatio != "" {
		if axes.MemOpRatios, err = parseFloats("memop-ratio", cfg.memopRatio); err != nil {
			return axes, err
		}
	}
	if cfg.refsPerCyc != "" {
		if axes.RefsPerCycle, err = parseUints("refs-per-cycle", cfg.refsPerCyc); err != nil {
			return axes, err
		}
	}
	if _, err := axes.Points(); err != nil { // surface axis conflicts at flag-parse time
		return axes, err
	}
	return axes, nil
}

// parseMix parses one '+'-joined mix spec: each member is a workload
// registry name, or failing that a trace file path (digested into the key
// like -trace). The scheduler parameters stay zero here — the grid's
// -quantum/-policy/-asid axes (or their defaults) fill them in per cell.
func parseMix(spec string) (sweep.Mix, error) {
	var mix sweep.Mix
	for _, tok := range strings.Split(spec, "+") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if _, ok := workload.ByName(tok); ok {
			mix.Sources = append(mix.Sources, sweep.WorkloadSource(tok))
			continue
		}
		src, err := sweep.TraceSource(tok)
		if err != nil {
			return mix, fmt.Errorf("-mix member %q is neither a workload name nor a readable trace: %w", tok, err)
		}
		mix.Sources = append(mix.Sources, src)
	}
	if len(mix.Sources) < 2 {
		return mix, fmt.Errorf("-mix %q needs at least two '+'-joined members", spec)
	}
	return mix, nil
}

// splitAxis splits a comma-separated string axis, trimming blanks.
func splitAxis(spec string) []string {
	var out []string
	for _, tok := range strings.Split(spec, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// canonicalKind maps case-insensitive user input onto the registry's
// mechanism spelling.
func canonicalKind(kind string) string {
	switch up := strings.ToUpper(kind); up {
	case "NONE":
		return "none"
	default:
		return up
	}
}

// resolveWorkloads expands each comma-separated token — a workload name, a
// suite name, or "all" — into workload registry names, de-duplicated in
// first-mention order.
func resolveWorkloads(spec string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "all" {
			for _, w := range workload.All() {
				add(w.Name)
			}
			continue
		}
		if suite := workload.Suite(tok); len(suite) > 0 {
			for _, w := range suite {
				add(w.Name)
			}
			continue
		}
		if _, ok := workload.ByName(tok); !ok {
			return nil, fmt.Errorf("unknown workload or suite %q (try tlbsim -list)", tok)
		}
		add(tok)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workloads %q selected no workloads", spec)
	}
	return out, nil
}

// parseInts parses a comma-separated integer axis.
func parseInts(name, spec string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not an integer", name, tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s needs at least one value", name)
	}
	return out, nil
}

// parseFloats parses a comma-separated ratio axis.
func parseFloats(name, spec string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		// !(v > 0) also rejects NaN; infinities parse fine but would cast
		// to platform-dependent uint64 cells, so reject them explicitly.
		if err != nil || !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-%s: %q is not a positive finite number", name, tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s needs at least one value", name)
	}
	return out, nil
}

// parseUints parses a comma-separated unsigned axis.
func parseUints(name, spec string) ([]uint64, error) {
	var out []uint64
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %q is not a non-negative integer", name, tok)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s needs at least one value", name)
	}
	return out, nil
}
