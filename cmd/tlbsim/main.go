// Command tlbsim runs one TLB-prefetching simulation: a workload model (or
// a trace file) against one mechanism configuration, and prints the
// functional statistics — or the cycle accounting with -timing.
//
// Examples:
//
//	tlbsim -workload swim -mech DP -rows 256
//	tlbsim -workload mcf -mech RP -timing
//	tlbsim -trace app.trc -mech ASP -rows 512 -ways 4
//	tlbsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tlbprefetch"
	"tlbprefetch/internal/prof"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload model to run (see -list)")
		traceFile    = flag.String("trace", "", "binary or text trace file to run instead of a workload")
		traceText    = flag.Bool("text", false, "treat -trace as the text format")
		mech         = flag.String("mech", "DP", "mechanism: DP, DP-PC, DP2, RP, RP3, MP, ASP, SP, SP-A, STMS, MASP, SBFP, none")
		rows         = flag.Int("rows", 256, "prediction table rows r (DP/MP/ASP)")
		ways         = flag.Int("ways", 1, "prediction table associativity (DP/MP/ASP)")
		slots        = flag.Int("slots", 2, "prediction slots per row s (DP/MP)")
		refs         = flag.Uint64("refs", 1_000_000, "references to simulate (workload mode)")
		tlbEntries   = flag.Int("tlb", 128, "TLB entries")
		tlbWays      = flag.Int("tlbways", 0, "TLB associativity (0 = fully associative)")
		buffer       = flag.Int("buffer", 16, "prefetch buffer entries")
		pageShift    = flag.Uint("pageshift", 12, "log2 of the page size")
		timing       = flag.Bool("timing", false, "use the cycle model (paper Table 3)")
		missPenalty  = flag.Uint64("miss-penalty", 0, "TLB miss penalty in cycles, memop/buffer-hit costs scale with it (implies -timing; 0 = paper default 100)")
		memopLat     = flag.Uint64("memop-latency", 0, "prefetch memory-op latency in cycles (implies -timing; 0 = half the miss penalty)")
		list         = flag.Bool("list", false, "list the available workload models")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-18s %s\n", "name", "suite", "model")
		for _, w := range tlbprefetch.Workloads() {
			fmt.Printf("%-14s %-18s %s\n", w.Name, w.Suite, w.PaperNote)
		}
		return
	}

	// Reject contradictory flag combinations up front instead of silently
	// preferring one input source.
	switch {
	case *workloadName != "" && *traceFile != "":
		fatal("-workload and -trace are mutually exclusive: pick one input source")
	case *traceText && *traceFile == "":
		fatal("-text only applies to trace runs: it requires -trace")
	case *workloadName == "" && *traceFile == "":
		fatal("need -workload or -trace (or -list)")
	}

	// Either timing-constant flag opts into the cycle model.
	if *missPenalty != 0 || *memopLat != 0 {
		*timing = true
	}
	if err := run(*workloadName, *traceFile, *traceText, *mech, *rows, *ways, *slots,
		*refs, *tlbEntries, *tlbWays, *buffer, *pageShift, *timing, *missPenalty, *memopLat,
		*cpuProf, *memProf); err != nil {
		fatal(err.Error())
	}
}

func run(workloadName, traceFile string, traceText bool, mech string, rows, ways, slots int,
	refs uint64, tlbEntries, tlbWays, buffer int, pageShift uint, timing bool,
	missPenalty, memopLat uint64, cpuProf, memProf string) error {
	stopProf, err := prof.Start("tlbsim", cpuProf, memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	pf, err := buildMechanism(mech, rows, ways, slots)
	if err != nil {
		return err
	}

	cfg := tlbprefetch.Config{
		TLB:           tlbprefetch.TLBConfig{Entries: tlbEntries, Ways: tlbWays},
		BufferEntries: buffer,
		PageShift:     pageShift,
	}
	timingConfig := func() tlbprefetch.TimingConfig {
		tc := tlbprefetch.DefaultTimingConfig()
		if missPenalty != 0 {
			// Same recalibration tlbsweep's -miss-penalty axis uses, so a
			// tlbsim spot check reproduces a swept cell's cycle counts.
			tc = tlbprefetch.ScaledTimingConfig(missPenalty)
		}
		tc.Config = cfg
		if memopLat != 0 {
			tc.MemOpLatency = memopLat
			// An explicit latency below the channel occupancy means the
			// channel is fully serialized at that latency (same rule as
			// tlbsweep's -memop-latency axis).
			if tc.MemOpOccupancy > tc.MemOpLatency {
				tc.MemOpOccupancy = tc.MemOpLatency
			}
		}
		return tc
	}

	if traceFile != "" {
		return runTrace(cfg, timingConfig, pf, traceFile, traceText, timing)
	}
	w, ok := tlbprefetch.WorkloadByName(workloadName)
	if !ok {
		return fmt.Errorf("unknown workload %q (try -list)", workloadName)
	}
	if timing {
		tc := timingConfig()
		base := tlbprefetch.RunWorkloadTimed(tc, nil, w, refs)
		st := tlbprefetch.RunWorkloadTimed(tc, pf, w, refs)
		printTiming(st, base.Cycles)
	} else {
		st := tlbprefetch.RunWorkload(cfg, pf, w, refs)
		printStats(st)
	}
	return nil
}

func buildMechanism(kind string, rows, ways, slots int) (tlbprefetch.Prefetcher, error) {
	switch strings.ToUpper(kind) {
	case "DP":
		return tlbprefetch.NewDistance(rows, ways, slots), nil
	case "DP-PC":
		return tlbprefetch.NewDistancePC(rows, ways, slots), nil
	case "DP2":
		return tlbprefetch.NewDistance2(rows, ways, slots), nil
	case "RP":
		return tlbprefetch.NewRecency(), nil
	case "RP3":
		return tlbprefetch.NewRecencyDegree(3), nil
	case "MP":
		return tlbprefetch.NewMarkov(rows, ways, slots), nil
	case "ASP":
		return tlbprefetch.NewASP(rows, ways), nil
	case "SP":
		return tlbprefetch.NewSequential(true), nil
	case "SP-A":
		return tlbprefetch.NewAdaptiveSequential(), nil
	case "STMS":
		return tlbprefetch.NewSTMS(rows, ways, slots), nil
	case "MASP":
		return tlbprefetch.NewMASP(rows, ways, slots), nil
	case "SBFP":
		return tlbprefetch.NewSBFP(), nil
	case "NONE":
		return nil, nil
	}
	return nil, fmt.Errorf("unknown mechanism %q", kind)
}

func runTrace(cfg tlbprefetch.Config, timingConfig func() tlbprefetch.TimingConfig,
	pf tlbprefetch.Prefetcher, path string, text, timing bool) error {
	var r tlbprefetch.TraceReader
	if text {
		// Forced text mode, for text traces whose first bytes happen to
		// collide with the binary magic.
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = tlbprefetch.NewTextTraceReader(f)
	} else {
		// Auto-detect text, v1 and v2 binary from the leading bytes.
		or, closer, err := tlbprefetch.OpenTraceFile(path)
		if err != nil {
			return err
		}
		defer closer.Close()
		r = or
	}
	if timing {
		s := tlbprefetch.NewTimingSimulator(timingConfig(), pf)
		if err := s.Run(r); err != nil {
			return err
		}
		printTiming(s.Stats(), 0)
		return nil
	}
	s := tlbprefetch.NewSimulator(cfg, pf)
	if err := s.Run(r); err != nil {
		return err
	}
	printStats(s.Stats())
	return nil
}

func printStats(st tlbprefetch.Stats) {
	fmt.Printf("references          %12d\n", st.Refs)
	fmt.Printf("TLB misses          %12d  (miss rate %.4f)\n", st.Misses, st.MissRate())
	fmt.Printf("buffer hits         %12d\n", st.BufferHits)
	fmt.Printf("demand fetches      %12d\n", st.DemandFetches)
	fmt.Printf("prediction accuracy %12.4f\n", st.Accuracy())
	fmt.Printf("prefetches issued   %12d  (%d duplicates dropped, %d never used)\n",
		st.PrefetchesIssued, st.PrefetchDuplicates, st.PrefetchesUnused)
	fmt.Printf("extra memory ops    %12d  (%d metadata + %d fetches)\n",
		st.MemOps(), st.StateMemOps, st.PrefetchesIssued)
}

func printTiming(st tlbprefetch.TimingStats, baselineCycles uint64) {
	printStats(st.Stats)
	fmt.Printf("cycles              %12d  (CPI %.3f)\n", st.Cycles, st.CPI())
	fmt.Printf("stall cycles        %12d\n", st.StallCycles)
	fmt.Printf("in-flight waits     %12d\n", st.InFlightHits)
	fmt.Printf("skipped prefetches  %12d\n", st.SkippedPref)
	if baselineCycles > 0 {
		fmt.Printf("normalized cycles   %12.3f  (vs no prefetching)\n",
			float64(st.Cycles)/float64(baselineCycles))
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "tlbsim:", msg)
	os.Exit(1)
}
